// Command tupelo-trace analyzes the forensic artifacts the engine emits:
// run reports (tupelo-report/v1, from tupelo discover -report or
// core.BuildReport), benchmark reports (tupelo-bench/v1, from tupelo-bench
// -bench-out), flight-recorder dumps (tupelo-flight/v1, from tupelo
// discover -flight), and structured JSONL traces (from -trace-json).
//
//	tupelo-trace summary FILE          # what ran, what happened, where time went
//	tupelo-trace heuristic FILE        # heuristic-quality ranking (the paper's §5 question)
//	tupelo-trace shards FILE           # parallel-search balance and backpressure
//	tupelo-trace diff OLD NEW          # compare two reports of the same kind
//	tupelo-trace chrome FILE [-o OUT]  # convert to Chrome trace-event JSON (Perfetto)
//
// Every subcommand sniffs the file format from its schema line, so the same
// verbs work across artifact kinds where the analysis makes sense.
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "summary":
		err = withInput(os.Args[2:], 1, func(ins []*input) error {
			return summaryCmd(os.Stdout, ins[0])
		})
	case "heuristic":
		err = withInput(os.Args[2:], 1, func(ins []*input) error {
			return heuristicCmd(os.Stdout, ins[0])
		})
	case "shards":
		err = withInput(os.Args[2:], 1, func(ins []*input) error {
			return shardsCmd(os.Stdout, ins[0])
		})
	case "diff":
		err = withInput(os.Args[2:], 2, func(ins []*input) error {
			return diffCmd(os.Stdout, ins[0], ins[1])
		})
	case "chrome":
		err = chromeMain(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "tupelo-trace: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tupelo-trace: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  tupelo-trace summary FILE          summarize a report, bench report, flight dump, or JSONL trace
  tupelo-trace heuristic FILE        rank heuristics by quality (run report or bench report)
  tupelo-trace shards FILE           parallel-search shard balance and inbox backpressure
  tupelo-trace diff OLD NEW          compare two run reports or two bench reports
  tupelo-trace chrome FILE [-o OUT]  emit Chrome trace-event JSON (chrome://tracing, Perfetto)
`)
}

// withInput loads n file arguments and hands them to fn.
func withInput(args []string, n int, fn func([]*input) error) error {
	if len(args) != n {
		return fmt.Errorf("expected %d file argument(s), got %d", n, len(args))
	}
	ins := make([]*input, 0, n)
	for _, path := range args {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		in, err := detectInput(data)
		if err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		in.path = path
		ins = append(ins, in)
	}
	return fn(ins)
}

// chromeMain handles the chrome subcommand's optional -o flag.
func chromeMain(args []string) error {
	out := os.Stdout
	var files []string
	for i := 0; i < len(args); i++ {
		if args[i] == "-o" {
			if i+1 >= len(args) {
				return fmt.Errorf("chrome: -o needs a file argument")
			}
			f, err := os.Create(args[i+1])
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
			i++
			continue
		}
		files = append(files, args[i])
	}
	return withInput(files, 1, func(ins []*input) error {
		return chromeCmd(out, ins[0])
	})
}
