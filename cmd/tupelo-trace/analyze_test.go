package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"tupelo/internal/core"
	"tupelo/internal/datagen"
	"tupelo/internal/experiments"
	"tupelo/internal/heuristic"
	"tupelo/internal/obs"
	"tupelo/internal/search"
)

// benchExp1 runs a compact Experiment 1 — every heuristic kind on the same
// schema sizes, so per-kind mean states are directly comparable — and
// returns its bench report.
func benchExp1(t *testing.T) *experiments.BenchReport {
	t.Helper()
	var ms []experiments.Measurement
	cfg := experiments.Config{
		Budget:  3000,
		Seed:    2006,
		Metrics: obs.NewRegistry(),
		Collect: func(m experiments.Measurement) { ms = append(ms, m) },
	}
	sizes := []int{2, 4, 6}
	opts := experiments.Exp1Options{
		Algorithm:   search.RBFS,
		SetSizes:    sizes,
		VectorSizes: sizes,
		BlindSizes:  sizes,
	}
	if _, err := experiments.RunExp1(opts, cfg); err != nil {
		t.Fatalf("RunExp1: %v", err)
	}
	r := experiments.NewBenchReport("exp1", cfg, ms)
	r.AttachMetrics(cfg.Metrics)
	return r
}

// TestHeuristicOrderingExp1 is the acceptance criterion for the heuristic
// analyzer: on an Experiment 1 workload, the heuristic-quality accuracy
// ranking must be consistent with the states-examined ranking — the
// mechanism behind the paper's Fig. 6 ordering. Verified end to end through
// the tupelo-trace input path.
func TestHeuristicOrderingExp1(t *testing.T) {
	r := benchExp1(t)
	if len(r.Quality) == 0 {
		t.Fatalf("bench report has no quality rollup")
	}

	byKind := map[string]experiments.BenchQuality{}
	for _, q := range r.Quality {
		byKind[q.Heuristic] = q
	}
	h0, ok := byKind["h0"]
	if !ok {
		t.Fatalf("no h0 row in quality rollup: %+v", r.Quality)
	}
	if h0.MeanAccuracy != 0 {
		t.Fatalf("h0 mean accuracy = %g, want 0 (blind search carries no signal)", h0.MeanAccuracy)
	}
	var best experiments.BenchQuality
	for _, q := range r.Quality {
		if q.MeanAccuracy > best.MeanAccuracy {
			best = q
		}
	}
	if best.MeanStates >= h0.MeanStates {
		t.Fatalf("best-accuracy heuristic %s examined %.1f states on average, blind h0 only %.1f — ordering inverted",
			best.Heuristic, best.MeanStates, h0.MeanStates)
	}
	rho := QualityConsistency(r.Quality)
	t.Logf("accuracy-vs-states Spearman: %.3f (rollup: %+v)", rho, r.Quality)
	if rho <= 0 {
		t.Fatalf("quality ranking inconsistent with states-examined ranking: Spearman %.3f", rho)
	}

	// End to end through the CLI: serialize, sniff, analyze.
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	in, err := detectInput(buf.Bytes())
	if err != nil {
		t.Fatalf("detectInput: %v", err)
	}
	if in.kind != "bench" {
		t.Fatalf("detected kind %q, want bench", in.kind)
	}
	var out bytes.Buffer
	if err := heuristicCmd(&out, in); err != nil {
		t.Fatalf("heuristicCmd: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "ordering consistency") || !strings.Contains(text, "h0") {
		t.Fatalf("heuristic output missing ranking/consistency:\n%s", text)
	}
	// The printed ranking's first data row must be the best-accuracy kind.
	lines := strings.Split(text, "\n")
	if len(lines) < 2 || !strings.Contains(lines[1], best.Heuristic) {
		t.Fatalf("top-ranked line %q does not name %s", lines[1], best.Heuristic)
	}
}

// runReportFixture produces a real run report by discovering a small mapping
// with the report builder attached.
func runReportFixture(t *testing.T, opts core.Options) *obs.RunReport {
	t.Helper()
	src, tgt := datagen.MustMatchingPair(6)
	reg := obs.NewRegistry()
	rb := obs.NewReportBuilder()
	opts.Metrics = reg
	opts.Tracer = rb
	res, err := core.DiscoverContext(context.Background(), src, tgt, opts)
	if err != nil {
		t.Fatalf("DiscoverContext: %v", err)
	}
	report, err := core.BuildReport(res, nil, src, tgt, opts, rb)
	if err != nil {
		t.Fatalf("BuildReport: %v", err)
	}
	return report
}

func TestSummaryAndHeuristicOnRunReport(t *testing.T) {
	report := runReportFixture(t, core.Options{Algorithm: search.RBFS, Heuristic: heuristic.Cosine})
	var buf bytes.Buffer
	if err := obs.WriteRunReport(&buf, report); err != nil {
		t.Fatalf("WriteRunReport: %v", err)
	}
	in, err := detectInput(buf.Bytes())
	if err != nil {
		t.Fatalf("detectInput: %v", err)
	}
	if in.kind != "report" {
		t.Fatalf("detected kind %q, want report", in.kind)
	}
	var sum bytes.Buffer
	if err := summaryCmd(&sum, in); err != nil {
		t.Fatalf("summaryCmd: %v", err)
	}
	for _, want := range []string{"outcome:  solved", "RBFS", "cosine", "spans:", "search RBFS [solved]"} {
		if !strings.Contains(sum.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, sum.String())
		}
	}
	var heur bytes.Buffer
	if err := heuristicCmd(&heur, in); err != nil {
		t.Fatalf("heuristicCmd: %v", err)
	}
	if !strings.Contains(heur.String(), "cosine") || !strings.Contains(heur.String(), "rank") {
		t.Fatalf("heuristic table missing entries:\n%s", heur.String())
	}
}

func TestShardsCmd(t *testing.T) {
	report := runReportFixture(t, core.Options{
		Algorithm:      search.AStar,
		Heuristic:      heuristic.Cosine,
		ParallelSearch: true,
		Workers:        2,
	})
	var buf bytes.Buffer
	if err := obs.WriteRunReport(&buf, report); err != nil {
		t.Fatalf("WriteRunReport: %v", err)
	}
	in, err := detectInput(buf.Bytes())
	if err != nil {
		t.Fatalf("detectInput: %v", err)
	}
	var out bytes.Buffer
	if err := shardsCmd(&out, in); err != nil {
		t.Fatalf("shardsCmd: %v", err)
	}
	for _, want := range []string{"2 workers", "shard", "share"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("shards output missing %q:\n%s", want, out.String())
		}
	}
}

func TestChromeFromReport(t *testing.T) {
	report := runReportFixture(t, core.Options{})
	var buf bytes.Buffer
	if err := obs.WriteRunReport(&buf, report); err != nil {
		t.Fatalf("WriteRunReport: %v", err)
	}
	in, err := detectInput(buf.Bytes())
	if err != nil {
		t.Fatalf("detectInput: %v", err)
	}
	var out bytes.Buffer
	if err := chromeCmd(&out, in); err != nil {
		t.Fatalf("chromeCmd: %v", err)
	}
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatalf("chrome output has no events")
	}
	found := false
	for _, e := range doc.TraceEvents {
		if e.Phase == "X" && strings.Contains(e.Name, "search") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no search span in chrome events: %+v", doc.TraceEvents)
	}
}

func TestDetectFlightAndTrace(t *testing.T) {
	// Flight dump: record through the real recorder, dump, re-parse.
	fr := obs.NewFlightRecorder(64)
	ring := fr.Ring("RBFS")
	for i := 0; i < 10; i++ {
		ring.Record(obs.FKExamine, uint32(i), int32(i), 0)
	}
	fr.RequestDump("deadline")
	var dump bytes.Buffer
	if err := fr.Dump(&dump); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	in, err := detectInput(dump.Bytes())
	if err != nil {
		t.Fatalf("detectInput(flight): %v", err)
	}
	if in.kind != "flight" || len(in.flight.Records) != 10 || in.flight.Header.Cause != "deadline" {
		t.Fatalf("flight parse = kind %q, %d records, cause %q", in.kind, len(in.flight.Records), in.flight.Header.Cause)
	}
	var sum bytes.Buffer
	if err := summaryCmd(&sum, in); err != nil {
		t.Fatalf("summaryCmd(flight): %v", err)
	}
	for _, want := range []string{"cause: deadline", "ring RBFS", "examine=10"} {
		if !strings.Contains(sum.String(), want) {
			t.Fatalf("flight summary missing %q:\n%s", want, sum.String())
		}
	}

	// JSONL trace via the real tracer.
	var traceBuf bytes.Buffer
	tr := obs.NewJSONTracer(&traceBuf)
	tr.Event(obs.Event{Kind: obs.EvRunStart, Label: "RBFS"})
	tr.Event(obs.Event{Kind: obs.EvGoalTest, Seq: 1})
	tr.Event(obs.Event{Kind: obs.EvRunFinish, Label: "RBFS", Goal: true, N: 1})
	in, err = detectInput(traceBuf.Bytes())
	if err != nil {
		t.Fatalf("detectInput(trace): %v", err)
	}
	if in.kind != "trace" || len(in.trace) != 3 {
		t.Fatalf("trace parse = kind %q, %d events", in.kind, len(in.trace))
	}
	sum.Reset()
	if err := summaryCmd(&sum, in); err != nil {
		t.Fatalf("summaryCmd(trace): %v", err)
	}
	if !strings.Contains(sum.String(), "solved=true") {
		t.Fatalf("trace summary missing outcome:\n%s", sum.String())
	}
}

func TestDiffRunReports(t *testing.T) {
	a := runReportFixture(t, core.Options{Heuristic: heuristic.H1})
	b := runReportFixture(t, core.Options{Heuristic: heuristic.Cosine})
	parse := func(r *obs.RunReport) *input {
		var buf bytes.Buffer
		if err := obs.WriteRunReport(&buf, r); err != nil {
			t.Fatalf("WriteRunReport: %v", err)
		}
		in, err := detectInput(buf.Bytes())
		if err != nil {
			t.Fatalf("detectInput: %v", err)
		}
		return in
	}
	var out bytes.Buffer
	if err := diffCmd(&out, parse(a), parse(b)); err != nil {
		t.Fatalf("diffCmd: %v", err)
	}
	if !strings.Contains(out.String(), "examined") || !strings.Contains(out.String(), "->") {
		t.Fatalf("diff output incomplete:\n%s", out.String())
	}
}

func TestQualityConsistencyMath(t *testing.T) {
	perfect := []experiments.BenchQuality{
		{Heuristic: "a", MeanAccuracy: 0.9, MeanStates: 10},
		{Heuristic: "b", MeanAccuracy: 0.5, MeanStates: 100},
		{Heuristic: "c", MeanAccuracy: 0.1, MeanStates: 1000},
	}
	if rho := QualityConsistency(perfect); rho < 0.999 {
		t.Fatalf("perfectly consistent ranking scored %g", rho)
	}
	inverted := []experiments.BenchQuality{
		{Heuristic: "a", MeanAccuracy: 0.1, MeanStates: 10},
		{Heuristic: "b", MeanAccuracy: 0.5, MeanStates: 100},
		{Heuristic: "c", MeanAccuracy: 0.9, MeanStates: 1000},
	}
	if rho := QualityConsistency(inverted); rho > -0.999 {
		t.Fatalf("inverted ranking scored %g", rho)
	}
}
