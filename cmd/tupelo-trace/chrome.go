package main

import (
	"encoding/json"
	"fmt"
	"io"

	"tupelo/internal/obs"
)

// chromeEvent is one Chrome trace-event record (the subset chrome://tracing
// and Perfetto need): "X" complete events for spans, "C" counter events for
// the inbox timeline, "i" instants for flight records. Timestamps and
// durations are microseconds, per the format.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeCmd converts a run report's span tree (plus shard inbox timeline) or
// a flight dump's rings into Chrome trace-event JSON.
func chromeCmd(w io.Writer, in *input) error {
	var events []chromeEvent
	switch in.kind {
	case "report":
		r := in.report
		if r.Span == nil {
			return fmt.Errorf("chrome: report has no span tree (run without a report builder)")
		}
		tid := 0
		spanEvents(r.Span, 1, &tid, &events)
		if r.Shards != nil {
			for _, s := range r.Shards.InboxTimeline {
				events = append(events, chromeEvent{
					Name:  fmt.Sprintf("inbox-depth shard %d", s.Shard),
					Phase: "C",
					TS:    float64(s.AtNS) / 1e3,
					PID:   1,
					TID:   s.Shard,
					Args:  map[string]any{"depth": s.Depth, "outbox": s.Outbox},
				})
			}
		}
	case "flight":
		tids := map[string]int{}
		for _, rec := range in.flight.Records {
			tid, ok := tids[rec.Ring]
			if !ok {
				tid = len(tids)
				tids[rec.Ring] = tid
			}
			events = append(events, chromeEvent{
				Name:  rec.Kind,
				Phase: "i",
				Scope: "t",
				TS:    float64(rec.AtNS) / 1e3,
				PID:   1,
				TID:   tid,
				Args:  map[string]any{"ring": rec.Ring, "seq": rec.Seq, "a": rec.A, "b": rec.B},
			})
		}
	default:
		return fmt.Errorf("chrome: need a run report or flight dump, got %s", in.kind)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// spanEvents flattens the span tree depth-first, one thread row per
// root-level branch so concurrent members render side by side.
func spanEvents(s *obs.Span, depth int, tid *int, out *[]chromeEvent) {
	if depth <= 2 {
		// New thread row for the root and each of its direct children
		// (portfolio members / searches run concurrently).
		*tid++
	}
	myTID := *tid
	dur := float64(s.DurationNS) / 1e3
	if dur <= 0 {
		dur = 1 // zero-length spans vanish in the viewer
	}
	name := s.Kind + " " + s.Name
	if s.Outcome != "" {
		name += " [" + s.Outcome + "]"
	}
	*out = append(*out, chromeEvent{
		Name:  name,
		Phase: "X",
		TS:    float64(s.StartNS) / 1e3,
		Dur:   dur,
		PID:   1,
		TID:   myTID,
		Args:  map[string]any{"examined": s.Examined, "error": s.Error},
	})
	for _, c := range s.Children {
		spanEvents(c, depth+1, tid, out)
	}
}
