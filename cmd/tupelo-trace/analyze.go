package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"tupelo/internal/experiments"
	"tupelo/internal/obs"
)

// input is one parsed artifact file; exactly one of the payload fields is
// set, matching kind.
type input struct {
	path   string
	kind   string // "report", "bench", "flight", "trace"
	report *obs.RunReport
	bench  *experiments.BenchReport
	flight *flightDump
	trace  []traceEvent
}

// flightDump is a parsed tupelo-flight/v1 JSONL stream.
type flightDump struct {
	Header  flightHeader
	Records []flightRecord
}

type flightHeader struct {
	Schema   string    `json:"schema"`
	Start    time.Time `json:"start"`
	RingSize int       `json:"ring_size"`
	Rings    int       `json:"rings"`
	Cause    string    `json:"cause"`
}

type flightRecord struct {
	Ring string `json:"ring"`
	I    uint64 `json:"i"`
	AtNS int64  `json:"at_ns"`
	Kind string `json:"kind"`
	Seq  uint32 `json:"seq"`
	A    int32  `json:"a"`
	B    int32  `json:"b"`
}

// traceEvent is the wire form of one obs.Event as written by
// obs.NewJSONTracer (tupelo discover -trace-json).
type traceEvent struct {
	Kind      string `json:"kind"`
	Label     string `json:"label"`
	Seq       int    `json:"seq"`
	N         int    `json:"n"`
	Depth     int    `json:"depth"`
	Goal      bool   `json:"goal"`
	Err       string `json:"err"`
	ElapsedNS int64  `json:"elapsed_ns"`
}

// detectInput sniffs the artifact format from the first JSON value: the
// single-document reports carry a schema tag, a flight dump is a JSONL
// stream whose header line carries one, and a trace is a JSONL stream of
// kind-tagged events.
func detectInput(data []byte) (*input, error) {
	var head struct {
		Schema string `json:"schema"`
		Kind   string `json:"kind"`
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&head); err != nil {
		return nil, fmt.Errorf("not a tupelo artifact (invalid JSON: %v)", err)
	}
	switch head.Schema {
	case obs.ReportSchema:
		r, err := obs.ReadRunReport(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		return &input{kind: "report", report: r}, nil
	case experiments.BenchSchema:
		if err := experiments.ValidateBenchReport(data); err != nil {
			return nil, err
		}
		var b experiments.BenchReport
		if err := json.Unmarshal(data, &b); err != nil {
			return nil, err
		}
		return &input{kind: "bench", bench: &b}, nil
	case obs.FlightSchema:
		return parseFlight(data)
	case "":
		if head.Kind != "" {
			return parseTrace(data)
		}
	}
	return nil, fmt.Errorf("unrecognized artifact (schema %q)", head.Schema)
}

func parseFlight(data []byte) (*input, error) {
	d := &flightDump{}
	sc := newLineScanner(data)
	if !sc.Scan() {
		return nil, fmt.Errorf("flight dump: empty")
	}
	if err := json.Unmarshal(sc.Bytes(), &d.Header); err != nil {
		return nil, fmt.Errorf("flight dump header: %v", err)
	}
	for sc.Scan() {
		var rec flightRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("flight dump record %d: %v", len(d.Records), err)
		}
		d.Records = append(d.Records, rec)
	}
	return &input{kind: "flight", flight: d}, sc.Err()
}

func parseTrace(data []byte) (*input, error) {
	var events []traceEvent
	sc := newLineScanner(data)
	for sc.Scan() {
		var e traceEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("trace event %d: %v", len(events), err)
		}
		events = append(events, e)
	}
	return &input{kind: "trace", trace: events}, sc.Err()
}

// newLineScanner returns a scanner sized for long JSONL lines.
func newLineScanner(data []byte) *bufio.Scanner {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return sc
}

// summaryCmd renders the artifact's one-page overview.
func summaryCmd(w io.Writer, in *input) error {
	switch in.kind {
	case "report":
		return summarizeReport(w, in.report)
	case "bench":
		return summarizeBench(w, in.bench)
	case "flight":
		return summarizeFlight(w, in.flight)
	case "trace":
		return summarizeTrace(w, in.trace)
	}
	return fmt.Errorf("summary: unsupported artifact kind %q", in.kind)
}

func summarizeReport(w io.Writer, r *obs.RunReport) error {
	outcome := "solved"
	switch {
	case r.Partial:
		outcome = "partial (best-effort, aborted: " + r.AbortCause + ")"
	case !r.Solved:
		outcome = "failed"
		if r.AbortCause != "" {
			outcome += " (" + r.AbortCause + ")"
		}
	}
	fmt.Fprintf(w, "run report (%s)\n", r.Schema)
	fmt.Fprintf(w, "  config:   %s / %s k=%g workers=%d\n", r.Algorithm, r.Heuristic, r.K, r.Workers)
	fmt.Fprintf(w, "  outcome:  %s\n", outcome)
	if r.Error != "" {
		fmt.Fprintf(w, "  error:    %s\n", r.Error)
	}
	fmt.Fprintf(w, "  effort:   examined=%d generated=%d depth=%d", r.Examined, r.Generated, r.Depth)
	if r.EBF > 0 {
		fmt.Fprintf(w, " ebf=%.3f", r.EBF)
	}
	if r.DurationNS > 0 {
		fmt.Fprintf(w, " wall=%s", time.Duration(r.DurationNS).Round(time.Microsecond))
	}
	fmt.Fprintln(w)
	for _, c := range r.Caches {
		fmt.Fprintf(w, "  cache %-14s hits=%-8d misses=%-8d hit-rate=%.1f%%\n", c.Name, c.Hits, c.Misses, 100*c.HitRate)
	}
	if r.Memo != nil {
		fmt.Fprintf(w, "  memo  %-14s hits=%-8d misses=%-8d hit-rate=%.1f%%\n", r.Memo.Name, r.Memo.Hits, r.Memo.Misses, 100*r.Memo.HitRate)
	}
	if s := r.Shards; s != nil {
		fmt.Fprintf(w, "  shards:   %d workers, imbalance %.2fx (run `tupelo-trace shards` for detail)\n",
			s.Workers, float64(s.ImbalancePermille)/1000)
	}
	if best := bestQuality(r.HeuristicQuality); best != nil {
		fmt.Fprintf(w, "  best heuristic along solution path: %s (accuracy %.3f; run `tupelo-trace heuristic` for the ranking)\n",
			best.Kind, best.Accuracy)
	}
	if r.Span != nil {
		fmt.Fprintln(w, "  spans:")
		writeSpan(w, r.Span, "    ")
	}
	return nil
}

func bestQuality(qs []obs.HeuristicQuality) *obs.HeuristicQuality {
	var best *obs.HeuristicQuality
	for i := range qs {
		if best == nil || qs[i].Accuracy > best.Accuracy {
			best = &qs[i]
		}
	}
	return best
}

// writeSpan renders the span tree, one line per span, children indented.
func writeSpan(w io.Writer, s *obs.Span, indent string) {
	line := fmt.Sprintf("%s%s %s", indent, s.Kind, s.Name)
	if s.Outcome != "" {
		line += " [" + s.Outcome + "]"
	}
	if s.Examined > 0 {
		line += fmt.Sprintf(" examined=%d", s.Examined)
	}
	if s.DurationNS > 0 {
		line += fmt.Sprintf(" %s", time.Duration(s.DurationNS).Round(time.Microsecond))
	}
	if s.Error != "" {
		line += " err=" + s.Error
	}
	fmt.Fprintln(w, line)
	for _, c := range s.Children {
		writeSpan(w, c, indent+"  ")
	}
}

func summarizeBench(w io.Writer, b *experiments.BenchReport) error {
	fmt.Fprintf(w, "bench report (%s): experiment %s\n", b.Schema, b.Experiment)
	fmt.Fprintf(w, "  env:      %s %s/%s gomaxprocs=%d\n", b.Env.GoVersion, b.Env.GOOS, b.Env.GOARCH, b.Env.GOMAXPROCS)
	fmt.Fprintf(w, "  config:   budget=%d seed=%d workers=%d\n", b.Config.Budget, b.Config.Seed, b.Config.Workers)
	a := b.Aggregate
	fmt.Fprintf(w, "  runs:     %d (%d solved, %d censored)\n", a.Measurements, a.Solved, a.Censored)
	fmt.Fprintf(w, "  effort:   %d states in %s (%.0f states/sec)\n",
		a.TotalStates, time.Duration(a.TotalElapsedNS).Round(time.Millisecond), a.StatesPerSec)
	if len(b.Quality) > 0 {
		fmt.Fprintln(w, "  heuristics (by mean states; run `tupelo-trace heuristic` for the quality ranking):")
		for _, q := range b.Quality {
			fmt.Fprintf(w, "    %-12s runs=%-3d solved=%-3d mean-states=%-10.1f mean-accuracy=%.3f\n",
				q.Heuristic, q.Runs, q.Solved, q.MeanStates, q.MeanAccuracy)
		}
	}
	return nil
}

func summarizeFlight(w io.Writer, d *flightDump) error {
	h := d.Header
	fmt.Fprintf(w, "flight dump (%s): %d rings x %d records", h.Schema, h.Rings, h.RingSize)
	if h.Cause != "" {
		fmt.Fprintf(w, ", cause: %s", h.Cause)
	}
	fmt.Fprintln(w)
	type ringSummary struct {
		count  int
		byKind map[string]int
		last   flightRecord
	}
	rings := map[string]*ringSummary{}
	var order []string
	for _, rec := range d.Records {
		rs := rings[rec.Ring]
		if rs == nil {
			rs = &ringSummary{byKind: map[string]int{}}
			rings[rec.Ring] = rs
			order = append(order, rec.Ring)
		}
		rs.count++
		rs.byKind[rec.Kind]++
		rs.last = rec
	}
	for _, name := range order {
		rs := rings[name]
		kinds := make([]string, 0, len(rs.byKind))
		for k := range rs.byKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		var parts []string
		for _, k := range kinds {
			parts = append(parts, fmt.Sprintf("%s=%d", k, rs.byKind[k]))
		}
		fmt.Fprintf(w, "  ring %-10s %6d records (%s), last: %s seq=%d a=%d b=%d at +%s\n",
			name, rs.count, strings.Join(parts, " "),
			rs.last.Kind, rs.last.Seq, rs.last.A, rs.last.B,
			time.Duration(rs.last.AtNS).Round(time.Microsecond))
	}
	return nil
}

func summarizeTrace(w io.Writer, events []traceEvent) error {
	byKind := map[string]int{}
	var order []string
	solved := false
	for _, e := range events {
		if byKind[e.Kind] == 0 {
			order = append(order, e.Kind)
		}
		byKind[e.Kind]++
		if e.Kind == "run-finish" && e.Goal {
			solved = true
		}
	}
	fmt.Fprintf(w, "JSONL trace: %d events, solved=%v\n", len(events), solved)
	for _, k := range order {
		fmt.Fprintf(w, "  %-14s %d\n", k, byKind[k])
	}
	return nil
}

// heuristicCmd ranks heuristics by quality: from a run report, the
// solution-path profile of every kind; from a bench report, the per-kind
// accuracy/states rollup plus the rank consistency between the two orderings
// — the check that the quality score reproduces the paper's states-examined
// ranking.
func heuristicCmd(w io.Writer, in *input) error {
	switch in.kind {
	case "report":
		qs := append([]obs.HeuristicQuality(nil), in.report.HeuristicQuality...)
		if len(qs) == 0 {
			return fmt.Errorf("heuristic: report has no heuristic-quality section (unsolved run?)")
		}
		sort.Slice(qs, func(i, j int) bool { return qs[i].Accuracy > qs[j].Accuracy })
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "rank\theuristic\taccuracy\tcorrelation\tmean-abs-err\tadmissibility-violations\tused")
		for i, q := range qs {
			used := ""
			if q.Used {
				used = "*"
			}
			fmt.Fprintf(tw, "%d\t%s\t%.3f\t%.3f\t%.3f\t%d\t%s\n",
				i+1, q.Kind, q.Accuracy, q.Correlation, q.MeanAbsErr, q.AdmissibilityViolations, used)
		}
		return tw.Flush()
	case "bench":
		rows := in.bench.Quality
		if len(rows) == 0 {
			return fmt.Errorf("heuristic: bench report has no quality section (produced by an older tupelo-bench?)")
		}
		ranked := append([]experiments.BenchQuality(nil), rows...)
		sort.Slice(ranked, func(i, j int) bool { return ranked[i].MeanAccuracy > ranked[j].MeanAccuracy })
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "rank\theuristic\tmean-accuracy\tmean-states\truns\tsolved")
		for i, q := range ranked {
			fmt.Fprintf(tw, "%d\t%s\t%.3f\t%.1f\t%d\t%d\n", i+1, q.Heuristic, q.MeanAccuracy, q.MeanStates, q.Runs, q.Solved)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		rho := QualityConsistency(rows)
		fmt.Fprintf(w, "ordering consistency (accuracy rank vs states rank, Spearman): %.3f\n", rho)
		if rho > 0 {
			fmt.Fprintln(w, "higher-accuracy heuristics examined fewer states, as the paper's §5 ranking predicts")
		}
		return nil
	}
	return fmt.Errorf("heuristic: need a run report or bench report, got %s", in.kind)
}

// QualityConsistency is the Spearman rank correlation between the
// per-heuristic mean accuracy (descending) and mean states examined
// (ascending): +1 means the quality score reproduces the states-examined
// ordering of the paper exactly, 0 means no relationship. Ties get average
// ranks.
func QualityConsistency(rows []experiments.BenchQuality) float64 {
	n := len(rows)
	if n < 2 {
		return 0
	}
	acc := make([]float64, n)
	states := make([]float64, n)
	for i, q := range rows {
		// Negate accuracy so both vectors rank "better" as "smaller", making
		// a consistent ordering correlate positively.
		acc[i] = -q.MeanAccuracy
		states[i] = q.MeanStates
	}
	ra, rs := ranks(acc), ranks(states)
	var num, da, ds float64
	meanRank := float64(n+1) / 2
	for i := 0; i < n; i++ {
		a, s := ra[i]-meanRank, rs[i]-meanRank
		num += a * s
		da += a * a
		ds += s * s
	}
	if da == 0 || ds == 0 {
		return 0
	}
	return num / math.Sqrt(da*ds)
}

// ranks assigns 1-based average ranks (ties share the mean of their span).
func ranks(v []float64) []float64 {
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// shardsCmd renders the parallel-search balance section of a run report.
func shardsCmd(w io.Writer, in *input) error {
	if in.kind != "report" {
		return fmt.Errorf("shards: need a run report, got %s", in.kind)
	}
	s := in.report.Shards
	if s == nil {
		return fmt.Errorf("shards: report has no shard section (sequential run)")
	}
	fmt.Fprintf(w, "parallel search: %d workers, imbalance %.2fx (1.00x = perfectly balanced)\n",
		s.Workers, float64(s.ImbalancePermille)/1000)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "shard\texamined\trouted\tdeferred\tshare")
	var total int64
	for _, sh := range s.Shards {
		total += sh.Examined
	}
	for _, sh := range s.Shards {
		share := 0.0
		if total > 0 {
			share = 100 * float64(sh.Examined) / float64(total)
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.1f%%\n", sh.Shard, sh.Examined, sh.Routed, sh.Deferred, share)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if len(s.InboxTimeline) > 0 {
		maxDepth, maxOutbox := 0, 0
		for _, smp := range s.InboxTimeline {
			if smp.Depth > maxDepth {
				maxDepth = smp.Depth
			}
			if smp.Outbox > maxOutbox {
				maxOutbox = smp.Outbox
			}
		}
		fmt.Fprintf(w, "inbox timeline: %d samples, peak inbox depth %d, peak outbox %d\n",
			len(s.InboxTimeline), maxDepth, maxOutbox)
	}
	return nil
}

// diffCmd compares two artifacts of the same kind.
func diffCmd(w io.Writer, oldIn, newIn *input) error {
	if oldIn.kind != newIn.kind {
		return fmt.Errorf("diff: artifact kinds differ (%s vs %s)", oldIn.kind, newIn.kind)
	}
	switch oldIn.kind {
	case "report":
		a, b := oldIn.report, newIn.report
		fmt.Fprintf(w, "run report diff: %s/%s -> %s/%s\n", a.Algorithm, a.Heuristic, b.Algorithm, b.Heuristic)
		diffInt(w, "examined", int64(a.Examined), int64(b.Examined))
		diffInt(w, "generated", int64(a.Generated), int64(b.Generated))
		diffInt(w, "depth", int64(a.Depth), int64(b.Depth))
		diffFloat(w, "ebf", a.EBF, b.EBF)
		if a.DurationNS > 0 && b.DurationNS > 0 {
			diffInt(w, "duration_ns", a.DurationNS, b.DurationNS)
		}
		return nil
	case "bench":
		a, b := oldIn.bench, newIn.bench
		fmt.Fprintf(w, "bench report diff: experiment %s -> %s\n", a.Experiment, b.Experiment)
		diffInt(w, "total_states", a.Aggregate.TotalStates, b.Aggregate.TotalStates)
		diffFloat(w, "states_per_sec", a.Aggregate.StatesPerSec, b.Aggregate.StatesPerSec)
		diffInt(w, "solved", int64(a.Aggregate.Solved), int64(b.Aggregate.Solved))
		diffInt(w, "censored", int64(a.Aggregate.Censored), int64(b.Aggregate.Censored))
		oldByKind := map[string]experiments.BenchQuality{}
		for _, q := range a.Quality {
			oldByKind[q.Heuristic] = q
		}
		for _, q := range b.Quality {
			if prev, ok := oldByKind[q.Heuristic]; ok {
				diffFloat(w, "mean_states["+q.Heuristic+"]", prev.MeanStates, q.MeanStates)
			}
		}
		return nil
	}
	return fmt.Errorf("diff: unsupported artifact kind %q", oldIn.kind)
}

func diffInt(w io.Writer, name string, a, b int64) {
	fmt.Fprintf(w, "  %-24s %12d -> %-12d%s\n", name, a, b, pct(float64(a), float64(b)))
}

func diffFloat(w io.Writer, name string, a, b float64) {
	fmt.Fprintf(w, "  %-24s %12.3f -> %-12.3f%s\n", name, a, b, pct(a, b))
}

func pct(a, b float64) string {
	if a == 0 {
		return ""
	}
	d := 100 * (b - a) / a
	return fmt.Sprintf(" (%+.1f%%)", d)
}
