// Command tnfconv converts between the critical-instance text format and
// Tuple Normal Form (TNF), the fixed-schema interoperability encoding of
// Litwin et al. that TUPELO uses internally (§2.2 of "Data Mapping as
// Search").
//
// Usage:
//
//	tnfconv encode -input db.txt      # instance text -> TNF (TSV)
//	tnfconv decode -input db.tnf      # TNF (TSV)     -> instance text
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"tupelo"
	"tupelo/internal/tnf"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tnfconv encode|decode -input FILE")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "encode":
		err = encode(os.Args[2:])
	case "decode":
		err = decode(os.Args[2:])
	default:
		err = fmt.Errorf("unknown command %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tnfconv: %v\n", err)
		os.Exit(1)
	}
}

func encode(args []string) error {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	inPath := fs.String("input", "", "instance file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" {
		return fmt.Errorf("encode: -input is required")
	}
	f, err := os.Open(*inPath)
	if err != nil {
		return err
	}
	defer f.Close()
	inst, err := tupelo.ReadInstance(f)
	if err != nil {
		return err
	}
	fmt.Print(tnf.Encode(inst.DB))
	return nil
}

func decode(args []string) error {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	inPath := fs.String("input", "", "TNF file (TSV with TID REL ATT VALUE header)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" {
		return fmt.Errorf("decode: -input is required")
	}
	f, err := os.Open(*inPath)
	if err != nil {
		return err
	}
	defer f.Close()
	var table tnf.Table
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		cols := strings.Split(line, "\t")
		if lineNo == 1 && strings.EqualFold(cols[0], "TID") {
			continue // header
		}
		if len(cols) != 4 {
			return fmt.Errorf("decode: line %d: want 4 tab-separated columns, got %d", lineNo, len(cols))
		}
		table.Rows = append(table.Rows, tnf.Row{TID: cols[0], Rel: cols[1], Att: cols[2], Value: cols[3]})
	}
	if err := sc.Err(); err != nil {
		return err
	}
	db, err := tnf.Decode(&table)
	if err != nil {
		return err
	}
	return tupelo.WriteInstance(os.Stdout, &tupelo.Instance{DB: db})
}
