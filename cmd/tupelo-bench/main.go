// Command tupelo-bench regenerates the evaluation of "Data Mapping as
// Search" (EDBT 2006, §5): every figure of the paper's three experiments
// plus the scaling-constant calibration table.
//
//	tupelo-bench -exp 1          # Figs. 5 & 6 (synthetic schema matching)
//	tupelo-bench -exp 2          # Figs. 7 & 8 (BAMM deep-web matching)
//	tupelo-bench -exp 3          # Fig. 9      (complex semantic mapping)
//	tupelo-bench -exp calibrate  # scaling-constant table
//	tupelo-bench -exp all
//
// The performance measure is the number of states examined, as in the
// paper. Use -tsv for gnuplot-ready series output and -budget to bound
// each run (censored runs print as >=budget, mirroring the saturated
// curves in the paper's log-scale plots).
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"

	"tupelo/internal/experiments"
	"tupelo/internal/obs"
	"tupelo/internal/search"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: 1, 2, 3, calibrate, scaling, hybrid, portfolio, all")
	algoName := flag.String("algo", "", "restrict exp 1 to one algorithm (ida or rbfs)")
	domain := flag.String("domain", "Inventory", "exp 3 domain: Inventory or RealEstateII")
	budget := flag.Int("budget", 50000, "state budget per run")
	seed := flag.Int64("seed", 2006, "workload generator seed")
	sample := flag.Int("sample", 1, "exp 2: map every n-th sibling schema only")
	workers := flag.Int("workers", 0, "successor-generation worker pool size (0 = GOMAXPROCS)")
	tsv := flag.Bool("tsv", false, "emit raw measurements as TSV instead of tables")
	verbose := flag.Bool("v", false, "print per-run progress to stderr")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics snapshot (counters, gauges, timers) to FILE when done")
	metricsAddr := flag.String("metrics-addr", "", "serve live metrics over HTTP at HOST:PORT (/metrics; ?format=json) while running")
	flag.Parse()

	cfg := experiments.Config{Budget: *budget, Seed: *seed, Workers: *workers}
	if *verbose {
		cfg.Progress = os.Stderr
	}
	if *metricsOut != "" || *metricsAddr != "" {
		cfg.Metrics = obs.NewRegistry()
	}
	if *metricsAddr != "" {
		ln, lerr := net.Listen("tcp", *metricsAddr)
		if lerr != nil {
			fmt.Fprintf(os.Stderr, "tupelo-bench: metrics-addr: %v\n", lerr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tupelo-bench: serving metrics on http://%s/metrics\n", ln.Addr())
		mux := http.NewServeMux()
		mux.Handle("/metrics", cfg.Metrics.Handler())
		go func() { _ = http.Serve(ln, mux) }()
	}

	var err error
	switch *exp {
	case "1":
		err = runExp1(*algoName, cfg, *tsv, os.Stdout)
	case "2":
		err = runExp2(cfg, *sample, *tsv, os.Stdout)
	case "3":
		err = runExp3(*domain, cfg, *tsv, os.Stdout)
	case "calibrate":
		err = runCalibrate(cfg, os.Stdout)
	case "scaling":
		err = runScaling(cfg, os.Stdout)
	case "hybrid":
		err = runHybrid(cfg, os.Stdout)
	case "portfolio":
		err = runPortfolio(cfg, *sample, os.Stdout)
	case "all":
		for _, step := range []func() error{
			func() error { return runExp1(*algoName, cfg, *tsv, os.Stdout) },
			func() error { return runExp2(cfg, *sample, *tsv, os.Stdout) },
			func() error { return runExp3(*domain, cfg, *tsv, os.Stdout) },
			func() error { return runCalibrate(cfg, os.Stdout) },
			func() error { return runScaling(cfg, os.Stdout) },
			func() error { return runHybrid(cfg, os.Stdout) },
			func() error { return runPortfolio(cfg, 0, os.Stdout) },
		} {
			if err = step(); err != nil {
				break
			}
		}
	default:
		err = fmt.Errorf("unknown experiment %q", *exp)
	}
	// Written even after a failed experiment so partial counters (runs
	// completed before the failure, abort causes) are not lost.
	if *metricsOut != "" {
		if werr := writeMetricsFile(*metricsOut, cfg.Metrics); werr != nil {
			fmt.Fprintf(os.Stderr, "tupelo-bench: %v\n", werr)
			os.Exit(1)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tupelo-bench: %v\n", err)
		os.Exit(1)
	}
}

// writeMetricsFile dumps the registry's JSON snapshot to path.
func writeMetricsFile(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func algos(name string) ([]search.Algorithm, error) {
	switch strings.ToLower(name) {
	case "":
		return []search.Algorithm{search.IDA, search.RBFS}, nil
	case "ida":
		return []search.Algorithm{search.IDA}, nil
	case "rbfs":
		return []search.Algorithm{search.RBFS}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

func runExp1(algoName string, cfg experiments.Config, tsv bool, w io.Writer) error {
	as, err := algos(algoName)
	if err != nil {
		return err
	}
	for _, algo := range as {
		fig := "Fig. 5"
		if algo == search.RBFS {
			fig = "Fig. 6"
		}
		fmt.Fprintf(w, "== Experiment 1 (%s): synthetic schema matching, %s ==\n", fig, algo)
		ms, err := experiments.RunExp1(experiments.DefaultExp1Options(algo), cfg)
		if err != nil {
			return err
		}
		if tsv {
			if err := experiments.WriteSeriesTSV(w, ms); err != nil {
				return err
			}
			continue
		}
		if err := experiments.WriteSeriesTable(w, ms, algo); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

func runExp2(cfg experiments.Config, sample int, tsv bool, w io.Writer) error {
	fmt.Fprintf(w, "== Experiment 2 (Figs. 7–8): BAMM deep-web schema matching ==\n")
	ms, err := experiments.RunExp2(experiments.Exp2Options{SampleEvery: sample}, cfg)
	if err != nil {
		return err
	}
	if tsv {
		return experiments.WriteSeriesTSV(w, ms)
	}
	byDomain := experiments.AverageByDomain(ms)
	for _, algo := range experiments.BothAlgorithms() {
		fmt.Fprintf(w, "-- Fig. 7, %s: average states examined per domain --\n", algo)
		if err := experiments.WriteExp2Table(w, byDomain, algo); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "-- Fig. 8: average states examined across all domains --")
	if err := experiments.WriteExp2Overall(w, experiments.AverageOverall(ms)); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

func runExp3(domain string, cfg experiments.Config, tsv bool, w io.Writer) error {
	fmt.Fprintf(w, "== Experiment 3 (Fig. 9): complex semantic mapping, %s ==\n", domain)
	opts := experiments.DefaultExp3Options()
	opts.Domain = domain
	ms, err := experiments.RunExp3(opts, cfg)
	if err != nil {
		return err
	}
	if tsv {
		return experiments.WriteSeriesTSV(w, ms)
	}
	for _, algo := range experiments.BothAlgorithms() {
		sub := "(a)"
		if algo == search.RBFS {
			sub = "(b)"
		}
		fmt.Fprintf(w, "-- Fig. 9%s, %s: states examined vs number of complex functions --\n", sub, algo)
		if err := experiments.WriteSeriesTable(w, ms, algo); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

func runScaling(cfg experiments.Config, w io.Writer) error {
	fmt.Fprintln(w, "== Extension: instance-size scaling (branching ∝ |s|+|t|, §2.3) ==")
	rows, err := experiments.RunScaling(experiments.ScalingOptions{}, cfg)
	if err != nil {
		return err
	}
	if err := experiments.WriteScalingTable(w, rows); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

func runHybrid(cfg experiments.Config, w io.Writer) error {
	fmt.Fprintln(w, "== Extension: content+structure heuristics (§7 open question) ==")
	rows, err := experiments.RunHeuristicComparison(nil, cfg)
	if err != nil {
		return err
	}
	if err := experiments.WriteComparisonTable(w, rows); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

func runPortfolio(cfg experiments.Config, sample int, w io.Writer) error {
	fmt.Fprintln(w, "== Extension: portfolio race vs best sequential configuration (BAMM tasks) ==")
	rows, err := experiments.RunPortfolio(experiments.PortfolioOptions{SampleEvery: sample}, cfg)
	if err != nil {
		return err
	}
	if err := experiments.WritePortfolioTable(w, rows); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

func runCalibrate(cfg experiments.Config, w io.Writer) error {
	fmt.Fprintln(w, "== Calibration (§5 setup): scaling constants k ==")
	rs, err := experiments.RunCalibrate(experiments.CalibrateOptions{}, cfg)
	if err != nil {
		return err
	}
	if err := experiments.WriteCalibrationTable(w, rs); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}
