// Command tupelo-bench regenerates the evaluation of "Data Mapping as
// Search" (EDBT 2006, §5): every figure of the paper's three experiments
// plus the scaling-constant calibration table.
//
//	tupelo-bench -exp 1          # Figs. 5 & 6 (synthetic schema matching)
//	tupelo-bench -exp 2          # Figs. 7 & 8 (BAMM deep-web matching)
//	tupelo-bench -exp 3          # Fig. 9      (complex semantic mapping)
//	tupelo-bench -exp calibrate  # scaling-constant table
//	tupelo-bench -exp parallel   # hash-sharded parallel A* sweep (-workers)
//	tupelo-bench -exp all
//
// The performance measure is the number of states examined, as in the
// paper. Use -tsv for gnuplot-ready series output and -budget to bound
// each run (censored runs print as >=budget, mirroring the saturated
// curves in the paper's log-scale plots).
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux for -pprof-addr
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"

	"tupelo/internal/experiments"
	"tupelo/internal/obs"
	"tupelo/internal/search"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: 1, 2, 3, calibrate, scaling, hybrid, portfolio, parallel, all")
	algoName := flag.String("algo", "", "restrict exp 1 to one algorithm ("+benchAlgoNames(" or ")+")")
	domain := flag.String("domain", "Inventory", "exp 3 domain: Inventory or RealEstateII")
	budget := flag.Int("budget", 50000, "state budget per run")
	maxMem := flag.Uint64("max-mem", 0, "heap budget per run in bytes (0 = none); aborted runs count as censored")
	bestEffort := flag.Bool("best-effort", false, "budget-aborted runs report actual states examined (censored) instead of failing")
	retries := flag.Int("retries", 0, "portfolio experiment: restart budget for panicked or failed members")
	seed := flag.Int64("seed", 2006, "workload generator seed")
	sample := flag.Int("sample", 1, "exp 2: map every n-th sibling schema only")
	ks := flag.String("ks", "", "calibrate: comma-separated candidate scaling constants (default 1..30)")
	workers := flag.Int("workers", 0, "successor-generation worker pool size (0 = GOMAXPROCS)")
	tsv := flag.Bool("tsv", false, "emit raw measurements as TSV instead of tables")
	verbose := flag.Bool("v", false, "print per-run progress to stderr")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics snapshot (counters, gauges, timers) to FILE when done")
	metricsAddr := flag.String("metrics-addr", "", "serve live metrics over HTTP at HOST:PORT (/metrics; ?format=json) while running")
	benchOut := flag.String("bench-out", "", "write a machine-readable benchmark report (schema "+experiments.BenchSchema+") to FILE when done")
	benchHistory := flag.String("bench-history", "", "append a one-line "+experiments.BenchSchema+" summary of this run to FILE (JSONL trajectory); with -check-bench, compare the report against the best prior entry instead")
	checkBench := flag.String("check-bench", "", "validate FILE as a benchmark report and exit (used by CI)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof at HOST:PORT (/debug/pprof/) while running")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to FILE")
	memprofile := flag.String("memprofile", "", "write a heap profile to FILE when done")
	flag.Parse()

	if *checkBench != "" {
		data, err := os.ReadFile(*checkBench)
		var report *experiments.BenchReport
		if err == nil {
			report, err = experiments.ParseBenchReport(data)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tupelo-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid %s report\n", *checkBench, experiments.BenchSchema)
		if *benchHistory != "" {
			hist, herr := os.ReadFile(*benchHistory)
			if herr != nil {
				fmt.Fprintf(os.Stderr, "tupelo-bench: %v\n", herr)
				os.Exit(1)
			}
			entries, herr := experiments.ParseHistory(hist)
			if herr != nil {
				fmt.Fprintf(os.Stderr, "tupelo-bench: %v\n", herr)
				os.Exit(1)
			}
			fmt.Println(experiments.RegressionReport(report.Summary(), entries))
		}
		return
	}

	cfg := experiments.Config{
		Budget:       *budget,
		Seed:         *seed,
		Workers:      *workers,
		MaxHeapBytes: *maxMem,
		BestEffort:   *bestEffort,
		Retries:      *retries,
	}
	if *verbose {
		cfg.Progress = os.Stderr
	}
	if *metricsOut != "" || *metricsAddr != "" || *benchOut != "" || *benchHistory != "" {
		cfg.Metrics = obs.NewRegistry()
	}
	var (
		collectMu sync.Mutex
		collected []experiments.Measurement
	)
	if *benchOut != "" || *benchHistory != "" {
		cfg.Collect = func(m experiments.Measurement) {
			collectMu.Lock()
			collected = append(collected, m)
			collectMu.Unlock()
		}
	}
	if *metricsAddr != "" {
		ln, lerr := net.Listen("tcp", *metricsAddr)
		if lerr != nil {
			fmt.Fprintf(os.Stderr, "tupelo-bench: metrics-addr: %v\n", lerr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tupelo-bench: serving metrics on http://%s/metrics\n", ln.Addr())
		mux := http.NewServeMux()
		mux.Handle("/metrics", cfg.Metrics.Handler())
		go func() { _ = http.Serve(ln, mux) }()
	}
	if *pprofAddr != "" {
		ln, lerr := net.Listen("tcp", *pprofAddr)
		if lerr != nil {
			fmt.Fprintf(os.Stderr, "tupelo-bench: pprof-addr: %v\n", lerr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tupelo-bench: serving pprof on http://%s/debug/pprof/\n", ln.Addr())
		// The blank net/http/pprof import registers its handlers on the
		// default mux, kept separate from the metrics mux above.
		go func() { _ = http.Serve(ln, http.DefaultServeMux) }()
	}
	if *cpuprofile != "" {
		f, perr := os.Create(*cpuprofile)
		if perr != nil {
			fmt.Fprintf(os.Stderr, "tupelo-bench: cpuprofile: %v\n", perr)
			os.Exit(1)
		}
		if perr := pprof.StartCPUProfile(f); perr != nil {
			fmt.Fprintf(os.Stderr, "tupelo-bench: cpuprofile: %v\n", perr)
			os.Exit(1)
		}
		// Stopped explicitly after the experiments: os.Exit on the error
		// paths below would skip a defer.
	}

	var err error
	switch *exp {
	case "1":
		err = runExp1(*algoName, cfg, *tsv, os.Stdout)
	case "2":
		err = runExp2(cfg, *sample, *tsv, os.Stdout)
	case "3":
		err = runExp3(*domain, cfg, *tsv, os.Stdout)
	case "calibrate":
		err = runCalibrate(*ks, cfg, os.Stdout)
	case "scaling":
		err = runScaling(cfg, os.Stdout)
	case "parallel":
		err = runParallelSweep(cfg, os.Stdout)
	case "hybrid":
		err = runHybrid(cfg, os.Stdout)
	case "portfolio":
		err = runPortfolio(cfg, *sample, os.Stdout)
	case "all":
		for _, step := range []func() error{
			func() error { return runExp1(*algoName, cfg, *tsv, os.Stdout) },
			func() error { return runExp2(cfg, *sample, *tsv, os.Stdout) },
			func() error { return runExp3(*domain, cfg, *tsv, os.Stdout) },
			func() error { return runCalibrate(*ks, cfg, os.Stdout) },
			func() error { return runScaling(cfg, os.Stdout) },
			func() error { return runParallelSweep(cfg, os.Stdout) },
			func() error { return runHybrid(cfg, os.Stdout) },
			func() error { return runPortfolio(cfg, 0, os.Stdout) },
		} {
			if err = step(); err != nil {
				break
			}
		}
	default:
		err = fmt.Errorf("unknown experiment %q", *exp)
	}
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		if werr := writeHeapProfile(*memprofile); werr != nil {
			fmt.Fprintf(os.Stderr, "tupelo-bench: %v\n", werr)
			os.Exit(1)
		}
	}
	// Written even after a failed experiment so partial counters (runs
	// completed before the failure, abort causes) are not lost.
	if *metricsOut != "" {
		if werr := writeMetricsFile(*metricsOut, cfg.Metrics); werr != nil {
			fmt.Fprintf(os.Stderr, "tupelo-bench: %v\n", werr)
			os.Exit(1)
		}
	}
	if *benchOut != "" || *benchHistory != "" {
		collectMu.Lock()
		ms := collected
		collectMu.Unlock()
		r := experiments.NewBenchReport(*exp, cfg, ms)
		r.AttachMetrics(cfg.Metrics)
		if *benchOut != "" {
			if werr := writeBenchFile(*benchOut, r); werr != nil {
				fmt.Fprintf(os.Stderr, "tupelo-bench: %v\n", werr)
				os.Exit(1)
			}
		}
		if *benchHistory != "" {
			if werr := experiments.AppendHistory(*benchHistory, r.Summary()); werr != nil {
				fmt.Fprintf(os.Stderr, "tupelo-bench: %v\n", werr)
				os.Exit(1)
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tupelo-bench: %v\n", err)
		os.Exit(1)
	}
}

// writeBenchFile writes the machine-readable benchmark report.
func writeBenchFile(path string, r *experiments.BenchReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeHeapProfile forces a GC (so the profile reflects live objects, as
// the runtime/pprof docs recommend) and writes the heap profile to path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetricsFile dumps the registry's JSON snapshot to path.
func writeMetricsFile(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// benchAlgoNames joins the CLI names of the experiment algorithms with sep;
// flag help and the algos() error are both generated from it, so neither
// can drift from what the experiments actually run.
func benchAlgoNames(sep string) string {
	names := make([]string, 0, 2)
	for _, a := range experiments.BothAlgorithms() {
		names = append(names, a.CLIName())
	}
	return strings.Join(names, sep)
}

func algos(name string) ([]search.Algorithm, error) {
	if name == "" {
		return experiments.BothAlgorithms(), nil
	}
	for _, a := range experiments.BothAlgorithms() {
		if a.CLIName() == strings.ToLower(name) {
			return []search.Algorithm{a}, nil
		}
	}
	return nil, fmt.Errorf("unknown algorithm %q (valid: %s)", name, benchAlgoNames(", "))
}

func runExp1(algoName string, cfg experiments.Config, tsv bool, w io.Writer) error {
	as, err := algos(algoName)
	if err != nil {
		return err
	}
	for _, algo := range as {
		fig := "Fig. 5"
		if algo == search.RBFS {
			fig = "Fig. 6"
		}
		fmt.Fprintf(w, "== Experiment 1 (%s): synthetic schema matching, %s ==\n", fig, algo)
		ms, err := experiments.RunExp1(experiments.DefaultExp1Options(algo), cfg)
		if err != nil {
			return err
		}
		if tsv {
			if err := experiments.WriteSeriesTSV(w, ms); err != nil {
				return err
			}
			continue
		}
		if err := experiments.WriteSeriesTable(w, ms, algo); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

func runExp2(cfg experiments.Config, sample int, tsv bool, w io.Writer) error {
	fmt.Fprintf(w, "== Experiment 2 (Figs. 7–8): BAMM deep-web schema matching ==\n")
	ms, err := experiments.RunExp2(experiments.Exp2Options{SampleEvery: sample}, cfg)
	if err != nil {
		return err
	}
	if tsv {
		return experiments.WriteSeriesTSV(w, ms)
	}
	byDomain := experiments.AverageByDomain(ms)
	for _, algo := range experiments.BothAlgorithms() {
		fmt.Fprintf(w, "-- Fig. 7, %s: average states examined per domain --\n", algo)
		if err := experiments.WriteExp2Table(w, byDomain, algo); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "-- Fig. 8: average states examined across all domains --")
	if err := experiments.WriteExp2Overall(w, experiments.AverageOverall(ms)); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

func runExp3(domain string, cfg experiments.Config, tsv bool, w io.Writer) error {
	fmt.Fprintf(w, "== Experiment 3 (Fig. 9): complex semantic mapping, %s ==\n", domain)
	opts := experiments.DefaultExp3Options()
	opts.Domain = domain
	ms, err := experiments.RunExp3(opts, cfg)
	if err != nil {
		return err
	}
	if tsv {
		return experiments.WriteSeriesTSV(w, ms)
	}
	for _, algo := range experiments.BothAlgorithms() {
		sub := "(a)"
		if algo == search.RBFS {
			sub = "(b)"
		}
		fmt.Fprintf(w, "-- Fig. 9%s, %s: states examined vs number of complex functions --\n", sub, algo)
		if err := experiments.WriteSeriesTable(w, ms, algo); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

func runScaling(cfg experiments.Config, w io.Writer) error {
	fmt.Fprintln(w, "== Extension: instance-size scaling (branching ∝ |s|+|t|, §2.3) ==")
	rows, err := experiments.RunScaling(experiments.ScalingOptions{}, cfg)
	if err != nil {
		return err
	}
	if err := experiments.WriteScalingTable(w, rows); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

func runParallelSweep(cfg experiments.Config, w io.Writer) error {
	fmt.Fprintln(w, "== Extension: hash-sharded parallel A* (DESIGN.md §10) ==")
	opts := experiments.ParallelOptions{}
	// -workers widens the sweep beyond the default {1, 2, 4} ladder.
	if cfg.Workers > 4 {
		opts.Workers = []int{1, 2, 4, cfg.Workers}
	}
	rows, err := experiments.RunParallelSweep(opts, cfg)
	if err != nil {
		return err
	}
	if err := experiments.WriteParallelTable(w, rows); err != nil {
		return err
	}
	fmt.Fprintln(w, "(speedup is wall clock vs workers=1; on a single-core host it measures sharding overhead)")
	fmt.Fprintln(w)
	return nil
}

func runHybrid(cfg experiments.Config, w io.Writer) error {
	fmt.Fprintln(w, "== Extension: content+structure heuristics (§7 open question) ==")
	rows, err := experiments.RunHeuristicComparison(nil, cfg)
	if err != nil {
		return err
	}
	if err := experiments.WriteComparisonTable(w, rows); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

func runPortfolio(cfg experiments.Config, sample int, w io.Writer) error {
	fmt.Fprintln(w, "== Extension: portfolio race vs best sequential configuration (BAMM tasks) ==")
	rows, err := experiments.RunPortfolio(experiments.PortfolioOptions{SampleEvery: sample}, cfg)
	if err != nil {
		return err
	}
	if err := experiments.WritePortfolioTable(w, rows); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

func runCalibrate(ks string, cfg experiments.Config, w io.Writer) error {
	fmt.Fprintln(w, "== Calibration (§5 setup): scaling constants k ==")
	opts := experiments.CalibrateOptions{}
	if ks != "" {
		for _, part := range strings.Split(ks, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("-ks: %v", err)
			}
			opts.Ks = append(opts.Ks, k)
		}
	}
	rs, err := experiments.RunCalibrate(opts, cfg)
	if err != nil {
		return err
	}
	if err := experiments.WriteCalibrationTable(w, rs); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}
