// Command tupelo-serve runs mapping discovery as a long-lived service: an
// HTTP/JSON daemon that accepts discovery jobs, executes them through the
// portfolio engine under the resilience stack, and persists solved
// mappings in a crash-safe repository keyed by the (source, target)
// critical-instance fingerprints — repeat requests are repository hits,
// not searches.
//
// Usage:
//
//	tupelo-serve -repo DIR [-addr HOST:PORT] [flags]
//
// Endpoints: POST /v1/jobs, GET /v1/mappings[/{key}], GET /v1/stats,
// GET /healthz, GET /readyz, GET /metrics. On SIGTERM/SIGINT the daemon
// stops admitting, drains in-flight jobs within -drain-timeout (their
// best-effort partials are persisted), and exits 0 on a clean drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"tupelo/internal/obs"
	"tupelo/internal/repo"
	"tupelo/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "tupelo-serve: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tupelo-serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	repoDir := fs.String("repo", "", "mapping repository directory (required; created if absent)")
	forensics := fs.String("forensics", "", "directory for flight-recorder dumps and run reports (empty = disabled)")
	queue := fs.Int("queue", 16, "max jobs waiting for an execution slot before submissions get 429")
	maxConcurrent := fs.Int("max-concurrent", 2, "max jobs executing simultaneously")
	tenantActive := fs.Int("tenant-active", 4, "max queued+running jobs per tenant")
	jobTimeout := fs.Duration("job-timeout", 30*time.Second, "per-job wall-clock ceiling")
	maxStates := fs.Int("max-states", 200_000, "per-job state-budget ceiling")
	maxMem := fs.String("max-mem", "", "per-job heap budget, e.g. 256M (empty = none)")
	bestEffort := fs.Bool("best-effort", true, "return best-effort partial mappings for aborted jobs")
	retries := fs.Int("retries", 1, "portfolio restart budget per job")
	workers := fs.Int("workers", 1, "per-job worker budget")
	breakerN := fs.Int("breaker-threshold", 3, "consecutive panic/memory verdicts that open a tenant's circuit (-1 disables)")
	breakerCool := fs.Duration("breaker-cooldown", 30*time.Second, "how long an open circuit rejects a tenant")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight jobs before cancelling them")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *repoDir == "" {
		return fmt.Errorf("-repo is required")
	}
	heapBudget, err := parseByteSize(*maxMem)
	if err != nil {
		return fmt.Errorf("max-mem: %v", err)
	}

	metrics := obs.NewRegistry()
	store, err := repo.Open(*repoDir, repo.Options{Metrics: metrics})
	if err != nil {
		return err
	}
	if st := store.Stats(); st.Quarantined > 0 {
		log.Printf("repository recovery: %d entries loaded, %d corrupt files quarantined under %s",
			st.Entries, st.Quarantined, *repoDir)
	} else {
		log.Printf("repository: %d entries loaded from %s", st.Entries, *repoDir)
	}

	srv, err := server.New(server.Config{
		Repo:             store,
		ForensicsDir:     *forensics,
		QueueDepth:       *queue,
		MaxConcurrent:    *maxConcurrent,
		TenantMaxActive:  *tenantActive,
		JobTimeout:       *jobTimeout,
		MaxStates:        *maxStates,
		MaxHeapBytes:     heapBudget,
		BestEffort:       *bestEffort,
		MaxRetries:       *retries,
		Workers:          *workers,
		BreakerThreshold: *breakerN,
		BreakerCooldown:  *breakerCool,
		Metrics:          metrics,
		RetrySeed:        time.Now().UnixNano(),
		Debugf:           log.Printf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if serr := httpSrv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
			errCh <- serr
		}
	}()
	log.Printf("serving on http://%s (drain timeout %s)", ln.Addr(), *drainTimeout)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		log.Printf("received %s; draining", sig)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Shutdown(drainCtx)
	// The jobs have drained (or been cancelled into persisted partials);
	// now close the listener and let in-flight responses flush.
	httpCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if herr := httpSrv.Shutdown(httpCtx); herr != nil && drainErr == nil {
		drainErr = herr
	}
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	log.Printf("drained cleanly; repository has %d entries", store.Stats().Entries)
	return nil
}

// parseByteSize reads sizes like "64M", "2G", "512k", or plain bytes.
func parseByteSize(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	mult := uint64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	return n * mult, nil
}
