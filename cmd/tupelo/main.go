// Command tupelo discovers and applies data mapping expressions between
// relational schemas from example (critical) instances, implementing the
// TUPELO system of "Data Mapping as Search" (EDBT 2006).
//
// Usage:
//
//	tupelo discover -source src.txt -target tgt.txt [flags]
//	tupelo apply    -mapping map.txt -input db.txt [flags]
//	tupelo show     -input db.txt [-tnf]
//
// Critical instances use the text format of package critio: relation
// blocks plus optional "map f(In,...) -> Out [on Rel]" directives declaring
// complex semantic correspondences.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof-addr: registers profiling handlers on the default mux
	"os"
	"strconv"
	"strings"
	"time"

	"tupelo"
	"tupelo/internal/search"
	"tupelo/internal/tnf"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "discover":
		err = cmdDiscover(os.Args[2:])
	case "apply":
		err = cmdApply(os.Args[2:])
	case "show":
		err = cmdShow(os.Args[2:])
	case "sql":
		err = cmdSQL(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "tupelo: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tupelo: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	// The -algo and -heuristic alternatives are generated from the parser's
	// own name lists so this text cannot drift from what is accepted.
	fmt.Fprintf(os.Stderr, `usage:
  tupelo discover -source src.txt -target tgt.txt [-algo %s]
                  [-heuristic %s]
                  [-k N] [-max-states N] [-timeout DUR] [-max-mem SIZE]
                  [-best-effort] [-workers N] [-parallel]
                  [-portfolio default|SPEC,SPEC,...] [-retries N]
                  [-simplify] [-pretty] [-stats]
                  [-trace] [-trace-json FILE] [-trace-sample N]
                  [-profile FILE] [-trace-chrome FILE]
                  [-report FILE] [-flight FILE] [-shard-inbox-cap N]
                  [-metrics] [-metrics-addr HOST:PORT] [-pprof-addr HOST:PORT]
                  (a portfolio SPEC is algo/heuristic or algo/heuristic/K,
                   e.g. -portfolio rbfs/cosine,ida/h1,rbfs/levenshtein/15)
  tupelo apply    -mapping map.txt -input db.txt [-where PRED -on REL]
                  [-conform tgt.txt [-drop-absent]]
  tupelo show     -input db.txt [-tnf]
  tupelo sql      -mapping map.txt -sample src.txt [-prefix stage_]
`, strings.Join(tupelo.AlgorithmNames(), "|"), strings.Join(tupelo.HeuristicNames(), "|"))
}

// parsePortfolio reads a -portfolio spec: "default" for the built-in
// lineup, or comma-separated "algo/heuristic" or "algo/heuristic/K"
// members.
func parsePortfolio(spec string) ([]tupelo.PortfolioConfig, error) {
	if strings.EqualFold(spec, "default") {
		return tupelo.DefaultPortfolio(), nil
	}
	var configs []tupelo.PortfolioConfig
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), "/")
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("portfolio member %q: want algo/heuristic or algo/heuristic/K", part)
		}
		algo, err := tupelo.ParseAlgorithm(fields[0])
		if err != nil {
			return nil, fmt.Errorf("portfolio member %q: %v", part, err)
		}
		heur, err := tupelo.ParseHeuristic(fields[1])
		if err != nil {
			return nil, fmt.Errorf("portfolio member %q: %v", part, err)
		}
		cfg := tupelo.PortfolioConfig{Algorithm: algo, Heuristic: heur}
		if len(fields) == 3 {
			k, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("portfolio member %q: bad k: %v", part, err)
			}
			cfg.K = k
		}
		configs = append(configs, cfg)
	}
	if len(configs) == 0 {
		return nil, fmt.Errorf("empty portfolio spec")
	}
	return configs, nil
}

func readInstanceFile(path string) (*tupelo.Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return tupelo.ReadInstance(f)
}

func cmdDiscover(args []string) error {
	fs := flag.NewFlagSet("discover", flag.ExitOnError)
	srcPath := fs.String("source", "", "source critical instance file")
	tgtPath := fs.String("target", "", "target critical instance file")
	algoName := fs.String("algo", "rbfs", "search algorithm ("+strings.Join(tupelo.AlgorithmNames(), ", ")+")")
	heurName := fs.String("heuristic", "cosine", "search heuristic ("+strings.Join(tupelo.HeuristicNames(), ", ")+")")
	k := fs.Float64("k", 0, "scaling constant (0 = paper default for algo/heuristic)")
	maxStates := fs.Int("max-states", 0, "state budget (0 = 1,000,000)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for discovery (0 = none)")
	maxMem := fs.String("max-mem", "", "heap budget for discovery, e.g. 64M or 2G (empty = none)")
	bestEffort := fs.Bool("best-effort", false, "on a budget/deadline abort, emit the closest partial mapping instead of failing")
	retries := fs.Int("retries", 0, "with -portfolio: restart budget for panicked or failed members")
	workers := fs.Int("workers", 0, "successor-generation worker pool size (0 = GOMAXPROCS)")
	parallel := fs.Bool("parallel", false, "shard one search across -workers goroutines by state hash (HDA*-style; implies -algo astar unless -algo greedy is given)")
	portfolio := fs.String("portfolio", "", `race configurations: "default" or "algo/heur[/k],..." (overrides -algo/-heuristic/-k)`)
	simplify := fs.Bool("simplify", false, "simplify the discovered expression")
	pretty := fs.Bool("pretty", false, "also print paper-style notation")
	stats := fs.Bool("stats", false, "print search statistics to stderr")
	trace := fs.Bool("trace", false, "print a search transcript (goal tests, expansions, portfolio members) to stderr")
	traceJSON := fs.String("trace-json", "", "write the full structured event stream as JSON Lines to FILE")
	profilePath := fs.String("profile", "", "write a per-run performance profile (text report) to FILE")
	traceChrome := fs.String("trace-chrome", "", "write a Chrome trace_event JSON profile (chrome://tracing, Perfetto) to FILE")
	sampleN := fs.Int("trace-sample", 0, "forward only every Nth high-frequency trace event (0 or 1 = all)")
	reportPath := fs.String("report", "", "write a tupelo-report/v1 run report (JSON) to FILE, even on an aborted run (analyze with tupelo-trace)")
	flightPath := fs.String("flight", "", "arm the flight recorder; its rings are dumped as tupelo-flight/v1 JSONL to FILE only when the run dies abnormally (panic, memory abort, deadline)")
	shardInboxCap := fs.Int("shard-inbox-cap", 0, "with -parallel: per-shard inbound channel capacity (0 = engine default)")
	metrics := fs.Bool("metrics", false, "print a metrics snapshot (Prometheus text format) to stderr after the run")
	metricsAddr := fs.String("metrics-addr", "", "serve metrics over HTTP at HOST:PORT (/metrics; ?format=json) for the run's duration")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof at HOST:PORT (/debug/pprof/) for the run's duration")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *srcPath == "" || *tgtPath == "" {
		return fmt.Errorf("discover: -source and -target are required")
	}
	src, err := readInstanceFile(*srcPath)
	if err != nil {
		return err
	}
	tgt, err := readInstanceFile(*tgtPath)
	if err != nil {
		return err
	}
	algo, err := tupelo.ParseAlgorithm(*algoName)
	if err != nil {
		return err
	}
	if *parallel {
		// With -parallel, an untouched -algo default (rbfs) would be
		// rejected by normalization; let it resolve to the sharded engine's
		// default (A*) instead, while an explicit -algo stays authoritative.
		algoSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "algo" {
				algoSet = true
			}
		})
		if !algoSet {
			algo = tupelo.AlgorithmUnset
		}
	}
	heur, err := tupelo.ParseHeuristic(*heurName)
	if err != nil {
		return err
	}
	heapBudget, err := parseByteSize(*maxMem)
	if err != nil {
		return fmt.Errorf("max-mem: %v", err)
	}
	opts := tupelo.Options{
		Algorithm: algo,
		Heuristic: heur,
		K:         *k,
		Limits: search.Limits{
			MaxStates:     *maxStates,
			MaxHeapBytes:  heapBudget,
			BestEffort:    *bestEffort,
			ShardInboxCap: *shardInboxCap,
		},
		Workers:        *workers,
		ParallelSearch: *parallel,
		// Correspondences may be declared on either instance; the union
		// is available to the mapper.
		Correspondences: append(append([]tupelo.Correspondence(nil), src.Corrs...), tgt.Corrs...),
	}
	var tracers []tupelo.Tracer
	if *trace {
		tracers = append(tracers, tupelo.NewWriterTracer(os.Stderr))
	}
	if *traceJSON != "" {
		f, ferr := os.Create(*traceJSON)
		if ferr != nil {
			return fmt.Errorf("trace-json: %v", ferr)
		}
		defer f.Close()
		tracers = append(tracers, tupelo.NewJSONTracer(f))
	}
	if *profilePath != "" || *traceChrome != "" {
		prof := tupelo.NewProfile()
		tracers = append(tracers, prof)
		// Deferred so an aborted run (deadline, budget) still yields its
		// partial profile.
		defer func() {
			if *profilePath != "" {
				if werr := writeFileWith(*profilePath, prof.WriteReport); werr != nil {
					fmt.Fprintf(os.Stderr, "tupelo: profile: %v\n", werr)
				}
			}
			if *traceChrome != "" {
				if werr := writeFileWith(*traceChrome, prof.WriteChromeTrace); werr != nil {
					fmt.Fprintf(os.Stderr, "tupelo: trace-chrome: %v\n", werr)
				}
			}
		}()
	}
	switch len(tracers) {
	case 1:
		opts.Tracer = tracers[0]
	default:
		if len(tracers) > 1 {
			opts.Tracer = tupelo.MultiTracer(tracers...)
		}
	}
	if *sampleN > 1 && opts.Tracer != nil {
		opts.Tracer = tupelo.SampleTracer(opts.Tracer, *sampleN)
	}
	// The report builder rides outside the sampling wrapper: its cache and
	// shard accounting must see every event, not every Nth.
	var reportBuilder *tupelo.ReportBuilder
	if *reportPath != "" {
		reportBuilder = tupelo.NewReportBuilder()
		if opts.Tracer != nil {
			opts.Tracer = tupelo.MultiTracer(opts.Tracer, reportBuilder)
		} else {
			opts.Tracer = reportBuilder
		}
	}
	if *flightPath != "" {
		f, ferr := os.Create(*flightPath)
		if ferr != nil {
			return fmt.Errorf("flight: %v", ferr)
		}
		defer f.Close()
		fr := tupelo.NewFlightRecorder(0)
		fr.SetAutoDump(f)
		opts.Flight = fr
	}
	if *pprofAddr != "" {
		if err := servePprof(*pprofAddr); err != nil {
			return err
		}
	}
	if *metrics || *metricsAddr != "" || *reportPath != "" {
		// One registry, private to this run — which is exactly what the
		// report's shard section needs to sum to the run aggregates.
		reg := tupelo.NewMetrics()
		opts.Metrics = reg
		if *metricsAddr != "" {
			if err := serveMetrics(*metricsAddr, reg); err != nil {
				return err
			}
		}
		if *metrics {
			// Deferred so an aborted run (deadline, budget) still reports
			// its partial counters.
			defer reg.WritePrometheus(os.Stderr)
		}
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var res *tupelo.Result
	var runErr error
	if *portfolio != "" {
		configs, perr := parsePortfolio(*portfolio)
		if perr != nil {
			return fmt.Errorf("discover: %v", perr)
		}
		pres, perr := tupelo.DiscoverPortfolio(ctx, src.DB, tgt.DB, tupelo.PortfolioOptions{
			Configs:    configs,
			Options:    opts,
			MaxRetries: *retries,
		})
		runErr = perr
		if pres != nil {
			res = pres.Result
			if *stats {
				for _, run := range pres.Runs {
					status := "won"
					if run.Err != nil {
						status = "lost: " + run.Err.Error()
					}
					attempts := ""
					if run.Attempts > 1 {
						attempts = fmt.Sprintf(" attempts=%d", run.Attempts)
					}
					fmt.Fprintf(os.Stderr, "portfolio %-24s states=%-8d time=%-12s %s%s\n",
						run.Config, run.Stats.Examined, run.Duration.Round(time.Microsecond), status, attempts)
				}
			}
		}
	} else {
		res, runErr = tupelo.DiscoverContext(ctx, src.DB, tgt.DB, opts)
	}
	if *reportPath != "" {
		// Written even when discovery failed: the report carries the abort
		// cause and whatever the run learned before dying.
		werr := writeFileWith(*reportPath, func(w io.Writer) error {
			rep, berr := tupelo.BuildReport(res, runErr, src.DB, tgt.DB, opts, reportBuilder)
			if berr != nil {
				return berr
			}
			return tupelo.WriteRunReport(w, rep)
		})
		if werr != nil {
			fmt.Fprintf(os.Stderr, "tupelo: report: %v\n", werr)
		}
	}
	if runErr != nil {
		return runErr
	}
	if res.Partial {
		// Best-effort degradation: the run was aborted but -best-effort asked
		// for the closest state reached instead of an error.
		fmt.Fprintf(os.Stderr, "tupelo: discovery aborted (%v); emitting best-effort partial mapping (heuristic distance %d from target)\n",
			res.AbortErr, res.PartialH)
	}
	expr := res.Expr
	if *simplify {
		expr = tupelo.Simplify(expr, src.DB, tupelo.Builtins())
	}
	fmt.Println(expr)
	if *pretty {
		fmt.Println("#", expr.Pretty())
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "algorithm=%s heuristic=%s k=%g states=%d generated=%d depth=%d\n",
			res.Algorithm, res.Heuristic, res.K, res.Stats.Examined, res.Stats.Generated, res.Stats.Depth)
	}
	return nil
}

// serveMetrics exposes the registry over HTTP at /metrics (Prometheus text
// format; append ?format=json for the expvar-style snapshot) for the
// lifetime of the process. The listener is bound synchronously so address
// errors surface before the search starts.
func serveMetrics(addr string, reg *tupelo.Metrics) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("metrics-addr: %v", err)
	}
	fmt.Fprintf(os.Stderr, "tupelo: serving metrics on http://%s/metrics\n", ln.Addr())
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	go func() { _ = http.Serve(ln, mux) }()
	return nil
}

// servePprof exposes net/http/pprof (registered on the default mux by the
// blank import above) on its own listener, bound synchronously so address
// errors surface before the search starts.
func servePprof(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pprof-addr: %v", err)
	}
	fmt.Fprintf(os.Stderr, "tupelo: serving pprof on http://%s/debug/pprof/\n", ln.Addr())
	go func() { _ = http.Serve(ln, http.DefaultServeMux) }()
	return nil
}

// parseByteSize reads a byte size with an optional K/M/G suffix (powers of
// 1024) and optional trailing "B", e.g. "512M", "2g", "65536", "1GiB".
func parseByteSize(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "0" {
		return 0, nil
	}
	upper := strings.ToUpper(s)
	upper = strings.TrimSuffix(upper, "IB")
	upper = strings.TrimSuffix(upper, "B")
	mult := uint64(1)
	if n := len(upper); n > 0 {
		switch upper[n-1] {
		case 'K':
			mult, upper = 1<<10, upper[:n-1]
		case 'M':
			mult, upper = 1<<20, upper[:n-1]
		case 'G':
			mult, upper = 1<<30, upper[:n-1]
		}
	}
	v, err := strconv.ParseUint(strings.TrimSpace(upper), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	if mult > 1 && v > ^uint64(0)/mult {
		return 0, fmt.Errorf("byte size %q overflows", s)
	}
	return v * mult, nil
}

// writeFileWith creates path and streams fn's output into it.
func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cmdApply(args []string) error {
	fs := flag.NewFlagSet("apply", flag.ExitOnError)
	mapPath := fs.String("mapping", "", "mapping expression file")
	inPath := fs.String("input", "", "database instance file")
	where := fs.String("where", "", "post-processing σ predicate, e.g. 'Route in (ATL29, ORD17)'")
	on := fs.String("on", "", "relation the -where predicate filters")
	conformPath := fs.String("conform", "", "target instance file to conform the result to")
	dropAbsent := fs.Bool("drop-absent", false, "with -conform: drop rows holding absent values")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *mapPath == "" || *inPath == "" {
		return fmt.Errorf("apply: -mapping and -input are required")
	}
	exprText, err := os.ReadFile(*mapPath)
	if err != nil {
		return err
	}
	expr, err := tupelo.ParseExpr(string(exprText))
	if err != nil {
		return err
	}
	in, err := readInstanceFile(*inPath)
	if err != nil {
		return err
	}
	out, err := expr.Eval(in.DB, tupelo.Builtins())
	if err != nil {
		return err
	}
	if *where != "" {
		if *on == "" {
			return fmt.Errorf("apply: -where needs -on RELATION")
		}
		pred, err := tupelo.ParsePredicate(*where)
		if err != nil {
			return err
		}
		out, err = tupelo.Select(out, *on, pred)
		if err != nil {
			return err
		}
	}
	if *conformPath != "" {
		tgt, err := readInstanceFile(*conformPath)
		if err != nil {
			return err
		}
		out, err = tupelo.Conform(out, tgt.DB, tupelo.ConformOptions{DropAbsentRows: *dropAbsent})
		if err != nil {
			return err
		}
	}
	return tupelo.WriteInstance(os.Stdout, &tupelo.Instance{DB: out})
}

func cmdSQL(args []string) error {
	fs := flag.NewFlagSet("sql", flag.ExitOnError)
	mapPath := fs.String("mapping", "", "mapping expression file")
	samplePath := fs.String("sample", "", "sample instance file (typically the source critical instance)")
	prefix := fs.String("prefix", "", "intermediate table name prefix")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *mapPath == "" || *samplePath == "" {
		return fmt.Errorf("sql: -mapping and -sample are required")
	}
	exprText, err := os.ReadFile(*mapPath)
	if err != nil {
		return err
	}
	expr, err := tupelo.ParseExpr(string(exprText))
	if err != nil {
		return err
	}
	sample, err := readInstanceFile(*samplePath)
	if err != nil {
		return err
	}
	script, err := tupelo.GenerateSQL(expr, sample.DB, tupelo.SQLOptions{TempPrefix: *prefix})
	if err != nil {
		return err
	}
	fmt.Print(script)
	return nil
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	inPath := fs.String("input", "", "database instance file")
	showTNF := fs.Bool("tnf", false, "print the Tuple Normal Form encoding")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" {
		return fmt.Errorf("show: -input is required")
	}
	in, err := readInstanceFile(*inPath)
	if err != nil {
		return err
	}
	fmt.Println(in.DB)
	if *showTNF {
		fmt.Println(tnf.Encode(in.DB))
	}
	return nil
}
