package tupelo_test

import (
	"testing"

	"tupelo"
	"tupelo/internal/search"
	"tupelo/internal/sqlrun"
)

// TestFullPipeline is the repository's umbrella integration test: text
// instances in, discovery, simplification, verification, σ post-processing,
// SQL compilation and execution, and cross-checking every path against
// every other.
func TestFullPipeline(t *testing.T) {
	src, err := tupelo.ReadInstanceString(`
relation Prices
  Carrier  Route  Cost  AgentFee
  AirEast  ATL29  100   15
  JetWest  ATL29  200   16
  AirEast  ORD17  110   15
  JetWest  ORD17  220   16
`)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := tupelo.ReadInstanceString(`
relation Flights
  Carrier  Fee  ATL29  ORD17
  AirEast  15   100    110
  JetWest  16   200    220
`)
	if err != nil {
		t.Fatal(err)
	}

	// Discover and simplify.
	res, err := tupelo.Discover(src.DB, tgt.DB, tupelo.Options{
		Algorithm: tupelo.RBFS,
		Heuristic: tupelo.H3,
		Limits:    search.Limits{MaxStates: 200000},
	})
	if err != nil {
		t.Fatal(err)
	}
	expr := tupelo.Simplify(res.Expr, src.DB, nil)
	if err := tupelo.Verify(expr, src.DB, tgt.DB, nil); err != nil {
		t.Fatal(err)
	}

	// Direct evaluation of the mapping on a larger instance.
	full := tupelo.MustDatabase(
		tupelo.MustRelation("Prices", []string{"Carrier", "Route", "Cost", "AgentFee"},
			tupelo.Tuple{"AirEast", "ATL29", "100", "15"},
			tupelo.Tuple{"JetWest", "ATL29", "200", "16"},
			tupelo.Tuple{"AirEast", "ORD17", "110", "15"},
			tupelo.Tuple{"JetWest", "ORD17", "220", "16"},
			tupelo.Tuple{"SkyHop", "ATL29", "90", "9"},
			tupelo.Tuple{"SkyHop", "ORD17", "95", "9"},
		),
	)
	direct, err := expr.Eval(full, nil)
	if err != nil {
		t.Fatal(err)
	}

	// SQL path: compile against the full instance, execute, compare.
	script, err := tupelo.GenerateSQL(expr, full, tupelo.SQLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng := sqlrun.NewEngine(full)
	if err := eng.ExecScript(script.String()); err != nil {
		t.Fatal(err)
	}
	viaSQL, err := eng.Database(script.Final)
	if err != nil {
		t.Fatal(err)
	}
	if !viaSQL.Equal(direct) {
		t.Fatalf("SQL path diverges from direct evaluation:\n%s\nvs\n%s", viaSQL, direct)
	}

	// σ + conform: trim the mapped instance to exactly the target schema.
	conformed, err := tupelo.Conform(direct, tgt.DB, tupelo.ConformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := conformed.Relation("Flights")
	if !ok || r.Arity() != 4 || r.Len() != 3 {
		t.Fatalf("conformed result wrong:\n%s", conformed)
	}
	// The critical-instance rows must be present verbatim.
	if !conformed.Contains(tgt.DB) {
		t.Fatalf("conformed result lost target rows:\n%s", conformed)
	}

	// Branching factor of the original task stays within |s| + |t|.
	bf, err := tupelo.BranchingFactor(src.DB, tgt.DB, tupelo.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if bf <= 0 || bf > src.DB.Size()+tgt.DB.Size() {
		t.Fatalf("branching factor %d out of band", bf)
	}
}

// TestFacadePostproc exercises the σ API through the facade.
func TestFacadePostproc(t *testing.T) {
	db := tupelo.MustDatabase(
		tupelo.MustRelation("R", []string{"A", "B"},
			tupelo.Tuple{"keep", "1"},
			tupelo.Tuple{"drop", "2"},
		),
	)
	pred, err := tupelo.ParsePredicate("A = keep")
	if err != nil {
		t.Fatal(err)
	}
	out, err := tupelo.Select(db, "R", pred)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := out.Relation("R")
	if r.Len() != 1 {
		t.Fatalf("Select kept %d rows", r.Len())
	}
	if _, err := tupelo.ParsePredicate("not a predicate ("); err == nil {
		t.Fatal("bad predicate should fail")
	}
}

// TestFacadeExtendedHeuristics verifies the post-paper heuristics are
// reachable through the public API.
func TestFacadeExtendedHeuristics(t *testing.T) {
	src := tupelo.MustDatabase(
		tupelo.MustRelation("R", []string{"A1"}, tupelo.Tuple{"a1"}),
	)
	tgt := tupelo.MustDatabase(
		tupelo.MustRelation("R", []string{"B1"}, tupelo.Tuple{"a1"}),
	)
	for _, h := range []tupelo.Heuristic{tupelo.HHybrid, tupelo.HJaccard} {
		res, err := tupelo.Discover(src, tgt, tupelo.Options{Algorithm: tupelo.RBFS, Heuristic: h})
		if err != nil {
			t.Fatalf("%s: %v", h, err)
		}
		if err := tupelo.Verify(res.Expr, src, tgt, nil); err != nil {
			t.Fatalf("%s: %v", h, err)
		}
	}
	if h, err := tupelo.ParseHeuristic("hybrid"); err != nil || h != tupelo.HHybrid {
		t.Fatalf("ParseHeuristic(hybrid) = %v, %v", h, err)
	}
}
