// Semantic: complex (many-to-one) semantic mappings via the λ operator
// (§4 of the paper). The target schema wants TotalCost = Cost + AgentFee
// (the paper's f3) and Passenger = First ⊙ Last (the paper's f2); the user
// declares these correspondences alongside the critical instances, and the
// search weaves the λ applications into the mapping expression together
// with ordinary structural steps.
//
// Run with: go run ./examples/semantic
package main

import (
	"fmt"
	"log"

	"tupelo"
)

func main() {
	// The "map" directives declare the complex correspondences — the only
	// semantic knowledge TUPELO receives; the functions themselves stay
	// black boxes during search (§4).
	src, err := tupelo.ReadInstanceString(`
relation Bookings
  Last    First   Cost  AgentFee
  Smith   John    100   15
  Doe     Jane    200   16

map sum(Cost, AgentFee) -> TotalCost
map concat(First, Last) -> Passenger
`)
	if err != nil {
		log.Fatal(err)
	}
	tgt, err := tupelo.ReadInstanceString(`
relation Manifest
  Passenger    TotalCost
  "John Smith"   115
  "Jane Doe"     216
`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Source (Bookings):")
	fmt.Println(src.DB)
	fmt.Println("Target (Manifest):")
	fmt.Println(tgt.DB)

	opts := tupelo.DefaultOptions()
	opts.Correspondences = src.Corrs
	res, err := tupelo.Discover(src.DB, tgt.DB, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Discovered mapping:")
	fmt.Println(res.Expr)
	fmt.Printf("\n%d states examined\n\n", res.Stats.Examined)

	// Apply to a bigger booking table: the λ functions execute for every
	// tuple (their "meaning" is consulted only now, at execution time).
	full := tupelo.MustDatabase(
		tupelo.MustRelation("Bookings", []string{"Last", "First", "Cost", "AgentFee"},
			tupelo.Tuple{"Smith", "John", "100", "15"},
			tupelo.Tuple{"Doe", "Jane", "200", "16"},
			tupelo.Tuple{"Okafor", "Ada", "340", "20"},
			tupelo.Tuple{"Nguyen", "Minh", "85", "12"},
		),
	)
	out, err := res.Expr.Eval(full, tupelo.Builtins())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Full bookings table mapped to the manifest schema:")
	fmt.Println(out)
}
