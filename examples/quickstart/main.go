// Quickstart: discover a schema matching between two small example
// instances and apply the resulting mapping expression to a full database.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tupelo"
)

func main() {
	// 1. Describe the same example information under both schemas — the
	// critical instances of the Rosetta Stone principle. The text format
	// is what the tupelo CLI reads from files.
	src, err := tupelo.ReadInstanceString(`
relation Emp
  nm      dept     hired
  Alice   Sales    2001
`)
	if err != nil {
		log.Fatal(err)
	}
	tgt, err := tupelo.ReadInstanceString(`
relation Employee
  Name    Dept     Hired
  Alice   Sales    2001
`)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Discover the mapping: search in the space of transformations of
	// the source instance until the target instance is contained.
	res, err := tupelo.Discover(src.DB, tgt.DB, tupelo.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Discovered mapping expression:")
	fmt.Println(res.Expr)
	fmt.Printf("\n(%s, %s heuristic, %d states examined)\n\n",
		res.Algorithm, res.Heuristic, res.Stats.Examined)

	// 3. The expression is executable: apply it to a *full* instance of
	// the source schema, not just the example.
	full := tupelo.MustDatabase(
		tupelo.MustRelation("Emp", []string{"nm", "dept", "hired"},
			tupelo.Tuple{"Alice", "Sales", "2001"},
			tupelo.Tuple{"Bob", "Engineering", "1999"},
			tupelo.Tuple{"Carol", "Marketing", "2003"},
		),
	)
	mapped, err := res.Expr.Eval(full, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Full source instance mapped to the target schema:")
	fmt.Println(mapped)
}
