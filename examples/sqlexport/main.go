// SQLExport: the full deployment pipeline. A mapping is discovered from
// critical instances, compiled to a SQL script, executed by the bundled SQL
// engine against a full-size database, and the result trimmed to the target
// schema with σ post-processing — discovery to deployment without leaving
// the library.
//
// Run with: go run ./examples/sqlexport
package main

import (
	"fmt"
	"log"

	"tupelo"
	"tupelo/internal/search"
	"tupelo/internal/sqlrun"
)

func main() {
	// Critical instances: the Fig. 1 FlightsB → FlightsA restructuring.
	src, err := tupelo.ReadInstanceString(`
relation Prices
  Carrier  Route  Cost  AgentFee
  AirEast  ATL29  100   15
  JetWest  ATL29  200   16
  AirEast  ORD17  110   15
  JetWest  ORD17  220   16
`)
	if err != nil {
		log.Fatal(err)
	}
	tgt, err := tupelo.ReadInstanceString(`
relation Flights
  Carrier  Fee  ATL29  ORD17
  AirEast  15   100    110
  JetWest  16   200    220
`)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Discover and simplify the mapping expression.
	res, err := tupelo.Discover(src.DB, tgt.DB, tupelo.Options{
		Algorithm: tupelo.RBFS,
		Heuristic: tupelo.H3,
		Limits:    search.Limits{MaxStates: 200000},
	})
	if err != nil {
		log.Fatal(err)
	}
	expr := tupelo.Simplify(res.Expr, src.DB, nil)
	fmt.Println("Discovered mapping:")
	fmt.Println(expr)

	// 2. A full-size Prices database, as it would live in the RDBMS. Note
	// the extra carrier the critical instance never mentioned.
	full := tupelo.MustDatabase(
		tupelo.MustRelation("Prices", []string{"Carrier", "Route", "Cost", "AgentFee"},
			tupelo.Tuple{"AirEast", "ATL29", "100", "15"},
			tupelo.Tuple{"JetWest", "ATL29", "200", "16"},
			tupelo.Tuple{"AirEast", "ORD17", "110", "15"},
			tupelo.Tuple{"JetWest", "ORD17", "220", "16"},
			tupelo.Tuple{"SkyHop", "ATL29", "90", "9"},
			tupelo.Tuple{"SkyHop", "ORD17", "95", "9"},
		),
	)

	// 3. Compile the mapping to SQL against the full instance (↑'s column
	// set is data-dependent, so generation samples the instance it will
	// run on).
	script, err := tupelo.GenerateSQL(expr, full, tupelo.SQLOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nGenerated SQL:")
	fmt.Print(script)

	// 4. Execute the script with the bundled engine.
	eng := sqlrun.NewEngine(full)
	if err := eng.ExecScript(script.String()); err != nil {
		log.Fatal(err)
	}
	mapped, err := eng.Database(script.Final)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSQL execution result:")
	fmt.Println(mapped)

	// 5. Cross-check against direct expression evaluation.
	direct, err := expr.Eval(full, nil)
	if err != nil {
		log.Fatal(err)
	}
	if !mapped.Equal(direct) {
		log.Fatal("SQL path and direct evaluation diverge")
	}
	fmt.Println("✓ SQL path matches direct expression evaluation")
}
