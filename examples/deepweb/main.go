// Deepweb: schema matching across deep-web query interfaces, the setting
// of the paper's Experiment 2 (§5.2). A mediator knows one "fixed" Books
// interface and wants mappings onto every other book-search interface in
// its domain; interfaces expose 1–8 attributes drawn from a shared
// vocabulary with synonym variation (Title/BookTitle/Name, ...).
//
// Run with: go run ./examples/deepweb
package main

import (
	"fmt"
	"log"

	"tupelo"
	"tupelo/internal/datagen"
	"tupelo/internal/search"
)

func main() {
	domains := datagen.BAMM(2006)
	books := domains[0]
	fmt.Printf("Domain %s: fixed interface plus %d sibling interfaces\n\n", books.Name, len(books.Targets))
	fmt.Println("Fixed interface (critical instance):")
	fmt.Println(books.Fixed)

	totalStates := 0
	shown := 0
	for i := 0; i < len(books.Targets) && shown < 5; i += 11 {
		tgt := books.Targets[i]
		res, err := tupelo.Discover(books.Fixed, tgt, tupelo.Options{
			Algorithm: tupelo.RBFS,
			Heuristic: tupelo.HCosine,
			Limits:    search.Limits{MaxStates: 50000},
		})
		if err != nil {
			log.Fatalf("interface %d: %v", i, err)
		}
		if err := tupelo.Verify(res.Expr, books.Fixed, tgt, nil); err != nil {
			log.Fatalf("interface %d: %v", i, err)
		}
		rel := tgt.Relations()[0]
		fmt.Printf("Interface #%d (%d attributes: %v)\n", i, rel.Arity(), rel.Attrs())
		if len(res.Expr) == 0 {
			fmt.Println("  identity mapping (all attribute names already match)")
		} else {
			for _, op := range res.Expr {
				fmt.Printf("  %s\n", op)
			}
		}
		fmt.Printf("  -> %d states examined\n\n", res.Stats.Examined)
		totalStates += res.Stats.Examined
		shown++
	}
	fmt.Printf("Mapped %d interfaces with %d states examined in total.\n", shown, totalStates)
}
