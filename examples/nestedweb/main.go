// Nestedweb: data mapping as search on a *different data model* — the
// paper's concluding claim (§7) that the TUPELO architecture generalizes
// beyond relations. Two XML-shaped book-catalog feeds disagree on tags,
// attribute names, and on what is structure versus metadata; discovery
// runs over the same generic search core as the relational system.
//
// Run with: go run ./examples/nestedweb
package main

import (
	"fmt"
	"log"

	"tupelo/internal/nested"
	"tupelo/internal/search"
)

func main() {
	// Source feed: flat attributes, an extra wrapper level.
	src := nested.MustParse(`
<books>
  <wrap>
    <book title="The Hobbit" author="Tolkien" price="12.99"/>
  </wrap>
  <wrap>
    <book title="Dune" author="Herbert" price="9.99"/>
  </wrap>
</books>`)

	// Target feed: different names, and the author demoted into a child
	// element.
	tgt := nested.MustParse(`
<library>
  <item name="The Hobbit" cost="12.99"><author>Tolkien</author></item>
  <item name="Dune" cost="9.99"><author>Herbert</author></item>
</library>`)

	fmt.Println("Source document:")
	fmt.Println(src)
	fmt.Println("Target document:")
	fmt.Println(tgt)

	res, err := nested.Discover(src, tgt, nested.XOptions{
		Algorithm: search.RBFS,
		Limits:    search.Limits{MaxStates: 100000},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Discovered LX mapping:")
	fmt.Println(res.Expr)
	fmt.Printf("\n%d states examined\n\n", res.Stats.Examined)

	got, err := res.Expr.Eval(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Source mapped through the expression:")
	fmt.Println(got)
	if got.Contains(tgt) {
		fmt.Println("✓ the mapped document contains the target critical document")
	} else {
		log.Fatal("✗ mapping verification failed")
	}
}
