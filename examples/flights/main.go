// Flights: the paper's running example (Fig. 1). Three travel agencies
// store the same flight-price information under radically different
// schemas; mapping between them needs dynamic data–metadata restructuring,
// not just renames. This example discovers the FlightsB → FlightsA mapping
// (the paper's Example 2) and executes it.
//
// Run with: go run ./examples/flights
package main

import (
	"fmt"
	"log"

	"tupelo"
	"tupelo/internal/search"
)

func main() {
	// FlightsB: flat representation — one row per (carrier, route).
	flightsB := tupelo.MustDatabase(
		tupelo.MustRelation("Prices", []string{"Carrier", "Route", "Cost", "AgentFee"},
			tupelo.Tuple{"AirEast", "ATL29", "100", "15"},
			tupelo.Tuple{"JetWest", "ATL29", "200", "16"},
			tupelo.Tuple{"AirEast", "ORD17", "110", "15"},
			tupelo.Tuple{"JetWest", "ORD17", "220", "16"},
		),
	)
	// FlightsA: routes pivoted into attribute names.
	flightsA := tupelo.MustDatabase(
		tupelo.MustRelation("Flights", []string{"Carrier", "Fee", "ATL29", "ORD17"},
			tupelo.Tuple{"AirEast", "15", "100", "110"},
			tupelo.Tuple{"JetWest", "16", "200", "220"},
		),
	)

	fmt.Println("Source (FlightsB):")
	fmt.Println(flightsB)
	fmt.Println("Target (FlightsA):")
	fmt.Println(flightsA)

	// The mapping needs ↑ (promote Route values to attribute names), π̄
	// (drop the flattened columns), µ (merge the partial rows), and ρ
	// (match the remaining schema elements) — Example 2 of the paper.
	opts := tupelo.Options{
		Algorithm: tupelo.RBFS,
		Heuristic: tupelo.H3,
		Limits:    search.Limits{MaxStates: 200000},
	}
	res, err := tupelo.Discover(flightsB, flightsA, opts)
	if err != nil {
		log.Fatal(err)
	}
	expr := tupelo.Simplify(res.Expr, flightsB, nil)
	fmt.Println("Discovered mapping (canonical syntax):")
	fmt.Println(expr)
	fmt.Println("\nDiscovered mapping (paper notation):")
	fmt.Println(expr.Pretty())
	fmt.Printf("\n%d states examined with %s/%s\n\n", res.Stats.Examined, res.Algorithm, res.Heuristic)

	// Execute the mapping and confirm it reproduces FlightsA.
	got, err := expr.Eval(flightsB, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("FlightsB mapped through the expression:")
	fmt.Println(got)
	if got.Contains(flightsA) {
		fmt.Println("✓ the mapped instance contains the target critical instance")
	} else {
		log.Fatal("✗ mapping verification failed")
	}
}
