package tupelo_test

import (
	"fmt"
	"strings"
	"testing"

	"tupelo"
)

func TestFacadeQuickstart(t *testing.T) {
	src, err := tupelo.ReadInstanceString(`
relation Emp
  nm     dept
  Alice  Sales
`)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := tupelo.ReadInstanceString(`
relation Employee
  Name   Dept
  Alice  Sales
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tupelo.Discover(src.DB, tgt.DB, tupelo.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := tupelo.Verify(res.Expr, src.DB, tgt.DB, nil); err != nil {
		t.Fatal(err)
	}
	if len(res.Expr) != 3 {
		t.Fatalf("expected 3 steps, got:\n%s", res.Expr)
	}
}

func TestFacadeBuildersAndParse(t *testing.T) {
	db := tupelo.MustDatabase(
		tupelo.MustRelation("R", []string{"A"}, tupelo.Tuple{"x"}),
	)
	if db.Len() != 1 {
		t.Fatal("builder failed")
	}
	expr, err := tupelo.ParseExpr("rename_att[R,A->B]")
	if err != nil {
		t.Fatal(err)
	}
	out, err := expr.Eval(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := out.Relation("R")
	if !r.HasAttr("B") {
		t.Fatal("expression did not run")
	}
	if _, err := tupelo.NewRelation("", nil); err == nil {
		t.Fatal("invalid relation should fail")
	}
	if _, err := tupelo.NewDatabase(nil); err == nil {
		t.Fatal("nil relation should fail")
	}
}

func TestFacadeHeuristics(t *testing.T) {
	if len(tupelo.Heuristics()) != 8 {
		t.Fatalf("want 8 heuristics, got %d", len(tupelo.Heuristics()))
	}
	h, err := tupelo.ParseHeuristic("cosine")
	if err != nil || h != tupelo.HCosine {
		t.Fatalf("ParseHeuristic: %v %v", h, err)
	}
}

// TestFacadeNameHelpers pins the single-source-of-truth name helpers the
// CLIs build their flag help from: every listed name must parse back, and
// a bogus name must fail with an error that enumerates the valid names.
func TestFacadeNameHelpers(t *testing.T) {
	names := tupelo.HeuristicNames()
	if len(names) < 8 {
		t.Fatalf("HeuristicNames too short: %v", names)
	}
	for _, n := range names {
		if _, err := tupelo.ParseHeuristic(n); err != nil {
			t.Fatalf("listed heuristic %q does not parse: %v", n, err)
		}
	}
	algos := tupelo.AlgorithmNames()
	if len(algos) < 4 {
		t.Fatalf("AlgorithmNames too short: %v", algos)
	}
	for _, n := range algos {
		if _, err := tupelo.ParseAlgorithm(n); err != nil {
			t.Fatalf("listed algorithm %q does not parse: %v", n, err)
		}
	}
	if _, err := tupelo.ParseAlgorithm("bogus"); err == nil ||
		!strings.Contains(err.Error(), algos[0]) {
		t.Fatalf("ParseAlgorithm error should enumerate valid names, got: %v", err)
	}
	if _, err := tupelo.ParseHeuristic("bogus"); err == nil ||
		!strings.Contains(err.Error(), "cosine") {
		t.Fatalf("ParseHeuristic error should enumerate valid names, got: %v", err)
	}
}

func TestFacadeSimplify(t *testing.T) {
	src := tupelo.MustDatabase(tupelo.MustRelation("R", []string{"A"}, tupelo.Tuple{"x"}))
	expr, _ := tupelo.ParseExpr("rename_att[R,A->T]\nrename_att[R,T->B]")
	if got := tupelo.Simplify(expr, src, nil); len(got) != 1 {
		t.Fatalf("Simplify: %s", got)
	}
}

func TestFacadeRegistry(t *testing.T) {
	reg := tupelo.Builtins()
	if _, ok := reg.Lookup("sum"); !ok {
		t.Fatal("builtins missing sum")
	}
	empty := tupelo.NewRegistry()
	if _, ok := empty.Lookup("sum"); ok {
		t.Fatal("new registry should be empty")
	}
}

func TestFacadeWriteInstance(t *testing.T) {
	inst := &tupelo.Instance{
		DB: tupelo.MustDatabase(tupelo.MustRelation("R", []string{"A"}, tupelo.Tuple{"x"})),
	}
	var b strings.Builder
	if err := tupelo.WriteInstance(&b, inst); err != nil {
		t.Fatal(err)
	}
	back, err := tupelo.ReadInstanceString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if !back.DB.Equal(inst.DB) {
		t.Fatal("facade instance round trip failed")
	}
}

// ExampleDiscover demonstrates mapping discovery on a simple schema match.
func ExampleDiscover() {
	src := tupelo.MustDatabase(
		tupelo.MustRelation("Emp", []string{"nm"}, tupelo.Tuple{"Alice"}),
	)
	tgt := tupelo.MustDatabase(
		tupelo.MustRelation("Emp", []string{"Name"}, tupelo.Tuple{"Alice"}),
	)
	res, err := tupelo.Discover(src, tgt, tupelo.DefaultOptions())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.Expr)
	// Output: rename_att[Emp,nm->Name]
}

// ExampleExpr_Eval demonstrates executing a mapping expression, including a
// complex semantic function.
func ExampleExpr_Eval() {
	db := tupelo.MustDatabase(
		tupelo.MustRelation("Prices", []string{"Cost", "Fee"},
			tupelo.Tuple{"100", "15"},
		),
	)
	expr, _ := tupelo.ParseExpr("apply[Prices,sum:Cost,Fee->Total]")
	out, _ := expr.Eval(db, tupelo.Builtins())
	r, _ := out.Relation("Prices")
	total, _ := r.Value(0, "Total")
	fmt.Println(total)
	// Output: 115
}
