module tupelo

go 1.22
