package obs

import "sync/atomic"

// sampledKinds marks the high-frequency event kinds that a sampling tracer
// thins: one event per examined state, per candidate move, per operator
// application, or per heuristic evaluation. Structural events (run, member)
// always pass through — there are only a handful per run and consumers key
// on them.
var sampledKinds = [...]bool{
	EvGoalTest:  true,
	EvExpand:    true,
	EvMove:      true,
	EvOpApply:   true,
	EvCacheHit:  true,
	EvCacheMiss: true,
}

// Sample wraps t so only one in n events of each high-frequency kind
// (goal tests, expansions, moves, operator applies, cache hits/misses) is
// forwarded; run and member events always pass through. Counting is per
// kind with atomics, so a sampled tracer adds a few nanoseconds per dropped
// event and remains safe for concurrent use. n <= 1 returns t unchanged;
// a nil or Nop t returns Nop.
func Sample(t Tracer, n int) Tracer {
	if t == nil || t == Nop {
		return Nop
	}
	if n <= 1 {
		return t
	}
	return &sampleTracer{t: t, n: int64(n)}
}

type sampleTracer struct {
	t      Tracer
	n      int64
	counts [len(sampledKinds)]atomic.Int64
}

// Event implements Tracer.
func (s *sampleTracer) Event(e Event) {
	if int(e.Kind) < len(sampledKinds) && sampledKinds[e.Kind] {
		if s.counts[e.Kind].Add(1)%s.n != 1 {
			return
		}
	}
	s.t.Event(e)
}
