package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWritePrometheusGolden pins the exact exposition for a registry of
// documented and undocumented families: HELP lines appear once per
// documented family (including the derived timer families, which share the
// base timer's text), undocumented families get only their TYPE line, and
// sample ordering is stable.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("search.examined", "algo", "IDA")).Add(3)
	r.Counter(Name("search.examined", "algo", "RBFS")).Add(7)
	r.Counter("custom.counter").Inc()
	r.Gauge(Name("search.shard.inbox.depth", "algo", "PA*", "shard", "0")).Set(5)
	r.Timer(Name("portfolio.member.duration", "member", "rbfs/cosine")).Observe(2 * time.Second)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE tupelo_custom_counter counter
tupelo_custom_counter 1
# HELP tupelo_search_examined States examined (goal-tested) by the search, per algorithm.
# TYPE tupelo_search_examined counter
tupelo_search_examined{algo="IDA"} 3
tupelo_search_examined{algo="RBFS"} 7
# HELP tupelo_search_shard_inbox_depth Sampled inbox depth of one shard (every 64 examined states).
# TYPE tupelo_search_shard_inbox_depth gauge
tupelo_search_shard_inbox_depth{algo="PA*",shard="0"} 5
# HELP tupelo_portfolio_member_duration_count Wall-clock duration of portfolio members, per member configuration.
# TYPE tupelo_portfolio_member_duration_count counter
tupelo_portfolio_member_duration_count{member="rbfs/cosine"} 1
# HELP tupelo_portfolio_member_duration_seconds_total Wall-clock duration of portfolio members, per member configuration.
# TYPE tupelo_portfolio_member_duration_seconds_total counter
tupelo_portfolio_member_duration_seconds_total{member="rbfs/cosine"} 2
# HELP tupelo_portfolio_member_duration_max_seconds Wall-clock duration of portfolio members, per member configuration.
# TYPE tupelo_portfolio_member_duration_max_seconds gauge
tupelo_portfolio_member_duration_max_seconds{member="rbfs/cosine"} 2
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition drifted from golden output.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWritePrometheusHistogramHelp checks the histogram path emits its HELP
// line ahead of the TYPE header (the golden test above keeps histograms out
// to stay readable — 35 bucket lines per family).
func TestWritePrometheusHistogramHelp(t *testing.T) {
	r := NewRegistry()
	r.Histogram(Name("search.expand.seconds", "algo", "RBFS")).Observe(time.Millisecond)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := "# HELP tupelo_search_expand_seconds Latency of successor expansions.\n" +
		"# TYPE tupelo_search_expand_seconds histogram\n"
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("exposition missing %q:\n%s", want, buf.String())
	}
}

// TestJSONTracerConcurrentWriters hammers one JSONTracer from many
// goroutines (run under -race in CI) and checks the output is still valid
// JSON Lines with nothing torn or lost: concurrent events must interleave
// at line granularity.
func TestJSONTracerConcurrentWriters(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONTracer(&buf)
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tr.Event(Event{Kind: EvGoalTest, Label: "RBFS", Seq: g*perG + i, Depth: i % 7})
			}
		}(g)
	}
	wg.Wait()

	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON (%v): %s", lines, err, sc.Text())
		}
		if rec["kind"] != "goal-test" {
			t.Fatalf("line %d: kind = %v", lines, rec["kind"])
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != goroutines*perG {
		t.Fatalf("got %d lines, want %d (events lost or torn)", lines, goroutines*perG)
	}
}

// TestSampleProperty is a property test over random event streams: for any
// stream and any rate n, the sampled tracer (1) always forwards every
// structural event (run and member kinds), (2) forwards exactly
// ceil(k/n) of the k events of each high-frequency kind, and (3) preserves
// relative order.
func TestSampleProperty(t *testing.T) {
	kinds := []EventKind{
		EvRunStart, EvRunFinish, EvGoalTest, EvExpand, EvMove,
		EvCacheHit, EvCacheMiss, EvMemberStart, EvMemberWin,
		EvMemberLose, EvMemberCancel, EvOpApply, EvMemoHit, EvMemoMiss,
	}
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(16)
		streamLen := rng.Intn(2000)
		sink := NewCollector()
		tr := Sample(sink, n)

		sent := make(map[EventKind]int)
		var stream []Event
		for i := 0; i < streamLen; i++ {
			e := Event{Kind: kinds[rng.Intn(len(kinds))], Seq: i}
			stream = append(stream, e)
			sent[e.Kind]++
			tr.Event(e)
		}

		got := sink.Events()
		// (3) relative order: Seq must be strictly increasing.
		for i := 1; i < len(got); i++ {
			if got[i].Seq <= got[i-1].Seq {
				t.Fatalf("seed %d: order broken at %d: %d after %d", seed, i, got[i].Seq, got[i-1].Seq)
			}
		}
		gotByKind := make(map[EventKind]int)
		for _, e := range got {
			gotByKind[e.Kind]++
		}
		for _, k := range kinds {
			want := sent[k]
			if int(k) < len(sampledKinds) && sampledKinds[k] {
				// (2) one in n, first one always through: ceil(k/n).
				want = (sent[k] + n - 1) / n
			}
			// (1) is the else branch: structural kinds pass 1:1.
			if gotByKind[k] != want {
				t.Fatalf("seed %d n=%d: kind %s forwarded %d of %d, want %d",
					seed, n, k, gotByKind[k], sent[k], want)
			}
		}
	}
}
