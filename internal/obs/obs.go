// Package obs is the observability substrate of the mapper: a lightweight,
// allocation-conscious metrics registry (counters, gauges, timers) plus a
// structured Tracer for span-like search events.
//
// The paper's only performance instrument is the states-examined count;
// everything the engine has grown since — shared heuristic caches, successor
// worker pools, portfolio races — is invisible without a second layer of
// measurement. This package provides that layer without pulling in any
// dependency: instruments are plain atomics, the registry is a string-keyed
// map behind an RWMutex, and exposition is expvar-style JSON or Prometheus
// text, both writable to an io.Writer or served over HTTP.
//
// Instruments are nil-tolerant throughout: methods on a nil *Registry,
// *Counter, *Gauge, or *Timer are no-ops, so instrumented code paths read
// unconditionally —
//
//	c := reg.Counter("search.examined") // c == nil when reg == nil
//	c.Inc()                             // safe either way
//
// — and a run without a registry pays only a nil check per event.
//
// Metric names follow a dotted hierarchy with optional Prometheus-style
// labels, e.g. "search.examined{algo=\"RBFS\"}". The JSON exposition uses
// the full name as the key; the Prometheus exposition rewrites the dotted
// base to tupelo_search_examined and keeps the label block verbatim.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count. The zero value is ready to
// use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value that may go up and down. The zero value is
// ready to use; a nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add applies a delta.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Max raises the gauge to n if n exceeds the current value.
func (g *Gauge) Max(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Timer accumulates durations: observation count, total, and maximum. The
// zero value is ready to use; a nil *Timer is a no-op.
type Timer struct {
	count atomic.Int64
	sum   atomic.Int64 // nanoseconds
	max   atomic.Int64 // nanoseconds
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.count.Add(1)
	t.sum.Add(int64(d))
	for {
		cur := t.max.Load()
		if int64(d) <= cur || t.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Time runs f and observes its duration.
func (t *Timer) Time(f func()) {
	start := time.Now()
	f()
	t.Observe(time.Since(start))
}

// Count returns the number of observations.
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.sum.Load())
}

// MaxValue returns the largest single observation.
func (t *Timer) MaxValue() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.max.Load())
}

// Registry is a race-safe collection of named instruments. Lookups are
// get-or-create and return stable pointers, so hot paths resolve their
// instruments once and then touch only atomics. A nil *Registry hands out
// nil instruments, which are themselves no-ops.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	timers     map[string]*Timer
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		timers:     make(map[string]*Timer),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the timer registered under name, creating it if needed.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	t := r.timers[name]
	r.mu.RUnlock()
	if t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t = r.timers[name]; t == nil {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// TimerSnapshot is the exported state of one Timer.
type TimerSnapshot struct {
	Count   int64         `json:"count"`
	TotalNS int64         `json:"total_ns"`
	MaxNS   int64         `json:"max_ns"`
	Total   time.Duration `json:"-"`
	Max     time.Duration `json:"-"`
}

// Snapshot is a point-in-time copy of every instrument in a registry; it
// marshals to the expvar-style JSON exposition.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Timers     map[string]TimerSnapshot     `json:"timers"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the current value of every instrument. A nil registry
// yields an empty (but non-nil-mapped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Timers:     make(map[string]TimerSnapshot),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, t := range r.timers {
		s.Timers[name] = TimerSnapshot{
			Count:   t.Count(),
			TotalNS: int64(t.Total()),
			MaxNS:   int64(t.MaxValue()),
			Total:   t.Total(),
			Max:     t.MaxValue(),
		}
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteJSON writes the expvar-style JSON exposition: one object with
// "counters", "gauges", and "timers" keys, map keys sorted (encoding/json
// sorts map keys), values as int64.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// promHelp documents the metric families the engine registers, keyed by the
// emitted (tupelo_-prefixed) family name. WritePrometheus writes a "# HELP"
// line for a family found here; unknown families (user-registered metrics)
// get only their "# TYPE" line, which the exposition format permits.
var promHelp = map[string]string{
	"tupelo_search_examined":                 "States examined (goal-tested) by the search, per algorithm.",
	"tupelo_search_generated":                "Successor states generated by expansions, per algorithm.",
	"tupelo_search_yields":                   "Cooperative runtime.Gosched yields taken at the search loop's scheduling points.",
	"tupelo_search_runs":                     "Search runs started, per algorithm.",
	"tupelo_search_aborts":                   "Search runs aborted, per algorithm and cause (limit, deadline, memory, canceled, panic).",
	"tupelo_search_panics":                   "Panics recovered inside search-owned goroutines, per origin.",
	"tupelo_search_goaltest_seconds":         "Latency of goal-containment tests.",
	"tupelo_search_expand_seconds":           "Latency of successor expansions.",
	"tupelo_search_shard_examined":           "States examined by one shard of a parallel single search.",
	"tupelo_search_shard_routed":             "States handed directly to their owning shard's inbox.",
	"tupelo_search_shard_deferred":           "States parked in a shard's outbox because the owner's inbox was full.",
	"tupelo_search_shard_inbox_depth":        "Sampled inbox depth of one shard (every 64 examined states).",
	"tupelo_search_shard_imbalance_permille": "Sampled max/mean examined-states ratio across shards, scaled by 1000 (1000 = perfectly balanced).",
	"tupelo_core_pool_expansions_parallel":   "Successor expansions evaluated on the worker pool.",
	"tupelo_core_pool_expansions_serial":     "Successor expansions evaluated inline (pool disabled or unprofitable).",
	"tupelo_core_pool_ops":                   "Candidate-operator applications submitted to the worker pool.",
	"tupelo_core_pool_width_max":             "Largest expansion fan-out the worker pool has seen.",
	"tupelo_core_succmemo_hits":              "Expansions answered from the successor memo without re-running operators.",
	"tupelo_core_succmemo_misses":            "Expansions that ran the operator pipeline.",
	"tupelo_core_ops_proposed":               "Candidate moves proposed, per operator.",
	"tupelo_core_ops_applied":                "Candidate moves successfully applied, per operator.",
	"tupelo_core_op_apply_seconds":           "Latency of candidate-operator applications, per operator (sampled on memo misses).",
	"tupelo_heuristic_cache_hits":            "Heuristic-cache hits, per cache.",
	"tupelo_heuristic_cache_misses":          "Heuristic-cache misses, per cache.",
	"tupelo_heuristic_cache_entries":         "Heuristic-cache resident entries, per cache.",
	"tupelo_heuristic_eval_seconds":          "Latency of heuristic evaluations (cache misses), per heuristic.",
	"tupelo_portfolio_member_duration":       "Wall-clock duration of portfolio members, per member configuration.",
	"tupelo_portfolio_wins":                  "Races won, per member configuration.",
	"tupelo_portfolio_retries":               "Member restarts after a panic or failure, per member configuration.",
	"tupelo_portfolio_partial":               "Best-effort partial results adopted after every member lost, per member configuration.",
	"tupelo_repo_entries":                    "Committed mapping entries resident in the repository index.",
	"tupelo_repo_hits":                       "Repository lookups answered by a committed entry.",
	"tupelo_repo_misses":                     "Repository lookups with no committed entry for the fingerprint pair.",
	"tupelo_repo_puts":                       "Entries committed to the repository (atomic temp+rename writes).",
	"tupelo_repo_quarantined":                "Corrupt or torn repository files moved to quarantine/ during recovery.",
	"tupelo_server_jobs_admitted":            "Jobs admitted past quota, breaker, and queue checks.",
	"tupelo_server_jobs_rejected":            "Jobs rejected at admission, per reason (queue-full, tenant-quota, breaker-open, draining, bad-request, abandoned).",
	"tupelo_server_jobs_completed":           "Jobs that ran to a response, per outcome (solved, partial).",
	"tupelo_server_jobs_failed":              "Jobs that ran and failed, per abort cause.",
	"tupelo_server_jobs_running":             "Jobs currently holding an execution slot.",
	"tupelo_server_queue_depth":              "Admitted jobs waiting for an execution slot.",
	"tupelo_server_job_duration":             "Wall-clock duration of job execution, queue wait excluded.",
	"tupelo_server_repo_hits":                "Job submissions answered from the mapping repository without a search.",
	"tupelo_server_repo_misses":              "Job submissions that required a fresh search.",
	"tupelo_server_repo_put_errors":          "Solved mappings that failed to commit to the repository.",
	"tupelo_server_breaker_opens":            "Per-tenant circuit-breaker opens after consecutive fatal verdicts, per tenant.",
	"tupelo_server_drains":                   "Graceful drains started (SIGTERM/Shutdown).",
	"tupelo_server_drain_cancelled":          "In-flight jobs cancelled at the drain deadline (best-effort partials persisted).",
	"tupelo_server_forensics_dumps":          "Flight-recorder dumps persisted for failed jobs.",
	"tupelo_server_forensics_reports":        "Run reports persisted to the forensics directory.",
}

// helpFamily maps an emitted family name to its promHelp key: derived timer
// families (_count, _seconds_total, _max_seconds) share their base timer's
// entry.
func helpFamily(base string) string {
	for _, suffix := range [...]string{"_count", "_seconds_total", "_max_seconds"} {
		if trimmed, ok := strings.CutSuffix(base, suffix); ok {
			if _, known := promHelp[trimmed]; known {
				return trimmed
			}
		}
	}
	return base
}

// WritePrometheus writes the Prometheus text exposition format (version
// 0.0.4): one "# HELP" (for the families the engine documents) and one
// "# TYPE" line per metric family followed by its samples, dotted base
// names rewritten to a tupelo_-prefixed underscore form with any
// {label="value"} block preserved. Labeled series of one family sort
// adjacently (labels follow the base name lexically), so emitting the
// header on each base-name change yields exactly one per family. Timers
// emit _count and _seconds_total samples as the counter pair of a
// Prometheus summary, plus a _max_seconds gauge for the largest single
// observation. Histograms emit the standard _bucket{le=...}/_sum/_count
// triple with cumulative bucket counts in seconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	var b strings.Builder
	typeHeader := func(last *string, base, kind string) {
		if base != *last {
			if help, ok := promHelp[helpFamily(base)]; ok {
				fmt.Fprintf(&b, "# HELP %s %s\n", base, help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", base, kind)
			*last = base
		}
	}
	var last string
	for _, name := range sortedKeys(s.Counters) {
		base, labels := promName(name)
		typeHeader(&last, base, "counter")
		fmt.Fprintf(&b, "%s%s %d\n", base, labels, s.Counters[name])
	}
	last = ""
	for _, name := range sortedKeys(s.Gauges) {
		base, labels := promName(name)
		typeHeader(&last, base, "gauge")
		fmt.Fprintf(&b, "%s%s %d\n", base, labels, s.Gauges[name])
	}
	timerNames := make([]string, 0, len(s.Timers))
	for name := range s.Timers {
		timerNames = append(timerNames, name)
	}
	sort.Strings(timerNames)
	// Separate passes keep each derived family's samples contiguous under
	// its own header, as the format requires.
	last = ""
	for _, name := range timerNames {
		base, labels := promName(name)
		typeHeader(&last, base+"_count", "counter")
		fmt.Fprintf(&b, "%s_count%s %d\n", base, labels, s.Timers[name].Count)
	}
	last = ""
	for _, name := range timerNames {
		base, labels := promName(name)
		typeHeader(&last, base+"_seconds_total", "counter")
		fmt.Fprintf(&b, "%s_seconds_total%s %g\n", base, labels, time.Duration(s.Timers[name].TotalNS).Seconds())
	}
	last = ""
	for _, name := range timerNames {
		base, labels := promName(name)
		typeHeader(&last, base+"_max_seconds", "gauge")
		fmt.Fprintf(&b, "%s_max_seconds%s %g\n", base, labels, time.Duration(s.Timers[name].MaxNS).Seconds())
	}
	histNames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	last = ""
	for _, name := range histNames {
		base, labels := promName(name)
		typeHeader(&last, base, "histogram")
		h := s.Histograms[name]
		for _, bk := range h.Buckets {
			fmt.Fprintf(&b, "%s_bucket%s %d\n", base, withLE(labels, fmt.Sprintf("%g", boundSeconds(bk.UpperNS))), bk.Count)
		}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", base, withLE(labels, "+Inf"), h.Count)
		fmt.Fprintf(&b, "%s_sum%s %g\n", base, labels, time.Duration(h.TotalNS).Seconds())
		fmt.Fprintf(&b, "%s_count%s %d\n", base, labels, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// withLE splices an le="..." pair into an existing {label="value"} block
// (or synthesizes the block when there are no other labels), keeping le
// last as the Prometheus convention expects.
func withLE(labels, le string) string {
	if labels == "" {
		return fmt.Sprintf("{le=%q}", le)
	}
	return fmt.Sprintf("%s,le=%q}", labels[:len(labels)-1], le)
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// promName splits a metric name into its Prometheus base name and label
// block: "search.examined{algo=\"RBFS\"}" becomes
// ("tupelo_search_examined", "{algo=\"RBFS\"}"). Characters outside
// [a-zA-Z0-9_] in the base collapse to underscores.
func promName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name, labels = name[:i], name[i:]
	}
	var b strings.Builder
	b.Grow(len("tupelo_") + len(name))
	b.WriteString("tupelo_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String(), labels
}

// Handler serves the registry over HTTP: Prometheus text format by default
// (suitable for a scrape endpoint), JSON with ?format=json.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = r.WritePrometheus(w)
	})
}

// Name renders a metric name with label pairs: Name("search.examined",
// "algo", "RBFS") is `search.examined{algo="RBFS"}`. Pairs must come in
// key/value order; an odd trailing key is ignored.
func Name(base string, pairs ...string) string {
	if len(pairs) < 2 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", pairs[i], pairs[i+1])
	}
	b.WriteByte('}')
	return b.String()
}
