package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// This file implements the search flight recorder: an always-on,
// allocation-free forensic event log modeled on an aircraft flight data
// recorder. Every search goroutine (the sequential search loop, each shard
// worker of the parallel engines) owns a fixed-size ring buffer of compact
// binary records; recording is a couple of plain stores into the ring — no
// locks, no allocations, single-digit nanoseconds — so it can stay enabled
// on production runs. When a run dies (panic, memory-budget abort, deadline)
// the rings hold the last ringSize events of every goroutine leading up to
// the failure, and are dumped as a JSONL stream (`tupelo-flight/v1`) that
// cmd/tupelo-trace can analyze. DESIGN.md §11 documents the overhead
// methodology.
//
// Concurrency model: each FlightRing is written by exactly one goroutine
// (the one that asked for it), so the hot path needs no atomics; the dump
// side reads only at quiescent points — after the writers have been joined
// (WaitGroup/channel edges establish the happens-before) — which is how a
// real flight recorder is read too. RequestDump from a dying goroutine only
// marks the cause; the actual dump is flushed at the top of the engine once
// every writer has returned.

// FlightKind classifies one flight-recorder record. Kinds are deliberately
// few and payload fields generic (A, B) to keep the record compact.
type FlightKind uint8

const (
	// FKExamine is one examined state: Seq the global examined ordinal,
	// A the search depth (g), B 1 when the goal test succeeded.
	FKExamine FlightKind = iota + 1
	// FKExpand is one successor expansion: A the depth, B the move count.
	FKExpand
	// FKRoute is one node routed to another shard: A the destination shard.
	FKRoute
	// FKDefer is one routed node deferred to the outbox on a full inbox:
	// A the destination shard.
	FKDefer
	// FKInbox is a periodic shard backpressure sample: A the inbox depth,
	// B the outbox length, Seq the global examined ordinal at the sample.
	FKInbox
	// FKRunStart marks a run entering its search loop.
	FKRunStart
	// FKRunFinish marks a run leaving its search loop: A 1 when solved.
	FKRunFinish
	// FKAbort is a run abort: A an abortCause code (see causeCode).
	FKAbort
)

// String names the kind for dumps and debugging.
func (k FlightKind) String() string {
	switch k {
	case FKExamine:
		return "examine"
	case FKExpand:
		return "expand"
	case FKRoute:
		return "route"
	case FKDefer:
		return "defer"
	case FKInbox:
		return "inbox"
	case FKRunStart:
		return "run-start"
	case FKRunFinish:
		return "run-finish"
	case FKAbort:
		return "abort"
	default:
		return fmt.Sprintf("FlightKind(%d)", uint8(k))
	}
}

// FlightEvent is one compact binary record: 24 bytes, written in place into
// the ring. At is nanoseconds since the recorder's epoch, refreshed from the
// wall clock every flightStampInterval records (reading the clock per event
// would cost more than the whole record — see DESIGN.md §11), so it is
// coarse: accurate to the duration of the last few dozen events.
type FlightEvent struct {
	At   int64
	Seq  uint32
	A    int32
	B    int32
	Kind FlightKind
}

// flightStampInterval is how many records a ring writes between wall-clock
// refreshes of its coarse timestamp. Power of two.
const flightStampInterval = 64

// DefaultFlightRingSize is the per-goroutine ring capacity when
// NewFlightRecorder is given a non-positive size: 4096 records ≈ 96 KiB.
const DefaultFlightRingSize = 4096

// FlightRecorder hands out per-goroutine rings and assembles dumps. A nil
// *FlightRecorder hands out nil rings, whose Record is a bare nil-check —
// the disabled configuration costs one branch per event.
type FlightRecorder struct {
	mu    sync.Mutex
	start time.Time
	size  int
	rings []*FlightRing

	cause     string
	requested bool
	autoDump  io.Writer
	dumpOnce  sync.Once
}

// NewFlightRecorder returns a recorder whose rings hold ringSize records
// each (rounded up to a power of two; <= 0 means DefaultFlightRingSize).
func NewFlightRecorder(ringSize int) *FlightRecorder {
	if ringSize <= 0 {
		ringSize = DefaultFlightRingSize
	}
	size := 1
	for size < ringSize {
		size <<= 1
	}
	return &FlightRecorder{start: time.Now(), size: size}
}

// SetAutoDump directs automatic dumps (RequestDump + FlushDump) to w.
func (r *FlightRecorder) SetAutoDump(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.autoDump = w
	r.mu.Unlock()
}

// Ring allocates a new ring owned by the calling goroutine. Rings are never
// reclaimed — a recorder is scoped to one run or one portfolio race — and a
// nil recorder returns a nil ring, whose Record is a no-op.
func (r *FlightRecorder) Ring(label string) *FlightRing {
	if r == nil {
		return nil
	}
	g := &FlightRing{
		rec:   make([]FlightEvent, r.size),
		mask:  uint64(r.size - 1),
		label: label,
		r:     r,
	}
	r.mu.Lock()
	r.rings = append(r.rings, g)
	r.mu.Unlock()
	return g
}

// RequestDump marks the recorder for an automatic dump with the given cause
// (the first cause wins). It is safe to call from a dying goroutine while
// other goroutines still record: nothing is read from the rings here — the
// dump itself happens in FlushDump, once the engine has joined its workers.
func (r *FlightRecorder) RequestDump(cause string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if !r.requested {
		r.requested, r.cause = true, cause
	}
	r.mu.Unlock()
}

// DumpRequested reports whether an automatic dump is pending and its cause.
func (r *FlightRecorder) DumpRequested() (string, bool) {
	if r == nil {
		return "", false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cause, r.requested
}

// FlushDump writes the dump to the SetAutoDump writer if RequestDump was
// called, at most once per recorder. Call it only at quiescent points: every
// ring's writer goroutine must have returned (the engines call it after
// joining their workers).
func (r *FlightRecorder) FlushDump() {
	if r == nil {
		return
	}
	r.mu.Lock()
	w, requested := r.autoDump, r.requested
	r.mu.Unlock()
	if !requested || w == nil {
		return
	}
	r.dumpOnce.Do(func() { _ = r.Dump(w) })
}

// flightHeader is the first line of a dump.
type flightHeader struct {
	Schema   string    `json:"schema"`
	Start    time.Time `json:"start"`
	RingSize int       `json:"ring_size"`
	Rings    int       `json:"rings"`
	Cause    string    `json:"cause,omitempty"`
}

// flightRecordJSON is one dumped record.
type flightRecordJSON struct {
	Ring string `json:"ring"`
	I    uint64 `json:"i"`
	AtNS int64  `json:"at_ns"`
	Kind string `json:"kind"`
	Seq  uint32 `json:"seq,omitempty"`
	A    int32  `json:"a,omitempty"`
	B    int32  `json:"b,omitempty"`
}

// FlightSchema identifies the dump format: a JSONL stream whose first line
// is a header object and whose remaining lines are records, oldest first
// within each ring. The format is stable in the same sense as
// tupelo-report/v1: fields may be added, never renamed.
const FlightSchema = "tupelo-flight/v1"

// Dump writes the recorder contents as a tupelo-flight/v1 JSONL stream:
// header line, then every ring's surviving records oldest-first. The caller
// must guarantee quiescence (no goroutine still recording); dumps taken
// while writers run would be torn.
func (r *FlightRecorder) Dump(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	rings := append([]*FlightRing(nil), r.rings...)
	hdr := flightHeader{
		Schema:   FlightSchema,
		Start:    r.start,
		RingSize: r.size,
		Rings:    len(rings),
		Cause:    r.cause,
	}
	r.mu.Unlock()
	enc := json.NewEncoder(w)
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for _, g := range rings {
		lo := uint64(0)
		if g.pos > uint64(len(g.rec)) {
			lo = g.pos - uint64(len(g.rec))
		}
		for i := lo; i < g.pos; i++ {
			e := g.rec[i&g.mask]
			rec := flightRecordJSON{
				Ring: g.label,
				I:    i,
				AtNS: e.At,
				Kind: e.Kind.String(),
				Seq:  e.Seq,
				A:    e.A,
				B:    e.B,
			}
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// Records returns a copy of one ring's surviving records, oldest first, for
// tests and programmatic consumers. Same quiescence contract as Dump.
func (r *FlightRecorder) Records(label string) []FlightEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []FlightEvent
	for _, g := range r.rings {
		if g.label != label {
			continue
		}
		lo := uint64(0)
		if g.pos > uint64(len(g.rec)) {
			lo = g.pos - uint64(len(g.rec))
		}
		for i := lo; i < g.pos; i++ {
			out = append(out, g.rec[i&g.mask])
		}
	}
	return out
}

// FlightRing is one goroutine's ring buffer. All writes must come from the
// goroutine that obtained the ring; that single-writer discipline is what
// lets Record skip atomics entirely.
type FlightRing struct {
	rec    []FlightEvent
	mask   uint64
	pos    uint64 // total records written; pos & mask is the next slot
	coarse int64  // ns since recorder epoch, refreshed every flightStampInterval
	label  string
	r      *FlightRecorder
}

// Record appends one event. On a nil ring (recorder disabled) it is a single
// nil-check. The hot path is three plain stores plus an amortized wall-clock
// read every flightStampInterval records; see BenchmarkFlightRecord.
func (g *FlightRing) Record(k FlightKind, seq uint32, a, b int32) {
	if g == nil {
		return
	}
	if g.pos&(flightStampInterval-1) == 0 {
		g.coarse = int64(time.Since(g.r.start))
	}
	e := &g.rec[g.pos&g.mask]
	e.At = g.coarse
	e.Seq = seq
	e.A = a
	e.B = b
	e.Kind = k
	g.pos++
}

// Len returns the number of records currently held (≤ ring size).
func (g *FlightRing) Len() int {
	if g == nil {
		return 0
	}
	if g.pos > uint64(len(g.rec)) {
		return len(g.rec)
	}
	return int(g.pos)
}
