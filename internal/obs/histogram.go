package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: fixed log-spaced (base-2) latency buckets. The
// first bucket's upper bound is histMinNS nanoseconds and every subsequent
// bound doubles, so 34 finite buckets span 64ns .. ~9.4 minutes — below the
// first bound nothing in this codebase is distinguishable from timer
// overhead, above the last a "latency" is really a whole experiment. The
// final bucket is the +Inf overflow. Fixed bounds keep Observe lock-free
// (one atomic add into a flat array, no resizing, no mutex) and make every
// histogram in a registry mergeable sample-by-sample.
const (
	histMinNS         = 64
	histFiniteBuckets = 34
	histBucketCount   = histFiniteBuckets + 1 // + overflow (+Inf)
)

// histBound returns the upper bound, in nanoseconds, of finite bucket i.
func histBound(i int) int64 { return histMinNS << uint(i) }

// histIndex maps a duration in nanoseconds to its bucket index.
func histIndex(ns int64) int {
	if ns <= histMinNS {
		return 0
	}
	// Smallest i with histMinNS<<i >= ns: the bit length of (ns-1)/histMinNS
	// rounded up to the next power of two.
	i := bits.Len64(uint64(ns-1) >> 6) // 6 = log2(histMinNS)
	if i >= histFiniteBuckets {
		return histBucketCount - 1
	}
	return i
}

// Histogram is a latency distribution over log-spaced fixed buckets. All
// updates are single atomic adds, so a Histogram is lock-free and safe for
// concurrent use; the zero value is ready to use and a nil *Histogram is a
// no-op, matching the other instruments.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	buckets [histBucketCount]atomic.Int64
}

// Observe records one duration. Negative durations count into the first
// bucket (they are clock-adjustment noise, not data).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[histIndex(ns)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Total returns the accumulated duration.
func (h *Histogram) Total() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the recorded
// distribution: it finds the bucket holding the target rank and
// interpolates linearly inside it. Overflow observations report the last
// finite bound. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	return h.snapshotBuckets().quantile(q)
}

// histCounts is a point-in-time copy of the bucket array.
type histCounts struct {
	count   int64
	buckets [histBucketCount]int64
}

func (h *Histogram) snapshotBuckets() histCounts {
	var s histCounts
	s.count = h.count.Load()
	for i := range h.buckets {
		s.buckets[i] = h.buckets[i].Load()
	}
	return s
}

func (s histCounts) quantile(q float64) time.Duration {
	if s.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.count)
	var cum float64
	for i, n := range s.buckets {
		if n == 0 {
			continue
		}
		prev := cum
		cum += float64(n)
		if cum < rank {
			continue
		}
		if i >= histFiniteBuckets {
			return time.Duration(histBound(histFiniteBuckets - 1))
		}
		lo := int64(0)
		if i > 0 {
			lo = histBound(i - 1)
		}
		hi := histBound(i)
		frac := (rank - prev) / float64(n)
		return time.Duration(float64(lo) + frac*float64(hi-lo))
	}
	return time.Duration(histBound(histFiniteBuckets - 1))
}

// HistogramBucket is one cumulative bucket of a HistogramSnapshot: Count
// observations were <= UpperNS nanoseconds.
type HistogramBucket struct {
	UpperNS int64 `json:"upper_ns"`
	Count   int64 `json:"count"`
}

// HistogramSnapshot is the exported state of one Histogram: totals, the
// estimated 50th/90th/99th percentiles, and the non-empty finite buckets
// with cumulative counts (the +Inf bucket is implied by Count). Buckets with
// no new observations are omitted, so the JSON stays proportional to the
// spread of the data rather than the bucket grid.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	TotalNS int64             `json:"total_ns"`
	P50NS   int64             `json:"p50_ns"`
	P90NS   int64             `json:"p90_ns"`
	P99NS   int64             `json:"p99_ns"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot copies the current distribution.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := h.snapshotBuckets()
	out := HistogramSnapshot{
		Count:   s.count,
		TotalNS: h.sum.Load(),
		P50NS:   int64(s.quantile(0.50)),
		P90NS:   int64(s.quantile(0.90)),
		P99NS:   int64(s.quantile(0.99)),
	}
	var cum int64
	for i := 0; i < histFiniteBuckets; i++ {
		if s.buckets[i] == 0 {
			continue
		}
		cum += s.buckets[i]
		out.Buckets = append(out.Buckets, HistogramBucket{UpperNS: histBound(i), Count: cum})
	}
	return out
}

// boundSeconds renders a bucket's upper bound as a Prometheus le value.
func boundSeconds(ns int64) float64 {
	return float64(ns) / float64(time.Second)
}
