package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// jsonEvent is the wire form of one Event: kind as its String name, error
// as its message, elapsed in nanoseconds, zero-valued fields omitted.
type jsonEvent struct {
	Kind      string `json:"kind"`
	Label     string `json:"label,omitempty"`
	Seq       int    `json:"seq,omitempty"`
	N         int    `json:"n,omitempty"`
	Depth     int    `json:"depth,omitempty"`
	Goal      bool   `json:"goal,omitempty"`
	Err       string `json:"err,omitempty"`
	ElapsedNS int64  `json:"elapsed_ns,omitempty"`
}

// JSONTracer writes the full event stream — including the cache and
// operator-apply events that transcripts omit — as one JSON object per
// line, so traces are machine-parseable without writing a custom Tracer.
// A mutex serializes writes; a JSONTracer is safe for concurrent use.
type JSONTracer struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONTracer returns a Tracer streaming JSON event objects to w.
func NewJSONTracer(w io.Writer) *JSONTracer {
	return &JSONTracer{enc: json.NewEncoder(w)}
}

// Event implements Tracer.
func (t *JSONTracer) Event(e Event) {
	rec := jsonEvent{
		Kind:      e.Kind.String(),
		Label:     e.Label,
		Seq:       e.Seq,
		N:         e.N,
		Depth:     e.Depth,
		Goal:      e.Goal,
		ElapsedNS: int64(e.Elapsed),
	}
	if e.Err != nil {
		rec.Err = e.Err.Error()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	_ = t.enc.Encode(rec)
}
