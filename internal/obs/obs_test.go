package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeTimerBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("search.examined")
	c.Inc()
	c.Add(4)
	c.Add(-3) // counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("search.examined") != c {
		t.Fatal("counter lookup not stable")
	}

	g := r.Gauge("pool.workers")
	g.Set(8)
	g.Add(-2)
	g.Max(4) // below current value: no change
	g.Max(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("gauge = %d, want 9", got)
	}

	tm := r.Timer("expand")
	tm.Observe(2 * time.Millisecond)
	tm.Observe(5 * time.Millisecond)
	if tm.Count() != 2 || tm.Total() != 7*time.Millisecond || tm.MaxValue() != 5*time.Millisecond {
		t.Fatalf("timer = (%d, %s, %s)", tm.Count(), tm.Total(), tm.MaxValue())
	}
}

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	tm := r.Timer("x")
	c.Inc()
	c.Add(3)
	g.Set(7)
	g.Add(1)
	g.Max(2)
	tm.Observe(time.Second)
	if c.Value() != 0 || g.Value() != 0 || tm.Count() != 0 || tm.Total() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Timers) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

// TestRegistryConcurrency exercises concurrent get-or-create and updates;
// meaningful under -race.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Max(int64(j))
				r.Timer("t").Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 999 {
		t.Fatalf("gauge max = %d, want 999", got)
	}
	if got := r.Timer("t").Count(); got != 8000 {
		t.Fatalf("timer count = %d, want 8000", got)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("search.examined", "algo", "RBFS")).Add(42)
	r.Gauge("pool.workers").Set(4)
	r.Timer("expand").Observe(3 * time.Millisecond)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("invalid JSON exposition: %v\n%s", err, buf.String())
	}
	if s.Counters[`search.examined{algo="RBFS"}`] != 42 {
		t.Fatalf("examined missing from snapshot: %v", s.Counters)
	}
	if s.Gauges["pool.workers"] != 4 {
		t.Fatalf("gauge missing: %v", s.Gauges)
	}
	if ts := s.Timers["expand"]; ts.Count != 1 || ts.TotalNS != int64(3*time.Millisecond) {
		t.Fatalf("timer snapshot = %+v", s.Timers["expand"])
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("search.examined", "algo", "RBFS")).Add(7)
	r.Gauge("pool.workers").Set(2)
	r.Timer("portfolio.race").Observe(1500 * time.Millisecond)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE tupelo_search_examined counter",
		`tupelo_search_examined{algo="RBFS"} 7`,
		"tupelo_pool_workers 2",
		"tupelo_portfolio_race_count 1",
		"tupelo_portfolio_race_seconds_total 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHandlerServesBothFormats(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp := httptest.NewRecorder()
	r.Handler().ServeHTTP(resp, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(resp.Body.String(), "tupelo_hits 1") {
		t.Fatalf("prometheus body: %s", resp.Body.String())
	}
	resp = httptest.NewRecorder()
	r.Handler().ServeHTTP(resp, httptest.NewRequest("GET", "/metrics?format=json", nil))
	var s Snapshot
	if err := json.Unmarshal(resp.Body.Bytes(), &s); err != nil || s.Counters["hits"] != 1 {
		t.Fatalf("json body (%v): %s", err, resp.Body.String())
	}
}

func TestName(t *testing.T) {
	if got := Name("a.b"); got != "a.b" {
		t.Fatalf("Name = %q", got)
	}
	if got := Name("a.b", "k", "v", "x", "y"); got != `a.b{k="v",x="y"}` {
		t.Fatalf("Name = %q", got)
	}
}

func TestWriterTracerTranscript(t *testing.T) {
	var buf bytes.Buffer
	tr := NewWriterTracer(&buf)
	tr.Event(Event{Kind: EvGoalTest, Seq: 1})
	tr.Event(Event{Kind: EvExpand, N: 3})
	tr.Event(Event{Kind: EvMove, Label: "rename_att[Emp,nm->Name]"})
	tr.Event(Event{Kind: EvGoalTest, Seq: 2, Goal: true})
	tr.Event(Event{Kind: EvCacheHit, Label: "cosine"}) // omitted from text
	tr.Event(Event{Kind: EvMemberLose, Label: "IDA/h1", Err: errors.New("boom")})
	out := buf.String()
	for _, want := range []string{
		"examine 1\n", "expand: 3 moves", "  move rename_att[Emp,nm->Name]",
		"examine 2: GOAL", "member IDA/h1: lost: boom",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("transcript missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "cache") {
		t.Fatalf("cache events must not clutter the text transcript:\n%s", out)
	}
}

// TestCollectorConcurrent is meaningful under -race: many goroutines emit
// into one Collector, as portfolio members do.
func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.Event(Event{Kind: EvCacheHit})
			}
		}()
	}
	wg.Wait()
	if got := c.Count(EvCacheHit); got != 2000 {
		t.Fatalf("collected %d events, want 2000", got)
	}
	if got := c.Count(); got != 2000 {
		t.Fatalf("Count() = %d, want 2000", got)
	}
}

func TestMultiTracer(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	m := MultiTracer(a, nil, Nop, b)
	m.Event(Event{Kind: EvRunStart})
	if a.Count() != 1 || b.Count() != 1 {
		t.Fatal("multi tracer must fan out")
	}
	if MultiTracer() != Nop {
		t.Fatal("empty multi tracer should collapse to Nop")
	}
	if MultiTracer(a) != Tracer(a) {
		t.Fatal("single multi tracer should collapse to its element")
	}
}

func TestContextRoundTrip(t *testing.T) {
	if o := FromContext(context.Background()); o.Enabled() {
		t.Fatal("background context must carry no obs")
	}
	if FromContext(context.Background()).Tracer() != Nop {
		t.Fatal("zero Obs tracer must be Nop")
	}
	reg := NewRegistry()
	col := NewCollector()
	ctx := NewContext(context.Background(), Obs{Metrics: reg, Trace: col})
	o := FromContext(ctx)
	if o.Metrics != reg || o.Tracer() != Tracer(col) {
		t.Fatal("obs did not round-trip through context")
	}
	// Disabled Obs must not allocate a context value.
	if NewContext(context.Background(), Obs{}) != context.Background() {
		t.Fatal("empty Obs should return the original context")
	}
}
