package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// EventKind classifies a trace event.
type EventKind uint8

const (
	// EvRunStart marks the start of one search run; Label is the algorithm.
	EvRunStart EventKind = iota + 1
	// EvRunFinish marks the end of one search run; Goal reports success, N
	// the states examined, Err the failure cause.
	EvRunFinish
	// EvGoalTest is one examined state; Seq numbers it, Goal reports the
	// outcome of the containment test.
	EvGoalTest
	// EvExpand is one successor expansion; N is the number of moves.
	EvExpand
	// EvMove is one candidate move of an expansion; Label is the operator.
	EvMove
	// EvCacheHit is a heuristic-cache hit; Label names the cache.
	EvCacheHit
	// EvCacheMiss is a heuristic-cache miss; Label names the cache.
	EvCacheMiss
	// EvMemberStart marks one portfolio member entering the race; Label is
	// the resolved member configuration.
	EvMemberStart
	// EvMemberWin marks the winning portfolio member; N is its states
	// examined, Elapsed its wall-clock time.
	EvMemberWin
	// EvMemberLose marks a member that failed on its own (budget, no
	// mapping); Err is its failure.
	EvMemberLose
	// EvMemberCancel marks a member stopped because another member won (or
	// the caller cancelled the race).
	EvMemberCancel
	// EvOpApply is one candidate-operator application during a successor
	// expansion; Label is the operator, Goal reports whether it yielded a
	// successor, Elapsed the apply duration. Like the cache events it is
	// high-frequency and omitted from transcripts.
	EvOpApply
	// EvPanic is a panic recovered inside a search-owned goroutine — a
	// portfolio member, a successor-pool worker, or the discovery call
	// itself; Label is the recovering goroutine's identity and Err the
	// *search.PanicError carrying the captured stack. Structural (at most a
	// handful per run), so it is never down-sampled.
	EvPanic
	// EvMemoHit is a successor-memo hit: an expansion answered from the
	// memoized move list without re-applying any operator. High-frequency
	// (one per memoized expansion) and omitted from transcripts; it exists
	// so profiles can tell "operators are cheap" apart from "operators were
	// never run" — per-operator apply metrics sample only memo misses.
	EvMemoHit
	// EvMemoMiss is a successor-memo miss: the expansion ran the operator
	// pipeline and its result was considered for memoization. Same
	// transcript treatment as EvMemoHit.
	EvMemoMiss
	// EvShardSample is a periodic shard-backpressure sample from a parallel
	// single-search worker (every wallCheckInterval examined states): Label
	// is the shard id, N the shard's inbox depth, Depth its outbox length,
	// Seq the global examined ordinal at the sample. Moderate-frequency;
	// omitted from transcripts, consumed by the run-report builder for the
	// inbox-depth timeline.
	EvShardSample
)

// String names the kind for transcripts and debugging.
func (k EventKind) String() string {
	switch k {
	case EvRunStart:
		return "run-start"
	case EvRunFinish:
		return "run-finish"
	case EvGoalTest:
		return "goal-test"
	case EvExpand:
		return "expand"
	case EvMove:
		return "move"
	case EvCacheHit:
		return "cache-hit"
	case EvCacheMiss:
		return "cache-miss"
	case EvMemberStart:
		return "member-start"
	case EvMemberWin:
		return "member-win"
	case EvMemberLose:
		return "member-lose"
	case EvMemberCancel:
		return "member-cancel"
	case EvOpApply:
		return "op-apply"
	case EvPanic:
		return "panic"
	case EvMemoHit:
		return "memo-hit"
	case EvMemoMiss:
		return "memo-miss"
	case EvShardSample:
		return "shard-sample"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one structured trace record. Fields are reused across kinds to
// keep the struct small and allocation-free on the emitting path; the kind
// documentation states which fields are meaningful.
type Event struct {
	// Kind classifies the event.
	Kind EventKind
	// Label is the event subject: algorithm, operator, cache, or member
	// configuration, depending on Kind.
	Label string
	// Seq is the examined-state ordinal for goal tests and expansions.
	Seq int
	// N is a count: moves generated, states examined, members racing.
	N int
	// Depth is the search depth (g) of the state on goal tests, expansions,
	// and moves.
	Depth int
	// Goal marks a successful goal test, run, or winning member.
	Goal bool
	// Err is the failure cause on EvRunFinish and EvMemberLose.
	Err error
	// Elapsed is the wall-clock duration on finish events.
	Elapsed time.Duration
}

// Tracer receives structured search events. Implementations must be safe
// for concurrent use: worker pools and portfolio members emit from their
// own goroutines.
type Tracer interface {
	Event(Event)
}

// nopTracer discards events.
type nopTracer struct{}

func (nopTracer) Event(Event) {}

// Nop is the no-op Tracer: the default wherever no tracer is configured.
var Nop Tracer = nopTracer{}

// WriterTracer renders events as a human-readable transcript, one line per
// event, in the format of the original Options.TraceWriter transcripts
// ("examine N", "expand: N moves", "  move OP"). High-frequency cache
// events are omitted to keep transcripts readable; use a Collector or a
// custom Tracer for the full stream. A mutex serializes writes, so a
// WriterTracer is safe for concurrent use (portfolio transcripts
// interleave at line granularity).
type WriterTracer struct {
	mu sync.Mutex
	w  io.Writer
}

// NewWriterTracer returns a Tracer writing the transcript to w. It is the
// compatibility adapter for the removed Options.TraceWriter field.
func NewWriterTracer(w io.Writer) *WriterTracer {
	return &WriterTracer{w: w}
}

// Event implements Tracer.
func (t *WriterTracer) Event(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch e.Kind {
	case EvGoalTest:
		if e.Goal {
			fmt.Fprintf(t.w, "examine %d: GOAL\n", e.Seq)
		} else {
			fmt.Fprintf(t.w, "examine %d\n", e.Seq)
		}
	case EvExpand:
		if e.Err != nil {
			fmt.Fprintf(t.w, "expand: error: %v\n", e.Err)
		} else {
			fmt.Fprintf(t.w, "expand: %d moves\n", e.N)
		}
	case EvMove:
		fmt.Fprintf(t.w, "  move %s\n", e.Label)
	case EvRunStart:
		fmt.Fprintf(t.w, "run %s: start\n", e.Label)
	case EvRunFinish:
		switch {
		case e.Goal:
			fmt.Fprintf(t.w, "run %s: solved after %d states (%s)\n", e.Label, e.N, e.Elapsed)
		default:
			fmt.Fprintf(t.w, "run %s: failed after %d states: %v\n", e.Label, e.N, e.Err)
		}
	case EvMemberStart:
		fmt.Fprintf(t.w, "member %s: start\n", e.Label)
	case EvMemberWin:
		fmt.Fprintf(t.w, "member %s: WIN after %d states (%s)\n", e.Label, e.N, e.Elapsed)
	case EvMemberLose:
		fmt.Fprintf(t.w, "member %s: lost: %v\n", e.Label, e.Err)
	case EvMemberCancel:
		fmt.Fprintf(t.w, "member %s: cancelled (%s)\n", e.Label, e.Elapsed)
	case EvPanic:
		fmt.Fprintf(t.w, "panic in %s: %v\n", e.Label, e.Err)
	case EvCacheHit, EvCacheMiss, EvOpApply, EvMemoHit, EvMemoMiss, EvShardSample:
		// Omitted: one line per heuristic evaluation, operator apply, or
		// memoized expansion would drown the transcript. Counters and
		// histograms carry the aggregate; Collector, JSONTracer, or
		// Profile carry the stream.
	}
}

// Collector is a race-safe Tracer that records every event in order of
// arrival, for tests and programmatic consumers of the event stream.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector { return &Collector{} }

// Event implements Tracer.
func (c *Collector) Event(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a copy of the recorded stream.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Count returns the number of recorded events of the given kinds (all
// events when no kind is given).
func (c *Collector) Count(kinds ...EventKind) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(kinds) == 0 {
		return len(c.events)
	}
	n := 0
	for _, e := range c.events {
		for _, k := range kinds {
			if e.Kind == k {
				n++
				break
			}
		}
	}
	return n
}

// MultiTracer fans events out to several tracers.
func MultiTracer(tracers ...Tracer) Tracer {
	live := make([]Tracer, 0, len(tracers))
	for _, t := range tracers {
		if t != nil && t != Nop {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return Nop
	case 1:
		return live[0]
	}
	return multiTracer(live)
}

type multiTracer []Tracer

func (m multiTracer) Event(e Event) {
	for _, t := range m {
		t.Event(e)
	}
}
