package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"
)

// This file defines the run report — the per-run forensic artifact of the
// tentpole forensics layer: a stable `tupelo-report/v1` JSON document
// assembling a span tree (run → portfolio member → search → shard) with
// per-span timings, plus derived analytics answering the paper's central
// question of *why* a heuristic examined the states it did: the
// heuristic-quality profile (h(s) against true remaining cost along the
// found solution path), the effective branching factor, cache and memo hit
// rates, per-shard balance with an inbox-depth timeline, and the abort
// cause. The obs package owns the schema and the analytics math; the core
// package assembles reports (it knows heuristics and solution paths), and
// cmd/tupelo-trace consumes them.

// ReportSchema identifies the run-report JSON format. Stability contract as
// for tupelo-bench/v1: fields may be added in later versions, never renamed
// or re-typed.
const ReportSchema = "tupelo-report/v1"

// RunReport is the root document.
type RunReport struct {
	Schema      string    `json:"schema"`
	GeneratedAt time.Time `json:"generated_at"`

	// Configuration of the reported run.
	Algorithm string  `json:"algorithm,omitempty"`
	Heuristic string  `json:"heuristic,omitempty"`
	K         float64 `json:"k,omitempty"`
	Workers   int     `json:"workers,omitempty"`

	// Outcome.
	Solved     bool   `json:"solved"`
	Partial    bool   `json:"partial,omitempty"`
	AbortCause string `json:"abort_cause,omitempty"`
	Error      string `json:"error,omitempty"`

	// Effort, as in search.Stats.
	Examined    int   `json:"examined"`
	Generated   int   `json:"generated"`
	MaxFrontier int   `json:"max_frontier,omitempty"`
	Iterations  int   `json:"iterations,omitempty"`
	Depth       int   `json:"depth,omitempty"`
	DurationNS  int64 `json:"duration_ns,omitempty"`

	// EBF is the effective branching factor: the uniform branching factor
	// b* whose tree of the solution depth contains exactly the examined
	// node count. 0 when the run found no solution (the depth is unknown).
	EBF float64 `json:"ebf,omitempty"`

	// Span is the root of the span tree.
	Span *Span `json:"span,omitempty"`

	// HeuristicQuality profiles every heuristic kind along the found
	// solution path; the entry with Used set is the run's own heuristic.
	HeuristicQuality []HeuristicQuality `json:"heuristic_quality,omitempty"`

	// Shards reports the parallel single-search balance; nil for
	// sequential runs.
	Shards *ShardReport `json:"shards,omitempty"`

	// Caches reports heuristic-cache hit rates, one entry per cache label.
	Caches []CacheReport `json:"caches,omitempty"`

	// Memo reports the successor-memo hit rate; nil when the memo saw no
	// traffic.
	Memo *CacheReport `json:"memo,omitempty"`
}

// Span is one timed node of the run's span tree.
type Span struct {
	// Name identifies the span: "run" at the root, the member configuration
	// for portfolio members, the algorithm for search runs, "shard-N" for
	// shard workers.
	Name string `json:"name"`
	// Kind is "run", "member", "search", or "shard".
	Kind string `json:"kind"`
	// StartNS is the span start, nanoseconds since the root span started.
	StartNS int64 `json:"start_ns"`
	// DurationNS is the span length; 0 if the span never closed.
	DurationNS int64 `json:"duration_ns,omitempty"`
	// Examined is the states examined within the span, where known.
	Examined int `json:"examined,omitempty"`
	// Outcome is "solved"/"failed" for search spans, "win"/"lose"/"cancel"
	// for members, empty when unknown.
	Outcome string `json:"outcome,omitempty"`
	// Error is the failure text for failed spans.
	Error string `json:"error,omitempty"`
	// Children are the nested spans.
	Children []*Span `json:"children,omitempty"`
}

// HeuristicQuality profiles one heuristic kind against the true remaining
// cost along the found solution path. With unit move costs the state at
// depth d of a depth-D solution has true remaining cost D−d; a heuristic is
// good exactly when its estimates track that quantity, which is what the
// paper's states-examined rankings measure indirectly.
type HeuristicQuality struct {
	Kind string  `json:"kind"`
	K    float64 `json:"k,omitempty"`
	// Used marks the run's own heuristic.
	Used bool `json:"used,omitempty"`
	// Samples holds one entry per state along the solution path (depth
	// ascending, start state first) — the per-depth error profile.
	Samples []HSample `json:"samples,omitempty"`
	// MeanAbsErr and MeanErr are the mean absolute and mean signed error of
	// the calibrated estimates against true remaining cost, normalized by
	// the solution depth (so runs of different depth are comparable).
	MeanAbsErr float64 `json:"mean_abs_err"`
	MeanErr    float64 `json:"mean_err"`
	// Correlation is the Pearson correlation between raw h and true
	// remaining cost along the path — scale-invariant, so the paper's
	// k-scaled heuristics are not penalized for their scale. 0 when h is
	// constant (h0) or the path is too short.
	Correlation float64 `json:"correlation"`
	// AdmissibilityViolations counts path states whose raw h exceeded the
	// true remaining cost.
	AdmissibilityViolations int `json:"admissibility_violations"`
	// Accuracy is the scalar ranking score in [0, 1] combining correlation
	// (does h order states correctly?) and calibrated error (is h
	// proportionally right?). See Finalize for the formula.
	Accuracy float64 `json:"accuracy"`
}

// HSample is one solution-path state's heuristic sample.
type HSample struct {
	Depth         int `json:"depth"`
	H             int `json:"h"`
	TrueRemaining int `json:"true_remaining"`
}

// Finalize derives MeanAbsErr, MeanErr, Correlation,
// AdmissibilityViolations, and Accuracy from Samples. Calibration: the raw
// estimates are rescaled so the start state's estimate equals its true
// remaining cost (when the raw estimate is positive), making the error of
// k-scaled heuristics measure shape, not scale.
//
// Accuracy = max(0, correlation) / (1 + normalized mean abs error): a
// perfectly-shaped heuristic scores 1, blind search (h≡0, zero variance →
// zero correlation) scores 0.
func (q *HeuristicQuality) Finalize() {
	n := len(q.Samples)
	if n == 0 {
		return
	}
	depth := 0
	for _, s := range q.Samples {
		if s.TrueRemaining > depth {
			depth = s.TrueRemaining
		}
		if s.H > s.TrueRemaining {
			q.AdmissibilityViolations++
		}
	}
	if depth == 0 {
		depth = 1
	}
	scale := 1.0
	if first := q.Samples[0]; first.H > 0 && first.TrueRemaining > 0 {
		scale = float64(first.TrueRemaining) / float64(first.H)
	}
	var sumErr, sumAbs float64
	var sumH, sumT, sumHH, sumTT, sumHT float64
	for _, s := range q.Samples {
		e := (scale*float64(s.H) - float64(s.TrueRemaining)) / float64(depth)
		sumErr += e
		sumAbs += math.Abs(e)
		h, t := float64(s.H), float64(s.TrueRemaining)
		sumH += h
		sumT += t
		sumHH += h * h
		sumTT += t * t
		sumHT += h * t
	}
	fn := float64(n)
	q.MeanErr = sumErr / fn
	q.MeanAbsErr = sumAbs / fn
	varH := sumHH - sumH*sumH/fn
	varT := sumTT - sumT*sumT/fn
	cov := sumHT - sumH*sumT/fn
	if varH > 0 && varT > 0 {
		q.Correlation = cov / math.Sqrt(varH*varT)
	}
	q.Accuracy = math.Max(0, q.Correlation) / (1 + q.MeanAbsErr)
}

// ShardReport is the parallel single-search balance section.
type ShardReport struct {
	Workers int `json:"workers"`
	// Shards has one entry per shard worker, shard id ascending.
	Shards []ShardStat `json:"shards"`
	// ImbalancePermille is ⌈max/mean⌉ of per-shard examined counts in
	// permille: 1000 is perfect balance, 2000 means the busiest shard
	// examined twice its fair share.
	ImbalancePermille int64 `json:"imbalance_permille,omitempty"`
	// InboxTimeline is the backpressure timeline from the shards' periodic
	// samples, sample order.
	InboxTimeline []InboxSample `json:"inbox_timeline,omitempty"`
}

// ShardStat is one shard worker's counters.
type ShardStat struct {
	Shard    int   `json:"shard"`
	Examined int64 `json:"examined"`
	Routed   int64 `json:"routed"`
	Deferred int64 `json:"deferred"`
}

// InboxSample is one periodic shard backpressure sample (see EvShardSample).
type InboxSample struct {
	// AtNS is nanoseconds since the report builder started.
	AtNS int64 `json:"at_ns"`
	// Shard is the sampling shard's id.
	Shard int `json:"shard"`
	// Seq is the global examined ordinal at the sample.
	Seq int `json:"seq"`
	// Depth is the shard's inbox depth, Outbox its outbox length.
	Depth  int `json:"depth"`
	Outbox int `json:"outbox"`
}

// CacheReport is one cache's (or the successor memo's) hit statistics.
type CacheReport struct {
	Name    string  `json:"name,omitempty"`
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// NewCacheReport derives the hit rate.
func NewCacheReport(name string, hits, misses int64) CacheReport {
	c := CacheReport{Name: name, Hits: hits, Misses: misses}
	if total := hits + misses; total > 0 {
		c.HitRate = float64(hits) / float64(total)
	}
	return c
}

// EffectiveBranchingFactor solves Σ_{i=1..depth} b^i = examined for b — the
// uniform branching factor whose complete tree of the solution depth holds
// exactly the examined node count (Russell & Norvig's N = b* + b*² + … +
// b*^d). Returns 0 when depth or examined make the equation degenerate.
func EffectiveBranchingFactor(examined, depth int) float64 {
	if depth <= 0 || examined < depth {
		return 0
	}
	if depth == 1 {
		return float64(examined)
	}
	tree := func(b float64) float64 {
		sum, p := 0.0, 1.0
		for i := 0; i < depth; i++ {
			p *= b
			sum += p
		}
		return sum
	}
	lo, hi := 1.0, float64(examined)
	if tree(lo) >= float64(examined) {
		return lo
	}
	for i := 0; i < 100 && hi-lo > 1e-9; i++ {
		mid := (lo + hi) / 2
		if tree(mid) < float64(examined) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// ValidateRunReport checks the structural invariants of a report the way
// ValidateBenchReport does for benchmark files: schema identity, count
// sanity, and internal consistency of the shard section.
func ValidateRunReport(r *RunReport) error {
	if r == nil {
		return fmt.Errorf("report: nil report")
	}
	if r.Schema != ReportSchema {
		return fmt.Errorf("report: schema %q, want %q", r.Schema, ReportSchema)
	}
	if r.Examined < 0 || r.Generated < 0 || r.Depth < 0 {
		return fmt.Errorf("report: negative counters (examined=%d generated=%d depth=%d)", r.Examined, r.Generated, r.Depth)
	}
	if r.Solved && r.Error != "" {
		return fmt.Errorf("report: solved run carries error %q", r.Error)
	}
	for _, q := range r.HeuristicQuality {
		if q.Kind == "" {
			return fmt.Errorf("report: heuristic quality entry without kind")
		}
		if q.Accuracy < 0 || q.Accuracy > 1 {
			return fmt.Errorf("report: heuristic %s accuracy %g outside [0,1]", q.Kind, q.Accuracy)
		}
	}
	if s := r.Shards; s != nil {
		if s.Workers <= 0 {
			return fmt.Errorf("report: shard section with %d workers", s.Workers)
		}
		var sum int64
		for _, sh := range s.Shards {
			if sh.Examined < 0 || sh.Routed < 0 || sh.Deferred < 0 {
				return fmt.Errorf("report: shard %d has negative counters", sh.Shard)
			}
			sum += sh.Examined
		}
		if sum != int64(r.Examined) {
			return fmt.Errorf("report: per-shard examined sums to %d, run aggregate is %d", sum, r.Examined)
		}
	}
	return nil
}

// WriteRunReport writes the report as indented JSON.
func WriteRunReport(w io.Writer, r *RunReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadRunReport parses and validates a report.
func ReadRunReport(rd io.Reader) (*RunReport, error) {
	var r RunReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("report: %v", err)
	}
	if err := ValidateRunReport(&r); err != nil {
		return nil, err
	}
	return &r, nil
}

// ReportBuilder is a Tracer that captures the structural skeleton of a run —
// span tree, shard backpressure timeline, cache/memo traffic — for report
// assembly. It records only structural and moderate-frequency events
// (member/run boundaries, shard samples) plus four counters for the
// high-frequency cache events, so it is cheap enough to attach to any run.
// Safe for concurrent use.
type ReportBuilder struct {
	mu    sync.Mutex
	start time.Time
	root  *Span
	// open tracks unfinished member/search spans by name, oldest first, so
	// concurrent same-label runs close in start order.
	openMembers  map[string][]*Span
	openSearches map[string][]*Span
	samples      []InboxSample
	cacheHits    map[string]int64
	cacheMisses  map[string]int64
	memoHits     int64
	memoMisses   int64
}

// NewReportBuilder returns a builder whose root span starts now.
func NewReportBuilder() *ReportBuilder {
	return &ReportBuilder{
		start:        time.Now(),
		root:         &Span{Name: "run", Kind: "run"},
		openMembers:  map[string][]*Span{},
		openSearches: map[string][]*Span{},
		cacheHits:    map[string]int64{},
		cacheMisses:  map[string]int64{},
	}
}

// Event implements Tracer.
func (b *ReportBuilder) Event(e Event) {
	now := time.Since(b.start)
	b.mu.Lock()
	defer b.mu.Unlock()
	switch e.Kind {
	case EvMemberStart:
		s := &Span{Name: e.Label, Kind: "member", StartNS: int64(now)}
		b.root.Children = append(b.root.Children, s)
		b.openMembers[e.Label] = append(b.openMembers[e.Label], s)
	case EvMemberWin, EvMemberLose, EvMemberCancel:
		s := popOpen(b.openMembers, e.Label)
		if s == nil {
			return
		}
		s.DurationNS = int64(now) - s.StartNS
		if e.Elapsed > 0 {
			s.DurationNS = int64(e.Elapsed)
		}
		s.Examined = e.N
		switch e.Kind {
		case EvMemberWin:
			s.Outcome = "win"
		case EvMemberLose:
			s.Outcome = "lose"
			if e.Err != nil {
				s.Error = e.Err.Error()
			}
		case EvMemberCancel:
			s.Outcome = "cancel"
		}
	case EvRunStart:
		s := &Span{Name: e.Label, Kind: "search", StartNS: int64(now)}
		b.root.Children = append(b.root.Children, s)
		b.openSearches[e.Label] = append(b.openSearches[e.Label], s)
	case EvRunFinish:
		s := popOpen(b.openSearches, e.Label)
		if s == nil {
			return
		}
		s.DurationNS = int64(now) - s.StartNS
		if e.Elapsed > 0 {
			s.DurationNS = int64(e.Elapsed)
		}
		s.Examined = e.N
		if e.Goal {
			s.Outcome = "solved"
		} else {
			s.Outcome = "failed"
			if e.Err != nil {
				s.Error = e.Err.Error()
			}
		}
	case EvShardSample:
		shard := 0
		fmt.Sscanf(e.Label, "%d", &shard)
		b.samples = append(b.samples, InboxSample{
			AtNS: int64(now), Shard: shard, Seq: e.Seq, Depth: e.N, Outbox: e.Depth,
		})
	case EvCacheHit:
		b.cacheHits[e.Label]++
	case EvCacheMiss:
		b.cacheMisses[e.Label]++
	case EvMemoHit:
		b.memoHits++
	case EvMemoMiss:
		b.memoMisses++
	}
}

// popOpen removes and returns the oldest open span under the label.
func popOpen(open map[string][]*Span, label string) *Span {
	spans := open[label]
	if len(spans) == 0 {
		return nil
	}
	s := spans[0]
	if len(spans) == 1 {
		delete(open, label)
	} else {
		open[label] = spans[1:]
	}
	return s
}

// Skeleton seals and returns the builder's contribution to a report: the
// span tree (root duration stamped now), the inbox timeline, and the
// cache/memo sections. The builder can keep receiving events afterwards;
// each call re-seals the current state. The returned spans are shared with
// the builder — callers must not mutate them while the run still traces.
func (b *ReportBuilder) Skeleton() (root *Span, timeline []InboxSample, caches []CacheReport, memo *CacheReport) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.root.DurationNS = int64(time.Since(b.start))
	names := make([]string, 0, len(b.cacheHits)+len(b.cacheMisses))
	seen := map[string]bool{}
	for n := range b.cacheHits {
		names, seen[n] = append(names, n), true
	}
	for n := range b.cacheMisses {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		caches = append(caches, NewCacheReport(n, b.cacheHits[n], b.cacheMisses[n]))
	}
	if b.memoHits+b.memoMisses > 0 {
		m := NewCacheReport("succmemo", b.memoHits, b.memoMisses)
		memo = &m
	}
	return b.root, append([]InboxSample(nil), b.samples...), caches, memo
}
