package obs

import "context"

// Obs bundles the observability hooks a run can carry: a metrics registry,
// a tracer, and a flight recorder. Any or all may be nil; nil instruments
// are no-ops, and Tracer() substitutes Nop for a nil tracer.
type Obs struct {
	// Metrics receives counters, gauges, and timers. Nil disables metrics.
	Metrics *Registry
	// Trace receives structured events. Nil disables tracing.
	Trace Tracer
	// Flight hands out per-goroutine forensic ring buffers. Nil disables
	// the flight recorder (rings come back nil; Record is a nil check).
	Flight *FlightRecorder
}

// Tracer returns the configured tracer, or Nop when none is set, so callers
// can emit unconditionally.
func (o Obs) Tracer() Tracer {
	if o.Trace == nil {
		return Nop
	}
	return o.Trace
}

// Enabled reports whether the metrics or tracing hook is configured. The
// flight recorder is deliberately excluded: it has its own (cheaper)
// nil-ring gating, and a flight-only run should not pay for the
// metrics/tracing instrumentation paths.
func (o Obs) Enabled() bool { return o.Metrics != nil || o.Trace != nil }

type ctxKey struct{}

// NewContext returns a context carrying the observability hooks, the
// mechanism by which higher layers (discovery, portfolio racing) hand
// metrics and tracing down to the search algorithms without widening every
// signature on the way.
func NewContext(ctx context.Context, o Obs) context.Context {
	if !o.Enabled() && o.Flight == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, o)
}

// FromContext extracts the observability hooks, or a zero Obs (nil metrics,
// Nop tracer) when the context carries none.
func FromContext(ctx context.Context) Obs {
	if ctx == nil {
		return Obs{}
	}
	o, _ := ctx.Value(ctxKey{}).(Obs)
	return o
}
