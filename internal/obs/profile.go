package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

const (
	// profMaxCheckpoints bounds the states/sec timeline: when full, every
	// other checkpoint is dropped and the recording stride doubles, so an
	// arbitrarily long run keeps a fixed-size, evenly spaced timeline.
	profMaxCheckpoints = 512
	// profMaxSlices bounds the per-expansion slice log for the Chrome trace
	// export; expansions past the cap are counted but not stored.
	profMaxSlices = 4096
)

// ProfileCheckpoint is one point of the run timeline: cumulative counts at
// OffsetNS nanoseconds after the first event.
type ProfileCheckpoint struct {
	OffsetNS    int64 `json:"offset_ns"`
	Examined    int64 `json:"examined"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	MemoHits    int64 `json:"memo_hits"`
	MemoMisses  int64 `json:"memo_misses"`
}

// OpProfile aggregates one operator kind: how many applications were
// proposed, how many yielded a successor, and the apply latency they cost.
type OpProfile struct {
	Proposed     int64 `json:"proposed"`
	Applied      int64 `json:"applied"`
	ApplyTotalNS int64 `json:"apply_total_ns"`
	ApplyMaxNS   int64 `json:"apply_max_ns"`
}

// profSlice is one recorded expansion, for the Chrome trace export.
type profSlice struct {
	offsetNS int64
	durNS    int64
	depth    int
	moves    int
}

// Profile is a Tracer that aggregates the event stream of one run (or one
// portfolio race) into a per-run profile: per-depth expansion counts,
// per-operator proposed/applied move latencies, a states/sec timeline, and
// cache hit-rate over time. Render it with WriteReport (text) or
// WriteChromeTrace (trace_event JSON, loadable in Perfetto or
// chrome://tracing). A single mutex serializes Event, so a Profile is safe
// to share across worker pools and portfolio members.
//
// Wall-clock offsets are stamped at event arrival; the clock starts at the
// first event seen.
type Profile struct {
	mu  sync.Mutex
	now func() time.Time // test hook; nil means time.Now

	label   string
	started bool
	start   time.Time
	runs    int
	solved  bool
	lastErr error
	elapsed time.Duration // longest EvRunFinish.Elapsed seen

	examined    int64
	goals       int64
	expansions  int64
	expandNS    int64
	moves       int64
	cacheHits   int64
	cacheMisses int64
	memoHits    int64
	memoMisses  int64

	depthExpand map[int]int64
	depthMoves  map[int]int64
	ops         map[string]*OpProfile

	stride      int64
	checkpoints []ProfileCheckpoint

	slices        []profSlice
	slicesDropped int64
}

// NewProfile returns an empty Profile ready to use as Options.Tracer.
func NewProfile() *Profile {
	return &Profile{
		depthExpand: make(map[int]int64),
		depthMoves:  make(map[int]int64),
		ops:         make(map[string]*OpProfile),
		stride:      1,
	}
}

// opKindOf extracts the operator family from a rendered move, the prefix
// before the argument bracket: "rename_att[Emp,nm->Name]" -> "rename_att".
func opKindOf(label string) string {
	if i := strings.IndexByte(label, '['); i >= 0 {
		return label[:i]
	}
	return label
}

// Event implements Tracer.
func (p *Profile) Event(e Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now
	if p.now != nil {
		now = p.now
	}
	at := now()
	if !p.started {
		p.started = true
		p.start = at
	}
	offset := at.Sub(p.start)

	switch e.Kind {
	case EvRunStart:
		p.runs++
		if p.label == "" {
			p.label = e.Label
		} else if p.label != e.Label {
			p.label = "portfolio"
		}
	case EvRunFinish:
		if e.Goal {
			p.solved = true
		} else if e.Err != nil {
			p.lastErr = e.Err
		}
		if e.Elapsed > p.elapsed {
			p.elapsed = e.Elapsed
		}
	case EvGoalTest:
		p.examined++
		if e.Goal {
			p.goals++
		}
		if p.examined%p.stride == 0 {
			p.checkpoint(offset)
		}
	case EvExpand:
		p.expansions++
		p.expandNS += int64(e.Elapsed)
		p.depthExpand[e.Depth]++
		p.depthMoves[e.Depth] += int64(e.N)
		if len(p.slices) < profMaxSlices {
			start := offset - e.Elapsed
			if start < 0 {
				start = 0
			}
			p.slices = append(p.slices, profSlice{
				offsetNS: int64(start),
				durNS:    int64(e.Elapsed),
				depth:    e.Depth,
				moves:    e.N,
			})
		} else {
			p.slicesDropped++
		}
	case EvMove:
		p.moves++
	case EvOpApply:
		op := p.ops[opKindOf(e.Label)]
		if op == nil {
			op = &OpProfile{}
			p.ops[opKindOf(e.Label)] = op
		}
		op.Proposed++
		if e.Goal {
			op.Applied++
		}
		op.ApplyTotalNS += int64(e.Elapsed)
		if int64(e.Elapsed) > op.ApplyMaxNS {
			op.ApplyMaxNS = int64(e.Elapsed)
		}
	case EvCacheHit:
		p.cacheHits++
	case EvCacheMiss:
		p.cacheMisses++
	case EvMemoHit:
		p.memoHits++
	case EvMemoMiss:
		p.memoMisses++
	}
}

// checkpoint records one timeline point; callers hold p.mu.
func (p *Profile) checkpoint(offset time.Duration) {
	p.checkpoints = append(p.checkpoints, ProfileCheckpoint{
		OffsetNS:    int64(offset),
		Examined:    p.examined,
		CacheHits:   p.cacheHits,
		CacheMisses: p.cacheMisses,
		MemoHits:    p.memoHits,
		MemoMisses:  p.memoMisses,
	})
	if len(p.checkpoints) < profMaxCheckpoints {
		return
	}
	keep := p.checkpoints[:0]
	for i := 1; i < len(p.checkpoints); i += 2 {
		keep = append(keep, p.checkpoints[i])
	}
	p.checkpoints = keep
	p.stride *= 2
}

// Elapsed returns the profiled wall-clock span: the longest run duration
// reported on EvRunFinish, or the span between first and last checkpoint
// when no run finished.
func (p *Profile) Elapsed() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.elapsedLocked()
}

func (p *Profile) elapsedLocked() time.Duration {
	if p.elapsed > 0 {
		return p.elapsed
	}
	if n := len(p.checkpoints); n > 0 {
		return time.Duration(p.checkpoints[n-1].OffsetNS)
	}
	return 0
}

// WriteReport renders the profile as a human-readable text report.
func (p *Profile) WriteReport(w io.Writer) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var b strings.Builder

	label := p.label
	if label == "" {
		label = "(no events)"
	}
	elapsed := p.elapsedLocked()
	outcome := "unsolved"
	switch {
	case p.solved:
		outcome = "solved"
	case p.lastErr != nil:
		outcome = fmt.Sprintf("failed: %v", p.lastErr)
	}
	fmt.Fprintf(&b, "profile: %s — %s, %d states examined", label, outcome, p.examined)
	if elapsed > 0 {
		fmt.Fprintf(&b, " in %s (%.0f states/sec)", elapsed, float64(p.examined)/elapsed.Seconds())
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "expansions: %d (total %s); moves offered: %d\n",
		p.expansions, time.Duration(p.expandNS), p.moves)
	if p.cacheHits+p.cacheMisses > 0 {
		fmt.Fprintf(&b, "heuristic cache: %d hits / %d misses (%.1f%% hit rate)\n",
			p.cacheHits, p.cacheMisses,
			100*float64(p.cacheHits)/float64(p.cacheHits+p.cacheMisses))
	}
	if p.memoHits+p.memoMisses > 0 {
		fmt.Fprintf(&b, "successor memo: %d hits / %d misses (%.1f%% hit rate); operator table samples misses only\n",
			p.memoHits, p.memoMisses,
			100*float64(p.memoHits)/float64(p.memoHits+p.memoMisses))
	}

	if len(p.depthExpand) > 0 {
		depths := make([]int, 0, len(p.depthExpand))
		for d := range p.depthExpand {
			depths = append(depths, d)
		}
		sort.Ints(depths)
		fmt.Fprintf(&b, "%-6s %11s %8s\n", "depth", "expansions", "moves")
		for _, d := range depths {
			fmt.Fprintf(&b, "%-6d %11d %8d\n", d, p.depthExpand[d], p.depthMoves[d])
		}
	}

	if len(p.ops) > 0 {
		kinds := make([]string, 0, len(p.ops))
		for k := range p.ops {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Fprintf(&b, "%-14s %9s %8s %12s %10s\n", "operator", "proposed", "applied", "apply total", "apply max")
		for _, k := range kinds {
			op := p.ops[k]
			fmt.Fprintf(&b, "%-14s %9d %8d %12s %10s\n",
				k, op.Proposed, op.Applied,
				time.Duration(op.ApplyTotalNS), time.Duration(op.ApplyMaxNS))
		}
	}

	if len(p.checkpoints) > 1 {
		fmt.Fprintf(&b, "timeline (%d checkpoints, stride %d states):\n", len(p.checkpoints), p.stride)
		// Render at most 10 evenly spaced rows so long runs stay readable.
		step := (len(p.checkpoints) + 9) / 10
		prev := ProfileCheckpoint{}
		for i := 0; i < len(p.checkpoints); i += step {
			c := p.checkpoints[i]
			dt := time.Duration(c.OffsetNS - prev.OffsetNS)
			rate := 0.0
			if dt > 0 {
				rate = float64(c.Examined-prev.Examined) / dt.Seconds()
			}
			hitRate := 0.0
			if n := c.CacheHits + c.CacheMisses; n > 0 {
				hitRate = 100 * float64(c.CacheHits) / float64(n)
			}
			fmt.Fprintf(&b, "  +%-12s %8d states %10.0f states/sec %6.1f%% cache hits",
				time.Duration(c.OffsetNS), c.Examined, rate, hitRate)
			if n := c.MemoHits + c.MemoMisses; n > 0 {
				fmt.Fprintf(&b, " %6.1f%% memo hits", 100*float64(c.MemoHits)/float64(n))
			}
			b.WriteByte('\n')
			prev = c
		}
	}
	if p.slicesDropped > 0 {
		fmt.Fprintf(&b, "(%d expansion slices beyond the first %d not recorded)\n", p.slicesDropped, profMaxSlices)
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// chromeEvent is one record of the Chrome trace_event format ("JSON array
// format"): ph "M" metadata, "X" complete slices with ts/dur, "C" counters.
// Timestamps are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

func chromeUS(ns int64) float64 { return float64(ns) / 1e3 }

// WriteChromeTrace exports the profile in the Chrome trace_event JSON array
// format, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing: one
// slice per recorded expansion (named by depth, move count in args), counter
// tracks for states examined, states/sec, and cache hit-rate, and a
// run-spanning slice for orientation.
func (p *Profile) WriteChromeTrace(w io.Writer) error {
	p.mu.Lock()
	defer p.mu.Unlock()

	label := p.label
	if label == "" {
		label = "tupelo"
	}
	events := make([]chromeEvent, 0, 3+len(p.slices)+3*len(p.checkpoints))
	events = append(events,
		chromeEvent{Name: "process_name", Ph: "M", PID: 1, TID: 1, Args: map[string]any{"name": "tupelo"}},
		chromeEvent{Name: "thread_name", Ph: "M", PID: 1, TID: 1, Args: map[string]any{"name": "search " + label}},
	)
	if elapsed := p.elapsedLocked(); elapsed > 0 {
		events = append(events, chromeEvent{
			Name: "run " + label, Ph: "X", PID: 1, TID: 1,
			TS: 0, Dur: chromeUS(int64(elapsed)),
			Args: map[string]any{"examined": p.examined, "solved": p.solved},
		})
	}
	for _, s := range p.slices {
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("expand depth=%d", s.depth), Ph: "X", PID: 1, TID: 2,
			TS: chromeUS(s.offsetNS), Dur: chromeUS(s.durNS),
			Args: map[string]any{"depth": s.depth, "moves": s.moves},
		})
	}
	prev := ProfileCheckpoint{}
	for _, c := range p.checkpoints {
		ts := chromeUS(c.OffsetNS)
		events = append(events, chromeEvent{
			Name: "states examined", Ph: "C", PID: 1, TID: 1, TS: ts,
			Args: map[string]any{"states": c.Examined},
		})
		if dt := c.OffsetNS - prev.OffsetNS; dt > 0 {
			events = append(events, chromeEvent{
				Name: "states/sec", Ph: "C", PID: 1, TID: 1, TS: ts,
				Args: map[string]any{"rate": float64(c.Examined-prev.Examined) / (float64(dt) / 1e9)},
			})
		}
		if n := c.CacheHits + c.CacheMisses; n > 0 {
			events = append(events, chromeEvent{
				Name: "cache hit rate", Ph: "C", PID: 1, TID: 1, TS: ts,
				Args: map[string]any{"percent": 100 * float64(c.CacheHits) / float64(n)},
			})
		}
		if n := c.MemoHits + c.MemoMisses; n > 0 {
			events = append(events, chromeEvent{
				Name: "memo hit rate", Ph: "C", PID: 1, TID: 1, TS: ts,
				Args: map[string]any{"percent": 100 * float64(c.MemoHits) / float64(n)},
			})
		}
		prev = c
	}

	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
