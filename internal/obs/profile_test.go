package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketing(t *testing.T) {
	h := &Histogram{}
	h.Observe(0)            // bucket 0 (<= 64ns)
	h.Observe(-time.Second) // clamped to 0, bucket 0
	h.Observe(64 * time.Nanosecond)
	h.Observe(65 * time.Nanosecond) // bucket 1 (<= 128ns)
	h.Observe(time.Millisecond)
	h.Observe(time.Hour) // beyond the last finite bound: overflow
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Total() != time.Hour+time.Millisecond+129*time.Nanosecond {
		t.Fatalf("total = %s", h.Total())
	}
	s := h.snapshotBuckets()
	if s.buckets[0] != 3 || s.buckets[1] != 1 {
		t.Fatalf("low buckets = %d, %d", s.buckets[0], s.buckets[1])
	}
	if s.buckets[histBucketCount-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", s.buckets[histBucketCount-1])
	}
	// Every observation must land in a bucket whose bound brackets it.
	for _, d := range []time.Duration{1, 63, 64, 65, 127, 128, 129, 1 << 20, 1 << 30} {
		i := histIndex(int64(d))
		if i > 0 && int64(d) <= histBound(i-1) {
			t.Fatalf("histIndex(%d) = %d: below bucket's lower bound", d, i)
		}
		if i < histFiniteBuckets && int64(d) > histBound(i) {
			t.Fatalf("histIndex(%d) = %d: above bucket's upper bound", d, i)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	// 100 observations spread uniformly inside the (512ns, 1024ns] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(600 * time.Nanosecond)
	}
	p50 := h.Quantile(0.5)
	if p50 <= 512*time.Nanosecond || p50 > 1024*time.Nanosecond {
		t.Fatalf("p50 = %s, want within the (512ns, 1024ns] bucket", p50)
	}
	// Quantiles are monotone in q.
	if h.Quantile(0.99) < h.Quantile(0.5) || h.Quantile(0.5) < h.Quantile(0.1) {
		t.Fatal("quantiles must be monotone")
	}
	// Overflow observations report the last finite bound, not +Inf.
	o := &Histogram{}
	o.Observe(time.Hour)
	if got := o.Quantile(0.5); got != time.Duration(histBound(histFiniteBuckets-1)) {
		t.Fatalf("overflow quantile = %s", got)
	}
}

func TestHistogramNilAndConcurrent(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second)
	if h.Count() != 0 || h.Total() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram must read zero")
	}
	if s := h.Snapshot(); s.Count != 0 || len(s.Buckets) != 0 {
		t.Fatal("nil histogram snapshot must be empty")
	}

	live := &Histogram{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				live.Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if live.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", live.Count())
	}
}

func TestHistogramSnapshotCumulative(t *testing.T) {
	h := &Histogram{}
	h.Observe(50 * time.Nanosecond)  // bucket 0
	h.Observe(100 * time.Nanosecond) // bucket 1
	h.Observe(100 * time.Nanosecond) // bucket 1
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("snapshot count = %d", s.Count)
	}
	if len(s.Buckets) != 2 {
		t.Fatalf("snapshot buckets = %+v, want 2 non-empty", s.Buckets)
	}
	if s.Buckets[0].UpperNS != 64 || s.Buckets[0].Count != 1 {
		t.Fatalf("bucket 0 = %+v", s.Buckets[0])
	}
	if s.Buckets[1].UpperNS != 128 || s.Buckets[1].Count != 3 {
		t.Fatalf("bucket 1 = %+v (counts must be cumulative)", s.Buckets[1])
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("search.expand.seconds")
	h.Observe(time.Millisecond)
	if r.Histogram("search.expand.seconds") != h {
		t.Fatal("histogram lookup not stable")
	}
	var nilReg *Registry
	if nilReg.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil histograms")
	}
	s := r.Snapshot()
	hs, ok := s.Histograms["search.expand.seconds"]
	if !ok || hs.Count != 1 {
		t.Fatalf("snapshot histograms = %+v", s.Histograms)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("JSON exposition: %v", err)
	}
	if round.Histograms["search.expand.seconds"].Count != 1 {
		t.Fatal("histogram lost in JSON round trip")
	}
}

func TestWritePrometheusHistogramAndTimerMax(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(Name("search.expand.seconds", "algo", "RBFS"))
	h.Observe(100 * time.Nanosecond) // bucket le=1.28e-07
	h.Observe(100 * time.Nanosecond)
	h.Observe(time.Hour) // overflow: only in +Inf
	r.Timer("portfolio.race").Observe(1500 * time.Millisecond)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE tupelo_search_expand_seconds histogram",
		`tupelo_search_expand_seconds_bucket{algo="RBFS",le="1.28e-07"} 2`,
		`tupelo_search_expand_seconds_bucket{algo="RBFS",le="+Inf"} 3`,
		`tupelo_search_expand_seconds_count{algo="RBFS"} 3`,
		`tupelo_search_expand_seconds_sum{algo="RBFS"} 3600.0000002`,
		"tupelo_portfolio_race_max_seconds 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestWriterTracerGoldenTranscript pins the full transcript for every
// EventKind: the rendered lines are a compatibility surface (tests and
// scripts grep them), and the high-frequency kinds must stay silent.
func TestWriterTracerGoldenTranscript(t *testing.T) {
	var buf bytes.Buffer
	tr := NewWriterTracer(&buf)
	for _, e := range []Event{
		{Kind: EvRunStart, Label: "RBFS"},
		{Kind: EvGoalTest, Seq: 1},
		{Kind: EvExpand, N: 2, Depth: 0},
		{Kind: EvMove, Label: "rename_att[Emp,nm->Name]"},
		{Kind: EvMove, Label: "drop[Emp,dept]"},
		{Kind: EvOpApply, Label: "rename_att[Emp,nm->Name]", Goal: true, Elapsed: time.Microsecond}, // silent
		{Kind: EvCacheMiss, Label: "cosine"}, // silent
		{Kind: EvCacheHit, Label: "cosine"},  // silent
		{Kind: EvMemoMiss},                   // silent
		{Kind: EvMemoHit},                    // silent
		{Kind: EvGoalTest, Seq: 2, Goal: true},
		{Kind: EvExpand, Err: errors.New("bad state")},
		{Kind: EvRunFinish, Label: "RBFS", Goal: true, N: 2, Elapsed: 5 * time.Millisecond},
		{Kind: EvRunFinish, Label: "IDA", N: 7, Err: errors.New("limit")},
		{Kind: EvMemberStart, Label: "RBFS/cosine"},
		{Kind: EvMemberWin, Label: "RBFS/cosine", N: 2, Elapsed: 5 * time.Millisecond},
		{Kind: EvMemberLose, Label: "IDA/h1", Err: errors.New("boom")},
		{Kind: EvMemberCancel, Label: "IDA/h2", Elapsed: 6 * time.Millisecond},
	} {
		tr.Event(e)
	}
	const want = `run RBFS: start
examine 1
expand: 2 moves
  move rename_att[Emp,nm->Name]
  move drop[Emp,dept]
examine 2: GOAL
expand: error: bad state
run RBFS: solved after 2 states (5ms)
run IDA: failed after 7 states: limit
member RBFS/cosine: start
member RBFS/cosine: WIN after 2 states (5ms)
member IDA/h1: lost: boom
member IDA/h2: cancelled (6ms)
`
	if got := buf.String(); got != want {
		t.Fatalf("transcript drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestJSONTracerStream(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONTracer(&buf)
	tr.Event(Event{Kind: EvRunStart, Label: "RBFS"})
	tr.Event(Event{Kind: EvGoalTest, Seq: 3, Depth: 2, Goal: true})
	tr.Event(Event{Kind: EvOpApply, Label: "drop[Emp,dept]", Goal: true, Elapsed: 250 * time.Nanosecond})
	tr.Event(Event{Kind: EvRunFinish, Label: "RBFS", Err: errors.New("limit"), N: 9})

	var lines []map[string]any
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 4 {
		t.Fatalf("got %d JSON lines, want 4", len(lines))
	}
	if lines[0]["kind"] != "run-start" || lines[0]["label"] != "RBFS" {
		t.Fatalf("line 0 = %v", lines[0])
	}
	if lines[1]["kind"] != "goal-test" || lines[1]["seq"] != float64(3) ||
		lines[1]["depth"] != float64(2) || lines[1]["goal"] != true {
		t.Fatalf("line 1 = %v", lines[1])
	}
	if lines[2]["elapsed_ns"] != float64(250) {
		t.Fatalf("line 2 = %v", lines[2])
	}
	if lines[3]["err"] != "limit" {
		t.Fatalf("line 3 = %v", lines[3])
	}
	if _, present := lines[0]["seq"]; present {
		t.Fatal("zero fields must be omitted")
	}
}

func TestSampleTracer(t *testing.T) {
	c := NewCollector()
	s := Sample(c, 3)
	for i := 0; i < 9; i++ {
		s.Event(Event{Kind: EvGoalTest, Seq: i})
	}
	if got := c.Count(EvGoalTest); got != 3 {
		t.Fatalf("forwarded %d of 9 goal tests at n=3, want 3", got)
	}
	// Structural events always pass.
	s.Event(Event{Kind: EvRunStart})
	s.Event(Event{Kind: EvRunFinish})
	s.Event(Event{Kind: EvMemberWin})
	if got := c.Count(EvRunStart, EvRunFinish, EvMemberWin); got != 3 {
		t.Fatalf("structural events dropped: %d of 3", got)
	}
	// Kinds are counted independently: the first event of a fresh kind passes.
	s.Event(Event{Kind: EvExpand})
	if c.Count(EvExpand) != 1 {
		t.Fatal("first event of a kind must pass")
	}
	if Sample(nil, 5) != Nop || Sample(Nop, 5) != Nop {
		t.Fatal("sampling nothing must be Nop")
	}
	if Sample(c, 1) != Tracer(c) || Sample(c, 0) != Tracer(c) {
		t.Fatal("n <= 1 must return the tracer unchanged")
	}
}

// profileClock is a deterministic time source for Profile tests.
type profileClock struct {
	mu sync.Mutex
	at time.Time
}

func (c *profileClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.at = c.at.Add(time.Millisecond)
	return c.at
}

func newTestProfile() *Profile {
	p := NewProfile()
	p.now = (&profileClock{at: time.Unix(1000, 0)}).now
	return p
}

func TestProfileAggregation(t *testing.T) {
	p := newTestProfile()
	p.Event(Event{Kind: EvRunStart, Label: "RBFS"})
	for i := 1; i <= 20; i++ {
		p.Event(Event{Kind: EvGoalTest, Seq: i, Goal: i == 20})
		p.Event(Event{Kind: EvExpand, Seq: i, Depth: i % 3, N: 4, Elapsed: 200 * time.Microsecond})
		p.Event(Event{Kind: EvOpApply, Label: "rename_att[Emp,nm->Name]", Goal: true, Elapsed: 40 * time.Microsecond})
		p.Event(Event{Kind: EvOpApply, Label: "drop[Emp,dept]", Goal: false, Elapsed: 10 * time.Microsecond})
		p.Event(Event{Kind: EvCacheMiss, Label: "cosine"})
		p.Event(Event{Kind: EvCacheHit, Label: "cosine"})
	}
	p.Event(Event{Kind: EvRunFinish, Label: "RBFS", Goal: true, N: 20, Elapsed: 123 * time.Millisecond})

	if p.Elapsed() != 123*time.Millisecond {
		t.Fatalf("Elapsed = %s", p.Elapsed())
	}
	var buf bytes.Buffer
	if err := p.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"profile: RBFS — solved, 20 states examined",
		"expansions: 20 (total 4ms); moves offered: 0",
		"heuristic cache: 20 hits / 20 misses (50.0% hit rate)",
		"rename_att", "drop",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// Per-operator aggregation keys by family and keeps proposed vs applied.
	p.mu.Lock()
	ra, dr := p.ops["rename_att"], p.ops["drop"]
	p.mu.Unlock()
	if ra == nil || ra.Proposed != 20 || ra.Applied != 20 || ra.ApplyMaxNS != int64(40*time.Microsecond) {
		t.Fatalf("rename_att profile = %+v", ra)
	}
	if dr == nil || dr.Proposed != 20 || dr.Applied != 0 {
		t.Fatalf("drop profile = %+v", dr)
	}
}

func TestProfileLabelPortfolio(t *testing.T) {
	p := newTestProfile()
	p.Event(Event{Kind: EvRunStart, Label: "RBFS"})
	p.Event(Event{Kind: EvRunStart, Label: "IDA"})
	var buf bytes.Buffer
	if err := p.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "profile: portfolio") {
		t.Fatalf("mixed-algorithm profile should label itself portfolio:\n%s", buf.String())
	}
}

func TestProfileCheckpointCompaction(t *testing.T) {
	p := newTestProfile()
	for i := 1; i <= 3*profMaxCheckpoints; i++ {
		p.Event(Event{Kind: EvGoalTest, Seq: i})
	}
	p.mu.Lock()
	n, stride := len(p.checkpoints), p.stride
	p.mu.Unlock()
	if n >= profMaxCheckpoints {
		t.Fatalf("checkpoints = %d, must stay under the %d cap", n, profMaxCheckpoints)
	}
	if stride < 2 {
		t.Fatalf("stride = %d, must have doubled", stride)
	}
	// Offsets stay strictly increasing after compaction.
	p.mu.Lock()
	for i := 1; i < len(p.checkpoints); i++ {
		if p.checkpoints[i].OffsetNS <= p.checkpoints[i-1].OffsetNS {
			p.mu.Unlock()
			t.Fatalf("checkpoint offsets not increasing at %d", i)
		}
	}
	p.mu.Unlock()
}

// TestProfileChromeTraceValid decodes the export as a strict trace_event
// JSON array: every record has a name, a phase, a pid, and non-negative
// timestamps — the contract chrome://tracing and Perfetto load.
func TestProfileChromeTraceValid(t *testing.T) {
	p := newTestProfile()
	p.Event(Event{Kind: EvRunStart, Label: "RBFS"})
	for i := 1; i <= 50; i++ {
		p.Event(Event{Kind: EvGoalTest, Seq: i})
		p.Event(Event{Kind: EvExpand, Seq: i, Depth: i % 4, N: 3, Elapsed: 100 * time.Microsecond})
		p.Event(Event{Kind: EvCacheMiss})
	}
	p.Event(Event{Kind: EvRunFinish, Label: "RBFS", Goal: true, N: 50, Elapsed: 300 * time.Millisecond})

	var buf bytes.Buffer
	if err := p.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&events); err != nil {
		t.Fatalf("not a valid trace_event JSON array: %v\n%s", err, buf.String())
	}
	if len(events) == 0 {
		t.Fatal("empty trace")
	}
	var slices, counters, meta int
	for i, e := range events {
		if e.Name == "" || e.PID == 0 {
			t.Fatalf("event %d missing name/pid: %+v", i, e)
		}
		switch e.Ph {
		case "M":
			meta++
		case "X":
			slices++
			if e.TS < 0 || e.Dur < 0 {
				t.Fatalf("slice %d has negative ts/dur: %+v", i, e)
			}
		case "C":
			counters++
			if len(e.Args) == 0 {
				t.Fatalf("counter %d has no args: %+v", i, e)
			}
		default:
			t.Fatalf("event %d has unknown phase %q", i, e.Ph)
		}
	}
	if meta < 2 || slices < 50 || counters == 0 {
		t.Fatalf("trace shape: %d meta, %d slices, %d counters", meta, slices, counters)
	}
}

func TestProfileEmptyReport(t *testing.T) {
	p := NewProfile()
	var buf bytes.Buffer
	if err := p.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(no events)") {
		t.Fatalf("empty report: %s", buf.String())
	}
	buf.Reset()
	if err := p.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty chrome trace must still be a JSON array: %v", err)
	}
}

// TestProfileConcurrent is meaningful under -race: portfolio members share
// one Profile.
func TestProfileConcurrent(t *testing.T) {
	p := NewProfile()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 1; j <= 500; j++ {
				p.Event(Event{Kind: EvGoalTest, Seq: j})
				p.Event(Event{Kind: EvExpand, Depth: id, N: 2, Elapsed: time.Microsecond})
				p.Event(Event{Kind: EvOpApply, Label: "drop[R,a]", Goal: true, Elapsed: time.Microsecond})
			}
		}(i)
	}
	wg.Wait()
	p.mu.Lock()
	examined := p.examined
	p.mu.Unlock()
	if examined != 2000 {
		t.Fatalf("examined = %d, want 2000", examined)
	}
}
