package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
)

func TestFlightRingRecordAndRecords(t *testing.T) {
	r := NewFlightRecorder(8)
	g := r.Ring("main")
	for i := 0; i < 5; i++ {
		g.Record(FKExamine, uint32(i+1), int32(i), 0)
	}
	if g.Len() != 5 {
		t.Fatalf("Len = %d, want 5", g.Len())
	}
	recs := r.Records("main")
	if len(recs) != 5 {
		t.Fatalf("Records = %d, want 5", len(recs))
	}
	for i, e := range recs {
		if e.Kind != FKExamine || e.Seq != uint32(i+1) || e.A != int32(i) {
			t.Fatalf("record %d = %+v", i, e)
		}
	}
}

func TestFlightRingWrapKeepsNewest(t *testing.T) {
	r := NewFlightRecorder(8)
	g := r.Ring("main")
	for i := 1; i <= 20; i++ {
		g.Record(FKExamine, uint32(i), 0, 0)
	}
	recs := r.Records("main")
	if len(recs) != 8 {
		t.Fatalf("Records = %d, want 8 (ring size)", len(recs))
	}
	// Oldest surviving record is 13, newest is 20.
	for i, e := range recs {
		if want := uint32(13 + i); e.Seq != want {
			t.Fatalf("record %d seq = %d, want %d", i, e.Seq, want)
		}
	}
	if g.Len() != 8 {
		t.Fatalf("Len = %d, want 8", g.Len())
	}
}

func TestFlightNilSafety(t *testing.T) {
	var r *FlightRecorder
	g := r.Ring("x")
	if g != nil {
		t.Fatalf("nil recorder returned non-nil ring")
	}
	g.Record(FKExamine, 1, 2, 3) // must not panic
	if g.Len() != 0 {
		t.Fatalf("nil ring Len = %d", g.Len())
	}
	r.RequestDump("panic")
	r.FlushDump()
	if err := r.Dump(io.Discard); err != nil {
		t.Fatalf("nil Dump: %v", err)
	}
	if _, ok := r.DumpRequested(); ok {
		t.Fatalf("nil recorder reports pending dump")
	}
}

func TestFlightDumpFormat(t *testing.T) {
	r := NewFlightRecorder(16)
	g := r.Ring("shard-0")
	g.Record(FKRunStart, 0, 0, 0)
	g.Record(FKExamine, 1, 2, 1)
	g.Record(FKAbort, 0, 3, 0)
	r.RequestDump("deadline")

	var buf bytes.Buffer
	if err := r.Dump(&buf); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatalf("empty dump")
	}
	var hdr map[string]any
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatalf("header: %v", err)
	}
	if hdr["schema"] != FlightSchema {
		t.Fatalf("schema = %v, want %s", hdr["schema"], FlightSchema)
	}
	if hdr["cause"] != "deadline" {
		t.Fatalf("cause = %v, want deadline", hdr["cause"])
	}
	if hdr["rings"] != float64(1) || hdr["ring_size"] != float64(16) {
		t.Fatalf("rings/ring_size = %v/%v", hdr["rings"], hdr["ring_size"])
	}
	var kinds []string
	for sc.Scan() {
		var rec flightRecordJSON
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("record: %v", err)
		}
		if rec.Ring != "shard-0" {
			t.Fatalf("ring = %q", rec.Ring)
		}
		kinds = append(kinds, rec.Kind)
	}
	want := []string{"run-start", "examine", "abort"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
}

func TestFlightRequestDumpFirstCauseWins(t *testing.T) {
	r := NewFlightRecorder(8)
	r.RequestDump("memory")
	r.RequestDump("deadline")
	cause, ok := r.DumpRequested()
	if !ok || cause != "memory" {
		t.Fatalf("DumpRequested = %q/%v, want memory/true", cause, ok)
	}
}

func TestFlightFlushDumpOnceAndOnlyWhenRequested(t *testing.T) {
	r := NewFlightRecorder(8)
	var buf bytes.Buffer
	r.SetAutoDump(&buf)
	g := r.Ring("main")
	g.Record(FKExamine, 1, 0, 0)

	r.FlushDump() // not requested yet
	if buf.Len() != 0 {
		t.Fatalf("FlushDump wrote without a request")
	}
	r.RequestDump("panic")
	r.FlushDump()
	first := buf.Len()
	if first == 0 {
		t.Fatalf("FlushDump wrote nothing after request")
	}
	r.FlushDump() // idempotent
	if buf.Len() != first {
		t.Fatalf("second FlushDump wrote again")
	}
}

// TestFlightConcurrentRings exercises the intended concurrency model under
// -race: many goroutines each writing their own ring, dump only after join.
func TestFlightConcurrentRings(t *testing.T) {
	r := NewFlightRecorder(256)
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			g := r.Ring("w")
			for i := 0; i < 10_000; i++ {
				g.Record(FKExamine, uint32(i), int32(id), 0)
			}
			if id == 0 {
				r.RequestDump("memory")
			}
		}(w)
	}
	wg.Wait()
	var buf bytes.Buffer
	if err := r.Dump(&buf); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	if got := len(r.Records("w")); got != workers*256 {
		t.Fatalf("surviving records = %d, want %d", got, workers*256)
	}
}

func TestFlightRecordZeroAllocs(t *testing.T) {
	r := NewFlightRecorder(1024)
	g := r.Ring("main")
	allocs := testing.AllocsPerRun(10_000, func() {
		g.Record(FKExamine, 7, 3, 1)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %v per op, want 0", allocs)
	}
}

// BenchmarkFlightRecord is the steady-state cost of one enabled record with
// no dump reader attached. CI pins it at ≤ 25 ns/op and 0 allocs/op.
func BenchmarkFlightRecord(b *testing.B) {
	r := NewFlightRecorder(4096)
	g := r.Ring("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Record(FKExamine, uint32(i), int32(i&7), 0)
	}
}

// BenchmarkFlightRecordDisabled is the disabled path: a nil ring, so Record
// is a single nil-check.
func BenchmarkFlightRecordDisabled(b *testing.B) {
	var g *FlightRing
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Record(FKExamine, uint32(i), 0, 0)
	}
}
