package critio

import "testing"

// FuzzRead checks that the critical-instance reader never panics and that
// every accepted instance survives a write → read round trip.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"relation R\n  A B\n  1 2\n",
		"relation Prices\n  Carrier Route\n  AirEast ATL29\n\nmap sum(Cost, Fee) -> Total\n",
		"map concat(First, Last) -> Passenger on Pass\n",
		"# only comments\n\n",
		"relation R\n  \"quoted attr\" B\n  \"a value\" \"\"\n",
		"relation R\n  A\n  \"esc\\\"aped\"\n",
		"relation\n",
		"stray data\n",
		"relation R\nrelation S\n",
		"map bad -> T\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		inst, err := ReadString(src)
		if err != nil {
			return
		}
		back, err := ReadString(WriteString(inst))
		if err != nil {
			t.Fatalf("rewrite of accepted instance failed: %v", err)
		}
		if !back.DB.Equal(inst.DB) {
			t.Fatal("write/read round trip changed the database")
		}
		if len(back.Corrs) != len(inst.Corrs) {
			t.Fatal("write/read round trip changed the correspondences")
		}
	})
}
