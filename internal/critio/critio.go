// Package critio reads and writes critical instances — the user-supplied
// example databases that drive TUPELO's mapping discovery (§2.2 of "Data
// Mapping as Search") — together with λ correspondence annotations (§4).
//
// The original system elicited critical instances through a GUI (the
// paper's Fig. 3); this package substitutes a plain-text format that feeds
// the identical discovery code path:
//
//	# Flights database B
//	relation Prices
//	  Carrier  Route  Cost  AgentFee
//	  AirEast  ATL29  100   15
//	  JetWest  ATL29  200   16
//
//	map sum(Cost, AgentFee) -> TotalCost
//	map concat(First, Last) -> Passenger on Pass
//
// A relation block is the relation name followed by a header line of
// attribute names and zero or more tuple lines; blocks end at a blank line
// or the next directive. Fields are whitespace-separated; fields containing
// whitespace (or empty fields) are double-quoted with backslash escapes.
// Lines starting with '#' are comments.
package critio

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"tupelo/internal/lambda"
	"tupelo/internal/relation"
)

// Instance is a parsed critical instance: the example database plus any
// complex-function correspondences articulated on it.
type Instance struct {
	DB    *relation.Database
	Corrs []lambda.Correspondence
}

// Read parses a critical instance from r.
func Read(r io.Reader) (*Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var (
		rels    []*relation.Relation
		corrs   []lambda.Correspondence
		cur     *relation.Relation
		curName string
		header  []string
		lineNo  int
	)
	flush := func() error {
		if curName == "" {
			return nil
		}
		if cur == nil {
			return fmt.Errorf("critio: relation %q has no attribute header", curName)
		}
		rels = append(rels, cur)
		cur, curName, header = nil, "", nil
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "relation "):
			if err := flush(); err != nil {
				return nil, err
			}
			curName = strings.TrimSpace(strings.TrimPrefix(line, "relation "))
			if curName == "" {
				return nil, fmt.Errorf("critio: line %d: relation with no name", lineNo)
			}
		case strings.HasPrefix(line, "map "):
			if err := flush(); err != nil {
				return nil, err
			}
			c, err := parseMap(strings.TrimPrefix(line, "map "))
			if err != nil {
				return nil, fmt.Errorf("critio: line %d: %v", lineNo, err)
			}
			corrs = append(corrs, c)
		default:
			if curName == "" {
				return nil, fmt.Errorf("critio: line %d: data outside a relation block: %q", lineNo, line)
			}
			fields, err := splitFields(line)
			if err != nil {
				return nil, fmt.Errorf("critio: line %d: %v", lineNo, err)
			}
			if header == nil {
				header = fields
				cur, err = relation.New(curName, header)
				if err != nil {
					return nil, fmt.Errorf("critio: line %d: %v", lineNo, err)
				}
				continue
			}
			cur, err = cur.Insert(relation.Tuple(fields))
			if err != nil {
				return nil, fmt.Errorf("critio: line %d: %v", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("critio: %v", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	db, err := relation.NewDatabase(rels...)
	if err != nil {
		return nil, fmt.Errorf("critio: %v", err)
	}
	return &Instance{DB: db, Corrs: corrs}, nil
}

// ReadString parses a critical instance from a string.
func ReadString(s string) (*Instance, error) {
	return Read(strings.NewReader(s))
}

// parseMap parses "func(in1, in2) -> out [on Rel]".
func parseMap(s string) (lambda.Correspondence, error) {
	var c lambda.Correspondence
	open := strings.IndexByte(s, '(')
	close := strings.IndexByte(s, ')')
	if open <= 0 || close < open {
		return c, fmt.Errorf("malformed map directive %q", s)
	}
	c.Func = strings.TrimSpace(s[:open])
	for _, in := range strings.Split(s[open+1:close], ",") {
		in = strings.TrimSpace(in)
		if in == "" {
			return c, fmt.Errorf("empty input attribute in %q", s)
		}
		c.In = append(c.In, in)
	}
	rest := strings.TrimSpace(s[close+1:])
	if !strings.HasPrefix(rest, "->") {
		return c, fmt.Errorf("missing -> in %q", s)
	}
	rest = strings.TrimSpace(strings.TrimPrefix(rest, "->"))
	if strings.HasSuffix(rest, " on") {
		return c, fmt.Errorf("empty relation in %q", s)
	}
	if i := strings.Index(rest, " on "); i >= 0 {
		c.Out = strings.TrimSpace(rest[:i])
		c.Rel = strings.TrimSpace(rest[i+4:])
		if c.Rel == "" {
			return c, fmt.Errorf("empty relation in %q", s)
		}
	} else {
		c.Out = rest
	}
	if c.Func == "" || c.Out == "" {
		return c, fmt.Errorf("malformed map directive %q", s)
	}
	return c, nil
}

// splitFields splits a line into whitespace-separated fields, honouring
// double quotes with backslash escapes.
func splitFields(line string) ([]string, error) {
	var out []string
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		if line[i] == '"' {
			i++
			var b strings.Builder
			closed := false
			for i < len(line) {
				switch line[i] {
				case '\\':
					if i+1 >= len(line) {
						return nil, fmt.Errorf("dangling escape in %q", line)
					}
					b.WriteByte(line[i+1])
					i += 2
				case '"':
					i++
					closed = true
				default:
					b.WriteByte(line[i])
					i++
				}
				if closed {
					break
				}
			}
			if !closed {
				return nil, fmt.Errorf("unterminated quote in %q", line)
			}
			out = append(out, b.String())
			continue
		}
		start := i
		for i < len(line) && line[i] != ' ' && line[i] != '\t' {
			i++
		}
		out = append(out, line[start:i])
	}
	return out, nil
}

// Write renders an instance in the format Read understands. The format is
// line-based, so names and values containing newlines are unrepresentable;
// Write fails loudly on them rather than emitting a file Read would
// misparse.
func Write(w io.Writer, inst *Instance) error {
	bw := bufio.NewWriter(w)
	for i, r := range inst.DB.Relations() {
		if i > 0 {
			fmt.Fprintln(bw)
		}
		if err := checkWritable(r.Name()); err != nil {
			return err
		}
		fmt.Fprintf(bw, "relation %s\n", r.Name())
		if err := checkFields(r.Attrs()); err != nil {
			return err
		}
		fmt.Fprintf(bw, "  %s\n", joinFields(r.Attrs()))
		for j := 0; j < r.Len(); j++ {
			if err := checkFields(r.Row(j)); err != nil {
				return err
			}
			fmt.Fprintf(bw, "  %s\n", joinFields(r.Row(j)))
		}
	}
	if len(inst.Corrs) > 0 {
		fmt.Fprintln(bw)
		for _, c := range inst.Corrs {
			fmt.Fprintf(bw, "map %s(%s) -> %s", c.Func, strings.Join(c.In, ", "), c.Out)
			if c.Rel != "" {
				fmt.Fprintf(bw, " on %s", c.Rel)
			}
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}

// WriteString renders an instance to a string. It panics on instances the
// format cannot represent (newline-containing tokens); any instance that
// came from Read is always representable.
func WriteString(inst *Instance) string {
	var b strings.Builder
	if err := Write(&b, inst); err != nil {
		panic(err)
	}
	return b.String()
}

// checkWritable rejects relation names the line-based format cannot carry:
// they are written bare, so a newline would split the line, and
// leading/trailing whitespace would be trimmed away on the next Read.
func checkWritable(s string) error {
	if strings.ContainsRune(s, '\n') || strings.TrimSpace(s) != s {
		return fmt.Errorf("critio: relation name %q cannot be represented in the line-based format", s)
	}
	return nil
}

// checkFields rejects field values the format cannot carry. Fields are
// quoted on demand, which makes carriage returns representable; a newline
// still terminates the physical line and cannot be escaped.
func checkFields(fields []string) error {
	for _, f := range fields {
		if strings.ContainsRune(f, '\n') {
			return fmt.Errorf("critio: value %q contains a newline, which the format cannot represent", f)
		}
	}
	return nil
}

// joinFields quotes fields that need it.
func joinFields(fields []string) string {
	parts := make([]string, len(fields))
	for i, f := range fields {
		parts[i] = quoteField(f)
	}
	return strings.Join(parts, "  ")
}

func quoteField(f string) string {
	if f == "" || strings.ContainsAny(f, " \t\r\"\\#") {
		f = strings.ReplaceAll(f, `\`, `\\`)
		f = strings.ReplaceAll(f, `"`, `\"`)
		return `"` + f + `"`
	}
	return f
}
