package critio

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"tupelo/internal/lambda"
	"tupelo/internal/relation"
)

const flightsBText = `
# Flights database B (paper Fig. 1)
relation Prices
  Carrier  Route  Cost  AgentFee
  AirEast  ATL29  100   15
  JetWest  ATL29  200   16
  AirEast  ORD17  110   15
  JetWest  ORD17  220   16
`

func TestReadRelationBlock(t *testing.T) {
	inst, err := ReadString(flightsBText)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := inst.DB.Relation("Prices")
	if !ok {
		t.Fatal("Prices not parsed")
	}
	if r.Arity() != 4 || r.Len() != 4 {
		t.Fatalf("Prices is %d×%d, want 4×4", r.Len(), r.Arity())
	}
	v, _ := r.Value(0, "Carrier")
	if v != "AirEast" {
		t.Fatalf("first Carrier = %q", v)
	}
	if len(inst.Corrs) != 0 {
		t.Fatalf("unexpected correspondences: %v", inst.Corrs)
	}
}

func TestReadMultipleRelationsAndMaps(t *testing.T) {
	text := `
relation AirEast
  Route BaseCost
  ATL29 100

relation JetWest
  Route BaseCost
  ATL29 200

map sum(Cost, AgentFee) -> TotalCost
map concat(First, Last) -> Passenger on Pass
`
	inst, err := ReadString(text)
	if err != nil {
		t.Fatal(err)
	}
	if inst.DB.Len() != 2 {
		t.Fatalf("parsed %d relations, want 2", inst.DB.Len())
	}
	want := []lambda.Correspondence{
		{Func: "sum", In: []string{"Cost", "AgentFee"}, Out: "TotalCost"},
		{Func: "concat", In: []string{"First", "Last"}, Out: "Passenger", Rel: "Pass"},
	}
	if !reflect.DeepEqual(inst.Corrs, want) {
		t.Fatalf("correspondences = %+v, want %+v", inst.Corrs, want)
	}
}

func TestReadQuotedFields(t *testing.T) {
	text := `
relation R
  "Full Name"  City
  "John Smith" "New York"
  "Jane \"JJ\" Doe"  ""
`
	inst, err := ReadString(text)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := inst.DB.Relation("R")
	if !r.HasAttr("Full Name") {
		t.Fatalf("quoted attribute lost: %v", r.Attrs())
	}
	vals, _ := r.ValuesOf("Full Name")
	found := false
	for _, v := range vals {
		if v == `Jane "JJ" Doe` {
			found = true
		}
	}
	if !found {
		t.Fatalf("escaped quote lost: %v", vals)
	}
	cities, _ := r.ValuesOf("City")
	hasEmpty := false
	for _, v := range cities {
		if v == "" {
			hasEmpty = true
		}
	}
	if !hasEmpty {
		t.Fatalf("empty quoted field lost: %v", cities)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"data outside block", "AirEast ATL29"},
		{"relation without name", "relation "},
		{"relation without header", "relation R\nrelation S\n  A\n  x"},
		{"arity mismatch", "relation R\n  A B\n  x"},
		{"duplicate relation", "relation R\n  A\n  x\n\nrelation R\n  B\n  y"},
		{"unterminated quote", "relation R\n  \"A\n"},
		{"dangling escape", `relation R` + "\n" + `  "A\`},
		{"bad map no parens", "map sum -> T"},
		{"bad map empty input", "map sum(, B) -> T"},
		{"bad map no arrow", "map sum(A, B) T"},
		{"bad map empty out", "map sum(A) -> "},
		{"bad map empty rel", "map sum(A) -> T on "},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadString(tc.text); err == nil {
				t.Fatalf("ReadString(%q) should fail", tc.text)
			}
		})
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	db := relation.MustDatabase(
		relation.MustNew("Prices", []string{"Carrier", "Route"},
			relation.Tuple{"AirEast", "ATL29"},
			relation.Tuple{"Jet West", ""},
		),
		relation.MustNew("Other", []string{"A"}, relation.Tuple{`say "hi"`}),
	)
	inst := &Instance{
		DB: db,
		Corrs: []lambda.Correspondence{
			{Func: "sum", In: []string{"Cost", "AgentFee"}, Out: "TotalCost"},
			{Func: "concat", In: []string{"First", "Last"}, Out: "Passenger", Rel: "Pass"},
		},
	}
	text := WriteString(inst)
	back, err := ReadString(text)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if !back.DB.Equal(db) {
		t.Fatalf("database round trip:\n%s\nvs\n%s", back.DB, db)
	}
	if !reflect.DeepEqual(back.Corrs, inst.Corrs) {
		t.Fatalf("correspondence round trip: %+v", back.Corrs)
	}
}

func TestWriteStableOrder(t *testing.T) {
	db := relation.MustDatabase(
		relation.MustNew("B", []string{"X"}),
		relation.MustNew("A", []string{"Y"}),
	)
	text := WriteString(&Instance{DB: db})
	if strings.Index(text, "relation A") > strings.Index(text, "relation B") {
		t.Fatalf("relations not in sorted order:\n%s", text)
	}
}

func randField(rng *rand.Rand) string {
	chars := []rune{'a', 'B', '3', ' ', '"', '\\', '#', '\t'}
	n := 1 + rng.Intn(6)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteRune(chars[rng.Intn(len(chars))])
	}
	return b.String()
}

// Round trip must hold for adversarial field contents (spaces, quotes,
// backslashes, hash marks).
func TestPropertyRoundTripAdversarialValues(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := relation.MustNew("R", []string{"A", "B"})
		for i := 0; i < 1+rng.Intn(4); i++ {
			var err error
			r, err = r.Insert(relation.Tuple{randField(rng), randField(rng)})
			if err != nil {
				return false
			}
		}
		db := relation.MustDatabase(r)
		back, err := ReadString(WriteString(&Instance{DB: db}))
		if err != nil {
			return false
		}
		return back.DB.Equal(db)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
