package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"tupelo/internal/heuristic"
	"tupelo/internal/obs"
	"tupelo/internal/relation"
	"tupelo/internal/search"
)

// BuildReport assembles the tupelo-report/v1 run report for one discovery:
// the outcome and effort of the run, the effective branching factor, the
// heuristic-quality profile of every heuristic kind along the found solution
// path, the shard-balance section for parallel runs (read back from the
// run's metrics registry), and — when a ReportBuilder traced the run — the
// span tree, inbox-depth timeline, and cache/memo hit rates.
//
// res and runErr are the discovery outcome (either may be nil/non-nil as
// returned by DiscoverContext or DiscoverPortfolio); opts must be the
// options the run used. For the per-shard counters of the report to sum
// exactly to the run aggregates, opts.Metrics must be a registry private to
// this run — a shared registry accumulates across runs and the shard section
// will say so honestly (ValidateRunReport rejects it).
func BuildReport(res *Result, runErr error, source, target *relation.Database, opts Options, rb *obs.ReportBuilder) (*obs.RunReport, error) {
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	r := &obs.RunReport{
		Schema:      obs.ReportSchema,
		GeneratedAt: time.Now().UTC(),
		Algorithm:   opts.Algorithm.String(),
		Heuristic:   opts.Heuristic.String(),
		K:           opts.K,
		Workers:     opts.Workers,
	}
	switch {
	case res != nil:
		r.Solved = !res.Partial
		r.Partial = res.Partial
		stampStats(r, res.Stats)
		if res.Partial && res.AbortErr != nil {
			r.AbortCause = abortCause(res.AbortErr)
		}
	case runErr != nil:
		r.Error = runErr.Error()
		r.AbortCause = abortCause(runErr)
		var serr *search.Error
		if errors.As(runErr, &serr) {
			stampStats(r, serr.Stats)
		}
	}
	if r.Solved && r.Depth > 0 {
		r.EBF = obs.EffectiveBranchingFactor(r.Examined, r.Depth)
	}
	if res != nil && !res.Partial && source != nil && target != nil {
		if quality, err := heuristicProfile(res, source, target, opts, nil); err == nil {
			r.HeuristicQuality = quality
		}
	}
	if rb != nil {
		root, timeline, caches, memo := rb.Skeleton()
		r.Span = root
		r.Caches = caches
		r.Memo = memo
		if opts.ParallelSearch {
			r.Shards = shardReport(opts, timeline)
			attachShardSpans(root, r.Shards)
		}
	} else if opts.ParallelSearch {
		r.Shards = shardReport(opts, nil)
	}
	return r, nil
}

// stampStats copies search statistics into the report.
func stampStats(r *obs.RunReport, st search.Stats) {
	r.Examined = st.Examined
	r.Generated = st.Generated
	r.MaxFrontier = st.MaxFrontier
	r.Iterations = st.Iterations
	r.Depth = st.Depth
}

// abortCause extracts the stable cause vocabulary from a search error.
func abortCause(err error) string {
	var serr *search.Error
	if errors.As(err, &serr) {
		return serr.Cause()
	}
	return "error"
}

// HeuristicProfile replays the solution path of a solved result and profiles
// heuristic kinds against the true remaining cost at each path state. With no
// explicit kinds it profiles every paper heuristic (plus the configured one
// when that is an extension); with kinds it profiles exactly those, in order.
// opts must be the options the run used — the replay needs its λ registry and
// the profile its scaling constants.
func HeuristicProfile(res *Result, source, target *relation.Database, opts Options, kinds ...heuristic.Kind) ([]obs.HeuristicQuality, error) {
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	if res == nil || res.Partial {
		return nil, fmt.Errorf("core: heuristic profile needs a solved result")
	}
	return heuristicProfile(res, source, target, opts, kinds)
}

// heuristicProfile replays the found solution path — the discovered
// expression applied one operator at a time to the source instance — and
// profiles the requested heuristic kinds (every paper kind when kinds is
// nil) against the true remaining cost at each state. With unit move costs
// the state after i of D operators has true remaining cost D−i; the goal
// state closes the profile at 0, where a good heuristic must also reach 0.
func heuristicProfile(res *Result, source, target *relation.Database, opts Options, kinds []heuristic.Kind) ([]obs.HeuristicQuality, error) {
	states := []*relation.Database{source}
	cur := source
	for _, op := range res.Expr {
		next, err := op.Apply(cur, opts.Registry)
		if err != nil {
			return nil, fmt.Errorf("core: replaying solution path: %v", err)
		}
		states = append(states, next)
		cur = next
	}
	d := len(res.Expr)
	if kinds == nil {
		kinds = heuristic.Kinds()
		used := false
		for _, k := range kinds {
			if k == opts.Heuristic {
				used = true
			}
		}
		if !used {
			kinds = append(kinds, opts.Heuristic)
		}
	}
	out := make([]obs.HeuristicQuality, 0, len(kinds))
	for _, kind := range kinds {
		k := heuristic.DefaultK(opts.Algorithm, kind)
		if kind == opts.Heuristic {
			k = opts.K
		}
		est := heuristic.New(kind, target, k)
		q := obs.HeuristicQuality{
			Kind: kind.String(),
			K:    k,
			Used: kind == opts.Heuristic,
		}
		for i, s := range states {
			q.Samples = append(q.Samples, obs.HSample{
				Depth:         i,
				H:             est.Estimate(s),
				TrueRemaining: d - i,
			})
		}
		q.Finalize()
		out = append(out, q)
	}
	return out, nil
}

// shardReport reads the per-shard counters back out of the run's metrics
// registry and derives the balance analytics. Returns nil when the registry
// holds no shard counters (metrics disabled, or the run never went
// parallel).
func shardReport(opts Options, timeline []obs.InboxSample) *obs.ShardReport {
	if opts.Metrics == nil {
		return nil
	}
	snap := opts.Metrics.Snapshot()
	byShard := map[int]*obs.ShardStat{}
	for name, v := range snap.Counters {
		field, shard, ok := shardCounter(name)
		if !ok {
			continue
		}
		st := byShard[shard]
		if st == nil {
			st = &obs.ShardStat{Shard: shard}
			byShard[shard] = st
		}
		switch field {
		case "examined":
			st.Examined = v
		case "routed":
			st.Routed = v
		case "deferred":
			st.Deferred = v
		}
	}
	if len(byShard) == 0 {
		return nil
	}
	sr := &obs.ShardReport{Workers: opts.Workers, InboxTimeline: timeline}
	ids := make([]int, 0, len(byShard))
	for id := range byShard {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var sum, max int64
	for _, id := range ids {
		sr.Shards = append(sr.Shards, *byShard[id])
		sum += byShard[id].Examined
		if byShard[id].Examined > max {
			max = byShard[id].Examined
		}
	}
	if sum > 0 {
		sr.ImbalancePermille = max * 1000 * int64(len(ids)) / sum
	}
	return sr
}

// shardCounter parses a per-shard counter name —
// `search.shard.<field>{algo="...",shard="N"}` — into its field and shard
// id. The inbox-depth gauge and other families return ok == false.
func shardCounter(name string) (field string, shard int, ok bool) {
	const prefix = "search.shard."
	if !strings.HasPrefix(name, prefix) {
		return "", 0, false
	}
	rest := name[len(prefix):]
	brace := strings.IndexByte(rest, '{')
	if brace < 0 {
		return "", 0, false
	}
	field = rest[:brace]
	switch field {
	case "examined", "routed", "deferred":
	default:
		return "", 0, false
	}
	const marker = `shard="`
	i := strings.Index(rest[brace:], marker)
	if i < 0 {
		return "", 0, false
	}
	tail := rest[brace+i+len(marker):]
	end := strings.IndexByte(tail, '"')
	if end < 0 {
		return "", 0, false
	}
	id, err := strconv.Atoi(tail[:end])
	if err != nil {
		return "", 0, false
	}
	return field, id, true
}

// attachShardSpans nests one span per shard under the parallel search span
// of the span tree, so the tree reflects the full run → member → search →
// shard hierarchy the report promises.
func attachShardSpans(root *obs.Span, sr *obs.ShardReport) {
	if root == nil || sr == nil {
		return
	}
	var parallel *obs.Span
	var find func(*obs.Span)
	find = func(s *obs.Span) {
		if s.Kind == "search" && strings.HasPrefix(s.Name, "P") {
			parallel = s
		}
		for _, c := range s.Children {
			find(c)
		}
	}
	find(root)
	if parallel == nil {
		parallel = root
	}
	for _, sh := range sr.Shards {
		parallel.Children = append(parallel.Children, &obs.Span{
			Name:     "shard-" + strconv.Itoa(sh.Shard),
			Kind:     "shard",
			StartNS:  parallel.StartNS,
			Examined: int(sh.Examined),
		})
	}
}
