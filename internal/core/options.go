package core

import (
	"fmt"
	"io"

	"tupelo/internal/heuristic"
	"tupelo/internal/lambda"
	"tupelo/internal/search"
)

// Options configures a mapping discovery run. The zero value selects the
// paper's overall best configuration: RBFS with the cosine similarity
// heuristic and its published scaling constant.
type Options struct {
	// Algorithm selects the search strategy (default RBFS — the paper's
	// overall better performer; note search.IDA is the zero value, so the
	// default is applied by Discover only when the whole Options is zero...
	// use DefaultOptions for clarity).
	Algorithm search.Algorithm
	// Heuristic selects the h function of §3 (default: the value of
	// heuristic.H0 — use DefaultOptions for the paper's best choice).
	Heuristic heuristic.Kind
	// K overrides the scaling constant for the normalized heuristics;
	// 0 means the paper's published constant for (Algorithm, Heuristic).
	K float64
	// Limits bounds the search. Zero means unlimited; Discover applies a
	// defensive default of 1,000,000 states when MaxStates is 0.
	Limits search.Limits
	// Registry resolves λ functions. Nil means lambda.Builtins() when
	// Correspondences are supplied, and no λ moves otherwise.
	Registry *lambda.Registry
	// Correspondences are the user-indicated complex semantic mappings
	// (§4); each enables λ moves during search.
	Correspondences []lambda.Correspondence
	// DisablePruning turns off the paper's "obviously inapplicable"
	// enhancements (§2.3) for ablation studies.
	DisablePruning bool
	// DisableCycleCheck turns off path-local duplicate pruning for
	// ablation studies.
	DisableCycleCheck bool
	// TraceWriter, when non-nil, receives a transcript of the search:
	// every expansion with its candidate moves and every goal test.
	TraceWriter io.Writer
}

// DefaultOptions returns the paper's overall best configuration: RBFS with
// cosine similarity at its published scaling constant.
func DefaultOptions() Options {
	return Options{
		Algorithm: search.RBFS,
		Heuristic: heuristic.Cosine,
	}
}

// defaultMaxStates is the defensive search budget applied when the caller
// leaves Limits.MaxStates at 0. Mapping discovery on critical instances
// examines from a handful to tens of thousands of states; a run that hits
// this bound is lost and should fail loudly rather than spin.
const defaultMaxStates = 1_000_000

// normalize validates and completes the options.
func (o Options) normalize() (Options, error) {
	if o.K < 0 {
		return o, fmt.Errorf("core: negative scaling constant %g", o.K)
	}
	if o.K == 0 {
		o.K = heuristic.DefaultK(o.Algorithm, o.Heuristic)
	}
	if o.Limits.MaxStates == 0 {
		o.Limits.MaxStates = defaultMaxStates
	}
	if len(o.Correspondences) > 0 && o.Registry == nil {
		o.Registry = lambda.Builtins()
	}
	for _, c := range o.Correspondences {
		if err := c.Validate(o.Registry); err != nil {
			return o, fmt.Errorf("core: %v", err)
		}
	}
	return o, nil
}
