package core

import (
	"fmt"
	"runtime"

	"tupelo/internal/faults"
	"tupelo/internal/heuristic"
	"tupelo/internal/lambda"
	"tupelo/internal/obs"
	"tupelo/internal/search"
)

// Options configures a mapping discovery run. The zero value selects the
// paper's overall best configuration — RBFS with the cosine similarity
// heuristic at its published scaling constant — because the zero Algorithm
// and Heuristic are explicit "unset" sentinels that normalization resolves
// to the paper's best choices. Any field set explicitly is honored as-is.
type Options struct {
	// Algorithm selects the search strategy. The zero value
	// (search.AlgorithmUnset) means RBFS, the paper's overall better
	// performer.
	Algorithm search.Algorithm
	// Heuristic selects the h function of §3. The zero value
	// (heuristic.Unset) means cosine similarity, the paper's overall best;
	// use heuristic.H0 explicitly for blind search.
	Heuristic heuristic.Kind
	// K overrides the scaling constant for the normalized heuristics;
	// 0 means the paper's published constant for (Algorithm, Heuristic).
	K float64
	// Limits bounds the search. Zero means unlimited; Discover applies a
	// defensive default of 1,000,000 states when MaxStates is 0.
	Limits search.Limits
	// Workers bounds the worker pool used for successor generation and
	// heuristic evaluation, the embarrassingly parallel part of every
	// expansion. 0 means GOMAXPROCS; 1 disables parallelism. The search
	// result is identical either way — only wall-clock time changes.
	// Under ParallelSearch the same count instead sizes the shard fleet
	// (see below) and each shard expands with a single-threaded pool.
	Workers int
	// ParallelSearch runs one search sharded across Workers goroutines by
	// state-key hash (HDA*-style, DESIGN.md §10) instead of parallelizing
	// within each expansion. It requires (and, when Algorithm is unset,
	// selects) best-first search: only search.AStar and search.Greedy order
	// a global frontier the shards can partition. Results keep A*'s
	// optimality but Stats.Examined becomes scheduling-dependent, and the
	// exact move sequence may differ between worker counts when several
	// optimal mappings exist. Incompatible with DisableCycleCheck, whose
	// ablation wrapper mutates unsynchronized per-run state.
	ParallelSearch bool
	// Cache memoizes heuristic estimates across state re-examinations.
	// Nil means a fresh private cache per run. A portfolio run injects a
	// shared concurrency-safe cache here so members with the same
	// heuristic don't re-encode the same TNF fingerprints. A cache that
	// does not declare concurrency safety (heuristic.ConcurrencySafe) is
	// automatically wrapped in a mutex when Workers > 1, so pairing a
	// plain MapCache with a parallel pool degrades to locking instead of
	// racing.
	Cache heuristic.Cache
	// Registry resolves λ functions. Nil means lambda.Builtins() when
	// Correspondences are supplied, and no λ moves otherwise.
	Registry *lambda.Registry
	// Correspondences are the user-indicated complex semantic mappings
	// (§4); each enables λ moves during search.
	Correspondences []lambda.Correspondence
	// DisablePruning turns off the paper's "obviously inapplicable"
	// enhancements (§2.3) for ablation studies.
	DisablePruning bool
	// DisableCycleCheck turns off path-local duplicate pruning for
	// ablation studies.
	DisableCycleCheck bool
	// DisableIncremental turns off incremental (delta-merged) heuristic
	// evaluation, forcing every estimate to be computed from scratch, for
	// ablation studies and differential testing. The estimates themselves
	// are identical either way — incremental evaluation maintains exact
	// integer counters, not approximations — so only cost changes.
	DisableIncremental bool
	// Tracer, when non-nil, receives a structured event stream of the
	// search: run start/finish, every expansion with its candidate moves,
	// every goal test, cache hits and misses, and — under
	// DiscoverPortfolio — member start/win/lose/cancel. Implementations
	// must be safe for concurrent use (worker pools and portfolio members
	// emit from their own goroutines); obs.NewWriterTracer adapts an
	// io.Writer into the transcript format of the former TraceWriter
	// field.
	Tracer obs.Tracer
	// Metrics, when non-nil, receives counters, gauges, and timers for the
	// run: per-algorithm examined/generated counts, heuristic cache
	// hit/miss rates, per-operator proposal/application counts, and worker
	// pool utilization. The registry is race-safe and may be shared across
	// runs; expose it with its WriteJSON/WritePrometheus/Handler methods.
	Metrics *obs.Registry
	// Flight, when non-nil, attaches the forensic flight recorder: every
	// search goroutine (the sequential loop, each shard worker) records
	// compact ring-buffered events at a few nanoseconds each, and the rings
	// are dumped to the recorder's SetAutoDump writer when a run dies from a
	// panic, memory-budget abort, or deadline. Like Metrics, the recorder
	// may be shared by portfolio members; the dump is flushed only after all
	// of a race's goroutines have joined.
	Flight *obs.FlightRecorder
	// FaultHook, when non-nil, is called at the fault-injection sites of
	// the discovery hot path: heuristic evaluation (cache misses and
	// worker-pool pre-warms, labelled with the run's cache label) and
	// candidate-operator application (labelled with the operator's textual
	// form). It exists solely for the deterministic fault-injection test
	// harness (internal/faults) — the hook runs inline on search and worker
	// goroutines and must not be set in production.
	FaultHook func(faults.Site, string)
}

// DefaultOptions returns the paper's overall best configuration: RBFS with
// cosine similarity at its published scaling constant. Since the Options
// zero value now normalizes to the same configuration, this is equivalent
// to Options{} and kept for readability at call sites.
func DefaultOptions() Options {
	return Options{
		Algorithm: search.RBFS,
		Heuristic: heuristic.Cosine,
	}
}

// defaultMaxStates is the defensive search budget applied when the caller
// leaves Limits.MaxStates at 0. Mapping discovery on critical instances
// examines from a handful to tens of thousands of states; a run that hits
// this bound is lost and should fail loudly rather than spin.
const defaultMaxStates = 1_000_000

// normalize validates and completes the options: unset sentinel fields
// resolve to the paper's best choices, K to the published constant for the
// resulting (Algorithm, Heuristic) pair, and Workers to GOMAXPROCS.
func (o Options) normalize() (Options, error) {
	if o.Algorithm == search.AlgorithmUnset {
		if o.ParallelSearch {
			// Sharding partitions a best-first frontier; A* is the natural
			// default when the caller asked for a parallel single search.
			o.Algorithm = search.AStar
		} else {
			o.Algorithm = search.RBFS
		}
	}
	if o.ParallelSearch {
		if o.Algorithm != search.AStar && o.Algorithm != search.Greedy {
			return o, fmt.Errorf("core: ParallelSearch requires a best-first algorithm (AStar or Greedy), got %s", o.Algorithm)
		}
		if o.DisableCycleCheck {
			return o, fmt.Errorf("core: ParallelSearch is incompatible with DisableCycleCheck (the ablation wrapper is not concurrency-safe)")
		}
	}
	if o.Heuristic == heuristic.Unset {
		o.Heuristic = heuristic.Cosine
	}
	if o.K < 0 {
		return o, fmt.Errorf("core: negative scaling constant %g", o.K)
	}
	if o.K == 0 {
		o.K = heuristic.DefaultK(o.Algorithm, o.Heuristic)
	}
	if o.Limits.MaxStates == 0 {
		o.Limits.MaxStates = defaultMaxStates
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Cache != nil && o.Workers > 1 && !heuristic.IsConcurrent(o.Cache) {
		// The worker pool pre-warms estimates into the cache from several
		// goroutines; a single-goroutine cache here used to race (fatal
		// concurrent map writes on a MapCache). Degrade to a mutex-guarded
		// wrapper instead of crashing or silently corrupting.
		o.Cache = heuristic.NewLockedCache(o.Cache)
	}
	if len(o.Correspondences) > 0 && o.Registry == nil {
		o.Registry = lambda.Builtins()
	}
	for _, c := range o.Correspondences {
		if err := c.Validate(o.Registry); err != nil {
			return o, fmt.Errorf("core: %v", err)
		}
	}
	return o, nil
}
