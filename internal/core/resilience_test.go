package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"tupelo/internal/datagen"
	"tupelo/internal/faults"
	"tupelo/internal/heuristic"
	"tupelo/internal/obs"
	"tupelo/internal/relation"
	"tupelo/internal/search"
)

// The fault-injection suite: run with -race. It proves the resilience
// layer's contract — an injected panic anywhere in a discovery never
// crashes the process, a poisoned portfolio member loses its race instead
// of killing it, and best-effort degradation always returns a structurally
// valid partial state.

// assertPanicError checks that err is a *search.Error classifying as
// "panic" and carrying a *search.PanicError with a stack.
func assertPanicError(t *testing.T, err error) *search.PanicError {
	t.Helper()
	var serr *search.Error
	if !errors.As(err, &serr) {
		t.Fatalf("err = %T (%v), want *search.Error", err, err)
	}
	if serr.Cause() != "panic" {
		t.Fatalf("cause = %q, want panic", serr.Cause())
	}
	var pe *search.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("no *search.PanicError in chain: %v", err)
	}
	if len(pe.Stack) == 0 || pe.Origin == "" {
		t.Fatalf("panic error missing stack or origin: %+v", pe)
	}
	return pe
}

func TestHeuristicPanicContained(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(4)
	inj := faults.NewInjector(1, faults.Fault{Site: faults.SiteHeuristicEval, After: 3, Kind: faults.Panic})
	trace := obs.NewCollector()
	_, err := Discover(src, tgt, Options{
		Heuristic: heuristic.H1,
		FaultHook: inj.Hit,
		Tracer:    trace,
	})
	if err == nil {
		t.Fatal("injected panic produced no error")
	}
	assertPanicError(t, err)
	if inj.Fired(0) != 1 {
		t.Fatalf("fault fired %d times, want 1", inj.Fired(0))
	}
	if trace.Count(obs.EvPanic) == 0 {
		t.Fatal("no EvPanic event emitted")
	}
}

func TestOpApplyPanicContained(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(4)
	for _, workers := range []int{1, 4} {
		t.Run(map[int]string{1: "serial", 4: "parallel"}[workers], func(t *testing.T) {
			inj := faults.NewInjector(1, faults.Fault{Site: faults.SiteOpApply, After: 5, Kind: faults.Panic})
			trace := obs.NewCollector()
			_, err := Discover(src, tgt, Options{
				Heuristic: heuristic.H1,
				Workers:   workers,
				FaultHook: inj.Hit,
				Tracer:    trace,
			})
			if err == nil {
				t.Fatal("injected panic produced no error")
			}
			pe := assertPanicError(t, err)
			// The worker pool recovers closest to the site and names the
			// worker and operator.
			if pe.Origin == "" {
				t.Fatalf("origin missing: %+v", pe)
			}
			if trace.Count(obs.EvPanic) == 0 {
				t.Fatal("no EvPanic event emitted")
			}
		})
	}
}

// TestPortfolioPanickedMemberLosesRace is the tentpole scenario: a panic
// seeded into one member's heuristic must lose that member the race while
// the others carry on and return a verified mapping.
func TestPortfolioPanickedMemberLosesRace(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(4)
	inj := faults.NewInjector(1,
		// Member 1 (ida/h1) panics on its very first heuristic evaluation.
		faults.Fault{Site: faults.SiteHeuristicEval, Match: "h1/", After: 1, Kind: faults.Panic},
		// Member 0 (rbfs/cosine) is briefly delayed so the panic reliably
		// fires before the race is over.
		faults.Fault{Site: faults.SiteHeuristicEval, Match: "cosine/", After: 1, Kind: faults.Delay, Sleep: 30 * time.Millisecond},
	)
	port, err := DiscoverPortfolio(context.Background(), src, tgt, PortfolioOptions{
		Configs: []PortfolioConfig{
			{Algorithm: search.RBFS, Heuristic: heuristic.Cosine},
			{Algorithm: search.IDA, Heuristic: heuristic.H1},
		},
		Options: Options{FaultHook: inj.Hit},
	})
	if err != nil {
		t.Fatalf("race failed outright: %v", err)
	}
	if port.Winner.Heuristic != heuristic.Cosine {
		t.Fatalf("winner = %s, want the healthy cosine member", port.Winner)
	}
	if verr := Verify(port.Expr, src, tgt, nil); verr != nil {
		t.Fatalf("winner's mapping does not verify: %v", verr)
	}
	if inj.Fired(0) != 1 {
		t.Fatalf("panic fault fired %d times, want 1", inj.Fired(0))
	}
	var sawPanic bool
	for _, run := range port.Runs {
		if run.Err == nil {
			continue
		}
		var pe *search.PanicError
		if errors.As(run.Err, &pe) {
			sawPanic = true
		}
	}
	if !sawPanic {
		t.Fatalf("no run reports the recovered panic: %+v", port.Runs)
	}
}

// TestPortfolioRetriesPanickedMember: with a retry budget, a one-shot panic
// costs an attempt, not the race — the slot relaunches (on a hedge config)
// and the portfolio still succeeds.
func TestPortfolioRetriesPanickedMember(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(4)
	inj := faults.NewInjector(1,
		faults.Fault{Site: faults.SiteHeuristicEval, After: 1, Kind: faults.Panic},
	)
	port, err := DiscoverPortfolio(context.Background(), src, tgt, PortfolioOptions{
		Configs:      []PortfolioConfig{{Algorithm: search.RBFS, Heuristic: heuristic.Cosine}},
		Options:      Options{FaultHook: inj.Hit},
		MaxRetries:   1,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("race failed despite retry budget: %v", err)
	}
	if len(port.Runs) != 1 || port.Runs[0].Attempts != 2 {
		t.Fatalf("runs = %+v, want one slot with 2 attempts", port.Runs)
	}
	if verr := Verify(port.Expr, src, tgt, nil); verr != nil {
		t.Fatalf("retried mapping does not verify: %v", verr)
	}
}

// TestPortfolioRetryBudgetExhausted: a deterministic panic (fires on every
// evaluation) burns the retry budget and the race reports the panic rather
// than hanging or crashing.
func TestPortfolioRetryBudgetExhausted(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(4)
	inj := faults.NewInjector(1,
		faults.Fault{Site: faults.SiteHeuristicEval, After: 1, Every: 1, Kind: faults.Panic},
	)
	_, err := DiscoverPortfolio(context.Background(), src, tgt, PortfolioOptions{
		Configs:      []PortfolioConfig{{Algorithm: search.RBFS, Heuristic: heuristic.Cosine}},
		Options:      Options{FaultHook: inj.Hit},
		MaxRetries:   2,
		RetryBackoff: time.Millisecond,
	})
	if err == nil {
		t.Fatal("deterministic panic should fail the race")
	}
	assertPanicError(t, err)
}

// applyMatchesPartialState checks the structural validity demanded of
// every best-effort result: the partial Expr replayed on the source
// produces exactly PartialState.
func applyMatchesPartialState(t *testing.T, res *Result, src *relation.Database) {
	t.Helper()
	if !res.Partial {
		t.Fatalf("result not partial: %+v", res)
	}
	if res.PartialState == nil {
		t.Fatal("PartialState nil")
	}
	if res.AbortErr == nil {
		t.Fatal("AbortErr nil")
	}
	got, err := res.Apply(src, Options{})
	if err != nil {
		t.Fatalf("partial expression does not evaluate: %v", err)
	}
	if got.Fingerprint() != res.PartialState.Fingerprint() {
		t.Fatalf("replayed partial path diverges from PartialState:\n%s\nvs\n%s", got, res.PartialState)
	}
}

func TestBestEffortHeapBudgetReturnsPartial(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(6)
	res, err := Discover(src, tgt, Options{
		Heuristic: heuristic.H1,
		Limits:    search.Limits{MaxHeapBytes: 1, BestEffort: true},
	})
	if err != nil {
		t.Fatalf("best-effort abort surfaced as error: %v", err)
	}
	if !errors.Is(res.AbortErr, search.ErrMemory) || !errors.Is(res.AbortErr, search.ErrLimit) {
		t.Fatalf("AbortErr = %v, want ErrMemory under ErrLimit", res.AbortErr)
	}
	applyMatchesPartialState(t, res, src)
}

func TestBestEffortStateBudgetReturnsPartial(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(8)
	res, err := Discover(src, tgt, Options{
		Heuristic: heuristic.H1,
		Limits:    search.Limits{MaxStates: 4, BestEffort: true},
	})
	if err != nil {
		t.Fatalf("best-effort abort surfaced as error: %v", err)
	}
	if !errors.Is(res.AbortErr, search.ErrLimit) {
		t.Fatalf("AbortErr = %v, want ErrLimit", res.AbortErr)
	}
	if res.Stats.Examined == 0 {
		t.Fatal("partial result carries no stats")
	}
	applyMatchesPartialState(t, res, src)
}

func TestBestEffortDeadlineReturnsPartial(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(6)
	res, err := Discover(src, tgt, Options{
		Heuristic: heuristic.H1,
		Limits:    search.Limits{Deadline: time.Now().Add(-time.Second), BestEffort: true},
	})
	if err != nil {
		t.Fatalf("best-effort abort surfaced as error: %v", err)
	}
	if !errors.Is(res.AbortErr, context.DeadlineExceeded) {
		t.Fatalf("AbortErr = %v, want DeadlineExceeded", res.AbortErr)
	}
	applyMatchesPartialState(t, res, src)
}

// TestBestEffortVerdictsNotDegraded: ErrNotFound is a verdict that no
// mapping exists and a recovered panic means the partial cannot be
// trusted — neither may degrade into a partial "success".
func TestBestEffortVerdictsNotDegraded(t *testing.T) {
	opts := Options{Limits: search.Limits{BestEffort: true}}
	for name, cause := range map[string]error{
		"exhausted": search.ErrNotFound,
		"panic":     search.NewPanicError("test", "boom"),
	} {
		serr := &search.Error{Err: cause, Partial: &search.Partial{}}
		res, err := finish(nil, serr, opts)
		if err == nil {
			t.Fatalf("%s: degraded into %+v", name, res)
		}
	}
}

// TestBestEffortPortfolioAllHopeless: when every member aborts, the
// portfolio falls back to the best partial with a nil error, and every
// run still records its abort.
func TestBestEffortPortfolioAllHopeless(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(8)
	port, err := DiscoverPortfolio(context.Background(), src, tgt, PortfolioOptions{
		Configs: []PortfolioConfig{
			{Algorithm: search.RBFS, Heuristic: heuristic.H1},
			{Algorithm: search.IDA, Heuristic: heuristic.H1},
		},
		Options: Options{Limits: search.Limits{MaxStates: 5, BestEffort: true}},
	})
	if err != nil {
		t.Fatalf("hopeless best-effort portfolio errored: %v", err)
	}
	if !port.Partial {
		t.Fatal("result not marked partial")
	}
	if port.PartialState == nil {
		t.Fatal("no partial state")
	}
	for _, run := range port.Runs {
		if run.Err == nil {
			t.Fatalf("aborted member reports no error: %+v", run)
		}
	}
}

// TestMidExpansionCancellation pins the shutdown path: workers pinned
// mid-apply by a delay fault, the run cancelled from deep inside an
// expansion, every member accounted for, and no goroutine leaked.
func TestMidExpansionCancellation(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(6)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inj := faults.NewInjector(1,
		// Every operator application stalls briefly, so the cancel lands
		// while workers are mid-expansion.
		faults.Fault{Site: faults.SiteOpApply, After: 1, Every: 1, Kind: faults.Delay, Sleep: 2 * time.Millisecond},
		// The 10th application cancels the whole race from inside a worker.
		faults.Fault{Site: faults.SiteOpApply, After: 10, Kind: faults.Cancel, Cancel: cancel},
	)
	_, err := DiscoverPortfolio(ctx, src, tgt, PortfolioOptions{
		Configs: []PortfolioConfig{
			{Algorithm: search.RBFS, Heuristic: heuristic.H1},
			{Algorithm: search.IDA, Heuristic: heuristic.H1},
		},
		Options: Options{Workers: 4, FaultHook: inj.Hit},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var serr *search.Error
	if !errors.As(err, &serr) {
		t.Fatalf("err = %T, want *search.Error", err)
	}
	// Every member goroutine must have been observed until it returned, so
	// worker pools are drained before DiscoverPortfolio returns. Goroutine
	// counts settle rather than drop instantly (timers, runtime helpers).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: before=%d now=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMidExpansionCancellationRunBookkeeping: under best-effort, a race
// cancelled from deep inside an expansion still returns every member's
// bookkeeping — Duration and Err populated for all — wrapped around the
// best partial.
func TestMidExpansionCancellationRunBookkeeping(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(6)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inj := faults.NewInjector(1,
		faults.Fault{Site: faults.SiteOpApply, After: 1, Every: 1, Kind: faults.Delay, Sleep: 2 * time.Millisecond},
		faults.Fault{Site: faults.SiteOpApply, After: 10, Kind: faults.Cancel, Cancel: cancel},
	)
	port, err := DiscoverPortfolio(ctx, src, tgt, PortfolioOptions{
		Configs: []PortfolioConfig{
			{Algorithm: search.RBFS, Heuristic: heuristic.H1},
			{Algorithm: search.IDA, Heuristic: heuristic.H1},
		},
		Options: Options{
			Workers:   4,
			FaultHook: inj.Hit,
			Limits:    search.Limits{BestEffort: true},
		},
	})
	if err != nil {
		t.Fatalf("best-effort cancelled race errored: %v", err)
	}
	if !port.Partial {
		t.Fatal("result not marked partial")
	}
	for _, run := range port.Runs {
		if run.Err == nil {
			t.Fatalf("cancelled member reports no error: %+v", run)
		}
		if run.Duration <= 0 {
			t.Fatalf("member duration not recorded: %+v", run)
		}
		if !errors.Is(run.Err, context.Canceled) {
			t.Fatalf("member error = %v, want context.Canceled", run.Err)
		}
	}
}
