package core

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"tupelo/internal/datagen"
	"tupelo/internal/heuristic"
	"tupelo/internal/obs"
	"tupelo/internal/relation"
	"tupelo/internal/search"
)

// TestDerefCandidateCount pins the candidate set of the → generator after
// replacing the confusing sortedMissing(p.tAttrs, empty-map) enumeration:
// one Deref per (pointer column, target attribute the relation lacks), in
// sorted target-attribute order.
func TestDerefCandidateCount(t *testing.T) {
	src := relation.MustDatabase(
		relation.MustNew("R", []string{"a", "b", "p"},
			relation.Tuple{"1", "2", "a"},
			relation.Tuple{"3", "4", "b"},
		),
	)
	tgt := relation.MustDatabase(
		relation.MustNew("T", []string{"a", "b", "x", "y"},
			relation.Tuple{"1", "2", "3", "4"},
		),
	)
	opts, err := Options{}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	p := newProblem(src, tgt, opts)
	ops := p.derefMoves(newExpCtx(src))
	// Only column p holds attribute names throughout; the candidate outputs
	// are the target attributes R lacks: x and y, in sorted order.
	if len(ops) != 2 {
		t.Fatalf("derefMoves proposed %d ops, want 2: %v", len(ops), ops)
	}
	want := []string{"deref[R,p->x]", "deref[R,p->y]"}
	for i, op := range ops {
		if op.String() != want[i] {
			t.Fatalf("ops[%d] = %s, want %s", i, op, want[i])
		}
	}
}

// TestMapCacheAutoWrappedForParallelRun is the end-to-end half of the cache
// footgun fix: a caller pairing a single-goroutine MapCache with a parallel
// worker pool used to crash with concurrent map writes (or corrupt under
// -race); normalization now wraps the cache in a mutex. Run under -race this
// exercises the wrapped path with real pool traffic.
func TestMapCacheAutoWrappedForParallelRun(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(8)
	cache := heuristic.NewMapCache()
	res, err := Discover(src, tgt, Options{
		Workers: 4,
		Cache:   cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(res.Expr, src, tgt, nil); err != nil {
		t.Fatalf("mapping does not verify: %v", err)
	}
	if cache.Len() == 0 {
		t.Fatal("wrapped cache never reached the underlying MapCache")
	}
}

// TestZeroValuedPortfolioConfigResolved pins satellite rule: a zero-valued
// PortfolioConfig member resolves through the same sentinel rules as
// Options (AlgorithmUnset→RBFS, heuristic Unset→cosine, K→published
// constant), and the resolved values — not the zero sentinels — are what
// PortfolioRun.Config reports.
func TestZeroValuedPortfolioConfigResolved(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(4)
	res, err := DiscoverPortfolio(context.Background(), src, tgt, PortfolioOptions{
		Configs: []PortfolioConfig{{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 1 {
		t.Fatalf("len(Runs) = %d, want 1", len(res.Runs))
	}
	cfg := res.Runs[0].Config
	if cfg.Algorithm != search.RBFS || cfg.Heuristic != heuristic.Cosine {
		t.Fatalf("resolved config = %s, want RBFS/cosine", cfg)
	}
	if cfg.K == 0 {
		t.Fatal("resolved config must report the published K, not the 0 sentinel")
	}
	if cfg.K != heuristic.DefaultK(search.RBFS, heuristic.Cosine) {
		t.Fatalf("resolved K = %g, want published constant", cfg.K)
	}
	if res.Winner != cfg {
		t.Fatalf("Winner = %s, want the resolved member config %s", res.Winner, cfg)
	}
}

// TestPortfolioEventStreamAndMetrics is the acceptance criterion for the
// observability layer at the portfolio level: racing a capable member
// against a hopeless one under a Collector yields a structured stream with
// every member's start, exactly one win, the loser's cancellation, and
// cache traffic; the registry carries the win counter and per-member
// duration timers.
func TestPortfolioEventStreamAndMetrics(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(8)
	reg := obs.NewRegistry()
	col := obs.NewCollector()
	opts := PortfolioOptions{
		Configs: []PortfolioConfig{
			{Algorithm: search.RBFS, Heuristic: heuristic.Cosine},
			{Algorithm: search.IDA, Heuristic: heuristic.H0},
		},
	}
	opts.Options.Metrics = reg
	opts.Options.Tracer = col
	res, err := DiscoverPortfolio(context.Background(), src, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := col.Count(obs.EvMemberStart); got != 2 {
		t.Fatalf("member-start events = %d, want 2", got)
	}
	if got := col.Count(obs.EvMemberWin); got != 1 {
		t.Fatalf("member-win events = %d, want 1", got)
	}
	if got := col.Count(obs.EvMemberCancel, obs.EvMemberLose); got != 1 {
		t.Fatalf("member cancel/lose events = %d, want 1", got)
	}
	if got := col.Count(obs.EvRunStart); got != 2 {
		t.Fatalf("run-start events = %d, want 2 (one per member)", got)
	}
	if col.Count(obs.EvCacheHit) == 0 {
		t.Fatal("no cache-hit events: prewarmed estimates should be hits in the search loop")
	}
	winLabel := res.Winner.String()
	if got := reg.Counter(obs.Name("portfolio.wins", "member", winLabel)).Value(); got != 1 {
		t.Fatalf("portfolio.wins{member=%s} = %d, want 1", winLabel, got)
	}
	if got := reg.Timer(obs.Name("portfolio.member.duration", "member", winLabel)).Count(); got != 1 {
		t.Fatalf("winner duration timer count = %d, want 1", got)
	}
	if got := reg.Counter(obs.Name("search.examined", "algo", "RBFS")).Value(); got == 0 {
		t.Fatal("search.examined{algo=RBFS} = 0, want > 0")
	}
	// Per-operator successor metrics flow from the same run.
	var proposed int64
	for _, k := range opKindNames {
		proposed += reg.Counter(obs.Name("core.ops.proposed", "op", k)).Value()
	}
	if proposed == 0 {
		t.Fatal("no proposed-operator counts recorded")
	}
}

// TestLatencyHistogramsRecorded is the acceptance check for the profiling
// layer's registry half: an instrumented run populates the goal-test,
// expansion, heuristic-evaluation, and operator-apply latency histograms.
func TestLatencyHistogramsRecorded(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(6)
	reg := obs.NewRegistry()
	res, err := Discover(src, tgt, Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	goalTests := reg.Histogram(obs.Name("search.goaltest.seconds", "algo", "RBFS"))
	if goalTests.Count() != int64(res.Stats.Examined) {
		t.Fatalf("goal-test histogram count = %d, want %d (one per examined state)",
			goalTests.Count(), res.Stats.Examined)
	}
	if reg.Histogram(obs.Name("search.expand.seconds", "algo", "RBFS")).Count() == 0 {
		t.Fatal("expansion histogram empty")
	}
	var applies int64
	for _, k := range opKindNames {
		applies += reg.Histogram(obs.Name("core.op.apply.seconds", "op", k)).Count()
	}
	if applies == 0 {
		t.Fatal("operator-apply histograms empty")
	}
	s := reg.Snapshot()
	if len(s.Histograms) == 0 {
		t.Fatal("snapshot carries no histograms")
	}
	// The eval label carries the resolved (heuristic, k) cache identity;
	// match by family rather than hard-coding the published constant.
	var evals int64
	for name, hs := range s.Histograms {
		if strings.HasPrefix(name, "heuristic.eval.seconds{") {
			evals += hs.Count
		}
	}
	if evals == 0 {
		t.Fatalf("heuristic-evaluation histogram empty; snapshot has %v", histNames(s))
	}
}

func histNames(s obs.Snapshot) []string {
	names := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		names = append(names, n)
	}
	return names
}

// TestSharedProfileAcrossPortfolio is meaningful under -race: every
// portfolio member (and its worker pool) emits into one shared Profile, the
// intended CLI wiring of tupelo discover -profile -portfolio. The profile
// must survive the concurrency and still describe the race.
func TestSharedProfileAcrossPortfolio(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(8)
	prof := obs.NewProfile()
	opts := PortfolioOptions{
		Configs: []PortfolioConfig{
			{Algorithm: search.RBFS, Heuristic: heuristic.Cosine},
			{Algorithm: search.IDA, Heuristic: heuristic.H1},
		},
	}
	opts.Options.Tracer = prof
	opts.Options.Workers = 4
	if _, err := DiscoverPortfolio(context.Background(), src, tgt, opts); err != nil {
		t.Fatal(err)
	}
	var report strings.Builder
	if err := prof.WriteReport(&report); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "solved") {
		t.Fatalf("shared profile lost the winning run:\n%s", report.String())
	}
	var trace bytes.Buffer
	if err := prof.WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(trace.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace from a portfolio run is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("chrome trace empty")
	}
}
