package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tupelo/internal/faults"
	"tupelo/internal/fira"
	"tupelo/internal/heuristic"
	"tupelo/internal/lambda"
	"tupelo/internal/obs"
	"tupelo/internal/relation"
	"tupelo/internal/search"
)

// mappingProblem is the search space of §2.3: states are databases, moves
// are applications of L operators, the start state is the source critical
// instance, and goals are states containing the target critical instance.
type mappingProblem struct {
	source *relation.Database
	target *relation.Database
	reg    *lambda.Registry
	corrs  []lambda.Correspondence
	prune  bool // apply the paper's "obviously inapplicable" rules

	// Target-side token sets, computed once. tAttrsSorted is the sorted
	// enumeration of tAttrs, shared by move generators that need the target
	// attributes in a deterministic order (previously each derefMoves call
	// rebuilt and re-sorted it from scratch).
	tAttrs       map[string]bool
	tAttrsSorted []string
	tRels        map[string]bool
	tRelsSorted  []string
	tVals        map[string]bool
	// Symbol-space mirrors of the target token sets, keyed by interned
	// symbol instead of string. Move generators probe these against raw
	// column symbols — interning is canonical, so symbol equality is string
	// equality — which keeps the per-expansion pruning scans free of
	// per-cell decoding.
	tAttrSymSet map[relation.Symbol]bool
	tRelSymSet  map[relation.Symbol]bool
	tValSymSet  map[relation.Symbol]bool
	// tAttrValSyms maps each target attribute to the set of value symbols
	// the target holds under it (across relations); tRelValSyms likewise per
	// relation. They power the value-evidence pruning of rename candidates.
	tAttrValSyms map[string]map[relation.Symbol]bool
	tRelValSyms  map[string]map[relation.Symbol]bool

	// goalIx is the precomputed containment index over the target critical
	// instance: the goal test runs once per examined state, and the indexed
	// form replaces Database.Contains's nested-loop tuple scan with hash
	// lookups. It answers exactly what Database.Contains answers (the scan is
	// kept as the reference implementation, cross-checked by tests).
	goalIx *relation.ContainmentIndex

	// Parallel-expansion machinery. workers bounds the pool that applies
	// candidate operators; est and cache, when set, let the same pool
	// pre-warm heuristic estimates so the search loop's h() calls become
	// cache hits. When workers > 1 the cache must be concurrency-safe.
	// inc is est's incremental capability view when it has one (and the run
	// hasn't disabled it): successors are then estimated by delta-merging
	// the replaced relation's fragment against the parent's aggregate
	// instead of re-encoding the state.
	workers int
	est     heuristic.Evaluator
	inc     heuristic.IncrementalEvaluator
	cache   heuristic.Cache

	// met, when non-nil, records per-operator-kind proposal/application
	// counts, apply-latency histograms, and worker-pool utilization. Nil
	// when the run has no metrics registry, keeping the hot path free of
	// map lookups.
	met *opMetrics
	// tracer, when non-nil, receives one EvOpApply event per candidate
	// operator application, carrying the operator and its apply latency.
	tracer obs.Tracer
	// hEval, when non-nil, times heuristic evaluations done while
	// pre-warming the cache (the search loop's misses are timed by
	// cachedEstimator into the same histogram).
	hEval *obs.Histogram
	// fault, when non-nil, is the test-only fault-injection hook
	// (Options.FaultHook); hLabel is the label it receives at heuristic
	// evaluations.
	fault  func(faults.Site, string)
	hLabel string

	// succMemo caches each expanded state's finished move list by state key.
	// The tree searches (IDA*'s repeated deepening probes, RBFS's re-descent)
	// revisit states relentlessly — measured on the paper's exp1 workload,
	// over 99% of expansions are of a state already expanded in the same run
	// — and states are immutable, so the move list of a revisited state is
	// identical by construction. A hit skips candidate generation, operator
	// application, and heuristic pre-warming wholesale.
	//
	// Sampling semantics: because hits bypass the operator pipeline, the
	// per-operator apply metrics (core.op.apply.seconds and friends) and the
	// EvOpApply trace stream observe only memo misses — in effect the first
	// expansion of each distinct state. The core.succmemo.hits/.misses
	// counters and the EvMemoHit/EvMemoMiss events carry the denominator, so
	// consumers can reconstruct totals (a profile's "operator table samples
	// misses only" line makes the same point). Nil only under a FaultHook,
	// whose injected faults must fire on every expansion to stay
	// deterministic. Successor workers never touch the memo; shard workers
	// of a parallel search do, through memoGet/memoPut's sharded lock.
	succMemo map[string][]search.Move
	// sharded marks a problem driven by the hash-sharded parallel search:
	// Successors is then called from several shard goroutines and memo
	// access goes through memoMu. Single-threaded runs skip the lock
	// entirely (the flag is set once, before the search starts).
	sharded bool
	memoMu  sync.RWMutex
}

// succMemoMax bounds the number of memoized expansions, a backstop against
// unbounded growth on adversarial workloads; beyond it, expansions compute
// without recording. Search budgets cap expanded states well below this.
const succMemoMax = 1 << 20

func newProblem(source, target *relation.Database, opts Options) *mappingProblem {
	p := &mappingProblem{
		source:       source,
		target:       target,
		reg:          opts.Registry,
		corrs:        opts.Correspondences,
		prune:        !opts.DisablePruning,
		workers:      opts.Workers,
		tRels:        target.RelationNames(),
		tAttrs:       target.AttrNames(),
		tVals:        target.ValueSet(),
		tAttrValSyms: make(map[string]map[relation.Symbol]bool),
		tRelValSyms:  make(map[string]map[relation.Symbol]bool),
		met:          newOpMetrics(opts.Metrics),
		tracer:       opts.Tracer,
		fault:        opts.FaultHook,
		hLabel:       cacheLabel(opts),
		goalIx:       relation.NewContainmentIndex(target),
	}
	p.tAttrsSorted = sortedKeys(p.tAttrs)
	p.tRelsSorted = sortedKeys(p.tRels)
	if opts.FaultHook == nil {
		// Memoization stays on under a Tracer: a traced run that re-applied
		// every operator on every revisit was two orders of magnitude slower
		// than the run it claimed to describe, and silently out-sampled the
		// metrics-only configuration. The miss-only sampling this creates
		// for per-op apply events is documented on succMemo and surfaced
		// through EvMemoHit/EvMemoMiss.
		p.succMemo = make(map[string][]search.Move)
	}
	// The target's token sets double as symbol sets: every name and value in
	// them is (re-)interned here, once, so state columns can be probed by
	// symbol. Any string a state can ever hold under these sets is already
	// interned — FIRA operators move existing strings around, they never
	// synthesize new ones.
	p.tAttrSymSet = internSet(p.tAttrs)
	p.tRelSymSet = internSet(p.tRels)
	p.tValSymSet = internSet(p.tVals)
	for _, r := range target.Relations() {
		rv := make(map[relation.Symbol]bool)
		for j, a := range r.Attrs() {
			av := p.tAttrValSyms[a]
			if av == nil {
				av = make(map[relation.Symbol]bool)
				p.tAttrValSyms[a] = av
			}
			for _, s := range r.DistinctSymbols(j) {
				av[s] = true
				rv[s] = true
			}
		}
		p.tRelValSyms[r.Name()] = rv
	}
	return p
}

// internSet interns every member of a string set into a symbol set.
func internSet(set map[string]bool) map[relation.Symbol]bool {
	out := make(map[relation.Symbol]bool, len(set))
	for k := range set {
		out[relation.Intern(k)] = true
	}
	return out
}

// Start implements search.Problem.
func (p *mappingProblem) Start() search.State { return newState(p.source) }

// IsGoal implements search.Problem: the state is a structurally identical
// superset of the target critical instance. The test runs against the
// precomputed containment index, equivalent to db.Contains(p.target).
func (p *mappingProblem) IsGoal(s search.State) bool {
	return p.goalIx.Contains(s.(*dbState).db)
}

// Successors implements search.Problem. Operator arguments are instantiated
// from names and values present in the current state and the target
// instance, giving the branching factor proportional to |s| + |t| that the
// paper reports. Moves that fail to apply or that do not change the state
// are dropped. Candidate application and heuristic pre-warming run on the
// worker pool; the returned move order is identical for any worker count.
func (p *mappingProblem) Successors(s search.State) ([]search.Move, error) {
	parent := s.(*dbState)
	if p.succMemo != nil {
		if moves, ok := p.memoGet(parent.key); ok {
			p.met.memo(true)
			if p.tracer != nil {
				p.tracer.Event(obs.Event{Kind: obs.EvMemoHit})
			}
			return moves, nil
		}
		p.met.memo(false)
		if p.tracer != nil {
			p.tracer.Event(obs.Event{Kind: obs.EvMemoMiss})
		}
	}
	db := parent.db
	if p.inc != nil && parent.agg == nil {
		// Seed the parent's aggregate here, on the search goroutine before
		// any worker launches, so workers only ever read it. Most states
		// arrive with the aggregate their creating worker attached; seeding
		// happens for the start state and for states reconstructed without
		// one (the cycle-check ablation wrapper).
		parent.agg = p.inc.Seed(db)
	}
	ops := p.candidateOps(db)
	states, err := p.applyAll(parent, ops)
	if err != nil {
		return nil, err
	}
	moves := make([]search.Move, 0, len(ops))
	for i, ns := range states {
		if ns == nil || ns.key == s.Key() {
			// nil: the candidate failed its own preconditions — not an
			// error, just not a successor. Equal key: no-op transformation.
			p.met.count(ops[i], false)
			continue
		}
		moves = append(moves, search.Move{Label: ops[i].String(), To: ns, Cost: 1})
		p.met.count(ops[i], true)
	}
	if p.succMemo != nil {
		p.memoPut(parent.key, moves)
	}
	return moves, nil
}

// memoGet reads the successor memo; under a sharded parallel search it
// takes the read lock, otherwise it is a bare map access.
func (p *mappingProblem) memoGet(key string) ([]search.Move, bool) {
	if p.sharded {
		p.memoMu.RLock()
		defer p.memoMu.RUnlock()
	}
	moves, ok := p.succMemo[key]
	return moves, ok
}

// memoPut records an expansion, bounded by succMemoMax. Keys are owned by
// exactly one shard (the parallel search routes same-key states to one
// worker), so concurrent puts never disagree about a key's value.
func (p *mappingProblem) memoPut(key string, moves []search.Move) {
	if p.sharded {
		p.memoMu.Lock()
		defer p.memoMu.Unlock()
	}
	if len(p.succMemo) < succMemoMax {
		p.succMemo[key] = moves
	}
}

// expCtx is the per-expansion view of a state shared by every move
// generator: the sorted relation slice and the name sets, each computed once
// per expansion instead of once per generator.
type expCtx struct {
	db       *relation.Database
	rels     []*relation.Relation
	relNames map[string]bool
	attrs    map[string]bool
}

func newExpCtx(db *relation.Database) *expCtx {
	return &expCtx{
		db:       db,
		rels:     db.Relations(),
		relNames: db.RelationNames(),
		attrs:    db.AttrNames(),
	}
}

// candidateOps instantiates every candidate operator for the state,
// optimistically: operators enforce their own preconditions at Apply time.
func (p *mappingProblem) candidateOps(db *relation.Database) []fira.Op {
	x := newExpCtx(db)
	var ops []fira.Op
	ops = append(ops, p.renameRelMoves(x)...)
	ops = append(ops, p.renameAttMoves(x)...)
	ops = append(ops, p.dropMoves(x)...)
	ops = append(ops, p.promoteMoves(x)...)
	ops = append(ops, p.demoteMoves(x)...)
	ops = append(ops, p.derefMoves(x)...)
	ops = append(ops, p.partitionMoves(x)...)
	ops = append(ops, p.productMoves(x)...)
	ops = append(ops, p.unionMoves(x)...)
	ops = append(ops, p.mergeMoves(x)...)
	ops = append(ops, p.applyMoves(x)...)
	return ops
}

// minParallelOps is the candidate-count threshold below which the worker
// pool costs more in synchronization than it saves in application time.
const minParallelOps = 8

// applyAll applies every candidate operator to db and returns the resulting
// states positionally — nil where the operator was inapplicable — so the
// caller assembles moves in a deterministic order regardless of worker
// count. With more than one worker, operators are distributed over a
// bounded pool through an atomic work-stealing counter, and each worker
// also pre-warms the heuristic cache with estimates for the states it
// produced: this is the concurrent successor generation plus concurrent
// heuristic evaluation of the expansion step. Databases are immutable
// copy-on-write structures and the Estimator is immutable, so the only
// shared mutable state is the results slice (disjoint indices) and the
// cache (concurrency-safe by contract when workers > 1).
//
// A panic inside an operator apply or a heuristic pre-warm is recovered on
// the worker that hit it and returned as a *search.PanicError — never
// propagated, so a poisoned operator or heuristic fails the expansion (and
// through it the run) instead of killing the process. The first panic wins;
// remaining workers drain their queued operators and exit normally.
func (p *mappingProblem) applyAll(parent *dbState, ops []fira.Op) ([]*dbState, error) {
	db := parent.db
	states := make([]*dbState, len(ops))
	timed := p.met != nil || p.tracer != nil
	var panicked atomic.Pointer[search.PanicError]
	apply := func(i int) {
		if p.fault != nil {
			p.fault(faults.SiteOpApply, ops[i].String())
		}
		if !timed {
			next, err := ops[i].Apply(db, p.reg)
			if err != nil {
				return
			}
			ns := newState(next)
			p.prewarm(parent, ns)
			states[i] = ns
			return
		}
		start := time.Now()
		next, err := ops[i].Apply(db, p.reg)
		elapsed := time.Since(start)
		p.met.applyLatency(ops[i], elapsed)
		if p.tracer != nil {
			p.tracer.Event(obs.Event{
				Kind: obs.EvOpApply, Label: ops[i].String(),
				Goal: err == nil, Elapsed: elapsed,
			})
		}
		if err != nil {
			return
		}
		ns := newState(next)
		p.prewarm(parent, ns)
		states[i] = ns
	}
	applySafe := func(worker, i int) {
		defer func() {
			if r := recover(); r != nil {
				pe := search.NewPanicError(fmt.Sprintf("successor worker %d (op %s)", worker, ops[i]), r)
				panicked.CompareAndSwap(nil, pe)
				if p.tracer != nil {
					p.tracer.Event(obs.Event{Kind: obs.EvPanic, Label: pe.Origin, Err: pe})
				}
			}
		}()
		apply(i)
	}
	workers := p.workers
	if workers > len(ops) {
		workers = len(ops)
	}
	if workers <= 1 || len(ops) < minParallelOps {
		p.met.poolExpansion(1, len(ops))
		for i := range ops {
			applySafe(0, i)
			if panicked.Load() != nil {
				break
			}
		}
		if pe := panicked.Load(); pe != nil {
			return nil, pe
		}
		return states, nil
	}
	p.met.poolExpansion(workers, len(ops))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(ops) || panicked.Load() != nil {
					return
				}
				applySafe(worker, i)
			}
		}(w)
	}
	wg.Wait()
	if pe := panicked.Load(); pe != nil {
		return nil, pe
	}
	return states, nil
}

// prewarm computes the heuristic estimate of a freshly generated state into
// the run's cache, so the search loop's subsequent h() call is a lookup.
// With an incremental evaluator, a cache miss delta-merges the replaced
// relation's fragment against the parent's aggregate instead of re-encoding
// the state, and attaches the child's aggregate so the child's own expansion
// starts incremental too. A cache hit skips everything, exactly as the
// from-scratch path does — IDA and RBFS regenerate the same states across
// iterations, and paying even the cheap delta on every regeneration costs
// more than the occasional lazy re-seed in Successors when a hit-path state
// gets expanded.
func (p *mappingProblem) prewarm(parent, ns *dbState) {
	if p.est == nil || p.cache == nil {
		return
	}
	if _, ok := p.cache.Get(ns.key); ok {
		return
	}
	if p.inc != nil && parent.agg != nil {
		if p.fault != nil {
			p.fault(faults.SiteHeuristicEval, p.hLabel)
		}
		var start time.Time
		if p.hEval != nil {
			start = time.Now()
		}
		removed, added := relation.Diff(parent.db, ns.db)
		v, agg := p.inc.EstimateDelta(parent.agg, heuristic.Delta{Removed: removed, Added: added})
		ns.agg = agg
		if p.hEval != nil {
			p.hEval.Observe(time.Since(start))
		}
		p.cache.Put(ns.key, v)
		return
	}
	if p.fault != nil {
		p.fault(faults.SiteHeuristicEval, p.hLabel)
	}
	if p.hEval == nil {
		p.cache.Put(ns.key, p.est.Estimate(ns.db))
		return
	}
	start := time.Now()
	v := p.est.Estimate(ns.db)
	p.hEval.Observe(time.Since(start))
	p.cache.Put(ns.key, v)
}

// hasAll reports whether every key of want is present in have.
func hasAll(want, have map[string]bool) bool {
	for k := range want {
		if !have[k] {
			return false
		}
	}
	return true
}

// missingFrom returns the members of wantSorted absent from have, in order.
// The want side is always a fixed target token list, so sorting happened
// once at problem construction; per-expansion calls just filter.
func missingFrom(wantSorted []string, have map[string]bool) []string {
	out := make([]string, 0, len(wantSorted))
	for _, k := range wantSorted {
		if !have[k] {
			out = append(out, k)
		}
	}
	return out
}

// sortedKeys returns the keys of the set in sorted order. Move generators
// that enumerate a full token set use this (precomputed once per problem)
// instead of the sortedMissing(set, empty) idiom, which rebuilt the slice on
// every call.
func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// renameRelMoves proposes ρ^rel: rename a state relation that the target
// does not know to a target relation name the state is missing.
func (p *mappingProblem) renameRelMoves(x *expCtx) []fira.Op {
	if p.prune && hasAll(p.tRels, x.relNames) {
		// Obviously inapplicable: every target relation name is present.
		return nil
	}
	missing := missingFrom(p.tRelsSorted, x.relNames)
	var ops []fira.Op
	for _, r := range x.rels {
		if p.prune && p.tRels[r.Name()] {
			continue // already a target relation name; renaming it away hurts
		}
		for _, to := range missing {
			if p.prune && !p.relRenameEvidence(r, to) {
				continue
			}
			ops = append(ops, fira.RenameRel{From: r.Name(), To: to})
		}
	}
	return ops
}

// relRenameEvidence is the relation-level analogue of renameEvidence: a
// rename R→N is supported when R shares at least one data value with the
// target relation N, or either side is empty of values.
func (p *mappingProblem) relRenameEvidence(r *relation.Relation, to string) bool {
	tv := p.tRelValSyms[to]
	if len(tv) == 0 || r.Len() == 0 {
		return true
	}
	for j := 0; j < r.Arity(); j++ {
		for _, s := range r.Column(j) {
			if tv[s] {
				return true
			}
		}
	}
	return false
}

// renameAttMoves proposes ρ^att: rename an attribute the target does not
// know to a target attribute name missing from the state (schema matching).
func (p *mappingProblem) renameAttMoves(x *expCtx) []fira.Op {
	if p.prune && hasAll(p.tAttrs, x.attrs) {
		// The paper's §2.3 example rule: all target attribute names are
		// already present, so attribute renaming cannot help.
		return nil
	}
	missing := missingFrom(p.tAttrsSorted, x.attrs)
	var ops []fira.Op
	for _, r := range x.rels {
		for _, a := range r.Attrs() {
			if p.prune && p.tAttrs[a] {
				continue // a is already a target attribute name
			}
			for _, to := range missing {
				if p.prune && !p.renameEvidence(r, a, to) {
					continue
				}
				ops = append(ops, fira.RenameAtt{Rel: r.Name(), From: a, To: to})
			}
		}
	}
	return ops
}

// renameEvidence reports whether renaming column a of r to target attribute
// "to" is supported by the critical instances: some value under a also
// appears under "to" in the target (or either side carries no values at
// all, leaving the rename unconstrained). Without this rule every missing
// target attribute pairs with every source column and matching degenerates
// into exploring all n! assignments — the Rosetta Stone principle (§2.2)
// says the example values are exactly the evidence that disambiguates.
func (p *mappingProblem) renameEvidence(r *relation.Relation, a, to string) bool {
	tv := p.tAttrValSyms[to]
	if len(tv) == 0 || r.Len() == 0 {
		return true
	}
	j := r.AttrIndex(a)
	if j < 0 {
		return false
	}
	// Existence check over the raw symbol column: this runs once per
	// (column, missing-attribute) pair on every expanded state.
	for _, s := range r.Column(j) {
		if tv[s] {
			return true
		}
	}
	return false
}

// dropMoves proposes π̄: drop a column the target does not use. Dropping is
// never needed for containment alone, but it enables merges (Example 2).
func (p *mappingProblem) dropMoves(x *expCtx) []fira.Op {
	var ops []fira.Op
	for _, r := range x.rels {
		if r.Arity() <= 1 {
			continue
		}
		for _, a := range r.Attrs() {
			if p.prune && p.tAttrs[a] {
				continue // target needs this attribute
			}
			ops = append(ops, fira.Drop{Rel: r.Name(), Attr: a})
		}
	}
	return ops
}

// promoteMoves proposes ↑: promote a column whose values include target
// attribute names, pairing it with a value column whose values the target
// knows.
func (p *mappingProblem) promoteMoves(x *expCtx) []fira.Op {
	var ops []fira.Op
	for _, r := range x.rels {
		attrs := r.Attrs()
		for nj, nameAttr := range attrs {
			if p.prune && !p.columnFeedsTargetAttrs(r, nj) {
				continue
			}
			for vj, valAttr := range attrs {
				if vj == nj {
					continue
				}
				if p.prune && !p.columnFeedsTargetValues(r, vj) {
					continue
				}
				ops = append(ops, fira.Promote{Rel: r.Name(), NameAttr: nameAttr, ValueAttr: valAttr})
			}
		}
	}
	return ops
}

// columnFeedsTargetAttrs reports whether some value of the column is a
// target attribute name not already an attribute of r (so promotion could
// create a useful column).
func (p *mappingProblem) columnFeedsTargetAttrs(r *relation.Relation, j int) bool {
	for _, s := range r.DistinctSymbols(j) {
		if p.tAttrSymSet[s] && !r.HasAttrSymbol(s) {
			return true
		}
	}
	return false
}

// columnFeedsTargetValues reports whether some value of the column occurs
// among the target's data values.
func (p *mappingProblem) columnFeedsTargetValues(r *relation.Relation, j int) bool {
	for _, s := range r.DistinctSymbols(j) {
		if p.tValSymSet[s] {
			return true
		}
	}
	return false
}

// demoteMoves proposes ↓ when the state's metadata (relation or attribute
// names) appears among the target's data values, i.e. metadata must become
// data.
func (p *mappingProblem) demoteMoves(x *expCtx) []fira.Op {
	var ops []fira.Op
	for _, r := range x.rels {
		if r.HasAttr(fira.DemoteRelCol) || r.HasAttr(fira.DemoteAttCol) {
			continue
		}
		if p.prune {
			useful := p.tVals[r.Name()]
			for _, a := range r.Attrs() {
				if p.tVals[a] {
					useful = true
					break
				}
			}
			if !useful {
				continue
			}
		}
		ops = append(ops, fira.Demote{Rel: r.Name()})
	}
	return ops
}

// derefMoves proposes →: dereference a column whose values all name
// attributes of the relation into a fresh target attribute.
func (p *mappingProblem) derefMoves(x *expCtx) []fira.Op {
	var ops []fira.Op
	for _, r := range x.rels {
		for pj, ptr := range r.Attrs() {
			vals := r.DistinctSymbols(pj)
			if len(vals) == 0 {
				continue
			}
			allAttrs := true
			for _, s := range vals {
				if !r.HasAttrSymbol(s) {
					allAttrs = false
					break
				}
			}
			if !allAttrs {
				continue
			}
			// Every target attribute the relation lacks is a candidate
			// output column. The former sortedMissing(p.tAttrs, empty-map)
			// call here enumerated the same full set, but rebuilt and
			// re-sorted it per (relation, pointer column) pair, and read as
			// if it filtered against the relation — which only the HasAttr
			// check below actually does.
			for _, out := range p.tAttrsSorted {
				if r.HasAttr(out) {
					continue
				}
				ops = append(ops, fira.Deref{Rel: r.Name(), PtrAttr: ptr, NewAttr: out})
			}
		}
	}
	return ops
}

// partitionMoves proposes ℘ on columns whose values include target relation
// names.
func (p *mappingProblem) partitionMoves(x *expCtx) []fira.Op {
	var ops []fira.Op
	for _, r := range x.rels {
		for j, a := range r.Attrs() {
			if p.prune {
				useful := false
				for _, s := range r.DistinctSymbols(j) {
					if p.tRelSymSet[s] {
						useful = true
						break
					}
				}
				if !useful {
					continue
				}
			}
			ops = append(ops, fira.Partition{Rel: r.Name(), Attr: a})
		}
	}
	return ops
}

// productMoves proposes × between attribute-disjoint relations when some
// target relation spans attributes of both operands.
func (p *mappingProblem) productMoves(x *expCtx) []fira.Op {
	rels := x.rels
	var ops []fira.Op
	for i, l := range rels {
		for j, r := range rels {
			if i == j {
				continue
			}
			if !attrDisjoint(l, r) {
				continue
			}
			if p.prune && !p.targetSpans(l, r) {
				continue
			}
			ops = append(ops, fira.Product{Left: l.Name(), Right: r.Name()})
		}
	}
	return ops
}

func attrDisjoint(l, r *relation.Relation) bool {
	for _, a := range r.Attrs() {
		if l.HasAttr(a) {
			return false
		}
	}
	return true
}

// targetSpans reports whether some target relation uses at least one
// attribute from each operand, making their product plausibly useful.
func (p *mappingProblem) targetSpans(l, r *relation.Relation) bool {
	for _, t := range p.target.Relations() {
		hasL, hasR := false, false
		for _, a := range t.Attrs() {
			if l.HasAttr(a) {
				hasL = true
			}
			if r.HasAttr(a) {
				hasR = true
			}
		}
		if hasL && hasR {
			return true
		}
	}
	return false
}

// unionMoves proposes ∪ (outer union, the L extension inverse to ℘) when
// the state has more relations than the target needs: two relations whose
// names the target does not use, with identical attribute sets, collapse
// into one. Without pruning, any ordered pair of relations qualifies.
func (p *mappingProblem) unionMoves(x *expCtx) []fira.Op {
	if p.prune && x.db.Len() <= p.target.Len() {
		return nil
	}
	rels := x.rels
	var ops []fira.Op
	for i, l := range rels {
		for j, r := range rels {
			if i == j {
				continue
			}
			if p.prune {
				if p.tRels[l.Name()] || p.tRels[r.Name()] {
					continue // the target still wants these relations
				}
				if !sameAttrSet(l, r) {
					continue
				}
			}
			ops = append(ops, fira.Union{Left: l.Name(), Right: r.Name()})
		}
	}
	return ops
}

func sameAttrSet(l, r *relation.Relation) bool {
	if l.Arity() != r.Arity() {
		return false
	}
	for _, a := range r.Attrs() {
		if !l.HasAttr(a) {
			return false
		}
	}
	return true
}

// mergeMoves proposes µ on relations that contain absent (empty) cells —
// the only situation in which merging changes anything.
func (p *mappingProblem) mergeMoves(x *expCtx) []fira.Op {
	var ops []fira.Op
	for _, r := range x.rels {
		if p.prune && !r.HasEmptyCell() {
			continue
		}
		for _, a := range r.Attrs() {
			ops = append(ops, fira.Merge{Rel: r.Name(), Attr: a})
		}
	}
	return ops
}

// applyMoves proposes λ for each user-indicated correspondence applicable
// to a state relation (§4): the relation covers the input attributes, lacks
// the output attribute, and the output attribute is one the target wants.
func (p *mappingProblem) applyMoves(x *expCtx) []fira.Op {
	var ops []fira.Op
	for _, c := range p.corrs {
		for _, r := range x.rels {
			if c.Rel != "" && c.Rel != r.Name() {
				continue
			}
			if r.HasAttr(c.Out) {
				continue
			}
			if p.prune && !p.tAttrs[c.Out] {
				continue
			}
			ok := true
			for _, in := range c.In {
				if !r.HasAttr(in) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			ops = append(ops, fira.Apply{Rel: r.Name(), Func: c.Func, In: c.In, Out: c.Out})
		}
	}
	return ops
}
