package core

import (
	"errors"

	"tupelo/internal/fira"
	"tupelo/internal/lambda"
	"tupelo/internal/relation"
)

// Simplify removes redundant steps from a mapping expression and collapses
// rename chains, without changing the expression's result on the given
// source instance. Every rewrite is validated by re-evaluating the
// candidate expression and comparing the final database with the original
// result, so Simplify is always safe: if nothing can be proved equivalent,
// the input expression is returned unchanged.
//
// Search paths are already cycle-free, but heuristic search can interleave
// detours (e.g. a rename that later gets renamed again) that this pass
// cleans up before the expression is shown to a user or stored.
func Simplify(expr fira.Expr, source *relation.Database, reg *lambda.Registry) fira.Expr {
	want, err := expr.Eval(source, reg)
	if err != nil {
		return expr // cannot validate rewrites; keep as-is
	}
	cur := expr.Then() // copy

	// Pass 1: collapse adjacent rename chains on the same object:
	// ρ(A→B) ; ρ(B→C) becomes ρ(A→C).
	for {
		collapsed, changed := collapseRenames(cur)
		if !changed {
			break
		}
		if got, err := collapsed.Eval(source, reg); err == nil && got.Equal(want) {
			cur = collapsed
			continue
		}
		break
	}

	// Pass 2: drop individually redundant steps, re-checking the final
	// result after each removal. Repeat until no step can be removed.
	for {
		removed := false
		for i := 0; i < len(cur); i++ {
			cand := make(fira.Expr, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			got, err := cand.Eval(source, reg)
			if err == nil && got.Equal(want) {
				cur = cand
				removed = true
				break
			}
		}
		if !removed {
			break
		}
	}
	return cur
}

// collapseRenames merges the first adjacent pair of chainable renames.
func collapseRenames(expr fira.Expr) (fira.Expr, bool) {
	for i := 0; i+1 < len(expr); i++ {
		switch a := expr[i].(type) {
		case fira.RenameRel:
			if b, ok := expr[i+1].(fira.RenameRel); ok && a.To == b.From {
				out := expr.Then()
				out[i] = fira.RenameRel{From: a.From, To: b.To}
				return append(out[:i+1], out[i+2:]...), true
			}
		case fira.RenameAtt:
			if b, ok := expr[i+1].(fira.RenameAtt); ok && a.Rel == b.Rel && a.To == b.From {
				out := expr.Then()
				out[i] = fira.RenameAtt{Rel: a.Rel, From: a.From, To: b.To}
				return append(out[:i+1], out[i+2:]...), true
			}
		}
	}
	return expr, false
}

// Verify checks the core contract of a discovered mapping: evaluating the
// expression on the source instance yields a database containing the
// target instance.
func Verify(expr fira.Expr, source, target *relation.Database, reg *lambda.Registry) error {
	got, err := expr.Eval(source, reg)
	if err != nil {
		return err
	}
	if !got.Contains(target) {
		return ErrNotContained
	}
	return nil
}

// ErrNotContained reports that a mapping expression, evaluated on the
// source instance, fails to contain the target instance.
var ErrNotContained = errors.New("core: mapped source instance does not contain the target instance")
