package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"tupelo/internal/faults"
	"tupelo/internal/fira"
	"tupelo/internal/heuristic"
	"tupelo/internal/obs"
	"tupelo/internal/relation"
	"tupelo/internal/search"
)

// Result is a successful mapping discovery — or, when Partial is set, the
// best approximation an aborted best-effort run could produce.
type Result struct {
	// Expr is the discovered mapping expression in L: applied to instances
	// of the source schema it produces (a superset of) the corresponding
	// target instances. For a partial result it is instead the path to the
	// closest state seen — an L prefix of a hypothetical complete mapping.
	Expr fira.Expr
	// Stats reports the search effort; Stats.Examined is the paper's
	// performance measure.
	Stats search.Stats
	// Algorithm, Heuristic and K record the configuration used.
	Algorithm search.Algorithm
	Heuristic heuristic.Kind
	K         float64
	// Partial marks a best-effort result (Limits.BestEffort): the search
	// was aborted by a budget, deadline, or cancellation before reaching
	// the target, and Expr reaches the lowest-heuristic frontier state seen
	// instead of a complete mapping.
	Partial bool
	// PartialState is the database Expr produces from the source critical
	// instance — the approximate target. Nil for complete results.
	PartialState *relation.Database
	// PartialH is PartialState's heuristic estimate under this run's
	// (Heuristic, K); comparable only between runs sharing both.
	PartialH int
	// AbortErr is the *search.Error that truncated a best-effort run,
	// carrying the abort cause (errors.Is: ErrLimit, ErrMemory,
	// context.DeadlineExceeded, context.Canceled) and the full Stats. Nil
	// for complete results.
	AbortErr error
}

// Discover searches for a mapping expression from the source critical
// instance to the target critical instance (§2.3). Search starts at the
// source instance and ends when a state containing the target instance is
// reached; the transformation path is returned as a fira.Expr.
//
// Discovery is purely syntactic: no domain knowledge is consulted beyond
// the instances themselves and any λ correspondences in opts (§4).
//
// Discover is DiscoverContext with context.Background().
func Discover(source, target *relation.Database, opts Options) (*Result, error) {
	return DiscoverContext(context.Background(), source, target, opts)
}

// DiscoverContext is Discover under a context: cancellation and deadline
// are checked once per examined state, so a cancelled search returns
// promptly with an error wrapping ctx.Err(). The returned error is a
// *search.Error carrying the partial Stats accumulated before the
// cancellation, recoverable with errors.As.
func DiscoverContext(ctx context.Context, source, target *relation.Database, opts Options) (*Result, error) {
	if source == nil || target == nil {
		return nil, fmt.Errorf("core: nil source or target instance")
	}
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	res, derr := discoverNormalized(ctx, source, target, opts)
	// The search goroutines have all returned: if the run died in a way that
	// requested a flight dump (panic, memory, deadline), flush it now, at
	// the one point where no ring can still be written. Portfolio races
	// flush at their own join point instead.
	opts.Flight.FlushDump()
	return res, derr
}

// discoverNormalized runs discovery on already-normalized options. Split
// from DiscoverContext so the portfolio runner, which normalizes each
// member configuration up front, can launch members directly.
//
// A panic anywhere in the run — a heuristic evaluated on the search
// goroutine, the goal test, move generation — is recovered here and
// returned as a *search.Error wrapping a *search.PanicError, so discovery
// never takes down the caller. (Worker-pool panics are recovered closer to
// the site, in applyAll, and arrive as ordinary expansion errors.)
func discoverNormalized(ctx context.Context, source, target *relation.Database, opts Options) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			pe := search.NewPanicError(fmt.Sprintf("discover %s/%s", opts.Algorithm, cacheLabel(opts)), r)
			if opts.Tracer != nil {
				opts.Tracer.Event(obs.Event{Kind: obs.EvPanic, Label: pe.Origin, Err: pe})
			}
			opts.Metrics.Counter(obs.Name("search.panics", "origin", "discover")).Inc()
			opts.Flight.RequestDump("panic")
			res, err = nil, &search.Error{Err: pe}
		}
	}()
	hooks := obs.Obs{Metrics: opts.Metrics, Trace: opts.Tracer, Flight: opts.Flight}
	if hooks.Enabled() || hooks.Flight != nil {
		// Hand metrics and tracing down to the search algorithms (run
		// events, per-algorithm examined/generated counters) without
		// widening their signatures.
		ctx = obs.NewContext(ctx, hooks)
	}
	prob := newProblem(source, target, opts)
	if opts.ParallelSearch {
		// The shard fleet is the parallelism: running each shard's
		// expansions through a successor pool on top of it would
		// oversubscribe the CPUs, so each shard applies operators inline.
		// The memo switches to its sharded (locked) mode — Successors is
		// about to be called from every shard goroutine.
		prob.workers = 1
		prob.sharded = true
	}
	est := heuristic.New(opts.Heuristic, target, opts.K)
	cache := opts.Cache
	if cache == nil {
		if opts.Workers > 1 {
			cache = heuristic.NewSyncCache()
		} else {
			cache = heuristic.NewMapCache()
		}
	}
	if hooks.Enabled() {
		// Members of a portfolio that share a cache also share these
		// instruments: the label depends only on (heuristic, k), so their
		// counter names coincide in the registry.
		cache = heuristic.Instrument(cache, opts.Metrics, cacheLabel(opts), opts.Tracer)
	}
	var hEval *obs.Histogram
	if opts.Metrics != nil {
		hEval = opts.Metrics.Histogram(obs.Name("heuristic.eval.seconds", "heuristic", cacheLabel(opts)))
	}
	prob.est, prob.cache, prob.hEval = est, cache, hEval
	if !opts.DisableIncremental {
		if inc, ok := heuristic.AsIncremental(est); ok {
			prob.inc = inc
		}
	}
	var sp search.Problem = prob
	if opts.DisableCycleCheck {
		// Ablation: give every generated state a unique key, defeating the
		// path-local duplicate pruning in IDA/RBFS and the closed set in
		// A*. Only sensible together with a small Limits.MaxStates.
		sp = &uniqueKeyProblem{inner: prob}
	}
	h := cachedEstimator(est, cache, hEval, opts.FaultHook, cacheLabel(opts))
	var sres *search.Result
	var serr error
	if opts.ParallelSearch {
		// Hash-sharded single search (DESIGN.md §10): Workers shard
		// goroutines split one frontier instead of racing configurations or
		// parallelizing within expansions. normalize() restricted the
		// algorithm to the best-first pair.
		if opts.Algorithm == search.Greedy {
			sres, serr = search.ParallelGreedySearch(ctx, sp, h, opts.Limits, opts.Workers)
		} else {
			sres, serr = search.ParallelAStar(ctx, sp, h, opts.Limits, opts.Workers)
		}
	} else {
		sres, serr = search.RunContext(ctx, opts.Algorithm, sp, h, opts.Limits)
	}
	return finish(sres, serr, opts)
}

// cacheLabel names a run's heuristic cache for metrics: members of a
// portfolio agreeing on (heuristic, k) produce the same label and therefore
// aggregate into the same hit/miss counters, mirroring how they share the
// cache itself.
func cacheLabel(opts Options) string {
	return fmt.Sprintf("%s/k=%g", opts.Heuristic, opts.K)
}

// finish converts a search result into a mapping result. Under
// Limits.BestEffort a degradable abort — budget, deadline, cancellation —
// converts into a nil-error partial Result instead of a failure.
func finish(res *search.Result, err error, opts Options) (*Result, error) {
	if err != nil {
		if opts.Limits.BestEffort {
			if pr, ok := bestEffortResult(err, opts); ok {
				return pr, nil
			}
		}
		return nil, err
	}
	expr, perr := pathExpr(res.Path)
	if perr != nil {
		return nil, perr
	}
	return &Result{
		Expr:      expr,
		Stats:     res.Stats,
		Algorithm: opts.Algorithm,
		Heuristic: opts.Heuristic,
		K:         opts.K,
	}, nil
}

// pathExpr reconstructs the L expression from a move path.
func pathExpr(path []search.Move) (fira.Expr, error) {
	labels := make([]string, len(path))
	for i, m := range path {
		labels[i] = m.Label
	}
	expr, err := fira.Parse(strings.Join(labels, "\n"))
	if err != nil {
		return nil, fmt.Errorf("core: internal error reconstructing expression: %v", err)
	}
	return expr, nil
}

// bestEffortResult converts a degradable search failure into a partial
// Result: the aborted run's lowest-heuristic frontier state becomes the
// approximate target and the path to it the (prefix) mapping expression.
// Only aborts are degradable — an exhausted space (ErrNotFound) is a
// verdict that no mapping exists, and unclassified errors (including
// recovered panics) mean the partial cannot be trusted.
func bestEffortResult(err error, opts Options) (*Result, bool) {
	var serr *search.Error
	if !errors.As(err, &serr) || serr.Partial == nil {
		return nil, false
	}
	switch serr.Cause() {
	case "limit", "memory", "deadline", "canceled":
	default:
		return nil, false
	}
	ds, ok := serr.Partial.State.(*dbState)
	if !ok {
		return nil, false
	}
	expr, perr := pathExpr(serr.Partial.Path)
	if perr != nil {
		return nil, false
	}
	return &Result{
		Expr:         expr,
		Stats:        serr.Stats,
		Algorithm:    opts.Algorithm,
		Heuristic:    opts.Heuristic,
		K:            opts.K,
		Partial:      true,
		PartialState: ds.db,
		PartialH:     serr.Partial.H,
		AbortErr:     err,
	}, true
}

// BranchingFactor returns the number of successor moves of the source
// critical instance under the given options — the quantity the paper
// states is proportional to |s| + |t| (§2.3). Useful for analyzing and
// testing the successor generator without running a full search.
func BranchingFactor(source, target *relation.Database, opts Options) (int, error) {
	if source == nil || target == nil {
		return 0, fmt.Errorf("core: nil source or target instance")
	}
	opts, err := opts.normalize()
	if err != nil {
		return 0, err
	}
	prob := newProblem(source, target, opts)
	moves, err := prob.Successors(prob.Start())
	if err != nil {
		return 0, err
	}
	return len(moves), nil
}

// cachedEstimator adapts a heuristic.Evaluator to search.Heuristic through
// the run's cache, keyed by the compact state key: IDA and RBFS re-examine
// states across iterations and every estimate re-encodes the whole database
// into TNF. The successor worker pool pre-warms the same cache, so in the
// common case this is a pure lookup; a portfolio shares one cache across
// members with the same (heuristic, k), making their lookups mutual hits.
// Cache misses — the actual evaluations — are timed into hEval when set,
// and are a fault-injection site (the hook fires only on misses, mirroring
// the pre-warm path: an injected heuristic fault fires where the heuristic
// actually runs).
func cachedEstimator(est heuristic.Evaluator, cache heuristic.Cache, hEval *obs.Histogram, fault func(faults.Site, string), label string) search.Heuristic {
	return func(s search.State) int {
		ds := s.(*dbState)
		if v, ok := cache.Get(ds.key); ok {
			return v
		}
		if fault != nil {
			fault(faults.SiteHeuristicEval, label)
		}
		if hEval == nil {
			v := est.Estimate(ds.db)
			cache.Put(ds.key, v)
			return v
		}
		start := time.Now()
		v := est.Estimate(ds.db)
		hEval.Observe(time.Since(start))
		cache.Put(ds.key, v)
		return v
	}
}

// uniqueKeyProblem wraps a problem so that every state has a distinct key
// (ablation of the cycle check).
type uniqueKeyProblem struct {
	inner *mappingProblem
	n     int
}

func (p *uniqueKeyProblem) Start() search.State { return p.inner.Start() }
func (p *uniqueKeyProblem) IsGoal(s search.State) bool {
	return p.inner.IsGoal(s)
}
func (p *uniqueKeyProblem) Successors(s search.State) ([]search.Move, error) {
	moves, err := p.inner.Successors(s)
	if err != nil {
		return nil, err
	}
	for i := range moves {
		ds := moves[i].To.(*dbState)
		p.n++
		moves[i].To = &dbState{db: ds.db, key: fmt.Sprintf("%s#%d", ds.key, p.n)}
	}
	return moves, nil
}

// Apply executes the discovered expression against a database instance,
// resolving λ functions through the registry configured in opts.
func (r *Result) Apply(db *relation.Database, opts Options) (*relation.Database, error) {
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	return r.Expr.Eval(db, opts.Registry)
}
