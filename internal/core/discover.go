package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"tupelo/internal/fira"
	"tupelo/internal/heuristic"
	"tupelo/internal/obs"
	"tupelo/internal/relation"
	"tupelo/internal/search"
)

// Result is a successful mapping discovery.
type Result struct {
	// Expr is the discovered mapping expression in L: applied to instances
	// of the source schema it produces (a superset of) the corresponding
	// target instances.
	Expr fira.Expr
	// Stats reports the search effort; Stats.Examined is the paper's
	// performance measure.
	Stats search.Stats
	// Algorithm, Heuristic and K record the configuration used.
	Algorithm search.Algorithm
	Heuristic heuristic.Kind
	K         float64
}

// Discover searches for a mapping expression from the source critical
// instance to the target critical instance (§2.3). Search starts at the
// source instance and ends when a state containing the target instance is
// reached; the transformation path is returned as a fira.Expr.
//
// Discovery is purely syntactic: no domain knowledge is consulted beyond
// the instances themselves and any λ correspondences in opts (§4).
//
// Discover is DiscoverContext with context.Background().
func Discover(source, target *relation.Database, opts Options) (*Result, error) {
	return DiscoverContext(context.Background(), source, target, opts)
}

// DiscoverContext is Discover under a context: cancellation and deadline
// are checked once per examined state, so a cancelled search returns
// promptly with an error wrapping ctx.Err(). The returned error is a
// *search.Error carrying the partial Stats accumulated before the
// cancellation, recoverable with errors.As.
func DiscoverContext(ctx context.Context, source, target *relation.Database, opts Options) (*Result, error) {
	if source == nil || target == nil {
		return nil, fmt.Errorf("core: nil source or target instance")
	}
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	return discoverNormalized(ctx, source, target, opts)
}

// discoverNormalized runs discovery on already-normalized options. Split
// from DiscoverContext so the portfolio runner, which normalizes each
// member configuration up front, can launch members directly.
func discoverNormalized(ctx context.Context, source, target *relation.Database, opts Options) (*Result, error) {
	hooks := obs.Obs{Metrics: opts.Metrics, Trace: opts.Tracer}
	if hooks.Enabled() {
		// Hand metrics and tracing down to the search algorithms (run
		// events, per-algorithm examined/generated counters) without
		// widening their signatures.
		ctx = obs.NewContext(ctx, hooks)
	}
	prob := newProblem(source, target, opts)
	est := heuristic.New(opts.Heuristic, target, opts.K)
	cache := opts.Cache
	if cache == nil {
		if opts.Workers > 1 {
			cache = heuristic.NewSyncCache()
		} else {
			cache = heuristic.NewMapCache()
		}
	}
	if hooks.Enabled() {
		// Members of a portfolio that share a cache also share these
		// instruments: the label depends only on (heuristic, k), so their
		// counter names coincide in the registry.
		cache = heuristic.Instrument(cache, opts.Metrics, cacheLabel(opts), opts.Tracer)
	}
	var hEval *obs.Histogram
	if opts.Metrics != nil {
		hEval = opts.Metrics.Histogram(obs.Name("heuristic.eval.seconds", "heuristic", cacheLabel(opts)))
	}
	prob.est, prob.cache, prob.hEval = est, cache, hEval
	var sp search.Problem = prob
	if opts.DisableCycleCheck {
		// Ablation: give every generated state a unique key, defeating the
		// path-local duplicate pruning in IDA/RBFS and the closed set in
		// A*. Only sensible together with a small Limits.MaxStates.
		sp = &uniqueKeyProblem{inner: prob}
	}
	res, err := search.RunContext(ctx, opts.Algorithm, sp, cachedEstimator(est, cache, hEval), opts.Limits)
	return finish(res, err, opts)
}

// cacheLabel names a run's heuristic cache for metrics: members of a
// portfolio agreeing on (heuristic, k) produce the same label and therefore
// aggregate into the same hit/miss counters, mirroring how they share the
// cache itself.
func cacheLabel(opts Options) string {
	return fmt.Sprintf("%s/k=%g", opts.Heuristic, opts.K)
}

// finish converts a search result into a mapping result.
func finish(res *search.Result, err error, opts Options) (*Result, error) {
	if err != nil {
		return nil, err
	}
	labels := make([]string, len(res.Path))
	for i, m := range res.Path {
		labels[i] = m.Label
	}
	expr, perr := fira.Parse(strings.Join(labels, "\n"))
	if perr != nil {
		return nil, fmt.Errorf("core: internal error reconstructing expression: %v", perr)
	}
	return &Result{
		Expr:      expr,
		Stats:     res.Stats,
		Algorithm: opts.Algorithm,
		Heuristic: opts.Heuristic,
		K:         opts.K,
	}, nil
}

// BranchingFactor returns the number of successor moves of the source
// critical instance under the given options — the quantity the paper
// states is proportional to |s| + |t| (§2.3). Useful for analyzing and
// testing the successor generator without running a full search.
func BranchingFactor(source, target *relation.Database, opts Options) (int, error) {
	if source == nil || target == nil {
		return 0, fmt.Errorf("core: nil source or target instance")
	}
	opts, err := opts.normalize()
	if err != nil {
		return 0, err
	}
	prob := newProblem(source, target, opts)
	moves, err := prob.Successors(prob.Start())
	if err != nil {
		return 0, err
	}
	return len(moves), nil
}

// cachedEstimator adapts a heuristic.Estimator to search.Heuristic through
// the run's cache, keyed by state fingerprint: IDA and RBFS re-examine
// states across iterations and every estimate re-encodes the whole database
// into TNF. The successor worker pool pre-warms the same cache, so in the
// common case this is a pure lookup; a portfolio shares one cache across
// members with the same (heuristic, k), making their lookups mutual hits.
// Cache misses — the actual evaluations — are timed into hEval when set.
func cachedEstimator(est *heuristic.Estimator, cache heuristic.Cache, hEval *obs.Histogram) search.Heuristic {
	return func(s search.State) int {
		ds := s.(*dbState)
		if v, ok := cache.Get(ds.key); ok {
			return v
		}
		if hEval == nil {
			v := est.Estimate(ds.db)
			cache.Put(ds.key, v)
			return v
		}
		start := time.Now()
		v := est.Estimate(ds.db)
		hEval.Observe(time.Since(start))
		cache.Put(ds.key, v)
		return v
	}
}

// uniqueKeyProblem wraps a problem so that every state has a distinct key
// (ablation of the cycle check).
type uniqueKeyProblem struct {
	inner *mappingProblem
	n     int
}

func (p *uniqueKeyProblem) Start() search.State { return p.inner.Start() }
func (p *uniqueKeyProblem) IsGoal(s search.State) bool {
	return p.inner.IsGoal(s)
}
func (p *uniqueKeyProblem) Successors(s search.State) ([]search.Move, error) {
	moves, err := p.inner.Successors(s)
	if err != nil {
		return nil, err
	}
	for i := range moves {
		ds := moves[i].To.(*dbState)
		p.n++
		moves[i].To = &dbState{db: ds.db, key: fmt.Sprintf("%s#%d", ds.key, p.n)}
	}
	return moves, nil
}

// Apply executes the discovered expression against a database instance,
// resolving λ functions through the registry configured in opts.
func (r *Result) Apply(db *relation.Database, opts Options) (*relation.Database, error) {
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	return r.Expr.Eval(db, opts.Registry)
}
