package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"tupelo/internal/heuristic"
	"tupelo/internal/obs"
	"tupelo/internal/relation"
	"tupelo/internal/search"
)

// PortfolioConfig names one member of a portfolio: an (algorithm,
// heuristic, k) triple. K = 0 means the paper's published constant for the
// pair.
type PortfolioConfig struct {
	Algorithm search.Algorithm
	Heuristic heuristic.Kind
	K         float64
}

// String renders the config as "algo/heuristic" or "algo/heuristic/k=N".
func (c PortfolioConfig) String() string {
	s := fmt.Sprintf("%s/%s", c.Algorithm, c.Heuristic)
	if c.K != 0 {
		s += fmt.Sprintf("/k=%g", c.K)
	}
	return s
}

// DefaultPortfolio returns the racing lineup used when the caller supplies
// none: the paper's two serious algorithms paired with its best vector
// heuristic, plus the strongest admissible-flavored set heuristics as
// hedges on instances where cosine's landscape misleads.
func DefaultPortfolio() []PortfolioConfig {
	return []PortfolioConfig{
		{Algorithm: search.RBFS, Heuristic: heuristic.Cosine},
		{Algorithm: search.IDA, Heuristic: heuristic.Cosine},
		{Algorithm: search.RBFS, Heuristic: heuristic.H3},
		{Algorithm: search.IDA, Heuristic: heuristic.H1},
	}
}

// PortfolioOptions configures DiscoverPortfolio.
type PortfolioOptions struct {
	// Configs are the member configurations to race. Empty means
	// DefaultPortfolio().
	Configs []PortfolioConfig
	// Options is the base configuration shared by every member: Limits,
	// Registry, Correspondences, pruning flags and the total Workers
	// budget, which is divided evenly among members (each gets at least
	// one). Algorithm, Heuristic, K and Cache are per-member concerns and
	// are overridden. Tracer and Metrics are shared by every member —
	// tracers are concurrency-safe by contract, so a portfolio race
	// produces one interleaved event stream with member start/win/lose/
	// cancel markers delimiting each member's run events.
	Options Options
}

// PortfolioRun reports one member's outcome.
type PortfolioRun struct {
	// Config is the member's configuration with K resolved.
	Config PortfolioConfig
	// Stats is the member's search effort — partial if the member was
	// cancelled when another won.
	Stats search.Stats
	// Err is nil for the winner, a wrapped context.Canceled for members
	// cancelled by the winner, and the member's own failure otherwise.
	Err error
	// Duration is the member's wall-clock time until return.
	Duration time.Duration
}

// PortfolioResult is a successful portfolio discovery: the winning member's
// Result plus the outcome of every member.
type PortfolioResult struct {
	*Result
	// Winner is the configuration that produced Result.
	Winner PortfolioConfig
	// Runs reports every member in Configs order.
	Runs []PortfolioRun
}

// cacheKey groups portfolio members that compute identical heuristic
// values: estimates depend on the heuristic kind and its resolved scaling
// constant (the target is fixed for the whole portfolio), so members
// agreeing on both share one concurrency-safe cache and each TNF
// fingerprint is encoded once for all of them.
type cacheKey struct {
	kind heuristic.Kind
	k    float64
}

// DiscoverPortfolio races the member configurations over independent
// copies of the search problem, each on its own goroutine with its own
// share of the worker budget. The first member to find a verified mapping
// wins; the rest are cancelled through the shared context and observed
// until they return, so the per-member stats are complete. Members with
// the same (heuristic, k) share a heuristic cache.
//
// If every member fails, the error is the parent context's error when it
// was cancelled, and otherwise the most informative member error.
func DiscoverPortfolio(ctx context.Context, source, target *relation.Database, popts PortfolioOptions) (*PortfolioResult, error) {
	if source == nil || target == nil {
		return nil, fmt.Errorf("core: nil source or target instance")
	}
	configs := popts.Configs
	if len(configs) == 0 {
		configs = DefaultPortfolio()
	}
	base := popts.Options
	base.Cache = nil
	tracer := base.Tracer
	if tracer == nil {
		tracer = obs.Nop
	}
	memberTimer := func(cfg PortfolioConfig) *obs.Timer {
		return base.Metrics.Timer(obs.Name("portfolio.member.duration", "member", cfg.String()))
	}
	totalWorkers := base.Workers
	if totalWorkers <= 0 {
		totalWorkers = runtime.GOMAXPROCS(0)
	}
	perMember := totalWorkers / len(configs)
	if perMember < 1 {
		perMember = 1
	}

	type member struct {
		cfg  PortfolioConfig
		opts Options
	}
	members := make([]member, len(configs))
	caches := make(map[cacheKey]heuristic.Cache)
	for i, cfg := range configs {
		o := base
		o.Algorithm = cfg.Algorithm
		o.Heuristic = cfg.Heuristic
		o.K = cfg.K
		o.Workers = perMember
		o, err := o.normalize()
		if err != nil {
			return nil, fmt.Errorf("core: portfolio member %s: %w", cfg, err)
		}
		key := cacheKey{kind: o.Heuristic, k: o.K}
		cache := caches[key]
		if cache == nil {
			cache = heuristic.NewSyncCache()
			caches[key] = cache
		}
		o.Cache = cache
		members[i] = member{
			cfg:  PortfolioConfig{Algorithm: o.Algorithm, Heuristic: o.Heuristic, K: o.K},
			opts: o,
		}
	}

	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		idx int
		res *Result
		err error
		dur time.Duration
	}
	ch := make(chan outcome, len(members))
	// Spawn in reverse order: the scheduler favors the most recently
	// spawned goroutine, and earlier configs are listed first because they
	// are expected to win, so they should reach a CPU first when the
	// machine has fewer CPUs than members.
	for i := len(members) - 1; i >= 0; i-- {
		m := members[i]
		go func(i int, m member) {
			tracer.Event(obs.Event{Kind: obs.EvMemberStart, Label: m.cfg.String(), N: len(members)})
			start := time.Now()
			res, err := discoverNormalized(raceCtx, source, target, m.opts)
			if err == nil {
				// End the race from the winning goroutine itself: waiting
				// for the collector below to be scheduled can cost a full
				// preemption interval while every CPU runs losing members,
				// dwarfing the search time on small instances.
				cancel()
			}
			ch <- outcome{idx: i, res: res, err: err, dur: time.Since(start)}
		}(i, m)
	}

	runs := make([]PortfolioRun, len(members))
	var winner *Result
	var winnerCfg PortfolioConfig
	var bestErr error
	for range members {
		o := <-ch
		run := &runs[o.idx]
		run.Config = members[o.idx].cfg
		run.Duration = o.dur
		memberTimer(run.Config).Observe(o.dur)
		if o.err != nil {
			run.Err = o.err
			var serr *search.Error
			if errors.As(o.err, &serr) {
				run.Stats = serr.Stats
			}
			if errors.Is(o.err, context.Canceled) {
				tracer.Event(obs.Event{Kind: obs.EvMemberCancel, Label: run.Config.String(), N: run.Stats.Examined, Elapsed: o.dur})
			} else {
				tracer.Event(obs.Event{Kind: obs.EvMemberLose, Label: run.Config.String(), N: run.Stats.Examined, Err: o.err, Elapsed: o.dur})
			}
			if bestErr == nil || preferError(o.err, bestErr) {
				bestErr = o.err
			}
			continue
		}
		run.Stats = o.res.Stats
		if winner != nil {
			// A slower member also succeeded before noticing the cancel; it
			// still lost the race, so mark it cancelled in the stream.
			tracer.Event(obs.Event{Kind: obs.EvMemberCancel, Label: run.Config.String(), N: run.Stats.Examined, Elapsed: o.dur})
			continue
		}
		if verr := Verify(o.res.Expr, source, target, members[o.idx].opts.Registry); verr != nil {
			// Should be unreachable — the goal test is containment — but a
			// portfolio promises a *verified* winner, so check anyway.
			run.Err = fmt.Errorf("core: portfolio member %s returned unverifiable mapping: %w", run.Config, verr)
			bestErr = run.Err
			tracer.Event(obs.Event{Kind: obs.EvMemberLose, Label: run.Config.String(), N: run.Stats.Examined, Err: run.Err, Elapsed: o.dur})
			continue
		}
		winner = o.res
		winnerCfg = run.Config
		base.Metrics.Counter(obs.Name("portfolio.wins", "member", winnerCfg.String())).Inc()
		tracer.Event(obs.Event{Kind: obs.EvMemberWin, Label: winnerCfg.String(), N: run.Stats.Examined, Goal: true, Elapsed: o.dur})
		cancel() // losers stop at their next examined state
	}

	if winner == nil {
		if err := ctx.Err(); err != nil {
			return nil, &search.Error{Err: err}
		}
		if bestErr == nil {
			bestErr = search.ErrNotFound
		}
		return nil, bestErr
	}
	return &PortfolioResult{Result: winner, Winner: winnerCfg, Runs: runs}, nil
}

// preferError ranks member failures by how informative they are to the
// caller: a member's own verdict (no mapping exists, budget exhausted)
// beats a cancellation that merely reflects another member's failure.
func preferError(candidate, incumbent error) bool {
	rank := func(err error) int {
		switch {
		case errors.Is(err, search.ErrNotFound):
			return 3
		case errors.Is(err, search.ErrLimit):
			return 2
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			return 0
		default:
			return 1
		}
	}
	return rank(candidate) > rank(incumbent)
}
