package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"tupelo/internal/heuristic"
	"tupelo/internal/obs"
	"tupelo/internal/relation"
	"tupelo/internal/search"
)

// PortfolioConfig names one member of a portfolio: an (algorithm,
// heuristic, k) triple. K = 0 means the paper's published constant for the
// pair.
type PortfolioConfig struct {
	Algorithm search.Algorithm
	Heuristic heuristic.Kind
	K         float64
}

// String renders the config as "algo/heuristic" or "algo/heuristic/k=N".
func (c PortfolioConfig) String() string {
	s := fmt.Sprintf("%s/%s", c.Algorithm, c.Heuristic)
	if c.K != 0 {
		s += fmt.Sprintf("/k=%g", c.K)
	}
	return s
}

// DefaultPortfolio returns the racing lineup used when the caller supplies
// none: the paper's two serious algorithms paired with its best vector
// heuristic, plus the strongest admissible-flavored set heuristics as
// hedges on instances where cosine's landscape misleads.
func DefaultPortfolio() []PortfolioConfig {
	return []PortfolioConfig{
		{Algorithm: search.RBFS, Heuristic: heuristic.Cosine},
		{Algorithm: search.IDA, Heuristic: heuristic.Cosine},
		{Algorithm: search.RBFS, Heuristic: heuristic.H3},
		{Algorithm: search.IDA, Heuristic: heuristic.H1},
	}
}

// PortfolioOptions configures DiscoverPortfolio.
type PortfolioOptions struct {
	// Configs are the member configurations to race. Empty means
	// DefaultPortfolio().
	Configs []PortfolioConfig
	// Options is the base configuration shared by every member: Limits,
	// Registry, Correspondences, pruning flags and the total Workers
	// budget, which is divided evenly among members (each gets at least
	// one). Algorithm, Heuristic, K and Cache are per-member concerns and
	// are overridden. Tracer and Metrics are shared by every member —
	// tracers are concurrency-safe by contract, so a portfolio race
	// produces one interleaved event stream with member start/win/lose/
	// cancel markers delimiting each member's run events. Every member
	// runs with Limits.Cooperative set (racing peers yield to each other);
	// a base ParallelSearch request applies to best-first members only —
	// each such member shards its per-member worker share — while tree-
	// search members race sequentially.
	Options Options
	// MaxRetries is the total number of member restarts the race may spend
	// recovering failed members before conceding, shared across all member
	// slots. A member that fails with a recovered panic is relaunched on a
	// hedge configuration — the first DefaultPortfolio entry not already
	// racing, when one exists — because a deterministic panic would simply
	// recur on the same (heuristic, k); other unclassified member errors
	// relaunch the same configuration. Deterministic verdicts (exhausted
	// space, budget and deadline aborts) and cancellations are never
	// retried. 0 disables retries.
	MaxRetries int
	// RetryBackoff scales the delay before a member's restarts: the delay
	// ceiling doubles with each further restart of the same slot, capped at
	// 100ms so a crashy member cannot stall the race, and the actual delay
	// is drawn uniformly from [0, ceiling] (full jitter) so hedged retries
	// across slots — or across a fleet of processes replaying the same
	// failure — do not synchronize. 0 means a 5ms initial ceiling.
	RetryBackoff time.Duration
	// RetrySeed seeds the jitter's deterministic random source, so a fixed
	// seed reproduces the exact restart schedule under test. 0 means seed 1;
	// callers wanting decorrelated schedules across processes (the serve
	// daemon) pass their own per-process seed.
	RetrySeed int64
}

// PortfolioRun reports one member slot's outcome.
type PortfolioRun struct {
	// Config is the member's configuration with K resolved. Under the
	// retry policy a slot relaunched on a hedge reports the hedge — the
	// configuration that actually produced Stats and Err.
	Config PortfolioConfig
	// Stats is the member's search effort on its last attempt — partial if
	// the member was cancelled when another won.
	Stats search.Stats
	// Err is nil for the winner, a wrapped context.Canceled for members
	// cancelled by the winner, and the member's own failure otherwise. A
	// best-effort member that degraded to a partial mapping reports the
	// abort that truncated it.
	Err error
	// Duration is the slot's wall-clock time until return, summed over
	// attempts (excluding retry backoff).
	Duration time.Duration
	// Attempts is the number of times the slot ran; greater than 1 only
	// under the retry policy.
	Attempts int
}

// PortfolioResult is a successful portfolio discovery: the winning member's
// Result plus the outcome of every member. Under Limits.BestEffort a race
// with no complete winner degrades to the best partial mapping any member
// produced (Result.Partial is set and Winner names the member it came
// from).
type PortfolioResult struct {
	*Result
	// Winner is the configuration that produced Result.
	Winner PortfolioConfig
	// Runs reports every member in Configs order.
	Runs []PortfolioRun
}

// cacheKey groups portfolio members that compute identical heuristic
// values: estimates depend on the heuristic kind and its resolved scaling
// constant (the target is fixed for the whole portfolio), so members
// agreeing on both share one concurrency-safe cache and each TNF
// fingerprint is encoded once for all of them.
type cacheKey struct {
	kind heuristic.Kind
	k    float64
}

// DiscoverPortfolio races the member configurations over independent
// copies of the search problem, each on its own goroutine with its own
// share of the worker budget. The first member to find a verified mapping
// wins; the rest are cancelled through the shared context and observed
// until they return, so the per-member stats are complete. Members with
// the same (heuristic, k) share a heuristic cache.
//
// If every member fails, the error is the parent context's error when it
// was cancelled, and otherwise the most informative member error.
func DiscoverPortfolio(ctx context.Context, source, target *relation.Database, popts PortfolioOptions) (*PortfolioResult, error) {
	if source == nil || target == nil {
		return nil, fmt.Errorf("core: nil source or target instance")
	}
	configs := popts.Configs
	if len(configs) == 0 {
		configs = DefaultPortfolio()
	}
	base := popts.Options
	base.Cache = nil
	tracer := base.Tracer
	if tracer == nil {
		tracer = obs.Nop
	}
	memberTimer := func(cfg PortfolioConfig) *obs.Timer {
		return base.Metrics.Timer(obs.Name("portfolio.member.duration", "member", cfg.String()))
	}
	totalWorkers := base.Workers
	if totalWorkers <= 0 {
		totalWorkers = runtime.GOMAXPROCS(0)
	}
	perMember := totalWorkers / len(configs)
	if perMember < 1 {
		perMember = 1
	}

	type member struct {
		cfg  PortfolioConfig
		opts Options
	}
	caches := make(map[cacheKey]heuristic.Cache)
	buildMember := func(cfg PortfolioConfig) (member, error) {
		o := base
		o.Algorithm = cfg.Algorithm
		o.Heuristic = cfg.Heuristic
		o.K = cfg.K
		o.Workers = perMember
		// Racing members are CPU-bound peers: the cooperative yield in the
		// search loop keeps one member from starving the others on fewer
		// cores than members. Solitary (non-portfolio) runs never pay it.
		o.Limits.Cooperative = true
		// A base ParallelSearch request survives only on members whose
		// algorithm the sharded engine supports; tree-search members race
		// in their normal sequential form rather than erroring out.
		o.ParallelSearch = base.ParallelSearch &&
			(cfg.Algorithm == search.AStar || cfg.Algorithm == search.Greedy)
		o, err := o.normalize()
		if err != nil {
			return member{}, fmt.Errorf("core: portfolio member %s: %w", cfg, err)
		}
		key := cacheKey{kind: o.Heuristic, k: o.K}
		cache := caches[key]
		if cache == nil {
			cache = heuristic.NewSyncCache()
			caches[key] = cache
		}
		o.Cache = cache
		return member{
			cfg:  PortfolioConfig{Algorithm: o.Algorithm, Heuristic: o.Heuristic, K: o.K},
			opts: o,
		}, nil
	}
	members := make([]member, len(configs))
	for i, cfg := range configs {
		m, err := buildMember(cfg)
		if err != nil {
			return nil, err
		}
		members[i] = m
	}

	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		idx     int
		attempt int
		res     *Result
		err     error
		dur     time.Duration
	}
	// Buffered for every possible send — one per attempt — so no goroutine
	// ever blocks on a collector that has already returned.
	ch := make(chan outcome, len(members)+popts.MaxRetries)
	launch := func(idx, attempt int, m member, delay time.Duration) {
		go func() {
			var start time.Time
			defer func() {
				// Belt over applyAll's and discoverNormalized's braces: a
				// panic in this goroutine's own spine (tracing, timing) must
				// also lose the race, not kill the process.
				if r := recover(); r != nil {
					pe := search.NewPanicError("portfolio member "+m.cfg.String(), r)
					tracer.Event(obs.Event{Kind: obs.EvPanic, Label: m.cfg.String(), Err: pe})
					var dur time.Duration
					if !start.IsZero() {
						dur = time.Since(start)
					}
					ch <- outcome{idx: idx, attempt: attempt, err: &search.Error{Err: pe}, dur: dur}
				}
			}()
			if delay > 0 {
				t := time.NewTimer(delay)
				select {
				case <-raceCtx.Done():
					t.Stop()
					ch <- outcome{idx: idx, attempt: attempt, err: &search.Error{Err: raceCtx.Err()}}
					return
				case <-t.C:
				}
			}
			tracer.Event(obs.Event{Kind: obs.EvMemberStart, Label: m.cfg.String(), N: len(members)})
			start = time.Now()
			res, err := discoverNormalized(raceCtx, source, target, m.opts)
			if err == nil && !res.Partial {
				// End the race from the winning goroutine itself: waiting
				// for the collector below to be scheduled can cost a full
				// preemption interval while every CPU runs losing members,
				// dwarfing the search time on small instances. A partial
				// (best-effort) result is not a win and must not end the
				// race — another member may still find a complete mapping.
				cancel()
			}
			ch <- outcome{idx: idx, attempt: attempt, res: res, err: err, dur: time.Since(start)}
		}()
	}
	// Spawn in reverse order: the scheduler favors the most recently
	// spawned goroutine, and earlier configs are listed first because they
	// are expected to win, so they should reach a CPU first when the
	// machine has fewer CPUs than members.
	for i := len(members) - 1; i >= 0; i-- {
		launch(i, 0, members[i], 0)
	}

	inUse := func(cfg PortfolioConfig) bool {
		for _, m := range members {
			if m.cfg == cfg {
				return true
			}
		}
		return false
	}
	// hedge builds a replacement member for a panicked slot: the first
	// default-lineup configuration not already racing. Rerunning the exact
	// (heuristic, k) that just panicked only helps when the panic was
	// transient; a hedge also covers the deterministic case.
	hedge := func() (member, bool) {
		for _, cfg := range DefaultPortfolio() {
			m, err := buildMember(cfg)
			if err != nil || inUse(m.cfg) {
				continue
			}
			return m, true
		}
		return member{}, false
	}
	retryDelay := popts.RetryBackoff
	if retryDelay <= 0 {
		retryDelay = defaultRetryBackoff
	}
	seed := popts.RetrySeed
	if seed == 0 {
		seed = 1
	}
	// Drawn only from the collector loop below, so the source needs no lock.
	retryRNG := rand.New(rand.NewSource(seed))

	runs := make([]PortfolioRun, len(members))
	partials := make([]*Result, len(members))
	retriesLeft := popts.MaxRetries
	outstanding := len(members)
	var winner *Result
	var winnerCfg PortfolioConfig
	var bestErr error
	for outstanding > 0 {
		o := <-ch
		run := &runs[o.idx]
		run.Config = members[o.idx].cfg
		run.Attempts = o.attempt + 1
		run.Duration += o.dur
		memberTimer(run.Config).Observe(o.dur)
		// A best-effort member that degraded reports the abort that
		// truncated it; for race bookkeeping it is a failed member whose
		// partial is kept aside for the no-winner fallback.
		fail := o.err
		if fail == nil && o.res.Partial {
			fail = o.res.AbortErr
			partials[o.idx] = o.res
		}
		if fail != nil {
			run.Err = fail
			var serr *search.Error
			if errors.As(fail, &serr) {
				run.Stats = serr.Stats
			}
			if winner == nil && retriesLeft > 0 && raceCtx.Err() == nil && retriable(fail) {
				retriesLeft--
				next := members[o.idx]
				if isPanicErr(fail) {
					if hm, ok := hedge(); ok {
						next = hm
						members[o.idx] = hm
					}
				}
				base.Metrics.Counter(obs.Name("portfolio.retries", "member", next.cfg.String())).Inc()
				launch(o.idx, o.attempt+1, next, retryBackoff(retryRNG, retryDelay, o.attempt))
				continue // outstanding unchanged: the slot runs again
			}
			if errors.Is(fail, context.Canceled) {
				tracer.Event(obs.Event{Kind: obs.EvMemberCancel, Label: run.Config.String(), N: run.Stats.Examined, Elapsed: o.dur})
			} else {
				tracer.Event(obs.Event{Kind: obs.EvMemberLose, Label: run.Config.String(), N: run.Stats.Examined, Err: fail, Elapsed: o.dur})
			}
			if bestErr == nil || preferError(fail, bestErr) {
				bestErr = fail
			}
			outstanding--
			continue
		}
		run.Stats = o.res.Stats
		outstanding--
		if winner != nil {
			// A slower member also succeeded before noticing the cancel; it
			// still lost the race, so mark it cancelled in the stream.
			tracer.Event(obs.Event{Kind: obs.EvMemberCancel, Label: run.Config.String(), N: run.Stats.Examined, Elapsed: o.dur})
			continue
		}
		if verr := Verify(o.res.Expr, source, target, members[o.idx].opts.Registry); verr != nil {
			// Should be unreachable — the goal test is containment — but a
			// portfolio promises a *verified* winner, so check anyway.
			run.Err = fmt.Errorf("core: portfolio member %s returned unverifiable mapping: %w", run.Config, verr)
			bestErr = run.Err
			tracer.Event(obs.Event{Kind: obs.EvMemberLose, Label: run.Config.String(), N: run.Stats.Examined, Err: run.Err, Elapsed: o.dur})
			continue
		}
		winner = o.res
		winnerCfg = run.Config
		base.Metrics.Counter(obs.Name("portfolio.wins", "member", winnerCfg.String())).Inc()
		tracer.Event(obs.Event{Kind: obs.EvMemberWin, Label: winnerCfg.String(), N: run.Stats.Examined, Goal: true, Elapsed: o.dur})
		cancel() // losers stop at their next examined state
	}

	// Every member has reported (cancelled members included), so no search
	// goroutine can still write a flight ring: flush a requested dump here,
	// the race's join point.
	base.Flight.FlushDump()

	if winner == nil {
		if base.Limits.BestEffort {
			if best, ok := bestPartial(partials, target, base); ok {
				base.Metrics.Counter(obs.Name("portfolio.partial", "member", members[best].cfg.String())).Inc()
				return &PortfolioResult{Result: partials[best], Winner: members[best].cfg, Runs: runs}, nil
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, &search.Error{Err: err}
		}
		if bestErr == nil {
			bestErr = search.ErrNotFound
		}
		return nil, bestErr
	}
	return &PortfolioResult{Result: winner, Winner: winnerCfg, Runs: runs}, nil
}

const (
	// defaultRetryBackoff is the delay before a member's first restart when
	// PortfolioOptions.RetryBackoff is unset.
	defaultRetryBackoff = 5 * time.Millisecond
	// maxRetryBackoff caps the exponential restart delay.
	maxRetryBackoff = 100 * time.Millisecond
)

// retryBackoff is the delay before relaunching a slot whose attempt-th run
// (0-based) just failed: full jitter over a capped exponential ceiling —
// uniform in [0, min(base<<attempt, maxRetryBackoff)]. The ceiling keeps a
// crashy member from stalling the race; the jitter keeps simultaneous
// failures (several slots, or several processes replaying one fault) from
// relaunching in lockstep.
func retryBackoff(rng *rand.Rand, base time.Duration, attempt int) time.Duration {
	ceiling := maxRetryBackoff
	if attempt < 10 {
		if d := base << attempt; d > 0 && d < maxRetryBackoff {
			ceiling = d
		}
	}
	return time.Duration(rng.Int63n(int64(ceiling) + 1))
}

// isPanicErr reports whether the member failure is a recovered panic.
func isPanicErr(err error) bool {
	var pe *search.PanicError
	return errors.As(err, &pe)
}

// retriable reports whether a member failure is worth a restart: recovered
// panics and unclassified problem errors are (the fault may be transient,
// and a panicked slot restarts on a hedge config for the deterministic
// case); a member's own verdict — exhausted space, budget, deadline — is
// deterministic and would only recur, and cancellations mean the race is
// already over.
func retriable(err error) bool {
	if isPanicErr(err) {
		return true
	}
	if errors.Is(err, search.ErrNotFound) || errors.Is(err, search.ErrLimit) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// bestPartial picks the index of the best member partial. Members ran
// different heuristics, whose values are mutually incomparable, so every
// partial state is re-scored under one estimator — the base options'
// resolved heuristic against the shared target — and the lowest estimate
// wins; ties keep the earliest member, matching lineup priority.
func bestPartial(partials []*Result, target *relation.Database, base Options) (int, bool) {
	b, err := base.normalize()
	if err != nil {
		return 0, false
	}
	est := heuristic.New(b.Heuristic, target, b.K)
	best, bestScore := -1, 0
	for i, p := range partials {
		if p == nil || p.PartialState == nil {
			continue
		}
		score := est.Estimate(p.PartialState)
		if best < 0 || score < bestScore {
			best, bestScore = i, score
		}
	}
	return best, best >= 0
}

// preferError ranks member failures by how informative they are to the
// caller: a member's own verdict (no mapping exists, budget exhausted)
// beats a cancellation that merely reflects another member's failure.
func preferError(candidate, incumbent error) bool {
	rank := func(err error) int {
		switch {
		case errors.Is(err, search.ErrNotFound):
			return 3
		case errors.Is(err, search.ErrLimit):
			return 2
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			return 0
		default:
			return 1
		}
	}
	return rank(candidate) > rank(incumbent)
}
