package core

import (
	"errors"
	"fmt"
	"testing"

	"tupelo/internal/fira"
	"tupelo/internal/heuristic"
	"tupelo/internal/lambda"
	"tupelo/internal/relation"
	"tupelo/internal/search"
)

func flightsA() *relation.Database {
	return relation.MustDatabase(
		relation.MustNew("Flights", []string{"Carrier", "Fee", "ATL29", "ORD17"},
			relation.Tuple{"AirEast", "15", "100", "110"},
			relation.Tuple{"JetWest", "16", "200", "220"},
		),
	)
}

func flightsB() *relation.Database {
	return relation.MustDatabase(
		relation.MustNew("Prices", []string{"Carrier", "Route", "Cost", "AgentFee"},
			relation.Tuple{"AirEast", "ATL29", "100", "15"},
			relation.Tuple{"JetWest", "ATL29", "200", "16"},
			relation.Tuple{"AirEast", "ORD17", "110", "15"},
			relation.Tuple{"JetWest", "ORD17", "220", "16"},
		),
	)
}

func TestDiscoverIdentity(t *testing.T) {
	db := flightsA()
	res, err := Discover(db, db.Clone(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Expr) != 0 {
		t.Fatalf("identity mapping should be empty, got %s", res.Expr)
	}
	if res.Stats.Examined != 1 {
		t.Fatalf("identity should examine exactly the start state, got %d", res.Stats.Examined)
	}
}

func TestDiscoverSchemaMatching(t *testing.T) {
	src := relation.MustDatabase(
		relation.MustNew("R", []string{"A1", "A2", "A3"},
			relation.Tuple{"a1", "a2", "a3"},
		),
	)
	tgt := relation.MustDatabase(
		relation.MustNew("R", []string{"B1", "B2", "B3"},
			relation.Tuple{"a1", "a2", "a3"},
		),
	)
	for _, algo := range []search.Algorithm{search.IDA, search.RBFS} {
		for _, h := range []heuristic.Kind{heuristic.H1, heuristic.Cosine} {
			name := fmt.Sprintf("%s/%s", algo, h)
			t.Run(name, func(t *testing.T) {
				res, err := Discover(src, tgt, Options{Algorithm: algo, Heuristic: h})
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Expr) != 3 {
					t.Fatalf("expected 3 renames, got %d: %s", len(res.Expr), res.Expr)
				}
				if err := Verify(res.Expr, src, tgt, nil); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestDiscoverRelationAndAttributeRename(t *testing.T) {
	src := relation.MustDatabase(
		relation.MustNew("Emp", []string{"nm"}, relation.Tuple{"ann"}),
	)
	tgt := relation.MustDatabase(
		relation.MustNew("Employee", []string{"Name"}, relation.Tuple{"ann"}),
	)
	res, err := Discover(src, tgt, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Expr) != 2 {
		t.Fatalf("expected 2 steps, got %s", res.Expr)
	}
	if err := Verify(res.Expr, src, tgt, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDiscoverFlightsBToA is the paper's running example (Fig. 1): discovery
// of the full data-metadata restructuring of Example 2, involving ↑, π̄, µ,
// ρ^att and ρ^rel.
func TestDiscoverFlightsBToA(t *testing.T) {
	src, tgt := flightsB(), flightsA()
	res, err := Discover(src, tgt, Options{
		Algorithm: search.RBFS,
		Heuristic: heuristic.H3,
		Limits:    search.Limits{MaxStates: 200000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(res.Expr, src, tgt, nil); err != nil {
		t.Fatalf("discovered expression does not map B to A: %v\n%s", err, res.Expr)
	}
	// The canonical mapping (Example 2) has 6 steps; allow slack for
	// alternate operator orders but catch degenerate wandering.
	if len(res.Expr) < 4 || len(res.Expr) > 10 {
		t.Fatalf("suspicious expression length %d:\n%s", len(res.Expr), res.Expr)
	}
	t.Logf("B→A (%d states): \n%s", res.Stats.Examined, res.Expr)
}

// TestDiscoverComplexSemanticMapping exercises λ discovery (§4): the target
// wants TotalCost = sum(Cost, AgentFee).
func TestDiscoverComplexSemanticMapping(t *testing.T) {
	src := relation.MustDatabase(
		relation.MustNew("Prices", []string{"CID", "Route", "Cost", "AgentFee"},
			relation.Tuple{"123", "ATL29", "100", "15"},
			relation.Tuple{"456", "ATL29", "200", "16"},
		),
	)
	tgt := relation.MustDatabase(
		relation.MustNew("Prices", []string{"CID", "Route", "TotalCost"},
			relation.Tuple{"123", "ATL29", "115"},
			relation.Tuple{"456", "ATL29", "216"},
		),
	)
	corr := lambda.Correspondence{Func: "sum", In: []string{"Cost", "AgentFee"}, Out: "TotalCost"}
	opts := DefaultOptions()
	opts.Correspondences = []lambda.Correspondence{corr}
	res, err := Discover(src, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Expr) != 1 {
		t.Fatalf("expected a single λ step, got %s", res.Expr)
	}
	if _, ok := res.Expr[0].(fira.Apply); !ok {
		t.Fatalf("expected λ, got %T", res.Expr[0])
	}
	if err := Verify(res.Expr, src, tgt, lambda.Builtins()); err != nil {
		t.Fatal(err)
	}
}

func TestDiscoverMixedSemanticAndStructural(t *testing.T) {
	// Requires a λ application *and* renames.
	src := relation.MustDatabase(
		relation.MustNew("Pass", []string{"Last", "First"},
			relation.Tuple{"Smith", "John"},
			relation.Tuple{"Doe", "Jane"},
		),
	)
	tgt := relation.MustDatabase(
		relation.MustNew("Manifest", []string{"Passenger"},
			relation.Tuple{"John Smith"},
			relation.Tuple{"Jane Doe"},
		),
	)
	opts := DefaultOptions()
	opts.Correspondences = []lambda.Correspondence{
		{Func: "concat", In: []string{"First", "Last"}, Out: "Passenger"},
	}
	res, err := Discover(src, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(res.Expr, src, tgt, lambda.Builtins()); err != nil {
		t.Fatalf("%v\n%s", err, res.Expr)
	}
}

func TestDiscoverLimitExceeded(t *testing.T) {
	src := relation.MustDatabase(
		relation.MustNew("R", []string{"A1", "A2", "A3", "A4"},
			relation.Tuple{"a1", "a2", "a3", "a4"},
		),
	)
	tgt := relation.MustDatabase(
		relation.MustNew("R", []string{"B1", "B2", "B3", "B4"},
			relation.Tuple{"a1", "a2", "a3", "a4"},
		),
	)
	opts := Options{Algorithm: search.IDA, Heuristic: heuristic.H0,
		Limits: search.Limits{MaxStates: 3}}
	_, err := Discover(src, tgt, opts)
	if !errors.Is(err, search.ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
}

func TestDiscoverUnreachableTarget(t *testing.T) {
	// The target value "zz" exists nowhere in the source and no λ produces
	// it, so no sequence of L operators can reach the target.
	src := relation.MustDatabase(
		relation.MustNew("R", []string{"A"}, relation.Tuple{"a"}),
	)
	tgt := relation.MustDatabase(
		relation.MustNew("R", []string{"A"}, relation.Tuple{"zz"}),
	)
	_, err := Discover(src, tgt, Options{
		Algorithm: search.RBFS,
		Heuristic: heuristic.H1,
		Limits:    search.Limits{MaxStates: 5000},
	})
	if err == nil {
		t.Fatal("unreachable target should fail")
	}
}

func TestDiscoverOptionValidation(t *testing.T) {
	db := flightsA()
	if _, err := Discover(nil, db, DefaultOptions()); err == nil {
		t.Fatal("nil source should fail")
	}
	if _, err := Discover(db, nil, DefaultOptions()); err == nil {
		t.Fatal("nil target should fail")
	}
	opts := DefaultOptions()
	opts.K = -1
	if _, err := Discover(db, db, opts); err == nil {
		t.Fatal("negative K should fail")
	}
	opts = DefaultOptions()
	opts.Correspondences = []lambda.Correspondence{{Func: "nosuch", In: []string{"A"}, Out: "B"}}
	if _, err := Discover(db, db, opts); err == nil {
		t.Fatal("invalid correspondence should fail")
	}
}

func TestDisablePruningStillWorks(t *testing.T) {
	src := relation.MustDatabase(
		relation.MustNew("R", []string{"A1"}, relation.Tuple{"a1"}),
	)
	tgt := relation.MustDatabase(
		relation.MustNew("R", []string{"B1"}, relation.Tuple{"a1"}),
	)
	base, err := Discover(src, tgt, Options{Algorithm: search.RBFS, Heuristic: heuristic.H1})
	if err != nil {
		t.Fatal(err)
	}
	noPrune, err := Discover(src, tgt, Options{
		Algorithm: search.RBFS, Heuristic: heuristic.H1, DisablePruning: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(noPrune.Expr, src, tgt, nil); err != nil {
		t.Fatal(err)
	}
	if noPrune.Stats.Generated < base.Stats.Generated {
		t.Fatalf("pruning off generated %d < pruning on %d", noPrune.Stats.Generated, base.Stats.Generated)
	}
}

func TestDisableCycleCheckExhaustsBudget(t *testing.T) {
	src := relation.MustDatabase(
		relation.MustNew("R", []string{"A1", "A2"}, relation.Tuple{"a1", "a2"}),
	)
	tgt := relation.MustDatabase(
		relation.MustNew("R", []string{"B1", "B2"}, relation.Tuple{"a1", "a2"}),
	)
	// Blind IDA without duplicate pruning oscillates between renames; the
	// budget must stop it.
	_, err := Discover(src, tgt, Options{
		Algorithm:         search.IDA,
		Heuristic:         heuristic.H0,
		Limits:            search.Limits{MaxStates: 500, MaxDepth: 2},
		DisableCycleCheck: true,
	})
	if err == nil {
		t.Log("cycle-check-free search still finished within budget (acceptable)")
	}
}

func TestResultApply(t *testing.T) {
	src := relation.MustDatabase(
		relation.MustNew("Emp", []string{"nm"}, relation.Tuple{"ann"}),
	)
	tgt := relation.MustDatabase(
		relation.MustNew("Emp", []string{"Name"}, relation.Tuple{"ann"}),
	)
	res, err := Discover(src, tgt, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Apply the discovered mapping to a *larger* instance of the source
	// schema — the whole point of mapping discovery (§2.3).
	big := relation.MustDatabase(
		relation.MustNew("Emp", []string{"nm"},
			relation.Tuple{"ann"}, relation.Tuple{"bob"}, relation.Tuple{"cat"},
		),
	)
	out, err := res.Apply(big, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r, ok := out.Relation("Emp")
	if !ok || !r.HasAttr("Name") || r.Len() != 3 {
		t.Fatalf("applied mapping produced:\n%s", out)
	}
}

func TestSimplifyCollapsesRenameChains(t *testing.T) {
	src := relation.MustDatabase(
		relation.MustNew("R", []string{"A"}, relation.Tuple{"a"}),
	)
	expr := fira.MustParse("rename_att[R,A->Tmp]\nrename_att[R,Tmp->B]")
	simp := Simplify(expr, src, nil)
	if len(simp) != 1 {
		t.Fatalf("expected 1 step after simplification, got %s", simp)
	}
	want, _ := expr.Eval(src, nil)
	got, err := simp.Eval(src, nil)
	if err != nil || !got.Equal(want) {
		t.Fatalf("simplification changed semantics: %v", err)
	}
}

func TestSimplifyDropsRedundantSteps(t *testing.T) {
	src := relation.MustDatabase(
		relation.MustNew("R", []string{"A", "B"}, relation.Tuple{"a", "b"}),
	)
	// The middle pair renames B away and back; both steps are redundant.
	expr := fira.MustParse("rename_att[R,A->X]\nrename_att[R,B->T]\nrename_att[R,T->B]")
	simp := Simplify(expr, src, nil)
	if len(simp) != 1 {
		t.Fatalf("expected 1 step, got %d: %s", len(simp), simp)
	}
}

func TestSimplifyKeepsInvalidExpressionUntouched(t *testing.T) {
	src := relation.MustDatabase(
		relation.MustNew("R", []string{"A"}, relation.Tuple{"a"}),
	)
	expr := fira.MustParse("drop[NoSuch,A]")
	simp := Simplify(expr, src, nil)
	if len(simp) != 1 {
		t.Fatal("unevaluable expression should be returned unchanged")
	}
}

func TestVerifyFailure(t *testing.T) {
	src := relation.MustDatabase(
		relation.MustNew("R", []string{"A"}, relation.Tuple{"a"}),
	)
	tgt := relation.MustDatabase(
		relation.MustNew("S", []string{"B"}, relation.Tuple{"zz"}),
	)
	if err := Verify(fira.Expr{}, src, tgt, nil); !errors.Is(err, ErrNotContained) {
		t.Fatalf("err = %v, want ErrNotContained", err)
	}
	if err := Verify(fira.MustParse("drop[NoSuch,A]"), src, tgt, nil); err == nil {
		t.Fatal("unevaluable expression should fail verification")
	}
}

// TestDiscoverAcrossAlgorithmsAndHeuristics runs a small matching task under
// every algorithm × heuristic combination; each discovered expression must
// verify. (This is the paper's experimental grid in miniature.)
func TestDiscoverAcrossAlgorithmsAndHeuristics(t *testing.T) {
	src := relation.MustDatabase(
		relation.MustNew("R", []string{"A1", "A2"}, relation.Tuple{"a1", "a2"}),
	)
	tgt := relation.MustDatabase(
		relation.MustNew("R", []string{"B1", "B2"}, relation.Tuple{"a1", "a2"}),
	)
	for _, algo := range []search.Algorithm{search.IDA, search.RBFS, search.AStar, search.Greedy} {
		for _, h := range heuristic.Kinds() {
			name := fmt.Sprintf("%s/%s", algo, h)
			t.Run(name, func(t *testing.T) {
				res, err := Discover(src, tgt, Options{
					Algorithm: algo,
					Heuristic: h,
					Limits:    search.Limits{MaxStates: 100000},
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := Verify(res.Expr, src, tgt, nil); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
