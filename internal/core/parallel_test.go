package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"tupelo/internal/datagen"
	"tupelo/internal/heuristic"
	"tupelo/internal/search"
)

func TestZeroOptionsMeansPaperBest(t *testing.T) {
	res, err := Discover(flightsB(), flightsA(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != search.RBFS {
		t.Errorf("Algorithm = %v, want RBFS", res.Algorithm)
	}
	if res.Heuristic != heuristic.Cosine {
		t.Errorf("Heuristic = %v, want Cosine", res.Heuristic)
	}
	if res.K != 24 {
		t.Errorf("K = %g, want 24 (the paper's RBFS/cosine constant)", res.K)
	}
}

func TestDiscoverContextCancelled(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range []search.Algorithm{search.IDA, search.RBFS, search.AStar, search.Greedy} {
		t.Run(algo.String(), func(t *testing.T) {
			_, err := DiscoverContext(ctx, src, tgt, Options{Algorithm: algo, Heuristic: heuristic.H0})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			var serr *search.Error
			if !errors.As(err, &serr) {
				t.Fatalf("err = %T, want *search.Error with partial stats", err)
			}
			if serr.Stats.Examined == 0 {
				t.Fatal("cancelled discovery should report the states it examined")
			}
		})
	}
}

func TestDiscoverDeadline(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(6)
	opts := Options{Limits: search.Limits{Deadline: time.Now().Add(-time.Second)}}
	_, err := Discover(src, tgt, opts)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// movesWith expands the start state of the flights problem with the given
// worker count.
func movesWith(t *testing.T, workers int) []search.Move {
	t.Helper()
	opts, err := Options{Workers: workers}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	p := newProblem(flightsB(), flightsA(), opts)
	moves, err := p.Successors(p.Start())
	if err != nil {
		t.Fatal(err)
	}
	return moves
}

func TestParallelSuccessorsEquivalent(t *testing.T) {
	seq := movesWith(t, 1)
	par := movesWith(t, 8)
	if len(seq) == 0 {
		t.Fatal("no successor moves at all")
	}
	if len(seq) != len(par) {
		t.Fatalf("move count: sequential %d, parallel %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Label != par[i].Label {
			t.Fatalf("move %d: label %q (sequential) != %q (parallel)", i, seq[i].Label, par[i].Label)
		}
		if seq[i].To.Key() != par[i].To.Key() {
			t.Fatalf("move %d (%s): resulting states differ", i, seq[i].Label)
		}
	}
}

func TestParallelDiscoverIdentical(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(6)
	seq, err := Discover(src, tgt, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Discover(src, tgt, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := par.Expr.String(), seq.Expr.String(); got != want {
		t.Errorf("parallel mapping %q != sequential mapping %q", got, want)
	}
	if par.Stats.Examined != seq.Stats.Examined {
		t.Errorf("parallel Examined = %d, sequential = %d; worker count must not change the search",
			par.Stats.Examined, seq.Stats.Examined)
	}
}

// countingCache wraps a Cache and counts traffic, for observing sharing.
type countingCache struct {
	inner heuristic.Cache
	puts  atomic.Int64
	hits  atomic.Int64
}

func (c *countingCache) Get(key string) (int, bool) {
	v, ok := c.inner.Get(key)
	if ok {
		c.hits.Add(1)
	}
	return v, ok
}

func (c *countingCache) Put(key string, v int) {
	c.puts.Add(1)
	c.inner.Put(key, v)
}

func TestSharedCacheAvoidsRecomputation(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(5)
	cache := &countingCache{inner: heuristic.NewSyncCache()}
	if _, err := Discover(src, tgt, Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	first := cache.puts.Load()
	if first == 0 {
		t.Fatal("first run computed no estimates into the injected cache")
	}
	if _, err := Discover(src, tgt, Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if extra := cache.puts.Load() - first; extra != 0 {
		t.Errorf("second run recomputed %d estimates through a warm shared cache", extra)
	}
	if cache.hits.Load() == 0 {
		t.Error("warm cache was never hit")
	}
}
