package core

import (
	"context"
	"errors"
	"testing"

	"tupelo/internal/datagen"
	"tupelo/internal/heuristic"
	"tupelo/internal/search"
)

// TestPortfolioWinnerAndCancelledLosers races one capable configuration
// against a hopeless one: blind IDA on an 8-attribute matching instance
// cannot finish before RBFS/cosine does, so the winner is deterministic and
// the loser must be observed cancelled with partial stats. Stable under
// -count=10 -race.
func TestPortfolioWinnerAndCancelledLosers(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(8)
	res, err := DiscoverPortfolio(context.Background(), src, tgt, PortfolioOptions{
		Configs: []PortfolioConfig{
			{Algorithm: search.RBFS, Heuristic: heuristic.Cosine},
			{Algorithm: search.IDA, Heuristic: heuristic.H0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner.Algorithm != search.RBFS || res.Winner.Heuristic != heuristic.Cosine {
		t.Fatalf("winner = %s, want rbfs/cosine", res.Winner)
	}
	if err := Verify(res.Expr, src, tgt, nil); err != nil {
		t.Fatalf("winning mapping does not verify: %v", err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("len(Runs) = %d, want 2", len(res.Runs))
	}
	winRun, loseRun := res.Runs[0], res.Runs[1]
	if winRun.Err != nil {
		t.Errorf("winner run reports error: %v", winRun.Err)
	}
	if winRun.Stats.Examined == 0 || winRun.Duration <= 0 {
		t.Errorf("winner run stats incomplete: %+v", winRun)
	}
	if !errors.Is(loseRun.Err, context.Canceled) {
		t.Errorf("loser err = %v, want context.Canceled", loseRun.Err)
	}
	if loseRun.Stats.Examined == 0 {
		t.Error("cancelled loser should still report the states it examined")
	}
}

// TestPortfolioMatchesSequential checks the acceptance criterion that a
// portfolio returns the same verified mapping as the best sequential
// configuration: on a matching workload the minimal mapping is unique, so
// whichever member wins, applying its expression must produce the same
// database as the sequential run's.
func TestPortfolioMatchesSequential(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(6)
	seq, err := Discover(src, tgt, Options{Algorithm: search.RBFS, Heuristic: heuristic.Cosine})
	if err != nil {
		t.Fatal(err)
	}
	port, err := DiscoverPortfolio(context.Background(), src, tgt, PortfolioOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(port.Runs) != len(DefaultPortfolio()) {
		t.Fatalf("len(Runs) = %d, want %d", len(port.Runs), len(DefaultPortfolio()))
	}
	a, err := seq.Apply(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := port.Apply(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("portfolio mapping output differs from sequential:\nportfolio %s\nsequential %s",
			port.Expr, seq.Expr)
	}
}

// TestPortfolioSharedCache races two members that agree on (heuristic, k),
// so they share one concurrency-safe cache; run under -race this validates
// the shared-cache path.
func TestPortfolioSharedCache(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(6)
	res, err := DiscoverPortfolio(context.Background(), src, tgt, PortfolioOptions{
		Configs: []PortfolioConfig{
			{Algorithm: search.RBFS, Heuristic: heuristic.Cosine, K: 24},
			{Algorithm: search.IDA, Heuristic: heuristic.Cosine, K: 24},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(res.Expr, src, tgt, nil); err != nil {
		t.Fatalf("winning mapping does not verify: %v", err)
	}
}

func TestPortfolioParentCancelled(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := DiscoverPortfolio(ctx, src, tgt, PortfolioOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPortfolioNilInstances(t *testing.T) {
	src, _ := datagen.MustMatchingPair(2)
	if _, err := DiscoverPortfolio(context.Background(), src, nil, PortfolioOptions{}); err == nil {
		t.Fatal("want error for nil target")
	}
}

func TestPortfolioConfigString(t *testing.T) {
	c := PortfolioConfig{Algorithm: search.RBFS, Heuristic: heuristic.Cosine}
	if got := c.String(); got != "RBFS/cosine" {
		t.Errorf("String = %q", got)
	}
	c.K = 24
	if got := c.String(); got != "RBFS/cosine/k=24" {
		t.Errorf("String = %q", got)
	}
}
