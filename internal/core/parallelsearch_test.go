package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"tupelo/internal/datagen"
	"tupelo/internal/obs"
	"tupelo/internal/search"
)

// TestParallelSearchDiscoverEquivalent pins the discovery-level acceptance
// criterion: Options.ParallelSearch with Workers ∈ {1,2,4} finds the same
// mapping expression sequential A* finds, with bounded states-examined
// variance.
func TestParallelSearchDiscoverEquivalent(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(8)
	seq, err := Discover(src, tgt, Options{Algorithm: search.AStar})
	if err != nil {
		t.Fatal(err)
	}
	// The workload's optimal moves commute (independent renames), so every
	// permutation is an optimal mapping; compare the move multiset and the
	// cost, not the order — DESIGN.md §10 documents exactly this caveat.
	want := sortedLines(seq.Expr.String())
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			res, err := Discover(src, tgt, Options{ParallelSearch: true, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if res.Algorithm != search.AStar {
				t.Fatalf("algorithm = %v, want AStar (ParallelSearch default)", res.Algorithm)
			}
			if got := sortedLines(res.Expr.String()); got != want {
				t.Fatalf("expr moves = %q, sequential found %q", got, want)
			}
			// Speculation scales with the shard count: while the goal path
			// hops shard to shard (one routing step per move), the other
			// shards examine their local best nodes. A near-perfect
			// heuristic makes the sequential baseline tiny (single-digit),
			// so the bound is multiplicative in workers plus slack for one
			// expansion's branching per shard.
			if res.Stats.Examined > 4*workers*seq.Stats.Examined+64 {
				t.Fatalf("examined %d, sequential %d — variance out of bounds",
					res.Stats.Examined, seq.Stats.Examined)
			}
			out, err := res.Apply(src, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !out.Contains(tgt) {
				t.Fatal("discovered expression does not reach the target")
			}
		})
	}
}

// TestParallelSearchNormalization: unset algorithm resolves to AStar, tree
// searches and the cycle-check ablation are rejected up front.
func TestParallelSearchNormalization(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(4)
	if _, err := Discover(src, tgt, Options{ParallelSearch: true, Algorithm: search.RBFS}); err == nil {
		t.Fatal("ParallelSearch with RBFS should be rejected")
	}
	if _, err := Discover(src, tgt, Options{ParallelSearch: true, Algorithm: search.IDA}); err == nil {
		t.Fatal("ParallelSearch with IDA should be rejected")
	}
	if _, err := Discover(src, tgt, Options{ParallelSearch: true, DisableCycleCheck: true}); err == nil {
		t.Fatal("ParallelSearch with DisableCycleCheck should be rejected")
	}
	res, err := Discover(src, tgt, Options{ParallelSearch: true, Algorithm: search.Greedy, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != search.Greedy {
		t.Fatalf("algorithm = %v, want Greedy", res.Algorithm)
	}
}

// TestParallelSearchShardMetrics: a sharded run populates the per-shard
// search.shard.* counters and the aggregate search counters.
func TestParallelSearchShardMetrics(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(8)
	reg := obs.NewRegistry()
	if _, err := Discover(src, tgt, Options{ParallelSearch: true, Workers: 2, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	var shardExamined, routed int64
	for name, v := range snap.Counters {
		switch {
		case hasPrefixName(name, "search.shard.examined"):
			shardExamined += v
		case hasPrefixName(name, "search.shard.routed"):
			routed += v
		}
	}
	if shardExamined == 0 {
		t.Fatalf("no search.shard.examined counts in %v", snap.Counters)
	}
	total := snap.Counters[obs.Name("search.examined", "algo", "PA*")]
	if shardExamined != total {
		t.Fatalf("shard examined sum %d != aggregate %d", shardExamined, total)
	}
	_ = routed // routed may legitimately be 0 on a tiny workload; presence is not required
	if snap.Counters["core.succmemo.misses"] == 0 {
		t.Fatal("sharded run recorded no memo misses — memo counters not wired")
	}
}

// TestMemoCountersAndSampling pins the satellite bugfix: with metrics only
// (no Tracer) the successor memo stays on, and the new hit/miss counters
// expose how many expansions the per-op apply metrics actually sampled.
func TestMemoCountersAndSampling(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(6)
	reg := obs.NewRegistry()
	// IDA* re-expands every shallower state on each deepening iteration, so
	// revisits — the memo's reason to exist — are structural, not workload
	// luck.
	if _, err := Discover(src, tgt, Options{Algorithm: search.IDA, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	hits := snap.Counters["core.succmemo.hits"]
	misses := snap.Counters["core.succmemo.misses"]
	if misses == 0 {
		t.Fatal("no memo misses recorded")
	}
	if hits == 0 {
		t.Fatal("no memo hits recorded — IDA deepening should revisit states")
	}
}

// TestMemoStaysOnUnderTracer: the undercount fix keeps the memo enabled for
// traced runs (only FaultHook disables it) and emits memo events instead.
func TestMemoStaysOnUnderTracer(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(6)
	col := obs.NewCollector()
	if _, err := Discover(src, tgt, Options{Algorithm: search.IDA, Tracer: col}); err != nil {
		t.Fatal(err)
	}
	var memoHits, memoMisses int
	for _, e := range col.Events() {
		switch e.Kind {
		case obs.EvMemoHit:
			memoHits++
		case obs.EvMemoMiss:
			memoMisses++
		}
	}
	if memoMisses == 0 {
		t.Fatal("traced run emitted no EvMemoMiss — memo disabled under Tracer?")
	}
	if memoHits == 0 {
		t.Fatal("traced run emitted no EvMemoHit")
	}
}

// TestParallelSearchBestEffort: a budget-truncated parallel discovery
// degrades to a partial result exactly like the sequential engines.
func TestParallelSearchBestEffort(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(10)
	res, err := Discover(src, tgt, Options{
		ParallelSearch: true,
		Workers:        2,
		Limits:         search.Limits{MaxStates: 3, BestEffort: true},
	})
	if err != nil {
		t.Fatalf("best-effort parallel run should degrade, got %v", err)
	}
	if !res.Partial {
		t.Fatal("expected a partial result")
	}
	if !errors.Is(res.AbortErr, search.ErrLimit) {
		t.Fatalf("AbortErr = %v, want ErrLimit", res.AbortErr)
	}
}

// hasPrefixName matches a metric's base name ignoring its label suffix
// (obs.Name encodes labels into the string).
func hasPrefixName(name, prefix string) bool {
	return len(name) >= len(prefix) && name[:len(prefix)] == prefix
}

// sortedLines canonicalizes an expression whose moves commute: same lines,
// any order.
func sortedLines(s string) string {
	lines := strings.Split(s, "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
