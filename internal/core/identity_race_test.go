package core

import (
	"sync"
	"testing"

	"tupelo/internal/relation"
)

// TestLazyMemoizationRaceFree drives the lazy canonical-form memoization
// from many goroutines at once, the way the parallel successor workers do:
// successors built with WithRelation share every untouched *Relation, and
// the first worker to key its state races the others to fill each shared
// relation's memo. Run under -race (CI does), this pins that the sync.Once
// publication is sound.
func TestLazyMemoizationRaceFree(t *testing.T) {
	mk := func() *relation.Database {
		return relation.MustDatabase(
			relation.MustNew("R", []string{"A", "B"},
				relation.Tuple{"1", "2"}, relation.Tuple{"3", "4"}),
			relation.MustNew("S", []string{"X", "Y"},
				relation.Tuple{"x", "y"}),
			relation.MustNew("T", []string{"Q"},
				relation.Tuple{"q"}),
		)
	}
	for trial := 0; trial < 50; trial++ {
		base := mk()
		// Successor-like states sharing base's relations copy-on-write, each
		// replacing a different relation — exactly the sharing pattern the
		// worker pool produces.
		states := []*relation.Database{
			base,
			base.WithRelation(relation.MustNew("R", []string{"A"}, relation.Tuple{"1"})),
			base.WithRelation(relation.MustNew("S", []string{"X"}, relation.Tuple{"x"})),
			base.WithRelation(relation.MustNew("U", []string{"Z"})),
		}
		var wg sync.WaitGroup
		keys := make([]string, 8*len(states))
		for w := 0; w < 8; w++ {
			for i, db := range states {
				wg.Add(1)
				go func(slot int, db *relation.Database) {
					defer wg.Done()
					// Key, Fingerprint, and Equal all race to canonicalize
					// the shared relations.
					keys[slot] = db.Key()
					_ = db.Fingerprint()
					_ = db.Equal(base)
				}(w*len(states)+i, db)
			}
		}
		wg.Wait()
		for w := 1; w < 8; w++ {
			for i := range states {
				if keys[w*len(states)+i] != keys[i] {
					t.Fatalf("trial %d: goroutines disagree on key of state %d", trial, i)
				}
			}
		}
	}
}

// TestParallelWorkersKeyConsistency runs the real worker pool over the
// flights expansion and checks every generated state's key against a
// fresh single-threaded recomputation on an equal database.
func TestParallelWorkersKeyConsistency(t *testing.T) {
	par := movesWith(t, 8)
	for _, m := range par {
		db := m.To.(*dbState).db
		if got, want := m.To.Key(), db.Clone().Key(); got != want {
			t.Fatalf("move %s: memoized key differs from recomputed key", m.Label)
		}
	}
}
