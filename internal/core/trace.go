package core

import (
	"tupelo/internal/obs"
	"tupelo/internal/search"
)

// tracedProblem wraps a mapping problem and emits a structured event for
// every goal test, expansion, and candidate move — the search-space view of
// §2.3 as an event stream. Rendered through obs.NewWriterTracer it yields
// the human-readable transcript the former TraceWriter option produced;
// through an obs.Collector it is programmatically inspectable.
type tracedProblem struct {
	inner  search.Problem
	tracer obs.Tracer
	n      int
}

// traceProblem wraps a problem so that its exploration is reported to the
// tracer.
func traceProblem(p search.Problem, tracer obs.Tracer) search.Problem {
	return &tracedProblem{inner: p, tracer: tracer}
}

func (t *tracedProblem) Start() search.State { return t.inner.Start() }

func (t *tracedProblem) IsGoal(s search.State) bool {
	t.n++
	ok := t.inner.IsGoal(s)
	t.tracer.Event(obs.Event{Kind: obs.EvGoalTest, Seq: t.n, Goal: ok})
	return ok
}

func (t *tracedProblem) Successors(s search.State) ([]search.Move, error) {
	moves, err := t.inner.Successors(s)
	if err != nil {
		t.tracer.Event(obs.Event{Kind: obs.EvExpand, Seq: t.n, Err: err})
		return nil, err
	}
	t.tracer.Event(obs.Event{Kind: obs.EvExpand, Seq: t.n, N: len(moves)})
	for _, m := range moves {
		t.tracer.Event(obs.Event{Kind: obs.EvMove, Label: m.Label})
	}
	return moves, nil
}
