package core

import (
	"fmt"
	"io"

	"tupelo/internal/search"
)

// tracedProblem wraps a mapping problem and logs every expansion and goal
// test to a writer, producing a human-readable transcript of the search —
// useful for debugging heuristics and for teaching the search-space view
// of §2.3.
type tracedProblem struct {
	inner search.Problem
	w     io.Writer
	n     int
}

// Trace wraps a problem so that its exploration is logged to w.
func traceProblem(p search.Problem, w io.Writer) search.Problem {
	return &tracedProblem{inner: p, w: w}
}

func (t *tracedProblem) Start() search.State { return t.inner.Start() }

func (t *tracedProblem) IsGoal(s search.State) bool {
	t.n++
	ok := t.inner.IsGoal(s)
	if ok {
		fmt.Fprintf(t.w, "examine %d: GOAL\n", t.n)
	} else {
		fmt.Fprintf(t.w, "examine %d\n", t.n)
	}
	return ok
}

func (t *tracedProblem) Successors(s search.State) ([]search.Move, error) {
	moves, err := t.inner.Successors(s)
	if err != nil {
		fmt.Fprintf(t.w, "expand: error: %v\n", err)
		return nil, err
	}
	fmt.Fprintf(t.w, "expand: %d moves\n", len(moves))
	for _, m := range moves {
		fmt.Fprintf(t.w, "  move %s\n", m.Label)
	}
	return moves, nil
}
