package core

import (
	"testing"

	"tupelo/internal/datagen"
	"tupelo/internal/heuristic"
	"tupelo/internal/search"
)

// TestIncrementalAblationIdentical pins the central claim of the
// incremental evaluator wiring: delta-merged estimates are bit-identical to
// from-scratch ones, so disabling the incremental path must change nothing
// about the search — same mapping, same states examined — for every
// heuristic kind and both paper algorithms. Only the cost moves.
func TestIncrementalAblationIdentical(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(6)
	for _, algo := range []search.Algorithm{search.IDA, search.RBFS} {
		for _, kind := range heuristic.Kinds() {
			inc, err := Discover(src, tgt, Options{Algorithm: algo, Heuristic: kind})
			if err != nil {
				t.Fatalf("%s/%s: %v", algo, kind, err)
			}
			scratch, err := Discover(src, tgt, Options{
				Algorithm: algo, Heuristic: kind, DisableIncremental: true,
			})
			if err != nil {
				t.Fatalf("%s/%s (ablated): %v", algo, kind, err)
			}
			if inc.Expr.String() != scratch.Expr.String() {
				t.Errorf("%s/%s: incremental mapping %q != from-scratch %q",
					algo, kind, inc.Expr, scratch.Expr)
			}
			if inc.Stats.Examined != scratch.Stats.Examined {
				t.Errorf("%s/%s: incremental examined %d states, from-scratch %d",
					algo, kind, inc.Stats.Examined, scratch.Stats.Examined)
			}
		}
	}
}

// TestIncrementalParallelWorkers runs the incremental path under a worker
// pool: workers race to delta-merge and attach aggregates to the states
// they create. Run under -race (CI does), it pins that aggregate attachment
// is confined to each state's creating worker; the equality check pins that
// parallelism changes neither the mapping nor the state count.
func TestIncrementalParallelWorkers(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(8)
	seq, err := Discover(src, tgt, Options{Workers: 1, Heuristic: heuristic.Cosine})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Discover(src, tgt, Options{Workers: 8, Heuristic: heuristic.Cosine})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Expr.String() != par.Expr.String() || seq.Stats.Examined != par.Stats.Examined {
		t.Fatalf("workers changed the search: %q/%d vs %q/%d",
			seq.Expr, seq.Stats.Examined, par.Expr, par.Stats.Examined)
	}
}
