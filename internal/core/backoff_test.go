package core

import (
	"math/rand"
	"testing"
	"time"
)

// TestRetryBackoffFullJitter pins the jitter contract: delays are drawn
// uniformly from [0, min(base<<attempt, cap)], the schedule is a pure
// function of the seed, and distinct seeds decorrelate — so hedged retries
// cannot synchronize while tests stay reproducible.
func TestRetryBackoffFullJitter(t *testing.T) {
	const base = 5 * time.Millisecond

	ceiling := func(attempt int) time.Duration {
		c := maxRetryBackoff
		if attempt < 10 {
			if d := base << attempt; d > 0 && d < maxRetryBackoff {
				c = d
			}
		}
		return c
	}

	// Determinism: the same seed yields the identical delay sequence.
	a, b := rand.New(rand.NewSource(42)), rand.New(rand.NewSource(42))
	var seqA []time.Duration
	for attempt := 0; attempt < 16; attempt++ {
		da := retryBackoff(a, base, attempt)
		db := retryBackoff(b, base, attempt)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", attempt, da, db)
		}
		seqA = append(seqA, da)
	}

	// Range: every delay obeys its attempt's capped-exponential ceiling.
	rng := rand.New(rand.NewSource(7))
	for attempt := 0; attempt < 64; attempt++ {
		for i := 0; i < 100; i++ {
			d := retryBackoff(rng, base, attempt)
			if d < 0 || d > ceiling(attempt) {
				t.Fatalf("attempt %d: delay %v outside [0, %v]", attempt, d, ceiling(attempt))
			}
		}
	}

	// Jitter: a different seed must produce a different schedule, and the
	// draws must actually spread over the range rather than pinning to the
	// ceiling (the pre-jitter behavior).
	c := rand.New(rand.NewSource(43))
	same, belowHalf := 0, 0
	for attempt := 0; attempt < 16; attempt++ {
		d := retryBackoff(c, base, attempt)
		if d == seqA[attempt] {
			same++
		}
		if d < ceiling(attempt)/2 {
			belowHalf++
		}
	}
	if same == 16 {
		t.Fatal("seeds 42 and 43 produced identical schedules; jitter is not seeded")
	}
	if belowHalf == 0 {
		t.Fatal("no delay fell below half its ceiling in 16 draws; backoff looks unjittered")
	}
}

// TestRetryBackoffLargeBaseOverflow guards the shift against overflow and
// over-cap bases.
func TestRetryBackoffLargeBaseOverflow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, base := range []time.Duration{time.Hour, maxRetryBackoff, 1 << 62} {
		for attempt := 0; attempt < 70; attempt++ {
			if d := retryBackoff(rng, base, attempt); d < 0 || d > maxRetryBackoff {
				t.Fatalf("base %v attempt %d: delay %v outside [0, %v]", base, attempt, d, maxRetryBackoff)
			}
		}
	}
}
