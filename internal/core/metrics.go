package core

import (
	"time"

	"tupelo/internal/fira"
	"tupelo/internal/obs"
)

// opKindNames enumerates the operator families of L for metric labels;
// "other" collects operators added without a case in opKind.
var opKindNames = []string{
	"rename_rel", "rename_att", "drop", "promote", "demote", "deref",
	"partition", "product", "union", "merge", "apply", "other",
}

// opKind names an operator's family for per-kind metrics.
func opKind(op fira.Op) string {
	switch op.(type) {
	case fira.RenameRel:
		return "rename_rel"
	case fira.RenameAtt:
		return "rename_att"
	case fira.Drop:
		return "drop"
	case fira.Promote:
		return "promote"
	case fira.Demote:
		return "demote"
	case fira.Deref:
		return "deref"
	case fira.Partition:
		return "partition"
	case fira.Product:
		return "product"
	case fira.Union:
		return "union"
	case fira.Merge:
		return "merge"
	case fira.Apply:
		return "apply"
	default:
		return "other"
	}
}

// opMetrics holds the successor generator's pre-resolved instruments:
// per-operator-kind proposed/applied counters and worker-pool utilization.
// All counters are resolved once per problem so the per-expansion cost is a
// type switch and an atomic increment. Methods on a nil *opMetrics are
// no-ops, so call sites read unconditionally.
type opMetrics struct {
	proposed map[string]*obs.Counter
	applied  map[string]*obs.Counter
	applySec map[string]*obs.Histogram
	// poolParallel / poolSerial count expansions dispatched to the worker
	// pool vs. applied inline (too few candidates or Workers == 1);
	// poolOps counts operator applications that went through the pool and
	// poolWidth tracks the widest pool used.
	poolParallel *obs.Counter
	poolSerial   *obs.Counter
	poolOps      *obs.Counter
	poolWidth    *obs.Gauge
	// memoHits / memoMisses count successor-memo outcomes. They are the
	// denominator that makes the per-op apply metrics honest: a hit skips
	// the operator pipeline entirely, so core.op.apply.seconds and the
	// proposed/applied counters sample only the misses (first expansions).
	// Without these, "operators are fast" and "operators rarely ran" were
	// indistinguishable — search.examined reported full throughput while
	// the apply histograms saw <1% of expansions.
	memoHits   *obs.Counter
	memoMisses *obs.Counter
}

// newOpMetrics resolves the successor-generation instruments in reg, or
// returns nil (all methods no-ops) when reg is nil.
func newOpMetrics(reg *obs.Registry) *opMetrics {
	if reg == nil {
		return nil
	}
	m := &opMetrics{
		proposed:     make(map[string]*obs.Counter, len(opKindNames)),
		applied:      make(map[string]*obs.Counter, len(opKindNames)),
		applySec:     make(map[string]*obs.Histogram, len(opKindNames)),
		poolParallel: reg.Counter("core.pool.expansions.parallel"),
		poolSerial:   reg.Counter("core.pool.expansions.serial"),
		poolOps:      reg.Counter("core.pool.ops"),
		poolWidth:    reg.Gauge("core.pool.width.max"),
		memoHits:     reg.Counter("core.succmemo.hits"),
		memoMisses:   reg.Counter("core.succmemo.misses"),
	}
	for _, k := range opKindNames {
		m.proposed[k] = reg.Counter(obs.Name("core.ops.proposed", "op", k))
		m.applied[k] = reg.Counter(obs.Name("core.ops.applied", "op", k))
		m.applySec[k] = reg.Histogram(obs.Name("core.op.apply.seconds", "op", k))
	}
	return m
}

// applyLatency records one operator application's latency into its kind's
// histogram.
func (m *opMetrics) applyLatency(op fira.Op, d time.Duration) {
	if m == nil {
		return
	}
	m.applySec[opKind(op)].Observe(d)
}

// count records one proposed candidate operator and, when it yielded a
// state-changing successor, one applied operator.
func (m *opMetrics) count(op fira.Op, applied bool) {
	if m == nil {
		return
	}
	k := opKind(op)
	m.proposed[k].Inc()
	if applied {
		m.applied[k].Inc()
	}
}

// memo records one successor-memo lookup outcome.
func (m *opMetrics) memo(hit bool) {
	if m == nil {
		return
	}
	if hit {
		m.memoHits.Inc()
	} else {
		m.memoMisses.Inc()
	}
}

// poolExpansion records one expansion's worker-pool shape: width 1 means the
// candidates were applied inline.
func (m *opMetrics) poolExpansion(width, ops int) {
	if m == nil {
		return
	}
	if width <= 1 {
		m.poolSerial.Inc()
		return
	}
	m.poolParallel.Inc()
	m.poolOps.Add(int64(ops))
	m.poolWidth.Max(int64(width))
}
