package core

import (
	"bytes"
	"context"
	"testing"
	"time"

	"tupelo/internal/datagen"
	"tupelo/internal/heuristic"
	"tupelo/internal/obs"
	"tupelo/internal/search"
)

// runWithReport runs one discovery with a private registry and report
// builder attached and assembles the report.
func runWithReport(t *testing.T, n int, opts Options) (*obs.RunReport, *Result) {
	t.Helper()
	src, tgt := datagen.MustMatchingPair(n)
	reg := obs.NewRegistry()
	rb := obs.NewReportBuilder()
	opts.Metrics = reg
	opts.Tracer = rb
	res, err := DiscoverContext(context.Background(), src, tgt, opts)
	if err != nil {
		t.Fatalf("DiscoverContext: %v", err)
	}
	report, rerr := BuildReport(res, nil, src, tgt, opts, rb)
	if rerr != nil {
		t.Fatalf("BuildReport: %v", rerr)
	}
	return report, res
}

func TestBuildReportSequential(t *testing.T) {
	report, res := runWithReport(t, 6, Options{
		Algorithm: search.RBFS,
		Heuristic: heuristic.Cosine,
	})
	if err := obs.ValidateRunReport(report); err != nil {
		t.Fatalf("ValidateRunReport: %v", err)
	}
	if !report.Solved || report.Examined != res.Stats.Examined || report.Depth != res.Stats.Depth {
		t.Fatalf("report outcome mismatch: %+v vs stats %+v", report, res.Stats)
	}
	if report.Algorithm != "RBFS" || report.Heuristic != "cosine" {
		t.Fatalf("config = %s/%s", report.Algorithm, report.Heuristic)
	}
	if report.EBF <= 0 {
		t.Fatalf("EBF = %g, want > 0 for a solved run", report.EBF)
	}
	if report.Span == nil || len(report.Span.Children) == 0 {
		t.Fatalf("report has no span tree")
	}
	// One search span, solved.
	var searchSpan *obs.Span
	for _, s := range report.Span.Children {
		if s.Kind == "search" {
			searchSpan = s
		}
	}
	if searchSpan == nil || searchSpan.Outcome != "solved" || searchSpan.Name != "RBFS" {
		t.Fatalf("search span = %+v", searchSpan)
	}
	if len(report.Caches) == 0 {
		t.Fatalf("report has no cache section")
	}

	// Heuristic quality covers every paper kind, exactly one marked used,
	// with a per-depth sample for every path state including the goal.
	if len(report.HeuristicQuality) != len(heuristic.Kinds()) {
		t.Fatalf("quality entries = %d, want %d", len(report.HeuristicQuality), len(heuristic.Kinds()))
	}
	usedCount := 0
	for _, q := range report.HeuristicQuality {
		if q.Used {
			usedCount++
			if q.Kind != "cosine" {
				t.Fatalf("used kind = %s, want cosine", q.Kind)
			}
		}
		if len(q.Samples) != report.Depth+1 {
			t.Fatalf("%s: %d samples, want depth+1 = %d", q.Kind, len(q.Samples), report.Depth+1)
		}
		last := q.Samples[len(q.Samples)-1]
		if last.TrueRemaining != 0 {
			t.Fatalf("%s: goal sample true remaining = %d", q.Kind, last.TrueRemaining)
		}
		switch q.Kind {
		case "h0":
			if q.Accuracy != 0 {
				t.Fatalf("h0 accuracy = %g, want 0 (blind search has no signal)", q.Accuracy)
			}
		case "h1", "h3", "cosine", "levenshtein":
			// h2 (promotions/demotions) is legitimately flat on a rename-only
			// workload, so only the kinds guaranteed a signal are asserted.
			if q.Accuracy <= 0 {
				t.Fatalf("%s accuracy = %g, want > 0", q.Kind, q.Accuracy)
			}
		}
	}
	if usedCount != 1 {
		t.Fatalf("used entries = %d, want 1", usedCount)
	}
	if report.Shards != nil {
		t.Fatalf("sequential run has a shard section")
	}
}

// TestBuildReportShardSums is the acceptance criterion: per-shard examined
// counters sum exactly to the run aggregate at Workers ∈ {1, 2, 4} (run
// under -race in CI).
func TestBuildReportShardSums(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		report, res := runWithReport(t, 8, Options{
			Algorithm:      search.AStar,
			Heuristic:      heuristic.Cosine,
			ParallelSearch: true,
			Workers:        workers,
		})
		if err := obs.ValidateRunReport(report); err != nil {
			t.Fatalf("workers=%d: ValidateRunReport: %v", workers, err)
		}
		if report.Shards == nil {
			t.Fatalf("workers=%d: no shard section", workers)
		}
		if report.Shards.Workers != workers {
			t.Fatalf("workers=%d: shard section says %d", workers, report.Shards.Workers)
		}
		var sum int64
		for _, sh := range report.Shards.Shards {
			sum += sh.Examined
		}
		if sum != int64(res.Stats.Examined) {
			t.Fatalf("workers=%d: shard examined sum %d != run aggregate %d", workers, sum, res.Stats.Examined)
		}
		if report.Shards.ImbalancePermille < 1000 {
			t.Fatalf("workers=%d: imbalance %d permille < 1000 (max/mean cannot be below the mean)",
				workers, report.Shards.ImbalancePermille)
		}
	}
}

func TestBuildReportRoundTrip(t *testing.T) {
	report, _ := runWithReport(t, 6, Options{})
	var buf bytes.Buffer
	if err := obs.WriteRunReport(&buf, report); err != nil {
		t.Fatalf("WriteRunReport: %v", err)
	}
	back, err := obs.ReadRunReport(&buf)
	if err != nil {
		t.Fatalf("ReadRunReport: %v", err)
	}
	if back.Examined != report.Examined || back.Algorithm != report.Algorithm ||
		len(back.HeuristicQuality) != len(report.HeuristicQuality) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, report)
	}
}

func TestBuildReportAbort(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(8)
	opts := Options{
		Algorithm: search.RBFS,
		Limits:    search.Limits{MaxStates: 3},
	}
	res, err := DiscoverContext(context.Background(), src, tgt, opts)
	if err == nil {
		t.Fatalf("expected budget abort, got %+v", res)
	}
	report, rerr := BuildReport(nil, err, src, tgt, opts, nil)
	if rerr != nil {
		t.Fatalf("BuildReport: %v", rerr)
	}
	if err := obs.ValidateRunReport(report); err != nil {
		t.Fatalf("ValidateRunReport: %v", err)
	}
	if report.Solved || report.AbortCause != "limit" || report.Error == "" {
		t.Fatalf("abort report = solved=%v cause=%q err=%q", report.Solved, report.AbortCause, report.Error)
	}
	if report.Examined == 0 {
		t.Fatalf("abort report lost the partial stats")
	}
}

// TestFlightDumpOnAbort verifies the end-to-end forensic path: a run aborted
// by its deadline marks the recorder, and the join point flushes a
// tupelo-flight/v1 dump with the recorded examine events.
func TestFlightDumpOnAbort(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(8)
	fr := obs.NewFlightRecorder(256)
	var dump bytes.Buffer
	fr.SetAutoDump(&dump)
	opts := Options{
		Algorithm: search.RBFS,
		Heuristic: heuristic.H0, // blind search: guaranteed to still be running at the deadline
		Limits:    search.Limits{Deadline: pastDeadline(), MaxStates: 1_000_000},
		Flight:    fr,
	}
	_, err := DiscoverContext(context.Background(), src, tgt, opts)
	if err == nil {
		t.Fatalf("expected deadline abort")
	}
	if cause, ok := fr.DumpRequested(); !ok || cause != "deadline" {
		t.Fatalf("DumpRequested = %q/%v, want deadline/true", cause, ok)
	}
	if dump.Len() == 0 {
		t.Fatalf("no flight dump flushed at the join point")
	}
	if !bytes.Contains(dump.Bytes(), []byte(obs.FlightSchema)) {
		t.Fatalf("dump missing schema header: %s", dump.Bytes()[:min(200, dump.Len())])
	}
}

// pastDeadline returns a deadline that has already expired.
func pastDeadline() time.Time { return time.Now().Add(-time.Second) }

func TestFlightRecordsSolvedRun(t *testing.T) {
	src, tgt := datagen.MustMatchingPair(6)
	fr := obs.NewFlightRecorder(1024)
	_, err := DiscoverContext(context.Background(), src, tgt, Options{Flight: fr})
	if err != nil {
		t.Fatalf("DiscoverContext: %v", err)
	}
	recs := fr.Records("RBFS")
	if len(recs) == 0 {
		t.Fatalf("no flight records for the RBFS ring")
	}
	var examines, finishes int
	for _, e := range recs {
		switch e.Kind {
		case obs.FKExamine:
			examines++
		case obs.FKRunFinish:
			finishes++
		}
	}
	if examines == 0 || finishes != 1 {
		t.Fatalf("examines=%d finishes=%d, want >0 and 1", examines, finishes)
	}
	if cause, ok := fr.DumpRequested(); ok {
		t.Fatalf("solved run requested a dump (%s)", cause)
	}
}
