package core

import (
	"bytes"
	"strings"
	"testing"

	"tupelo/internal/obs"
	"tupelo/internal/relation"
)

func TestTraceWriterTranscript(t *testing.T) {
	src := relation.MustDatabase(
		relation.MustNew("Emp", []string{"nm"}, relation.Tuple{"ann"}),
	)
	tgt := relation.MustDatabase(
		relation.MustNew("Emp", []string{"Name"}, relation.Tuple{"ann"}),
	)
	var buf bytes.Buffer
	opts := DefaultOptions()
	opts.Tracer = obs.NewWriterTracer(&buf)
	res, err := Discover(src, tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	transcript := buf.String()
	for _, want := range []string{"examine 1", "expand:", "rename_att[Emp,nm->Name]", "GOAL"} {
		if !strings.Contains(transcript, want) {
			t.Fatalf("transcript missing %q:\n%s", want, transcript)
		}
	}
	if len(res.Expr) != 1 {
		t.Fatalf("tracing changed the result: %s", res.Expr)
	}
}
