package core

import (
	"strings"
	"testing"

	"tupelo/internal/fira"
	"tupelo/internal/heuristic"
	"tupelo/internal/lambda"
	"tupelo/internal/relation"
	"tupelo/internal/search"
)

// successorLabels expands the source state of a problem and returns the
// operator labels, for direct assertions on candidate generation.
func successorLabels(t *testing.T, src, tgt *relation.Database, opts Options) []string {
	t.Helper()
	opts, err := opts.normalize()
	if err != nil {
		t.Fatal(err)
	}
	prob := newProblem(src, tgt, opts)
	moves, err := prob.Successors(prob.Start())
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]string, len(moves))
	for i, m := range moves {
		labels[i] = m.Label
	}
	return labels
}

func hasLabel(labels []string, want string) bool {
	for _, l := range labels {
		if l == want {
			return true
		}
	}
	return false
}

// The value-evidence rule: renames are only proposed when the column's
// values overlap the target's values under the new name (§2.2's Rosetta
// Stone principle applied to candidate generation).
func TestRenameEvidencePruning(t *testing.T) {
	src := relation.MustDatabase(
		relation.MustNew("R", []string{"A1", "A2"}, relation.Tuple{"a1", "a2"}),
	)
	tgt := relation.MustDatabase(
		relation.MustNew("R", []string{"B1", "B2"}, relation.Tuple{"a1", "a2"}),
	)
	labels := successorLabels(t, src, tgt, DefaultOptions())
	if !hasLabel(labels, "rename_att[R,A1->B1]") || !hasLabel(labels, "rename_att[R,A2->B2]") {
		t.Fatalf("evidence-supported renames missing: %v", labels)
	}
	if hasLabel(labels, "rename_att[R,A1->B2]") || hasLabel(labels, "rename_att[R,A2->B1]") {
		t.Fatalf("cross renames should be pruned by value evidence: %v", labels)
	}
	// Without pruning, all four renames are candidates.
	opts := DefaultOptions()
	opts.DisablePruning = true
	labels = successorLabels(t, src, tgt, opts)
	for _, want := range []string{
		"rename_att[R,A1->B1]", "rename_att[R,A1->B2]",
		"rename_att[R,A2->B1]", "rename_att[R,A2->B2]",
	} {
		if !hasLabel(labels, want) {
			t.Fatalf("pruning disabled but %s missing: %v", want, labels)
		}
	}
}

func TestRelationRenameEvidence(t *testing.T) {
	src := relation.MustDatabase(
		relation.MustNew("Emp", []string{"A"}, relation.Tuple{"ann"}),
		relation.MustNew("Dept", []string{"B"}, relation.Tuple{"sales"}),
	)
	tgt := relation.MustDatabase(
		relation.MustNew("People", []string{"A"}, relation.Tuple{"ann"}),
		relation.MustNew("Units", []string{"B"}, relation.Tuple{"sales"}),
	)
	labels := successorLabels(t, src, tgt, DefaultOptions())
	if !hasLabel(labels, "rename_rel[Emp->People]") || !hasLabel(labels, "rename_rel[Dept->Units]") {
		t.Fatalf("supported relation renames missing: %v", labels)
	}
	if hasLabel(labels, "rename_rel[Emp->Units]") || hasLabel(labels, "rename_rel[Dept->People]") {
		t.Fatalf("cross relation renames should be pruned: %v", labels)
	}
}

// The "obviously inapplicable" rule from §2.3: when every target attribute
// name is present, no attribute renames are generated at all.
func TestRenameSkippedWhenAllAttrsPresent(t *testing.T) {
	src := relation.MustDatabase(
		relation.MustNew("R", []string{"A", "B", "Extra"}, relation.Tuple{"1", "2", "3"}),
	)
	tgt := relation.MustDatabase(
		relation.MustNew("R", []string{"A", "B"}, relation.Tuple{"9", "9"}),
	)
	labels := successorLabels(t, src, tgt, DefaultOptions())
	for _, l := range labels {
		if strings.HasPrefix(l, "rename_att") {
			t.Fatalf("attribute rename generated although all target attributes are present: %v", labels)
		}
	}
}

func TestPromoteCandidatesRequireTargetEvidence(t *testing.T) {
	src := relation.MustDatabase(
		relation.MustNew("Prices", []string{"Carrier", "Route", "Cost", "AgentFee"},
			relation.Tuple{"AirEast", "ATL29", "100", "15"},
		),
	)
	tgt := relation.MustDatabase(
		relation.MustNew("Prices", []string{"Carrier", "ATL29"},
			relation.Tuple{"AirEast", "100"},
		),
	)
	labels := successorLabels(t, src, tgt, DefaultOptions())
	if !hasLabel(labels, "promote[Prices,Route,Cost]") {
		t.Fatalf("evidence-backed promote missing: %v", labels)
	}
	for _, l := range labels {
		if strings.HasPrefix(l, "promote[Prices,Cost") || strings.HasPrefix(l, "promote[Prices,AgentFee") {
			t.Fatalf("promote without attribute-name evidence generated: %v", labels)
		}
	}
}

func TestUnionCandidatesNeedSurplusRelations(t *testing.T) {
	src := relation.MustDatabase(
		relation.MustNew("P1", []string{"A"}, relation.Tuple{"x"}),
		relation.MustNew("P2", []string{"A"}, relation.Tuple{"y"}),
	)
	tgt := relation.MustDatabase(
		relation.MustNew("All", []string{"A"}, relation.Tuple{"x"}, relation.Tuple{"y"}),
	)
	labels := successorLabels(t, src, tgt, DefaultOptions())
	if !hasLabel(labels, "union[P1,P2]") {
		t.Fatalf("union candidate missing: %v", labels)
	}
	// With as many relations as the target wants, no unions are proposed.
	sameCount := relation.MustDatabase(
		relation.MustNew("P1", []string{"A"}, relation.Tuple{"x"}),
	)
	labels = successorLabels(t, sameCount, tgt, DefaultOptions())
	for _, l := range labels {
		if strings.HasPrefix(l, "union") {
			t.Fatalf("union proposed without surplus relations: %v", labels)
		}
	}
}

// TestDiscoverUnionRoundTrip: partitioned source, single-relation target —
// discovery must find the ∪-based mapping.
func TestDiscoverUnionRoundTrip(t *testing.T) {
	src := relation.MustDatabase(
		relation.MustNew("P1", []string{"A", "B"}, relation.Tuple{"x", "1"}),
		relation.MustNew("P2", []string{"A", "B"}, relation.Tuple{"y", "2"}),
	)
	tgt := relation.MustDatabase(
		relation.MustNew("All", []string{"A", "B"},
			relation.Tuple{"x", "1"},
			relation.Tuple{"y", "2"},
		),
	)
	res, err := Discover(src, tgt, Options{
		Algorithm: search.RBFS,
		Heuristic: heuristic.H3,
		Limits:    search.Limits{MaxStates: 50000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(res.Expr, src, tgt, nil); err != nil {
		t.Fatalf("%v\n%s", err, res.Expr)
	}
	foundUnion := false
	for _, op := range res.Expr {
		if _, ok := op.(fira.Union); ok {
			foundUnion = true
		}
	}
	if !foundUnion {
		t.Fatalf("expected a union step:\n%s", res.Expr)
	}
}

// TestApplyEvidence: λ candidates are generated only toward target
// attributes and only when inputs are present.
func TestApplyCandidateFiltering(t *testing.T) {
	src := relation.MustDatabase(
		relation.MustNew("R", []string{"A", "B"}, relation.Tuple{"1", "2"}),
	)
	tgt := relation.MustDatabase(
		relation.MustNew("R", []string{"A", "B", "S"}, relation.Tuple{"1", "2", "3"}),
	)
	opts := DefaultOptions()
	opts.Registry = lambda.Builtins()
	opts.Correspondences = []lambda.Correspondence{
		{Func: "sum", In: []string{"A", "B"}, Out: "S"},                // applicable
		{Func: "sum", In: []string{"A", "Z"}, Out: "S"},                // missing input
		{Func: "sum", In: []string{"A", "B"}, Out: "Unwanted"},         // not a target attribute
		{Func: "sum", In: []string{"A", "B"}, Out: "S2", Rel: "Other"}, // wrong relation
	}
	// The last correspondence's Out is not in the target either, but the
	// relation filter already excludes it.
	labels := successorLabels(t, src, tgt, opts)
	if !hasLabel(labels, "apply[R,sum:A,B->S]") {
		t.Fatalf("applicable λ missing: %v", labels)
	}
	count := 0
	for _, l := range labels {
		if strings.HasPrefix(l, "apply") {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("expected exactly 1 λ candidate, got %d: %v", count, labels)
	}
}
