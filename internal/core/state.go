// Package core implements the TUPELO data mapping engine of "Data Mapping
// as Search" (EDBT 2006): given critical instances s and t of a source and
// target schema (the Rosetta Stone principle, §2.2), it searches the space
// of transformations of s under the language L (package fira) until a state
// containing t is reached (§2.3). The transformation path is the discovered
// mapping expression.
package core

import (
	"tupelo/internal/heuristic"
	"tupelo/internal/relation"
)

// dbState adapts a relational database to the search.State interface.
// The key is the database's compact 128-bit identity (relation.Database.Key),
// computed once and cached, since IDA and RBFS revisit states frequently.
// Per-relation canonical forms are memoized on the relations themselves, so
// keying a successor that replaced one relation copy-on-write only pays for
// hashing that relation; the shared relations reuse their cached hashes.
type dbState struct {
	db  *relation.Database
	key string

	// agg is the state's heuristic aggregate when the run's evaluator is
	// incremental: successors derive theirs by delta-merging the replaced
	// relation's fragment against this one. Written either on the search
	// goroutine (seeding a parent in Successors, before workers launch) or
	// by the single worker that created the state in prewarm — never
	// concurrently. Nil when the evaluator is not incremental or the state
	// was reconstructed without one (e.g. the cycle-check ablation wrapper).
	agg heuristic.Agg
}

func newState(db *relation.Database) *dbState {
	return &dbState{db: db, key: db.Key()}
}

// Key implements search.State.
func (s *dbState) Key() string { return s.key }

// Database returns the underlying database.
func (s *dbState) Database() *relation.Database { return s.db }
