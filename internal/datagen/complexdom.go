package datagen

import (
	"fmt"

	"tupelo/internal/fira"
	"tupelo/internal/lambda"
	"tupelo/internal/relation"
)

// ComplexDomain is one of the Experiment 3 domains (§5.3): a source schema
// with a set of complex (many-to-one) semantic correspondences into a
// target schema. The Illinois Semantic Integration Archive datasets the
// paper used (Inventory: 10 complex mappings; Real Estate II: 12) are no
// longer available, so both domains are reconstructed with the published
// number and kinds of correspondences (arithmetic, concatenation, unit and
// format conversions, lookups).
type ComplexDomain struct {
	// Name is the domain name.
	Name string
	// Source is the source critical instance.
	Source *relation.Database
	// Registry resolves the domain's complex functions.
	Registry *lambda.Registry
	// Corrs are all available complex correspondences (10 or 12).
	Corrs []lambda.Correspondence

	srcRel  string
	keyAttr string
}

// Inventory reconstructs the Inventory domain with its 10 complex
// correspondences.
func Inventory() *ComplexDomain {
	reg := lambda.Builtins()
	reg.MustRegister(lambda.LookupTable("category_code", map[string]string{
		"Tools":       "T01",
		"Electronics": "E01",
	}))
	src := relation.MustDatabase(
		relation.MustNew("Items",
			[]string{"ItemID", "Product", "Qty", "Reserved", "UnitPrice", "UnitCost", "Shipping", "WeightLb", "Listed", "SupFirst", "SupLast", "Category"},
			relation.Tuple{"i1", "Widget", "12", "2", "5", "3", "1", "100", "7/4/2006", "John", "Smith", "Tools"},
			relation.Tuple{"i2", "Gadget", "8", "1", "10", "6", "2", "50", "1/15/2006", "Jane", "Doe", "Electronics"},
		),
	)
	corrs := []lambda.Correspondence{
		{Func: "product", In: []string{"UnitPrice", "Qty"}, Out: "TotalPrice"},
		{Func: "product", In: []string{"UnitCost", "Qty"}, Out: "TotalCost"},
		{Func: "difference", In: []string{"UnitPrice", "UnitCost"}, Out: "Margin"},
		{Func: "lb_to_kg", In: []string{"WeightLb"}, Out: "WeightKg"},
		{Func: "usd_to_eur", In: []string{"UnitPrice"}, Out: "PriceEUR"},
		{Func: "concat", In: []string{"SupFirst", "SupLast"}, Out: "Supplier"},
		{Func: "date_us_to_iso", In: []string{"Listed"}, Out: "ListedISO"},
		{Func: "category_code", In: []string{"Category"}, Out: "CatCode"},
		{Func: "sum", In: []string{"UnitPrice", "Shipping"}, Out: "Delivered"},
		{Func: "difference", In: []string{"Qty", "Reserved"}, Out: "Available"},
	}
	return &ComplexDomain{
		Name: "Inventory", Source: src, Registry: reg, Corrs: corrs,
		srcRel: "Items", keyAttr: "ItemID",
	}
}

// RealEstateII reconstructs the Real Estate II domain with its 12 complex
// correspondences.
func RealEstateII() *ComplexDomain {
	reg := lambda.Builtins()
	reg.MustRegister(lambda.LookupTable("state_code", map[string]string{
		"Indiana":  "IN",
		"Illinois": "IL",
	}))
	reg.MustRegister(lambda.Scale("sqft_to_acre", 1.0/43560))
	reg.MustRegister(lambda.Scale("per_month", 1.0/12))
	reg.MustRegister(lambda.Scale("sqft_to_sqm", 0.09290304))
	src := relation.MustDatabase(
		relation.MustNew("Listings",
			[]string{"MLS", "Street", "City", "State", "Beds", "Baths", "SqFt", "LotSqFt", "PriceUSD", "TaxUSD", "AgentFirst", "AgentLast", "Listed"},
			relation.Tuple{"m1", "12 Oak St", "Bloomington", "Indiana", "3", "2", "1500", "8000", "250000", "2400", "Ann", "Lee", "3/2/2006"},
			relation.Tuple{"m2", "9 Elm Ave", "Chicago", "Illinois", "2", "1", "900", "4000", "310000", "3100", "Bob", "Ray", "11/20/2005"},
		),
	)
	corrs := []lambda.Correspondence{
		{Func: "concat", In: []string{"Street", "City"}, Out: "Address"},
		{Func: "concat", In: []string{"AgentFirst", "AgentLast"}, Out: "Agent"},
		{Func: "usd_to_eur", In: []string{"PriceUSD"}, Out: "PriceEUR"},
		{Func: "sum", In: []string{"Beds", "Baths"}, Out: "TotalRooms"},
		{Func: "ratio", In: []string{"PriceUSD", "SqFt"}, Out: "PricePerSqFt"},
		{Func: "sqft_to_acre", In: []string{"LotSqFt"}, Out: "LotAcres"},
		{Func: "date_us_to_iso", In: []string{"Listed"}, Out: "ListedISO"},
		{Func: "per_month", In: []string{"TaxUSD"}, Out: "TaxMonthly"},
		{Func: "sum", In: []string{"PriceUSD", "TaxUSD"}, Out: "FirstYearCost"},
		{Func: "state_code", In: []string{"State"}, Out: "StateCode"},
		{Func: "sqft_to_sqm", In: []string{"SqFt"}, Out: "SqM"},
		{Func: "concat", In: []string{"City", "State"}, Out: "Region"},
	}
	return &ComplexDomain{
		Name: "RealEstateII", Source: src, Registry: reg, Corrs: corrs,
		srcRel: "Listings", keyAttr: "MLS",
	}
}

// Task derives the mapping task with the first n complex functions: the
// target critical instance holds the key attribute plus the n function
// outputs (computed by actually running the functions). The relation name
// is unchanged, so the task isolates λ discovery — exactly the quantity the
// paper's Fig. 9 varies on its x-axis. It returns the source instance, the
// target instance, and the n correspondences to hand to the mapper.
func (d *ComplexDomain) Task(n int) (src, tgt *relation.Database, corrs []lambda.Correspondence, err error) {
	if n < 1 || n > len(d.Corrs) {
		return nil, nil, nil, fmt.Errorf("datagen: %s supports 1..%d complex functions, got %d", d.Name, len(d.Corrs), n)
	}
	corrs = append([]lambda.Correspondence(nil), d.Corrs[:n]...)
	expr := fira.Expr{}
	outs := []string{d.keyAttr}
	for _, c := range corrs {
		expr = expr.Then(fira.Apply{Rel: d.srcRel, Func: c.Func, In: c.In, Out: c.Out})
		outs = append(outs, c.Out)
	}
	full, err := expr.Eval(d.Source, d.Registry)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("datagen: computing %s target: %v", d.Name, err)
	}
	r, _ := full.Relation(d.srcRel)
	proj, err := r.Project(outs)
	if err != nil {
		return nil, nil, nil, err
	}
	tgt, err = relation.NewDatabase(proj)
	if err != nil {
		return nil, nil, nil, err
	}
	return d.Source, tgt, corrs, nil
}
