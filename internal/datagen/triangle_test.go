package datagen

import (
	"testing"

	"tupelo/internal/fira"
	"tupelo/internal/lambda"
	"tupelo/internal/relation"
)

// The paper's Example 1 claims TUPELO's language can map between all three
// Fig. 1 databases. These tests write out an L expression for every one of
// the six directions and execute it; σ-free L yields supersets in the
// directions that shed structure, which is exactly the containment the
// goal test (§2.3) asks for. Directions that rebuild all structure land on
// the target exactly.

func evalTriangle(t *testing.T, src *relation.Database, exprText string) *relation.Database {
	t.Helper()
	got, err := fira.MustParse(exprText).Eval(src, lambda.Builtins())
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// B→A: Example 2 of the paper (promote + drop + merge + renames).
func TestTriangleBToA(t *testing.T) {
	got := evalTriangle(t, FlightsB(), `
		promote[Prices,Route,Cost]
		drop[Prices,Route]
		drop[Prices,Cost]
		merge[Prices,Carrier]
		rename_att[Prices,AgentFee->Fee]
		rename_rel[Prices->Flights]
	`)
	if !got.Equal(FlightsA()) {
		t.Fatalf("B→A:\n%s", got)
	}
}

// A→B: demote the route attributes back into data; the demoted metadata
// rows for Carrier and Fee survive (σ is post-processing), so the result
// strictly contains FlightsB.
func TestTriangleAToB(t *testing.T) {
	got := evalTriangle(t, FlightsA(), `
		demote[Flights]
		deref[Flights,_ATT->Cost]
		rename_att[Flights,_ATT->Route]
		drop[Flights,_REL]
		rename_att[Flights,Fee->AgentFee]
		drop[Flights,ATL29]
		drop[Flights,ORD17]
		rename_rel[Flights->Prices]
	`)
	if !got.Contains(FlightsB()) {
		t.Fatalf("A→B does not contain FlightsB:\n%s", got)
	}
}

// B→C: the complex function f3 (TotalCost = Cost + AgentFee) plus a
// partition on Carrier; exact.
func TestTriangleBToC(t *testing.T) {
	got := evalTriangle(t, FlightsB(), `
		apply[Prices,sum:Cost,AgentFee->TotalCost]
		rename_att[Prices,Cost->BaseCost]
		drop[Prices,AgentFee]
		partition[Prices,Carrier]
		drop[AirEast,Carrier]
		drop[JetWest,Carrier]
	`)
	if !got.Equal(FlightsC()) {
		t.Fatalf("B→C:\n%s", got)
	}
}

// C→B: the inverse complex function (AgentFee = TotalCost − BaseCost),
// relation names demoted into the Carrier column, and the per-carrier
// relations collapsed with the outer union ∪ (the FIRA operator beyond the
// paper's Table 1 fragment that these directions need).
func TestTriangleCToB(t *testing.T) {
	got := evalTriangle(t, FlightsC(), `
		apply[AirEast,difference:TotalCost,BaseCost->AgentFee]
		apply[JetWest,difference:TotalCost,BaseCost->AgentFee]
		demote[AirEast]
		demote[JetWest]
		drop[AirEast,_ATT]
		drop[JetWest,_ATT]
		rename_att[AirEast,_REL->Carrier]
		rename_att[JetWest,_REL->Carrier]
		union[AirEast,JetWest]
		rename_att[AirEast,BaseCost->Cost]
		rename_rel[AirEast->Prices]
	`)
	if !got.Contains(FlightsB()) {
		t.Fatalf("C→B does not contain FlightsB:\n%s", got)
	}
}

// A→C: demote the route attributes, dereference their costs, compute
// TotalCost with f3, and partition by carrier. The λ is undefined on the
// demoted metadata rows (BaseCost = "AirEast" is not a number) and leaves
// them absent — the per-tuple identity semantics of §4.
func TestTriangleAToC(t *testing.T) {
	got := evalTriangle(t, FlightsA(), `
		demote[Flights]
		deref[Flights,_ATT->BaseCost]
		rename_att[Flights,_ATT->Route]
		apply[Flights,sum:BaseCost,Fee->TotalCost]
		partition[Flights,Carrier]
	`)
	if !got.Contains(FlightsC()) {
		t.Fatalf("A→C does not contain FlightsC:\n%s", got)
	}
}

// C→A: rebuild the pivoted table per carrier (promote + merge), recover
// the carrier names from the relation names (demote), and collapse with
// the outer union; exact.
func TestTriangleCToA(t *testing.T) {
	got := evalTriangle(t, FlightsC(), `
		apply[AirEast,difference:TotalCost,BaseCost->Fee]
		promote[AirEast,Route,BaseCost]
		drop[AirEast,Route]
		drop[AirEast,BaseCost]
		drop[AirEast,TotalCost]
		demote[AirEast]
		drop[AirEast,_ATT]
		rename_att[AirEast,_REL->Carrier]
		merge[AirEast,Carrier]

		apply[JetWest,difference:TotalCost,BaseCost->Fee]
		promote[JetWest,Route,BaseCost]
		drop[JetWest,Route]
		drop[JetWest,BaseCost]
		drop[JetWest,TotalCost]
		demote[JetWest]
		drop[JetWest,_ATT]
		rename_att[JetWest,_REL->Carrier]
		merge[JetWest,Carrier]

		union[AirEast,JetWest]
		rename_rel[AirEast->Flights]
	`)
	if !got.Equal(FlightsA()) {
		t.Fatalf("C→A:\n%s", got)
	}
}
