package datagen

import (
	"fmt"

	"tupelo/internal/relation"
)

// MatchingPair builds the Experiment 1 workload (§5.1): a pair of schemas
// with n attributes each, populated with one tuple illustrating the
// correspondences A_i ↔ B_i:
//
//	⟨ A1 … An        B1 … Bn ⟩
//	  a1 … an   ,    a1 … an
//
// The correct mapping is the n attribute renames A_i → B_i. A non-positive
// n is an error: library callers (experiment runners, services) get a value
// they can propagate instead of a panic the resilience layer would have to
// catch; MustMatchingPair keeps the panicking form for tests and fixtures.
func MatchingPair(n int) (src, tgt *relation.Database, err error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("datagen: MatchingPair(%d): n must be positive", n)
	}
	aAttrs := make([]string, n)
	bAttrs := make([]string, n)
	row := make(relation.Tuple, n)
	for i := 0; i < n; i++ {
		aAttrs[i] = fmt.Sprintf("A%d", i+1)
		bAttrs[i] = fmt.Sprintf("B%d", i+1)
		row[i] = fmt.Sprintf("a%d", i+1)
	}
	src = relation.MustDatabase(relation.MustNew("S", aAttrs, row.Clone()))
	tgt = relation.MustDatabase(relation.MustNew("S", bAttrs, row.Clone()))
	return src, tgt, nil
}

// MustMatchingPair is MatchingPair panicking on error, for tests and
// fixtures with known-good sizes.
func MustMatchingPair(n int) (src, tgt *relation.Database) {
	src, tgt, err := MatchingPair(n)
	if err != nil {
		panic(err)
	}
	return src, tgt
}
