// Package datagen builds the workloads of the paper's evaluation (§5):
// the Fig. 1 airline databases, the synthetic schema-matching pairs of
// Experiment 1, a faithful stand-in for the BAMM deep-web schema collection
// of Experiment 2, and the Inventory / Real Estate II complex-mapping
// domains of Experiment 3. All generators are deterministic given a seed.
package datagen

import (
	"fmt"

	"tupelo/internal/relation"
)

// FlightsA returns the paper's Fig. 1 database FlightsA: routes as
// attribute names, one row per carrier.
func FlightsA() *relation.Database {
	return relation.MustDatabase(
		relation.MustNew("Flights", []string{"Carrier", "Fee", "ATL29", "ORD17"},
			relation.Tuple{"AirEast", "15", "100", "110"},
			relation.Tuple{"JetWest", "16", "200", "220"},
		),
	)
}

// FlightsB returns Fig. 1's FlightsB: fully flat, one row per
// (carrier, route) pair.
func FlightsB() *relation.Database {
	return relation.MustDatabase(
		relation.MustNew("Prices", []string{"Carrier", "Route", "Cost", "AgentFee"},
			relation.Tuple{"AirEast", "ATL29", "100", "15"},
			relation.Tuple{"JetWest", "ATL29", "200", "16"},
			relation.Tuple{"AirEast", "ORD17", "110", "15"},
			relation.Tuple{"JetWest", "ORD17", "220", "16"},
		),
	)
}

// FlightsScaled generalizes the Fig. 1 pair to arbitrary size: a FlightsB-
// style source with carriers × routes rows and a FlightsA-style target with
// one attribute per route. The mapping is Example 2's regardless of size
// (promote, two drops, merge, two renames), so the pair isolates how
// critical-instance *size* — the |s| + |t| of §2.3 — affects branching and
// states examined. Used by the scaling extension experiment. Invalid sizes
// are errors, not panics, so library callers can propagate them;
// MustFlightsScaled keeps the panicking form for tests and fixtures.
func FlightsScaled(routes, carriers int) (src, tgt *relation.Database, err error) {
	if routes < 1 || carriers < 1 {
		return nil, nil, fmt.Errorf("datagen: FlightsScaled(%d, %d) needs at least one route and carrier", routes, carriers)
	}
	routeNames := make([]string, routes)
	for i := range routeNames {
		routeNames[i] = fmt.Sprintf("RT%02d", i+1)
	}
	carrierNames := make([]string, carriers)
	fees := make([]int, carriers)
	for i := range carrierNames {
		carrierNames[i] = fmt.Sprintf("Air%02d", i+1)
		fees[i] = 10 + i
	}
	cost := func(c, r int) int { return 100*(c+1) + 10*r }

	srcRel := relation.MustNew("Prices", []string{"Carrier", "Route", "Cost", "AgentFee"})
	for c := range carrierNames {
		for r := range routeNames {
			srcRel, err = srcRel.Insert(relation.Tuple{
				carrierNames[c], routeNames[r],
				fmt.Sprintf("%d", cost(c, r)), fmt.Sprintf("%d", fees[c]),
			})
			if err != nil {
				return nil, nil, fmt.Errorf("datagen: FlightsScaled source: %w", err)
			}
		}
	}
	tgtRel := relation.MustNew("Flights", append([]string{"Carrier", "Fee"}, routeNames...))
	for c := range carrierNames {
		row := relation.Tuple{carrierNames[c], fmt.Sprintf("%d", fees[c])}
		for r := range routeNames {
			row = append(row, fmt.Sprintf("%d", cost(c, r)))
		}
		tgtRel, err = tgtRel.Insert(row)
		if err != nil {
			return nil, nil, fmt.Errorf("datagen: FlightsScaled target: %w", err)
		}
	}
	return relation.MustDatabase(srcRel), relation.MustDatabase(tgtRel), nil
}

// MustFlightsScaled is FlightsScaled panicking on error, for tests and
// fixtures with known-good sizes.
func MustFlightsScaled(routes, carriers int) (src, tgt *relation.Database) {
	src, tgt, err := FlightsScaled(routes, carriers)
	if err != nil {
		panic(err)
	}
	return src, tgt
}

// FlightsC returns Fig. 1's FlightsC: carriers as relation names, with the
// complex TotalCost column (BaseCost + the carrier's fee).
func FlightsC() *relation.Database {
	return relation.MustDatabase(
		relation.MustNew("AirEast", []string{"Route", "BaseCost", "TotalCost"},
			relation.Tuple{"ATL29", "100", "115"},
			relation.Tuple{"ORD17", "110", "125"},
		),
		relation.MustNew("JetWest", []string{"Route", "BaseCost", "TotalCost"},
			relation.Tuple{"ATL29", "200", "216"},
			relation.Tuple{"ORD17", "220", "236"},
		),
	)
}
