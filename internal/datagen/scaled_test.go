package datagen

import (
	"testing"

	"tupelo/internal/fira"
)

// The scaled Fig. 1 pair must stay consistent: Example 2's mapping carries
// the scaled source exactly onto the scaled target for every grid size.
func TestFlightsScaledConsistent(t *testing.T) {
	expr := fira.MustParse(`
		promote[Prices,Route,Cost]
		drop[Prices,Route]
		drop[Prices,Cost]
		merge[Prices,Carrier]
		rename_att[Prices,AgentFee->Fee]
		rename_rel[Prices->Flights]
	`)
	for _, g := range [][2]int{{1, 1}, {2, 2}, {3, 2}, {5, 4}, {8, 3}} {
		src, tgt := MustFlightsScaled(g[0], g[1])
		got, err := expr.Eval(src, nil)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if !got.Equal(tgt) {
			t.Fatalf("grid %v: mapped source does not equal target:\n%s\nvs\n%s", g, got, tgt)
		}
	}
}

func TestFlightsScaledSizes(t *testing.T) {
	src, tgt := MustFlightsScaled(7, 5)
	s, _ := src.Relation("Prices")
	g, _ := tgt.Relation("Flights")
	if s.Len() != 35 || g.Len() != 5 || g.Arity() != 9 {
		t.Fatalf("7×5 shapes: src %d×%d, tgt %d×%d", s.Len(), s.Arity(), g.Len(), g.Arity())
	}
	// Distinct costs everywhere (set semantics must not collapse rows).
	costs, _ := s.ValuesOf("Cost")
	if len(costs) != 35 {
		t.Fatalf("expected 35 distinct costs, got %d", len(costs))
	}
}

func TestFlightsScaledRejectsZeroCarriers(t *testing.T) {
	if _, _, err := FlightsScaled(1, 0); err == nil {
		t.Fatal("FlightsScaled(1, 0) should return an error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustFlightsScaled(1, 0) should panic")
		}
	}()
	MustFlightsScaled(1, 0)
}
