package datagen

import (
	"fmt"
	"testing"

	"tupelo/internal/core"
	"tupelo/internal/fira"
	"tupelo/internal/heuristic"
	"tupelo/internal/lambda"
	"tupelo/internal/search"
)

func TestFlightsFixtures(t *testing.T) {
	a, b, c := FlightsA(), FlightsB(), FlightsC()
	if a.Len() != 1 || b.Len() != 1 || c.Len() != 2 {
		t.Fatalf("relation counts: %d %d %d", a.Len(), b.Len(), c.Len())
	}
	// Example 2's mapping must carry B to exactly A — the fixtures encode
	// the same information (Rosetta Stone principle).
	expr := fira.MustParse(`
		promote[Prices,Route,Cost]
		drop[Prices,Route]
		drop[Prices,Cost]
		merge[Prices,Carrier]
		rename_att[Prices,AgentFee->Fee]
		rename_rel[Prices->Flights]
	`)
	got, err := expr.Eval(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(a) {
		t.Fatalf("fixtures are inconsistent:\n%s\nvs\n%s", got, a)
	}
}

func TestMatchingPairShape(t *testing.T) {
	for _, n := range []int{1, 2, 8, 32} {
		src, tgt := MustMatchingPair(n)
		s, _ := src.Relation("S")
		g, _ := tgt.Relation("S")
		if s.Arity() != n || g.Arity() != n || s.Len() != 1 || g.Len() != 1 {
			t.Fatalf("n=%d: %dx%d -> %dx%d", n, s.Len(), s.Arity(), g.Len(), g.Arity())
		}
		// Same values, disjoint attribute names.
		for _, a := range s.Attrs() {
			if g.HasAttr(a) {
				t.Fatalf("n=%d: attribute %s shared", n, a)
			}
		}
	}
}

func TestMatchingPairRejectsZero(t *testing.T) {
	if _, _, err := MatchingPair(0); err == nil {
		t.Fatal("MatchingPair(0) should return an error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustMatchingPair(0) should panic")
		}
	}()
	MustMatchingPair(0)
}

func TestMatchingPairDiscoverable(t *testing.T) {
	src, tgt := MustMatchingPair(4)
	res, err := core.Discover(src, tgt, core.Options{
		Algorithm: search.RBFS,
		Heuristic: heuristic.H1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Expr) != 4 {
		t.Fatalf("mapping has %d steps, want 4:\n%s", len(res.Expr), res.Expr)
	}
	if err := core.Verify(res.Expr, src, tgt, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBAMMShape(t *testing.T) {
	domains := BAMM(1)
	if len(domains) != 4 {
		t.Fatalf("got %d domains, want 4", len(domains))
	}
	wantCounts := map[string]int{"Books": 55, "Auto": 55, "Music": 49, "Movies": 52}
	for _, d := range domains {
		want, ok := wantCounts[d.Name]
		if !ok {
			t.Fatalf("unexpected domain %s", d.Name)
		}
		// Fixed schema + targets = the paper's published count.
		if got := len(d.Targets) + 1; got != want {
			t.Fatalf("%s has %d schemas, want %d", d.Name, got, want)
		}
		fixed := d.Fixed.Relations()[0]
		if fixed.Arity() != 8 {
			t.Fatalf("%s fixed schema arity = %d, want 8 (all concepts)", d.Name, fixed.Arity())
		}
		for i, tgt := range d.Targets {
			r := tgt.Relations()[0]
			if r.Arity() < 1 || r.Arity() > 8 {
				t.Fatalf("%s target %d arity = %d, want 1..8", d.Name, i, r.Arity())
			}
			if r.Len() != 1 {
				t.Fatalf("%s target %d has %d tuples, want 1", d.Name, i, r.Len())
			}
			if r.Name() != fixed.Name() {
				t.Fatalf("%s target %d relation name %q differs from fixed %q", d.Name, i, r.Name(), fixed.Name())
			}
		}
	}
}

func TestBAMMDeterministic(t *testing.T) {
	a, b := BAMM(42), BAMM(42)
	for i := range a {
		if !a[i].Fixed.Equal(b[i].Fixed) {
			t.Fatalf("%s fixed not deterministic", a[i].Name)
		}
		for j := range a[i].Targets {
			if !a[i].Targets[j].Equal(b[i].Targets[j]) {
				t.Fatalf("%s target %d not deterministic", a[i].Name, j)
			}
		}
	}
	c := BAMM(43)
	same := true
	for i := range a {
		for j := range a[i].Targets {
			if !a[i].Targets[j].Equal(c[i].Targets[j]) {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical domains")
	}
}

func TestBAMMEveryTargetReachable(t *testing.T) {
	// Every sibling schema must be reachable from the fixed schema: all its
	// values appear in the fixed instance, and its attributes are either
	// shared or renameable. Verify by discovery on a sample.
	domains := BAMM(7)
	for _, d := range domains {
		for i := 0; i < len(d.Targets); i += 10 {
			tgt := d.Targets[i]
			res, err := core.Discover(d.Fixed, tgt, core.Options{
				Algorithm: search.RBFS,
				Heuristic: heuristic.Cosine,
				Limits:    search.Limits{MaxStates: 100000},
			})
			if err != nil {
				t.Fatalf("%s target %d: %v", d.Name, i, err)
			}
			if err := core.Verify(res.Expr, d.Fixed, tgt, nil); err != nil {
				t.Fatalf("%s target %d: %v", d.Name, i, err)
			}
		}
	}
}

func TestComplexDomainCounts(t *testing.T) {
	if n := len(Inventory().Corrs); n != 10 {
		t.Fatalf("Inventory has %d correspondences, want 10 (paper §5.3)", n)
	}
	if n := len(RealEstateII().Corrs); n != 12 {
		t.Fatalf("RealEstateII has %d correspondences, want 12 (paper §5.3)", n)
	}
}

func TestComplexDomainTaskShape(t *testing.T) {
	for _, d := range []*ComplexDomain{Inventory(), RealEstateII()} {
		for n := 1; n <= 8; n++ {
			src, tgt, corrs, err := d.Task(n)
			if err != nil {
				t.Fatalf("%s Task(%d): %v", d.Name, n, err)
			}
			if len(corrs) != n {
				t.Fatalf("%s Task(%d): %d correspondences", d.Name, n, len(corrs))
			}
			r := tgt.Relations()[0]
			if r.Arity() != n+1 { // key + n outputs
				t.Fatalf("%s Task(%d): target arity %d, want %d", d.Name, n, r.Arity(), n+1)
			}
			if src != d.Source {
				t.Fatalf("%s Task(%d): source changed", d.Name, n)
			}
		}
		if _, _, _, err := d.Task(0); err == nil {
			t.Fatalf("%s Task(0) should fail", d.Name)
		}
		if _, _, _, err := d.Task(len(d.Corrs) + 1); err == nil {
			t.Fatalf("%s Task(too many) should fail", d.Name)
		}
	}
}

func TestComplexDomainTaskDiscoverable(t *testing.T) {
	for _, d := range []*ComplexDomain{Inventory(), RealEstateII()} {
		for _, n := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/%d", d.Name, n), func(t *testing.T) {
				src, tgt, corrs, err := d.Task(n)
				if err != nil {
					t.Fatal(err)
				}
				res, err := core.Discover(src, tgt, core.Options{
					Algorithm:       search.RBFS,
					Heuristic:       heuristic.Cosine,
					Registry:        d.Registry,
					Correspondences: corrs,
					Limits:          search.Limits{MaxStates: 100000},
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := core.Verify(res.Expr, src, tgt, d.Registry); err != nil {
					t.Fatalf("%v\n%s", err, res.Expr)
				}
				// The mapping needs exactly n λ steps plus the relation
				// rename; tolerate reorderings but count λs.
				lambdas := 0
				for _, op := range res.Expr {
					if _, ok := op.(fira.Apply); ok {
						lambdas++
					}
				}
				if lambdas != n {
					t.Fatalf("expected %d λ steps, got %d:\n%s", n, lambdas, res.Expr)
				}
			})
		}
	}
}

func TestComplexDomainRegistriesIndependent(t *testing.T) {
	// Each call builds fresh registries; registering domain lookups twice
	// must not collide.
	a := Inventory()
	b := Inventory()
	if a.Registry == b.Registry {
		t.Fatal("registries shared between instances")
	}
	if _, ok := a.Registry.Lookup("category_code"); !ok {
		t.Fatal("category_code missing")
	}
	var _ = lambda.Correspondence{}
}
