package datagen

import (
	"math/rand"

	"tupelo/internal/relation"
)

// BAMMDomain is one domain of the Books/Automobiles/Music/Movies (BAMM)
// collection of deep-web query schemas used in Experiment 2 (§5.2). The
// original dataset (UIUC Web Integration Repository) is no longer
// distributable, so the generator reconstructs its published shape: four
// domains with 55, 55, 49, and 52 schemas of 1–8 attributes drawn from
// per-domain vocabularies with synonym variation. The experiment maps a
// fixed schema in each domain to every sibling schema, so what matters is
// schema size and attribute-name overlap — both reproduced here.
type BAMMDomain struct {
	// Name is the domain name (Books, Auto, Music, Movies).
	Name string
	// Fixed is the critical instance of the fixed source schema, which
	// covers every domain concept so a mapping to any sibling exists.
	Fixed *relation.Database
	// Targets are the critical instances of the sibling schemas.
	Targets []*relation.Database
}

// concept is a domain concept with its synonymous attribute names (the
// first synonym is canonical) and an example value.
type concept struct {
	synonyms []string
	value    string
}

// domainSpec describes one BAMM domain.
type domainSpec struct {
	name     string
	relName  string
	count    int // schemas in the domain, per the paper
	concepts []concept
}

func bammSpecs() []domainSpec {
	return []domainSpec{
		{
			name: "Books", relName: "BookSearch", count: 55,
			concepts: []concept{
				{[]string{"Title", "BookTitle", "Name"}, "The Hobbit"},
				{[]string{"Author", "Writer", "AuthorName"}, "Tolkien"},
				{[]string{"ISBN", "ISBNNumber"}, "0618968633"},
				{[]string{"Publisher", "Press"}, "HMH"},
				{[]string{"Price", "Cost", "ListPrice"}, "12.99"},
				{[]string{"Format", "Binding"}, "Paperback"},
				{[]string{"Subject", "Category", "Genre"}, "Fantasy"},
				{[]string{"Keyword", "SearchTerm"}, "dragons"},
			},
		},
		{
			name: "Auto", relName: "CarSearch", count: 55,
			concepts: []concept{
				{[]string{"Make", "Brand", "Manufacturer"}, "Honda"},
				{[]string{"Model", "ModelName"}, "Civic"},
				{[]string{"Year", "ModelYear"}, "2004"},
				{[]string{"Price", "AskingPrice", "Cost"}, "8500"},
				{[]string{"Mileage", "Miles", "Odometer"}, "72000"},
				{[]string{"Color", "ExteriorColor"}, "Silver"},
				{[]string{"ZipCode", "Zip", "Location"}, "47401"},
				{[]string{"BodyStyle", "Type"}, "Sedan"},
			},
		},
		{
			name: "Music", relName: "MusicSearch", count: 49,
			concepts: []concept{
				{[]string{"Artist", "Band", "Performer"}, "Miles Davis"},
				{[]string{"Album", "AlbumTitle", "Record"}, "Kind of Blue"},
				{[]string{"Song", "Track", "SongTitle"}, "So What"},
				{[]string{"Genre", "Style", "Category"}, "Jazz"},
				{[]string{"Label", "RecordLabel"}, "Columbia"},
				{[]string{"Year", "ReleaseYear"}, "1959"},
				{[]string{"Format", "Media"}, "CD"},
				{[]string{"Price", "Cost"}, "9.99"},
			},
		},
		{
			name: "Movies", relName: "MovieSearch", count: 52,
			concepts: []concept{
				{[]string{"Title", "MovieTitle", "Name"}, "Metropolis"},
				{[]string{"Director", "DirectedBy"}, "Fritz Lang"},
				{[]string{"Actor", "Star", "Cast"}, "Brigitte Helm"},
				{[]string{"Genre", "Category", "Kind"}, "SciFi"},
				{[]string{"Year", "ReleaseYear"}, "1927"},
				{[]string{"Rating", "MPAA"}, "NR"},
				{[]string{"Format", "Media"}, "DVD"},
				{[]string{"Studio", "Distributor"}, "UFA"},
			},
		},
	}
}

// BAMM generates the four domains deterministically from the seed.
func BAMM(seed int64) []BAMMDomain {
	specs := bammSpecs()
	out := make([]BAMMDomain, len(specs))
	for i, spec := range specs {
		rng := rand.New(rand.NewSource(seed + int64(i)*7919))
		out[i] = genDomain(spec, rng)
	}
	return out
}

func genDomain(spec domainSpec, rng *rand.Rand) BAMMDomain {
	d := BAMMDomain{Name: spec.name}
	// The fixed schema covers all concepts with canonical attribute names.
	d.Fixed = schemaInstance(spec, allConceptIdx(spec), nil)
	// Sibling schemas: count-1 of them, sizes 1..min(8, #concepts),
	// synonyms chosen at random.
	for n := 0; n < spec.count-1; n++ {
		size := 1 + rng.Intn(8)
		if size > len(spec.concepts) {
			size = len(spec.concepts)
		}
		idx := rng.Perm(len(spec.concepts))[:size]
		syn := make(map[int]int, size)
		for _, ci := range idx {
			syn[ci] = rng.Intn(len(spec.concepts[ci].synonyms))
		}
		d.Targets = append(d.Targets, schemaInstance(spec, idx, syn))
	}
	return d
}

func allConceptIdx(spec domainSpec) []int {
	idx := make([]int, len(spec.concepts))
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// schemaInstance builds the critical instance of one schema: the chosen
// concepts under the chosen synonyms, with one tuple of the domain's
// canonical values (the Rosetta Stone principle: every schema illustrates
// the same information).
func schemaInstance(spec domainSpec, conceptIdx []int, synonymOf map[int]int) *relation.Database {
	attrs := make([]string, len(conceptIdx))
	row := make(relation.Tuple, len(conceptIdx))
	for i, ci := range conceptIdx {
		s := 0
		if synonymOf != nil {
			s = synonymOf[ci]
		}
		attrs[i] = spec.concepts[ci].synonyms[s]
		row[i] = spec.concepts[ci].value
	}
	return relation.MustDatabase(relation.MustNew(spec.relName, attrs, row))
}
