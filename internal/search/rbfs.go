package search

import (
	"cmp"
	"context"
	"slices"
)

// RecursiveBestFirst runs RBFS (Korf 1993; §2.3 of the paper): a localized,
// recursive best-first exploration that keeps track of a locally optimal
// f-value and backtracks when it is exceeded, backing up the best known
// f-value of each abandoned subtree. Like IDA it uses memory linear in the
// search depth and may re-generate subtrees. The context is checked at
// every examined state.
func RecursiveBestFirst(ctx context.Context, p Problem, h Heuristic, lim Limits) (*Result, error) {
	start := p.Start()
	c := newCounter(ctx, "RBFS", lim)
	hs := h(start)
	c.candidate(start, hs, func() []Move { return nil })
	onPath := map[string]bool{start.Key(): true}
	var path []Move
	hCache := make(map[string][]int)
	res, _, err := rbfs(p, h, c, start, 0, hs, inf, &path, onPath, hCache, &rbfsScratch{})
	if err != nil {
		return nil, c.fail(err)
	}
	if res == nil {
		return nil, c.fail(ErrNotFound)
	}
	return c.finish(res), nil
}

// rbfsChild is a successor with its backed-up f-value. The raw h-value is
// kept as a tie-breaker: RBFS's inheritance rule (f ← max(g+h, parent f))
// flattens children onto a plateau whenever the heuristic is non-monotone,
// and without the tie-break the exploration order would degenerate to
// operator enumeration order.
type rbfsChild struct {
	move Move
	g    int
	h    int
	f    int
}

// rbfs explores s with the given stored f-value under fLimit. It returns a
// result if a goal is found, otherwise the revised backed-up f-value of s.
//
// hCache memoizes each state's per-move heuristic values (aligned with the
// move list, which deterministic problems return identically on every
// expansion). RBFS re-generates abandoned subtrees relentlessly; a hit turns
// the per-child h lookups of a re-expansion into slice reads. The backed-up
// f-values are NOT cached — they depend on the path's inherited bound and
// must be rebuilt per visit.
func rbfs(p Problem, h Heuristic, c *counter, s State, g, f, fLimit int, path *[]Move, onPath map[string]bool, hCache map[string][]int, sc *rbfsScratch) (*Result, int, error) {
	if err := c.examine(); err != nil {
		return nil, 0, err
	}
	if c.isGoal(p, s, g) {
		return &Result{Path: append([]Move(nil), *path...), Goal: s}, 0, nil
	}
	if !c.depthOK(g + 1) {
		return nil, inf, nil
	}
	moves, err := c.expand(p, s, g)
	if err != nil {
		return nil, 0, err
	}
	hs, ok := hCache[s.Key()]
	if !ok || len(hs) != len(moves) {
		hs = make([]int, len(moves))
		for i, m := range moves {
			hs[i] = h(m.To)
		}
		if len(hCache) < idaOrderMax {
			hCache[s.Key()] = hs
		}
	}
	// Children live in a recycled slice: RBFS re-expands abandoned subtrees
	// relentlessly, and the backed-up f-values must be rebuilt per visit (they
	// depend on the inherited bound), so unlike the h-values the slice cannot
	// be memoized — but its backing array can be reused across visits. The
	// deferred put runs after the visit's loop is done with the slice on every
	// exit path.
	children := sc.get(len(moves))
	defer func() { sc.put(children) }()
	for i, m := range moves {
		if onPath[m.To.Key()] {
			continue
		}
		cg := g + m.Cost
		ch := hs[i]
		if c.best != nil {
			c.candidate(m.To, ch, func() []Move {
				cp := make([]Move, 0, len(*path)+1)
				cp = append(cp, *path...)
				return append(cp, m)
			})
		}
		cf := cg + ch
		// Inherit the parent's backed-up value: if s was previously
		// explored and backed up to f, its children cannot do better.
		if f > cf {
			cf = f
		}
		children = append(children, rbfsChild{move: m, g: cg, h: ch, f: cf})
	}
	if len(children) == 0 {
		return nil, inf, nil
	}
	for {
		// Order children by current backed-up f, breaking ties by raw h
		// (stable for determinism: ties preserve the order the previous
		// iteration left, exactly as the sort.SliceStable this replaces).
		slices.SortStableFunc(children, func(a, b rbfsChild) int {
			if a.f != b.f {
				return cmp.Compare(a.f, b.f)
			}
			return cmp.Compare(a.h, b.h)
		})
		best := &children[0]
		// best.f >= inf means every child subtree is exhausted (dead ends or
		// depth limits); without this check the top-level call, whose fLimit
		// is inf, would recurse forever.
		if best.f > fLimit || best.f >= inf {
			return nil, best.f, nil
		}
		alt := inf
		if len(children) > 1 {
			alt = children[1].f
		}
		if alt > fLimit {
			alt = fLimit
		}
		k := best.move.To.Key()
		onPath[k] = true
		*path = append(*path, best.move)
		c.frontier(len(*path))
		res, revised, err := rbfs(p, h, c, best.move.To, best.g, best.f, alt, path, onPath, hCache, sc)
		if err != nil || res != nil {
			return res, 0, err
		}
		*path = (*path)[:len(*path)-1]
		delete(onPath, k)
		best.f = revised
	}
}

// rbfsScratch is a free-list of children slices for rbfs, reused across
// visits of one search. A search runs on a single goroutine, so no locking;
// each visit pops a slice on entry and pushes it back when it returns.
type rbfsScratch struct {
	free [][]rbfsChild
}

func (sc *rbfsScratch) get(n int) []rbfsChild {
	if k := len(sc.free); k > 0 {
		s := sc.free[k-1]
		sc.free = sc.free[:k-1]
		return s[:0]
	}
	return make([]rbfsChild, 0, n)
}

func (sc *rbfsScratch) put(s []rbfsChild) {
	if cap(s) > 0 {
		sc.free = append(sc.free, s[:0])
	}
}
