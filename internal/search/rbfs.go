package search

import (
	"context"
	"sort"
)

// RecursiveBestFirst runs RBFS (Korf 1993; §2.3 of the paper): a localized,
// recursive best-first exploration that keeps track of a locally optimal
// f-value and backtracks when it is exceeded, backing up the best known
// f-value of each abandoned subtree. Like IDA it uses memory linear in the
// search depth and may re-generate subtrees. The context is checked at
// every examined state.
func RecursiveBestFirst(ctx context.Context, p Problem, h Heuristic, lim Limits) (*Result, error) {
	start := p.Start()
	c := newCounter(ctx, "RBFS", lim)
	hs := h(start)
	c.candidate(start, hs, func() []Move { return nil })
	onPath := map[string]bool{start.Key(): true}
	var path []Move
	res, _, err := rbfs(p, h, c, start, 0, hs, inf, &path, onPath)
	if err != nil {
		return nil, c.fail(err)
	}
	if res == nil {
		return nil, c.fail(ErrNotFound)
	}
	return c.finish(res), nil
}

// rbfsChild is a successor with its backed-up f-value. The raw h-value is
// kept as a tie-breaker: RBFS's inheritance rule (f ← max(g+h, parent f))
// flattens children onto a plateau whenever the heuristic is non-monotone,
// and without the tie-break the exploration order would degenerate to
// operator enumeration order.
type rbfsChild struct {
	move Move
	g    int
	h    int
	f    int
}

// rbfs explores s with the given stored f-value under fLimit. It returns a
// result if a goal is found, otherwise the revised backed-up f-value of s.
func rbfs(p Problem, h Heuristic, c *counter, s State, g, f, fLimit int, path *[]Move, onPath map[string]bool) (*Result, int, error) {
	if err := c.examine(); err != nil {
		return nil, 0, err
	}
	if c.isGoal(p, s, g) {
		return &Result{Path: append([]Move(nil), *path...), Goal: s}, 0, nil
	}
	if !c.depthOK(g + 1) {
		return nil, inf, nil
	}
	moves, err := c.expand(p, s, g)
	if err != nil {
		return nil, 0, err
	}
	children := make([]rbfsChild, 0, len(moves))
	for _, m := range moves {
		if onPath[m.To.Key()] {
			continue
		}
		cg := g + m.Cost
		ch := h(m.To)
		c.candidate(m.To, ch, func() []Move {
			cp := make([]Move, 0, len(*path)+1)
			cp = append(cp, *path...)
			return append(cp, m)
		})
		cf := cg + ch
		// Inherit the parent's backed-up value: if s was previously
		// explored and backed up to f, its children cannot do better.
		if f > cf {
			cf = f
		}
		children = append(children, rbfsChild{move: m, g: cg, h: ch, f: cf})
	}
	if len(children) == 0 {
		return nil, inf, nil
	}
	for {
		// Order children by current backed-up f, breaking ties by raw h
		// (stable for determinism).
		sort.SliceStable(children, func(i, j int) bool {
			if children[i].f != children[j].f {
				return children[i].f < children[j].f
			}
			return children[i].h < children[j].h
		})
		best := &children[0]
		// best.f >= inf means every child subtree is exhausted (dead ends or
		// depth limits); without this check the top-level call, whose fLimit
		// is inf, would recurse forever.
		if best.f > fLimit || best.f >= inf {
			return nil, best.f, nil
		}
		alt := inf
		if len(children) > 1 {
			alt = children[1].f
		}
		if alt > fLimit {
			alt = fLimit
		}
		k := best.move.To.Key()
		onPath[k] = true
		*path = append(*path, best.move)
		c.frontier(len(*path))
		res, revised, err := rbfs(p, h, c, best.move.To, best.g, best.f, alt, path, onPath)
		if err != nil || res != nil {
			return res, 0, err
		}
		*path = (*path)[:len(*path)-1]
		delete(onPath, k)
		best.f = revised
	}
}
