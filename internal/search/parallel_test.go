package search

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// parallelWorkerCounts is the sweep every equivalence test runs: the single
// shard (channel-free ownership, same quiescence semantics) plus genuinely
// concurrent shard counts.
var parallelWorkerCounts = []int{1, 2, 4}

// settleGoroutines waits for the goroutine count to return to (at most) the
// baseline, failing the test if shard workers leak past a generous deadline.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// TestParallelAStarEquivalence pins the tentpole acceptance property: the
// same mapping (goal state and solution cost) across Workers ∈ {1,2,4}, with
// bounded states-examined variance relative to sequential A*. The exact
// move sequence may differ between worker counts when several optimal paths
// reach the same goal (arrival order decides which duplicate the owning
// shard keeps), so the assertions are on goal identity and cost, not labels.
func TestParallelAStarEquivalence(t *testing.T) {
	p := gridProblem{
		w: 16, h: 16,
		walls:  map[[2]int]bool{{4, 4}: true, {4, 5}: true, {4, 6}: true, {5, 6}: true, {10, 2}: true, {10, 3}: true, {9, 9}: true, {8, 9}: true},
		start:  [2]int{0, 0},
		target: [2]int{15, 15},
	}
	seq, err := AStarSearch(context.Background(), p, p.manhattan(), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range parallelWorkerCounts {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			res, err := ParallelAStar(context.Background(), p, p.manhattan(), Limits{}, workers)
			if err != nil {
				t.Fatal(err)
			}
			if res.Goal.Key() != seq.Goal.Key() {
				t.Fatalf("goal = %s, sequential found %s", res.Goal.Key(), seq.Goal.Key())
			}
			if len(res.Path) != len(seq.Path) {
				t.Fatalf("cost = %d, sequential cost %d — parallel A* must stay optimal", len(res.Path), len(seq.Path))
			}
			if res.Stats.Depth != seq.Stats.Depth {
				t.Fatalf("depth = %d, want %d", res.Stats.Depth, seq.Stats.Depth)
			}
			// Replay the path: it must be a real walk from start to goal.
			cur := p.Start()
			for i, m := range res.Path {
				moves, err := p.Successors(cur)
				if err != nil {
					t.Fatal(err)
				}
				found := false
				for _, cand := range moves {
					if cand.Label == m.Label && cand.To.Key() == m.To.Key() {
						cur, found = cand.To, true
						break
					}
				}
				if !found {
					t.Fatalf("path step %d (%s → %s) is not a legal move", i, m.Label, m.To.Key())
				}
			}
			if !p.IsGoal(cur) {
				t.Fatalf("path replay ends at %s, not a goal", cur.Key())
			}
			// Speculative expansion may examine extra states (the frontier
			// keeps moving until quiescence confirms the incumbent), but the
			// incumbent bound caps the blow-up: stay within a small factor
			// of the sequential count.
			if res.Stats.Examined > 4*seq.Stats.Examined+16 {
				t.Fatalf("examined %d states, sequential examined %d — variance out of bounds",
					res.Stats.Examined, seq.Stats.Examined)
			}
			if res.Stats.Generated == 0 || res.Stats.MaxFrontier == 0 {
				t.Fatalf("stats not aggregated: %+v", res.Stats)
			}
		})
	}
}

// TestParallelAStarDeterministicTieBreak: with a unique optimal path the
// returned move labels are identical for every worker count — the incumbent
// tie-break (min cost, then lexicographically least label sequence) removes
// the scheduling dependence whenever the optimum is unique.
func TestParallelAStarDeterministicTieBreak(t *testing.T) {
	p := lineProblem{n: 40}
	want := strings.Repeat("fwd,", 40)
	for _, workers := range parallelWorkerCounts {
		res, err := ParallelAStar(context.Background(), p, lineHeuristic(p), Limits{}, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var got strings.Builder
		for _, m := range res.Path {
			got.WriteString(m.Label)
			got.WriteString(",")
		}
		if got.String() != want {
			t.Fatalf("workers=%d: path %q, want %q", workers, got.String(), want)
		}
	}
}

// TestParallelAStarQuiescenceOnExhaustion: a walled-off target is the acid
// test for distributed termination — no goal ever arrives, so only the
// credit counter reaching zero (every shard idle, no message in flight) can
// end the run, and it must end with ErrNotFound, not hang.
func TestParallelAStarQuiescenceOnExhaustion(t *testing.T) {
	walls := map[[2]int]bool{}
	for i := 0; i < 8; i++ { // wall off the right half
		walls[[2]int{4, i}] = true
	}
	p := gridProblem{w: 8, h: 8, walls: walls, start: [2]int{0, 0}, target: [2]int{7, 7}}
	for _, workers := range parallelWorkerCounts {
		done := make(chan struct{})
		var res *Result
		var err error
		go func() {
			res, err = ParallelAStar(context.Background(), p, p.manhattan(), Limits{}, workers)
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("workers=%d: quiescence never detected (run hung)", workers)
		}
		if !errors.Is(err, ErrNotFound) {
			t.Fatalf("workers=%d: err = %v, want ErrNotFound", workers, err)
		}
		if res != nil {
			t.Fatalf("workers=%d: res = %+v, want nil", workers, res)
		}
	}
}

// TestParallelAStarStartIsGoal: the degenerate run must quiesce immediately
// with an empty path on every worker count.
func TestParallelAStarStartIsGoal(t *testing.T) {
	p := lineProblem{n: 0}
	for _, workers := range parallelWorkerCounts {
		res, err := ParallelAStar(context.Background(), p, lineHeuristic(p), Limits{}, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res.Path) != 0 {
			t.Fatalf("workers=%d: path = %v, want empty", workers, res.Path)
		}
	}
}

// TestParallelAStarMaxStates: the examined budget is global, and blowing it
// aborts with the same refined limit error the sequential engines report.
func TestParallelAStarMaxStates(t *testing.T) {
	p := lineProblem{n: 10_000}
	blind := func(State) int { return 0 }
	for _, workers := range parallelWorkerCounts {
		_, err := ParallelAStar(context.Background(), p, blind, Limits{MaxStates: 50}, workers)
		if !errors.Is(err, ErrLimit) {
			t.Fatalf("workers=%d: err = %v, want ErrLimit", workers, err)
		}
		var serr *Error
		if !errors.As(err, &serr) || serr.Cause() != "limit" {
			t.Fatalf("workers=%d: cause = %v", workers, err)
		}
	}
}

// TestParallelAStarCancelMidSearch: cancelling the context mid-run aborts
// with the canceled cause and every shard goroutine settles — nothing stays
// blocked on a routing channel.
func TestParallelAStarCancelMidSearch(t *testing.T) {
	baseline := runtime.NumGoroutine()
	p := gridProblem{w: 200, h: 200, walls: map[[2]int]bool{}, start: [2]int{0, 0}, target: [2]int{199, 199}}
	var tested atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel from inside the heuristic after a few hundred evaluations, so
	// the abort lands while shards are actively routing.
	h := func(s State) int {
		if tested.Add(1) == 500 {
			cancel()
		}
		return 0
	}
	for _, workers := range []int{2, 4} {
		tested.Store(0)
		ctx, cancel = context.WithCancel(context.Background())
		_, err := ParallelAStar(ctx, p, h, Limits{}, workers)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		var serr *Error
		if !errors.As(err, &serr) || serr.Cause() != "canceled" {
			t.Fatalf("workers=%d: cause = %v", workers, err)
		}
		settleGoroutines(t, baseline)
	}
}

// panicOnKeyProblem panics while expanding one specific state — the shard
// that owns it blows up mid-run.
type panicOnKeyProblem struct {
	gridProblem
	key string
}

func (p panicOnKeyProblem) Successors(s State) ([]Move, error) {
	if s.Key() == p.key {
		panic("injected shard fault")
	}
	return p.gridProblem.Successors(s)
}

// TestParallelAStarPanicContainment: a panic inside one shard worker is
// converted to the search error taxonomy (cause "panic", origin naming the
// shard), the other shards shut down, and no goroutine leaks.
func TestParallelAStarPanicContainment(t *testing.T) {
	baseline := runtime.NumGoroutine()
	grid := gridProblem{w: 50, h: 50, walls: map[[2]int]bool{}, start: [2]int{0, 0}, target: [2]int{49, 49}}
	p := panicOnKeyProblem{gridProblem: grid, key: "25,25"}
	for _, workers := range parallelWorkerCounts {
		_, err := ParallelAStar(context.Background(), p, grid.manhattan(), Limits{}, workers)
		if err == nil {
			t.Fatalf("workers=%d: expected an error", workers)
		}
		var serr *Error
		if !errors.As(err, &serr) || serr.Cause() != "panic" {
			t.Fatalf("workers=%d: cause = %v, want panic", workers, err)
		}
		var pe *PanicError
		if !errors.As(err, &pe) || !strings.Contains(pe.Origin, "parallel shard worker") {
			t.Fatalf("workers=%d: origin = %v, want a shard worker origin", workers, err)
		}
		settleGoroutines(t, baseline)
	}
}

// TestParallelAStarBestEffort: an aborted parallel run still surfaces the
// best candidate seen so far, exactly like the sequential engines.
func TestParallelAStarBestEffort(t *testing.T) {
	p := lineProblem{n: 10_000}
	for _, workers := range parallelWorkerCounts {
		_, err := ParallelAStar(context.Background(), p, lineHeuristic(p), Limits{MaxStates: 40, BestEffort: true}, workers)
		if !errors.Is(err, ErrLimit) {
			t.Fatalf("workers=%d: err = %v, want ErrLimit", workers, err)
		}
		var serr *Error
		if !errors.As(err, &serr) {
			t.Fatalf("workers=%d: err = %T", workers, err)
		}
		part := serr.Partial
		if part == nil {
			t.Fatalf("workers=%d: no partial result", workers)
		}
		if part.H >= 10_000 {
			t.Fatalf("workers=%d: partial made no progress (h = %d)", workers, part.H)
		}
		if len(part.Path) == 0 {
			t.Fatalf("workers=%d: partial path empty", workers)
		}
	}
}

// TestParallelGreedyFindsGoal: the greedy variant shares the engine; on a
// problem with an exact heuristic it walks straight to the goal.
func TestParallelGreedyFindsGoal(t *testing.T) {
	p := lineProblem{n: 30}
	for _, workers := range parallelWorkerCounts {
		res, err := ParallelGreedySearch(context.Background(), p, lineHeuristic(p), Limits{}, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !p.IsGoal(res.Goal) {
			t.Fatalf("workers=%d: non-goal result", workers)
		}
	}
}

// TestParallelAStarConcurrentRouting drives heavy cross-shard traffic (a
// dense open grid where every neighbour hashes to an arbitrary shard) under
// the race detector; the assertions are the result invariants, the real
// check is -race finding no data race in routing/outbox/quiescence.
func TestParallelAStarConcurrentRouting(t *testing.T) {
	p := gridProblem{w: 60, h: 60, walls: map[[2]int]bool{}, start: [2]int{0, 0}, target: [2]int{59, 59}}
	res, err := ParallelAStar(context.Background(), p, p.manhattan(), Limits{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Path) != 118 {
		t.Fatalf("cost = %d, want 118", len(res.Path))
	}
	if res.Stats.Examined == 0 || res.Stats.Generated < res.Stats.Examined {
		t.Fatalf("implausible stats: %+v", res.Stats)
	}
}

// TestShardOfPartitions: every key lands on exactly one shard, in range, and
// the assignment is stable.
func TestShardOfPartitions(t *testing.T) {
	counts := make([]int, 4)
	for i := 0; i < 4096; i++ {
		k := fmt.Sprintf("state-%d", i)
		s := shardOf(k, 4)
		if s < 0 || s >= 4 {
			t.Fatalf("shardOf(%q, 4) = %d, out of range", k, s)
		}
		if s != shardOf(k, 4) {
			t.Fatalf("shardOf(%q) unstable", k)
		}
		counts[s]++
	}
	for i, c := range counts {
		if c < 512 { // 4096/4 = 1024 expected; catch gross skew only
			t.Fatalf("shard %d got %d of 4096 keys — hash badly skewed: %v", i, c, counts)
		}
	}
}

// TestParallelBeamMatchesSequential: the level-synchronized beam is
// bit-identical to BeamSearch — same path, same examined count, same
// frontier peak — for every worker count, because merge order is sequential.
func TestParallelBeamMatchesSequential(t *testing.T) {
	p := gridProblem{
		w: 20, h: 20,
		walls:  map[[2]int]bool{{6, 6}: true, {6, 7}: true, {7, 6}: true, {12, 3}: true},
		start:  [2]int{0, 0},
		target: [2]int{19, 19},
	}
	seq, err := BeamSearch(context.Background(), p, p.manhattan(), Limits{}, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range parallelWorkerCounts {
		res, err := ParallelBeamSearch(context.Background(), p, p.manhattan(), Limits{}, 6, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Stats.Examined != seq.Stats.Examined {
			t.Fatalf("workers=%d: examined %d, sequential %d — beam must be deterministic",
				workers, res.Stats.Examined, seq.Stats.Examined)
		}
		if res.Stats.MaxFrontier != seq.Stats.MaxFrontier {
			t.Fatalf("workers=%d: frontier peak %d, sequential %d", workers, res.Stats.MaxFrontier, seq.Stats.MaxFrontier)
		}
		if len(res.Path) != len(seq.Path) {
			t.Fatalf("workers=%d: path length %d, sequential %d", workers, len(res.Path), len(seq.Path))
		}
		for i := range res.Path {
			if res.Path[i].Label != seq.Path[i].Label {
				t.Fatalf("workers=%d: path diverges at step %d: %s vs %s",
					workers, i, res.Path[i].Label, seq.Path[i].Label)
			}
		}
	}
}

// panicAfterNProblem panics on its nth expansion, wherever the beam happens
// to be by then.
type panicAfterNProblem struct {
	gridProblem
	n     int64
	calls atomic.Int64
}

func (p *panicAfterNProblem) Successors(s State) ([]Move, error) {
	if p.calls.Add(1) == p.n {
		panic("injected beam fault")
	}
	return p.gridProblem.Successors(s)
}

// TestParallelBeamPanicContainment: a panic on a beam expansion worker is
// caught at the level barrier and surfaces as a search error.
func TestParallelBeamPanicContainment(t *testing.T) {
	baseline := runtime.NumGoroutine()
	grid := gridProblem{w: 30, h: 30, walls: map[[2]int]bool{}, start: [2]int{0, 0}, target: [2]int{29, 29}}
	p := &panicAfterNProblem{gridProblem: grid, n: 25}
	_, err := ParallelBeamSearch(context.Background(), p, grid.manhattan(), Limits{}, 8, 4)
	if err == nil {
		t.Fatal("expected an error")
	}
	var serr *Error
	if !errors.As(err, &serr) || serr.Cause() != "panic" {
		t.Fatalf("cause = %v, want panic", err)
	}
	settleGoroutines(t, baseline)
}
