package search

import (
	"container/heap"
	"context"
)

// node is an A*/greedy frontier entry carrying its path.
type node struct {
	state State
	g     int
	f     int
	path  []Move
	seq   int // insertion order, for deterministic tie-breaking
}

type frontier []*node

func (f frontier) Len() int { return len(f) }
func (f frontier) Less(i, j int) bool {
	if f[i].f != f[j].f {
		return f[i].f < f[j].f
	}
	return f[i].seq < f[j].seq
}
func (f frontier) Swap(i, j int) { f[i], f[j] = f[j], f[i] }
func (f *frontier) Push(x any)   { *f = append(*f, x.(*node)) }
func (f *frontier) Pop() any {
	old := *f
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*f = old[:n-1]
	return x
}

// AStarSearch is textbook best-first A* with a closed set. It is included
// for ablation: the paper reports that A*'s exponential memory made early
// TUPELO implementations ineffective, motivating IDA and RBFS.
func AStarSearch(ctx context.Context, p Problem, h Heuristic, lim Limits) (*Result, error) {
	return bestFirst(ctx, p, h, lim, false)
}

// GreedySearch is greedy best-first search ordering the frontier by h
// alone. Fast but not optimal; included for ablation.
func GreedySearch(ctx context.Context, p Problem, h Heuristic, lim Limits) (*Result, error) {
	return bestFirst(ctx, p, h, lim, true)
}

func bestFirst(ctx context.Context, p Problem, h Heuristic, lim Limits, greedy bool) (*Result, error) {
	algo := "A*"
	if greedy {
		algo = "Greedy"
	}
	c := newCounter(ctx, algo, lim)
	start := p.Start()
	seq := 0
	f := h(start)
	c.candidate(start, f, func() []Move { return nil })
	open := &frontier{{state: start, g: 0, f: f, seq: seq}}
	heap.Init(open)
	bestG := map[string]int{start.Key(): 0}
	for open.Len() > 0 {
		c.frontier(open.Len())
		n := heap.Pop(open).(*node)
		if g, ok := bestG[n.state.Key()]; ok && n.g > g {
			continue // stale entry
		}
		if err := c.examine(); err != nil {
			return nil, c.fail(err)
		}
		if c.isGoal(p, n.state, n.g) {
			return c.finish(&Result{Path: n.path, Goal: n.state}), nil
		}
		if !c.depthOK(n.g + 1) {
			continue
		}
		moves, err := c.expand(p, n.state, n.g)
		if err != nil {
			return nil, c.fail(err)
		}
		for _, m := range moves {
			g := n.g + m.Cost
			k := m.To.Key()
			if prev, seen := bestG[k]; seen && g >= prev {
				continue
			}
			bestG[k] = g
			seq++
			hv := h(m.To)
			f := g + hv
			if greedy {
				f = hv
			}
			path := make([]Move, 0, len(n.path)+1)
			path = append(path, n.path...)
			path = append(path, m)
			// The node owns path and never mutates it, so the best-effort
			// tracker can hold a reference instead of a copy.
			c.candidate(m.To, hv, func() []Move { return path })
			heap.Push(open, &node{state: m.To, g: g, f: f, path: path, seq: seq})
		}
	}
	return nil, c.fail(ErrNotFound)
}
