package search

import (
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"
)

// The heap-budget check used to call runtime.ReadMemStats inline from every
// racing portfolio member (and would have from every shard worker of the
// parallel single-search), and ReadMemStats stops the world: N concurrent
// searches each paid a full STW pause every wallCheckInterval states, and the
// pauses of one member stalled all the others. heapLiveBytes replaces it with
// one process-wide sampler over the runtime/metrics package, whose reads are
// lock-free snapshots of runtime-internal counters — no stop-the-world, no
// coordination with the garbage collector.
//
// The sampled metric, /memory/classes/heap/objects:bytes, is the live-object
// byte count the runtime exposes to runtime/metrics and corresponds to
// MemStats.HeapAlloc (the quantity Limits.MaxHeapBytes documents), so budget
// semantics are unchanged.

// heapSampleTTL is how long one sample stays fresh. Concurrent searches
// crossing their check cadence within the window share the cached value
// instead of re-reading; a millisecond is far finer than the rate at which a
// search can meaningfully move the heap between its own samples.
const heapSampleTTL = time.Millisecond

var heapSampler struct {
	// refresh elects a single refresher when the sample is stale; losers use
	// the cached value rather than queueing behind the winner.
	refresh sync.Mutex
	// bytes is the cached live-heap size; stamp the time it was read, as
	// nanoseconds since the Unix epoch (0 = never sampled).
	bytes atomic.Uint64
	stamp atomic.Int64
}

// heapLiveBytes returns the current live-heap size, at most heapSampleTTL
// stale. The first call in a process always samples fresh, so a hopeless
// budget still aborts at the very first checked state.
func heapLiveBytes() uint64 {
	if s := heapSampler.stamp.Load(); s != 0 && time.Now().UnixNano()-s < int64(heapSampleTTL) {
		return heapSampler.bytes.Load()
	}
	if !heapSampler.refresh.TryLock() {
		// Someone else is refreshing right now; their result lands within
		// microseconds, and the budget check tolerates wallCheckInterval
		// states of slack anyway. One caveat: before the very first sample
		// completes, the cached value is 0, which can only defer (never
		// spuriously trigger) an abort by one check interval.
		return heapSampler.bytes.Load()
	}
	defer heapSampler.refresh.Unlock()
	var s [1]metrics.Sample
	s[0].Name = "/memory/classes/heap/objects:bytes"
	metrics.Read(s[:])
	v := s[0].Value.Uint64()
	heapSampler.bytes.Store(v)
	heapSampler.stamp.Store(time.Now().UnixNano())
	return v
}
