package search

import (
	"cmp"
	"container/heap"
	"context"
	"slices"
)

// BeamSearch explores level by level, keeping only the width best states
// (by f = g + h) at each depth. Memory is O(width · branching); the search
// is incomplete — pruned beams can cut off every path to a goal, in which
// case ErrNotFound is returned even though a solution exists. It is
// included as an ablation point against the paper's linear-memory but
// complete IDA/RBFS.
func BeamSearch(ctx context.Context, p Problem, h Heuristic, lim Limits, width int) (*Result, error) {
	if width <= 0 {
		width = 8
	}
	c := newCounter(ctx, "Beam", lim)
	type beamNode struct {
		state State
		g     int
		path  []Move
	}
	frontier := []beamNode{{state: p.Start()}}
	if c.best != nil {
		c.candidate(p.Start(), h(p.Start()), func() []Move { return nil })
	}
	// seen holds only states that were admitted into a beam. States discarded
	// by the width truncation are NOT marked: a later path may regenerate
	// them, and blacklisting them forever made the search strictly more
	// incomplete than beam pruning requires (a width-1 beam could fail on
	// problems it is narrow enough to solve).
	seen := map[string]bool{p.Start().Key(): true}
	for len(frontier) > 0 {
		// Examine the current beam.
		for _, n := range frontier {
			if err := c.examine(); err != nil {
				return nil, c.fail(err)
			}
			if c.isGoal(p, n.state, n.g) {
				return c.finish(&Result{Path: n.path, Goal: n.state}), nil
			}
		}
		// Expand it.
		type scored struct {
			node beamNode
			key  string
			f    int
			seq  int
		}
		var next []scored
		// level dedupes candidates within this expansion (key → index in
		// next), keeping the lowest-f generation of each state.
		level := make(map[string]int)
		seq := 0
		for _, n := range frontier {
			if !c.depthOK(n.g + 1) {
				continue
			}
			moves, err := c.expand(p, n.state, n.g)
			if err != nil {
				return nil, c.fail(err)
			}
			for _, m := range moves {
				k := m.To.Key()
				if seen[k] {
					continue
				}
				path := make([]Move, 0, len(n.path)+1)
				path = append(path, n.path...)
				path = append(path, m)
				g := n.g + m.Cost
				seq++
				hv := h(m.To)
				c.candidate(m.To, hv, func() []Move { return path })
				s := scored{
					node: beamNode{state: m.To, g: g, path: path},
					key:  k,
					f:    g + hv,
					seq:  seq,
				}
				if i, dup := level[k]; dup {
					if s.f < next[i].f {
						next[i] = s
					}
					continue
				}
				level[k] = len(next)
				next = append(next, s)
			}
		}
		slices.SortStableFunc(next, func(a, b scored) int {
			if a.f != b.f {
				return cmp.Compare(a.f, b.f)
			}
			return cmp.Compare(a.seq, b.seq)
		})
		// The full scored candidate buffer was held in memory, so the
		// frontier gauge records its size before truncation.
		c.frontier(len(next))
		if len(next) > width {
			next = next[:width]
		}
		frontier = frontier[:0]
		for _, s := range next {
			seen[s.key] = true
			frontier = append(frontier, s.node)
		}
	}
	return nil, c.fail(ErrNotFound)
}

// WeightedAStarSearch is A* with the evaluation function f = g + w·h for
// w ≥ 1. Larger weights trade solution optimality for fewer expansions
// (bounded suboptimality w for admissible h). w = 1 is plain A*.
func WeightedAStarSearch(ctx context.Context, p Problem, h Heuristic, lim Limits, w int) (*Result, error) {
	if w < 1 {
		w = 1
	}
	weighted := func(s State) int { return w * h(s) }
	return weightedBestFirst(ctx, p, weighted, lim)
}

// weightedBestFirst mirrors AStarSearch but with the already-weighted
// heuristic; kept separate so plain A* stays textbook-readable.
func weightedBestFirst(ctx context.Context, p Problem, h Heuristic, lim Limits) (*Result, error) {
	c := newCounter(ctx, "WA*", lim)
	start := p.Start()
	seq := 0
	hs := h(start)
	// Best-effort candidates record the weighted heuristic — the only one
	// this search evaluates; within one run the ordering is unaffected.
	c.candidate(start, hs, func() []Move { return nil })
	open := &frontier{{state: start, g: 0, f: hs, seq: seq}}
	heap.Init(open)
	bestG := map[string]int{start.Key(): 0}
	for open.Len() > 0 {
		c.frontier(open.Len())
		n := heap.Pop(open).(*node)
		if g, ok := bestG[n.state.Key()]; ok && n.g > g {
			continue
		}
		if err := c.examine(); err != nil {
			return nil, c.fail(err)
		}
		if c.isGoal(p, n.state, n.g) {
			return c.finish(&Result{Path: n.path, Goal: n.state}), nil
		}
		if !c.depthOK(n.g + 1) {
			continue
		}
		moves, err := c.expand(p, n.state, n.g)
		if err != nil {
			return nil, c.fail(err)
		}
		for _, m := range moves {
			g := n.g + m.Cost
			k := m.To.Key()
			if prev, seen := bestG[k]; seen && g >= prev {
				continue
			}
			bestG[k] = g
			seq++
			path := make([]Move, 0, len(n.path)+1)
			path = append(path, n.path...)
			path = append(path, m)
			hv := h(m.To)
			c.candidate(m.To, hv, func() []Move { return path })
			heap.Push(open, &node{state: m.To, g: g, f: g + hv, path: path, seq: seq})
		}
	}
	return nil, c.fail(ErrNotFound)
}
