// Package search provides the heuristic state-space search algorithms that
// drive mapping discovery in TUPELO ("Data Mapping as Search", §2.3).
//
// The package is generic: a Problem produces successor states and decides
// when a state is a goal, and a Heuristic estimates the remaining distance.
// The paper's two algorithms — Iterative Deepening A* (IDA) and Recursive
// Best-First Search (RBFS), both linear-memory and asymptotically optimal
// relative to A* — are implemented exactly as described in Nilsson (1998)
// and Korf (1985/1993). A* and greedy best-first search are included for
// ablation studies; the paper notes that plain A*'s exponential memory made
// early TUPELO implementations ineffective.
//
// Every algorithm takes a context.Context and checks it once per examined
// state, so cancellation, deadlines, and portfolio-loser teardown all share
// one mechanism. An aborted run returns an *Error wrapping the cause
// (context.Canceled, context.DeadlineExceeded, ErrLimit, ErrNotFound) with
// the statistics accumulated up to the abort.
//
// The performance measure throughout is the number of states examined, the
// same machine-independent metric the paper reports.
package search

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"tupelo/internal/obs"
)

// State is a node of the search space. Implementations must provide a
// canonical key so that semantically equal states collapse; TUPELO uses a
// compact 128-bit hash of the database's canonical form (raw bytes, not a
// full fingerprint string), keeping the bestG/seen/onPath maps and the
// heuristic caches cheap to hash and small in memory.
type State interface {
	// Key returns a canonical identifier: equal keys mean equal states.
	// Keys may be compact hashes, so "equal" holds up to the hash's
	// collision probability (negligible at 128 bits; see DESIGN.md).
	Key() string
}

// Move is an edge of the search space: a labelled transition to a successor.
type Move struct {
	// Label identifies the operator that produced the successor; TUPELO
	// stores the textual form of the L operator here.
	Label string
	// To is the successor state.
	To State
	// Cost is the edge cost; TUPELO counts each transformation as 1.
	Cost int
}

// Problem defines a search space.
type Problem interface {
	// Start returns the initial state (the source critical instance).
	Start() State
	// Successors expands a state into its outgoing moves. The order must
	// be deterministic.
	Successors(State) ([]Move, error)
	// IsGoal reports whether the state satisfies the goal test (the state
	// contains the target critical instance).
	IsGoal(State) bool
}

// Heuristic estimates the distance from a state to the goal. It must return
// 0 for goal states to keep IDA/RBFS well-behaved (the paper's h(t)=0).
type Heuristic func(State) int

// Limits bounds a search run. Zero values mean unlimited.
type Limits struct {
	// MaxStates aborts the search after this many states are examined.
	MaxStates int
	// MaxDepth bounds the depth (g-value) of the search.
	MaxDepth int
	// Deadline aborts the search once the wall clock passes it; the run
	// fails with an error wrapping context.DeadlineExceeded. A context
	// deadline works identically — this field exists for callers that
	// carry limits as plain data rather than through a context. The clock
	// is sampled every wallCheckInterval examined states, so an abort can
	// overshoot the deadline by the time those states take to examine.
	Deadline time.Time
	// MaxHeapBytes aborts the search once the process heap (live object
	// bytes, MemStats.HeapAlloc) exceeds this many bytes, failing with an
	// error matching both ErrLimit and ErrMemory. The heap is sampled every
	// wallCheckInterval examined states through a process-wide runtime/metrics
	// sampler (no stop-the-world, unlike runtime.ReadMemStats) whose reading
	// may additionally be up to heapSampleTTL stale, so the abort fires within
	// that many states of the budget being crossed. The budget is
	// process-wide: portfolio members racing in one process share the heap
	// and the first to sample past the budget aborts.
	MaxHeapBytes uint64
	// Cooperative makes the run yield the processor (runtime.Gosched) every
	// 16 examined states. Searches are CPU-bound loops with no natural
	// scheduling points; when several share fewer CPUs — portfolio members
	// racing, shard workers of the parallel single-search — a run that gets a
	// CPU first can otherwise hold it for a full async-preemption quantum
	// (~10ms) before its competitors are scheduled at all. The portfolio
	// runner and the parallel engines set this for their runs; a solitary
	// search leaves it unset and pays nothing for scheduling points it does
	// not need (pinned by BenchmarkExamine).
	Cooperative bool
	// ShardInboxCap overrides the per-shard inbound channel capacity of the
	// parallel single-searches (default shardInboxCap, 1024). Smaller caps
	// force more outbox deferrals, larger caps buffer more routed nodes;
	// the option exists for what-if runs driven by the tupelo-trace shard
	// analyzer. Ignored by the sequential algorithms. Zero means default.
	ShardInboxCap int
	// BestEffort makes an aborted run (budget, deadline, or cancellation)
	// carry the frontier state with the lowest heuristic value seen on
	// Error.Partial, so callers can degrade to an approximate partial
	// mapping instead of failing with nothing. Exhausted searches
	// (ErrNotFound) also carry the partial for diagnostics, but a caller
	// should not present it as an approximation — the search proved no goal
	// is reachable.
	BestEffort bool
}

// Stats reports what a search run did.
type Stats struct {
	// Examined is the number of states examined (goal tests performed) —
	// the paper's performance measure.
	Examined int
	// Generated is the number of successor states produced.
	Generated int
	// MaxFrontier is the peak size of algorithm-managed state: the open
	// list for A*, greedy, and beam search, and the deepest search path
	// held (recursion depth) for the linear-memory IDA and RBFS — the
	// quantity their linear-memory guarantee bounds.
	MaxFrontier int
	// Iterations counts IDA depth-bound iterations (0 for other methods).
	Iterations int
	// Depth is the length of the solution path found.
	Depth int
}

// Result is a successful search outcome.
type Result struct {
	// Path is the sequence of moves from the start state to a goal state.
	Path []Move
	// Goal is the goal state reached.
	Goal State
	// Stats describes the run.
	Stats Stats
}

// ErrNotFound reports an exhausted search space without a goal.
var ErrNotFound = errors.New("search: no goal state found")

// ErrLimit reports an aborted search (state or depth budget exhausted).
var ErrLimit = errors.New("search: limit exceeded")

// ErrMemory refines ErrLimit for heap-budget aborts: an error from a run
// stopped by Limits.MaxHeapBytes matches both ErrLimit (it is a budget
// abort) and ErrMemory (it is specifically the memory budget).
var ErrMemory = errors.New("search: memory budget exceeded")

// errStateBudget, errWallDeadline, and errHeapBudget refine the generic
// sentinels so that error text states which bound fired: a MaxStates abort
// and a Limits.Deadline abort previously surfaced as an undifferentiated
// "limit exceeded" / "context deadline exceeded". errors.Is still matches
// ErrLimit and context.DeadlineExceeded respectively, and errHeapBudget
// matches both ErrLimit and ErrMemory.
var (
	errStateBudget  = fmt.Errorf("%w (state budget exhausted)", ErrLimit)
	errWallDeadline = fmt.Errorf("%w (wall-clock deadline passed)", context.DeadlineExceeded)
	errHeapBudget   = fmt.Errorf("%w (%w)", ErrLimit, ErrMemory)
)

// PanicError is a panic recovered inside search-owned code: a portfolio
// member goroutine, a successor-pool worker, or the discovery call itself.
// The resilience layer converts such panics into ordinary *Error failures so
// that one poisoned heuristic or operator loses its race instead of killing
// the process. Value is the recovered panic value, Stack the stack captured
// at the recovery point, and Origin identifies the recovering goroutine
// ("successor worker 3 (op ρ_rel[a/b])", "portfolio member RBFS/cosine").
type PanicError struct {
	// Value is the value the code panicked with.
	Value any
	// Stack is the goroutine stack captured by the recover handler.
	Stack []byte
	// Origin identifies the goroutine and site that recovered the panic.
	Origin string
}

// NewPanicError captures the current goroutine's stack into a PanicError.
// Call it directly inside the recover handler so the stack still shows the
// panic site.
func NewPanicError(origin string, value any) *PanicError {
	return &PanicError{Value: value, Stack: debug.Stack(), Origin: origin}
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic in %s: %v", e.Origin, e.Value)
}

// Partial is the best-effort payload of an aborted run (Limits.BestEffort):
// the frontier state with the lowest heuristic value seen before the abort,
// with the move path that reaches it from the start state.
type Partial struct {
	// Path is the move sequence from the start state to State.
	Path []Move
	// State is the closest-to-goal state seen, by heuristic value.
	State State
	// H is the heuristic value of State under the run's heuristic —
	// comparable only to values from the same heuristic.
	H int
}

// Error is the error type returned by every algorithm in this package: it
// wraps the cause (ErrNotFound, ErrLimit, context.Canceled,
// context.DeadlineExceeded, or a Problem error) together with the partial
// statistics accumulated before the run stopped, so aborted and cancelled
// runs still report their effort. Use errors.As to recover the Stats and
// errors.Is to test the cause.
type Error struct {
	// Err is the underlying cause.
	Err error
	// Stats holds the effort spent up to the failure.
	Stats Stats
	// Partial is the best frontier state seen before the run stopped. It is
	// set only when Limits.BestEffort was enabled and at least one state's
	// heuristic value was observed.
	Partial *Partial
}

// Cause classifies the wrapped error into a small stable vocabulary —
// "panic", "deadline", "canceled", "memory", "limit", "exhausted", or
// "error" — used in the error text and as the metrics label for aborted
// runs. Deadlines are checked before limits so a run that trips both reports
// the same cause the errors.Is chain resolves first; "memory" is checked
// before "limit" because a heap-budget abort matches both sentinels.
func (e *Error) Cause() string {
	var pe *PanicError
	switch {
	case errors.As(e.Err, &pe):
		return "panic"
	case errors.Is(e.Err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(e.Err, context.Canceled):
		return "canceled"
	case errors.Is(e.Err, ErrMemory):
		return "memory"
	case errors.Is(e.Err, ErrLimit):
		return "limit"
	case errors.Is(e.Err, ErrNotFound):
		return "exhausted"
	default:
		return "error"
	}
}

func (e *Error) Error() string {
	return fmt.Sprintf("%v (cause=%s, after %d states examined)", e.Err, e.Cause(), e.Stats.Examined)
}

func (e *Error) Unwrap() error { return e.Err }

// Algorithm selects a search strategy.
type Algorithm int

const (
	// AlgorithmUnset is the zero Algorithm. It is not a strategy of its
	// own: Run and RunContext resolve it to RBFS, the paper's overall best
	// performer, so a zero-valued configuration genuinely means "use the
	// paper's best" instead of silently selecting IDA.
	AlgorithmUnset Algorithm = iota
	// IDA is Iterative Deepening A*: depth-first probes bounded by
	// increasing f-limits. Linear memory. The paper's first algorithm.
	IDA
	// RBFS is Recursive Best-First Search: recursive best-first exploration
	// with backtracking on locally optimal f-values. Linear memory. The
	// paper's second (and generally better-performing) algorithm.
	RBFS
	// AStar is textbook A* with a closed set. Exponential memory; included
	// for ablation (the paper abandoned it for that reason).
	AStar
	// Greedy is greedy best-first search on h alone. Incomplete in general;
	// included for ablation.
	Greedy
)

// Algorithms lists the selectable strategies in the paper's order.
func Algorithms() []Algorithm { return []Algorithm{IDA, RBFS, AStar, Greedy} }

// CLIName returns the lowercase name ParseAlgorithm accepts for a.
func (a Algorithm) CLIName() string {
	if a == AStar {
		return "astar" // String() is the paper's "A*"; flags avoid the shell glob
	}
	return strings.ToLower(a.String())
}

// AlgorithmNames returns the CLI name of every algorithm in presentation
// order. It is the single source of truth behind flag help text and
// ParseAlgorithm's error message, so neither can drift from the parser.
func AlgorithmNames() []string {
	algos := Algorithms()
	out := make([]string, len(algos))
	for i, a := range algos {
		out[i] = a.CLIName()
	}
	return out
}

// ParseAlgorithm resolves a CLI algorithm name ("ida", "rbfs", "astar" or
// "a*", "greedy"), case-insensitively. The error for an unknown name
// enumerates every valid one.
func ParseAlgorithm(s string) (Algorithm, error) {
	name := strings.ToLower(s)
	if name == "a*" {
		return AStar, nil
	}
	for _, a := range Algorithms() {
		if a.CLIName() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("search: unknown algorithm %q (valid: %s)", s, strings.Join(AlgorithmNames(), ", "))
}

// String names the algorithm as in the paper.
func (a Algorithm) String() string {
	switch a {
	case AlgorithmUnset:
		return "unset"
	case IDA:
		return "IDA"
	case RBFS:
		return "RBFS"
	case AStar:
		return "A*"
	case Greedy:
		return "Greedy"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Run executes the selected algorithm on the problem without external
// cancellation; it is RunContext with context.Background().
func Run(a Algorithm, p Problem, h Heuristic, lim Limits) (*Result, error) {
	return RunContext(context.Background(), a, p, h, lim)
}

// RunContext executes the selected algorithm on the problem. The context is
// checked at every examined state; when it is cancelled or its deadline
// passes, the run stops with an *Error wrapping the context's error and
// carrying the partial Stats. AlgorithmUnset resolves to RBFS.
func RunContext(ctx context.Context, a Algorithm, p Problem, h Heuristic, lim Limits) (*Result, error) {
	switch a {
	case IDA:
		return IDAStar(ctx, p, h, lim)
	case AlgorithmUnset, RBFS:
		return RecursiveBestFirst(ctx, p, h, lim)
	case AStar:
		return AStarSearch(ctx, p, h, lim)
	case Greedy:
		return GreedySearch(ctx, p, h, lim)
	default:
		return nil, fmt.Errorf("search: unknown algorithm %d", int(a))
	}
}

const inf = math.MaxInt / 4

// counter enforces Limits and context cancellation, accumulates Stats, and
// feeds the observability layer: per-algorithm examined/generated/yield
// counters resolved once at construction (so the hot path touches only
// atomics), plus run start/finish trace events. A run without metrics or
// tracer in its context pays a nil check per event and nothing else.
type counter struct {
	stats Stats
	lim   Limits
	ctx   context.Context
	algo  string
	o     obs.Obs
	start time.Time

	// best tracks the lowest-h frontier state for best-effort degradation;
	// nil unless Limits.BestEffort is set, so the hot path pays one nil
	// check when the feature is off.
	best *bestSeen

	// ring is this run's flight-recorder ring; nil (Record is a nil check)
	// when the context carries no FlightRecorder. The sequential algorithms
	// run on one goroutine, so the counter's ring respects the recorder's
	// single-writer discipline; the parallel engines give each shard worker
	// its own ring instead.
	ring *obs.FlightRing

	// Pre-resolved instruments; nil (and therefore no-ops) without metrics.
	mExamined  *obs.Counter
	mGenerated *obs.Counter
	mYields    *obs.Counter
	hGoalTest  *obs.Histogram
	hExpand    *obs.Histogram
}

func newCounter(ctx context.Context, algo string, lim Limits) *counter {
	if ctx == nil {
		ctx = context.Background()
	}
	c := &counter{lim: lim, ctx: ctx, algo: algo, o: obs.FromContext(ctx)}
	if lim.BestEffort {
		c.best = &bestSeen{}
	}
	c.ring = c.o.Flight.Ring(algo)
	c.ring.Record(obs.FKRunStart, 0, 0, 0)
	if c.o.Enabled() {
		c.start = time.Now()
		if m := c.o.Metrics; m != nil {
			c.mExamined = m.Counter(obs.Name("search.examined", "algo", algo))
			c.mGenerated = m.Counter(obs.Name("search.generated", "algo", algo))
			c.mYields = m.Counter(obs.Name("search.yields", "algo", algo))
			c.hGoalTest = m.Histogram(obs.Name("search.goaltest.seconds", "algo", algo))
			c.hExpand = m.Histogram(obs.Name("search.expand.seconds", "algo", algo))
			m.Counter(obs.Name("search.runs", "algo", algo)).Inc()
		}
		c.o.Tracer().Event(obs.Event{Kind: obs.EvRunStart, Label: algo})
	}
	return c
}

// examine counts one goal test and reports why the run must stop, if it
// must: budget exhausted, context cancelled, or deadline passed. It is the
// single cancellation point shared by every algorithm.
func (c *counter) examine() error {
	c.stats.Examined++
	c.mExamined.Inc()
	if c.lim.MaxStates > 0 && c.stats.Examined > c.lim.MaxStates {
		return errStateBudget
	}
	if c.lim.Cooperative && c.stats.Examined&15 == 0 {
		// Yielding every 16 states bounds the starvation of competing runs
		// (see Limits.Cooperative); with an empty run queue Gosched is
		// nearly free. A solitary run has nothing to yield to and skips
		// the scheduling point entirely.
		c.mYields.Inc()
		runtime.Gosched()
	}
	if err := c.ctx.Err(); err != nil {
		return err
	}
	// The wall clock and the heap are sampled every wallCheckInterval
	// states rather than per state: time.Now and the heap sampler are far
	// more expensive than the atomic counting above. The phase is 1, not 0,
	// so the very first examined state still catches an already-expired
	// deadline or an already-blown heap budget.
	if c.stats.Examined&(wallCheckInterval-1) == 1 {
		if !c.lim.Deadline.IsZero() && time.Now().After(c.lim.Deadline) {
			return errWallDeadline
		}
		if c.lim.MaxHeapBytes > 0 && heapLiveBytes() > c.lim.MaxHeapBytes {
			return errHeapBudget
		}
	}
	return nil
}

// wallCheckInterval is how often (in examined states) examine samples the
// wall clock and the heap. Must be a power of two. A deadline or memory
// abort can therefore overshoot its bound by up to wallCheckInterval-1
// states — well within the tolerance of the portfolio deadline tests, which
// allow hundreds of milliseconds of teardown slack.
const wallCheckInterval = 64

// bestSeen tracks the frontier state with the lowest heuristic value
// observed during a run, for best-effort degradation. The algorithms offer
// every state whose h they compute; the path is materialized lazily (the
// callback is invoked only when the candidate improves on the best already
// seen) because IDA and RBFS mutate their path slice in place. A mutex keeps
// the tracker safe for concurrent offers from the parallel searches' shard
// workers.
type bestSeen struct {
	mu   sync.Mutex
	set  bool
	h    int
	s    State
	path []Move
}

// offer records s as the best-effort candidate if its heuristic value beats
// the current best. Ties keep the earlier state, so the result is
// deterministic for a deterministic search order.
//
// The path callback is caller-supplied foreign code and may materialize a
// slice copy, so it must not run under the mutex: shard workers of the
// parallel searches offer candidates concurrently, and holding the lock
// across the callback would serialize their hot paths on each other's copy
// loops. Instead: check-improve under the lock, materialize outside it, and
// re-check before installing — a concurrent offer that won the race in
// between keeps its (better or equal, hence earlier) candidate.
func (b *bestSeen) offer(s State, h int, path func() []Move) {
	b.mu.Lock()
	if b.set && h >= b.h {
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
	p := path()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.set && h >= b.h {
		return
	}
	b.set, b.h, b.s, b.path = true, h, s, p
}

// take returns the best candidate seen, or nil if none was offered.
func (b *bestSeen) take() *Partial {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.set {
		return nil
	}
	return &Partial{Path: b.path, State: b.s, H: b.h}
}

// candidate offers a state with a known heuristic value as a best-effort
// result. pathFn must return a caller-owned copy of the path from the start
// state to s; it is invoked only when s improves on the best seen so far.
// No-op unless Limits.BestEffort is set.
func (c *counter) candidate(s State, h int, pathFn func() []Move) {
	if c.best == nil {
		return
	}
	c.best.offer(s, h, pathFn)
}

// generated records n successor states produced by one expansion.
func (c *counter) generated(n int) {
	c.stats.Generated += n
	c.mGenerated.Add(int64(n))
}

// isGoal runs the goal test at search depth g, timing it into the
// per-algorithm goal-test latency histogram and emitting the per-state
// trace event. Seq is the examined ordinal — examine() has already counted
// this state, so the event numbering matches Stats.Examined exactly. An
// un-instrumented run takes the first branch and pays one bool check.
func (c *counter) isGoal(p Problem, s State, g int) bool {
	if !c.o.Enabled() {
		goal := p.IsGoal(s)
		c.ring.Record(obs.FKExamine, uint32(c.stats.Examined), int32(g), flightBool(goal))
		return goal
	}
	start := time.Now()
	goal := p.IsGoal(s)
	c.hGoalTest.Observe(time.Since(start))
	c.ring.Record(obs.FKExamine, uint32(c.stats.Examined), int32(g), flightBool(goal))
	c.o.Tracer().Event(obs.Event{Kind: obs.EvGoalTest, Seq: c.stats.Examined, Depth: g, Goal: goal})
	return goal
}

// flightBool encodes a bool into a flight-record payload field.
func flightBool(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// expand produces the successors of s at search depth g, timing the
// expansion into the per-algorithm latency histogram, counting the states
// generated, and emitting the expand and per-move trace events.
func (c *counter) expand(p Problem, s State, g int) ([]Move, error) {
	if !c.o.Enabled() {
		moves, err := p.Successors(s)
		if err != nil {
			return nil, err
		}
		c.generated(len(moves))
		c.ring.Record(obs.FKExpand, uint32(c.stats.Examined), int32(g), int32(len(moves)))
		return moves, nil
	}
	start := time.Now()
	moves, err := p.Successors(s)
	elapsed := time.Since(start)
	c.hExpand.Observe(elapsed)
	tr := c.o.Tracer()
	if err != nil {
		tr.Event(obs.Event{Kind: obs.EvExpand, Seq: c.stats.Examined, Depth: g, Err: err, Elapsed: elapsed})
		return nil, err
	}
	c.generated(len(moves))
	c.ring.Record(obs.FKExpand, uint32(c.stats.Examined), int32(g), int32(len(moves)))
	tr.Event(obs.Event{Kind: obs.EvExpand, Seq: c.stats.Examined, Depth: g, N: len(moves), Elapsed: elapsed})
	for _, m := range moves {
		tr.Event(obs.Event{Kind: obs.EvMove, Label: m.Label, Depth: g})
	}
	return moves, nil
}

// frontier raises the peak algorithm-managed state size: open-list length
// for the best-first searches, recursion (path) depth for IDA/RBFS.
func (c *counter) frontier(n int) {
	if n > c.stats.MaxFrontier {
		c.stats.MaxFrontier = n
	}
}

func (c *counter) depthOK(g int) bool {
	return c.lim.MaxDepth == 0 || g <= c.lim.MaxDepth
}

// fail wraps err with the partial statistics of the run so far — plus the
// best-effort candidate state under Limits.BestEffort — counts the abort
// under its cause ("deadline", "canceled", "limit", ...), and emits the
// run-finish event.
func (c *counter) fail(err error) error {
	e := &Error{Err: err, Stats: c.stats}
	if c.best != nil {
		e.Partial = c.best.take()
	}
	cause := e.Cause()
	c.ring.Record(obs.FKAbort, uint32(c.stats.Examined), causeCode(cause), 0)
	switch cause {
	case "panic", "memory", "deadline":
		// The run died rather than merely losing a race or exhausting its
		// space: mark the flight recorder for an automatic dump. Only the
		// mark happens here (other goroutines may still be recording); the
		// engine flushes once its workers are joined.
		c.o.Flight.RequestDump(cause)
	}
	if c.o.Enabled() {
		if m := c.o.Metrics; m != nil {
			m.Counter(obs.Name("search.aborts", "algo", c.algo, "cause", e.Cause())).Inc()
		}
		c.o.Tracer().Event(obs.Event{
			Kind: obs.EvRunFinish, Label: c.algo,
			N: c.stats.Examined, Err: err, Elapsed: time.Since(c.start),
		})
	}
	return e
}

// causeCode maps the Error.Cause vocabulary to the stable numeric codes
// carried in FKAbort flight records (the A payload).
func causeCode(cause string) int32 {
	switch cause {
	case "panic":
		return 1
	case "deadline":
		return 2
	case "canceled":
		return 3
	case "memory":
		return 4
	case "limit":
		return 5
	case "exhausted":
		return 6
	default:
		return 0
	}
}

// finish stamps the final statistics on a successful result and emits the
// run-finish event.
func (c *counter) finish(res *Result) *Result {
	res.Stats = c.stats
	res.Stats.Depth = len(res.Path)
	c.ring.Record(obs.FKRunFinish, uint32(res.Stats.Examined), 1, int32(res.Stats.Depth))
	if c.o.Enabled() {
		c.o.Tracer().Event(obs.Event{
			Kind: obs.EvRunFinish, Label: c.algo, Goal: true,
			N: res.Stats.Examined, Elapsed: time.Since(c.start),
		})
	}
	return res
}
