// Package search provides the heuristic state-space search algorithms that
// drive mapping discovery in TUPELO ("Data Mapping as Search", §2.3).
//
// The package is generic: a Problem produces successor states and decides
// when a state is a goal, and a Heuristic estimates the remaining distance.
// The paper's two algorithms — Iterative Deepening A* (IDA) and Recursive
// Best-First Search (RBFS), both linear-memory and asymptotically optimal
// relative to A* — are implemented exactly as described in Nilsson (1998)
// and Korf (1985/1993). A* and greedy best-first search are included for
// ablation studies; the paper notes that plain A*'s exponential memory made
// early TUPELO implementations ineffective.
//
// The performance measure throughout is the number of states examined, the
// same machine-independent metric the paper reports.
package search

import (
	"errors"
	"fmt"
	"math"
)

// State is a node of the search space. Implementations must provide a
// canonical key so that semantically equal states collapse; TUPELO uses
// database fingerprints.
type State interface {
	// Key returns a canonical identifier: equal keys mean equal states.
	Key() string
}

// Move is an edge of the search space: a labelled transition to a successor.
type Move struct {
	// Label identifies the operator that produced the successor; TUPELO
	// stores the textual form of the L operator here.
	Label string
	// To is the successor state.
	To State
	// Cost is the edge cost; TUPELO counts each transformation as 1.
	Cost int
}

// Problem defines a search space.
type Problem interface {
	// Start returns the initial state (the source critical instance).
	Start() State
	// Successors expands a state into its outgoing moves. The order must
	// be deterministic.
	Successors(State) ([]Move, error)
	// IsGoal reports whether the state satisfies the goal test (the state
	// contains the target critical instance).
	IsGoal(State) bool
}

// Heuristic estimates the distance from a state to the goal. It must return
// 0 for goal states to keep IDA/RBFS well-behaved (the paper's h(t)=0).
type Heuristic func(State) int

// Limits bounds a search run. Zero values mean unlimited.
type Limits struct {
	// MaxStates aborts the search after this many states are examined.
	MaxStates int
	// MaxDepth bounds the depth (g-value) of the search.
	MaxDepth int
}

// Stats reports what a search run did.
type Stats struct {
	// Examined is the number of states examined (goal tests performed) —
	// the paper's performance measure.
	Examined int
	// Generated is the number of successor states produced.
	Generated int
	// MaxFrontier is the peak size of algorithm-managed state (for A*).
	MaxFrontier int
	// Iterations counts IDA depth-bound iterations (0 for other methods).
	Iterations int
	// Depth is the length of the solution path found.
	Depth int
}

// Result is a successful search outcome.
type Result struct {
	// Path is the sequence of moves from the start state to a goal state.
	Path []Move
	// Goal is the goal state reached.
	Goal State
	// Stats describes the run.
	Stats Stats
}

// ErrNotFound reports an exhausted search space without a goal.
var ErrNotFound = errors.New("search: no goal state found")

// ErrLimit reports an aborted search (state or depth budget exhausted).
var ErrLimit = errors.New("search: limit exceeded")

// Algorithm selects a search strategy.
type Algorithm int

const (
	// IDA is Iterative Deepening A*: depth-first probes bounded by
	// increasing f-limits. Linear memory. The paper's first algorithm.
	IDA Algorithm = iota
	// RBFS is Recursive Best-First Search: recursive best-first exploration
	// with backtracking on locally optimal f-values. Linear memory. The
	// paper's second (and generally better-performing) algorithm.
	RBFS
	// AStar is textbook A* with a closed set. Exponential memory; included
	// for ablation (the paper abandoned it for that reason).
	AStar
	// Greedy is greedy best-first search on h alone. Incomplete in general;
	// included for ablation.
	Greedy
)

// String names the algorithm as in the paper.
func (a Algorithm) String() string {
	switch a {
	case IDA:
		return "IDA"
	case RBFS:
		return "RBFS"
	case AStar:
		return "A*"
	case Greedy:
		return "Greedy"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Run executes the selected algorithm on the problem.
func Run(a Algorithm, p Problem, h Heuristic, lim Limits) (*Result, error) {
	switch a {
	case IDA:
		return IDAStar(p, h, lim)
	case RBFS:
		return RecursiveBestFirst(p, h, lim)
	case AStar:
		return AStarSearch(p, h, lim)
	case Greedy:
		return GreedySearch(p, h, lim)
	default:
		return nil, fmt.Errorf("search: unknown algorithm %d", int(a))
	}
}

const inf = math.MaxInt / 4

// counter enforces Limits and accumulates Stats.
type counter struct {
	stats Stats
	lim   Limits
}

func (c *counter) examine() error {
	c.stats.Examined++
	if c.lim.MaxStates > 0 && c.stats.Examined > c.lim.MaxStates {
		return ErrLimit
	}
	return nil
}

func (c *counter) depthOK(g int) bool {
	return c.lim.MaxDepth == 0 || g <= c.lim.MaxDepth
}
