// Package search provides the heuristic state-space search algorithms that
// drive mapping discovery in TUPELO ("Data Mapping as Search", §2.3).
//
// The package is generic: a Problem produces successor states and decides
// when a state is a goal, and a Heuristic estimates the remaining distance.
// The paper's two algorithms — Iterative Deepening A* (IDA) and Recursive
// Best-First Search (RBFS), both linear-memory and asymptotically optimal
// relative to A* — are implemented exactly as described in Nilsson (1998)
// and Korf (1985/1993). A* and greedy best-first search are included for
// ablation studies; the paper notes that plain A*'s exponential memory made
// early TUPELO implementations ineffective.
//
// Every algorithm takes a context.Context and checks it once per examined
// state, so cancellation, deadlines, and portfolio-loser teardown all share
// one mechanism. An aborted run returns an *Error wrapping the cause
// (context.Canceled, context.DeadlineExceeded, ErrLimit, ErrNotFound) with
// the statistics accumulated up to the abort.
//
// The performance measure throughout is the number of states examined, the
// same machine-independent metric the paper reports.
package search

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"
)

// State is a node of the search space. Implementations must provide a
// canonical key so that semantically equal states collapse; TUPELO uses
// database fingerprints.
type State interface {
	// Key returns a canonical identifier: equal keys mean equal states.
	Key() string
}

// Move is an edge of the search space: a labelled transition to a successor.
type Move struct {
	// Label identifies the operator that produced the successor; TUPELO
	// stores the textual form of the L operator here.
	Label string
	// To is the successor state.
	To State
	// Cost is the edge cost; TUPELO counts each transformation as 1.
	Cost int
}

// Problem defines a search space.
type Problem interface {
	// Start returns the initial state (the source critical instance).
	Start() State
	// Successors expands a state into its outgoing moves. The order must
	// be deterministic.
	Successors(State) ([]Move, error)
	// IsGoal reports whether the state satisfies the goal test (the state
	// contains the target critical instance).
	IsGoal(State) bool
}

// Heuristic estimates the distance from a state to the goal. It must return
// 0 for goal states to keep IDA/RBFS well-behaved (the paper's h(t)=0).
type Heuristic func(State) int

// Limits bounds a search run. Zero values mean unlimited.
type Limits struct {
	// MaxStates aborts the search after this many states are examined.
	MaxStates int
	// MaxDepth bounds the depth (g-value) of the search.
	MaxDepth int
	// Deadline aborts the search once the wall clock passes it; the run
	// fails with an error wrapping context.DeadlineExceeded. A context
	// deadline works identically — this field exists for callers that
	// carry limits as plain data rather than through a context.
	Deadline time.Time
}

// Stats reports what a search run did.
type Stats struct {
	// Examined is the number of states examined (goal tests performed) —
	// the paper's performance measure.
	Examined int
	// Generated is the number of successor states produced.
	Generated int
	// MaxFrontier is the peak size of algorithm-managed state (for A*).
	MaxFrontier int
	// Iterations counts IDA depth-bound iterations (0 for other methods).
	Iterations int
	// Depth is the length of the solution path found.
	Depth int
}

// Result is a successful search outcome.
type Result struct {
	// Path is the sequence of moves from the start state to a goal state.
	Path []Move
	// Goal is the goal state reached.
	Goal State
	// Stats describes the run.
	Stats Stats
}

// ErrNotFound reports an exhausted search space without a goal.
var ErrNotFound = errors.New("search: no goal state found")

// ErrLimit reports an aborted search (state or depth budget exhausted).
var ErrLimit = errors.New("search: limit exceeded")

// Error is the error type returned by every algorithm in this package: it
// wraps the cause (ErrNotFound, ErrLimit, context.Canceled,
// context.DeadlineExceeded, or a Problem error) together with the partial
// statistics accumulated before the run stopped, so aborted and cancelled
// runs still report their effort. Use errors.As to recover the Stats and
// errors.Is to test the cause.
type Error struct {
	// Err is the underlying cause.
	Err error
	// Stats holds the effort spent up to the failure.
	Stats Stats
}

func (e *Error) Error() string {
	return fmt.Sprintf("%v (after %d states examined)", e.Err, e.Stats.Examined)
}

func (e *Error) Unwrap() error { return e.Err }

// Algorithm selects a search strategy.
type Algorithm int

const (
	// AlgorithmUnset is the zero Algorithm. It is not a strategy of its
	// own: Run and RunContext resolve it to RBFS, the paper's overall best
	// performer, so a zero-valued configuration genuinely means "use the
	// paper's best" instead of silently selecting IDA.
	AlgorithmUnset Algorithm = iota
	// IDA is Iterative Deepening A*: depth-first probes bounded by
	// increasing f-limits. Linear memory. The paper's first algorithm.
	IDA
	// RBFS is Recursive Best-First Search: recursive best-first exploration
	// with backtracking on locally optimal f-values. Linear memory. The
	// paper's second (and generally better-performing) algorithm.
	RBFS
	// AStar is textbook A* with a closed set. Exponential memory; included
	// for ablation (the paper abandoned it for that reason).
	AStar
	// Greedy is greedy best-first search on h alone. Incomplete in general;
	// included for ablation.
	Greedy
)

// String names the algorithm as in the paper.
func (a Algorithm) String() string {
	switch a {
	case AlgorithmUnset:
		return "unset"
	case IDA:
		return "IDA"
	case RBFS:
		return "RBFS"
	case AStar:
		return "A*"
	case Greedy:
		return "Greedy"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Run executes the selected algorithm on the problem without external
// cancellation; it is RunContext with context.Background().
func Run(a Algorithm, p Problem, h Heuristic, lim Limits) (*Result, error) {
	return RunContext(context.Background(), a, p, h, lim)
}

// RunContext executes the selected algorithm on the problem. The context is
// checked at every examined state; when it is cancelled or its deadline
// passes, the run stops with an *Error wrapping the context's error and
// carrying the partial Stats. AlgorithmUnset resolves to RBFS.
func RunContext(ctx context.Context, a Algorithm, p Problem, h Heuristic, lim Limits) (*Result, error) {
	switch a {
	case IDA:
		return IDAStar(ctx, p, h, lim)
	case AlgorithmUnset, RBFS:
		return RecursiveBestFirst(ctx, p, h, lim)
	case AStar:
		return AStarSearch(ctx, p, h, lim)
	case Greedy:
		return GreedySearch(ctx, p, h, lim)
	default:
		return nil, fmt.Errorf("search: unknown algorithm %d", int(a))
	}
}

const inf = math.MaxInt / 4

// counter enforces Limits and context cancellation and accumulates Stats.
type counter struct {
	stats Stats
	lim   Limits
	ctx   context.Context
}

func newCounter(ctx context.Context, lim Limits) *counter {
	if ctx == nil {
		ctx = context.Background()
	}
	return &counter{lim: lim, ctx: ctx}
}

// examine counts one goal test and reports why the run must stop, if it
// must: budget exhausted, context cancelled, or deadline passed. It is the
// single cancellation point shared by every algorithm.
func (c *counter) examine() error {
	c.stats.Examined++
	if c.lim.MaxStates > 0 && c.stats.Examined > c.lim.MaxStates {
		return ErrLimit
	}
	if c.stats.Examined&15 == 0 {
		// Searches are CPU-bound loops with no natural scheduling points.
		// When several race in a portfolio on a machine with fewer CPUs
		// than members, a member that gets a CPU first can otherwise run a
		// full async-preemption quantum (~10ms) before the eventual winner
		// is scheduled at all, making the race slower than the winner
		// alone. Yielding every 16 states bounds that starvation; with an
		// empty run queue Gosched is nearly free.
		runtime.Gosched()
	}
	if err := c.ctx.Err(); err != nil {
		return err
	}
	if !c.lim.Deadline.IsZero() && time.Now().After(c.lim.Deadline) {
		return context.DeadlineExceeded
	}
	return nil
}

func (c *counter) depthOK(g int) bool {
	return c.lim.MaxDepth == 0 || g <= c.lim.MaxDepth
}

// fail wraps err with the partial statistics of the run so far.
func (c *counter) fail(err error) error {
	return &Error{Err: err, Stats: c.stats}
}
