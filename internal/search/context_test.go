package search

import (
	"context"
	"errors"
	"testing"
	"time"
)

// cancelAfterProblem wraps a problem and cancels the given context after n
// expansions, producing deterministic mid-search cancellation.
type cancelAfterProblem struct {
	inner  Problem
	cancel context.CancelFunc
	left   int
}

func (p *cancelAfterProblem) Start() State        { return p.inner.Start() }
func (p *cancelAfterProblem) IsGoal(s State) bool { return p.inner.IsGoal(s) }
func (p *cancelAfterProblem) Successors(s State) ([]Move, error) {
	p.left--
	if p.left <= 0 {
		p.cancel()
	}
	return p.inner.Successors(s)
}

func allAlgorithms() []Algorithm {
	return []Algorithm{IDA, RBFS, AStar, Greedy}
}

func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := lineProblem{n: 100}
	for _, algo := range allAlgorithms() {
		t.Run(algo.String(), func(t *testing.T) {
			_, err := RunContext(ctx, algo, p, lineHeuristic(p), Limits{})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			var serr *Error
			if !errors.As(err, &serr) {
				t.Fatalf("err = %T, want *search.Error with partial stats", err)
			}
			if serr.Stats.Examined == 0 {
				t.Fatal("cancelled run should still report the states it examined")
			}
		})
	}
}

func TestMidSearchCancellation(t *testing.T) {
	for _, algo := range allAlgorithms() {
		t.Run(algo.String(), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			inner := lineProblem{n: 500}
			p := &cancelAfterProblem{inner: inner, cancel: cancel, left: 5}
			// Blind heuristic so no algorithm reaches the goal within five
			// expansions.
			_, err := RunContext(ctx, algo, p, func(State) int { return 0 }, Limits{})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			var serr *Error
			if !errors.As(err, &serr) || serr.Stats.Examined < 5 {
				t.Fatalf("partial stats missing or implausible: %v", err)
			}
		})
	}
}

func TestDeadlineLimit(t *testing.T) {
	p := lineProblem{n: 100}
	lim := Limits{Deadline: time.Now().Add(-time.Second)}
	for _, algo := range allAlgorithms() {
		t.Run(algo.String(), func(t *testing.T) {
			_, err := RunContext(context.Background(), algo, p, lineHeuristic(p), lim)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want context.DeadlineExceeded", err)
			}
		})
	}
}

func TestContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	p := lineProblem{n: 100}
	_, err := RunContext(ctx, RBFS, p, lineHeuristic(p), Limits{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestAlgorithmUnsetResolvesToRBFS(t *testing.T) {
	p := lineProblem{n: 5}
	res, err := Run(AlgorithmUnset, p, lineHeuristic(p), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Path) != 5 {
		t.Fatalf("path length = %d, want 5", len(res.Path))
	}
	if AlgorithmUnset.String() != "unset" {
		t.Fatalf("String = %q", AlgorithmUnset.String())
	}
}

func TestErrorCarriesStatsOnLimit(t *testing.T) {
	p := lineProblem{n: 1000}
	_, err := Run(RBFS, p, func(State) int { return 0 }, Limits{MaxStates: 50})
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
	var serr *Error
	if !errors.As(err, &serr) {
		t.Fatalf("err = %T, want *search.Error", err)
	}
	if serr.Stats.Examined != 51 {
		t.Fatalf("Examined = %d, want 51 (budget + the state that tripped it)", serr.Stats.Examined)
	}
}
