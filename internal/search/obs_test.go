package search

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"tupelo/internal/obs"
)

// TestDeadlineVsContextDeadlineStableCause pins the precedence when
// Limits.Deadline and a context deadline race each other in
// counter.examine: the context is checked first, so whichever deadline
// mechanism fired, every algorithm reports the same wrapped cause
// (context.DeadlineExceeded) with partial stats attached.
func TestDeadlineVsContextDeadlineStableCause(t *testing.T) {
	p := lineProblem{n: 100}
	past := time.Now().Add(-time.Second)
	for _, algo := range allAlgorithms() {
		t.Run(algo.String(), func(t *testing.T) {
			ctx, cancel := context.WithDeadline(context.Background(), past)
			defer cancel()
			_, err := RunContext(ctx, algo, p, lineHeuristic(p), Limits{Deadline: past})
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want context.DeadlineExceeded", err)
			}
			var serr *Error
			if !errors.As(err, &serr) {
				t.Fatalf("err = %T, want *search.Error", err)
			}
			if serr.Cause() != "deadline" {
				t.Fatalf("Cause() = %q, want \"deadline\"", serr.Cause())
			}
			if serr.Stats.Examined == 0 {
				t.Fatal("deadline abort must report partial stats")
			}
		})
	}
}

// TestCancelBeatsLimitsDeadline pins the other half of the interplay: an
// already-cancelled context wins over an expired Limits.Deadline, again
// uniformly across algorithms, so callers can rely on errors.Is(err,
// context.Canceled) to distinguish "caller stopped the run" from "the run
// timed out" no matter which algorithm ran.
func TestCancelBeatsLimitsDeadline(t *testing.T) {
	p := lineProblem{n: 100}
	for _, algo := range allAlgorithms() {
		t.Run(algo.String(), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_, err := RunContext(ctx, algo, p, lineHeuristic(p),
				Limits{Deadline: time.Now().Add(-time.Second)})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v must not also match DeadlineExceeded", err)
			}
			var serr *Error
			if !errors.As(err, &serr) || serr.Cause() != "canceled" {
				t.Fatalf("err = %v, want *Error with cause \"canceled\"", err)
			}
		})
	}
}

// TestErrorMessageDistinguishesCauses verifies the Error() text names which
// bound fired instead of a bare "limit exceeded" for every kind of abort.
func TestErrorMessageDistinguishesCauses(t *testing.T) {
	p := lineProblem{n: 1000}
	blind := func(State) int { return 0 }

	_, err := Run(RBFS, p, blind, Limits{MaxStates: 10})
	if err == nil || !strings.Contains(err.Error(), "state budget") || !strings.Contains(err.Error(), "cause=limit") {
		t.Fatalf("state-budget abort message = %v", err)
	}

	_, err = Run(RBFS, p, blind, Limits{Deadline: time.Now().Add(-time.Second)})
	if err == nil || !strings.Contains(err.Error(), "wall-clock deadline") || !strings.Contains(err.Error(), "cause=deadline") {
		t.Fatalf("deadline abort message = %v", err)
	}

	_, err = Run(RBFS, lineProblem{n: 3}, blind, Limits{MaxDepth: 1})
	if err == nil || !strings.Contains(err.Error(), "cause=exhausted") {
		t.Fatalf("exhausted message = %v", err)
	}
}

// TestMaxFrontierTrackedForLinearMemoryAlgorithms: IDA and RBFS now report
// their peak recursion depth through the previously A*-only MaxFrontier
// field; on a line problem with an exact heuristic the deepest path held is
// the solution itself.
func TestMaxFrontierTrackedForLinearMemoryAlgorithms(t *testing.T) {
	p := lineProblem{n: 12}
	for _, algo := range []Algorithm{IDA, RBFS} {
		t.Run(algo.String(), func(t *testing.T) {
			res, err := Run(algo, p, lineHeuristic(p), Limits{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.MaxFrontier != 12 {
				t.Fatalf("MaxFrontier = %d, want 12 (peak path depth)", res.Stats.MaxFrontier)
			}
		})
	}
}

// TestCounterFeedsMetricsAndTracer is the search-layer half of the
// observability contract: a context carrying obs hooks yields per-algorithm
// counters that match the returned Stats exactly, plus a run start/finish
// event pair.
func TestCounterFeedsMetricsAndTracer(t *testing.T) {
	reg := obs.NewRegistry()
	col := obs.NewCollector()
	ctx := obs.NewContext(context.Background(), obs.Obs{Metrics: reg, Trace: col})
	p := lineProblem{n: 30}
	res, err := RunContext(ctx, RBFS, p, lineHeuristic(p), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	examined := reg.Counter(obs.Name("search.examined", "algo", "RBFS")).Value()
	generated := reg.Counter(obs.Name("search.generated", "algo", "RBFS")).Value()
	if examined != int64(res.Stats.Examined) {
		t.Fatalf("metric examined = %d, Stats.Examined = %d", examined, res.Stats.Examined)
	}
	if generated != int64(res.Stats.Generated) {
		t.Fatalf("metric generated = %d, Stats.Generated = %d", generated, res.Stats.Generated)
	}
	if got := reg.Counter(obs.Name("search.runs", "algo", "RBFS")).Value(); got != 1 {
		t.Fatalf("runs counter = %d, want 1", got)
	}
	if col.Count(obs.EvRunStart) != 1 || col.Count(obs.EvRunFinish) != 1 {
		t.Fatalf("expected one run start/finish pair, got %d/%d",
			col.Count(obs.EvRunStart), col.Count(obs.EvRunFinish))
	}
	events := col.Events()
	last := events[len(events)-1]
	if last.Kind != obs.EvRunFinish || !last.Goal || last.N != res.Stats.Examined {
		t.Fatalf("run-finish event = %+v", last)
	}
}

// TestAbortCauseCounted: failed runs land in search.aborts under their
// cause label.
func TestAbortCauseCounted(t *testing.T) {
	reg := obs.NewRegistry()
	ctx := obs.NewContext(context.Background(), obs.Obs{Metrics: reg})
	p := lineProblem{n: 1000}
	_, err := RunContext(ctx, RBFS, p, func(State) int { return 0 }, Limits{MaxStates: 25})
	if !errors.Is(err, ErrLimit) {
		t.Fatal(err)
	}
	if got := reg.Counter(obs.Name("search.aborts", "algo", "RBFS", "cause", "limit")).Value(); got != 1 {
		t.Fatalf("aborts{cause=limit} = %d, want 1", got)
	}
}
