package search

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestHeapBudgetAborts pins the memory-budget sentinel chain: a hopeless
// 1-byte budget aborts at the very first sampled state (state 1), and the
// error matches both ErrLimit (the run is budget-bound) and ErrMemory (the
// refinement) with Cause "memory".
func TestHeapBudgetAborts(t *testing.T) {
	p := lineProblem{n: 1000}
	for _, algo := range []Algorithm{IDA, RBFS, AStar, Greedy} {
		t.Run(algo.String(), func(t *testing.T) {
			_, err := Run(algo, p, lineHeuristic(p), Limits{MaxHeapBytes: 1})
			if !errors.Is(err, ErrLimit) || !errors.Is(err, ErrMemory) {
				t.Fatalf("err = %v, want both ErrLimit and ErrMemory", err)
			}
			var serr *Error
			if !errors.As(err, &serr) {
				t.Fatalf("err = %T, want *Error", err)
			}
			if serr.Cause() != "memory" {
				t.Fatalf("cause = %q, want memory", serr.Cause())
			}
			if serr.Stats.Examined != 1 {
				t.Fatalf("examined %d states before the first sample, want 1", serr.Stats.Examined)
			}
		})
	}
}

// TestHeapBudgetSampledCadence pins that the heap check runs every
// wallCheckInterval examined states, not per state: a budget the run only
// exceeds mid-search aborts exactly at a sample point (Examined ≡ 1 mod 64,
// past the first).
func TestHeapBudgetSampledCadence(t *testing.T) {
	p := lineProblem{n: 1 << 20}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	// Ballast retained by the heuristic closure pushes HeapAlloc over the
	// budget after a handful of states, well before sample point 65.
	var ballast [][]byte
	h := func(s State) int {
		ballast = append(ballast, make([]byte, 1<<20))
		return p.n - int(s.(intState))
	}
	_, err := Run(RBFS, p, h, Limits{MaxHeapBytes: ms.HeapAlloc + 8<<20})
	runtime.KeepAlive(ballast)
	if !errors.Is(err, ErrMemory) {
		t.Fatalf("err = %v, want ErrMemory", err)
	}
	var serr *Error
	if !errors.As(err, &serr) {
		t.Fatalf("err = %T, want *Error", err)
	}
	if n := serr.Stats.Examined; n <= 1 || n%wallCheckInterval != 1 {
		t.Fatalf("aborted at state %d, want a later sample point (≡ 1 mod %d)", n, wallCheckInterval)
	}
}

// TestExpiredDeadlineAbortsAtFirstState pins that moving the wall-clock
// check onto the sampling cadence kept the degenerate case exact: an
// already-expired deadline still aborts at state 1.
func TestExpiredDeadlineAbortsAtFirstState(t *testing.T) {
	p := lineProblem{n: 1000}
	for _, algo := range []Algorithm{IDA, RBFS, AStar, Greedy} {
		t.Run(algo.String(), func(t *testing.T) {
			_, err := Run(algo, p, lineHeuristic(p), Limits{Deadline: time.Now().Add(-time.Second)})
			var serr *Error
			if !errors.As(err, &serr) {
				t.Fatalf("err = %T, want *Error", err)
			}
			if serr.Cause() != "deadline" {
				t.Fatalf("cause = %q, want deadline", serr.Cause())
			}
			if serr.Stats.Examined != 1 {
				t.Fatalf("examined %d states, want 1", serr.Stats.Examined)
			}
		})
	}
}

// TestBestEffortPartialOnStateBudget: with BestEffort set, a budget-aborted
// run attaches the lowest-heuristic frontier state and a coherent path to it.
func TestBestEffortPartialOnStateBudget(t *testing.T) {
	p := lineProblem{n: 1000}
	for _, algo := range []Algorithm{IDA, RBFS, AStar, Greedy} {
		t.Run(algo.String(), func(t *testing.T) {
			_, err := Run(algo, p, lineHeuristic(p), Limits{MaxStates: 25, BestEffort: true})
			if !errors.Is(err, ErrLimit) {
				t.Fatalf("err = %v, want ErrLimit", err)
			}
			var serr *Error
			if !errors.As(err, &serr) {
				t.Fatalf("err = %T, want *Error", err)
			}
			part := serr.Partial
			if part == nil {
				t.Fatal("BestEffort abort carried no Partial")
			}
			if part.State == nil {
				t.Fatal("Partial.State is nil")
			}
			// Progress: the best frontier state must beat the start.
			if start := lineHeuristic(p)(p.Start()); part.H >= start {
				t.Fatalf("partial h = %d, no better than start %d", part.H, start)
			}
			// Path coherence: the recorded moves end at the recorded state.
			if len(part.Path) == 0 {
				t.Fatal("partial path empty despite progress")
			}
			if got := part.Path[len(part.Path)-1].To.Key(); got != part.State.Key() {
				t.Fatalf("path ends at %s, state is %s", got, part.State.Key())
			}
			// And the heuristic value matches the recorded state.
			if h := lineHeuristic(p)(part.State); h != part.H {
				t.Fatalf("recorded h = %d, state evaluates to %d", part.H, h)
			}
		})
	}
}

// TestBestEffortPartialOnImmediateAbort: when the run dies at state 1 (heap
// budget) the partial degenerates to the start state with an empty path —
// still structurally valid.
func TestBestEffortPartialOnImmediateAbort(t *testing.T) {
	p := lineProblem{n: 50}
	_, err := Run(RBFS, p, lineHeuristic(p), Limits{MaxHeapBytes: 1, BestEffort: true})
	var serr *Error
	if !errors.As(err, &serr) {
		t.Fatalf("err = %T, want *Error", err)
	}
	if serr.Partial == nil {
		t.Fatal("no partial")
	}
	if len(serr.Partial.Path) != 0 || serr.Partial.State.Key() != p.Start().Key() {
		t.Fatalf("partial = %+v, want empty path at start", serr.Partial)
	}
}

// TestBestEffortPartialOnCancel: a cancelled context is degradable too.
func TestBestEffortPartialOnCancel(t *testing.T) {
	p := lineProblem{n: 1 << 20}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	h := func(s State) int {
		calls++
		if calls == 100 {
			cancel()
		}
		return p.n - int(s.(intState))
	}
	_, err := RunContext(ctx, RBFS, p, h, Limits{BestEffort: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var serr *Error
	if !errors.As(err, &serr) {
		t.Fatalf("err = %T, want *Error", err)
	}
	if serr.Partial == nil || serr.Partial.State == nil {
		t.Fatal("cancelled best-effort run carried no partial")
	}
}

// TestBestEffortOffNoPartial: the default configuration must not pay for or
// expose partial tracking.
func TestBestEffortOffNoPartial(t *testing.T) {
	p := lineProblem{n: 1000}
	_, err := Run(RBFS, p, lineHeuristic(p), Limits{MaxStates: 25})
	var serr *Error
	if !errors.As(err, &serr) {
		t.Fatalf("err = %T, want *Error", err)
	}
	if serr.Partial != nil {
		t.Fatalf("Partial = %+v without BestEffort", serr.Partial)
	}
}

// TestPanicErrorCause pins the error-vocabulary extension: a *PanicError
// wrapped in *Error classifies as "panic" ahead of everything else.
func TestPanicErrorCause(t *testing.T) {
	pe := NewPanicError("test goroutine", "boom")
	e := &Error{Err: pe}
	if e.Cause() != "panic" {
		t.Fatalf("cause = %q, want panic", e.Cause())
	}
	if got := pe.Error(); got != `panic in test goroutine: boom` {
		t.Fatalf("message = %q", got)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("no stack captured")
	}
	var back *PanicError
	if !errors.As(e, &back) || back != pe {
		t.Fatal("errors.As failed to recover the PanicError")
	}
}
