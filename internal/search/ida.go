package search

import (
	"cmp"
	"context"
	"slices"
)

// IDAStar runs Iterative Deepening A* (§2.3): a sequence of depth-first
// probes, each bounded by an f-value limit, iteratively raising the limit to
// the smallest f-value that exceeded it. Memory use is linear in the depth
// of the search plus the bounded move-order cache; states may be re-examined
// across iterations, which the paper accepts (and counts) in exchange for
// the memory guarantee. The context is checked at every examined state.
func IDAStar(ctx context.Context, p Problem, h Heuristic, lim Limits) (*Result, error) {
	start := p.Start()
	c := newCounter(ctx, "IDA", lim)
	bound := h(start)
	order := make(map[string][]Move)
	for {
		c.stats.Iterations++
		onPath := map[string]bool{start.Key(): true}
		var path []Move
		// On abort, Stats.Depth stays 0 like every other algorithm:
		// Stats.Depth documents the length of the solution path found, and
		// the in-flight probe depth is not one.
		next, res, err := idaProbe(p, h, c, start, 0, bound, &path, onPath, order)
		if err != nil {
			return nil, c.fail(err)
		}
		if res != nil {
			return c.finish(res), nil
		}
		if next >= inf {
			return nil, c.fail(ErrNotFound)
		}
		bound = next
	}
}

// idaOrderMax bounds the move-order cache, mirroring the successor memo's
// backstop: beyond it, expansions sort without recording.
const idaOrderMax = 1 << 20

// idaProbe performs one bounded depth-first probe. It returns the smallest
// f-value that exceeded the bound (inf if the subtree is exhausted), or a
// result if a goal was found on this probe.
//
// order caches each state's h-sorted move list across probes. The sort key
// is (f, h) with f = g + cost + h, and g is one constant across all of a
// state's children, so the order is the same at any depth the state is
// reached — and IDA revisits states relentlessly (the deepening loop re-walks
// the whole tree every iteration). A hit skips the per-child heuristic
// lookups and the sort wholesale; only the examined/expanded counters, which
// define the paper's performance measure, are still paid per visit.
func idaProbe(p Problem, h Heuristic, c *counter, s State, g, bound int, path *[]Move, onPath map[string]bool, order map[string][]Move) (int, *Result, error) {
	f := g + h(s)
	if c.best != nil {
		c.candidate(s, f-g, func() []Move { return append([]Move(nil), *path...) })
	}
	if f > bound {
		return f, nil, nil
	}
	if err := c.examine(); err != nil {
		return 0, nil, err
	}
	if c.isGoal(p, s, g) {
		return 0, &Result{Path: append([]Move(nil), *path...), Goal: s}, nil
	}
	if !c.depthOK(g + 1) {
		return inf, nil, nil
	}
	moves, err := c.expand(p, s, g)
	if err != nil {
		return 0, nil, err
	}
	// Successor ordering: probe children in increasing (f, h) order. This
	// is the standard move-ordering enhancement for iterative deepening;
	// with the non-monotone heuristics of §3 (f can decrease along good
	// paths) it is what steers the depth-first probe toward the goal
	// instead of leaving the order to operator enumeration.
	sorted, ok := order[s.Key()]
	if !ok || len(sorted) != len(moves) {
		kids := make([]idaChild, 0, len(moves))
		for _, m := range moves {
			hv := h(m.To)
			kids = append(kids, idaChild{move: m, h: hv, f: g + m.Cost + hv})
		}
		slices.SortStableFunc(kids, func(a, b idaChild) int {
			if a.f != b.f {
				return cmp.Compare(a.f, b.f)
			}
			return cmp.Compare(a.h, b.h)
		})
		sorted = make([]Move, len(kids))
		for i, kid := range kids {
			sorted[i] = kid.move
		}
		if len(order) < idaOrderMax {
			order[s.Key()] = sorted
		}
	}
	min := inf
	for _, m := range sorted {
		k := m.To.Key()
		if onPath[k] {
			continue // cycle along the current path
		}
		onPath[k] = true
		*path = append(*path, m)
		c.frontier(len(*path))
		t, res, err := idaProbe(p, h, c, m.To, g+m.Cost, bound, path, onPath, order)
		if err != nil || res != nil {
			return t, res, err
		}
		*path = (*path)[:len(*path)-1]
		delete(onPath, k)
		if t < min {
			min = t
		}
	}
	return min, nil, nil
}

// idaChild is a successor with its f-value for move ordering.
type idaChild struct {
	move Move
	h    int
	f    int
}
