package search

import (
	"context"
	"sort"
)

// IDAStar runs Iterative Deepening A* (§2.3): a sequence of depth-first
// probes, each bounded by an f-value limit, iteratively raising the limit to
// the smallest f-value that exceeded it. Memory use is linear in the depth
// of the search; states may be re-examined across iterations, which the
// paper accepts (and counts) in exchange for the memory guarantee. The
// context is checked at every examined state.
func IDAStar(ctx context.Context, p Problem, h Heuristic, lim Limits) (*Result, error) {
	start := p.Start()
	c := newCounter(ctx, "IDA", lim)
	bound := h(start)
	for {
		c.stats.Iterations++
		onPath := map[string]bool{start.Key(): true}
		var path []Move
		// On abort, Stats.Depth stays 0 like every other algorithm:
		// Stats.Depth documents the length of the solution path found, and
		// the in-flight probe depth is not one.
		next, res, err := idaProbe(p, h, c, start, 0, bound, &path, onPath)
		if err != nil {
			return nil, c.fail(err)
		}
		if res != nil {
			return c.finish(res), nil
		}
		if next >= inf {
			return nil, c.fail(ErrNotFound)
		}
		bound = next
	}
}

// idaProbe performs one bounded depth-first probe. It returns the smallest
// f-value that exceeded the bound (inf if the subtree is exhausted), or a
// result if a goal was found on this probe.
func idaProbe(p Problem, h Heuristic, c *counter, s State, g, bound int, path *[]Move, onPath map[string]bool) (int, *Result, error) {
	f := g + h(s)
	c.candidate(s, f-g, func() []Move { return append([]Move(nil), *path...) })
	if f > bound {
		return f, nil, nil
	}
	if err := c.examine(); err != nil {
		return 0, nil, err
	}
	if c.isGoal(p, s, g) {
		return 0, &Result{Path: append([]Move(nil), *path...), Goal: s}, nil
	}
	if !c.depthOK(g + 1) {
		return inf, nil, nil
	}
	moves, err := c.expand(p, s, g)
	if err != nil {
		return 0, nil, err
	}
	// Successor ordering: probe children in increasing (f, h) order. This
	// is the standard move-ordering enhancement for iterative deepening;
	// with the non-monotone heuristics of §3 (f can decrease along good
	// paths) it is what steers the depth-first probe toward the goal
	// instead of leaving the order to operator enumeration.
	kids := make([]idaChild, 0, len(moves))
	for _, m := range moves {
		hv := h(m.To)
		kids = append(kids, idaChild{move: m, h: hv, f: g + m.Cost + hv})
	}
	sort.SliceStable(kids, func(i, j int) bool {
		if kids[i].f != kids[j].f {
			return kids[i].f < kids[j].f
		}
		return kids[i].h < kids[j].h
	})
	min := inf
	for _, kid := range kids {
		m := kid.move
		k := m.To.Key()
		if onPath[k] {
			continue // cycle along the current path
		}
		onPath[k] = true
		*path = append(*path, m)
		c.frontier(len(*path))
		t, res, err := idaProbe(p, h, c, m.To, g+m.Cost, bound, path, onPath)
		if err != nil || res != nil {
			return t, res, err
		}
		*path = (*path)[:len(*path)-1]
		delete(onPath, k)
		if t < min {
			min = t
		}
	}
	return min, nil, nil
}

// idaChild is a successor with its f-value for move ordering.
type idaChild struct {
	move Move
	h    int
	f    int
}
