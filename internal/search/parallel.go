package search

import (
	"cmp"
	"container/heap"
	"context"
	"fmt"
	"math"
	"runtime"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tupelo/internal/obs"
)

// This file implements hash-distributed parallel search (HDA*-style,
// Kishimoto/Fukunaga/Botea): the frontier is partitioned across worker
// goroutines by a hash of the state key, so each worker owns the open list
// and the bestG (closed/seen) entries of its shard and never takes a lock to
// touch them. Successors generated on one shard are routed to their owning
// shard over bounded channels; termination is a distributed quiescence check
// over a single global credit counter (open nodes + in-flight messages).
// DESIGN.md §10 gives the termination argument and the determinism caveats.

// parallelAlgoName labels the sharded A* in metrics, trace events, and error
// text; parallelBeamAlgoName likewise for the level-synchronized beam.
const (
	parallelAlgoName     = "PA*"
	parallelBeamAlgoName = "PBeam"
)

// shardOf assigns a state key to one of n shards: FNV-1a over the key bytes.
// State keys are already near-uniform 128-bit hashes, but FNV keeps the
// mapping well-distributed even for toy problems whose keys are short
// decimal strings.
func shardOf(key string, n int) int {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * prime32
	}
	return int(h % uint32(n))
}

// shardInboxCap is the default per-shard inbound channel capacity
// (Limits.ShardInboxCap overrides it). Full channels are never blocked on
// while a worker holds expandable nodes: sends that would block fall back to
// a per-worker outbox (counted as deferred) and are flushed
// opportunistically, so routing cannot deadlock.
const shardInboxCap = 1024

// incumbent is the best goal found so far, shared by all shards. Once set,
// its g value (read lock-free through bound) prunes every node whose f
// exceeds it; nodes on the f == g plateau are still goal-tested (a second
// goal with equal cost may win the deterministic tie-break) but not
// expanded. The tie-break — minimum g, then lexicographically least label
// sequence — makes the final choice independent of which shard reported its
// goal first whenever both goals are generated at all.
type incumbent struct {
	mu    sync.Mutex
	set   bool
	g     int
	path  []Move
	goal  State
	bound atomic.Int64 // g of the incumbent; math.MaxInt64 until one is set
}

func newIncumbent() *incumbent {
	in := &incumbent{}
	in.bound.Store(math.MaxInt64)
	return in
}

// offer installs (goal, g, path) if it beats the current incumbent under the
// deterministic order. The path must be caller-owned (never mutated after).
func (in *incumbent) offer(goal State, g int, path []Move) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.set {
		if g > in.g {
			return
		}
		if g == in.g && !lessMovePath(path, in.path) {
			return
		}
	}
	in.set, in.g, in.path, in.goal = true, g, path, goal
	in.bound.Store(int64(g))
}

// lessMovePath orders move paths lexicographically by label, shorter prefix
// first — a total, scheduling-independent order for tie-breaking goals of
// equal cost.
func lessMovePath(a, b []Move) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i].Label != b[i].Label {
			return a[i].Label < b[i].Label
		}
	}
	return len(a) < len(b)
}

// parRun is the state shared by every shard worker of one ParallelAStar run.
type parRun struct {
	p       Problem
	h       Heuristic
	lim     Limits
	ctx     context.Context
	workers int
	greedy  bool

	inbox []chan *node

	// pending is the quiescence credit counter: the number of nodes created
	// (rooted, queued, in an outbox, in flight, or in a shard's open list)
	// and not yet retired. Every node is incremented before it is handed
	// anywhere and decremented exactly once by the shard that disposes of it;
	// children are credited before their parent is retired, so pending can
	// reach 0 only when no live node exists anywhere. The decrement that
	// reaches 0 ends the run.
	pending atomic.Int64
	// examined is the global count of goal tests, shared so MaxStates bounds
	// the whole run, not each shard.
	examined atomic.Int64

	done     chan struct{}
	stopOnce sync.Once
	stopErr  atomic.Pointer[runStop]

	inc  *incumbent
	c    *counter // run-level events, instruments, best-effort tracker
	seqs atomic.Int64

	// shardExamined holds every shard's examined counter so any worker can
	// compute the live imbalance gauge on its sampling cadence; nil without
	// metrics. gImbalance is the run-wide imbalance gauge (permille, since
	// gauges are integers: 1000 = perfectly balanced).
	shardExamined []*obs.Counter
	gImbalance    *obs.Gauge
}

// runStop carries the first failure that stopped the run; a nil-error stop
// is quiescence.
type runStop struct{ err error }

// stop ends the run once: on quiescence err is nil, otherwise it is the
// first failure (budget, deadline, cancellation, problem error, panic).
func (r *parRun) stop(err error) {
	r.stopOnce.Do(func() {
		if err != nil {
			r.stopErr.Store(&runStop{err: err})
		}
		close(r.done)
	})
}

// retire returns one quiescence credit; the holder of the last credit ends
// the run.
func (r *parRun) retire() {
	if r.pending.Add(-1) == 0 {
		r.stop(nil)
	}
}

// routedNode is an outbox entry: a node waiting for capacity on its owning
// shard's inbox.
type routedNode struct {
	dst int
	n   *node
}

// parWorker is one shard: it owns the bestG entries and the open heap of
// every state whose key hashes to its id.
type parWorker struct {
	id int
	r  *parRun

	open        frontier
	bestG       map[string]int
	outbox      []routedNode
	maxFrontier int
	generated   int
	examined    int

	// Pre-resolved per-shard instruments; nil (no-op) without metrics.
	mExamined *obs.Counter
	mRouted   *obs.Counter
	mDeferred *obs.Counter
	gInbox    *obs.Gauge

	// ring is this shard's flight-recorder ring (nil without a recorder);
	// written only from the worker's own goroutine.
	ring *obs.FlightRing
}

// ParallelAStar is A* over a hash-sharded frontier: the open list and the
// bestG map are partitioned across `workers` goroutines by state-key hash,
// successors are routed to their owning shard over bounded channels, and the
// run ends either at quiescence (every shard idle, no message in flight —
// the distributed analogue of an empty open list) or at the first abort.
//
// Unlike sequential A*, the run does not return at the first goal: the goal
// becomes an incumbent that prunes the remaining frontier (f > g* discarded;
// f == g* goal-tested but not expanded), and the best goal under a
// deterministic tie-break (minimum g, then lexicographically least label
// path) is returned at quiescence. With an admissible heuristic the result
// cost is optimal, as for A*; speculative expansion means Stats.Examined can
// exceed the sequential count (see DESIGN.md §10 for why, and for the
// determinism caveats under inadmissible heuristics).
//
// The Problem and Heuristic are called concurrently from shard workers and
// must be safe for concurrent use. workers <= 0 means GOMAXPROCS; workers ==
// 1 runs the same engine on a single shard (no channels are needed but the
// incumbent/quiescence semantics are identical, so results are comparable
// across worker counts).
func ParallelAStar(ctx context.Context, p Problem, h Heuristic, lim Limits, workers int) (*Result, error) {
	return parallelBestFirst(ctx, p, h, lim, workers, false)
}

// ParallelGreedySearch is the greedy (f = h) variant of ParallelAStar,
// included for symmetry with the sequential ablations. Greedy search is
// incomplete and unordered in g, so the incumbent prune keeps only the
// plateau rule; results match ParallelAStar's determinism caveats.
func ParallelGreedySearch(ctx context.Context, p Problem, h Heuristic, lim Limits, workers int) (*Result, error) {
	return parallelBestFirst(ctx, p, h, lim, workers, true)
}

func parallelBestFirst(ctx context.Context, p Problem, h Heuristic, lim Limits, workers int, greedy bool) (*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 1 {
		// Shard workers are CPU-bound peers of each other: on a machine with
		// fewer CPUs than shards the cooperative yield bounds mutual
		// starvation exactly as it does for portfolio members.
		lim.Cooperative = true
	}
	if ctx == nil {
		ctx = context.Background()
	}
	c := newCounter(ctx, parallelAlgoName, lim)
	r := &parRun{
		p: p, h: h, lim: lim, ctx: ctx, workers: workers, greedy: greedy,
		inbox: make([]chan *node, workers),
		done:  make(chan struct{}),
		inc:   newIncumbent(),
		c:     c,
	}
	inboxCap := lim.ShardInboxCap
	if inboxCap <= 0 {
		inboxCap = shardInboxCap
	}
	for i := range r.inbox {
		r.inbox[i] = make(chan *node, inboxCap)
	}

	start := p.Start()
	hs := h(start)
	c.candidate(start, hs, func() []Move { return nil })
	f := hs
	root := &node{state: start, g: 0, f: f}

	ws := make([]*parWorker, workers)
	for i := range ws {
		w := &parWorker{id: i, r: r, bestG: make(map[string]int)}
		if c.o.Enabled() {
			if m := c.o.Metrics; m != nil {
				shard := strconv.Itoa(i)
				w.mExamined = m.Counter(obs.Name("search.shard.examined", "algo", parallelAlgoName, "shard", shard))
				w.mRouted = m.Counter(obs.Name("search.shard.routed", "algo", parallelAlgoName, "shard", shard))
				w.mDeferred = m.Counter(obs.Name("search.shard.deferred", "algo", parallelAlgoName, "shard", shard))
				w.gInbox = m.Gauge(obs.Name("search.shard.inbox.depth", "algo", parallelAlgoName, "shard", shard))
				r.shardExamined = append(r.shardExamined, w.mExamined)
			}
		}
		// The ring is allocated here but written only from the worker's own
		// goroutine (the goroutine-start edge orders this handoff).
		w.ring = c.o.Flight.Ring("shard-" + strconv.Itoa(i))
		ws[i] = w
	}
	if m := c.o.Metrics; m != nil {
		r.gImbalance = m.Gauge(obs.Name("search.shard.imbalance.permille", "algo", parallelAlgoName))
	}

	// Root credit before the root is enqueued; the inbox has capacity, so
	// this send cannot block.
	r.pending.Store(1)
	r.inbox[shardOf(start.Key(), workers)] <- root

	var wg sync.WaitGroup
	wg.Add(workers)
	for _, w := range ws {
		go func(w *parWorker) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					pe := NewPanicError(fmt.Sprintf("parallel shard worker %d", w.id), rec)
					if c.o.Enabled() {
						if m := c.o.Metrics; m != nil {
							m.Counter(obs.Name("search.panics", "origin", "shard")).Inc()
						}
						c.o.Tracer().Event(obs.Event{Kind: obs.EvPanic, Label: pe.Origin, Err: pe})
					}
					r.stop(pe)
				}
			}()
			w.run()
		}(w)
	}
	wg.Wait()

	// Aggregate per-shard effort into the run counter. Examined comes from
	// the shared budget counter so it matches what the limit checks saw;
	// MaxFrontier sums the shard peaks — an upper bound on the peak global
	// open size, the analogue of the sequential open-list peak.
	c.stats.Examined = int(r.examined.Load())
	for _, w := range ws {
		c.stats.Generated += w.generated
		c.stats.MaxFrontier += w.maxFrontier
	}

	if s := r.stopErr.Load(); s != nil {
		return nil, c.fail(s.err)
	}
	r.inc.mu.Lock()
	set, path, goal := r.inc.set, r.inc.path, r.inc.goal
	r.inc.mu.Unlock()
	if !set {
		return nil, c.fail(ErrNotFound)
	}
	return c.finish(&Result{Path: path, Goal: goal}), nil
}

// run is a shard worker's main loop: drain the inbox, flush the outbox,
// process the best open node, and block only when the shard is fully idle.
func (w *parWorker) run() {
	r := w.r
	for {
		select {
		case <-r.done:
			return
		default:
		}
		// Accept everything already queued for this shard, then move what
		// this shard has queued for others, both without blocking.
		w.drainInbox()
		w.flushOutbox()
		if w.open.Len() > 0 {
			if !w.step() {
				return
			}
			continue
		}
		if len(w.outbox) > 0 {
			// Nothing to expand locally but messages are stuck on full
			// inboxes: block on the head destination, while still accepting
			// our own arrivals so two mutually-full shards cannot livelock.
			head := w.outbox[0]
			select {
			case r.inbox[head.dst] <- head.n:
				w.mRouted.Inc()
				w.outbox = w.outbox[1:]
			case n := <-r.inbox[w.id]:
				w.arrive(n)
			case <-r.done:
				return
			case <-r.ctx.Done():
				r.stop(r.ctx.Err())
				return
			}
			continue
		}
		// Fully idle: wait for routed work or the end of the run.
		select {
		case n := <-r.inbox[w.id]:
			w.arrive(n)
		case <-r.done:
			return
		case <-r.ctx.Done():
			r.stop(r.ctx.Err())
			return
		}
	}
}

// drainInbox accepts every node already queued for this shard.
func (w *parWorker) drainInbox() {
	for {
		select {
		case n := <-w.r.inbox[w.id]:
			w.arrive(n)
		default:
			return
		}
	}
}

// flushOutbox forwards deferred nodes for which their destination inbox now
// has capacity; the rest stay queued.
func (w *parWorker) flushOutbox() {
	kept := w.outbox[:0]
	for _, rn := range w.outbox {
		select {
		case w.r.inbox[rn.dst] <- rn.n:
			w.mRouted.Inc()
		default:
			kept = append(kept, rn)
		}
	}
	w.outbox = kept
}

// arrive admits a routed node into this shard: duplicate paths that do not
// improve the shard's bestG are retired on the spot, improvements enter the
// open heap.
func (w *parWorker) arrive(n *node) {
	if g, ok := w.bestG[n.state.Key()]; ok && n.g >= g {
		w.r.retire()
		return
	}
	w.bestG[n.state.Key()] = n.g
	w.seq(n)
	heap.Push(&w.open, n)
	if w.open.Len() > w.maxFrontier {
		w.maxFrontier = w.open.Len()
	}
}

// seq stamps a heap tie-break ordinal. Within one shard the ordinal keeps
// pops stable; across shards it carries no meaning (arrival order is
// scheduling-dependent), which is one of the documented determinism caveats.
func (w *parWorker) seq(n *node) {
	n.seq = int(w.r.seqs.Add(1))
}

// step processes the best open node of this shard. It returns false when the
// run must end (this worker observed a stop condition).
func (w *parWorker) step() bool {
	r := w.r
	n := heap.Pop(&w.open).(*node)
	if g, ok := w.bestG[n.state.Key()]; ok && n.g > g {
		r.retire() // superseded while queued
		return true
	}
	bound := r.inc.bound.Load()
	if int64(n.f) > bound {
		// Cannot beat the incumbent (h(goal) = 0 makes a goal's f its g, so
		// pruning strictly-greater f never discards a tying goal).
		r.retire()
		return true
	}
	if err := w.examineState(); err != nil {
		r.stop(err)
		return false
	}
	seq := int(r.examined.Load())
	if w.isGoal(n.state, n.g, seq) {
		r.inc.offer(n.state, n.g, n.path)
		r.retire()
		return true
	}
	if int64(n.f) == bound || !r.c.depthOK(n.g+1) {
		// Plateau nodes (f equal to the incumbent's cost) are goal-tested
		// above for the tie-break but never expanded: their descendants cost
		// at least as much and cannot win.
		r.retire()
		return true
	}
	moves, err := w.expand(n, seq)
	if err != nil {
		r.stop(err)
		return false
	}
	bound = r.inc.bound.Load() // may have tightened during the expansion
	for _, m := range moves {
		g := n.g + m.Cost
		k := m.To.Key()
		if prev, seen := w.bestG[k]; seen && g >= prev {
			// bestG holds only keys this shard owns, so a hit means we are
			// the authority for k and already know a path at least as good.
			continue
		}
		hv := r.h(m.To)
		f := g + hv
		if r.greedy {
			f = hv
		}
		if !r.greedy && int64(f) > bound {
			continue // pruned by the incumbent before paying for a message
		}
		path := make([]Move, 0, len(n.path)+1)
		path = append(path, n.path...)
		path = append(path, m)
		r.c.candidate(m.To, hv, func() []Move { return path })
		w.deliver(&node{state: m.To, g: g, f: f, path: path})
	}
	r.retire()
	return true
}

// deliver credits and routes one generated node to its owning shard. Local
// nodes are admitted directly; remote sends that would block are deferred to
// the outbox so expansion never stalls on a full channel.
func (w *parWorker) deliver(n *node) {
	r := w.r
	r.pending.Add(1)
	dst := shardOf(n.state.Key(), r.workers)
	if dst == w.id {
		w.arrive(n)
		return
	}
	select {
	case r.inbox[dst] <- n:
		w.mRouted.Inc()
		w.ring.Record(obs.FKRoute, 0, int32(dst), 0)
	default:
		w.outbox = append(w.outbox, routedNode{dst: dst, n: n})
		w.mDeferred.Inc()
		w.ring.Record(obs.FKDefer, 0, int32(dst), int32(len(w.outbox)))
	}
}

// examineState is the sharded analogue of counter.examine: one goal test is
// charged against the global budget, the cooperative yield and the sampled
// wall-clock/heap checks run on the global cadence.
func (w *parWorker) examineState() error {
	r := w.r
	n := r.examined.Add(1)
	w.examined++
	w.mExamined.Inc()
	r.c.mExamined.Inc()
	if r.lim.MaxStates > 0 && n > int64(r.lim.MaxStates) {
		return errStateBudget
	}
	if r.lim.Cooperative && n&15 == 0 {
		r.c.mYields.Inc()
		runtime.Gosched()
	}
	if err := r.ctx.Err(); err != nil {
		return err
	}
	if n&(wallCheckInterval-1) == 1 {
		if !r.lim.Deadline.IsZero() && time.Now().After(r.lim.Deadline) {
			return errWallDeadline
		}
		if r.lim.MaxHeapBytes > 0 && heapLiveBytes() > r.lim.MaxHeapBytes {
			return errHeapBudget
		}
		w.sampleShard(n)
	}
	return nil
}

// sampleShard publishes this shard's backpressure on the wall-check cadence:
// the inbox-depth gauge, a flight record, an EvShardSample trace event, and —
// reading every shard's examined counter — the run-wide imbalance gauge
// (permille of the mean; 1000 = perfectly balanced, 2000 = the busiest shard
// examined twice its fair share). n is the global examined ordinal.
func (w *parWorker) sampleShard(n int64) {
	r := w.r
	depth := len(r.inbox[w.id])
	w.ring.Record(obs.FKInbox, uint32(n), int32(depth), int32(len(w.outbox)))
	if !r.c.o.Enabled() {
		return
	}
	w.gInbox.Set(int64(depth))
	r.c.o.Tracer().Event(obs.Event{
		Kind: obs.EvShardSample, Label: strconv.Itoa(w.id),
		Seq: int(n), N: depth, Depth: len(w.outbox),
	})
	if r.gImbalance != nil && len(r.shardExamined) > 0 {
		var sum, max int64
		for _, c := range r.shardExamined {
			v := c.Value()
			sum += v
			if v > max {
				max = v
			}
		}
		if sum > 0 {
			r.gImbalance.Set(max * 1000 * int64(len(r.shardExamined)) / sum)
		}
	}
}

// isGoal mirrors counter.isGoal with an explicit sequence number (the global
// examined ordinal at the time of the test).
func (w *parWorker) isGoal(s State, g, seq int) bool {
	c := w.r.c
	if !c.o.Enabled() {
		goal := w.r.p.IsGoal(s)
		w.ring.Record(obs.FKExamine, uint32(seq), int32(g), flightBool(goal))
		return goal
	}
	start := time.Now()
	goal := w.r.p.IsGoal(s)
	c.hGoalTest.Observe(time.Since(start))
	w.ring.Record(obs.FKExamine, uint32(seq), int32(g), flightBool(goal))
	c.o.Tracer().Event(obs.Event{Kind: obs.EvGoalTest, Seq: seq, Depth: g, Goal: goal})
	return goal
}

// expand mirrors counter.expand on a shard worker: successor generation is
// timed and traced, and the generated count lands in the shard-local tally
// (aggregated after the run) plus the shared metrics counter.
func (w *parWorker) expand(n *node, seq int) ([]Move, error) {
	c := w.r.c
	if !c.o.Enabled() {
		moves, err := w.r.p.Successors(n.state)
		if err != nil {
			return nil, err
		}
		w.generated += len(moves)
		c.mGenerated.Add(int64(len(moves)))
		w.ring.Record(obs.FKExpand, uint32(seq), int32(n.g), int32(len(moves)))
		return moves, nil
	}
	start := time.Now()
	moves, err := w.r.p.Successors(n.state)
	elapsed := time.Since(start)
	c.hExpand.Observe(elapsed)
	tr := c.o.Tracer()
	if err != nil {
		tr.Event(obs.Event{Kind: obs.EvExpand, Seq: seq, Depth: n.g, Err: err, Elapsed: elapsed})
		return nil, err
	}
	w.generated += len(moves)
	c.mGenerated.Add(int64(len(moves)))
	w.ring.Record(obs.FKExpand, uint32(seq), int32(n.g), int32(len(moves)))
	tr.Event(obs.Event{Kind: obs.EvExpand, Seq: seq, Depth: n.g, N: len(moves), Elapsed: elapsed})
	for _, m := range moves {
		tr.Event(obs.Event{Kind: obs.EvMove, Label: m.Label, Depth: n.g})
	}
	return moves, nil
}

// ParallelBeamSearch is BeamSearch with the expansion and scoring of each
// level fanned out across `workers` goroutines. The search is synchronized
// level by level — candidates are merged, deduplicated, sorted, and
// truncated at a global barrier in the exact order the sequential code uses
// — so the beams, the examined count, and the result are identical to
// BeamSearch for every worker count (the strong determinism the sharded A*
// deliberately trades away; see DESIGN.md §10). The Problem and Heuristic
// must be safe for concurrent use when workers > 1.
func ParallelBeamSearch(ctx context.Context, p Problem, h Heuristic, lim Limits, width, workers int) (*Result, error) {
	if width <= 0 {
		width = 8
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 1 {
		lim.Cooperative = true
	}
	c := newCounter(ctx, parallelBeamAlgoName, lim)
	type beamNode struct {
		state State
		g     int
		path  []Move
	}
	frontier := []beamNode{{state: p.Start()}}
	if c.best != nil {
		c.candidate(p.Start(), h(p.Start()), func() []Move { return nil })
	}
	// As in BeamSearch: only admitted states are marked, so width-truncated
	// states may be regenerated by later paths.
	seen := map[string]bool{p.Start().Key(): true}

	// levelExpansion is one frontier node's parallel work product: its move
	// list with the heuristic value of every successor, positionally aligned.
	type levelExpansion struct {
		moves   []Move
		hvs     []int
		err     error
		elapsed time.Duration
	}

	for len(frontier) > 0 {
		for _, n := range frontier {
			if err := c.examine(); err != nil {
				return nil, c.fail(err)
			}
			if c.isGoal(p, n.state, n.g) {
				return c.finish(&Result{Path: n.path, Goal: n.state}), nil
			}
		}
		// Parallel phase: expand every node of the level and evaluate the
		// heuristic of every successor on a bounded pool. The shared `seen`
		// map is only read here; all writes happen at the barrier below.
		results := make([]levelExpansion, len(frontier))
		nw := workers
		if nw > len(frontier) {
			nw = len(frontier)
		}
		expandOne := func(i int) {
			n := frontier[i]
			if !c.depthOK(n.g + 1) {
				return
			}
			start := time.Now()
			moves, err := p.Successors(n.state)
			results[i].elapsed = time.Since(start)
			if err != nil {
				results[i].err = err
				return
			}
			hvs := make([]int, len(moves))
			for j, m := range moves {
				if !seen[m.To.Key()] {
					hvs[j] = h(m.To)
				}
			}
			results[i].moves, results[i].hvs = moves, hvs
		}
		if nw <= 1 {
			for i := range frontier {
				expandOne(i)
			}
		} else {
			var cursor atomic.Int64
			var panicked atomic.Pointer[PanicError]
			var wg sync.WaitGroup
			wg.Add(nw)
			for wkr := 0; wkr < nw; wkr++ {
				go func(wkr int) {
					defer wg.Done()
					for {
						i := int(cursor.Add(1)) - 1
						if i >= len(frontier) || panicked.Load() != nil {
							return
						}
						func() {
							defer func() {
								if rec := recover(); rec != nil {
									pe := NewPanicError(fmt.Sprintf("parallel beam worker %d (level node %d)", wkr, i), rec)
									panicked.CompareAndSwap(nil, pe)
									if c.o.Enabled() {
										c.o.Tracer().Event(obs.Event{Kind: obs.EvPanic, Label: pe.Origin, Err: pe})
									}
								}
							}()
							expandOne(i)
						}()
					}
				}(wkr)
			}
			wg.Wait()
			if pe := panicked.Load(); pe != nil {
				return nil, c.fail(pe)
			}
		}
		// Barrier: merge in frontier order, exactly as the sequential code
		// generates, so dedup winners, sort ranks, and truncation are
		// bit-identical to BeamSearch.
		type scored struct {
			node beamNode
			key  string
			f    int
			seq  int
		}
		var next []scored
		level := make(map[string]int)
		seq := 0
		for i, n := range frontier {
			if !c.depthOK(n.g + 1) {
				continue
			}
			res := results[i]
			c.observeExpansion(n.g, res.moves, res.err, res.elapsed)
			if res.err != nil {
				return nil, c.fail(res.err)
			}
			for j, m := range res.moves {
				k := m.To.Key()
				if seen[k] {
					continue
				}
				path := make([]Move, 0, len(n.path)+1)
				path = append(path, n.path...)
				path = append(path, m)
				g := n.g + m.Cost
				seq++
				hv := res.hvs[j]
				c.candidate(m.To, hv, func() []Move { return path })
				s := scored{
					node: beamNode{state: m.To, g: g, path: path},
					key:  k,
					f:    g + hv,
					seq:  seq,
				}
				if i, dup := level[k]; dup {
					if s.f < next[i].f {
						next[i] = s
					}
					continue
				}
				level[k] = len(next)
				next = append(next, s)
			}
		}
		slices.SortStableFunc(next, func(a, b scored) int {
			if a.f != b.f {
				return cmp.Compare(a.f, b.f)
			}
			return cmp.Compare(a.seq, b.seq)
		})
		c.frontier(len(next))
		if len(next) > width {
			next = next[:width]
		}
		frontier = frontier[:0]
		for _, s := range next {
			seen[s.key] = true
			frontier = append(frontier, s.node)
		}
	}
	return nil, c.fail(ErrNotFound)
}

// observeExpansion replays one externally-timed expansion into the counter's
// instruments and trace stream — counter.expand for work that already
// happened on a worker goroutine. Successful expansions count their moves;
// failed ones emit the error event (the caller converts the error itself).
func (c *counter) observeExpansion(g int, moves []Move, err error, elapsed time.Duration) {
	if !c.o.Enabled() {
		if err == nil {
			c.generated(len(moves))
		}
		return
	}
	c.hExpand.Observe(elapsed)
	tr := c.o.Tracer()
	if err != nil {
		tr.Event(obs.Event{Kind: obs.EvExpand, Seq: c.stats.Examined, Depth: g, Err: err, Elapsed: elapsed})
		return
	}
	c.generated(len(moves))
	tr.Event(obs.Event{Kind: obs.EvExpand, Seq: c.stats.Examined, Depth: g, N: len(moves), Elapsed: elapsed})
	for _, m := range moves {
		tr.Event(obs.Event{Kind: obs.EvMove, Label: m.Label, Depth: g})
	}
}
