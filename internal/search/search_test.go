package search

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// intState is a trivial State for toy problems.
type intState int

func (s intState) Key() string { return fmt.Sprintf("%d", int(s)) }

// lineProblem is a path graph 0 — 1 — ... — n with the goal at n.
type lineProblem struct{ n int }

func (p lineProblem) Start() State { return intState(0) }
func (p lineProblem) Successors(s State) ([]Move, error) {
	i := int(s.(intState))
	var out []Move
	if i > 0 {
		out = append(out, Move{Label: "back", To: intState(i - 1), Cost: 1})
	}
	if i < p.n {
		out = append(out, Move{Label: "fwd", To: intState(i + 1), Cost: 1})
	}
	return out, nil
}
func (p lineProblem) IsGoal(s State) bool { return int(s.(intState)) == p.n }

func lineHeuristic(p lineProblem) Heuristic {
	return func(s State) int { return p.n - int(s.(intState)) }
}

func TestAllAlgorithmsSolveLine(t *testing.T) {
	p := lineProblem{n: 12}
	for _, algo := range []Algorithm{IDA, RBFS, AStar, Greedy} {
		t.Run(algo.String(), func(t *testing.T) {
			res, err := Run(algo, p, lineHeuristic(p), Limits{})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Path) != 12 {
				t.Fatalf("path length = %d, want 12", len(res.Path))
			}
			if !p.IsGoal(res.Goal) {
				t.Fatal("returned non-goal state")
			}
			if res.Stats.Examined == 0 || res.Stats.Depth != 12 {
				t.Fatalf("stats = %+v", res.Stats)
			}
		})
	}
}

func TestPerfectHeuristicExaminesLinearly(t *testing.T) {
	p := lineProblem{n: 20}
	res, err := IDAStar(context.Background(), p, lineHeuristic(p), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	// With an exact heuristic, IDA examines each on-path state once.
	if res.Stats.Examined > p.n+1 {
		t.Fatalf("IDA with perfect heuristic examined %d states, want ≤ %d", res.Stats.Examined, p.n+1)
	}
	if res.Stats.Iterations != 1 {
		t.Fatalf("IDA iterations = %d, want 1", res.Stats.Iterations)
	}
}

func TestBlindSearchExaminesMore(t *testing.T) {
	// An open grid has real branching, so h0 (blind) must examine more
	// states than an informed heuristic — the phenomenon behind the h0
	// curves in the paper's Figs. 5–9.
	p := gridProblem{w: 6, h: 6, walls: map[[2]int]bool{}, start: [2]int{0, 0}, target: [2]int{5, 5}}
	blind := func(State) int { return 0 }
	for _, algo := range []Algorithm{IDA, RBFS} {
		resBlind, err := Run(algo, p, blind, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		resExact, err := Run(algo, p, p.manhattan(), Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if resBlind.Stats.Examined <= resExact.Stats.Examined {
			t.Fatalf("%s: blind examined %d, informed %d — heuristic should help",
				algo, resBlind.Stats.Examined, resExact.Stats.Examined)
		}
	}
}

func TestStartIsGoal(t *testing.T) {
	p := lineProblem{n: 0}
	for _, algo := range []Algorithm{IDA, RBFS, AStar, Greedy} {
		res, err := Run(algo, p, lineHeuristic(p), Limits{})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(res.Path) != 0 {
			t.Fatalf("%s: path = %v, want empty", algo, res.Path)
		}
	}
}

// TestAbortedRunsReportZeroDepth: Stats.Depth documents "the length of the
// solution path found", so a failed run reports 0 from every algorithm.
// IDAStar used to leak the in-flight probe depth into Stats.Depth on abort.
func TestAbortedRunsReportZeroDepth(t *testing.T) {
	p := lineProblem{n: 1000}
	blind := func(State) int { return 0 }
	for _, algo := range []Algorithm{IDA, RBFS, AStar, Greedy} {
		t.Run(algo.String(), func(t *testing.T) {
			_, err := Run(algo, p, blind, Limits{MaxStates: 25})
			if !errors.Is(err, ErrLimit) {
				t.Fatalf("err = %v, want ErrLimit", err)
			}
			var serr *Error
			if !errors.As(err, &serr) {
				t.Fatalf("err = %T, want *Error", err)
			}
			if serr.Stats.Depth != 0 {
				t.Fatalf("aborted %s reported Depth = %d, want 0 (no solution path was found)",
					algo, serr.Stats.Depth)
			}
		})
	}
}

// deadEndProblem has no goal at all.
type deadEndProblem struct{}

func (deadEndProblem) Start() State { return intState(0) }
func (deadEndProblem) Successors(s State) ([]Move, error) {
	if int(s.(intState)) < 3 {
		return []Move{{Label: "next", To: s.(intState) + 1, Cost: 1}}, nil
	}
	return nil, nil
}
func (deadEndProblem) IsGoal(State) bool { return false }

func TestNotFound(t *testing.T) {
	for _, algo := range []Algorithm{IDA, RBFS, AStar, Greedy} {
		_, err := Run(algo, deadEndProblem{}, func(State) int { return 0 }, Limits{})
		if !errors.Is(err, ErrNotFound) {
			t.Fatalf("%s: err = %v, want ErrNotFound", algo, err)
		}
	}
}

func TestMaxStatesLimit(t *testing.T) {
	p := lineProblem{n: 1000}
	for _, algo := range []Algorithm{IDA, RBFS, AStar, Greedy} {
		_, err := Run(algo, p, func(State) int { return 0 }, Limits{MaxStates: 50})
		if !errors.Is(err, ErrLimit) {
			t.Fatalf("%s: err = %v, want ErrLimit", algo, err)
		}
	}
}

func TestMaxDepthLimit(t *testing.T) {
	p := lineProblem{n: 10}
	for _, algo := range []Algorithm{IDA, RBFS, AStar, Greedy} {
		_, err := Run(algo, p, lineHeuristic(p), Limits{MaxDepth: 3})
		if err == nil {
			t.Fatalf("%s: depth-limited search should not reach the goal", algo)
		}
	}
}

func TestSuccessorErrorPropagates(t *testing.T) {
	p := errProblem{}
	for _, algo := range []Algorithm{IDA, RBFS, AStar, Greedy} {
		_, err := Run(algo, p, func(State) int { return 1 }, Limits{})
		if err == nil || errors.Is(err, ErrNotFound) {
			t.Fatalf("%s: err = %v, want successor error", algo, err)
		}
	}
}

type errProblem struct{}

func (errProblem) Start() State                     { return intState(0) }
func (errProblem) Successors(State) ([]Move, error) { return nil, errors.New("boom") }
func (errProblem) IsGoal(State) bool                { return false }

func TestUnknownAlgorithm(t *testing.T) {
	if _, err := Run(Algorithm(99), lineProblem{n: 1}, nil, Limits{}); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
	if got := Algorithm(99).String(); got != "Algorithm(99)" {
		t.Fatalf("String = %q", got)
	}
}

// gridProblem is a 2-D grid with walls; moves are 4-directional.
type gridProblem struct {
	w, h          int
	walls         map[[2]int]bool
	start, target [2]int
}

type gridState [2]int

func (s gridState) Key() string { return fmt.Sprintf("%d,%d", s[0], s[1]) }

func (p gridProblem) Start() State { return gridState(p.start) }
func (p gridProblem) IsGoal(s State) bool {
	return [2]int(s.(gridState)) == p.target
}
func (p gridProblem) Successors(s State) ([]Move, error) {
	pos := s.(gridState)
	dirs := []struct {
		name string
		d    [2]int
	}{{"N", [2]int{0, -1}}, {"S", [2]int{0, 1}}, {"W", [2]int{-1, 0}}, {"E", [2]int{1, 0}}}
	var out []Move
	for _, dir := range dirs {
		nx, ny := pos[0]+dir.d[0], pos[1]+dir.d[1]
		if nx < 0 || ny < 0 || nx >= p.w || ny >= p.h || p.walls[[2]int{nx, ny}] {
			continue
		}
		out = append(out, Move{Label: dir.name, To: gridState{nx, ny}, Cost: 1})
	}
	return out, nil
}

func (p gridProblem) manhattan() Heuristic {
	return func(s State) int {
		pos := s.(gridState)
		dx := pos[0] - p.target[0]
		if dx < 0 {
			dx = -dx
		}
		dy := pos[1] - p.target[1]
		if dy < 0 {
			dy = -dy
		}
		return dx + dy
	}
}

// bfsLen computes the optimal path length by breadth-first search, as the
// reference for optimality checks.
func bfsLen(p gridProblem) int {
	type qe struct {
		pos [2]int
		d   int
	}
	seen := map[[2]int]bool{p.start: true}
	queue := []qe{{p.start, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.pos == p.target {
			return cur.d
		}
		st := gridState(cur.pos)
		moves, _ := p.Successors(st)
		for _, m := range moves {
			np := [2]int(m.To.(gridState))
			if !seen[np] {
				seen[np] = true
				queue = append(queue, qe{np, cur.d + 1})
			}
		}
	}
	return -1
}

// Admissible heuristics must make IDA, RBFS, and A* return optimal paths.
func TestPropertyOptimalityOnRandomGrids(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := gridProblem{w: 6, h: 6, walls: map[[2]int]bool{}}
		for i := 0; i < 8; i++ {
			p.walls[[2]int{rng.Intn(6), rng.Intn(6)}] = true
		}
		p.start = [2]int{0, 0}
		p.target = [2]int{5, 5}
		delete(p.walls, p.start)
		delete(p.walls, p.target)
		want := bfsLen(p)
		for _, algo := range []Algorithm{IDA, RBFS, AStar} {
			res, err := Run(algo, p, p.manhattan(), Limits{})
			if want < 0 {
				if !errors.Is(err, ErrNotFound) {
					return false
				}
				continue
			}
			if err != nil || len(res.Path) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Paths returned by every algorithm must be valid move sequences from start
// to a goal state.
func TestPropertyPathValidity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := gridProblem{w: 5, h: 5, walls: map[[2]int]bool{}}
		for i := 0; i < 5; i++ {
			p.walls[[2]int{rng.Intn(5), rng.Intn(5)}] = true
		}
		p.start = [2]int{0, 0}
		p.target = [2]int{4, 4}
		delete(p.walls, p.start)
		delete(p.walls, p.target)
		if bfsLen(p) < 0 {
			return true
		}
		for _, algo := range []Algorithm{IDA, RBFS, AStar, Greedy} {
			res, err := Run(algo, p, p.manhattan(), Limits{})
			if err != nil {
				return false
			}
			cur := p.Start()
			for _, m := range res.Path {
				moves, _ := p.Successors(cur)
				ok := false
				for _, cand := range moves {
					if cand.Label == m.Label && cand.To.Key() == m.To.Key() {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
				cur = m.To
			}
			if !p.IsGoal(cur) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// RBFS should generally examine no more states than IDA on the same
// problem (the paper's overall finding); verify on a grid ensemble in
// aggregate rather than per-instance, since individual instances can go
// either way.
func TestRBFSCompetitiveWithIDA(t *testing.T) {
	var totalIDA, totalRBFS int
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := gridProblem{w: 7, h: 7, walls: map[[2]int]bool{}}
		for i := 0; i < 10; i++ {
			p.walls[[2]int{rng.Intn(7), rng.Intn(7)}] = true
		}
		p.start = [2]int{0, 0}
		p.target = [2]int{6, 6}
		delete(p.walls, p.start)
		delete(p.walls, p.target)
		if bfsLen(p) < 0 {
			continue
		}
		ri, err := IDAStar(context.Background(), p, p.manhattan(), Limits{})
		if err != nil {
			t.Fatal(err)
		}
		rr, err := RecursiveBestFirst(context.Background(), p, p.manhattan(), Limits{})
		if err != nil {
			t.Fatal(err)
		}
		totalIDA += ri.Stats.Examined
		totalRBFS += rr.Stats.Examined
	}
	if totalRBFS > totalIDA*3 {
		t.Fatalf("RBFS examined %d vs IDA %d — far worse than expected", totalRBFS, totalIDA)
	}
}

func TestAStarTracksFrontier(t *testing.T) {
	p := lineProblem{n: 5}
	res, err := AStarSearch(context.Background(), p, lineHeuristic(p), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxFrontier == 0 {
		t.Fatal("MaxFrontier not tracked")
	}
}
