package search

import (
	"context"
	"fmt"
	"testing"
)

// benchGrid is the shared workload for the examine and parallel benchmarks:
// a dense open grid with real branching, large enough that the per-state
// bookkeeping dominates rather than setup.
func benchGrid() gridProblem {
	return gridProblem{w: 64, h: 64, walls: map[[2]int]bool{}, start: [2]int{0, 0}, target: [2]int{63, 63}}
}

// BenchmarkExamine pins the Limits.Cooperative split: the solitary
// (cooperative=false) path must stay free of the every-16-states
// runtime.Gosched() yield that portfolio members and shard workers pay.
// Before the flag, single-run searches yielded unconditionally — compare the
// two sub-benchmarks to see the recovered margin.
func BenchmarkExamine(b *testing.B) {
	for _, coop := range []bool{false, true} {
		name := "solitary"
		if coop {
			name = "cooperative"
		}
		b.Run(name, func(b *testing.B) {
			p := benchGrid()
			h := p.manhattan()
			lim := Limits{Cooperative: coop}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := AStarSearch(context.Background(), p, h, lim)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(res.Stats.Examined), "states/op")
				}
			}
		})
	}
}

// BenchmarkParallelAStar sweeps the shard count on one search. On a
// single-CPU runner the multi-worker rows measure sharding overhead, not
// speedup — the numbers are still worth tracking because the overhead is the
// floor any speedup has to clear.
func BenchmarkParallelAStar(b *testing.B) {
	p := benchGrid()
	h := p.manhattan()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := ParallelAStar(context.Background(), p, h, Limits{}, workers)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(res.Stats.Examined), "states/op")
				}
			}
		})
	}
}

// BenchmarkParallelBeam sweeps the expansion pool of the level-synchronized
// beam; the result is identical for every worker count, so this isolates the
// barrier cost.
func BenchmarkParallelBeam(b *testing.B) {
	p := benchGrid()
	h := p.manhattan()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ParallelBeamSearch(context.Background(), p, h, Limits{}, 32, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
