package search

import (
	"context"
	"errors"
	"testing"
)

func TestBeamSolvesLine(t *testing.T) {
	p := lineProblem{n: 15}
	res, err := BeamSearch(context.Background(), p, lineHeuristic(p), Limits{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Path) != 15 {
		t.Fatalf("path length = %d, want 15", len(res.Path))
	}
	if res.Stats.MaxFrontier == 0 || res.Stats.MaxFrontier > 4 {
		t.Fatalf("frontier %d exceeded beam width", res.Stats.MaxFrontier)
	}
}

func TestBeamSolvesGrid(t *testing.T) {
	p := gridProblem{w: 8, h: 8, walls: map[[2]int]bool{}, start: [2]int{0, 0}, target: [2]int{7, 7}}
	res, err := BeamSearch(context.Background(), p, p.manhattan(), Limits{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Path) != 14 { // manhattan-optimal on an open grid
		t.Fatalf("path length = %d, want 14", len(res.Path))
	}
}

func TestBeamIncomplete(t *testing.T) {
	// A trap: the heuristic prefers a corridor that dead-ends; with beam
	// width 1 the true path is pruned and the search must report NotFound
	// rather than hang.
	p := gridProblem{
		w: 5, h: 3,
		// Wall layout: the straight row toward the goal is blocked late.
		walls:  map[[2]int]bool{{4, 0}: true, {3, 0}: false, {4, 1}: true},
		start:  [2]int{0, 0},
		target: [2]int{4, 2},
	}
	res, err := BeamSearch(context.Background(), p, func(s State) int {
		// Adversarial heuristic: always prefer moving right in row 0.
		pos := s.(gridState)
		return pos[1] * 100
	}, Limits{}, 1)
	if err == nil {
		// Width-1 beam may still succeed on some layouts; accept both, but
		// a returned path must be valid.
		cur := p.Start()
		for _, m := range res.Path {
			cur = m.To
		}
		if !p.IsGoal(cur) {
			t.Fatal("returned non-goal")
		}
		return
	}
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestBeamDefaultsAndLimits(t *testing.T) {
	p := lineProblem{n: 5}
	if _, err := BeamSearch(context.Background(), p, lineHeuristic(p), Limits{}, 0); err != nil {
		t.Fatalf("default width failed: %v", err)
	}
	_, err := BeamSearch(context.Background(), lineProblem{n: 1000}, func(State) int { return 0 }, Limits{MaxStates: 20}, 2)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
	if _, err := BeamSearch(context.Background(), lineProblem{n: 10}, lineHeuristic(lineProblem{n: 10}), Limits{MaxDepth: 2}, 2); err == nil {
		t.Fatal("depth-limited beam should fail")
	}
	if _, err := BeamSearch(context.Background(), errProblem{}, func(State) int { return 0 }, Limits{}, 2); err == nil {
		t.Fatal("successor errors should propagate")
	}
}

func TestWeightedAStarOptimalAtWeightOne(t *testing.T) {
	p := gridProblem{w: 6, h: 6, walls: map[[2]int]bool{{1, 1}: true, {2, 2}: true}, start: [2]int{0, 0}, target: [2]int{5, 5}}
	want := bfsLen(p)
	res, err := WeightedAStarSearch(context.Background(), p, p.manhattan(), Limits{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Path) != want {
		t.Fatalf("w=1 path length = %d, want optimal %d", len(res.Path), want)
	}
}

func TestWeightedAStarTradesOptimalityForSpeed(t *testing.T) {
	p := gridProblem{w: 12, h: 12, walls: map[[2]int]bool{}, start: [2]int{0, 0}, target: [2]int{11, 11}}
	exact, err := WeightedAStarSearch(context.Background(), p, p.manhattan(), Limits{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := WeightedAStarSearch(context.Background(), p, p.manhattan(), Limits{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Stats.Examined > exact.Stats.Examined {
		t.Fatalf("w=5 examined %d > w=1 examined %d", greedy.Stats.Examined, exact.Stats.Examined)
	}
	// On an open grid the manhattan metric keeps even weighted search
	// optimal; the guarantee is bounded suboptimality.
	if len(greedy.Path) > 5*len(exact.Path) {
		t.Fatalf("suboptimality bound violated: %d vs %d", len(greedy.Path), len(exact.Path))
	}
}

func TestWeightedAStarErrorsAndDefaults(t *testing.T) {
	p := lineProblem{n: 4}
	if _, err := WeightedAStarSearch(context.Background(), p, lineHeuristic(p), Limits{}, 0); err != nil {
		t.Fatalf("w<1 should default to 1: %v", err)
	}
	if _, err := WeightedAStarSearch(context.Background(), deadEndProblem{}, func(State) int { return 0 }, Limits{}, 2); !errors.Is(err, ErrNotFound) {
		t.Fatal("dead end should be NotFound")
	}
	if _, err := WeightedAStarSearch(context.Background(), errProblem{}, func(State) int { return 0 }, Limits{}, 2); err == nil {
		t.Fatal("successor errors should propagate")
	}
	if _, err := WeightedAStarSearch(context.Background(), lineProblem{n: 1000}, func(State) int { return 0 }, Limits{MaxStates: 10}, 2); !errors.Is(err, ErrLimit) {
		t.Fatal("budget should trip")
	}
	if _, err := WeightedAStarSearch(context.Background(), lineProblem{n: 10}, lineHeuristic(lineProblem{n: 10}), Limits{MaxDepth: 2}, 1); !errors.Is(err, ErrNotFound) {
		t.Fatal("depth limit should exhaust")
	}
}
