package faults

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCountedFaultFiresOnAfterThHit(t *testing.T) {
	in := NewInjector(1, Fault{Site: SiteOpApply, After: 3, Kind: Panic, Panic: "boom"})
	hit := func() (panicked bool) {
		defer func() { panicked = recover() != nil }()
		in.Hit(SiteOpApply, "drop[R,A]")
		return false
	}
	for i := 1; i <= 5; i++ {
		got := hit()
		if want := i == 3; got != want {
			t.Fatalf("hit %d: panicked=%v, want %v", i, got, want)
		}
	}
	if in.Hits(0) != 5 || in.Fired(0) != 1 {
		t.Fatalf("hits=%d fired=%d, want 5/1", in.Hits(0), in.Fired(0))
	}
}

func TestEveryRefires(t *testing.T) {
	in := NewInjector(1, Fault{Site: SiteHeuristicEval, After: 2, Every: 3, Kind: Panic})
	var fired []int
	for i := 1; i <= 12; i++ {
		func() {
			defer func() {
				if recover() != nil {
					fired = append(fired, i)
				}
			}()
			in.Hit(SiteHeuristicEval, "cosine/k=1000")
		}()
	}
	want := []int{2, 5, 8, 11}
	if fmt.Sprint(fired) != fmt.Sprint(want) {
		t.Fatalf("fired on hits %v, want %v", fired, want)
	}
}

func TestMatchFiltersByLabelSubstring(t *testing.T) {
	in := NewInjector(1, Fault{Site: SiteHeuristicEval, Match: "cosine", Kind: Panic})
	in.Hit(SiteHeuristicEval, "h1/k=0") // wrong label: no count
	in.Hit(SiteOpApply, "cosine-ish")   // wrong site: no count
	if in.Hits(0) != 0 {
		t.Fatalf("non-matching hits counted: %d", in.Hits(0))
	}
	panicked := func() (p bool) {
		defer func() { p = recover() != nil }()
		in.Hit(SiteHeuristicEval, "cosine/k=1000")
		return false
	}()
	if !panicked {
		t.Fatal("matching hit did not fire")
	}
}

func TestDefaultPanicValueNamesSiteAndLabel(t *testing.T) {
	in := NewInjector(1, Fault{Site: SiteOpApply, Kind: Panic})
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("no panic")
		}
		s, ok := v.(string)
		if !ok || s != "faults: injected panic at op-apply (merge[R,B])" {
			t.Fatalf("panic value %v", v)
		}
	}()
	in.Hit(SiteOpApply, "merge[R,B]")
}

func TestCancelFault(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	in := NewInjector(1, Fault{Site: SiteOpApply, After: 2, Kind: Cancel, Cancel: cancel})
	in.Hit(SiteOpApply, "x")
	if ctx.Err() != nil {
		t.Fatal("cancelled too early")
	}
	in.Hit(SiteOpApply, "x")
	if ctx.Err() == nil {
		t.Fatal("not cancelled on the After-th hit")
	}
}

func TestDelayFaultSleeps(t *testing.T) {
	in := NewInjector(1, Fault{Site: SiteOpApply, Kind: Delay, Sleep: 20 * time.Millisecond})
	start := time.Now()
	in.Hit(SiteOpApply, "x")
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("returned after %v, want >= 20ms", d)
	}
}

func TestProbabilisticDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []int64 {
		in := NewInjector(seed, Fault{Site: SiteOpApply, Prob: 0.3, Kind: Delay})
		for i := 0; i < 200; i++ {
			in.Hit(SiteOpApply, "x")
		}
		return []int64{in.Hits(0), in.Fired(0)}
	}
	a, b := run(7), run(7)
	if a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	if a[1] == 0 || a[1] == a[0] {
		t.Fatalf("prob=0.3 fired %d/%d times — not probabilistic", a[1], a[0])
	}
}

// The matching-hit count at which a counted fault fires must not depend on
// interleaving: under concurrent hits exactly one goroutine takes the
// After-th hit. Run with -race.
func TestConcurrentHitsFireExactlyOnce(t *testing.T) {
	in := NewInjector(1, Fault{Site: SiteOpApply, After: 50, Kind: Panic})
	var wg sync.WaitGroup
	var mu sync.Mutex
	panics := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				func() {
					defer func() {
						if recover() != nil {
							mu.Lock()
							panics++
							mu.Unlock()
						}
					}()
					in.Hit(SiteOpApply, "x")
				}()
			}
		}()
	}
	wg.Wait()
	if panics != 1 {
		t.Fatalf("fault fired %d times across 200 concurrent hits, want exactly 1", panics)
	}
	if in.Hits(0) != 200 {
		t.Fatalf("hits=%d, want 200", in.Hits(0))
	}
}
