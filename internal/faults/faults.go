// Package faults is a deterministic fault-injection harness for the
// discovery resilience layer. Tests arm an Injector with faults — panics,
// delays, forced cancellations — and wire it into the hot path of a
// discovery run through the test-only core.Options.FaultHook, which fires at
// two sites: heuristic evaluation and candidate-operator application. The
// resilience test suite uses it to prove, under the race detector, that a
// panic injected anywhere in a portfolio loses its race instead of killing
// the process, and that best-effort degradation survives forced aborts at
// arbitrary points.
//
// Determinism: a counted fault fires on the After-th hit matching its site
// and label filter, counted per fault. The matching-hit count at which a
// fault fires does not depend on goroutine interleaving, so a fixed search
// plus a fixed fault schedule reproduces the same injection points; which
// goroutine takes the hit may vary, which is exactly the nondeterminism the
// resilience layer must tolerate. Probabilistic faults draw from a seeded
// generator for reproducible-but-arbitrary schedules.
package faults

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// Site identifies a code location that accepts injected faults.
type Site int

const (
	// SiteHeuristicEval fires on heuristic evaluations — search-loop cache
	// misses and worker-pool pre-warms. The label is the run's cache label
	// ("cosine/k=1000"), which is unique per (heuristic, k), so a fault can
	// target a single portfolio member.
	SiteHeuristicEval Site = iota
	// SiteOpApply fires on candidate-operator applications in the successor
	// worker pool. The label is the operator's textual form.
	SiteOpApply
	// SiteRepoWrite fires inside the mapping repository's commit path, after
	// the entry's bytes have been partially written to the temp file but
	// before the atomic rename. The label is the entry's repository key. A
	// Panic fault here simulates a process crash mid-write: the torn temp
	// file is left behind for the startup recovery scan to quarantine.
	SiteRepoWrite
)

// String names the site for error messages and panic values.
func (s Site) String() string {
	switch s {
	case SiteHeuristicEval:
		return "heuristic-eval"
	case SiteOpApply:
		return "op-apply"
	case SiteRepoWrite:
		return "repo-write"
	default:
		return fmt.Sprintf("Site(%d)", int(s))
	}
}

// Kind is what happens when a fault fires.
type Kind int

const (
	// Panic panics with Fault.Panic (or a descriptive default value).
	Panic Kind = iota
	// Delay sleeps for Fault.Sleep, holding the injected goroutine inside
	// the site — used to pin a worker mid-apply while a test cancels the
	// run.
	Delay
	// Cancel calls Fault.Cancel, typically a context.CancelFunc, forcing a
	// cancellation from deep inside the search.
	Cancel
)

// Fault arms one injection. It fires on the After-th hit (1-based; 0 means
// the first) matching Site and Match, and — when Every > 0 — again every
// Every matching hits after that. When Prob is in (0, 1] the fault is
// probabilistic instead: every matching hit fires with probability Prob
// drawn from the injector's seeded generator, and After/Every are ignored.
type Fault struct {
	// Site selects the injection site.
	Site Site
	// Match filters hits by substring of the site label; empty matches all.
	Match string
	// After is the 1-based matching-hit ordinal of the first firing; 0
	// means 1.
	After int64
	// Every re-fires the fault every Every matching hits after the first
	// firing; 0 means fire once.
	Every int64
	// Kind selects the effect.
	Kind Kind
	// Panic is the panic value for Kind Panic; nil means a default naming
	// the site and label.
	Panic any
	// Sleep is the duration for Kind Delay.
	Sleep time.Duration
	// Cancel is invoked for Kind Cancel.
	Cancel context.CancelFunc
	// Prob switches the fault to seeded probabilistic firing.
	Prob float64
}

// armed is a Fault plus its firing state.
type armed struct {
	Fault
	hits  int64
	fired int64
}

// Injector evaluates armed faults on every hook hit. Safe for concurrent
// use: hits arrive from worker-pool and portfolio-member goroutines.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	faults []*armed
}

// NewInjector arms the given faults. The seed drives probabilistic faults
// only; counted faults are deterministic regardless.
func NewInjector(seed int64, faults ...Fault) *Injector {
	in := &Injector{rng: rand.New(rand.NewSource(seed))}
	for _, f := range faults {
		in.faults = append(in.faults, &armed{Fault: f})
	}
	return in
}

// Hit is the hook body: it counts the hit against every armed fault and
// executes the effects of those that are due. Wire it as the test-only
// fault hook of a discovery run. Effects run after the injector's lock is
// released, so a Delay holds only the injected goroutine and a Panic
// propagates into the site's recover handler with the injector usable by
// other goroutines throughout.
func (in *Injector) Hit(site Site, label string) {
	var due []*armed
	in.mu.Lock()
	for _, f := range in.faults {
		if f.Site != site || (f.Match != "" && !strings.Contains(label, f.Match)) {
			continue
		}
		f.hits++
		if in.shouldFire(f) {
			f.fired++
			due = append(due, f)
		}
	}
	in.mu.Unlock()
	for _, f := range due {
		switch f.Kind {
		case Delay:
			time.Sleep(f.Sleep)
		case Cancel:
			if f.Cancel != nil {
				f.Cancel()
			}
		case Panic:
			v := f.Panic
			if v == nil {
				v = fmt.Sprintf("faults: injected panic at %s (%s)", site, label)
			}
			panic(v)
		}
	}
}

// shouldFire decides whether f's current hit fires. Called with the lock
// held (the seeded generator is not concurrency-safe).
func (in *Injector) shouldFire(f *armed) bool {
	if f.Prob > 0 {
		return in.rng.Float64() < f.Prob
	}
	after := f.After
	if after <= 0 {
		after = 1
	}
	if f.hits == after {
		return true
	}
	return f.Every > 0 && f.hits > after && (f.hits-after)%f.Every == 0
}

// Hits reports how many matching hits fault i has seen.
func (in *Injector) Hits(i int) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.faults[i].hits
}

// Fired reports how many times fault i has fired.
func (in *Injector) Fired(i int) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.faults[i].fired
}
