package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunParallelSweep(t *testing.T) {
	var collected []Measurement
	rows, err := RunParallelSweep(ParallelOptions{
		Sizes:   []int{6},
		Workers: []int{1, 2},
		Repeats: 1,
	}, Config{Budget: 50000, Collect: func(m Measurement) { collected = append(collected, m) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Depth != 6 {
			t.Fatalf("matching a 6-attribute pair takes 6 renames, got depth %d (workers=%d)", r.Depth, r.Workers)
		}
		if r.Examined <= 0 || r.Duration <= 0 {
			t.Fatalf("empty measurement: %+v", r)
		}
	}
	if rows[0].Workers != 1 || rows[0].Speedup != 1.0 {
		t.Fatalf("first row must be the workers=1 baseline with speedup 1.0: %+v", rows[0])
	}
	if rows[1].Speedup <= 0 {
		t.Fatalf("speedup not computed: %+v", rows[1])
	}
	if len(collected) != 2 || collected[0].Experiment != "parallel" {
		t.Fatalf("Collect hook saw %+v", collected)
	}
	var buf bytes.Buffer
	if err := WriteParallelTable(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "speedup") {
		t.Fatalf("table header missing:\n%s", buf.String())
	}
}

func TestRunParallelSweepInsertsBaseline(t *testing.T) {
	// A sweep that omits workers=1 still gets the baseline row prepended —
	// speedup is meaningless without it.
	rows, err := RunParallelSweep(ParallelOptions{
		Sizes:   []int{4},
		Workers: []int{2},
		Repeats: 1,
	}, Config{Budget: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Workers != 1 {
		t.Fatalf("baseline row not inserted: %+v", rows)
	}
}
