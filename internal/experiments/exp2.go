package experiments

import (
	"tupelo/internal/datagen"
	"tupelo/internal/heuristic"
	"tupelo/internal/search"
)

// Exp2Options selects the grid for Experiment 2.
type Exp2Options struct {
	// Heuristics restricts the heuristics (nil = all eight, as in the
	// paper).
	Heuristics []heuristic.Kind
	// SampleEvery maps only every n-th sibling schema (default 1 = all, as
	// in the paper); larger values trade fidelity for speed.
	SampleEvery int
}

// RunExp2 reproduces Experiment 2 (§5.2, Figs. 7–8): schema matching on the
// BAMM deep-web domains. For every domain, the fixed schema is mapped to
// each sibling schema under every algorithm × heuristic combination; the
// figures report the average number of states examined.
func RunExp2(opts Exp2Options, cfg Config) ([]Measurement, error) {
	cfg = cfg.withDefaults()
	if opts.SampleEvery <= 0 {
		opts.SampleEvery = 1
	}
	kinds := opts.Heuristics
	if kinds == nil {
		kinds = heuristic.Kinds()
	}
	domains := datagen.BAMM(cfg.Seed)
	var out []Measurement
	for _, d := range domains {
		for _, algo := range BothAlgorithms() {
			for _, kind := range kinds {
				for i := 0; i < len(d.Targets); i += opts.SampleEvery {
					m, err := run("exp2", d.Name, i, algo, kind, d.Fixed, d.Targets[i], nil, nil, cfg)
					if err != nil {
						return nil, err
					}
					out = append(out, m)
				}
			}
		}
	}
	return out, nil
}

// Exp2Average is one bar of Fig. 7: the average states examined for a
// (domain, algorithm, heuristic) cell.
type Exp2Average struct {
	Domain    string
	Algorithm search.Algorithm
	Heuristic heuristic.Kind
	AvgStates float64
	Tasks     int
	Censored  int // tasks that exhausted the budget
}

// AverageByDomain aggregates exp2 measurements into Fig. 7's per-domain
// bars. Censored runs contribute the budget value, matching how saturated
// runs appear in the paper's log-scale plots.
func AverageByDomain(ms []Measurement) []Exp2Average {
	type key struct {
		domain string
		algo   search.Algorithm
		kind   heuristic.Kind
	}
	sum := make(map[key]*Exp2Average)
	var order []key
	for _, m := range ms {
		if m.Experiment != "exp2" {
			continue
		}
		k := key{m.Label, m.Algorithm, m.Heuristic}
		a, ok := sum[k]
		if !ok {
			a = &Exp2Average{Domain: m.Label, Algorithm: m.Algorithm, Heuristic: m.Heuristic}
			sum[k] = a
			order = append(order, k)
		}
		a.AvgStates += float64(m.States)
		a.Tasks++
		if m.Censored {
			a.Censored++
		}
	}
	out := make([]Exp2Average, 0, len(order))
	for _, k := range order {
		a := sum[k]
		if a.Tasks > 0 {
			a.AvgStates /= float64(a.Tasks)
		}
		out = append(out, *a)
	}
	return out
}

// AverageOverall aggregates exp2 measurements across all domains into
// Fig. 8's bars (one per algorithm × heuristic).
func AverageOverall(ms []Measurement) []Exp2Average {
	type key struct {
		algo search.Algorithm
		kind heuristic.Kind
	}
	sum := make(map[key]*Exp2Average)
	var order []key
	for _, m := range ms {
		if m.Experiment != "exp2" {
			continue
		}
		k := key{m.Algorithm, m.Heuristic}
		a, ok := sum[k]
		if !ok {
			a = &Exp2Average{Domain: "all", Algorithm: m.Algorithm, Heuristic: m.Heuristic}
			sum[k] = a
			order = append(order, k)
		}
		a.AvgStates += float64(m.States)
		a.Tasks++
		if m.Censored {
			a.Censored++
		}
	}
	out := make([]Exp2Average, 0, len(order))
	for _, k := range order {
		a := sum[k]
		if a.Tasks > 0 {
			a.AvgStates /= float64(a.Tasks)
		}
		out = append(out, *a)
	}
	return out
}
