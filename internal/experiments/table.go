package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"tupelo/internal/heuristic"
	"tupelo/internal/search"
)

// WriteSeriesTable renders exp1- or exp3-style measurements for one
// algorithm as a text table: one row per x-value (schema size or number of
// complex functions), one column per heuristic — the textual form of the
// paper's Figs. 5, 6 and 9. Censored cells print as ">=budget".
func WriteSeriesTable(w io.Writer, ms []Measurement, algo search.Algorithm) error {
	kinds, params := seriesAxes(ms, algo)
	if len(params) == 0 {
		_, err := fmt.Fprintf(w, "(no measurements for %s)\n", algo)
		return err
	}
	cell := make(map[[2]int]string)
	for _, m := range ms {
		if m.Algorithm != algo {
			continue
		}
		v := fmt.Sprintf("%d", m.States)
		if m.Censored {
			v = fmt.Sprintf(">=%d", m.States)
		}
		cell[[2]int{m.Param, int(m.Heuristic)}] = v
	}
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "n")
	for _, k := range kinds {
		fmt.Fprintf(tw, "\t%s", k)
	}
	fmt.Fprintln(tw)
	for _, p := range params {
		fmt.Fprintf(tw, "%d", p)
		for _, k := range kinds {
			v, ok := cell[[2]int{p, int(k)}]
			if !ok {
				v = "-"
			}
			fmt.Fprintf(tw, "\t%s", v)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// seriesAxes extracts the sorted heuristics and x-values present for algo.
func seriesAxes(ms []Measurement, algo search.Algorithm) ([]heuristic.Kind, []int) {
	kindSet := make(map[heuristic.Kind]bool)
	paramSet := make(map[int]bool)
	for _, m := range ms {
		if m.Algorithm != algo {
			continue
		}
		kindSet[m.Heuristic] = true
		paramSet[m.Param] = true
	}
	var kinds []heuristic.Kind
	for _, k := range heuristic.Kinds() {
		if kindSet[k] {
			kinds = append(kinds, k)
		}
	}
	var params []int
	for p := range paramSet {
		params = append(params, p)
	}
	sort.Ints(params)
	return kinds, params
}

// WriteSeriesTSV renders measurements as gnuplot-ready TSV:
// experiment, label, algorithm, heuristic, param, states, censored.
func WriteSeriesTSV(w io.Writer, ms []Measurement) error {
	if _, err := fmt.Fprintln(w, "experiment\tlabel\talgorithm\theuristic\tparam\tstates\tcensored\tpathlen"); err != nil {
		return err
	}
	for _, m := range ms {
		if _, err := fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%d\t%d\t%v\t%d\n",
			m.Experiment, m.Label, m.Algorithm, m.Heuristic, m.Param, m.States, m.Censored, m.PathLen); err != nil {
			return err
		}
	}
	return nil
}

// WriteExp2Table renders Fig. 7's per-domain averages for one algorithm:
// one row per heuristic, one column per domain.
func WriteExp2Table(w io.Writer, avgs []Exp2Average, algo search.Algorithm) error {
	domains := orderedDomains(avgs)
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "heuristic")
	for _, d := range domains {
		fmt.Fprintf(tw, "\t%s", d)
	}
	fmt.Fprintln(tw)
	for _, k := range heuristic.Kinds() {
		row := make([]string, 0, len(domains))
		found := false
		for _, d := range domains {
			v := "-"
			for _, a := range avgs {
				if a.Algorithm == algo && a.Heuristic == k && a.Domain == d {
					v = fmt.Sprintf("%.1f", a.AvgStates)
					found = true
				}
			}
			row = append(row, v)
		}
		if found {
			fmt.Fprintf(tw, "%s\t%s\n", k, strings.Join(row, "\t"))
		}
	}
	return tw.Flush()
}

func orderedDomains(avgs []Exp2Average) []string {
	seen := make(map[string]bool)
	var out []string
	for _, a := range avgs {
		if !seen[a.Domain] {
			seen[a.Domain] = true
			out = append(out, a.Domain)
		}
	}
	sort.Strings(out)
	return out
}

// WriteExp2Overall renders Fig. 8: one row per heuristic, one column per
// algorithm, averaged across all BAMM domains.
func WriteExp2Overall(w io.Writer, avgs []Exp2Average) error {
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "heuristic\tIDA\tRBFS")
	for _, k := range heuristic.Kinds() {
		var ida, rbfs string = "-", "-"
		found := false
		for _, a := range avgs {
			if a.Heuristic != k {
				continue
			}
			v := fmt.Sprintf("%.1f", a.AvgStates)
			switch a.Algorithm {
			case search.IDA:
				ida, found = v, true
			case search.RBFS:
				rbfs, found = v, true
			}
		}
		if found {
			fmt.Fprintf(tw, "%s\t%s\t%s\n", k, ida, rbfs)
		}
	}
	return tw.Flush()
}

// WriteCalibrationTable renders the scaling-constant table of §5 in the
// paper's layout: one row per algorithm, one column per scaled heuristic.
func WriteCalibrationTable(w io.Writer, results []CalibrationResult) error {
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\tNorm. Euclidean\tCosine Sim.\tLevenshtein")
	for _, algo := range BothAlgorithms() {
		fmt.Fprintf(tw, "%s", algo)
		for _, kind := range []heuristic.Kind{heuristic.EuclidNorm, heuristic.Cosine, heuristic.Levenshtein} {
			v := "-"
			for _, r := range results {
				if r.Algorithm == algo && r.Heuristic == kind {
					v = fmt.Sprintf("k = %d", r.BestK)
				}
			}
			fmt.Fprintf(tw, "\t%s", v)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}
