package experiments

import (
	"errors"
	"fmt"
	"io"
	"text/tabwriter"

	"tupelo/internal/core"
	"tupelo/internal/datagen"
	"tupelo/internal/heuristic"
	"tupelo/internal/lambda"
	"tupelo/internal/relation"
	"tupelo/internal/search"
)

// ComparisonRow is the outcome of one heuristic over the mixed comparison
// suite: total states examined and how many of the suite's tasks were
// solved within budget.
type ComparisonRow struct {
	Algorithm search.Algorithm
	Heuristic heuristic.Kind
	Total     int
	Solved    int
	Tasks     int
}

// comparisonTask bundles one suite entry.
type comparisonTask struct {
	name  string
	src   *relation.Database
	tgt   *relation.Database
	corrs []lambda.Correspondence
	reg   *lambda.Registry
}

// comparisonSuite mixes the three workload families of §5: synthetic
// matching, BAMM samples, and complex semantic mapping.
func comparisonSuite(seed int64) ([]comparisonTask, error) {
	var suite []comparisonTask
	for _, n := range []int{4, 8, 16} {
		src, tgt, err := datagen.MatchingPair(n)
		if err != nil {
			return nil, fmt.Errorf("experiments: comparison suite: %w", err)
		}
		suite = append(suite, comparisonTask{name: fmt.Sprintf("match%d", n), src: src, tgt: tgt})
	}
	for _, d := range datagen.BAMM(seed) {
		for i := 0; i < len(d.Targets); i += 20 {
			suite = append(suite, comparisonTask{
				name: fmt.Sprintf("%s%d", d.Name, i), src: d.Fixed, tgt: d.Targets[i],
			})
		}
	}
	inv := datagen.Inventory()
	for _, n := range []int{2, 4} {
		src, tgt, corrs, err := inv.Task(n)
		if err != nil {
			return nil, fmt.Errorf("experiments: comparison suite: inventory task %d: %w", n, err)
		}
		suite = append(suite, comparisonTask{
			name: fmt.Sprintf("inventory%d", n), src: src, tgt: tgt, corrs: corrs, reg: inv.Registry,
		})
	}
	return suite, nil
}

// RunHeuristicComparison evaluates the given heuristics — typically the
// paper's best (h3, cosine) against the post-paper extensions (hybrid,
// jaccard; see §7's open question) — over the mixed suite.
func RunHeuristicComparison(kinds []heuristic.Kind, cfg Config) ([]ComparisonRow, error) {
	cfg = cfg.withDefaults()
	if kinds == nil {
		kinds = []heuristic.Kind{heuristic.H3, heuristic.Cosine, heuristic.Hybrid, heuristic.Jaccard}
	}
	suite, err := comparisonSuite(cfg.Seed)
	if err != nil {
		return nil, err
	}
	var out []ComparisonRow
	for _, algo := range BothAlgorithms() {
		for _, kind := range kinds {
			row := ComparisonRow{Algorithm: algo, Heuristic: kind, Tasks: len(suite)}
			for _, task := range suite {
				res, err := core.Discover(task.src, task.tgt, core.Options{
					Algorithm:       algo,
					Heuristic:       kind,
					Registry:        task.reg,
					Correspondences: task.corrs,
					Limits:          cfg.limits(),
					Metrics:         cfg.Metrics,
				})
				switch {
				case err == nil && res.Partial:
					// Best-effort abort: count the actual effort, not solved.
					row.Total += res.Stats.Examined
				case err == nil:
					row.Total += res.Stats.Examined
					row.Solved++
				case errors.Is(err, search.ErrLimit):
					row.Total += cfg.Budget
				default:
					return nil, fmt.Errorf("experiments: comparison %s %s/%s: %w", task.name, algo, kind, err)
				}
			}
			out = append(out, row)
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "comparison %-5s %-12s total=%d solved=%d/%d\n",
					algo, kind, row.Total, row.Solved, row.Tasks)
			}
		}
	}
	return out, nil
}

// WriteComparisonTable renders the comparison rows.
func WriteComparisonTable(w io.Writer, rows []ComparisonRow) error {
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\theuristic\ttotal states\tsolved")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d/%d\n", r.Algorithm, r.Heuristic, r.Total, r.Solved, r.Tasks)
	}
	return tw.Flush()
}
