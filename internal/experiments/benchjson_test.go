package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"tupelo/internal/heuristic"
	"tupelo/internal/obs"
	"tupelo/internal/search"
)

func sampleMeasurements() []Measurement {
	return []Measurement{
		{
			Experiment: "exp1", Label: "synthetic", Param: 4,
			Algorithm: search.RBFS, Heuristic: heuristic.Cosine,
			States: 12, PathLen: 9, Duration: 3 * time.Millisecond,
		},
		{
			Experiment: "exp1", Label: "synthetic", Param: 8,
			Algorithm: search.IDA, Heuristic: heuristic.H0,
			States: 50000, Censored: true, Duration: 2 * time.Second,
		},
	}
}

func sampleRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.Histogram(obs.Name("search.goaltest.seconds", "algo", "RBFS")).Observe(time.Microsecond)
	return reg
}

func TestBenchReportRoundTrip(t *testing.T) {
	cfg := Config{Budget: 50000, Seed: 1, Workers: 2}
	r := NewBenchReport("exp1", cfg, sampleMeasurements())
	r.AttachMetrics(sampleRegistry())

	if r.Schema != BenchSchema || r.Experiment != "exp1" {
		t.Fatalf("header = %q %q", r.Schema, r.Experiment)
	}
	if r.Aggregate.Measurements != 2 || r.Aggregate.Solved != 1 || r.Aggregate.Censored != 1 {
		t.Fatalf("aggregate = %+v", r.Aggregate)
	}
	if r.Aggregate.TotalStates != 50012 {
		t.Fatalf("total states = %d", r.Aggregate.TotalStates)
	}
	if r.Aggregate.StatesPerSec <= 0 {
		t.Fatalf("states/sec = %g", r.Aggregate.StatesPerSec)
	}
	if r.Measurements[0].Algorithm != "RBFS" || r.Measurements[0].Heuristic != "cosine" {
		t.Fatalf("measurement 0 = %+v", r.Measurements[0])
	}
	if !r.Measurements[0].Solved || r.Measurements[1].Solved {
		t.Fatal("solved must be the complement of censored")
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchReport(buf.Bytes()); err != nil {
		t.Fatalf("written report fails its own validator: %v", err)
	}
	// The wire form keeps the documented field names.
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "experiment", "generated_at", "env", "config", "measurements", "aggregate", "metrics"} {
		if _, ok := raw[key]; !ok {
			t.Fatalf("report JSON missing %q: %v", key, raw)
		}
	}
}

func TestValidateBenchReportRejects(t *testing.T) {
	valid := func() *BenchReport {
		r := NewBenchReport("exp1", Config{Budget: 1}, sampleMeasurements())
		r.AttachMetrics(sampleRegistry())
		return r
	}
	cases := []struct {
		name  string
		bad   func(r *BenchReport)
		wants string
	}{
		{"wrong schema", func(r *BenchReport) { r.Schema = "v0" }, "schema"},
		{"no experiment", func(r *BenchReport) { r.Experiment = "" }, "experiment"},
		{"no timestamp", func(r *BenchReport) { r.GeneratedAt = time.Time{} }, "generated_at"},
		{"no env", func(r *BenchReport) { r.Env.GoVersion = "" }, "env"},
		{"no measurements", func(r *BenchReport) { r.Measurements = nil }, "measurements"},
		{"unnamed config", func(r *BenchReport) { r.Measurements[0].Algorithm = "" }, "algorithm"},
		{"negative states", func(r *BenchReport) { r.Measurements[0].States = -1 }, "negative"},
		{"solved and censored", func(r *BenchReport) { r.Measurements[1].Solved = true }, "disagree"},
		{"aggregate count drift", func(r *BenchReport) { r.Aggregate.Measurements = 9 }, "aggregate"},
		{"aggregate total drift", func(r *BenchReport) { r.Aggregate.TotalStates++ }, "totals"},
		{"no metrics", func(r *BenchReport) { r.Metrics = nil }, "metrics"},
		{"no histograms", func(r *BenchReport) { r.Metrics.Histograms = nil }, "histogram"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := valid()
			tc.bad(r)
			data, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			verr := ValidateBenchReport(data)
			if verr == nil {
				t.Fatal("validator accepted a corrupted report")
			}
			if !strings.Contains(verr.Error(), tc.wants) {
				t.Fatalf("error %q does not mention %q", verr, tc.wants)
			}
		})
	}
	if err := ValidateBenchReport([]byte("{")); err == nil {
		t.Fatal("validator accepted malformed JSON")
	}
}

// TestCalibrateFeedsCollect pins the Collect hook on the one experiment
// whose public return type aggregates measurements away: a calibration
// sweep must still stream per-run Measurements (the CI benchmark-smoke
// step runs -exp calibrate -bench-out).
func TestCalibrateFeedsCollect(t *testing.T) {
	var ms []Measurement
	cfg := Config{
		Budget:  2000,
		Collect: func(m Measurement) { ms = append(ms, m) },
		Metrics: obs.NewRegistry(),
	}
	_, err := RunCalibrate(CalibrateOptions{
		Ks:         []int{5},
		Heuristics: []heuristic.Kind{heuristic.Cosine},
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("calibration sweep produced no collected measurements")
	}
	for i, m := range ms {
		if m.Experiment != "calibrate" || m.Param != 5 {
			t.Fatalf("measurement %d = %+v", i, m)
		}
	}
	// The collected stream + registry must assemble into a valid report —
	// exactly what the CI smoke step asserts end-to-end.
	r := NewBenchReport("calibrate", cfg, ms)
	r.AttachMetrics(cfg.Metrics)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchReport(buf.Bytes()); err != nil {
		t.Fatalf("calibration report invalid: %v", err)
	}
}
