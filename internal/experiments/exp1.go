package experiments

import (
	"fmt"

	"tupelo/internal/datagen"
	"tupelo/internal/heuristic"
	"tupelo/internal/search"
)

// Exp1Options selects the grid of Experiment 1 (§5.1): synthetic schema
// matching on pairs of n-attribute schemas.
type Exp1Options struct {
	// Algorithm is IDA (Fig. 5) or RBFS (Fig. 6).
	Algorithm search.Algorithm
	// SetSizes are the schema sizes for the set-based heuristics
	// (the paper uses 2..32).
	SetSizes []int
	// VectorSizes are the schema sizes for the string/vector heuristics
	// (the paper uses 1..8).
	VectorSizes []int
	// BlindSizes optionally restricts h0 and h2 (which explore blindly and
	// explode combinatorially) to a smaller size range; nil means SetSizes.
	BlindSizes []int
}

// DefaultExp1Options mirrors the paper's ranges, with the blind heuristics
// capped at 10 attributes so a full run completes in CI time; beyond that
// the blind curves are censored at the budget anyway (compare the 10^6
// saturation in Fig. 5).
func DefaultExp1Options(algo search.Algorithm) Exp1Options {
	return Exp1Options{
		Algorithm:   algo,
		SetSizes:    rangeInts(2, 32, 2),
		VectorSizes: rangeInts(1, 8, 1),
		BlindSizes:  rangeInts(2, 10, 2),
	}
}

func rangeInts(lo, hi, step int) []int {
	var out []int
	for n := lo; n <= hi; n += step {
		out = append(out, n)
	}
	return out
}

// RunExp1 reproduces Fig. 5 (IDA) or Fig. 6 (RBFS): the number of states
// examined for discovering the attribute matching between two synthetic
// n-attribute schemas, for each heuristic.
func RunExp1(opts Exp1Options, cfg Config) ([]Measurement, error) {
	cfg = cfg.withDefaults()
	var out []Measurement
	for _, kind := range SetHeuristics() {
		sizes := opts.SetSizes
		if (kind == heuristic.H0 || kind == heuristic.H2) && opts.BlindSizes != nil {
			sizes = opts.BlindSizes
		}
		ms, err := exp1Series(opts.Algorithm, kind, sizes, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, ms...)
	}
	for _, kind := range VectorHeuristics() {
		ms, err := exp1Series(opts.Algorithm, kind, opts.VectorSizes, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, ms...)
	}
	return out, nil
}

func exp1Series(algo search.Algorithm, kind heuristic.Kind, sizes []int, cfg Config) ([]Measurement, error) {
	var out []Measurement
	for _, n := range sizes {
		src, tgt, err := datagen.MatchingPair(n)
		if err != nil {
			return nil, fmt.Errorf("experiments: exp1 size %d: %w", n, err)
		}
		m, err := run("exp1", "synthetic", n, algo, kind, src, tgt, nil, nil, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
		if m.Censored {
			// The curve has saturated the budget; larger sizes only waste
			// time (the paper's plots saturate at 10^6 the same way).
			break
		}
	}
	return out, nil
}
