package experiments

import (
	"errors"
	"fmt"
	"time"

	"tupelo/internal/core"
	"tupelo/internal/datagen"
	"tupelo/internal/heuristic"
	"tupelo/internal/relation"
	"tupelo/internal/search"
)

// CalibrationResult is one row of the paper's scaling-constant table
// (§5, "Experimental Setup"): the k that minimizes total states examined
// over the calibration suite for one (algorithm, heuristic) pair.
type CalibrationResult struct {
	Algorithm search.Algorithm
	Heuristic heuristic.Kind
	BestK     int
	// States maps each candidate k to the total states examined across the
	// calibration suite (censored runs count the budget).
	States map[int]int
}

// CalibrateOptions configures the sweep.
type CalibrateOptions struct {
	// Ks are the candidate scaling constants (default 1..30, covering the
	// paper's published optima 5..24).
	Ks []int
	// Heuristics are the scaled heuristics to calibrate (default all
	// three: normalized Euclidean, cosine, Levenshtein).
	Heuristics []heuristic.Kind
}

// calibrationTask is one (source, target) pair of the calibration suite.
type calibrationTask struct {
	src, tgt *relation.Database
}

// calibrationSuite mixes synthetic matching pairs with BAMM samples, the
// workload families behind the paper's reported constants.
func calibrationSuite(seed int64) ([]calibrationTask, error) {
	var suite []calibrationTask
	for _, n := range []int{2, 4, 6} {
		src, tgt, err := datagen.MatchingPair(n)
		if err != nil {
			return nil, fmt.Errorf("experiments: calibration suite: %w", err)
		}
		suite = append(suite, calibrationTask{src, tgt})
	}
	for _, d := range datagen.BAMM(seed) {
		for i := 0; i < len(d.Targets) && i < 3; i++ {
			suite = append(suite, calibrationTask{d.Fixed, d.Targets[i]})
		}
	}
	return suite, nil
}

// RunCalibrate re-derives the paper's scaling constants: for each scaled
// heuristic and each algorithm, sweep k over the candidates and total the
// states examined across the calibration suite.
func RunCalibrate(opts CalibrateOptions, cfg Config) ([]CalibrationResult, error) {
	cfg = cfg.withDefaults()
	if opts.Ks == nil {
		for k := 1; k <= 30; k++ {
			opts.Ks = append(opts.Ks, k)
		}
	}
	if opts.Heuristics == nil {
		opts.Heuristics = []heuristic.Kind{heuristic.EuclidNorm, heuristic.Cosine, heuristic.Levenshtein}
	}
	suite, err := calibrationSuite(cfg.Seed)
	if err != nil {
		return nil, err
	}
	var out []CalibrationResult
	for _, algo := range BothAlgorithms() {
		for _, kind := range opts.Heuristics {
			r := CalibrationResult{Algorithm: algo, Heuristic: kind, States: make(map[int]int)}
			bestStates := -1
			for _, k := range opts.Ks {
				total := 0
				for _, task := range suite {
					states, err := calibrateOne(algo, kind, float64(k), task, cfg)
					if err != nil {
						return nil, err
					}
					total += states
				}
				r.States[k] = total
				if bestStates < 0 || total < bestStates {
					r.BestK, bestStates = k, total
				}
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// calibrateOne runs one discovery with an explicit k and returns the states
// examined (the budget when censored). Each run also feeds Config.Collect
// as a Measurement with Param = k, so a calibration sweep produces a
// machine-readable record even though RunCalibrate's return type only
// carries the per-k totals.
func calibrateOne(algo search.Algorithm, kind heuristic.Kind, k float64, task calibrationTask, cfg Config) (int, error) {
	m := Measurement{
		Experiment: "calibrate",
		Label:      "calibration",
		Param:      int(k),
		Algorithm:  algo,
		Heuristic:  kind,
	}
	opts := core.Options{
		Algorithm: algo,
		Heuristic: kind,
		K:         k,
		Limits:    cfg.limits(),
		Metrics:   cfg.Metrics,
	}
	start := time.Now()
	res, err := core.Discover(task.src, task.tgt, opts)
	m.Duration = time.Since(start)
	switch {
	case err == nil && res.Partial:
		m.States = res.Stats.Examined
		m.Censored = true
		m.PathLen = len(res.Expr)
	case err == nil:
		m.States = res.Stats.Examined
		m.PathLen = len(res.Expr)
		if qs, qerr := core.HeuristicProfile(res, task.src, task.tgt, opts, kind); qerr == nil && len(qs) == 1 {
			m.HAccuracy = qs[0].Accuracy
		}
	case errors.Is(err, search.ErrLimit):
		m.States = cfg.Budget
		m.Censored = true
	default:
		return 0, err
	}
	if cfg.Collect != nil {
		cfg.Collect(m)
	}
	return m.States, nil
}
