package experiments

import (
	"fmt"

	"tupelo/internal/datagen"
	"tupelo/internal/heuristic"
)

// Exp3Options selects the grid for Experiment 3 (§5.3, Fig. 9): complex
// semantic mapping discovery with an increasing number of complex
// functions.
type Exp3Options struct {
	// Domain is "Inventory" or "RealEstateII". The paper reports that both
	// behave essentially the same and plots Inventory.
	Domain string
	// MaxFunctions is the largest number of complex functions (the paper
	// plots 1..8).
	MaxFunctions int
	// Heuristics restricts the heuristics (nil = all eight).
	Heuristics []heuristic.Kind
}

// DefaultExp3Options mirrors Fig. 9's grid for the Inventory domain.
func DefaultExp3Options() Exp3Options {
	return Exp3Options{Domain: "Inventory", MaxFunctions: 8}
}

// RunExp3 reproduces Fig. 9: states examined for complex semantic mapping
// discovery as the number of complex functions grows from 1 to
// MaxFunctions, for both algorithms and each heuristic.
func RunExp3(opts Exp3Options, cfg Config) ([]Measurement, error) {
	cfg = cfg.withDefaults()
	var dom *datagen.ComplexDomain
	switch opts.Domain {
	case "", "Inventory":
		dom = datagen.Inventory()
	case "RealEstateII":
		dom = datagen.RealEstateII()
	default:
		return nil, fmt.Errorf("experiments: unknown complex domain %q", opts.Domain)
	}
	if opts.MaxFunctions <= 0 {
		opts.MaxFunctions = 8
	}
	if opts.MaxFunctions > len(dom.Corrs) {
		opts.MaxFunctions = len(dom.Corrs)
	}
	kinds := opts.Heuristics
	if kinds == nil {
		kinds = heuristic.Kinds()
	}
	var out []Measurement
	for _, algo := range BothAlgorithms() {
		for _, kind := range kinds {
			censored := false
			for n := 1; n <= opts.MaxFunctions; n++ {
				if censored {
					break // the series has saturated the budget
				}
				src, tgt, corrs, err := dom.Task(n)
				if err != nil {
					return nil, err
				}
				m, err := run("exp3", dom.Name, n, algo, kind, src, tgt, corrs, dom.Registry, cfg)
				if err != nil {
					return nil, err
				}
				out = append(out, m)
				censored = m.Censored
			}
		}
	}
	return out, nil
}
