// Package experiments reproduces the evaluation of "Data Mapping as Search"
// (EDBT 2006, §5): Experiment 1 (schema matching on synthetic data, Figs.
// 5–6), Experiment 2 (schema matching on BAMM deep-web schemas, Figs. 7–8),
// Experiment 3 (complex semantic mapping, Fig. 9), and the scaling-constant
// calibration of the experimental setup. The performance measure throughout
// is the number of states examined during search, exactly as in the paper.
package experiments

import (
	"errors"
	"fmt"
	"io"
	"time"

	"tupelo/internal/core"
	"tupelo/internal/heuristic"
	"tupelo/internal/lambda"
	"tupelo/internal/obs"
	"tupelo/internal/relation"
	"tupelo/internal/search"
)

// Measurement is one experimental run: a (task, algorithm, heuristic)
// triple and its outcome.
type Measurement struct {
	// Experiment is the experiment identifier ("exp1", "exp2", "exp3",
	// "calibrate").
	Experiment string
	// Label qualifies the task (domain name, workload family).
	Label string
	// Param is the x-axis value: schema size (exp1), target index (exp2),
	// number of complex functions (exp3), or k (calibrate).
	Param int
	// Algorithm and Heuristic identify the configuration.
	Algorithm search.Algorithm
	Heuristic heuristic.Kind
	// States is the number of states examined. When the run exhausted its
	// budget, States is the budget and Censored is true (matching how the
	// paper's log-scale plots saturate).
	States   int
	Censored bool
	// PathLen is the discovered expression length (0 when censored).
	PathLen int
	// Duration is wall-clock time, reported as secondary information only.
	Duration time.Duration
	// HAccuracy is the run heuristic's quality score ∈ [0,1] measured along
	// the found solution path (obs.HeuristicQuality.Accuracy): how well the
	// heuristic's estimates track the true remaining cost, scale-invariant.
	// 0 for censored runs and for heuristics with no signal (h0 by
	// construction scores exactly 0).
	HAccuracy float64
}

// Config configures an experiment run.
type Config struct {
	// Budget is the per-run state budget (default 50,000).
	Budget int
	// Seed drives the deterministic workload generators.
	Seed int64
	// Workers sizes the successor-generation worker pool of every run
	// (0 = GOMAXPROCS, 1 = sequential). States-examined results are
	// identical for any value; only wall-clock durations change.
	Workers int
	// Progress, when non-nil, receives one line per completed measurement.
	Progress io.Writer
	// Metrics, when non-nil, aggregates observability counters (states
	// examined per algorithm, cache hit rates, operator proposal counts)
	// across every run of the experiment. The registry is race-safe, so one
	// registry may span all experiments of a bench invocation.
	Metrics *obs.Registry
	// Collect, when non-nil, receives every completed Measurement —
	// including those of experiments whose return type aggregates them away
	// (calibration sweeps) — so callers can assemble machine-readable
	// reports (tupelo-bench -bench-out) without changing each experiment's
	// signature.
	Collect func(Measurement)
	// MaxHeapBytes adds a per-run heap budget (search.Limits.MaxHeapBytes);
	// 0 means none. Runs aborted by it count as censored, like state-budget
	// aborts.
	MaxHeapBytes uint64
	// BestEffort enables best-effort degradation: a budget- or
	// deadline-aborted run reports the states it actually examined (still
	// censored) instead of failing, and the partial path length it reached.
	BestEffort bool
	// Retries is the portfolio experiment's member-restart budget
	// (PortfolioOptions.MaxRetries); ignored by the single-config
	// experiments.
	Retries int
}

func (c Config) withDefaults() Config {
	if c.Budget <= 0 {
		c.Budget = 50000
	}
	return c
}

// limits builds the per-run search limits the configuration implies. Every
// experiment runner uses it so -max-mem and -best-effort apply uniformly.
func (c Config) limits() search.Limits {
	return search.Limits{
		MaxStates:    c.Budget,
		MaxHeapBytes: c.MaxHeapBytes,
		BestEffort:   c.BestEffort,
	}
}

// run performs one discovery and records the outcome.
func run(exp, label string, param int, algo search.Algorithm, kind heuristic.Kind,
	src, tgt *relation.Database, corrs []lambda.Correspondence, reg *lambda.Registry,
	cfg Config) (Measurement, error) {

	m := Measurement{
		Experiment: exp,
		Label:      label,
		Param:      param,
		Algorithm:  algo,
		Heuristic:  kind,
	}
	opts := core.Options{
		Algorithm:       algo,
		Heuristic:       kind,
		Registry:        reg,
		Correspondences: corrs,
		Limits:          cfg.limits(),
		Workers:         cfg.Workers,
		Metrics:         cfg.Metrics,
	}
	start := time.Now()
	res, err := core.Discover(src, tgt, opts)
	m.Duration = time.Since(start)
	switch {
	case err == nil && res.Partial:
		// Best-effort degradation: the run was aborted but reports its
		// actual effort and the partial path it reached. Still censored —
		// the mapping is incomplete — but the states axis stays honest
		// instead of saturating at the budget.
		m.States = res.Stats.Examined
		m.Censored = true
		m.PathLen = len(res.Expr)
	case err == nil:
		m.States = res.Stats.Examined
		m.PathLen = len(res.Expr)
		// Profile the run's own heuristic along the solution path it found.
		// The replay is one estimator over PathLen+1 states — noise next to
		// the search itself — and gives every bench measurement a quality
		// score the analyzer can rank kinds by.
		if qs, qerr := core.HeuristicProfile(res, src, tgt, opts, kind); qerr == nil && len(qs) == 1 {
			m.HAccuracy = qs[0].Accuracy
		}
	case errors.Is(err, search.ErrLimit):
		m.States = cfg.Budget
		m.Censored = true
	default:
		return m, fmt.Errorf("experiments: %s %s/%s param=%d: %w", exp, algo, kind, param, err)
	}
	if cfg.Progress != nil {
		status := fmt.Sprintf("states=%d", m.States)
		if m.Censored {
			status = fmt.Sprintf("censored@%d", m.States)
		}
		fmt.Fprintf(cfg.Progress, "%s %-10s %-5s %-12s param=%-3d %s (%s)\n",
			exp, label, algo, kind, param, status, m.Duration.Round(time.Millisecond))
	}
	if cfg.Collect != nil {
		cfg.Collect(m)
	}
	return m, nil
}

// SetHeuristics are the four set-based heuristics the paper plots on the
// full n=2..32 range of Experiment 1.
func SetHeuristics() []heuristic.Kind {
	return []heuristic.Kind{heuristic.H0, heuristic.H1, heuristic.H2, heuristic.H3}
}

// VectorHeuristics are the string/vector heuristics the paper plots on the
// reduced n=1..8 range of Experiment 1.
func VectorHeuristics() []heuristic.Kind {
	return []heuristic.Kind{heuristic.Euclid, heuristic.EuclidNorm, heuristic.Cosine, heuristic.Levenshtein}
}

// BothAlgorithms returns the paper's two search algorithms.
func BothAlgorithms() []search.Algorithm {
	return []search.Algorithm{search.IDA, search.RBFS}
}
