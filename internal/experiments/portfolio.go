package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"tupelo/internal/core"
	"tupelo/internal/datagen"
	"tupelo/internal/relation"
	"tupelo/internal/search"
)

// PortfolioRow compares the portfolio engine against the best sequential
// configuration on one Experiment 2 mapping task.
type PortfolioRow struct {
	// Domain and Target identify the BAMM task.
	Domain string
	Target int
	// SeqStates and SeqTime are the sequential run of the paper's best
	// configuration (RBFS/cosine).
	SeqStates int
	SeqTime   time.Duration
	// Winner is the portfolio member that won the race.
	Winner core.PortfolioConfig
	// PortStates and PortTime are the winner's states examined and the
	// whole race's wall-clock time.
	PortStates int
	PortTime   time.Duration
	// SameMapping reports whether applying the portfolio's mapping to the
	// source yields the same database as the sequential mapping.
	SameMapping bool
}

// PortfolioOptions selects the grid for the portfolio comparison.
type PortfolioOptions struct {
	// Configs are the portfolio members (nil = core.DefaultPortfolio()).
	Configs []core.PortfolioConfig
	// SampleEvery maps only every n-th sibling schema (default 2, a
	// representative subset: the portfolio comparison is about wall-clock
	// time, not figures from the paper).
	SampleEvery int
}

// RunPortfolio races the portfolio against the paper's best sequential
// configuration (RBFS/cosine) on BAMM Experiment 2 tasks, reporting per
// task whether the verified mappings agree and how the wall-clock times
// compare.
func RunPortfolio(opts PortfolioOptions, cfg Config) ([]PortfolioRow, error) {
	cfg = cfg.withDefaults()
	if opts.SampleEvery <= 0 {
		opts.SampleEvery = 2
	}
	var out []PortfolioRow
	for _, d := range datagen.BAMM(cfg.Seed) {
		for i := 0; i < len(d.Targets); i += opts.SampleEvery {
			row, err := portfolioTask(d.Name, i, d.Fixed, d.Targets[i], opts, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, row)
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "portfolio %-10s target=%-3d seq=%-8s race=%-8s winner=%s same=%v\n",
					row.Domain, row.Target, row.SeqTime.Round(time.Microsecond),
					row.PortTime.Round(time.Microsecond), row.Winner, row.SameMapping)
			}
		}
	}
	return out, nil
}

func portfolioTask(domain string, target int, src, tgt *relation.Database, opts PortfolioOptions, cfg Config) (PortfolioRow, error) {
	row := PortfolioRow{Domain: domain, Target: target}
	base := core.Options{
		Limits:  cfg.limits(),
		Workers: cfg.Workers,
		Metrics: cfg.Metrics,
	}

	seqOpts := base
	seqOpts.Algorithm = search.RBFS
	// Heuristic zero value resolves to cosine: the paper's best sequential
	// configuration.
	start := time.Now()
	seq, err := core.Discover(src, tgt, seqOpts)
	row.SeqTime = time.Since(start)
	if err != nil {
		return row, fmt.Errorf("experiments: portfolio %s/%d sequential: %w", domain, target, err)
	}
	row.SeqStates = seq.Stats.Examined

	start = time.Now()
	port, err := core.DiscoverPortfolio(context.Background(), src, tgt, core.PortfolioOptions{
		Configs:    opts.Configs,
		Options:    base,
		MaxRetries: cfg.Retries,
	})
	row.PortTime = time.Since(start)
	if err != nil {
		return row, fmt.Errorf("experiments: portfolio %s/%d race: %w", domain, target, err)
	}
	row.Winner = port.Winner
	row.PortStates = port.Stats.Examined

	a, err := seq.Apply(src, core.Options{})
	if err != nil {
		return row, err
	}
	b, err := port.Apply(src, core.Options{})
	if err != nil {
		return row, err
	}
	row.SameMapping = a.Fingerprint() == b.Fingerprint()
	return row, nil
}

// WritePortfolioTable renders the portfolio comparison.
func WritePortfolioTable(w io.Writer, rows []PortfolioRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "domain\ttarget\tseq states\tseq time\trace time\twinner\tsame mapping")
	var same, total int
	var seqSum, portSum time.Duration
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%s\t%s\t%v\n",
			r.Domain, r.Target, r.SeqStates,
			r.SeqTime.Round(time.Microsecond), r.PortTime.Round(time.Microsecond),
			r.Winner, r.SameMapping)
		total++
		if r.SameMapping {
			same++
		}
		seqSum += r.SeqTime
		portSum += r.PortTime
	}
	fmt.Fprintf(tw, "total\t%d\t\t%s\t%s\t\t%d/%d same\n",
		total, seqSum.Round(time.Microsecond), portSum.Round(time.Microsecond), same, total)
	return tw.Flush()
}
