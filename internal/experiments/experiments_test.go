package experiments

import (
	"bytes"
	"strings"
	"testing"

	"tupelo/internal/heuristic"
	"tupelo/internal/search"
)

func TestRunExp1SmallGrid(t *testing.T) {
	opts := Exp1Options{
		Algorithm:   search.RBFS,
		SetSizes:    []int{2, 4},
		VectorSizes: []int{1, 2},
		BlindSizes:  []int{2},
	}
	ms, err := RunExp1(opts, Config{Budget: 20000})
	if err != nil {
		t.Fatal(err)
	}
	// h1, h3: 2 sizes; h0, h2: 1 size; vector heuristics: 2 sizes each.
	want := 2*2 + 2*1 + 4*2
	if len(ms) != want {
		t.Fatalf("got %d measurements, want %d", len(ms), want)
	}
	for _, m := range ms {
		if m.Experiment != "exp1" || m.Algorithm != search.RBFS {
			t.Fatalf("mislabelled measurement: %+v", m)
		}
		if !m.Censored && m.PathLen != m.Param {
			t.Fatalf("matching %d attributes took %d steps: %+v", m.Param, m.PathLen, m)
		}
	}
}

func TestExp1HeuristicsBeatBlind(t *testing.T) {
	opts := Exp1Options{
		Algorithm:   search.IDA,
		SetSizes:    []int{4},
		VectorSizes: nil,
		BlindSizes:  []int{4},
	}
	ms, err := RunExp1(opts, Config{Budget: 200000})
	if err != nil {
		t.Fatal(err)
	}
	states := make(map[heuristic.Kind]int)
	for _, m := range ms {
		states[m.Heuristic] = m.States
	}
	// The paper's headline finding (Fig. 5): h1 collapses the search.
	if states[heuristic.H1] >= states[heuristic.H0] {
		t.Fatalf("h1 (%d) should examine fewer states than h0 (%d)", states[heuristic.H1], states[heuristic.H0])
	}
	// h2 cannot see renames (no cross-role tokens here): identical to h0.
	if states[heuristic.H2] != states[heuristic.H0] {
		t.Fatalf("h2 (%d) should match h0 (%d) on synthetic matching (§5.1)", states[heuristic.H2], states[heuristic.H0])
	}
	// h3 = max(h1, h2) behaves like h1 here.
	if states[heuristic.H3] != states[heuristic.H1] {
		t.Fatalf("h3 (%d) should match h1 (%d) on synthetic matching (§5.1)", states[heuristic.H3], states[heuristic.H1])
	}
}

func TestRunExp2Sampled(t *testing.T) {
	// Full exp2 is ~3300 runs; test the plumbing on a sampled version
	// (every 6th sibling, three representative heuristics).
	opts := Exp2Options{
		Heuristics:  []heuristic.Kind{heuristic.H0, heuristic.H1, heuristic.Cosine},
		SampleEvery: 6,
	}
	ms, err := RunExp2(opts, Config{Budget: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no measurements")
	}
	byDomain := AverageByDomain(ms)
	if len(byDomain) != 4*2*3 {
		t.Fatalf("per-domain aggregate has %d cells, want %d", len(byDomain), 4*2*3)
	}
	overall := AverageOverall(ms)
	if len(overall) != 2*3 {
		t.Fatalf("overall aggregate has %d cells, want %d", len(overall), 2*3)
	}
	// Task counts per cell: ceil(siblings / 6).
	wantTasks := map[string]int{"Books": 9, "Auto": 9, "Music": 8, "Movies": 9}
	for _, a := range byDomain {
		if a.Tasks != wantTasks[a.Domain] {
			t.Fatalf("%s cell has %d tasks, want %d", a.Domain, a.Tasks, wantTasks[a.Domain])
		}
		if a.AvgStates <= 0 {
			t.Fatalf("non-positive average: %+v", a)
		}
	}
	// Shape check (Fig. 8): informed heuristics beat blind search on
	// average, per algorithm.
	h0 := map[search.Algorithm]float64{}
	h1 := map[search.Algorithm]float64{}
	cos := map[search.Algorithm]float64{}
	for _, a := range overall {
		switch a.Heuristic {
		case heuristic.H0:
			h0[a.Algorithm] = a.AvgStates
		case heuristic.H1:
			h1[a.Algorithm] = a.AvgStates
		case heuristic.Cosine:
			cos[a.Algorithm] = a.AvgStates
		}
	}
	for _, algo := range BothAlgorithms() {
		if h1[algo] >= h0[algo] {
			t.Fatalf("%s: h1 average %.1f should beat h0 %.1f", algo, h1[algo], h0[algo])
		}
		if cos[algo] >= h0[algo] {
			t.Fatalf("%s: cosine average %.1f should beat h0 %.1f", algo, cos[algo], h0[algo])
		}
	}
}

func TestRunExp3SmallGrid(t *testing.T) {
	opts := Exp3Options{
		Domain:       "Inventory",
		MaxFunctions: 2,
		Heuristics:   []heuristic.Kind{heuristic.H1, heuristic.Cosine},
	}
	ms, err := RunExp3(opts, Config{Budget: 20000})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Experiment != "exp3" || m.Label != "Inventory" {
			t.Fatalf("mislabelled: %+v", m)
		}
		if m.Heuristic == heuristic.H1 && !m.Censored && m.PathLen != m.Param {
			t.Fatalf("n=%d complex functions needed %d steps", m.Param, m.PathLen)
		}
	}
}

func TestRunExp3RealEstate(t *testing.T) {
	opts := Exp3Options{
		Domain:       "RealEstateII",
		MaxFunctions: 2,
		Heuristics:   []heuristic.Kind{heuristic.H3},
	}
	ms, err := RunExp3(opts, Config{Budget: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 { // 2 algorithms × 2 sizes
		t.Fatalf("got %d measurements, want 4", len(ms))
	}
}

func TestRunExp3UnknownDomain(t *testing.T) {
	if _, err := RunExp3(Exp3Options{Domain: "nope"}, Config{}); err == nil {
		t.Fatal("unknown domain should fail")
	}
}

func TestRunCalibrateSmall(t *testing.T) {
	opts := CalibrateOptions{
		Ks:         []int{1, 5, 24},
		Heuristics: []heuristic.Kind{heuristic.Cosine},
	}
	rs, err := RunCalibrate(opts, Config{Budget: 20000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 { // IDA + RBFS
		t.Fatalf("got %d results, want 2", len(rs))
	}
	for _, r := range rs {
		if len(r.States) != 3 {
			t.Fatalf("swept %d ks, want 3", len(r.States))
		}
		if r.BestK != 1 && r.BestK != 5 && r.BestK != 24 {
			t.Fatalf("best k %d not among candidates", r.BestK)
		}
		// Best must have the minimum total.
		for _, total := range r.States {
			if total < r.States[r.BestK] {
				t.Fatalf("BestK %d is not minimal: %+v", r.BestK, r.States)
			}
		}
	}
}

func TestTables(t *testing.T) {
	opts := Exp1Options{
		Algorithm:   search.RBFS,
		SetSizes:    []int{2},
		VectorSizes: []int{2},
		BlindSizes:  []int{2},
	}
	ms, err := RunExp1(opts, Config{Budget: 20000})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSeriesTable(&buf, ms, search.RBFS); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "h1") || !strings.Contains(buf.String(), "cosine") {
		t.Fatalf("series table missing columns:\n%s", buf.String())
	}
	buf.Reset()
	if err := WriteSeriesTable(&buf, ms, search.IDA); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no measurements") {
		t.Fatalf("empty algo should say so:\n%s", buf.String())
	}
	buf.Reset()
	if err := WriteSeriesTSV(&buf, ms); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(ms)+1 {
		t.Fatalf("TSV has %d lines, want %d", len(lines), len(ms)+1)
	}
}

func TestCalibrationTable(t *testing.T) {
	rs := []CalibrationResult{
		{Algorithm: search.IDA, Heuristic: heuristic.Cosine, BestK: 5},
		{Algorithm: search.RBFS, Heuristic: heuristic.Cosine, BestK: 24},
	}
	var buf bytes.Buffer
	if err := WriteCalibrationTable(&buf, rs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "IDA") || !strings.Contains(out, "k = 5") || !strings.Contains(out, "k = 24") {
		t.Fatalf("calibration table:\n%s", out)
	}
}
