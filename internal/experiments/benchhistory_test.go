package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// historySummary builds a valid summary line with the given throughput and
// config knobs.
func historySummary(exp string, budget int, sps float64, day int) BenchSummary {
	return BenchSummary{
		Schema:      BenchSchema,
		Experiment:  exp,
		GeneratedAt: time.Date(2026, 8, day, 12, 0, 0, 0, time.UTC),
		Env:         BenchEnv{GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 1},
		Config:      BenchConfig{Budget: budget, Seed: 2006},
		Aggregate: BenchAggregate{
			Measurements: 10, Solved: 9, Censored: 1,
			TotalStates: 1000, TotalElapsedNS: 1e9, StatesPerSec: sps,
		},
	}
}

// TestHistoryAppendParseRoundTrip: AppendHistory lines must parse back
// identically, and appends must accumulate.
func TestHistoryAppendParseRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	want := []BenchSummary{
		historySummary("1", 50000, 1000, 1),
		historySummary("1", 50000, 2000, 2),
		historySummary("2", 50000, 3000, 3),
	}
	for _, s := range want {
		if err := AppendHistory(path, s); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseHistory(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestHistoryAppendRejectsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	bad := historySummary("1", 50000, 1000, 1)
	bad.Schema = "wrong/v0"
	if err := AppendHistory(path, bad); err == nil {
		t.Fatal("AppendHistory accepted a summary with the wrong schema")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("rejected append still created the history file")
	}
}

func TestHistoryParseRejectsMalformedLine(t *testing.T) {
	if _, err := ParseHistory([]byte("{not json\n")); err == nil {
		t.Fatal("ParseHistory accepted malformed JSONL")
	}
	valid := filepath.Join(t.TempDir(), "hist.jsonl")
	if err := AppendHistory(valid, historySummary("1", 50000, 1000, 1)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(valid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseHistory(append(data, []byte(`{"schema":"tupelo-bench/v1"}`+"\n")...)); err == nil {
		t.Fatal("ParseHistory accepted an incomplete trailing line")
	}
}

// TestRegressionReportVerdicts covers the three verdicts: no comparable
// prior, improvement, and regression — and that non-comparable configs
// (different budget) never match.
func TestRegressionReportVerdicts(t *testing.T) {
	hist := []BenchSummary{
		historySummary("1", 50000, 1000, 1),
		historySummary("1", 50000, 3000, 2),
		historySummary("1", 10000, 9999, 3), // different budget: not comparable
		historySummary("2", 50000, 8888, 4), // different experiment: not comparable
		historySummary("1", 50000, 7777, 5), // cur's own line: not prior
		historySummary("1", 50000, 6666, 6), // later than cur: not prior
	}

	cur := historySummary("1", 50000, 1500, 5)
	if best := BestPrior(hist, cur); best == nil || best.Aggregate.StatesPerSec != 3000 {
		t.Fatalf("BestPrior = %+v, want the 3000 entry", best)
	}
	if rep := RegressionReport(cur, hist); !strings.Contains(rep, "REGRESSION") || !strings.Contains(rep, "50.0%") {
		t.Fatalf("regression verdict = %q", rep)
	}

	cur.Aggregate.StatesPerSec = 4500
	if rep := RegressionReport(cur, hist); !strings.Contains(rep, "ok:") || !strings.Contains(rep, "50.0%") {
		t.Fatalf("improvement verdict = %q", rep)
	}

	cur.Config.Budget = 77777
	if rep := RegressionReport(cur, hist); !strings.Contains(rep, "no prior entry comparable") {
		t.Fatalf("no-prior verdict = %q", rep)
	}
}

// TestCommittedHistoryParses pins the repo's own BENCH_history.jsonl to the
// parser: the committed trajectory must stay loadable.
func TestCommittedHistoryParses(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_history.jsonl"))
	if err != nil {
		t.Skipf("no committed history: %v", err)
	}
	hist, err := ParseHistory(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) == 0 {
		t.Fatal("committed history is empty")
	}
	for i, s := range hist {
		if s.Experiment == "" {
			t.Fatalf("entry %d missing experiment", i)
		}
	}
}
