package experiments

import (
	"bytes"
	"strings"
	"testing"

	"tupelo/internal/heuristic"
)

func TestRunHeuristicComparison(t *testing.T) {
	rows, err := RunHeuristicComparison(
		[]heuristic.Kind{heuristic.H3, heuristic.Hybrid},
		Config{Budget: 20000, Seed: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 algorithms × 2 heuristics
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Tasks == 0 || r.Total <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
		if r.Solved > r.Tasks {
			t.Fatalf("solved > tasks: %+v", r)
		}
		// h3 and hybrid both solve the whole suite within budget.
		if r.Solved != r.Tasks {
			t.Fatalf("%s/%s solved only %d/%d", r.Algorithm, r.Heuristic, r.Solved, r.Tasks)
		}
	}
	var buf bytes.Buffer
	if err := WriteComparisonTable(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hybrid") {
		t.Fatalf("table missing hybrid row:\n%s", buf.String())
	}
}

func TestRunHeuristicComparisonDefaults(t *testing.T) {
	rows, err := RunHeuristicComparison(nil, Config{Budget: 3000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 2 algorithms × 4 default heuristics
		t.Fatalf("got %d rows, want 8", len(rows))
	}
}
