package experiments

import (
	"bytes"
	"strings"
	"testing"

	"tupelo/internal/datagen"
)

func TestFlightsScaledShape(t *testing.T) {
	src, tgt := datagen.MustFlightsScaled(3, 2)
	s, _ := src.Relation("Prices")
	g, _ := tgt.Relation("Flights")
	if s.Len() != 6 || s.Arity() != 4 {
		t.Fatalf("source is %d×%d, want 6×4", s.Len(), s.Arity())
	}
	if g.Len() != 2 || g.Arity() != 5 { // Carrier, Fee, 3 routes
		t.Fatalf("target is %d×%d, want 2×5", g.Len(), g.Arity())
	}
	// The 2×2 instance is exactly Fig. 1 modulo names.
	src2, tgt2 := datagen.MustFlightsScaled(2, 2)
	if src2.Size() != 16 || tgt2.Size() != 8 {
		t.Fatalf("2×2 sizes: %d, %d", src2.Size(), tgt2.Size())
	}
}

func TestFlightsScaledRejectsZeroRoutes(t *testing.T) {
	if _, _, err := datagen.FlightsScaled(0, 1); err == nil {
		t.Fatal("FlightsScaled(0, 1) should return an error")
	}
}

func TestRunScalingGrowsLinearlyInBranching(t *testing.T) {
	rows, err := RunScaling(ScalingOptions{
		Grid: [][2]int{{2, 2}, {4, 2}, {6, 3}},
	}, Config{Budget: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// The paper's claim (§2.3): branching ∝ |s| + |t|. The root branching
	// factor must grow monotonically with instance size and stay within a
	// constant factor of it. (The *effective* branching over a whole run
	// is noisy — backtracking depends on the heuristic — so the claim is
	// checked at the root.)
	for i := 1; i < len(rows); i++ {
		if rows[i].Size <= rows[i-1].Size {
			t.Fatalf("grid not increasing in size: %+v", rows)
		}
		if rows[i].RootBranching < rows[i-1].RootBranching {
			t.Fatalf("root branching decreased with size: %+v", rows)
		}
	}
	for _, r := range rows {
		if r.RootBranching <= 0 || r.RootBranching > r.Size {
			t.Fatalf("root branching %d out of band for size %d", r.RootBranching, r.Size)
		}
		if r.Depth != 6 {
			t.Fatalf("scaled Example 2 should stay 6 steps deep, got %d", r.Depth)
		}
	}
	var buf bytes.Buffer
	if err := WriteScalingTable(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "|s|+|t|") {
		t.Fatalf("table header missing:\n%s", buf.String())
	}
}
