package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"tupelo/internal/obs"
)

// BenchSchema identifies the machine-readable benchmark report format. The
// schema is stable: fields may be added in later versions, but existing
// fields keep their names and meanings so the repo's recorded BENCH_*.json
// trajectory stays comparable across versions.
const BenchSchema = "tupelo-bench/v1"

// BenchEnv records the toolchain and machine shape a report was produced
// under — the context needed to compare states/sec numbers across commits.
type BenchEnv struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// BenchConfig is the resolved experiment configuration.
type BenchConfig struct {
	Budget  int   `json:"budget"`
	Seed    int64 `json:"seed"`
	Workers int   `json:"workers"`
}

// BenchMeasurement is one experimental run in wire form.
type BenchMeasurement struct {
	Experiment string `json:"experiment"`
	Label      string `json:"label,omitempty"`
	Param      int    `json:"param"`
	Algorithm  string `json:"algorithm"`
	Heuristic  string `json:"heuristic"`
	States     int    `json:"states"`
	Solved     bool   `json:"solved"`
	Censored   bool   `json:"censored"`
	PathLen    int    `json:"path_len,omitempty"`
	ElapsedNS  int64  `json:"elapsed_ns"`
	// HAccuracy is the run heuristic's quality score ∈ [0,1] along the found
	// solution path (tupelo-report/v1 semantics); 0 when censored or when
	// the heuristic has no signal. Added in a schema-compatible way: older
	// reports simply omit it.
	HAccuracy float64 `json:"h_accuracy,omitempty"`
}

// BenchQuality aggregates the heuristic-quality scores of a report's
// measurements for one heuristic kind, the per-kind rollup the tupelo-trace
// heuristic analyzer ranks. MeanStates averages over every run of the kind —
// censored runs included at their recorded (saturated) states count, exactly
// as the paper's log-scale plots count them — while MeanAccuracy averages
// over solved runs only, since censored runs have no solution path to
// profile.
type BenchQuality struct {
	Heuristic    string  `json:"heuristic"`
	Runs         int     `json:"runs"`
	Solved       int     `json:"solved"`
	MeanStates   float64 `json:"mean_states"`
	MeanAccuracy float64 `json:"mean_accuracy"`
}

// BenchAggregate summarizes a report's measurements; StatesPerSec is the
// headline throughput number perf PRs compare.
type BenchAggregate struct {
	Measurements   int     `json:"measurements"`
	Solved         int     `json:"solved"`
	Censored       int     `json:"censored"`
	TotalStates    int64   `json:"total_states"`
	TotalElapsedNS int64   `json:"total_elapsed_ns"`
	StatesPerSec   float64 `json:"states_per_sec"`
}

// BenchReport is the complete machine-readable record of one tupelo-bench
// invocation: what ran, on what, what happened, and the full metrics
// snapshot (including the latency histograms).
type BenchReport struct {
	Schema       string             `json:"schema"`
	Experiment   string             `json:"experiment"`
	GeneratedAt  time.Time          `json:"generated_at"`
	Env          BenchEnv           `json:"env"`
	Config       BenchConfig        `json:"config"`
	Measurements []BenchMeasurement `json:"measurements"`
	Aggregate    BenchAggregate     `json:"aggregate"`
	// Quality is the per-heuristic rollup of the measurements' h_accuracy
	// scores, sorted by ascending mean states (best-performing kind first).
	// Optional in the schema: reports from versions without the quality
	// profiler omit it.
	Quality []BenchQuality `json:"quality,omitempty"`
	Metrics *obs.Snapshot  `json:"metrics,omitempty"`
}

// NewBenchReport assembles a report from an experiment's measurements and
// the run's configuration, stamping the current environment and time.
func NewBenchReport(experiment string, cfg Config, ms []Measurement) *BenchReport {
	r := &BenchReport{
		Schema:      BenchSchema,
		Experiment:  experiment,
		GeneratedAt: time.Now().UTC(),
		Env: BenchEnv{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Config: BenchConfig{
			Budget:  cfg.Budget,
			Seed:    cfg.Seed,
			Workers: cfg.Workers,
		},
		Measurements: make([]BenchMeasurement, 0, len(ms)),
	}
	for _, m := range ms {
		r.Measurements = append(r.Measurements, BenchMeasurement{
			Experiment: m.Experiment,
			Label:      m.Label,
			Param:      m.Param,
			Algorithm:  m.Algorithm.String(),
			Heuristic:  m.Heuristic.String(),
			States:     m.States,
			Solved:     !m.Censored,
			Censored:   m.Censored,
			PathLen:    m.PathLen,
			ElapsedNS:  int64(m.Duration),
			HAccuracy:  m.HAccuracy,
		})
		r.Aggregate.TotalStates += int64(m.States)
		r.Aggregate.TotalElapsedNS += int64(m.Duration)
		if m.Censored {
			r.Aggregate.Censored++
		} else {
			r.Aggregate.Solved++
		}
	}
	r.Aggregate.Measurements = len(r.Measurements)
	if r.Aggregate.TotalElapsedNS > 0 {
		r.Aggregate.StatesPerSec = float64(r.Aggregate.TotalStates) /
			(float64(r.Aggregate.TotalElapsedNS) / float64(time.Second))
	}
	r.Quality = aggregateQuality(r.Measurements)
	return r
}

// aggregateQuality rolls the measurements up into one BenchQuality row per
// heuristic kind, sorted by ascending mean states so the paper's performance
// ordering reads top to bottom.
func aggregateQuality(ms []BenchMeasurement) []BenchQuality {
	byKind := map[string]*BenchQuality{}
	var order []string
	var accSum = map[string]float64{}
	for _, m := range ms {
		q := byKind[m.Heuristic]
		if q == nil {
			q = &BenchQuality{Heuristic: m.Heuristic}
			byKind[m.Heuristic] = q
			order = append(order, m.Heuristic)
		}
		q.Runs++
		q.MeanStates += float64(m.States)
		if m.Solved {
			q.Solved++
			accSum[m.Heuristic] += m.HAccuracy
		}
	}
	out := make([]BenchQuality, 0, len(order))
	for _, kind := range order {
		q := byKind[kind]
		q.MeanStates /= float64(q.Runs)
		if q.Solved > 0 {
			q.MeanAccuracy = accSum[kind] / float64(q.Solved)
		}
		out = append(out, *q)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MeanStates != out[j].MeanStates {
			return out[i].MeanStates < out[j].MeanStates
		}
		return out[i].Heuristic < out[j].Heuristic
	})
	return out
}

// AttachMetrics snapshots the registry into the report.
func (r *BenchReport) AttachMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s := reg.Snapshot()
	r.Metrics = &s
}

// WriteJSON writes the report, indented for diff-friendly trajectory files.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// BenchSummary is one line of the repo's BENCH_history.jsonl trajectory: a
// report stripped to its identity and aggregate. Full reports are large (the
// measurement list plus a metrics snapshot) and the committed BENCH_*.json
// files keep only the latest one per experiment; the history file appends one
// summary line per recorded run, so the throughput trajectory across commits
// survives even though each report overwrites the last.
type BenchSummary struct {
	Schema      string         `json:"schema"`
	Experiment  string         `json:"experiment"`
	GeneratedAt time.Time      `json:"generated_at"`
	Env         BenchEnv       `json:"env"`
	Config      BenchConfig    `json:"config"`
	Aggregate   BenchAggregate `json:"aggregate"`
}

// Summary reduces the report to its history line.
func (r *BenchReport) Summary() BenchSummary {
	return BenchSummary{
		Schema:      r.Schema,
		Experiment:  r.Experiment,
		GeneratedAt: r.GeneratedAt,
		Env:         r.Env,
		Config:      r.Config,
		Aggregate:   r.Aggregate,
	}
}

// validateSummary checks one history line for internal consistency. It is
// deliberately looser than ValidateBenchReport — summaries carry no
// measurement list or metrics snapshot to cross-check.
func validateSummary(s BenchSummary) error {
	if s.Schema != BenchSchema {
		return fmt.Errorf("schema %q, want %q", s.Schema, BenchSchema)
	}
	if s.Experiment == "" {
		return fmt.Errorf("missing experiment id")
	}
	if s.GeneratedAt.IsZero() {
		return fmt.Errorf("missing generated_at")
	}
	if s.Env.GoVersion == "" || s.Env.GOMAXPROCS <= 0 {
		return fmt.Errorf("incomplete env: %+v", s.Env)
	}
	a := s.Aggregate
	if a.Measurements <= 0 || a.TotalStates < 0 || a.TotalElapsedNS < 0 || a.StatesPerSec < 0 {
		return fmt.Errorf("inconsistent aggregate: %+v", a)
	}
	if a.Solved+a.Censored != a.Measurements {
		return fmt.Errorf("aggregate solved %d + censored %d != measurements %d", a.Solved, a.Censored, a.Measurements)
	}
	return nil
}

// AppendHistory appends the summary as one JSON line to the history file at
// path, creating it if absent. The file is JSONL: independent lines, append
// only, so concurrent benchmark invocations at worst interleave whole lines.
func AppendHistory(path string, s BenchSummary) error {
	if err := validateSummary(s); err != nil {
		return fmt.Errorf("bench history: %w", err)
	}
	line, err := json.Marshal(s)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ParseHistory parses JSONL history data, validating every line. Blank lines
// are ignored; a malformed line fails the whole parse (the file is committed
// and machine-written — damage means the trajectory can no longer be
// trusted).
func ParseHistory(data []byte) ([]BenchSummary, error) {
	var out []BenchSummary
	dec := json.NewDecoder(bytes.NewReader(data))
	for lineNo := 1; ; lineNo++ {
		var s BenchSummary
		if err := dec.Decode(&s); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("bench history: entry %d: %w", lineNo, err)
		}
		if err := validateSummary(s); err != nil {
			return nil, fmt.Errorf("bench history: entry %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// comparable reports whether a history entry measures the same workload as s:
// identical experiment and resolved configuration. Throughput across
// different budgets, seeds, or worker counts is not comparable.
func (s BenchSummary) comparable(o BenchSummary) bool {
	return s.Experiment == o.Experiment && s.Config == o.Config
}

// BestPrior returns the comparable history entry with the highest states/sec,
// or nil if none is comparable. Only entries generated strictly before s
// count as prior: the history normally already holds s's own line (append
// runs before the check), and a run must not be its own baseline.
func BestPrior(hist []BenchSummary, s BenchSummary) *BenchSummary {
	var best *BenchSummary
	for i := range hist {
		h := &hist[i]
		if !s.comparable(*h) || !h.GeneratedAt.Before(s.GeneratedAt) {
			continue
		}
		if best == nil || h.Aggregate.StatesPerSec > best.Aggregate.StatesPerSec {
			best = h
		}
	}
	return best
}

// RegressionReport renders a one-line verdict comparing the summary's
// throughput against the best comparable entry in the history: the perf
// trajectory check behind tupelo-bench -check-bench -bench-history. The
// verdict is informational — CI machines vary too much for an exit-code
// gate — but a regression line in the log is what a reviewer greps for.
func RegressionReport(s BenchSummary, hist []BenchSummary) string {
	best := BestPrior(hist, s)
	if best == nil {
		return fmt.Sprintf("bench history: no prior entry comparable to experiment %q %+v", s.Experiment, s.Config)
	}
	delta := 100 * (s.Aggregate.StatesPerSec - best.Aggregate.StatesPerSec) / best.Aggregate.StatesPerSec
	if delta < 0 {
		return fmt.Sprintf("bench history: REGRESSION: %.0f states/sec is %.1f%% below best prior %.0f (%s)",
			s.Aggregate.StatesPerSec, -delta, best.Aggregate.StatesPerSec, best.GeneratedAt.Format("2006-01-02"))
	}
	return fmt.Sprintf("bench history: ok: %.0f states/sec, %.1f%% above best prior %.0f (%s)",
		s.Aggregate.StatesPerSec, delta, best.Aggregate.StatesPerSec, best.GeneratedAt.Format("2006-01-02"))
}

// ValidateBenchReport checks that data is a schema-valid BenchReport: the
// schema tag matches, the environment and experiment id are present, every
// measurement names its configuration, the aggregate is consistent with the
// measurement list, and the metrics snapshot carries at least one latency
// histogram (the profiling layer's output — its absence means the bench ran
// without instrumentation). It is the check behind tupelo-bench
// -check-bench and the CI benchmark-smoke step.
func ValidateBenchReport(data []byte) error {
	_, err := ParseBenchReport(data)
	return err
}

// ParseBenchReport validates data exactly as ValidateBenchReport does and
// returns the decoded report, for callers that go on to use it (the history
// regression check needs the report's summary).
func ParseBenchReport(data []byte) (*BenchReport, error) {
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench report: not valid JSON: %w", err)
	}
	if r.Schema != BenchSchema {
		return nil, fmt.Errorf("bench report: schema %q, want %q", r.Schema, BenchSchema)
	}
	if r.Experiment == "" {
		return nil, fmt.Errorf("bench report: missing experiment id")
	}
	if r.GeneratedAt.IsZero() {
		return nil, fmt.Errorf("bench report: missing generated_at")
	}
	if r.Env.GoVersion == "" || r.Env.GOMAXPROCS <= 0 {
		return nil, fmt.Errorf("bench report: incomplete env: %+v", r.Env)
	}
	if len(r.Measurements) == 0 {
		return nil, fmt.Errorf("bench report: no measurements")
	}
	var states, elapsed int64
	for i, m := range r.Measurements {
		if m.Algorithm == "" || m.Heuristic == "" {
			return nil, fmt.Errorf("bench report: measurement %d missing algorithm/heuristic", i)
		}
		if m.States < 0 || m.ElapsedNS < 0 {
			return nil, fmt.Errorf("bench report: measurement %d has negative states/elapsed", i)
		}
		if m.Solved == m.Censored {
			return nil, fmt.Errorf("bench report: measurement %d: solved and censored must disagree", i)
		}
		if m.HAccuracy < 0 || m.HAccuracy > 1 {
			return nil, fmt.Errorf("bench report: measurement %d: h_accuracy %g outside [0,1]", i, m.HAccuracy)
		}
		states += int64(m.States)
		elapsed += m.ElapsedNS
	}
	// Quality is optional (older reports omit it), but a present section
	// must be internally consistent with the measurement list.
	if len(r.Quality) > 0 {
		runs := 0
		for i, q := range r.Quality {
			if q.Heuristic == "" || q.Runs <= 0 || q.Solved < 0 || q.Solved > q.Runs {
				return nil, fmt.Errorf("bench report: quality row %d inconsistent: %+v", i, q)
			}
			if q.MeanAccuracy < 0 || q.MeanAccuracy > 1 {
				return nil, fmt.Errorf("bench report: quality row %d: mean_accuracy %g outside [0,1]", i, q.MeanAccuracy)
			}
			runs += q.Runs
		}
		if runs != len(r.Measurements) {
			return nil, fmt.Errorf("bench report: quality rows cover %d runs, measurements list %d", runs, len(r.Measurements))
		}
	}
	if r.Aggregate.Measurements != len(r.Measurements) {
		return nil, fmt.Errorf("bench report: aggregate counts %d measurements, found %d",
			r.Aggregate.Measurements, len(r.Measurements))
	}
	if r.Aggregate.TotalStates != states || r.Aggregate.TotalElapsedNS != elapsed {
		return nil, fmt.Errorf("bench report: aggregate totals disagree with measurements")
	}
	if r.Metrics == nil {
		return nil, fmt.Errorf("bench report: missing metrics snapshot")
	}
	if len(r.Metrics.Histograms) == 0 {
		return nil, fmt.Errorf("bench report: metrics snapshot has no histograms")
	}
	return &r, nil
}
