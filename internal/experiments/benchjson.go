package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"tupelo/internal/obs"
)

// BenchSchema identifies the machine-readable benchmark report format. The
// schema is stable: fields may be added in later versions, but existing
// fields keep their names and meanings so the repo's recorded BENCH_*.json
// trajectory stays comparable across versions.
const BenchSchema = "tupelo-bench/v1"

// BenchEnv records the toolchain and machine shape a report was produced
// under — the context needed to compare states/sec numbers across commits.
type BenchEnv struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// BenchConfig is the resolved experiment configuration.
type BenchConfig struct {
	Budget  int   `json:"budget"`
	Seed    int64 `json:"seed"`
	Workers int   `json:"workers"`
}

// BenchMeasurement is one experimental run in wire form.
type BenchMeasurement struct {
	Experiment string `json:"experiment"`
	Label      string `json:"label,omitempty"`
	Param      int    `json:"param"`
	Algorithm  string `json:"algorithm"`
	Heuristic  string `json:"heuristic"`
	States     int    `json:"states"`
	Solved     bool   `json:"solved"`
	Censored   bool   `json:"censored"`
	PathLen    int    `json:"path_len,omitempty"`
	ElapsedNS  int64  `json:"elapsed_ns"`
}

// BenchAggregate summarizes a report's measurements; StatesPerSec is the
// headline throughput number perf PRs compare.
type BenchAggregate struct {
	Measurements   int     `json:"measurements"`
	Solved         int     `json:"solved"`
	Censored       int     `json:"censored"`
	TotalStates    int64   `json:"total_states"`
	TotalElapsedNS int64   `json:"total_elapsed_ns"`
	StatesPerSec   float64 `json:"states_per_sec"`
}

// BenchReport is the complete machine-readable record of one tupelo-bench
// invocation: what ran, on what, what happened, and the full metrics
// snapshot (including the latency histograms).
type BenchReport struct {
	Schema       string             `json:"schema"`
	Experiment   string             `json:"experiment"`
	GeneratedAt  time.Time          `json:"generated_at"`
	Env          BenchEnv           `json:"env"`
	Config       BenchConfig        `json:"config"`
	Measurements []BenchMeasurement `json:"measurements"`
	Aggregate    BenchAggregate     `json:"aggregate"`
	Metrics      *obs.Snapshot      `json:"metrics,omitempty"`
}

// NewBenchReport assembles a report from an experiment's measurements and
// the run's configuration, stamping the current environment and time.
func NewBenchReport(experiment string, cfg Config, ms []Measurement) *BenchReport {
	r := &BenchReport{
		Schema:      BenchSchema,
		Experiment:  experiment,
		GeneratedAt: time.Now().UTC(),
		Env: BenchEnv{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Config: BenchConfig{
			Budget:  cfg.Budget,
			Seed:    cfg.Seed,
			Workers: cfg.Workers,
		},
		Measurements: make([]BenchMeasurement, 0, len(ms)),
	}
	for _, m := range ms {
		r.Measurements = append(r.Measurements, BenchMeasurement{
			Experiment: m.Experiment,
			Label:      m.Label,
			Param:      m.Param,
			Algorithm:  m.Algorithm.String(),
			Heuristic:  m.Heuristic.String(),
			States:     m.States,
			Solved:     !m.Censored,
			Censored:   m.Censored,
			PathLen:    m.PathLen,
			ElapsedNS:  int64(m.Duration),
		})
		r.Aggregate.TotalStates += int64(m.States)
		r.Aggregate.TotalElapsedNS += int64(m.Duration)
		if m.Censored {
			r.Aggregate.Censored++
		} else {
			r.Aggregate.Solved++
		}
	}
	r.Aggregate.Measurements = len(r.Measurements)
	if r.Aggregate.TotalElapsedNS > 0 {
		r.Aggregate.StatesPerSec = float64(r.Aggregate.TotalStates) /
			(float64(r.Aggregate.TotalElapsedNS) / float64(time.Second))
	}
	return r
}

// AttachMetrics snapshots the registry into the report.
func (r *BenchReport) AttachMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s := reg.Snapshot()
	r.Metrics = &s
}

// WriteJSON writes the report, indented for diff-friendly trajectory files.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ValidateBenchReport checks that data is a schema-valid BenchReport: the
// schema tag matches, the environment and experiment id are present, every
// measurement names its configuration, the aggregate is consistent with the
// measurement list, and the metrics snapshot carries at least one latency
// histogram (the profiling layer's output — its absence means the bench ran
// without instrumentation). It is the check behind tupelo-bench
// -check-bench and the CI benchmark-smoke step.
func ValidateBenchReport(data []byte) error {
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("bench report: not valid JSON: %w", err)
	}
	if r.Schema != BenchSchema {
		return fmt.Errorf("bench report: schema %q, want %q", r.Schema, BenchSchema)
	}
	if r.Experiment == "" {
		return fmt.Errorf("bench report: missing experiment id")
	}
	if r.GeneratedAt.IsZero() {
		return fmt.Errorf("bench report: missing generated_at")
	}
	if r.Env.GoVersion == "" || r.Env.GOMAXPROCS <= 0 {
		return fmt.Errorf("bench report: incomplete env: %+v", r.Env)
	}
	if len(r.Measurements) == 0 {
		return fmt.Errorf("bench report: no measurements")
	}
	var states, elapsed int64
	for i, m := range r.Measurements {
		if m.Algorithm == "" || m.Heuristic == "" {
			return fmt.Errorf("bench report: measurement %d missing algorithm/heuristic", i)
		}
		if m.States < 0 || m.ElapsedNS < 0 {
			return fmt.Errorf("bench report: measurement %d has negative states/elapsed", i)
		}
		if m.Solved == m.Censored {
			return fmt.Errorf("bench report: measurement %d: solved and censored must disagree", i)
		}
		states += int64(m.States)
		elapsed += m.ElapsedNS
	}
	if r.Aggregate.Measurements != len(r.Measurements) {
		return fmt.Errorf("bench report: aggregate counts %d measurements, found %d",
			r.Aggregate.Measurements, len(r.Measurements))
	}
	if r.Aggregate.TotalStates != states || r.Aggregate.TotalElapsedNS != elapsed {
		return fmt.Errorf("bench report: aggregate totals disagree with measurements")
	}
	if r.Metrics == nil {
		return fmt.Errorf("bench report: missing metrics snapshot")
	}
	if len(r.Metrics.Histograms) == 0 {
		return fmt.Errorf("bench report: metrics snapshot has no histograms")
	}
	return nil
}
