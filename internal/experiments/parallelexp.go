package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"tupelo/internal/core"
	"tupelo/internal/datagen"
	"tupelo/internal/search"
)

// ParallelRow is one measurement of the parallel-search extension
// experiment: the synthetic matching task of Experiment 1 discovered with
// Options.ParallelSearch at a given shard-fleet size (DESIGN.md §10).
type ParallelRow struct {
	// Size is the schema size n (the task maps two n-attribute schemas).
	Size int
	// Workers is the shard count of the run.
	Workers int
	// Examined is the number of states examined, summed over all shards.
	// It grows with Workers: idle shards speculatively expand local
	// worse-f nodes while the goal path hops shard to shard.
	Examined int
	// Depth is the discovered expression length.
	Depth    int
	Duration time.Duration
	// Speedup is the workers=1 wall clock of the same size divided by this
	// run's wall clock. On a single-core host it measures sharding
	// overhead and sits at or below 1.0; parallel gains need real cores.
	Speedup float64
}

// ParallelOptions configures the sweep.
type ParallelOptions struct {
	// Sizes are the schema sizes to sweep; nil means {8, 12, 16}.
	Sizes []int
	// Workers are the shard counts to sweep; nil means {1, 2, 4}. A
	// workers=1 row is always run first per size — it is the speedup
	// baseline.
	Workers []int
	// Repeats is how many times each configuration runs; the fastest
	// repetition is reported (these tasks finish in microseconds, so a
	// single sample is scheduler noise). 0 means 3.
	Repeats int
}

// RunParallelSweep measures hash-sharded parallel A* (Options.ParallelSearch)
// across shard counts on the Experiment 1 matching workload, reporting
// states examined, wall clock, and speedup versus one shard.
func RunParallelSweep(opts ParallelOptions, cfg Config) ([]ParallelRow, error) {
	cfg = cfg.withDefaults()
	if opts.Sizes == nil {
		opts.Sizes = []int{8, 12, 16}
	}
	if opts.Workers == nil {
		opts.Workers = []int{1, 2, 4}
	}
	if opts.Repeats <= 0 {
		opts.Repeats = 3
	}
	var out []ParallelRow
	for _, n := range opts.Sizes {
		src, tgt, err := datagen.MatchingPair(n)
		if err != nil {
			return nil, fmt.Errorf("experiments: parallel sweep size %d: %w", n, err)
		}
		var baseline time.Duration
		workers := opts.Workers
		if len(workers) == 0 || workers[0] != 1 {
			workers = append([]int{1}, workers...)
		}
		for _, w := range workers {
			row := ParallelRow{Size: n, Workers: w}
			for rep := 0; rep < opts.Repeats; rep++ {
				start := time.Now()
				res, err := core.Discover(src, tgt, core.Options{
					ParallelSearch: true,
					Workers:        w,
					Limits:         cfg.limits(),
					Metrics:        cfg.Metrics,
				})
				elapsed := time.Since(start)
				if err != nil {
					return nil, fmt.Errorf("experiments: parallel sweep size %d workers %d: %w", n, w, err)
				}
				if rep == 0 || elapsed < row.Duration {
					row.Duration = elapsed
					row.Examined = res.Stats.Examined
					row.Depth = len(res.Expr)
				}
			}
			if w == 1 {
				baseline = row.Duration
			}
			if baseline > 0 && row.Duration > 0 {
				row.Speedup = float64(baseline) / float64(row.Duration)
			}
			out = append(out, row)
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "parallel n=%d workers=%d states=%d speedup=%.2f (%s)\n",
					n, w, row.Examined, row.Speedup, row.Duration.Round(time.Microsecond))
			}
			if cfg.Collect != nil {
				cfg.Collect(Measurement{
					Experiment: "parallel",
					Label:      fmt.Sprintf("workers=%d", w),
					Param:      n,
					Algorithm:  search.AStar,
					States:     row.Examined,
					PathLen:    row.Depth,
					Duration:   row.Duration,
				})
			}
		}
	}
	return out, nil
}

// WriteParallelTable renders the sweep rows.
func WriteParallelTable(w io.Writer, rows []ParallelRow) error {
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "size\tworkers\tstates\tdepth\twall\tspeedup")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%s\t%.2f\n",
			r.Size, r.Workers, r.Examined, r.Depth, r.Duration.Round(time.Microsecond), r.Speedup)
	}
	return tw.Flush()
}
