package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"tupelo/internal/core"
	"tupelo/internal/datagen"
	"tupelo/internal/heuristic"
	"tupelo/internal/search"
)

// ScalingRow is one measurement of the scaling extension experiment: the
// Fig. 1 restructuring task at a scaled critical-instance size. It tests
// the paper's §2.3 claim that the branching factor of the search space is
// proportional to |s| + |t|.
type ScalingRow struct {
	Routes, Carriers int
	// Size is |s| + |t| measured in cells, the paper's instance size.
	Size int
	// RootBranching is the number of successor moves of the source
	// instance — the branching factor the paper relates to |s| + |t|.
	RootBranching int
	// Branching is the effective branching factor over the whole run:
	// states generated per state expanded.
	Branching float64
	// Examined is the number of states examined.
	Examined int
	// Depth is the discovered expression length.
	Depth    int
	Duration time.Duration
}

// ScalingOptions configures the experiment.
type ScalingOptions struct {
	// Grid lists (routes, carriers) pairs; nil means the default ladder.
	Grid [][2]int
	// Algorithm and Heuristic; zero values mean RBFS/h3 (a robust pairing
	// for the restructuring task).
	Algorithm search.Algorithm
	Heuristic heuristic.Kind
}

// RunScaling runs the Example 2 discovery at increasing critical-instance
// sizes and reports how branching and states examined grow with |s| + |t|.
func RunScaling(opts ScalingOptions, cfg Config) ([]ScalingRow, error) {
	cfg = cfg.withDefaults()
	if opts.Grid == nil {
		opts.Grid = [][2]int{{2, 2}, {3, 2}, {4, 2}, {4, 3}, {5, 3}, {6, 3}, {6, 4}}
	}
	algo := opts.Algorithm
	kind := opts.Heuristic
	if kind == heuristic.H0 {
		algo, kind = search.RBFS, heuristic.H3
	}
	var out []ScalingRow
	for _, g := range opts.Grid {
		src, tgt, err := datagen.FlightsScaled(g[0], g[1])
		if err != nil {
			return nil, fmt.Errorf("experiments: scaling %dx%d: %w", g[0], g[1], err)
		}
		discOpts := core.Options{
			Algorithm: algo,
			Heuristic: kind,
			Limits:    cfg.limits(),
			Metrics:   cfg.Metrics,
		}
		rootB, err := core.BranchingFactor(src, tgt, discOpts)
		if err != nil {
			return nil, fmt.Errorf("experiments: scaling %dx%d: %w", g[0], g[1], err)
		}
		start := time.Now()
		res, err := core.Discover(src, tgt, discOpts)
		row := ScalingRow{
			Routes:        g[0],
			Carriers:      g[1],
			Size:          src.Size() + tgt.Size(),
			RootBranching: rootB,
			Duration:      time.Since(start),
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: scaling %dx%d: %w", g[0], g[1], err)
		}
		row.Examined = res.Stats.Examined
		row.Depth = len(res.Expr)
		if res.Stats.Examined > 0 {
			row.Branching = float64(res.Stats.Generated) / float64(res.Stats.Examined)
		}
		out = append(out, row)
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "scaling %dx%d size=%d root-branching=%d states=%d (%s)\n",
				g[0], g[1], row.Size, row.RootBranching, row.Examined, row.Duration.Round(time.Millisecond))
		}
	}
	return out, nil
}

// WriteScalingTable renders the scaling rows.
func WriteScalingTable(w io.Writer, rows []ScalingRow) error {
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "routes\tcarriers\t|s|+|t|\troot-branching\teff-branching\tstates\tdepth")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.1f\t%d\t%d\n",
			r.Routes, r.Carriers, r.Size, r.RootBranching, r.Branching, r.Examined, r.Depth)
	}
	return tw.Flush()
}
