// Package server implements tupelo-serve: a long-running mapping-as-a-
// service daemon over the discovery engine. Jobs arrive as HTTP/JSON,
// run through core.DiscoverPortfolio under the resilience stack (panic
// isolation, memory budgets, deadlines, best-effort partials, jittered
// retries), and solved mappings persist in a crash-safe repository keyed
// by the (source, target) fingerprint pair, so repeat requests are
// repository hits, not searches.
//
// Robustness is the design center:
//
//   - Admission control: a bounded waiting queue (429 + Retry-After when
//     full), per-tenant active-job quotas, and a per-tenant circuit
//     breaker that opens after repeated panic/memory verdicts.
//   - Crash safety: the repository survives kill-mid-write (atomic
//     commits, checksums, quarantine-on-recovery), and a panic or memory
//     blowup inside a job returns a structured error without taking the
//     daemon down.
//   - Graceful drain: Shutdown stops admitting, waits for in-flight jobs
//     within a deadline, then cancels them so best-effort partials are
//     persisted and returned rather than lost.
//   - Forensics: every job goroutine runs under a flight recorder whose
//     rings are dumped to the forensics directory when the job dies
//     abnormally, and run reports are persisted on failures (or on
//     request).
package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"tupelo/internal/core"
	"tupelo/internal/faults"
	"tupelo/internal/lambda"
	"tupelo/internal/obs"
	"tupelo/internal/repo"
	"tupelo/internal/search"
)

// Config configures New. The zero value of every optional field selects a
// conservative default; Repo is required.
type Config struct {
	// Repo is the mapping repository. Required.
	Repo *repo.Repo
	// ForensicsDir, when non-empty, receives flight-recorder dumps
	// (flight-*.jsonl) from jobs that die abnormally and run reports
	// (report-*.json) for failed jobs and jobs that asked for one.
	ForensicsDir string
	// QueueDepth bounds how many admitted jobs may wait for an execution
	// slot; submissions beyond it are rejected with 429. Default 16.
	QueueDepth int
	// MaxConcurrent bounds how many jobs run simultaneously. Default 2.
	MaxConcurrent int
	// TenantMaxActive bounds one tenant's queued+running jobs. Default 4.
	TenantMaxActive int
	// JobTimeout is the per-job wall-clock ceiling; a request's timeout_ms
	// may lower it but never raise it. Default 30s.
	JobTimeout time.Duration
	// MaxStates is the per-job state-budget ceiling; a request may lower
	// it. Default 200,000.
	MaxStates int
	// MaxHeapBytes is the per-job memory budget (search.Limits.MaxHeapBytes);
	// 0 disables the budget.
	MaxHeapBytes uint64
	// BestEffort is the default degradation policy: aborted jobs return
	// the closest partial mapping instead of an error. A request's
	// best_effort field overrides it per job.
	BestEffort bool
	// MaxRetries is the portfolio restart budget per job.
	MaxRetries int
	// Workers is the per-job worker budget handed to the portfolio engine.
	// Default 1: concurrency across jobs, not within them — MaxConcurrent
	// jobs at 1 worker each beats 1 job at N workers for service traffic.
	Workers int
	// BreakerThreshold opens a tenant's circuit after this many
	// consecutive panic or memory verdicts on its jobs. Default 3;
	// negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects the tenant's
	// submissions before closing again. Default 30s.
	BreakerCooldown time.Duration
	// Metrics receives the server.* and job-level engine metric families;
	// exposed at /metrics. Nil means a private registry.
	Metrics *obs.Registry
	// RetrySeed decorrelates retry-backoff jitter across processes; each
	// job derives its own seed from it. 0 means the core default.
	RetrySeed int64
	// FaultHook is the test-only fault-injection hook threaded into every
	// job's engine options (core.Options.FaultHook). Must be nil in
	// production.
	FaultHook func(faults.Site, string)
	// Debugf, when non-nil, receives low-volume diagnostic lines (for
	// example, response-body write failures). Nil discards them; metrics
	// still count the events either way.
	Debugf func(format string, args ...any)

	// now is the test clock for circuit-breaker expiry. Nil means
	// time.Now.
	now func() time.Time
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.TenantMaxActive <= 0 {
		c.TenantMaxActive = 4
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 30 * time.Second
	}
	if c.MaxStates <= 0 {
		c.MaxStates = 200_000
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// tenantState is one tenant's admission bookkeeping. Guarded by Server.mu.
type tenantState struct {
	// active counts the tenant's queued + running jobs.
	active int
	// consecFatal counts consecutive panic/memory verdicts; reset by any
	// other outcome.
	consecFatal int
	// openUntil is the circuit-breaker expiry; zero when closed.
	openUntil time.Time
}

// Server is the daemon: admission control and queueing around the
// discovery engine plus the mapping repository. Create with New, serve
// with Handler, stop with Shutdown.
type Server struct {
	cfg   Config
	start time.Time

	mu       sync.Mutex
	queued   int
	running  int
	tenants  map[string]*tenantState
	draining bool
	cancels  map[int64]context.CancelFunc

	// sem holds one token per execution slot.
	sem    chan struct{}
	jobSeq atomic.Int64
}

// New builds a Server over the given configuration.
func New(cfg Config) (*Server, error) {
	if cfg.Repo == nil {
		return nil, fmt.Errorf("server: Config.Repo is required")
	}
	cfg = cfg.withDefaults()
	if cfg.ForensicsDir != "" {
		if err := os.MkdirAll(cfg.ForensicsDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: forensics dir: %w", err)
		}
	}
	return &Server{
		cfg:     cfg,
		start:   time.Now(),
		tenants: make(map[string]*tenantState),
		cancels: make(map[int64]context.CancelFunc),
		sem:     make(chan struct{}, cfg.MaxConcurrent),
	}, nil
}

// reject describes an admission refusal.
type reject struct {
	status     int
	cause      string
	msg        string
	retryAfter time.Duration
}

// admit runs admission control for one job: drain gate, circuit breaker,
// tenant quota, queue bound. On success it registers the job's cancel
// func (for drain-deadline cancellation) and returns a release func the
// caller must invoke exactly once when the job leaves the system.
func (s *Server) admit(tenant string, id int64, cancel context.CancelFunc) (release func(), rej *reject) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, &reject{status: 503, cause: "draining", msg: "server is draining; not accepting new jobs"}
	}
	t := s.tenants[tenant]
	if t == nil {
		t = &tenantState{}
		s.tenants[tenant] = t
	}
	now := s.cfg.now()
	if t.openUntil.After(now) {
		wait := t.openUntil.Sub(now)
		return nil, &reject{
			status: 503, cause: "breaker-open", retryAfter: wait,
			msg: fmt.Sprintf("circuit open for tenant %q after repeated fatal job verdicts; retry in %s", tenant, wait.Round(time.Millisecond)),
		}
	}
	if t.active >= s.cfg.TenantMaxActive {
		return nil, &reject{
			status: 429, cause: "tenant-quota", retryAfter: time.Second,
			msg: fmt.Sprintf("tenant %q already has %d active jobs (max %d)", tenant, t.active, s.cfg.TenantMaxActive),
		}
	}
	if s.queued >= s.cfg.QueueDepth {
		return nil, &reject{
			status: 429, cause: "queue-full", retryAfter: time.Second,
			msg: fmt.Sprintf("job queue full (%d waiting); shed load and retry", s.queued),
		}
	}
	s.queued++
	t.active++
	s.cancels[id] = cancel
	s.counter("server.jobs.admitted").Inc()
	s.gauge("server.queue.depth").Set(int64(s.queued))
	released := false
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if released {
			return
		}
		released = true
		t.active--
		delete(s.cancels, id)
		s.gauge("server.queue.depth").Set(int64(s.queued))
		s.gauge("server.jobs.running").Set(int64(s.running))
	}, nil
}

// acquireSlot moves an admitted job from the waiting queue into an
// execution slot, or gives up when ctx is cancelled first (client gone,
// drain deadline).
func (s *Server) acquireSlot(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.mu.Lock()
		s.queued--
		s.gauge("server.queue.depth").Set(int64(s.queued))
		s.mu.Unlock()
		return ctx.Err()
	}
	s.mu.Lock()
	s.queued--
	s.running++
	s.gauge("server.queue.depth").Set(int64(s.queued))
	s.gauge("server.jobs.running").Set(int64(s.running))
	s.mu.Unlock()
	return nil
}

// releaseSlot returns an execution slot.
func (s *Server) releaseSlot() {
	<-s.sem
	s.mu.Lock()
	s.running--
	s.gauge("server.jobs.running").Set(int64(s.running))
	s.mu.Unlock()
}

// recordVerdict feeds the per-tenant circuit breaker: panic and memory
// verdicts are the "this tenant's jobs kill workers" signals; anything
// else (success, partials, deadlines, budget exhaustion) closes the
// window. Called after every executed job.
func (s *Server) recordVerdict(tenant, cause string) {
	if s.cfg.BreakerThreshold < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenants[tenant]
	if t == nil {
		return
	}
	if cause == "panic" || cause == "memory" {
		t.consecFatal++
		if t.consecFatal >= s.cfg.BreakerThreshold {
			t.openUntil = s.cfg.now().Add(s.cfg.BreakerCooldown)
			t.consecFatal = 0
			s.counter(obs.Name("server.breaker.opens", "tenant", tenant)).Inc()
		}
		return
	}
	t.consecFatal = 0
}

// jobOutcome is what runJob hands back to the HTTP layer.
type jobOutcome struct {
	resp   *JobResponse
	errRsp *ErrorResponse
	status int
	// verdict is the search cause fed to the circuit breaker ("" = ran
	// clean).
	verdict string
}

// runJob executes one admitted job inside an execution slot: portfolio
// discovery under the resilience stack, repository commit, forensics.
func (s *Server) runJob(ctx context.Context, j *job, id int64) jobOutcome {
	started := time.Now()
	timeout := s.cfg.JobTimeout
	if ms := j.req.TimeoutMS; ms > 0 {
		if d := time.Duration(ms) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	maxStates := s.cfg.MaxStates
	if j.req.MaxStates > 0 && j.req.MaxStates < maxStates {
		maxStates = j.req.MaxStates
	}
	bestEffort := s.cfg.BestEffort
	if j.req.BestEffort != nil {
		bestEffort = *j.req.BestEffort
	}

	// Forensics: every job goroutine runs under its own flight recorder;
	// the rings are dumped only when the job dies abnormally (panic,
	// memory, deadline), at the portfolio's join point.
	fr := obs.NewFlightRecorder(0)
	var flightBuf bytes.Buffer
	fr.SetAutoDump(&flightBuf)
	var rb *obs.ReportBuilder
	wantReport := s.cfg.ForensicsDir != "" && j.req.Report
	if wantReport {
		rb = obs.NewReportBuilder()
	}

	src, tgt := j.pair()
	base := core.Options{
		Limits: search.Limits{
			MaxStates:    maxStates,
			MaxHeapBytes: s.cfg.MaxHeapBytes,
			BestEffort:   bestEffort,
		},
		Workers: s.cfg.Workers,
		Metrics: s.cfg.Metrics,
		Flight:  fr,
		Correspondences: append(append([]lambda.Correspondence(nil),
			j.src.Corrs...), j.tgt.Corrs...),
		FaultHook: s.cfg.FaultHook,
	}
	if rb != nil {
		base.Tracer = rb
	}
	popts := core.PortfolioOptions{
		Configs:    j.configs,
		Options:    base,
		MaxRetries: s.cfg.MaxRetries,
		RetrySeed:  s.cfg.RetrySeed + id,
	}

	timer := s.cfg.Metrics.Timer("server.job.duration")
	pres, runErr := core.DiscoverPortfolio(ctx, src, tgt, popts)
	elapsed := time.Since(started)
	timer.Observe(elapsed)

	// Persist forensics before shaping the response: a dump exists only if
	// some member died abnormally.
	if s.cfg.ForensicsDir != "" && flightBuf.Len() > 0 {
		s.writeForensics(fmt.Sprintf("flight-%d-%s.jsonl", id, j.key[:8]), flightBuf.Bytes())
	}
	if wantReport || (s.cfg.ForensicsDir != "" && runErr != nil) {
		s.writeReport(id, j, pres, runErr, base, rb)
	}

	if runErr != nil {
		cause := errCause(runErr)
		s.counter(obs.Name("server.jobs.failed", "cause", cause)).Inc()
		return jobOutcome{
			errRsp:  &ErrorResponse{Error: runErr.Error(), Cause: cause},
			status:  statusForCause(cause),
			verdict: cause,
		}
	}

	res := pres.Result
	attempts := 0
	for _, run := range pres.Runs {
		attempts += run.Attempts
	}
	entry := &repo.Entry{
		Key:       j.key,
		SourceKey: j.key[:32],
		TargetKey: j.key[32:],
		Expr:      res.Expr.String(),
		Partial:   res.Partial,
		Algorithm: res.Algorithm.String(),
		Heuristic: res.Heuristic.String(),
		K:         res.K,
		Examined:  res.Stats.Examined,
		Tenant:    j.req.Tenant,
	}
	if err := s.cfg.Repo.Put(entry); err != nil {
		// The mapping is still good; losing the commit costs a future
		// cache hit, not this response. Count it loudly.
		s.counter("server.repo.put_errors").Inc()
	}
	resp := &JobResponse{
		Key:       j.key,
		Solved:    !res.Partial,
		Partial:   res.Partial,
		Expr:      res.Expr.String(),
		Pretty:    res.Expr.Pretty(),
		Algorithm: res.Algorithm.String(),
		Heuristic: res.Heuristic.String(),
		K:         res.K,
		Examined:  res.Stats.Examined,
		Attempts:  attempts,
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	}
	outcome := "solved"
	verdict := ""
	if res.Partial {
		outcome = "partial"
		if res.AbortErr != nil {
			resp.AbortCause = errCause(res.AbortErr)
			verdict = resp.AbortCause
		}
	}
	s.counter(obs.Name("server.jobs.completed", "outcome", outcome)).Inc()
	return jobOutcome{resp: resp, status: 200, verdict: verdict}
}

// writeForensics persists one forensics artifact, best-effort: forensics
// must never fail a job that already has its answer.
func (s *Server) writeForensics(name string, data []byte) {
	path := filepath.Join(s.cfg.ForensicsDir, name)
	if err := os.WriteFile(path, data, 0o644); err == nil {
		s.counter("server.forensics.dumps").Inc()
	}
}

// writeReport builds and persists a tupelo-report/v1 run report for the
// job, best-effort.
func (s *Server) writeReport(id int64, j *job, pres *core.PortfolioResult, runErr error, base core.Options, rb *obs.ReportBuilder) {
	var res *core.Result
	opts := base
	if pres != nil {
		res = pres.Result
		// Report under the winner's configuration, not the base default.
		opts.Algorithm = pres.Winner.Algorithm
		opts.Heuristic = pres.Winner.Heuristic
		opts.K = pres.Winner.K
	}
	src, tgt := j.pair()
	rep, err := core.BuildReport(res, runErr, src, tgt, opts, rb)
	if err != nil {
		return
	}
	f, err := os.Create(filepath.Join(s.cfg.ForensicsDir, fmt.Sprintf("report-%d-%s.json", id, j.key[:8])))
	if err != nil {
		return
	}
	defer f.Close()
	if obs.WriteRunReport(f, rep) == nil {
		s.counter("server.forensics.reports").Inc()
	}
}

// errCause extracts the stable cause string from a discovery error.
func errCause(err error) string {
	var serr *search.Error
	if errors.As(err, &serr) {
		return serr.Cause()
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return "deadline"
	}
	if errors.Is(err, context.Canceled) {
		return "canceled"
	}
	return "error"
}

// statusForCause maps a search verdict to an HTTP status: infrastructure
// deaths (panic) are 500s, load-shedding verdicts (memory) 503s, time and
// budget exhaustion 504s, and "no mapping exists" a client-visible 422.
func statusForCause(cause string) int {
	switch cause {
	case "panic", "error":
		return 500
	case "memory", "canceled":
		return 503
	case "deadline", "limit":
		return 504
	case "exhausted":
		return 422
	default:
		return 500
	}
}

// Draining reports whether Shutdown has started.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// active returns queued+running under the lock.
func (s *Server) active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued + s.running
}

// Shutdown drains the server: new submissions are rejected immediately
// (readiness goes unready), in-flight jobs run to completion until ctx
// expires, then every remaining job is cancelled — under best-effort
// options that converts running searches into partial mappings, which
// their handlers persist and return — and Shutdown waits a short grace
// for them to settle. Returns nil when the server drained fully.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.counter("server.drains").Inc()

	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.active() == 0 {
			return nil
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			// Drain deadline: cancel everything still in flight. Handlers
			// observe the cancellation within one examined state, convert
			// to best-effort partials where allowed, persist, and return.
			s.mu.Lock()
			n := len(s.cancels)
			for _, cancel := range s.cancels {
				cancel()
			}
			s.mu.Unlock()
			s.counter("server.drain.cancelled").Add(int64(n))
			grace := time.NewTimer(5 * time.Second)
			defer grace.Stop()
			for {
				if s.active() == 0 {
					return nil
				}
				select {
				case <-tick.C:
				case <-grace.C:
					return fmt.Errorf("server: %d jobs still active after drain deadline + grace", s.active())
				}
			}
		}
	}
}

func (s *Server) counter(name string) *obs.Counter { return s.cfg.Metrics.Counter(name) }

// debugf forwards to the configured debug sink, if any.
func (s *Server) debugf(format string, args ...any) {
	if s.cfg.Debugf != nil {
		s.cfg.Debugf(format, args...)
	}
}
func (s *Server) gauge(name string) *obs.Gauge { return s.cfg.Metrics.Gauge(name) }
