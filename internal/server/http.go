package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"tupelo/internal/obs"
	"tupelo/internal/repo"
)

// maxBodyBytes bounds a job-request body; the per-instance bound inside
// parseJob is tighter, this one stops a hostile stream before decoding.
const maxBodyBytes = 1 << 20

// Handler returns the daemon's HTTP API:
//
//	POST /v1/jobs          submit a discovery job and wait for its result
//	GET  /v1/mappings/{key} look up a repository entry by fingerprint key
//	GET  /v1/mappings      list committed repository keys
//	GET  /v1/stats         server and repository statistics
//	GET  /healthz          liveness (200 while the process serves)
//	GET  /readyz           readiness (503 once draining)
//	GET  /metrics          Prometheus metrics (?format=json for JSON)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleJob)
	mux.HandleFunc("GET /v1/mappings/{key}", s.handleMapping)
	mux.HandleFunc("GET /v1/mappings", s.handleMappings)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.Handle("GET /metrics", s.cfg.Metrics.Handler())
	return mux
}

// writeJSON writes v as the response body with the given status. Encode
// failures cannot be repaired — the status line is already on the wire — but
// they are not silent either: each one increments
// tupelo_server_response_write_errors and reaches the debug log, so a client
// that hangs up mid-body (or a marshal bug) is visible in the exposition
// instead of vanishing into a discarded error.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.counter("server.response.write_errors").Inc()
		s.debugf("server: writing %d response: %v", status, err)
	}
}

// writeError writes a structured error response, mirroring retry hints
// into the Retry-After header.
func (s *Server) writeError(w http.ResponseWriter, status int, cause, msg string, retryAfter time.Duration) {
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	s.writeJSON(w, status, &ErrorResponse{
		Error:        msg,
		Cause:        cause,
		RetryAfterMS: retryAfter.Milliseconds(),
	})
}

// handleJob is the submission path: parse, repository lookup, admission
// control, queue, execute, persist, respond. The request blocks until its
// job finishes (or is rejected); backpressure is visible as 429/503.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.writeError(w, http.StatusRequestEntityTooLarge, "bad-request", fmt.Sprintf("reading body: %v", err), 0)
		return
	}
	j, err := parseJob(body)
	if err != nil {
		s.counter(obs.Name("server.jobs.rejected", "reason", "bad-request")).Inc()
		s.writeError(w, http.StatusBadRequest, "bad-request", err.Error(), 0)
		return
	}

	// Repository fast path: a committed complete mapping answers without
	// consuming quota, queue, or an execution slot — this is the entire
	// point of the fingerprint-keyed store. Partial entries don't satisfy
	// a discovery request; a fresh search may complete them.
	if !j.req.NoCache {
		if e, ok := s.cfg.Repo.Get(j.key); ok && !e.Partial {
			s.counter("server.repo.hits").Inc()
			s.writeJSON(w, http.StatusOK, entryResponse(e, msSince(started)))
			return
		}
		s.counter("server.repo.misses").Inc()
	}

	id := s.jobSeq.Add(1)
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	release, rej := s.admit(j.req.Tenant, id, cancel)
	if rej != nil {
		s.counter(obs.Name("server.jobs.rejected", "reason", rej.cause)).Inc()
		s.writeError(w, rej.status, rej.cause, rej.msg, rej.retryAfter)
		return
	}
	defer release()

	if err := s.acquireSlot(ctx); err != nil {
		// The client went away (or the drain deadline cancelled us) while
		// queued; nothing ran.
		s.counter(obs.Name("server.jobs.rejected", "reason", "abandoned")).Inc()
		s.writeError(w, http.StatusServiceUnavailable, "canceled", "job cancelled while queued", 0)
		return
	}
	defer s.releaseSlot()

	out := s.runJob(ctx, j, id)
	s.recordVerdict(j.req.Tenant, out.verdict)
	if out.errRsp != nil {
		s.writeJSON(w, out.status, out.errRsp)
		return
	}
	out.resp.ElapsedMS = msSince(started)
	s.writeJSON(w, out.status, out.resp)
}

// handleMapping serves one repository entry by key.
func (s *Server) handleMapping(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !repo.ValidKey(key) {
		s.writeError(w, http.StatusBadRequest, "bad-request", fmt.Sprintf("malformed repository key %q", key), 0)
		return
	}
	e, ok := s.cfg.Repo.Get(key)
	if !ok {
		s.writeError(w, http.StatusNotFound, "not-found", "no mapping committed for that fingerprint pair", 0)
		return
	}
	s.writeJSON(w, http.StatusOK, e)
}

// handleMappings lists committed keys.
func (s *Server) handleMappings(w http.ResponseWriter, r *http.Request) {
	keys := s.cfg.Repo.Keys()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"count": len(keys),
		"keys":  keys,
	})
}

// StatsResponse is the GET /v1/stats body.
type StatsResponse struct {
	Draining       bool    `json:"draining"`
	Queued         int     `json:"queued"`
	Running        int     `json:"running"`
	Tenants        int     `json:"tenants"`
	RepoEntries    int     `json:"repo_entries"`
	RepoQuarantine int     `json:"repo_quarantined"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	rs := s.cfg.Repo.Stats()
	s.mu.Lock()
	resp := StatsResponse{
		Draining:       s.draining,
		Queued:         s.queued,
		Running:        s.running,
		Tenants:        len(s.tenants),
		RepoEntries:    rs.Entries,
		RepoQuarantine: rs.Quarantined,
		UptimeSeconds:  time.Since(s.start).Seconds(),
	}
	s.mu.Unlock()
	s.writeJSON(w, http.StatusOK, resp)
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}
