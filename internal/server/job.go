package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"tupelo/internal/core"
	"tupelo/internal/critio"
	"tupelo/internal/heuristic"
	"tupelo/internal/relation"
	"tupelo/internal/repo"
	"tupelo/internal/search"
)

// maxInstanceBytes bounds each critical-instance text block in a job
// request. Critical instances are examples, not data dumps; anything
// larger is a malformed or abusive request and is rejected at the door.
const maxInstanceBytes = 256 << 10

// maxTenantLen bounds the tenant identifier.
const maxTenantLen = 64

// JobRequest is the JSON body of POST /v1/jobs: a discovery job over a
// (source, target) critical-instance pair in critio text format.
type JobRequest struct {
	// Tenant identifies the submitting client for quota, circuit-breaker,
	// and provenance purposes. Required; lowercase [a-z0-9._-], max 64.
	Tenant string `json:"tenant"`
	// Source and Target are critical instances in critio text format
	// (relation blocks plus optional "map" correspondence directives).
	Source string `json:"source"`
	Target string `json:"target"`
	// TimeoutMS lowers the server's per-job wall-clock ceiling for this job;
	// it can never raise it. 0 means the server default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// MaxStates lowers the server's per-job state budget; 0 means the
	// server default.
	MaxStates int `json:"max_states,omitempty"`
	// BestEffort overrides the server's best-effort default for this job:
	// when true an aborted search degrades to the closest partial mapping
	// instead of an error.
	BestEffort *bool `json:"best_effort,omitempty"`
	// Portfolio selects the racing lineup: "algo/heuristic" or
	// "algo/heuristic/K" specs. Empty means the server's default lineup.
	Portfolio []string `json:"portfolio,omitempty"`
	// NoCache forces a fresh search even when the repository has a
	// committed mapping for the pair (the fresh result re-commits).
	NoCache bool `json:"no_cache,omitempty"`
	// Report asks the server to persist a tupelo-report/v1 run report for
	// this job in its forensics directory.
	Report bool `json:"report,omitempty"`
}

// job is a validated, decoded job: the request plus everything derived
// from it that admission and execution need.
type job struct {
	req     JobRequest
	src     *critio.Instance
	tgt     *critio.Instance
	configs []core.PortfolioConfig
	key     string
}

// validTenant reports whether s is an acceptable tenant identifier.
func validTenant(s string) bool {
	if s == "" || len(s) > maxTenantLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// parsePortfolioSpec reads one "algo/heuristic[/K]" member spec.
func parsePortfolioSpec(spec string) (core.PortfolioConfig, error) {
	fields := strings.Split(strings.TrimSpace(spec), "/")
	if len(fields) != 2 && len(fields) != 3 {
		return core.PortfolioConfig{}, fmt.Errorf("portfolio member %q: want algo/heuristic or algo/heuristic/K", spec)
	}
	algo, err := search.ParseAlgorithm(fields[0])
	if err != nil {
		return core.PortfolioConfig{}, fmt.Errorf("portfolio member %q: %v", spec, err)
	}
	heur, err := heuristic.ParseKind(fields[1])
	if err != nil {
		return core.PortfolioConfig{}, fmt.Errorf("portfolio member %q: %v", spec, err)
	}
	cfg := core.PortfolioConfig{Algorithm: algo, Heuristic: heur}
	if len(fields) == 3 {
		k, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || k < 0 {
			return core.PortfolioConfig{}, fmt.Errorf("portfolio member %q: bad k %q", spec, fields[2])
		}
		cfg.K = k
	}
	return cfg, nil
}

// parseJob decodes and fully validates a job request body. It never
// panics on arbitrary input (fuzzed) and rejects anything the execution
// path could choke on: unknown fields, oversized or unparseable
// instances, bad tenants, bad portfolio specs, negative budgets.
func parseJob(data []byte) (*job, error) {
	var req JobRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("bad job JSON: %v", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("bad job JSON: trailing data after request object")
	}
	if !validTenant(req.Tenant) {
		return nil, fmt.Errorf("bad tenant %q: want 1-%d chars of [a-z0-9._-]", req.Tenant, maxTenantLen)
	}
	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("negative timeout_ms %d", req.TimeoutMS)
	}
	if req.MaxStates < 0 {
		return nil, fmt.Errorf("negative max_states %d", req.MaxStates)
	}
	if len(req.Source) > maxInstanceBytes || len(req.Target) > maxInstanceBytes {
		return nil, fmt.Errorf("instance too large: max %d bytes", maxInstanceBytes)
	}
	if strings.TrimSpace(req.Source) == "" || strings.TrimSpace(req.Target) == "" {
		return nil, fmt.Errorf("source and target instances are required")
	}
	src, err := critio.ReadString(req.Source)
	if err != nil {
		return nil, fmt.Errorf("source: %v", err)
	}
	tgt, err := critio.ReadString(req.Target)
	if err != nil {
		return nil, fmt.Errorf("target: %v", err)
	}
	if src.DB.Len() == 0 || tgt.DB.Len() == 0 {
		return nil, fmt.Errorf("source and target must each contain at least one relation")
	}
	var configs []core.PortfolioConfig
	for _, spec := range req.Portfolio {
		cfg, err := parsePortfolioSpec(spec)
		if err != nil {
			return nil, err
		}
		configs = append(configs, cfg)
	}
	return &job{
		req:     req,
		src:     src,
		tgt:     tgt,
		configs: configs,
		key:     repo.PairKey(src.DB, tgt.DB),
	}, nil
}

// JobResponse is the JSON body of a successful POST /v1/jobs: the mapping
// (complete or best-effort partial) plus provenance and effort.
type JobResponse struct {
	// Key is the repository key of the (source, target) pair.
	Key string `json:"key"`
	// Cached reports a repository hit: the mapping was served from the
	// fingerprint-keyed store without running a search.
	Cached bool `json:"cached"`
	// Solved is true for a complete, verified mapping; false for a
	// best-effort partial.
	Solved bool `json:"solved"`
	// Partial marks a best-effort prefix mapping from an aborted search.
	Partial bool `json:"partial,omitempty"`
	// Expr is the mapping in fira's canonical textual form.
	Expr string `json:"expr"`
	// Pretty is the paper-style rendering of Expr.
	Pretty string `json:"pretty,omitempty"`
	// Algorithm, Heuristic, K name the configuration that found the
	// mapping (the portfolio winner).
	Algorithm string  `json:"algorithm,omitempty"`
	Heuristic string  `json:"heuristic,omitempty"`
	K         float64 `json:"k,omitempty"`
	// Examined is the states-examined search effort (0 for cache hits).
	Examined int `json:"examined"`
	// Attempts sums member attempts across the portfolio race; > number of
	// members only when the retry policy restarted failed slots.
	Attempts int `json:"attempts,omitempty"`
	// AbortCause names what truncated a partial result (limit, memory,
	// deadline, canceled).
	AbortCause string `json:"abort_cause,omitempty"`
	// ElapsedMS is the server-side handling time, queue wait excluded.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// ErrorResponse is the JSON body of every non-2xx response.
type ErrorResponse struct {
	// Error is a human-readable description.
	Error string `json:"error"`
	// Cause is a stable machine-readable cause: bad-request, draining,
	// breaker-open, tenant-quota, queue-full, panic, memory, deadline,
	// canceled, limit, exhausted, error, not-found.
	Cause string `json:"cause"`
	// RetryAfterMS hints when the client should retry, for backpressure
	// causes; mirrored in the Retry-After header (whole seconds).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// entryResponse renders a repository entry as a job response for the
// cache-hit path and the mappings endpoint.
func entryResponse(e *repo.Entry, elapsedMS float64) *JobResponse {
	return &JobResponse{
		Key:       e.Key,
		Cached:    true,
		Solved:    !e.Partial,
		Partial:   e.Partial,
		Expr:      e.Expr,
		Algorithm: e.Algorithm,
		Heuristic: e.Heuristic,
		K:         e.K,
		Examined:  0,
		ElapsedMS: elapsedMS,
	}
}

// pairInstances returns the decoded databases of the job.
func (j *job) pair() (src, tgt *relation.Database) { return j.src.DB, j.tgt.DB }
