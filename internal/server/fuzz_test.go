package server

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzJobRequest asserts parseJob never panics on arbitrary bytes, and
// that any accepted request survives a marshal/parse round trip with the
// same validated meaning (same request fields, same repository key).
func FuzzJobRequest(f *testing.F) {
	f.Add([]byte(`{"tenant":"acme","source":"relation R\n  a\n  1\n","target":"relation S\n  a\n  1\n"}`))
	f.Add([]byte(`{"tenant":"t","source":"relation R\n  a b\n  x y\n","target":"relation R\n  a b\n  x y\n","portfolio":["rbfs/h1","astar/cosine/1000"],"timeout_ms":50,"max_states":10,"no_cache":true,"report":true}`))
	f.Add([]byte(`{"tenant":"BAD TENANT","source":"","target":""}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"tenant":"a","source":"relation R\n  a\n  1\n","target":"relation S\n  a\n  1\n","unknown":1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		j, err := parseJob(data)
		if err != nil {
			return
		}
		// Accepted input: re-encoding the validated request must parse to
		// the same job.
		out, merr := json.Marshal(j.req)
		if merr != nil {
			t.Fatalf("accepted request does not marshal: %v", merr)
		}
		j2, perr := parseJob(out)
		if perr != nil {
			t.Fatalf("round-tripped request rejected: %v\nrequest: %s", perr, out)
		}
		if !reflect.DeepEqual(j.req, j2.req) {
			t.Fatalf("request fields changed across round trip:\n%+v\n%+v", j.req, j2.req)
		}
		if j.key != j2.key {
			t.Fatalf("repository key changed across round trip: %q vs %q", j.key, j2.key)
		}
	})
}
