package server

import (
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// brokenWriter fails every Write — the shape of a client that hung up
// between the handler's decision and the response body hitting the socket.
type brokenWriter struct {
	header http.Header
	status int
}

func (w *brokenWriter) Header() http.Header {
	if w.header == nil {
		w.header = make(http.Header)
	}
	return w.header
}

func (w *brokenWriter) WriteHeader(status int) { w.status = status }

func (w *brokenWriter) Write([]byte) (int, error) {
	return 0, errors.New("connection reset by peer")
}

// TestWriteJSONErrorCounted pins the serving bugfix: a failed response
// write must increment server.response.write_errors and reach the debug
// log, instead of vanishing (the old writeJSON discarded the Encode error).
func TestWriteJSONErrorCounted(t *testing.T) {
	var mu sync.Mutex
	var logged []string
	env := newEnv(t, func(cfg *Config) {
		cfg.Debugf = func(format string, args ...any) {
			mu.Lock()
			defer mu.Unlock()
			logged = append(logged, format)
		}
	})
	ctr := env.srv.counter("server.response.write_errors")
	before := ctr.Value()

	w := &brokenWriter{}
	env.srv.writeJSON(w, http.StatusOK, map[string]string{"ok": "yes"})

	if got := ctr.Value(); got != before+1 {
		t.Fatalf("server.response.write_errors = %d after failed write, want %d", got, before+1)
	}
	if w.status != http.StatusOK {
		t.Fatalf("status written = %d, want %d", w.status, http.StatusOK)
	}
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, f := range logged {
		if strings.Contains(f, "writing") {
			found = true
		}
	}
	if !found {
		t.Fatalf("failed write did not reach the debug log; logged formats: %q", logged)
	}
}

// TestWriteJSONSuccessNotCounted: the happy path must not touch the error
// counter.
func TestWriteJSONSuccessNotCounted(t *testing.T) {
	env := newEnv(t, nil)
	ctr := env.srv.counter("server.response.write_errors")
	before := ctr.Value()
	w := &brokenWriter{}
	// A writer that succeeds: reuse httptest-free plumbing via a tiny inline type.
	env.srv.writeError(&okWriter{brokenWriter: w}, http.StatusBadRequest, "bad", "nope", 0)
	if got := ctr.Value(); got != before {
		t.Fatalf("server.response.write_errors = %d after successful write, want %d", got, before)
	}
}

// okWriter is brokenWriter with Write fixed.
type okWriter struct {
	*brokenWriter
}

func (w *okWriter) Write(p []byte) (int, error) { return len(p), nil }
