package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tupelo/internal/faults"
	"tupelo/internal/obs"
	"tupelo/internal/repo"
)

// easyPair is a small solvable scenario: rename the relation and both
// attributes.
const (
	easySource = "relation Emp\n  nm dept\n  Alice Sales\n  Bob Dev\n"
	easyTarget = "relation Employee\n  Name Dept\n  Alice Sales\n  Bob Dev\n"
	// hardSource/hardTarget needs a relation rename plus four attribute
	// renames — deep enough that a fault-delayed search is reliably still
	// running when a test wants to catch it in flight.
	hardSource = "relation T\n  a b c d\n  1 2 3 4\n  5 6 7 8\n"
	hardTarget = "relation U\n  w x y z\n  1 2 3 4\n  5 6 7 8\n"
)

// pairN returns a unique trivially-solvable pair per n, for tests that
// need distinct repository keys.
func pairN(n int) (string, string) {
	src := fmt.Sprintf("relation R%d\n  a b\n  v%d w%d\n", n, n, n)
	tgt := fmt.Sprintf("relation S%d\n  a b\n  v%d w%d\n", n, n, n)
	return src, tgt
}

type testEnv struct {
	srv  *Server
	ts   *httptest.Server
	repo *repo.Repo
}

func newEnv(t *testing.T, mutate func(*Config)) *testEnv {
	t.Helper()
	metrics := obs.NewRegistry()
	store, err := repo.Open(t.TempDir(), repo.Options{Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Repo:          store,
		QueueDepth:    8,
		MaxConcurrent: 2,
		JobTimeout:    20 * time.Second,
		MaxStates:     50_000,
		Metrics:       metrics,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &testEnv{srv: srv, ts: ts, repo: store}
}

// submit posts a job and decodes the response into out (JobResponse or
// ErrorResponse), returning the HTTP status.
func (e *testEnv) submit(t *testing.T, req JobRequest, out any) int {
	t.Helper()
	return e.submitCtx(t, context.Background(), req, out)
}

func (e *testEnv) submitCtx(t *testing.T, ctx context.Context, req JobRequest, out any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequestWithContext(ctx, "POST", e.ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := e.ts.Client().Do(hreq)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response (status %d): %v", resp.StatusCode, err)
		}
	}
	return resp.StatusCode
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSolveThenRepositoryHit is the service's reason to exist: the first
// request searches, the second is a repository hit answered without a
// search.
func TestSolveThenRepositoryHit(t *testing.T) {
	env := newEnv(t, nil)
	req := JobRequest{Tenant: "acme", Source: easySource, Target: easyTarget}

	var first JobResponse
	if st := env.submit(t, req, &first); st != 200 {
		t.Fatalf("first submit status = %d", st)
	}
	if first.Cached || !first.Solved || first.Expr == "" || first.Examined == 0 {
		t.Fatalf("first response should be a fresh solve: %+v", first)
	}

	var second JobResponse
	if st := env.submit(t, req, &second); st != 200 {
		t.Fatalf("second submit status = %d", st)
	}
	if !second.Cached || !second.Solved || second.Expr != first.Expr {
		t.Fatalf("second response should be a repository hit with the same mapping: %+v", second)
	}
	if second.Examined != 0 {
		t.Fatalf("repository hit reports search effort: %+v", second)
	}
	if second.Key != first.Key {
		t.Fatalf("key mismatch: %q vs %q", second.Key, first.Key)
	}

	// The mapping is also addressable directly.
	resp, err := http.Get(env.ts.URL + "/v1/mappings/" + first.Key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /v1/mappings/{key} status = %d", resp.StatusCode)
	}
	var e repo.Entry
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Expr != first.Expr || e.Tenant != "acme" {
		t.Fatalf("repository entry mismatch: %+v", e)
	}
}

// TestRestartServesFromRepository proves crash-safe persistence end to
// end: a second server over the same repository directory answers the
// pair from disk.
func TestRestartServesFromRepository(t *testing.T) {
	dir := t.TempDir()
	store, err := repo.Open(dir, repo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := New(Config{Repo: store})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	env1 := &testEnv{srv: srv1, ts: ts1, repo: store}
	req := JobRequest{Tenant: "acme", Source: easySource, Target: easyTarget}
	var first JobResponse
	if st := env1.submit(t, req, &first); st != 200 {
		t.Fatalf("submit status = %d", st)
	}
	if err := srv1.Shutdown(context.Background()); err != nil {
		t.Fatalf("clean shutdown failed: %v", err)
	}
	ts1.Close()

	// "Restart": a fresh repository handle and server over the same dir.
	store2, err := repo.Open(dir, repo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := New(Config{Repo: store2})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	env2 := &testEnv{srv: srv2, ts: ts2, repo: store2}
	var second JobResponse
	if st := env2.submit(t, req, &second); st != 200 {
		t.Fatalf("submit after restart status = %d", st)
	}
	if !second.Cached || second.Expr != first.Expr {
		t.Fatalf("restarted server did not serve from repository: %+v", second)
	}
}

// TestPanicJobStructuredErrorDaemonSurvives pins the resilience headline:
// a job that panics returns a structured 500 and the daemon keeps serving.
func TestPanicJobStructuredErrorDaemonSurvives(t *testing.T) {
	inj := faults.NewInjector(1, faults.Fault{
		Site: faults.SiteHeuristicEval, Match: "h1/", Every: 1, Kind: faults.Panic,
	})
	env := newEnv(t, func(c *Config) { c.FaultHook = inj.Hit })

	var fail ErrorResponse
	st := env.submit(t, JobRequest{
		Tenant: "crashy", Source: easySource, Target: easyTarget,
		Portfolio: []string{"rbfs/h1"},
	}, &fail)
	if st != 500 {
		t.Fatalf("panicking job status = %d, want 500 (%+v)", st, fail)
	}
	if fail.Cause != "panic" || fail.Error == "" {
		t.Fatalf("panicking job error = %+v, want cause panic", fail)
	}

	// The daemon is alive and a clean job still solves.
	resp, err := http.Get(env.ts.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz after panic: %v %v", resp, err)
	}
	resp.Body.Close()
	var ok JobResponse
	if st := env.submit(t, JobRequest{Tenant: "crashy", Source: easySource, Target: easyTarget}, &ok); st != 200 {
		t.Fatalf("clean job after panic status = %d", st)
	}
	if !ok.Solved {
		t.Fatalf("clean job after panic: %+v", ok)
	}
}

// TestMemoryBudgetStructuredError pins the other fatal verdict: a job that
// blows the heap budget comes back as a structured 503 without killing
// the daemon.
func TestMemoryBudgetStructuredError(t *testing.T) {
	env := newEnv(t, func(c *Config) { c.MaxHeapBytes = 1 }) // nothing fits
	var fail ErrorResponse
	st := env.submit(t, JobRequest{Tenant: "acme", Source: hardSource, Target: hardTarget}, &fail)
	if st != 503 || fail.Cause != "memory" {
		t.Fatalf("memory-blown job = %d %+v, want 503/memory", st, fail)
	}
	// The daemon survived the abort and still reports ready.
	resp, err := http.Get(env.ts.URL + "/readyz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("readyz after memory abort: %v %v", resp, err)
	}
	resp.Body.Close()
}

// TestQueueFullReturns429 pins backpressure: with one slot occupied and
// the one queue seat taken, the next submission is shed with 429 +
// Retry-After instead of piling up.
func TestQueueFullReturns429(t *testing.T) {
	inj := faults.NewInjector(1, faults.Fault{
		Site: faults.SiteHeuristicEval, Every: 1, Kind: faults.Delay, Sleep: 30 * time.Millisecond,
	})
	env := newEnv(t, func(c *Config) {
		c.FaultHook = inj.Hit
		c.MaxConcurrent = 1
		c.QueueDepth = 1
		c.TenantMaxActive = 10
	})

	var wg sync.WaitGroup
	launch := func(n int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			src, tgt := pairN(n)
			env.submit(t, JobRequest{Tenant: "acme", Source: src, Target: tgt}, nil)
		}()
	}
	launch(1) // occupies the execution slot
	waitFor(t, 5*time.Second, "job 1 running", func() bool {
		env.srv.mu.Lock()
		defer env.srv.mu.Unlock()
		return env.srv.running == 1
	})
	launch(2) // occupies the single queue seat
	waitFor(t, 5*time.Second, "job 2 queued", func() bool {
		env.srv.mu.Lock()
		defer env.srv.mu.Unlock()
		return env.srv.queued == 1
	})

	src, tgt := pairN(3)
	body, _ := json.Marshal(JobRequest{Tenant: "acme", Source: src, Target: tgt})
	resp, err := http.Post(env.ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Fatalf("submission over full queue = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Cause != "queue-full" {
		t.Fatalf("cause = %q, want queue-full", er.Cause)
	}
	wg.Wait()
}

// TestTenantQuota429 pins per-tenant admission: one tenant cannot occupy
// more than its share, while another tenant is still admitted.
func TestTenantQuota429(t *testing.T) {
	inj := faults.NewInjector(1, faults.Fault{
		Site: faults.SiteHeuristicEval, Every: 1, Kind: faults.Delay, Sleep: 30 * time.Millisecond,
	})
	env := newEnv(t, func(c *Config) {
		c.FaultHook = inj.Hit
		c.MaxConcurrent = 1
		c.QueueDepth = 8
		c.TenantMaxActive = 1
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		src, tgt := pairN(1)
		env.submit(t, JobRequest{Tenant: "greedy", Source: src, Target: tgt}, nil)
	}()
	waitFor(t, 5*time.Second, "job 1 running", func() bool {
		env.srv.mu.Lock()
		defer env.srv.mu.Unlock()
		return env.srv.running == 1
	})

	src, tgt := pairN(2)
	var er ErrorResponse
	if st := env.submit(t, JobRequest{Tenant: "greedy", Source: src, Target: tgt}, &er); st != 429 || er.Cause != "tenant-quota" {
		t.Fatalf("over-quota tenant = %d %+v, want 429/tenant-quota", st, er)
	}
	// A different tenant still gets in.
	src3, tgt3 := pairN(3)
	var ok JobResponse
	if st := env.submit(t, JobRequest{Tenant: "modest", Source: src3, Target: tgt3}, &ok); st != 200 {
		t.Fatalf("other tenant = %d, want 200", st)
	}
	wg.Wait()
}

// TestCircuitBreaker pins per-tenant circuit breaking: repeated fatal
// verdicts open the circuit (503 breaker-open), and it closes again after
// the cooldown.
func TestCircuitBreaker(t *testing.T) {
	clock := time.Now()
	var clockMu sync.Mutex
	now := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return clock
	}
	inj := faults.NewInjector(1, faults.Fault{
		Site: faults.SiteHeuristicEval, Match: "h1/", Every: 1, Kind: faults.Panic,
	})
	env := newEnv(t, func(c *Config) {
		c.FaultHook = inj.Hit
		c.BreakerThreshold = 2
		c.BreakerCooldown = time.Minute
		c.now = now
	})

	crash := func(n int) int {
		src, tgt := pairN(n)
		return env.submit(t, JobRequest{
			Tenant: "crashy", Source: src, Target: tgt, Portfolio: []string{"rbfs/h1"},
		}, nil)
	}
	if st := crash(1); st != 500 {
		t.Fatalf("crash 1 = %d", st)
	}
	if st := crash(2); st != 500 {
		t.Fatalf("crash 2 = %d", st)
	}
	// Threshold reached: the circuit is open even for a clean job.
	var er ErrorResponse
	if st := env.submit(t, JobRequest{Tenant: "crashy", Source: easySource, Target: easyTarget}, &er); st != 503 || er.Cause != "breaker-open" {
		t.Fatalf("open circuit = %d %+v, want 503/breaker-open", st, er)
	}
	if er.RetryAfterMS <= 0 {
		t.Fatalf("breaker-open without retry hint: %+v", er)
	}
	// Other tenants are unaffected.
	var ok JobResponse
	if st := env.submit(t, JobRequest{Tenant: "calm", Source: easySource, Target: easyTarget}, &ok); st != 200 {
		t.Fatalf("other tenant during open circuit = %d", st)
	}
	// After the cooldown the tenant is served again (repository hit from
	// calm's solve — same pair — which is fine: hits bypass the breaker
	// anyway, so use a fresh pair to force a real search).
	clockMu.Lock()
	clock = clock.Add(2 * time.Minute)
	clockMu.Unlock()
	src, tgt := pairN(9)
	if st := env.submit(t, JobRequest{Tenant: "crashy", Source: src, Target: tgt}, nil); st != 200 {
		t.Fatalf("post-cooldown job = %d, want 200", st)
	}
}

// TestShutdownDrainsAndPersistsPartials pins graceful drain: a running
// best-effort job cancelled at the drain deadline returns a partial
// mapping, persists it to the repository, and the server finishes the
// drain cleanly while rejecting new work.
func TestShutdownDrainsAndPersistsPartials(t *testing.T) {
	inj := faults.NewInjector(1, faults.Fault{
		Site: faults.SiteHeuristicEval, Every: 1, Kind: faults.Delay, Sleep: 20 * time.Millisecond,
	})
	env := newEnv(t, func(c *Config) {
		c.FaultHook = inj.Hit
		c.BestEffort = true
		c.MaxConcurrent = 1
	})

	req := JobRequest{Tenant: "acme", Source: hardSource, Target: hardTarget}
	type result struct {
		status int
		resp   JobResponse
	}
	done := make(chan result, 1)
	go func() {
		var r result
		r.status = env.submit(t, req, &r.resp)
		done <- r
	}()
	waitFor(t, 5*time.Second, "job running", func() bool {
		env.srv.mu.Lock()
		defer env.srv.mu.Unlock()
		return env.srv.running == 1
	})

	// Drain with an immediate deadline: the in-flight job is cancelled.
	drainCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	drainDone := make(chan error, 1)
	go func() { drainDone <- env.srv.Shutdown(drainCtx) }()

	// New work is rejected while draining, and readiness reflects it.
	waitFor(t, time.Second, "draining flag", env.srv.Draining)
	var er ErrorResponse
	if st := env.submit(t, JobRequest{Tenant: "acme", Source: easySource, Target: easyTarget}, &er); st != 503 || er.Cause != "draining" {
		t.Fatalf("submission during drain = %d %+v, want 503/draining", st, er)
	}
	resp, err := http.Get(env.ts.URL + "/readyz")
	if err != nil || resp.StatusCode != 503 {
		t.Fatalf("readyz during drain: %v %v", resp, err)
	}
	resp.Body.Close()

	r := <-done
	if r.status != 200 {
		t.Fatalf("drained job status = %d, want 200 best-effort partial", r.status)
	}
	if !r.resp.Partial || r.resp.Solved || r.resp.Expr == "" && r.resp.Examined == 0 {
		t.Fatalf("drained job response = %+v, want partial", r.resp)
	}
	if r.resp.AbortCause != "canceled" && r.resp.AbortCause != "deadline" {
		t.Fatalf("drained job abort cause = %q", r.resp.AbortCause)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("Shutdown = %v, want clean drain", err)
	}
	// The partial was persisted and survives a repository reopen.
	e, ok := env.repo.Get(r.resp.Key)
	if !ok || !e.Partial {
		t.Fatalf("partial not persisted: %+v %v", e, ok)
	}
	store2, err := repo.Open(env.repo.Dir(), repo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e2, ok := store2.Get(r.resp.Key); !ok || e2.Expr != e.Expr {
		t.Fatalf("partial lost across reopen: %+v %v", e2, ok)
	}
}

// TestPartialEntryDoesNotShortCircuit ensures a persisted partial is a
// repository miss for discovery purposes and gets upgraded by a complete
// solve.
func TestPartialEntryDoesNotShortCircuit(t *testing.T) {
	env := newEnv(t, nil)
	// Seed a partial entry for the easy pair's key.
	var probe JobResponse
	if st := env.submit(t, JobRequest{Tenant: "acme", Source: easySource, Target: easyTarget}, &probe); st != 200 {
		t.Fatalf("probe = %d", st)
	}
	partial := &repo.Entry{
		Key: probe.Key, SourceKey: probe.Key[:32], TargetKey: probe.Key[32:],
		Expr: "rename_rel[Emp->Employee]", Partial: true,
	}
	// Overwrite cannot downgrade; use a fresh repo dir instead.
	store, err := repo.Open(t.TempDir(), repo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(partial); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Repo: store})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	env2 := &testEnv{srv: srv, ts: ts, repo: store}
	var resp JobResponse
	if st := env2.submit(t, JobRequest{Tenant: "acme", Source: easySource, Target: easyTarget}, &resp); st != 200 {
		t.Fatalf("submit over partial = %d", st)
	}
	if resp.Cached || !resp.Solved {
		t.Fatalf("partial entry short-circuited discovery: %+v", resp)
	}
	if e, _ := store.Get(probe.Key); e == nil || e.Partial {
		t.Fatalf("complete solve did not upgrade the partial entry: %+v", e)
	}
}

// TestForensicsOnPanic asserts a dying job dumps its flight rings and a
// run report into the forensics directory.
func TestForensicsOnPanic(t *testing.T) {
	inj := faults.NewInjector(1, faults.Fault{
		Site: faults.SiteHeuristicEval, Match: "h1/", Every: 1, Kind: faults.Panic,
	})
	dir := t.TempDir()
	env := newEnv(t, func(c *Config) {
		c.FaultHook = inj.Hit
		c.ForensicsDir = dir
	})
	st := env.submit(t, JobRequest{
		Tenant: "crashy", Source: easySource, Target: easyTarget,
		Portfolio: []string{"rbfs/h1"},
	}, nil)
	if st != 500 {
		t.Fatalf("panicking job = %d", st)
	}
	reports, _ := filepath.Glob(filepath.Join(dir, "report-*.json"))
	if len(reports) == 0 {
		t.Fatal("no run report persisted for a failed job")
	}
	// The report must carry the abort cause.
	data, err := filepath.Glob(filepath.Join(dir, "flight-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("no flight dump persisted for a panicking job")
	}
}

// TestStatsAndMetricsEndpoints smoke-tests the ops surface.
func TestStatsAndMetricsEndpoints(t *testing.T) {
	env := newEnv(t, nil)
	if st := env.submit(t, JobRequest{Tenant: "acme", Source: easySource, Target: easyTarget}, nil); st != 200 {
		t.Fatalf("submit = %d", st)
	}
	resp, err := http.Get(env.ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.RepoEntries != 1 || stats.Queued != 0 || stats.Running != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	mresp, err := http.Get(env.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{"tupelo_server_jobs_admitted", "tupelo_server_repo_misses", "tupelo_repo_puts"} {
		if !strings.Contains(buf.String(), family) {
			t.Errorf("metrics exposition missing %s", family)
		}
	}
}

// TestConcurrentSubmissionBackpressure floods the server from many
// goroutines under -race: every submission must resolve to a definite
// outcome (solved or a structured rejection), bookkeeping must return to
// zero, and nothing may crash.
func TestConcurrentSubmissionBackpressure(t *testing.T) {
	inj := faults.NewInjector(1, faults.Fault{
		Site: faults.SiteHeuristicEval, Every: 1, Kind: faults.Delay, Sleep: 3 * time.Millisecond,
	})
	env := newEnv(t, func(c *Config) {
		c.FaultHook = inj.Hit
		c.MaxConcurrent = 1
		c.QueueDepth = 2
		c.TenantMaxActive = 3
	})

	const n = 16
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src, tgt := pairN(i)
			tenant := "even"
			if i%2 == 1 {
				tenant = "odd"
			}
			var er ErrorResponse
			statuses[i] = env.submitCtx(t, context.Background(), JobRequest{Tenant: tenant, Source: src, Target: tgt}, &er)
		}(i)
	}
	wg.Wait()

	solved, shed := 0, 0
	for i, st := range statuses {
		switch st {
		case 200:
			solved++
		case 429:
			shed++
		default:
			t.Errorf("submission %d: unexpected status %d", i, st)
		}
	}
	if solved == 0 {
		t.Fatal("no submission solved under load")
	}
	if solved+shed != n {
		t.Fatalf("outcomes don't partition: %d solved + %d shed != %d", solved, shed, n)
	}
	if a := env.srv.active(); a != 0 {
		t.Fatalf("active = %d after all submissions returned", a)
	}
	t.Logf("solved=%d shed=%d", solved, shed)
}
