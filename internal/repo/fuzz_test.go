package repo

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// FuzzEntryDecode asserts the two load-bearing decoder properties: DecodeEntry
// never panics on arbitrary bytes, and any input it accepts re-encodes to a
// byte-identical file (the on-disk form is canonical), which in turn decodes
// to an identical entry.
func FuzzEntryDecode(f *testing.F) {
	good, err := EncodeEntry(&Entry{
		Schema:    Schema,
		Key:       strings.Repeat("ab", 32),
		SourceKey: strings.Repeat("ab", 16),
		TargetKey: strings.Repeat("ab", 16),
		Expr:      "rename_rel[Emp->Employee]",
		Algorithm: "rbfs",
		Heuristic: "cosine",
		K:         1000,
		Examined:  7,
		Tenant:    "acme",
		CreatedAt: time.Date(2026, 8, 7, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(""))
	f.Add([]byte("{}\ncrc32c:00000000\n"))
	f.Add([]byte("not json\ncrc32c:deadbeef"))
	f.Add(bytes.Repeat([]byte("\n"), 10))

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeEntry(data)
		if err != nil {
			return
		}
		re, err := EncodeEntry(e)
		if err != nil {
			t.Fatalf("decoded entry does not re-encode: %v", err)
		}
		e2, err := DecodeEntry(re)
		if err != nil {
			t.Fatalf("re-encoded entry does not decode: %v", err)
		}
		if *e2 != *e {
			t.Fatalf("round trip mutated entry:\n got %+v\nwant %+v", e2, e)
		}
	})
}
