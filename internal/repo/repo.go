// Package repo is a crash-safe on-disk repository of discovered mapping
// expressions, keyed by the 16-byte Database.Key() fingerprints of the
// (source, target) critical-instance pair. It is the persistence layer of
// the tupelo-serve daemon: repeat discovery requests over the same pair are
// repository hits, not searches.
//
// Durability model: one entry per file, written as temp-file + fsync +
// atomic rename, so a committed entry is either fully present or absent —
// never torn. Every entry carries a CRC-32C checksum of its payload; the
// startup recovery scan verifies it and moves anything unreadable (torn
// temp files from a crash mid-write, truncated or bit-rotted entries,
// entries whose embedded key disagrees with their filename) into a
// quarantine/ subdirectory instead of serving it or deleting evidence.
package repo

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"tupelo/internal/faults"
	"tupelo/internal/obs"
	"tupelo/internal/relation"
)

// Schema identifies the entry encoding; bump on incompatible change.
const Schema = "tupelo-mapping/v1"

// Entry is one stored mapping: the discovered expression for a (source,
// target) fingerprint pair plus the provenance a server needs to answer a
// repeat request without re-searching.
type Entry struct {
	// Schema is always the package Schema constant.
	Schema string `json:"schema"`
	// Key is the repository key: hex of the source fingerprint followed by
	// hex of the target fingerprint (64 hex digits). See PairKey.
	Key string `json:"key"`
	// SourceKey and TargetKey are the hex-encoded 16-byte Database.Key()
	// fingerprints of the pair, individually, for hub/composition indexing.
	SourceKey string `json:"source_key"`
	TargetKey string `json:"target_key"`
	// Expr is the discovered mapping in fira's canonical textual form (one
	// operator per line); fira.Parse reads it back.
	Expr string `json:"expr"`
	// Partial marks a best-effort prefix persisted by a draining server. A
	// partial entry never satisfies a lookup for a complete mapping; it is
	// upgraded in place when a later search completes.
	Partial bool `json:"partial,omitempty"`
	// Algorithm, Heuristic, K and Examined record how the mapping was found.
	Algorithm string  `json:"algorithm,omitempty"`
	Heuristic string  `json:"heuristic,omitempty"`
	K         float64 `json:"k,omitempty"`
	Examined  int     `json:"examined,omitempty"`
	// Tenant is the submitting tenant, for provenance only — the repository
	// is content-addressed, so tenants share identical mappings.
	Tenant string `json:"tenant,omitempty"`
	// CreatedAt is the commit time (UTC).
	CreatedAt time.Time `json:"created_at"`
}

// PairKey returns the repository key for a (source, target) pair: the two
// 16-byte Database.Key() fingerprints hex-encoded and concatenated. The
// fingerprints are fixed-width, so the concatenation is unambiguous, and
// the key is filesystem- and URL-safe (64 lowercase hex digits).
func PairKey(source, target *relation.Database) string {
	return hex.EncodeToString([]byte(source.Key())) + hex.EncodeToString([]byte(target.Key()))
}

// keyLen is the exact length of a valid repository key.
const keyLen = 64

// ValidKey reports whether s is a well-formed repository key. Keys name
// files, so anything else must be rejected before it reaches the
// filesystem layer.
func ValidKey(s string) bool {
	if len(s) != keyLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// crcTable is the Castagnoli polynomial table used for entry checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// EncodeEntry renders an entry in the on-disk format: the JSON payload on
// one line, then a trailer line "crc32c:HEX" over the payload bytes. The
// trailer doubles as a commit marker — a torn write that lost the trailer
// (or any suffix of it) fails DecodeEntry.
func EncodeEntry(e *Entry) ([]byte, error) {
	payload, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("repo: encode entry: %w", err)
	}
	var b bytes.Buffer
	b.Write(payload)
	fmt.Fprintf(&b, "\ncrc32c:%08x\n", crc32.Checksum(payload, crcTable))
	return b.Bytes(), nil
}

// DecodeEntry parses and verifies the on-disk entry format. It never
// panics on arbitrary input (fuzzed); any structural defect — missing
// trailer, checksum mismatch, malformed JSON, wrong schema, bad key —
// returns an error.
func DecodeEntry(data []byte) (*Entry, error) {
	payload, trailer, ok := bytes.Cut(data, []byte("\n"))
	if !ok {
		return nil, fmt.Errorf("repo: entry has no checksum trailer")
	}
	trailer = bytes.TrimSuffix(trailer, []byte("\n"))
	hexSum, found := strings.CutPrefix(string(trailer), "crc32c:")
	if !found || len(hexSum) != 8 {
		return nil, fmt.Errorf("repo: malformed checksum trailer %q", trailer)
	}
	var want uint32
	if _, err := fmt.Sscanf(hexSum, "%08x", &want); err != nil {
		return nil, fmt.Errorf("repo: malformed checksum %q", hexSum)
	}
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, fmt.Errorf("repo: checksum mismatch: entry says %08x, payload is %08x", want, got)
	}
	var e Entry
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("repo: decode entry: %w", err)
	}
	if e.Schema != Schema {
		return nil, fmt.Errorf("repo: unknown entry schema %q (want %q)", e.Schema, Schema)
	}
	if !ValidKey(e.Key) {
		return nil, fmt.Errorf("repo: invalid entry key %q", e.Key)
	}
	return &e, nil
}

// Options configures Open.
type Options struct {
	// Metrics, when non-nil, receives repo.* counters and gauges
	// (entries, puts, hits, misses, quarantined).
	Metrics *obs.Registry
	// FaultHook, when non-nil, fires at faults.SiteRepoWrite inside the
	// commit path (after a partial temp-file write, before the rename),
	// labelled with the entry key. Test-only, like core.Options.FaultHook.
	FaultHook func(faults.Site, string)
}

// Stats reports the outcome of the last recovery scan plus live counts.
type Stats struct {
	// Entries is the number of committed, readable entries.
	Entries int
	// Quarantined is how many files the recovery scan moved aside:
	// torn temp files plus undecodable or misnamed entries.
	Quarantined int
}

// Repo is an open repository. Safe for concurrent use: lookups take a
// read lock on the in-memory index, commits serialize on a write lock
// around the temp-write + rename sequence.
type Repo struct {
	dir   string
	opts  Options
	mu    sync.RWMutex
	index map[string]*Entry
	quar  int
}

// quarantineDir is the subdirectory that collects files the recovery scan
// refused to serve.
const quarantineDir = "quarantine"

// Open opens (creating if necessary) a repository rooted at dir and runs
// the recovery scan: leftover temp files and undecodable entries are moved
// into dir/quarantine, every surviving entry is loaded into the in-memory
// index. Opening never fails because of a corrupt entry — corruption is
// quarantined, not fatal — only on I/O errors touching the directory
// itself.
func Open(dir string, opts Options) (*Repo, error) {
	if err := os.MkdirAll(filepath.Join(dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("repo: open %s: %w", dir, err)
	}
	r := &Repo{dir: dir, opts: opts, index: make(map[string]*Entry)}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("repo: open %s: %w", dir, err)
	}
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		path := filepath.Join(dir, name)
		if strings.HasSuffix(name, ".tmp") {
			// A temp file can only survive a crash between its creation and
			// the rename that would have committed it: a torn write.
			r.quarantine(path, "torn temp file")
			continue
		}
		key, isEntry := strings.CutSuffix(name, ".json")
		if !isEntry {
			continue // foreign file; leave it alone
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			r.quarantine(path, rerr.Error())
			continue
		}
		e, derr := DecodeEntry(data)
		if derr != nil {
			r.quarantine(path, derr.Error())
			continue
		}
		if e.Key != key {
			// An entry that decodes but lives under the wrong name would be
			// served for the wrong pair; that is corruption too.
			r.quarantine(path, fmt.Sprintf("entry key %s under filename %s", e.Key, name))
			continue
		}
		r.index[e.Key] = e
	}
	r.gauge("repo.entries").Set(int64(len(r.index)))
	return r, nil
}

// quarantine moves a suspect file into the quarantine subdirectory,
// suffixing the name on collision so repeated crashes never overwrite
// earlier evidence. Failures to move are not fatal — the file is simply
// skipped this run — but are counted.
func (r *Repo) quarantine(path, reason string) {
	base := filepath.Base(path)
	dst := filepath.Join(r.dir, quarantineDir, base)
	for i := 1; ; i++ {
		if _, err := os.Lstat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(r.dir, quarantineDir, fmt.Sprintf("%s.%d", base, i))
	}
	if err := os.Rename(path, dst); err == nil {
		// Best-effort breadcrumb for the operator: why the file was pulled.
		_ = os.WriteFile(dst+".reason", []byte(reason+"\n"), 0o644)
	}
	r.quar++
	r.counter("repo.quarantined").Inc()
}

// Dir returns the repository root directory.
func (r *Repo) Dir() string { return r.dir }

// Stats returns live repository statistics.
func (r *Repo) Stats() Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return Stats{Entries: len(r.index), Quarantined: r.quar}
}

// Get returns the committed entry for key, if any. Served from the
// in-memory index — the recovery scan already paid for the disk reads.
func (r *Repo) Get(key string) (*Entry, bool) {
	r.mu.RLock()
	e, ok := r.index[key]
	r.mu.RUnlock()
	if ok {
		r.counter("repo.hits").Inc()
	} else {
		r.counter("repo.misses").Inc()
	}
	return e, ok
}

// Keys returns the committed keys in sorted order.
func (r *Repo) Keys() []string {
	r.mu.RLock()
	keys := make([]string, 0, len(r.index))
	for k := range r.index {
		keys = append(keys, k)
	}
	r.mu.RUnlock()
	sort.Strings(keys)
	return keys
}

// Put commits an entry: atomic temp-file write + rename keyed by
// e.Key, then index update. An existing complete entry is never
// downgraded — a partial Put against a committed complete mapping is a
// no-op (the complete answer is strictly better) — while a complete Put
// upgrades a partial entry in place.
func (r *Repo) Put(e *Entry) error {
	if e == nil {
		return fmt.Errorf("repo: nil entry")
	}
	if !ValidKey(e.Key) {
		return fmt.Errorf("repo: invalid entry key %q", e.Key)
	}
	stamped := *e
	stamped.Schema = Schema
	if stamped.CreatedAt.IsZero() {
		stamped.CreatedAt = time.Now().UTC()
	}
	data, err := EncodeEntry(&stamped)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.index[stamped.Key]; ok && stamped.Partial && !prev.Partial {
		return nil
	}
	if err := r.commit(&stamped, data); err != nil {
		return err
	}
	r.index[stamped.Key] = &stamped
	r.counter("repo.puts").Inc()
	r.gauge("repo.entries").Set(int64(len(r.index)))
	return nil
}

// commit writes data for e under the write lock: temp file in the same
// directory (rename must not cross filesystems), fsync, atomic rename.
// The fault hook fires after a deliberately partial first write — a panic
// there leaves exactly the torn temp file a real crash would.
func (r *Repo) commit(e *Entry, data []byte) error {
	final := filepath.Join(r.dir, e.Key+".json")
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("repo: put %s: %w", e.Key, err)
	}
	// Written in two halves so the injected crash point sits mid-entry:
	// the torn file is neither empty nor decodable.
	half := len(data) / 2
	if _, err := f.Write(data[:half]); err != nil {
		f.Close()
		return fmt.Errorf("repo: put %s: %w", e.Key, err)
	}
	if r.opts.FaultHook != nil {
		r.opts.FaultHook(faults.SiteRepoWrite, e.Key)
	}
	if _, err := f.Write(data[half:]); err != nil {
		f.Close()
		return fmt.Errorf("repo: put %s: %w", e.Key, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("repo: put %s: sync: %w", e.Key, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("repo: put %s: close: %w", e.Key, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("repo: put %s: commit: %w", e.Key, err)
	}
	return nil
}

func (r *Repo) counter(name string) *obs.Counter { return r.opts.Metrics.Counter(name) }
func (r *Repo) gauge(name string) *obs.Gauge     { return r.opts.Metrics.Gauge(name) }
