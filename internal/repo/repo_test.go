package repo

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tupelo/internal/faults"
	"tupelo/internal/relation"
)

func testPair(t *testing.T) (src, tgt *relation.Database) {
	t.Helper()
	src = relation.MustDatabase(relation.MustNew("Emp", []string{"nm", "dept"},
		relation.Tuple{"Alice", "Sales"}, relation.Tuple{"Bob", "Dev"}))
	tgt = relation.MustDatabase(relation.MustNew("Employee", []string{"Name", "Dept"},
		relation.Tuple{"Alice", "Sales"}, relation.Tuple{"Bob", "Dev"}))
	return src, tgt
}

func testEntry(key string) *Entry {
	return &Entry{
		Schema:    Schema,
		Key:       key,
		SourceKey: key[:32],
		TargetKey: key[32:],
		Expr:      "rename_rel[Emp->Employee]\nrename_att[Employee.nm->Name]",
		Algorithm: "rbfs",
		Heuristic: "cosine",
		K:         1000,
		Examined:  42,
		Tenant:    "acme",
		CreatedAt: time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC),
	}
}

func TestPairKeyShape(t *testing.T) {
	src, tgt := testPair(t)
	key := PairKey(src, tgt)
	if !ValidKey(key) {
		t.Fatalf("PairKey produced invalid key %q", key)
	}
	if rev := PairKey(tgt, src); rev == key {
		t.Fatalf("PairKey must be direction-sensitive, got %q both ways", key)
	}
	if again := PairKey(src, tgt); again != key {
		t.Fatalf("PairKey not deterministic: %q vs %q", key, again)
	}
}

func TestPutGetAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	src, tgt := testPair(t)
	key := PairKey(src, tgt)

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get(key); ok {
		t.Fatal("Get on empty repo reported a hit")
	}
	if err := r.Put(testEntry(key)); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Get(key)
	if !ok || got.Expr != testEntry(key).Expr {
		t.Fatalf("Get after Put = %+v, %v", got, ok)
	}

	// A fresh Open over the same directory must serve the committed entry.
	r2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got2, ok := r2.Get(key)
	if !ok {
		t.Fatal("entry lost across reopen")
	}
	if got2.Expr != got.Expr || got2.Tenant != got.Tenant || !got2.CreatedAt.Equal(got.CreatedAt) {
		t.Fatalf("entry mutated across reopen: %+v vs %+v", got2, got)
	}
	if st := r2.Stats(); st.Entries != 1 || st.Quarantined != 0 {
		t.Fatalf("Stats after clean reopen = %+v", st)
	}
}

func TestPartialNeverDowngradesComplete(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ab", 32)
	complete := testEntry(key)
	if err := r.Put(complete); err != nil {
		t.Fatal(err)
	}
	partial := testEntry(key)
	partial.Partial = true
	partial.Expr = "rename_rel[Emp->Employee]"
	if err := r.Put(partial); err != nil {
		t.Fatal(err)
	}
	got, _ := r.Get(key)
	if got.Partial || got.Expr != complete.Expr {
		t.Fatalf("partial Put downgraded a complete entry: %+v", got)
	}

	// The reverse direction must upgrade in place.
	key2 := strings.Repeat("cd", 32)
	p2 := testEntry(key2)
	p2.Partial = true
	if err := r.Put(p2); err != nil {
		t.Fatal(err)
	}
	c2 := testEntry(key2)
	if err := r.Put(c2); err != nil {
		t.Fatal(err)
	}
	if got, _ := r.Get(key2); got.Partial {
		t.Fatalf("complete Put failed to upgrade a partial entry: %+v", got)
	}
}

func TestRejectsInvalidKeys(t *testing.T) {
	r, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "short", strings.Repeat("g", 64), strings.Repeat("A", 64), "../" + strings.Repeat("a", 61)} {
		e := testEntry(strings.Repeat("ab", 32))
		e.Key = bad
		if err := r.Put(e); err == nil {
			t.Errorf("Put accepted invalid key %q", bad)
		}
	}
}

// TestConcurrentSameKey drives concurrent reads and writes of one
// fingerprint key under -race: the index and commit path must be
// race-free and the entry must never be observed torn.
func TestConcurrentSameKey(t *testing.T) {
	r, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("0f", 32)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				e := testEntry(key)
				e.Examined = w*100 + i
				if err := r.Put(e); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if e, ok := r.Get(key); ok {
					if e.Key != key || e.Expr == "" {
						t.Errorf("torn read: %+v", e)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if st := r.Stats(); st.Entries != 1 {
		t.Fatalf("Stats after concurrent same-key writes = %+v", st)
	}
	// The file on disk must decode cleanly after the dust settles.
	data, err := os.ReadFile(filepath.Join(r.Dir(), key+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeEntry(data); err != nil {
		t.Fatalf("committed file undecodable: %v", err)
	}
}

// TestCrashRecoveryMidWrite kills the commit path mid-write with an
// injected panic (a process crash in miniature), restarts the repository,
// and asserts the torn write is quarantined while every previously
// committed mapping is still served.
func TestCrashRecoveryMidWrite(t *testing.T) {
	dir := t.TempDir()
	committed := strings.Repeat("aa", 32)
	victim := strings.Repeat("bb", 32)

	inj := faults.NewInjector(1, faults.Fault{Site: faults.SiteRepoWrite, Match: victim})
	r, err := Open(dir, Options{FaultHook: inj.Hit})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Put(testEntry(committed)); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("injected crash did not fire")
			}
		}()
		_ = r.Put(testEntry(victim))
	}()
	if _, err := os.Stat(filepath.Join(dir, victim+".json.tmp")); err != nil {
		t.Fatalf("crash mid-write left no torn temp file: %v", err)
	}

	// Restart: the torn temp file is quarantined, the committed entry lives.
	r2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := r2.Stats()
	if st.Entries != 1 || st.Quarantined != 1 {
		t.Fatalf("recovery Stats = %+v, want 1 entry + 1 quarantined", st)
	}
	if _, ok := r2.Get(committed); !ok {
		t.Fatal("committed entry lost after crash recovery")
	}
	if _, ok := r2.Get(victim); ok {
		t.Fatal("torn entry served after crash recovery")
	}
	qfiles, err := filepath.Glob(filepath.Join(dir, quarantineDir, victim+".json.tmp*"))
	if err != nil || len(qfiles) == 0 {
		t.Fatalf("torn temp file not quarantined: %v %v", qfiles, err)
	}
	// The victim pair is still writable after recovery.
	if err := r2.Put(testEntry(victim)); err != nil {
		t.Fatal(err)
	}
	if _, ok := r2.Get(victim); !ok {
		t.Fatal("victim key unwritable after recovery")
	}
}

// TestRecoveryQuarantinesCorruptEntries covers committed-then-corrupted
// files: truncation, bit flips in the payload, and a decodable entry
// renamed under the wrong key.
func TestRecoveryQuarantinesCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 4)
	for i := range keys {
		keys[i] = strings.Repeat(fmt.Sprintf("%02x", 0xa0+i), 32)
		if err := r.Put(testEntry(keys[i])); err != nil {
			t.Fatal(err)
		}
	}
	// keys[0] stays good; truncate keys[1]; flip a byte in keys[2]; move
	// keys[3]'s file under a wrong (but valid) key name.
	path := func(k string) string { return filepath.Join(dir, k+".json") }
	data, _ := os.ReadFile(path(keys[1]))
	if err := os.WriteFile(path(keys[1]), data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path(keys[2]))
	data[2] ^= 0xff
	if err := os.WriteFile(path(keys[2]), data, 0o644); err != nil {
		t.Fatal(err)
	}
	wrong := strings.Repeat("ff", 32)
	if err := os.Rename(path(keys[3]), path(wrong)); err != nil {
		t.Fatal(err)
	}

	r2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := r2.Stats()
	if st.Entries != 1 || st.Quarantined != 3 {
		t.Fatalf("recovery Stats = %+v, want 1 entry + 3 quarantined", st)
	}
	if _, ok := r2.Get(keys[0]); !ok {
		t.Fatal("pristine entry lost in recovery")
	}
	for _, k := range []string{keys[1], keys[2], keys[3], wrong} {
		if _, ok := r2.Get(k); ok {
			t.Errorf("corrupt entry %s served after recovery", k[:8])
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := testEntry(strings.Repeat("ab", 32))
	e.Partial = true
	data, err := EncodeEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEntry(data)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *e {
		t.Fatalf("round trip mutated entry:\n got %+v\nwant %+v", got, e)
	}
}
