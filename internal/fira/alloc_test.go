package fira

import (
	"fmt"
	"testing"

	"tupelo/internal/relation"
)

// allocTable builds an n-row, three-column relation with distinct values.
func allocTable(name string, n int) *relation.Relation {
	b, err := relation.NewBuilder(name, []string{"A", "B", "C"})
	if err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		if err := b.Add(relation.Tuple{
			fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i), fmt.Sprintf("c%d", i),
		}); err != nil {
			panic(err)
		}
	}
	return b.Relation()
}

// opAllocs measures the allocations of applying op to a database holding an
// n-row relation (plus whatever extra relations mk adds).
func opAllocs(t *testing.T, op Op, db *relation.Database) float64 {
	t.Helper()
	return testing.AllocsPerRun(10, func() {
		if _, err := op.Apply(db, nil); err != nil {
			t.Fatal(err)
		}
	})
}

// TestOpApplyAllocsLinear pins the batch-builder conversion of the fira
// operators: doubling the input must roughly double allocations (ratio ≈ 2
// for linear construction), not quadruple them as the old one-copy-on-write
// -Insert-per-row construction did (ratio ≈ 4). The threshold of 3 sits
// between the two regimes with slack for constant terms.
func TestOpApplyAllocsLinear(t *testing.T) {
	const n = 64
	cases := []struct {
		name string
		op   Op
		mk   func(rows int) *relation.Database
	}{
		{
			name: "demote",
			op:   Demote{Rel: "R"},
			mk: func(rows int) *relation.Database {
				return relation.MustDatabase(allocTable("R", rows))
			},
		},
		{
			name: "product",
			op:   Product{Left: "R", Right: "S"},
			mk: func(rows int) *relation.Database {
				s := relation.MustNew("S", []string{"X"}, relation.Tuple{"x"}, relation.Tuple{"y"})
				return relation.MustDatabase(allocTable("R", rows), s)
			},
		},
		{
			name: "partition",
			op:   Partition{Rel: "R", Attr: "A"},
			mk: func(rows int) *relation.Database {
				// Two partitions, rows/2 tuples each: pre-builder each tuple
				// cloned its whole partition on insert.
				b, err := relation.NewBuilder("R", []string{"A", "B", "C"})
				if err != nil {
					panic(err)
				}
				for i := 0; i < rows; i++ {
					if err := b.Add(relation.Tuple{
						fmt.Sprintf("P%d", i%2), fmt.Sprintf("b%d", i), fmt.Sprintf("c%d", i),
					}); err != nil {
						panic(err)
					}
				}
				return relation.MustDatabase(b.Relation())
			},
		},
		{
			name: "union",
			op:   Union{Left: "R", Right: "S"},
			mk: func(rows int) *relation.Database {
				return relation.MustDatabase(allocTable("R", rows), allocTable("S", rows))
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			small := opAllocs(t, tc.op, tc.mk(n))
			big := opAllocs(t, tc.op, tc.mk(2*n))
			if small == 0 {
				t.Fatalf("no allocations measured for %s", tc.name)
			}
			if ratio := big / small; ratio >= 3 {
				t.Fatalf("%s allocations grew %.1fx when input doubled (small=%.0f big=%.0f); construction is superlinear",
					tc.name, ratio, small, big)
			}
		})
	}
}
