// Package fira implements the transformation language L of "Data Mapping as
// Search" (EDBT 2006, §2.1, Table 1), a fragment of the Federated
// Interoperable Relational Algebra (FIRA, Wyss & Robertson 2005) extended
// with the λ operator for complex semantic functions (§4).
//
// The operators perform dynamic data–metadata restructuring:
//
//	→B_A   dereference column A into a new column B
//	↑A_B   promote the values of column A to attribute names carrying B's values
//	↓      demote metadata (product with the relation's metadata table)
//	℘A     partition a relation into one relation per value of column A
//	×      cartesian product
//	π̄A     drop column A
//	µA     merge tuples with compatible values on column A
//	ρ      rename an attribute or a relation (schema matching)
//	λB_f,Ā apply complex function f to columns Ā, producing column B
//
// Absent values that arise during restructuring (e.g. after ↑) are
// represented by the empty string; µ merges tuples whose non-absent values
// agree. An Expr is a sequence of operators; evaluating it against a source
// database yields the mapped database. Expressions print in a stable
// textual form that Parse reads back.
package fira

import (
	"fmt"
	"sort"
	"strings"

	"tupelo/internal/lambda"
	"tupelo/internal/relation"
)

// Op is a single transformation operator of the language L.
type Op interface {
	// Apply evaluates the operator against a database, returning a new
	// database. The input is never mutated. The registry resolves λ
	// functions and may be nil for expressions without λ.
	Apply(db *relation.Database, reg *lambda.Registry) (*relation.Database, error)
	// String renders the operator in the canonical textual syntax
	// understood by Parse.
	String() string
	// Pretty renders the operator in notation close to the paper's.
	Pretty() string
}

// relOf returns the named relation or an error mentioning the operator.
func relOf(db *relation.Database, name, op string) (*relation.Relation, error) {
	r, ok := db.Relation(name)
	if !ok {
		return nil, fmt.Errorf("fira: %s: no relation %q", op, name)
	}
	return r, nil
}

// RenameRel is ρ^rel_{From→To}: rename relation From to To.
type RenameRel struct {
	From, To string
}

// Apply implements Op.
func (o RenameRel) Apply(db *relation.Database, _ *lambda.Registry) (*relation.Database, error) {
	r, err := relOf(db, o.From, "rename_rel")
	if err != nil {
		return nil, err
	}
	if o.To == o.From {
		return nil, fmt.Errorf("fira: rename_rel: %q to itself", o.From)
	}
	if _, clash := db.Relation(o.To); clash {
		return nil, fmt.Errorf("fira: rename_rel: relation %q already exists", o.To)
	}
	renamed, err := r.WithName(o.To)
	if err != nil {
		return nil, fmt.Errorf("fira: rename_rel: %v", err)
	}
	out, _, err := db.ReplaceRelation(o.From, renamed)
	return out, err
}

func (o RenameRel) String() string { return fmt.Sprintf("rename_rel[%s->%s]", o.From, o.To) }
func (o RenameRel) Pretty() string { return fmt.Sprintf("ρ^rel_{%s→%s}", o.From, o.To) }

// RenameAtt is ρ^att_{From→To}(Rel): rename attribute From to To in Rel.
type RenameAtt struct {
	Rel, From, To string
}

// Apply implements Op.
func (o RenameAtt) Apply(db *relation.Database, _ *lambda.Registry) (*relation.Database, error) {
	r, err := relOf(db, o.Rel, "rename_att")
	if err != nil {
		return nil, err
	}
	renamed, err := r.WithAttrRenamed(o.From, o.To)
	if err != nil {
		return nil, fmt.Errorf("fira: rename_att: %v", err)
	}
	return db.WithRelation(renamed), nil
}

func (o RenameAtt) String() string {
	return fmt.Sprintf("rename_att[%s,%s->%s]", o.Rel, o.From, o.To)
}
func (o RenameAtt) Pretty() string { return fmt.Sprintf("ρ^att_{%s→%s}(%s)", o.From, o.To, o.Rel) }

// Drop is π̄_Attr(Rel): drop column Attr from Rel.
type Drop struct {
	Rel, Attr string
}

// Apply implements Op.
func (o Drop) Apply(db *relation.Database, _ *lambda.Registry) (*relation.Database, error) {
	r, err := relOf(db, o.Rel, "drop")
	if err != nil {
		return nil, err
	}
	dropped, err := r.WithoutAttr(o.Attr)
	if err != nil {
		return nil, fmt.Errorf("fira: drop: %v", err)
	}
	return db.WithRelation(dropped), nil
}

func (o Drop) String() string { return fmt.Sprintf("drop[%s,%s]", o.Rel, o.Attr) }
func (o Drop) Pretty() string { return fmt.Sprintf("π̄_{%s}(%s)", o.Attr, o.Rel) }

// Promote is ↑^ValueAttr_NameAttr(Rel), Table 1's "Promote Column A to
// Metadata": for every tuple t, append a new column named t[NameAttr] with
// value t[ValueAttr]. Tuples receive the empty string in promoted columns
// created by other tuples.
type Promote struct {
	Rel       string
	NameAttr  string // the column whose values become attribute names (A)
	ValueAttr string // the column supplying the values (B)
}

// Apply implements Op.
func (o Promote) Apply(db *relation.Database, _ *lambda.Registry) (*relation.Database, error) {
	r, err := relOf(db, o.Rel, "promote")
	if err != nil {
		return nil, err
	}
	if !r.HasAttr(o.NameAttr) {
		return nil, fmt.Errorf("fira: promote: %s has no attribute %q", o.Rel, o.NameAttr)
	}
	if !r.HasAttr(o.ValueAttr) {
		return nil, fmt.Errorf("fira: promote: %s has no attribute %q", o.Rel, o.ValueAttr)
	}
	names, err := r.ValuesOf(o.NameAttr)
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	for _, n := range names {
		if n == "" {
			return nil, fmt.Errorf("fira: promote: empty value in name column %q", o.NameAttr)
		}
		if r.HasAttr(n) {
			return nil, fmt.Errorf("fira: promote: value %q collides with an existing attribute of %s", n, o.Rel)
		}
	}
	// The new columns are gathers over the name and value symbol columns:
	// row i of column n carries the value cell where the name cell equals n,
	// the absent marker elsewhere. Attribute creation stays in sorted string
	// order (names above), so schema order is unchanged from the string path.
	nameCol := r.Column(r.AttrIndex(o.NameAttr))
	valCol := r.Column(r.AttrIndex(o.ValueAttr))
	empty := relation.EmptySymbol()
	out := r
	for _, n := range names {
		nSym, ok := relation.LookupSymbol(n)
		if !ok {
			return nil, fmt.Errorf("fira: promote: value %q vanished from the dictionary", n)
		}
		col := make([]relation.Symbol, len(nameCol))
		for i, s := range nameCol {
			if s == nSym {
				col[i] = valCol[i]
			} else {
				col[i] = empty
			}
		}
		out, err = out.WithColumnSyms(n, col)
		if err != nil {
			return nil, fmt.Errorf("fira: promote: %v", err)
		}
	}
	return db.WithRelation(out), nil
}

func (o Promote) String() string {
	return fmt.Sprintf("promote[%s,%s,%s]", o.Rel, o.NameAttr, o.ValueAttr)
}
func (o Promote) Pretty() string {
	return fmt.Sprintf("↑^{%s}_{%s}(%s)", o.ValueAttr, o.NameAttr, o.Rel)
}

// DemoteRelCol and DemoteAttCol are the reserved column names introduced by
// ↓. They can be renamed afterwards with ρ^att.
const (
	DemoteRelCol = "_REL"
	DemoteAttCol = "_ATT"
)

// Demote is ↓(Rel), Table 1's "Demote Metadata": the cartesian product of
// Rel with a binary table containing Rel's metadata — one (relation name,
// attribute name) row per attribute. The metadata lands in the reserved
// columns _REL and _ATT; combined with → (dereference) this moves attribute
// names and their values back into data, the inverse direction of ↑.
type Demote struct {
	Rel string
}

// Apply implements Op.
func (o Demote) Apply(db *relation.Database, _ *lambda.Registry) (*relation.Database, error) {
	r, err := relOf(db, o.Rel, "demote")
	if err != nil {
		return nil, err
	}
	if r.HasAttr(DemoteRelCol) || r.HasAttr(DemoteAttCol) {
		return nil, fmt.Errorf("fira: demote: %s already has a %s or %s column", o.Rel, DemoteRelCol, DemoteAttCol)
	}
	if r.Arity() == 0 {
		return nil, fmt.Errorf("fira: demote: %s has no attributes", o.Rel)
	}
	// Column splice: output row (i, k) is input row i extended with
	// (o.Rel, attrs[k]), in the same (row-major, then attribute) order the
	// row-at-a-time construction produced. Distinct input rows extended with
	// distinct attribute tags cannot collide, so no deduplication runs.
	arity, n := r.Arity(), r.Len()
	total := n * arity
	attrSyms := r.AttrSymbols()
	cols := make([][]relation.Symbol, arity+2)
	for j := 0; j < arity; j++ {
		src := r.Column(j)
		c := make([]relation.Symbol, 0, total)
		for i := 0; i < n; i++ {
			v := src[i]
			for k := 0; k < arity; k++ {
				c = append(c, v)
			}
		}
		cols[j] = c
	}
	relSym := r.NameSymbol()
	relCol := make([]relation.Symbol, total)
	for i := range relCol {
		relCol[i] = relSym
	}
	attCol := make([]relation.Symbol, 0, total)
	for i := 0; i < n; i++ {
		attCol = append(attCol, attrSyms...)
	}
	cols[arity], cols[arity+1] = relCol, attCol
	out, err := relation.NewFromColumns(o.Rel, append(r.Attrs(), DemoteRelCol, DemoteAttCol), cols, total)
	if err != nil {
		return nil, err
	}
	return db.WithRelation(out), nil
}

func (o Demote) String() string { return fmt.Sprintf("demote[%s]", o.Rel) }
func (o Demote) Pretty() string { return fmt.Sprintf("↓(%s)", o.Rel) }

// Deref is →^NewAttr_PtrAttr(Rel), Table 1's "Dereference Column A on B":
// for every tuple t, append a new column NewAttr with value t[t[PtrAttr]] —
// the value of the attribute *named by* t's PtrAttr value.
type Deref struct {
	Rel     string
	PtrAttr string // column A whose values name attributes
	NewAttr string // new column B receiving the dereferenced values
}

// Apply implements Op.
func (o Deref) Apply(db *relation.Database, _ *lambda.Registry) (*relation.Database, error) {
	r, err := relOf(db, o.Rel, "deref")
	if err != nil {
		return nil, err
	}
	pj := r.AttrIndex(o.PtrAttr)
	if pj < 0 {
		return nil, fmt.Errorf("fira: deref: %s has no attribute %q", o.Rel, o.PtrAttr)
	}
	// A pointer cell names an attribute iff its symbol equals that
	// attribute's symbol (equal strings intern identically), so the
	// indirection resolves in symbol space.
	ptrCol := r.Column(pj)
	attrSyms := r.AttrSymbols()
	col := make([]relation.Symbol, r.Len())
	for i, p := range ptrCol {
		aj := -1
		for j, a := range attrSyms {
			if a == p {
				aj = j
				break
			}
		}
		if aj < 0 {
			return nil, fmt.Errorf("fira: deref: tuple %d of %s points at %q, which is not an attribute", i, o.Rel, p.String())
		}
		col[i] = r.Column(aj)[i]
	}
	out, err := r.WithColumnSyms(o.NewAttr, col)
	if err != nil {
		return nil, fmt.Errorf("fira: deref: %v", err)
	}
	return db.WithRelation(out), nil
}

func (o Deref) String() string {
	return fmt.Sprintf("deref[%s,%s->%s]", o.Rel, o.PtrAttr, o.NewAttr)
}
func (o Deref) Pretty() string {
	return fmt.Sprintf("→^{%s}_{%s}(%s)", o.NewAttr, o.PtrAttr, o.Rel)
}

// Partition is ℘_Attr(Rel): for each value v of column Attr, create a new
// relation named v holding the tuples with t[Attr] = v. The input relation
// is consumed (removed from the database), matching FIRA's semantics of
// restructuring a relation into a set of relations.
type Partition struct {
	Rel, Attr string
}

// Apply implements Op.
func (o Partition) Apply(db *relation.Database, _ *lambda.Registry) (*relation.Database, error) {
	r, err := relOf(db, o.Rel, "partition")
	if err != nil {
		return nil, err
	}
	values, err := r.ValuesOf(o.Attr)
	if err != nil {
		return nil, fmt.Errorf("fira: partition: %v", err)
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("fira: partition: %s is empty", o.Rel)
	}
	rest := db.WithoutRelation(o.Rel)
	for _, v := range values {
		if v == "" {
			return nil, fmt.Errorf("fira: partition: empty value in column %q", o.Attr)
		}
		if _, clash := rest.Relation(v); clash {
			return nil, fmt.Errorf("fira: partition: relation %q already exists", v)
		}
	}
	// One pass over the partition column groups the row indices; each part
	// is then an index-gather over the symbol columns — subsets of distinct
	// rows stay distinct, so no deduplication runs. Parts are created in
	// sorted value order, as the string path did.
	keyCol := r.Column(r.AttrIndex(o.Attr))
	bySym := make(map[relation.Symbol][]int, len(values))
	for i, s := range keyCol {
		bySym[s] = append(bySym[s], i)
	}
	attrs := r.Attrs()
	arity := r.Arity()
	for _, v := range values {
		sym, ok := relation.LookupSymbol(v)
		if !ok {
			return nil, fmt.Errorf("fira: partition: value %q vanished from the dictionary", v)
		}
		idxs := bySym[sym]
		cols := make([][]relation.Symbol, arity)
		for j := 0; j < arity; j++ {
			src := r.Column(j)
			c := make([]relation.Symbol, len(idxs))
			for k, i := range idxs {
				c[k] = src[i]
			}
			cols[j] = c
		}
		part, err := relation.NewFromColumns(v, attrs, cols, len(idxs))
		if err != nil {
			return nil, err
		}
		rest = rest.WithRelation(part)
	}
	return rest, nil
}

func (o Partition) String() string { return fmt.Sprintf("partition[%s,%s]", o.Rel, o.Attr) }
func (o Partition) Pretty() string { return fmt.Sprintf("℘_{%s}(%s)", o.Attr, o.Rel) }

// Product is ×(Left, Right): the cartesian product of two relations. The
// result replaces Left (keeping its name); Right is untouched. Attribute
// sets must be disjoint.
type Product struct {
	Left, Right string
}

// Apply implements Op.
func (o Product) Apply(db *relation.Database, _ *lambda.Registry) (*relation.Database, error) {
	l, err := relOf(db, o.Left, "product")
	if err != nil {
		return nil, err
	}
	r, err := relOf(db, o.Right, "product")
	if err != nil {
		return nil, err
	}
	if o.Left == o.Right {
		return nil, fmt.Errorf("fira: product: %q with itself", o.Left)
	}
	for _, a := range r.Attrs() {
		if l.HasAttr(a) {
			return nil, fmt.Errorf("fira: product: attribute %q appears in both %s and %s", a, o.Left, o.Right)
		}
	}
	// Column splice in (left row, right row) order: left columns repeat each
	// value |r| times, right columns tile |l| times. Distinct × distinct
	// pairs concatenate to distinct rows, so no deduplication runs. (The
	// degenerate zero-arity × zero-arity case stays within that invariant:
	// such relations hold at most one empty tuple each.)
	ln, rn := l.Len(), r.Len()
	total := ln * rn
	la, ra := l.Arity(), r.Arity()
	cols := make([][]relation.Symbol, la+ra)
	for j := 0; j < la; j++ {
		src := l.Column(j)
		c := make([]relation.Symbol, 0, total)
		for i := 0; i < ln; i++ {
			v := src[i]
			for k := 0; k < rn; k++ {
				c = append(c, v)
			}
		}
		cols[j] = c
	}
	for j := 0; j < ra; j++ {
		src := r.Column(j)
		c := make([]relation.Symbol, 0, total)
		for i := 0; i < ln; i++ {
			c = append(c, src...)
		}
		cols[la+j] = c
	}
	out, err := relation.NewFromColumns(o.Left, append(l.Attrs(), r.Attrs()...), cols, total)
	if err != nil {
		return nil, err
	}
	return db.WithRelation(out), nil
}

func (o Product) String() string { return fmt.Sprintf("product[%s,%s]", o.Left, o.Right) }
func (o Product) Pretty() string { return fmt.Sprintf("×(%s,%s)", o.Left, o.Right) }

// Merge is µ_Attr(Rel) (Table 1; Wyss & Robertson's PIVOT/UNPIVOT merge):
// repeatedly coalesce pairs of tuples that share the value of column Attr
// and are compatible elsewhere — on every other attribute their values are
// equal or at least one is absent (empty). The coalesced tuple takes the
// non-absent value at each position. Merging runs to fixpoint and is
// deterministic (tuples are processed in canonical order).
type Merge struct {
	Rel, Attr string
}

// Apply implements Op.
func (o Merge) Apply(db *relation.Database, _ *lambda.Registry) (*relation.Database, error) {
	r, err := relOf(db, o.Rel, "merge")
	if err != nil {
		return nil, err
	}
	j := r.AttrIndex(o.Attr)
	if j < 0 {
		return nil, fmt.Errorf("fira: merge: %s has no attribute %q", o.Rel, o.Attr)
	}
	// Group symbol rows by the merge attribute. Group ordering and the
	// canonical order within groups both compare decoded strings — symbol
	// numbering depends on interning order, so sorting symbols directly
	// would make the fixpoint's result run-dependent. Each row decodes
	// exactly once.
	type mergeRow struct {
		syms []relation.Symbol
		strs []string
	}
	groups := make(map[relation.Symbol][]mergeRow)
	var keys []relation.Symbol
	for i := 0; i < r.Len(); i++ {
		syms := make([]relation.Symbol, r.Arity())
		for jj := 0; jj < r.Arity(); jj++ {
			syms[jj] = r.Column(jj)[i]
		}
		k := syms[j]
		if _, seen := groups[k]; !seen {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], mergeRow{syms: syms, strs: relation.SymbolStrings(syms)})
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a].String() < keys[b].String() })
	out, err := relation.NewBuilder(o.Rel, r.Attrs())
	if err != nil {
		return nil, err
	}
	empty := relation.EmptySymbol()
	for _, k := range keys {
		rows := groups[k]
		sort.Slice(rows, func(a, b int) bool {
			ra, rb := rows[a].strs, rows[b].strs
			for i := range ra {
				if ra[i] != rb[i] {
					return ra[i] < rb[i]
				}
			}
			return false
		})
		syms := make([][]relation.Symbol, len(rows))
		for i, row := range rows {
			syms[i] = row.syms
		}
		for _, row := range mergeGroup(syms, empty) {
			if err := out.AddSymbols(row); err != nil {
				return nil, err
			}
		}
	}
	return db.WithRelation(out.Relation()), nil
}

// mergeGroup coalesces compatible tuples within one merge group to fixpoint.
func mergeGroup(rows [][]relation.Symbol, empty relation.Symbol) [][]relation.Symbol {
	changed := true
	for changed {
		changed = false
	outer:
		for i := 0; i < len(rows); i++ {
			for k := i + 1; k < len(rows); k++ {
				if m, ok := coalesce(rows[i], rows[k], empty); ok {
					rows[i] = m
					rows = append(rows[:k], rows[k+1:]...)
					changed = true
					break outer
				}
			}
		}
	}
	return rows
}

// coalesce merges two tuples if they are compatible: at every position the
// values are equal or at least one is absent (the empty-string symbol).
func coalesce(a, b []relation.Symbol, empty relation.Symbol) ([]relation.Symbol, bool) {
	out := make([]relation.Symbol, len(a))
	for i := range a {
		switch {
		case a[i] == b[i]:
			out[i] = a[i]
		case a[i] == empty:
			out[i] = b[i]
		case b[i] == empty:
			out[i] = a[i]
		default:
			return nil, false
		}
	}
	return out, true
}

func (o Merge) String() string { return fmt.Sprintf("merge[%s,%s]", o.Rel, o.Attr) }
func (o Merge) Pretty() string { return fmt.Sprintf("µ_{%s}(%s)", o.Attr, o.Rel) }

// Apply is λ^Out_{Func,In}(Rel) (§4): for every tuple, apply the registered
// complex function Func to the values of the In attributes and store the
// result in the new attribute Out. Following the paper's semantics — "the
// operator is well defined for any tuple T of appropriate schema (and is
// the identity mapping on T otherwise)" — a tuple on which the function
// fails (e.g. a non-numeric value reaching an arithmetic function after
// metadata demotion) receives the absent value instead of aborting the
// mapping. Structural errors (missing relation or attributes, unknown
// function, arity mismatch) still fail the operator.
type Apply struct {
	Rel  string
	Func string
	In   []string
	Out  string
}

// Apply implements Op.
func (o Apply) Apply(db *relation.Database, reg *lambda.Registry) (*relation.Database, error) {
	r, err := relOf(db, o.Rel, "apply")
	if err != nil {
		return nil, err
	}
	if reg == nil {
		return nil, fmt.Errorf("fira: apply: no function registry supplied for %s", o.Func)
	}
	f, ok := reg.Lookup(o.Func)
	if !ok {
		return nil, fmt.Errorf("fira: apply: unknown function %q", o.Func)
	}
	if f.Arity != len(o.In) {
		return nil, fmt.Errorf("fira: apply: %s has arity %d, got %d inputs", o.Func, f.Arity, len(o.In))
	}
	for _, a := range o.In {
		if !r.HasAttr(a) {
			return nil, fmt.Errorf("fira: apply: %s has no attribute %q", o.Rel, a)
		}
	}
	col := make([]string, r.Len())
	args := make([]string, len(o.In))
	for i := 0; i < r.Len(); i++ {
		for k, a := range o.In {
			args[k], _ = r.Value(i, a)
		}
		v, err := f.Call(args)
		if err != nil {
			// Identity on tuples the function is undefined for (§4): the
			// new column holds the absent value for this tuple.
			col[i] = ""
			continue
		}
		col[i] = v
	}
	out, err := r.WithColumn(o.Out, col)
	if err != nil {
		return nil, fmt.Errorf("fira: apply: %v", err)
	}
	return db.WithRelation(out), nil
}

func (o Apply) String() string {
	return fmt.Sprintf("apply[%s,%s:%s->%s]", o.Rel, o.Func, strings.Join(o.In, ","), o.Out)
}
func (o Apply) Pretty() string {
	return fmt.Sprintf("λ^{%s}_{%s,⟨%s⟩}(%s)", o.Out, o.Func, strings.Join(o.In, ","), o.Rel)
}
