package fira

import (
	"fmt"
	"strings"

	"tupelo/internal/lambda"
	"tupelo/internal/relation"
)

// Expr is a mapping expression: a sequence of operators applied left to
// right. The nil/empty expression is the identity mapping.
type Expr []Op

// Eval applies the expression to a database, returning the mapped database.
// The input database is never mutated. The registry resolves λ functions
// and may be nil for λ-free expressions.
func (e Expr) Eval(db *relation.Database, reg *lambda.Registry) (*relation.Database, error) {
	cur := db
	for i, op := range e {
		next, err := op.Apply(cur, reg)
		if err != nil {
			return nil, fmt.Errorf("step %d (%s): %w", i+1, op, err)
		}
		cur = next
	}
	return cur, nil
}

// Then returns a new expression with more operators appended; the receiver
// is unchanged.
func (e Expr) Then(ops ...Op) Expr {
	out := make(Expr, 0, len(e)+len(ops))
	out = append(out, e...)
	out = append(out, ops...)
	return out
}

// String renders the expression in canonical textual form: one operator per
// line in application order. Parse reads this form back.
func (e Expr) String() string {
	parts := make([]string, len(e))
	for i, op := range e {
		parts[i] = op.String()
	}
	return strings.Join(parts, "\n")
}

// Pretty renders the expression in paper-style notation, innermost
// (first-applied) operator last, as in the paper's Example 2.
func (e Expr) Pretty() string {
	parts := make([]string, len(e))
	for i, op := range e {
		parts[i] = op.Pretty()
	}
	return strings.Join(parts, " ∘ ")
}

// Compile returns a standalone mapping function closed over the expression
// and registry, suitable for repeated application to instances of the
// source schema — the paper's "final output of TUPELO is an expression for
// mapping instances of the source schema" (§2.3).
func (e Expr) Compile(reg *lambda.Registry) func(*relation.Database) (*relation.Database, error) {
	expr := e.Then() // private copy
	return func(db *relation.Database) (*relation.Database, error) {
		return expr.Eval(db, reg)
	}
}
