package fira

import (
	"testing"

	"tupelo/internal/relation"
)

func TestUnionSameSchema(t *testing.T) {
	db := relation.MustDatabase(
		relation.MustNew("L", []string{"A", "B"},
			relation.Tuple{"1", "x"},
			relation.Tuple{"2", "y"},
		),
		relation.MustNew("R", []string{"B", "A"}, // same attributes, other order
			relation.Tuple{"y", "2"},
			relation.Tuple{"z", "3"},
		),
	)
	out, err := Union{Left: "L", Right: "R"}.Apply(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, still := out.Relation("R"); still {
		t.Fatal("union should consume the right operand")
	}
	l, _ := out.Relation("L")
	if l.Len() != 3 { // (1,x), (2,y) = (y,2), (3,z): duplicate collapses
		t.Fatalf("union has %d rows, want 3:\n%s", l.Len(), l)
	}
	if l.Arity() != 2 {
		t.Fatalf("union arity = %d, want 2", l.Arity())
	}
}

func TestUnionOuterPadsAbsent(t *testing.T) {
	db := relation.MustDatabase(
		relation.MustNew("L", []string{"A"}, relation.Tuple{"1"}),
		relation.MustNew("R", []string{"A", "B"}, relation.Tuple{"2", "x"}),
	)
	out, err := Union{Left: "L", Right: "R"}.Apply(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	l, _ := out.Relation("L")
	if !l.HasAttr("B") {
		t.Fatalf("outer union should widen the schema: %v", l.Attrs())
	}
	v, _ := l.Value(0, "B")
	w, _ := l.Value(1, "B")
	if !(v == "" && w == "x") && !(v == "x" && w == "") {
		t.Fatalf("padding wrong: B values %q, %q", v, w)
	}
}

func TestUnionErrors(t *testing.T) {
	db := relation.MustDatabase(
		relation.MustNew("L", []string{"A"}, relation.Tuple{"1"}),
	)
	for _, op := range []Op{
		Union{Left: "L", Right: "L"},
		Union{Left: "L", Right: "NoSuch"},
		Union{Left: "NoSuch", Right: "L"},
	} {
		if _, err := op.Apply(db, nil); err == nil {
			t.Fatalf("%s should fail", op)
		}
	}
}

func TestUnionParseRoundTrip(t *testing.T) {
	expr := Expr{Union{Left: "L", Right: "R"}}
	back, err := Parse(expr.String())
	if err != nil || back.String() != expr.String() {
		t.Fatalf("round trip: %v, %q", err, back.String())
	}
	if back.Pretty() != "∪(L,R)" {
		t.Fatalf("Pretty = %q", back.Pretty())
	}
	if _, err := Parse("union[L]"); err == nil {
		t.Fatal("union with one operand should fail to parse")
	}
}

// Union is the inverse of partition: ℘ then ∪ (after restoring the name)
// recovers the original relation.
func TestUnionInvertsPartition(t *testing.T) {
	db := flightsB()
	parts, err := (Partition{Rel: "Prices", Attr: "Carrier"}).Apply(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	joined, err := Expr{
		Union{Left: "AirEast", Right: "JetWest"},
		RenameRel{From: "AirEast", To: "Prices"},
	}.Eval(parts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !joined.Equal(db) {
		t.Fatalf("℘ then ∪ did not round-trip:\n%s", joined)
	}
}
