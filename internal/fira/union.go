package fira

import (
	"fmt"

	"tupelo/internal/lambda"
	"tupelo/internal/relation"
)

// Union is ∪(Left, Right): the outer union of two relations, collected
// under Left's name; Right is consumed. Attributes present in only one
// operand are padded with the absent value (the empty string) in tuples
// from the other, following FIRA's outer union (Wyss & Robertson 2005,
// §4.1). The paper's Table 1 omits ∪ from the fragment L, but the full
// FIRA algebra includes it and the Fig. 1 mappings out of FlightsC (one
// relation per carrier) need it; this implementation carries it as a
// language extension, enabled in search whenever a state has more
// relations than the target wants.
type Union struct {
	Left, Right string
}

// Apply implements Op.
func (o Union) Apply(db *relation.Database, _ *lambda.Registry) (*relation.Database, error) {
	l, err := relOf(db, o.Left, "union")
	if err != nil {
		return nil, err
	}
	r, err := relOf(db, o.Right, "union")
	if err != nil {
		return nil, err
	}
	if o.Left == o.Right {
		return nil, fmt.Errorf("fira: union: %q with itself", o.Left)
	}
	// Combined schema: Left's attributes, then Right's new ones.
	attrs := l.Attrs()
	for _, a := range r.Attrs() {
		if !l.HasAttr(a) {
			attrs = append(attrs, a)
		}
	}
	out, err := relation.NewBuilder(o.Left, attrs)
	if err != nil {
		return nil, err
	}
	// Pad in symbol space: per output attribute, the source column when the
	// operand has it, the absent marker otherwise. Left rows first, then
	// right, first occurrence winning in the builder's dedupe — the same
	// order and set semantics as the string path.
	empty := relation.EmptySymbol()
	row := make([]relation.Symbol, len(attrs))
	emit := func(src *relation.Relation) error {
		cols := make([][]relation.Symbol, len(attrs))
		for j, a := range attrs {
			if k := src.AttrIndex(a); k >= 0 {
				cols[j] = src.Column(k)
			}
		}
		for i := 0; i < src.Len(); i++ {
			for j := range attrs {
				if cols[j] != nil {
					row[j] = cols[j][i]
				} else {
					row[j] = empty
				}
			}
			if err := out.AddSymbols(row); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit(l); err != nil {
		return nil, err
	}
	if err := emit(r); err != nil {
		return nil, err
	}
	return db.WithoutRelation(o.Right).WithRelation(out.Relation()), nil
}

func (o Union) String() string { return fmt.Sprintf("union[%s,%s]", o.Left, o.Right) }
func (o Union) Pretty() string { return fmt.Sprintf("∪(%s,%s)", o.Left, o.Right) }
