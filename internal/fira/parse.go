package fira

import (
	"fmt"
	"strings"
)

// Parse reads a mapping expression in the canonical textual syntax produced
// by Expr.String: one operator per line (or ';'-separated), each of the form
// name[args]. Blank lines and lines starting with '#' are ignored.
//
//	rename_rel[Prices->Flights]
//	rename_att[Prices,AgentFee->Fee]
//	drop[Prices,Route]
//	promote[Prices,Route,Cost]
//	demote[R]
//	deref[R,Ptr->New]
//	partition[R,A]
//	product[L,R]
//	union[L,R]
//	merge[R,Carrier]
//	apply[Prices,sum:Cost,AgentFee->TotalCost]
func Parse(src string) (Expr, error) {
	var expr Expr
	lineNo := 0
	for _, chunk := range strings.FieldsFunc(src, func(r rune) bool { return r == '\n' || r == ';' }) {
		lineNo++
		line := strings.TrimSpace(chunk)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		op, err := parseOp(line)
		if err != nil {
			return nil, fmt.Errorf("fira: parse: %v", err)
		}
		expr = append(expr, op)
	}
	return expr, nil
}

// MustParse is like Parse but panics on error; for tests and fixed inputs.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

func parseOp(line string) (Op, error) {
	open := strings.IndexByte(line, '[')
	if open <= 0 || !strings.HasSuffix(line, "]") {
		return nil, fmt.Errorf("%q is not of the form name[args]", line)
	}
	name := line[:open]
	args := line[open+1 : len(line)-1]
	switch name {
	case "rename_rel":
		from, to, err := splitArrow(args)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		return RenameRel{From: from, To: to}, nil
	case "rename_att":
		rel, rest, err := splitHead(args)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		from, to, err := splitArrow(rest)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		return RenameAtt{Rel: rel, From: from, To: to}, nil
	case "drop":
		parts, err := splitN(args, 2)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		return Drop{Rel: parts[0], Attr: parts[1]}, nil
	case "promote":
		parts, err := splitN(args, 3)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		return Promote{Rel: parts[0], NameAttr: parts[1], ValueAttr: parts[2]}, nil
	case "demote":
		if args == "" || strings.ContainsAny(args, ",") {
			return nil, fmt.Errorf("%s: want one relation, got %q", name, args)
		}
		return Demote{Rel: args}, nil
	case "deref":
		rel, rest, err := splitHead(args)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		ptr, out, err := splitArrow(rest)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		return Deref{Rel: rel, PtrAttr: ptr, NewAttr: out}, nil
	case "partition":
		parts, err := splitN(args, 2)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		return Partition{Rel: parts[0], Attr: parts[1]}, nil
	case "product":
		parts, err := splitN(args, 2)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		return Product{Left: parts[0], Right: parts[1]}, nil
	case "union":
		parts, err := splitN(args, 2)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		return Union{Left: parts[0], Right: parts[1]}, nil
	case "merge":
		parts, err := splitN(args, 2)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		return Merge{Rel: parts[0], Attr: parts[1]}, nil
	case "apply":
		rel, rest, err := splitHead(args)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		colon := strings.IndexByte(rest, ':')
		if colon <= 0 {
			return nil, fmt.Errorf("%s: missing function name in %q", name, rest)
		}
		fn := rest[:colon]
		ins, out, err := splitArrow(rest[colon+1:])
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		in := strings.Split(ins, ",")
		for _, a := range in {
			if a == "" {
				return nil, fmt.Errorf("%s: empty input attribute in %q", name, args)
			}
		}
		return Apply{Rel: rel, Func: fn, In: in, Out: out}, nil
	default:
		return nil, fmt.Errorf("unknown operator %q", name)
	}
}

// splitArrow splits "a->b" into non-empty halves.
func splitArrow(s string) (string, string, error) {
	i := strings.Index(s, "->")
	if i < 0 {
		return "", "", fmt.Errorf("missing -> in %q", s)
	}
	a, b := s[:i], s[i+2:]
	if a == "" || b == "" {
		return "", "", fmt.Errorf("empty side of -> in %q", s)
	}
	return a, b, nil
}

// splitHead splits "rel,rest" at the first comma.
func splitHead(s string) (string, string, error) {
	i := strings.IndexByte(s, ',')
	if i <= 0 || i == len(s)-1 {
		return "", "", fmt.Errorf("missing relation prefix in %q", s)
	}
	return s[:i], s[i+1:], nil
}

// splitN splits on commas into exactly n non-empty fields.
func splitN(s string, n int) ([]string, error) {
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("want %d fields, got %d in %q", n, len(parts), s)
	}
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("empty field in %q", s)
		}
	}
	return parts, nil
}
