package fira

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"tupelo/internal/lambda"
	"tupelo/internal/relation"
)

// The three airline databases of the paper's Fig. 1.

func flightsA() *relation.Database {
	return relation.MustDatabase(
		relation.MustNew("Flights", []string{"Carrier", "Fee", "ATL29", "ORD17"},
			relation.Tuple{"AirEast", "15", "100", "110"},
			relation.Tuple{"JetWest", "16", "200", "220"},
		),
	)
}

func flightsB() *relation.Database {
	return relation.MustDatabase(
		relation.MustNew("Prices", []string{"Carrier", "Route", "Cost", "AgentFee"},
			relation.Tuple{"AirEast", "ATL29", "100", "15"},
			relation.Tuple{"JetWest", "ATL29", "200", "16"},
			relation.Tuple{"AirEast", "ORD17", "110", "15"},
			relation.Tuple{"JetWest", "ORD17", "220", "16"},
		),
	)
}

func flightsC() *relation.Database {
	return relation.MustDatabase(
		relation.MustNew("AirEast", []string{"Route", "BaseCost", "TotalCost"},
			relation.Tuple{"ATL29", "100", "115"},
			relation.Tuple{"ORD17", "110", "125"},
		),
		relation.MustNew("JetWest", []string{"Route", "BaseCost", "TotalCost"},
			relation.Tuple{"ATL29", "200", "216"},
			relation.Tuple{"ORD17", "220", "236"},
		),
	)
}

// TestExample2FlightsBToA replays the paper's Example 2 step by step: the
// L expression mapping FlightsB to FlightsA.
func TestExample2FlightsBToA(t *testing.T) {
	expr := Expr{
		Promote{Rel: "Prices", NameAttr: "Route", ValueAttr: "Cost"}, // R1
		Drop{Rel: "Prices", Attr: "Route"},                           // R2 (1/2)
		Drop{Rel: "Prices", Attr: "Cost"},                            // R2 (2/2)
		Merge{Rel: "Prices", Attr: "Carrier"},                        // R3
		RenameAtt{Rel: "Prices", From: "AgentFee", To: "Fee"},        // R4 (1/2)
		RenameRel{From: "Prices", To: "Flights"},                     // R4 (2/2)
	}
	got, err := expr.Eval(flightsB(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(flightsA()) {
		t.Fatalf("Example 2 pipeline output:\n%s\nwant:\n%s", got, flightsA())
	}
}

// TestFlightsBToC exercises the λ operator on the paper's complex mapping
// f3 (Cost + AgentFee → TotalCost) followed by partitioning on Carrier.
func TestFlightsBToC(t *testing.T) {
	expr := MustParse(`
		apply[Prices,sum:Cost,AgentFee->TotalCost]
		rename_att[Prices,Cost->BaseCost]
		drop[Prices,AgentFee]
		partition[Prices,Carrier]
		drop[AirEast,Carrier]
		drop[JetWest,Carrier]
	`)
	got, err := expr.Eval(flightsB(), lambda.Builtins())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(flightsC()) {
		t.Fatalf("B→C pipeline output:\n%s\nwant:\n%s", got, flightsC())
	}
}

// TestFlightsAToB maps in the metadata-demoting direction: attribute names
// (ATL29, ORD17) become Route data values via ↓ and →. Without relational
// selection (which the paper's L deliberately omits, §2.1) the result is a
// superset of FlightsB; containment is exactly TUPELO's goal test.
func TestFlightsAToB(t *testing.T) {
	expr := MustParse(`
		demote[Flights]
		deref[Flights,_ATT->Cost]
		rename_att[Flights,_ATT->Route]
		drop[Flights,_REL]
		rename_att[Flights,Fee->AgentFee]
		drop[Flights,ATL29]
		drop[Flights,ORD17]
		rename_rel[Flights->Prices]
	`)
	got, err := expr.Eval(flightsA(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Contains(flightsB()) {
		t.Fatalf("A→B pipeline output does not contain FlightsB:\n%s", got)
	}
	if got.Equal(flightsB()) {
		t.Fatal("expected a strict superset (σ-free L cannot filter demoted metadata)")
	}
}

func TestRenameRelErrors(t *testing.T) {
	db := flightsB()
	for _, op := range []Op{
		RenameRel{From: "NoSuch", To: "X"},
		RenameRel{From: "Prices", To: "Prices"},
	} {
		if _, err := op.Apply(db, nil); err == nil {
			t.Fatalf("%s should fail", op)
		}
	}
	db2 := db.WithRelation(relation.MustNew("Other", []string{"A"}))
	if _, err := (RenameRel{From: "Prices", To: "Other"}).Apply(db2, nil); err == nil {
		t.Fatal("rename onto existing relation should fail")
	}
}

func TestRenameAttErrors(t *testing.T) {
	db := flightsB()
	for _, op := range []Op{
		RenameAtt{Rel: "NoSuch", From: "A", To: "B"},
		RenameAtt{Rel: "Prices", From: "NoSuch", To: "B"},
		RenameAtt{Rel: "Prices", From: "Cost", To: "Route"},
	} {
		if _, err := op.Apply(db, nil); err == nil {
			t.Fatalf("%s should fail", op)
		}
	}
}

func TestDropErrors(t *testing.T) {
	db := flightsB()
	for _, op := range []Op{
		Drop{Rel: "NoSuch", Attr: "A"},
		Drop{Rel: "Prices", Attr: "NoSuch"},
	} {
		if _, err := op.Apply(db, nil); err == nil {
			t.Fatalf("%s should fail", op)
		}
	}
}

func TestPromoteSemantics(t *testing.T) {
	db := flightsB()
	out, err := Promote{Rel: "Prices", NameAttr: "Route", ValueAttr: "Cost"}.Apply(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := out.Relation("Prices")
	if !r.HasAttr("ATL29") || !r.HasAttr("ORD17") {
		t.Fatalf("promoted columns missing: %v", r.Attrs())
	}
	// Each tuple carries its own cost under its route column, empty elsewhere.
	for i := 0; i < r.Len(); i++ {
		route, _ := r.Value(i, "Route")
		cost, _ := r.Value(i, "Cost")
		own, _ := r.Value(i, route)
		if own != cost {
			t.Fatalf("tuple %d: column %s = %q, want %q", i, route, own, cost)
		}
		other := "ORD17"
		if route == "ORD17" {
			other = "ATL29"
		}
		if v, _ := r.Value(i, other); v != "" {
			t.Fatalf("tuple %d: column %s = %q, want empty", i, other, v)
		}
	}
}

func TestPromoteErrors(t *testing.T) {
	db := flightsB()
	for _, op := range []Op{
		Promote{Rel: "NoSuch", NameAttr: "A", ValueAttr: "B"},
		Promote{Rel: "Prices", NameAttr: "NoSuch", ValueAttr: "Cost"},
		Promote{Rel: "Prices", NameAttr: "Route", ValueAttr: "NoSuch"},
		// Promoting Carrier collides with nothing, but promoting Route twice
		// collides with the columns the first promotion created.
	} {
		if _, err := op.Apply(db, nil); err == nil {
			t.Fatalf("%s should fail", op)
		}
	}
	// Name collision with an existing attribute.
	db2 := relation.MustDatabase(relation.MustNew("R", []string{"A", "B"},
		relation.Tuple{"B", "x"},
	))
	if _, err := (Promote{Rel: "R", NameAttr: "A", ValueAttr: "B"}).Apply(db2, nil); err == nil {
		t.Fatal("promotion colliding with existing attribute should fail")
	}
	// Empty value in the name column.
	db3 := relation.MustDatabase(relation.MustNew("R", []string{"A", "B"},
		relation.Tuple{"", "x"},
	))
	if _, err := (Promote{Rel: "R", NameAttr: "A", ValueAttr: "B"}).Apply(db3, nil); err == nil {
		t.Fatal("empty promoted name should fail")
	}
}

func TestDemoteSemantics(t *testing.T) {
	db := flightsA()
	out, err := Demote{Rel: "Flights"}.Apply(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := out.Relation("Flights")
	if r.Len() != 2*4 {
		t.Fatalf("demote row count = %d, want 8 (2 tuples × 4 attributes)", r.Len())
	}
	if !r.HasAttr(DemoteRelCol) || !r.HasAttr(DemoteAttCol) {
		t.Fatalf("demote columns missing: %v", r.Attrs())
	}
	atts, _ := r.ValuesOf(DemoteAttCol)
	if len(atts) != 4 {
		t.Fatalf("demoted attribute names = %v", atts)
	}
	rels, _ := r.ValuesOf(DemoteRelCol)
	if len(rels) != 1 || rels[0] != "Flights" {
		t.Fatalf("demoted relation names = %v", rels)
	}
	// Demoting twice must fail (reserved columns present).
	if _, err := (Demote{Rel: "Flights"}).Apply(out, nil); err == nil {
		t.Fatal("double demote should fail")
	}
	if _, err := (Demote{Rel: "NoSuch"}).Apply(db, nil); err == nil {
		t.Fatal("demote of missing relation should fail")
	}
}

func TestDerefErrors(t *testing.T) {
	db := flightsB()
	if _, err := (Deref{Rel: "NoSuch", PtrAttr: "A", NewAttr: "B"}).Apply(db, nil); err == nil {
		t.Fatal("missing relation should fail")
	}
	if _, err := (Deref{Rel: "Prices", PtrAttr: "NoSuch", NewAttr: "B"}).Apply(db, nil); err == nil {
		t.Fatal("missing pointer attribute should fail")
	}
	// Route values (ATL29...) are not attribute names of Prices.
	if _, err := (Deref{Rel: "Prices", PtrAttr: "Route", NewAttr: "B"}).Apply(db, nil); err == nil {
		t.Fatal("dangling pointer should fail")
	}
}

func TestPartitionSemantics(t *testing.T) {
	db := flightsB()
	out, err := Partition{Rel: "Prices", Attr: "Carrier"}.Apply(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, still := out.Relation("Prices"); still {
		t.Fatal("partition should consume the input relation")
	}
	for _, name := range []string{"AirEast", "JetWest"} {
		r, ok := out.Relation(name)
		if !ok {
			t.Fatalf("partition %s missing", name)
		}
		if r.Len() != 2 {
			t.Fatalf("partition %s has %d rows, want 2", name, r.Len())
		}
		vals, _ := r.ValuesOf("Carrier")
		if len(vals) != 1 || vals[0] != name {
			t.Fatalf("partition %s contains foreign tuples: %v", name, vals)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	db := flightsB()
	if _, err := (Partition{Rel: "NoSuch", Attr: "A"}).Apply(db, nil); err == nil {
		t.Fatal("missing relation should fail")
	}
	if _, err := (Partition{Rel: "Prices", Attr: "NoSuch"}).Apply(db, nil); err == nil {
		t.Fatal("missing attribute should fail")
	}
	// Clash with an existing relation name.
	db2 := db.WithRelation(relation.MustNew("AirEast", []string{"X"}))
	if _, err := (Partition{Rel: "Prices", Attr: "Carrier"}).Apply(db2, nil); err == nil {
		t.Fatal("partition clashing with existing relation should fail")
	}
	// Empty partition value.
	db3 := relation.MustDatabase(relation.MustNew("R", []string{"A"}, relation.Tuple{""}))
	if _, err := (Partition{Rel: "R", Attr: "A"}).Apply(db3, nil); err == nil {
		t.Fatal("empty partition value should fail")
	}
	// Empty relation.
	db4 := relation.MustDatabase(relation.MustNew("R", []string{"A"}))
	if _, err := (Partition{Rel: "R", Attr: "A"}).Apply(db4, nil); err == nil {
		t.Fatal("partitioning an empty relation should fail")
	}
}

func TestProductSemantics(t *testing.T) {
	db := relation.MustDatabase(
		relation.MustNew("L", []string{"A"}, relation.Tuple{"1"}, relation.Tuple{"2"}),
		relation.MustNew("R", []string{"B"}, relation.Tuple{"x"}, relation.Tuple{"y"}),
	)
	out, err := Product{Left: "L", Right: "R"}.Apply(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	l, _ := out.Relation("L")
	if l.Len() != 4 || l.Arity() != 2 {
		t.Fatalf("product is %d×%d, want 4×2", l.Len(), l.Arity())
	}
	if _, ok := out.Relation("R"); !ok {
		t.Fatal("product should keep the right operand")
	}
	for _, op := range []Op{
		Product{Left: "L", Right: "L"},
		Product{Left: "NoSuch", Right: "R"},
		Product{Left: "L", Right: "NoSuch"},
	} {
		if _, err := op.Apply(db, nil); err == nil {
			t.Fatalf("%s should fail", op)
		}
	}
	clash := relation.MustDatabase(
		relation.MustNew("L", []string{"A"}),
		relation.MustNew("R", []string{"A"}),
	)
	if _, err := (Product{Left: "L", Right: "R"}).Apply(clash, nil); err == nil {
		t.Fatal("attribute clash should fail")
	}
}

func TestMergeSemantics(t *testing.T) {
	db := relation.MustDatabase(
		relation.MustNew("R", []string{"K", "A", "B"},
			relation.Tuple{"k1", "1", ""},
			relation.Tuple{"k1", "", "2"},
			relation.Tuple{"k1", "1", "3"}, // incompatible with the merged row on B
			relation.Tuple{"k2", "9", "9"},
		),
	)
	out, err := Merge{Rel: "R", Attr: "K"}.Apply(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := out.Relation("R")
	// k1 group: {1,""} and {"",2} merge to {1,2}; {1,3} stays separate.
	// k2 group: single row.
	if r.Len() != 3 {
		t.Fatalf("merge result has %d rows, want 3:\n%s", r.Len(), r)
	}
	want := relation.MustNew("R", []string{"K", "A", "B"},
		relation.Tuple{"k1", "1", "2"},
		relation.Tuple{"k1", "1", "3"},
		relation.Tuple{"k2", "9", "9"},
	)
	if !r.Equal(want) {
		t.Fatalf("merge result:\n%s\nwant:\n%s", r, want)
	}
	if _, err := (Merge{Rel: "R", Attr: "NoSuch"}).Apply(db, nil); err == nil {
		t.Fatal("merge on missing attribute should fail")
	}
	if _, err := (Merge{Rel: "NoSuch", Attr: "K"}).Apply(db, nil); err == nil {
		t.Fatal("merge on missing relation should fail")
	}
}

func TestApplyOperator(t *testing.T) {
	reg := lambda.Builtins()
	db := flightsB()
	out, err := Apply{Rel: "Prices", Func: "sum", In: []string{"Cost", "AgentFee"}, Out: "TotalCost"}.Apply(db, reg)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := out.Relation("Prices")
	totals, _ := r.ValuesOf("TotalCost")
	for _, want := range []string{"115", "125", "216", "236"} {
		found := false
		for _, got := range totals {
			if got == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("TotalCost missing %s: %v", want, totals)
		}
	}
	for _, tc := range []struct {
		name string
		op   Apply
		reg  *lambda.Registry
	}{
		{"missing relation", Apply{Rel: "NoSuch", Func: "sum", In: []string{"A", "B"}, Out: "C"}, reg},
		{"nil registry", Apply{Rel: "Prices", Func: "sum", In: []string{"Cost", "AgentFee"}, Out: "T"}, nil},
		{"unknown function", Apply{Rel: "Prices", Func: "nosuch", In: []string{"Cost"}, Out: "T"}, reg},
		{"arity mismatch", Apply{Rel: "Prices", Func: "sum", In: []string{"Cost"}, Out: "T"}, reg},
		{"missing attribute", Apply{Rel: "Prices", Func: "sum", In: []string{"Cost", "NoSuch"}, Out: "T"}, reg},
		{"existing output", Apply{Rel: "Prices", Func: "sum", In: []string{"Cost", "AgentFee"}, Out: "Cost"}, reg},
	} {
		if _, err := tc.op.Apply(db, tc.reg); err == nil {
			t.Fatalf("%s: should fail", tc.name)
		}
	}
}

// Per-tuple function failures follow §4's "identity otherwise": the tuple
// receives the absent value instead of aborting the mapping.
func TestApplyIdentityOnUndefinedTuples(t *testing.T) {
	reg := lambda.Builtins()
	db := flightsB()
	out, err := Apply{Rel: "Prices", Func: "sum", In: []string{"Carrier", "Cost"}, Out: "T"}.Apply(db, reg)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := out.Relation("Prices")
	vals, _ := r.ValuesOf("T")
	if len(vals) != 1 || vals[0] != "" {
		t.Fatalf("sum over non-numeric Carrier should yield only absent values, got %v", vals)
	}
}

func TestEvalReportsStep(t *testing.T) {
	expr := Expr{
		Drop{Rel: "Prices", Attr: "Route"},
		Drop{Rel: "Prices", Attr: "Route"}, // fails: already dropped
	}
	_, err := expr.Eval(flightsB(), nil)
	if err == nil || !strings.Contains(err.Error(), "step 2") {
		t.Fatalf("Eval error should name the failing step, got %v", err)
	}
}

func TestEvalDoesNotMutateInput(t *testing.T) {
	db := flightsB()
	before := db.Fingerprint()
	expr := MustParse("promote[Prices,Route,Cost]\ndrop[Prices,Route]\nmerge[Prices,Carrier]")
	if _, err := expr.Eval(db, nil); err != nil {
		t.Fatal(err)
	}
	if db.Fingerprint() != before {
		t.Fatal("Eval mutated its input database")
	}
}

func TestThenIsNonDestructive(t *testing.T) {
	base := Expr{Drop{Rel: "R", Attr: "A"}}
	ext := base.Then(Drop{Rel: "R", Attr: "B"})
	if len(base) != 1 || len(ext) != 2 {
		t.Fatalf("Then mutated receiver: %d/%d", len(base), len(ext))
	}
}

func TestCompile(t *testing.T) {
	f := MustParse("rename_rel[Prices->Flights]").Compile(nil)
	out, err := f(flightsB())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out.Relation("Flights"); !ok {
		t.Fatal("compiled mapping did not run")
	}
}

func TestParseRoundTrip(t *testing.T) {
	ops := []Op{
		RenameRel{From: "Prices", To: "Flights"},
		RenameAtt{Rel: "Prices", From: "AgentFee", To: "Fee"},
		Drop{Rel: "Prices", Attr: "Route"},
		Promote{Rel: "Prices", NameAttr: "Route", ValueAttr: "Cost"},
		Demote{Rel: "R"},
		Deref{Rel: "R", PtrAttr: "Ptr", NewAttr: "New"},
		Partition{Rel: "R", Attr: "A"},
		Product{Left: "L", Right: "R"},
		Merge{Rel: "R", Attr: "Carrier"},
		Apply{Rel: "Prices", Func: "sum", In: []string{"Cost", "AgentFee"}, Out: "TotalCost"},
	}
	expr := Expr(ops)
	back, err := Parse(expr.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != expr.String() {
		t.Fatalf("round trip:\n%s\nvs\n%s", back, expr)
	}
}

func TestParseIgnoresCommentsAndBlanks(t *testing.T) {
	expr, err := Parse("# a comment\n\n  drop[R,A]  \n;\nmerge[R,K]")
	if err != nil {
		t.Fatal(err)
	}
	if len(expr) != 2 {
		t.Fatalf("parsed %d ops, want 2", len(expr))
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"nonsense",
		"unknown[R]",
		"rename_rel[A]",
		"rename_rel[->B]",
		"rename_att[R,A]",
		"drop[R]",
		"drop[R,A,B]",
		"drop[R,]",
		"promote[R,A]",
		"demote[]",
		"demote[R,S]",
		"deref[R,A]",
		"partition[R]",
		"product[L]",
		"merge[R]",
		"apply[R,sum Cost->T]",
		"apply[R,sum:->T]",
		"apply[R,sum:A,->T]",
		"apply[R,sum:A,B]",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) should fail", bad)
		}
	}
}

func TestPrettyNotation(t *testing.T) {
	expr := MustParse("promote[Prices,Route,Cost]\nmerge[Prices,Carrier]\nrename_rel[Prices->Flights]")
	p := expr.Pretty()
	for _, want := range []string{"↑^{Cost}_{Route}(Prices)", "µ_{Carrier}(Prices)", "ρ^rel_{Prices→Flights}"} {
		if !strings.Contains(p, want) {
			t.Fatalf("Pretty missing %q in %q", want, p)
		}
	}
}

// Merge must be idempotent: µ_A(µ_A(R)) = µ_A(R).
func TestPropertyMergeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := relation.MustNew("R", []string{"K", "A", "B"})
		for i := 0; i < 2+rng.Intn(8); i++ {
			row := relation.Tuple{
				"k" + string(rune('0'+rng.Intn(3))),
				pick(rng, []string{"", "1", "2"}),
				pick(rng, []string{"", "x", "y"}),
			}
			var err error
			r, err = r.Insert(row)
			if err != nil {
				return false
			}
		}
		db := relation.MustDatabase(r)
		once, err := Merge{Rel: "R", Attr: "K"}.Apply(db, nil)
		if err != nil {
			return false
		}
		twice, err := Merge{Rel: "R", Attr: "K"}.Apply(once, nil)
		if err != nil {
			return false
		}
		return once.Equal(twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Demote multiplies cardinality by arity.
func TestPropertyDemoteCardinality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nAttr := 1 + rng.Intn(4)
		attrs := make([]string, nAttr)
		for i := range attrs {
			attrs[i] = "A" + string(rune('0'+i))
		}
		r := relation.MustNew("R", attrs)
		rows := 1 + rng.Intn(4)
		for i := 0; i < rows; i++ {
			row := make(relation.Tuple, nAttr)
			for j := range row {
				// Distinct values per row keep set semantics from collapsing.
				row[j] = "v" + string(rune('0'+i)) + string(rune('a'+j))
			}
			var err error
			r, err = r.Insert(row)
			if err != nil {
				return false
			}
		}
		out, err := Demote{Rel: "R"}.Apply(relation.MustDatabase(r), nil)
		if err != nil {
			return false
		}
		d, _ := out.Relation("R")
		return d.Len() == r.Len()*r.Arity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Parse(expr.String()) must reproduce the expression for arbitrary rename
// chains (the schema-matching fragment used by Experiments 1 and 2).
func TestPropertyParsePrintRenames(t *testing.T) {
	alpha := func(n uint8) string {
		return string(rune('A' + int(n)%26))
	}
	f := func(a, b, c uint8) bool {
		expr := Expr{
			RenameAtt{Rel: "R" + alpha(a), From: "x" + alpha(b), To: "y" + alpha(c)},
			RenameRel{From: "R" + alpha(a), To: "S" + alpha(b)},
		}
		back, err := Parse(expr.String())
		return err == nil && back.String() == expr.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func pick(rng *rand.Rand, choices []string) string {
	return choices[rng.Intn(len(choices))]
}
