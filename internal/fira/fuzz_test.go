package fira

import (
	"testing"

	"tupelo/internal/lambda"
	"tupelo/internal/relation"
)

// FuzzParse checks that the expression parser never panics and that every
// accepted expression survives a print → parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"rename_rel[Prices->Flights]",
		"rename_att[Prices,AgentFee->Fee]",
		"drop[Prices,Route]",
		"promote[Prices,Route,Cost]",
		"demote[R]",
		"deref[R,Ptr->New]",
		"partition[R,A]",
		"product[L,R]",
		"union[L,R]",
		"merge[R,Carrier]",
		"apply[Prices,sum:Cost,AgentFee->TotalCost]",
		"# comment\n\ndrop[R,A];merge[R,B]",
		"drop[R,A]\ndrop[R,A]\ndrop[R,A]",
		"rename_rel[->]",
		"apply[R,f:->]",
		"promote[,,]",
		"[]",
		"drop[R,A]]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		expr, err := Parse(src)
		if err != nil {
			return
		}
		printed := expr.String()
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", printed, err)
		}
		if back.String() != printed {
			t.Fatalf("print/parse not stable: %q vs %q", back.String(), printed)
		}
	})
}

// FuzzEval checks that evaluating arbitrary parsed expressions against a
// fixed database either errors cleanly or produces a valid database, and
// never mutates the input.
func FuzzEval(f *testing.F) {
	for _, s := range []string{
		"promote[Prices,Route,Cost]\ndrop[Prices,Route]\nmerge[Prices,Carrier]",
		"demote[Prices]\nderef[Prices,_ATT->X]",
		"partition[Prices,Carrier]\nunion[AirEast,JetWest]",
		"apply[Prices,sum:Cost,AgentFee->T]",
		"drop[Prices,Cost]\ndrop[Prices,Route]\ndrop[Prices,AgentFee]",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		expr, err := Parse(src)
		if err != nil {
			return
		}
		if len(expr) > 8 {
			return // keep the state space small under fuzzing
		}
		db := flightsB()
		before := db.Fingerprint()
		out, err := expr.Eval(db, lambda.Builtins())
		if db.Fingerprint() != before {
			t.Fatal("Eval mutated its input")
		}
		if err != nil {
			return
		}
		// The output must be a structurally valid database: re-inserting
		// every relation must succeed.
		for _, r := range out.Relations() {
			if _, err := relation.New(r.Name(), r.Attrs(), r.Rows()...); err != nil {
				t.Fatalf("invalid output relation: %v", err)
			}
		}
	})
}
