package relation

// ContainmentIndex is a precomputed accelerator for the paper's goal test
// (§2.3). Database.Contains runs a nested-loop scan — O(|t_rows| · |r_rows|
// · arity) per target relation — on every examined state. The target is
// fixed for the lifetime of a mapping problem, so the index encodes each
// target relation's rows into a hash set once; testing a state then costs a
// single pass over the state's symbol columns with O(1) lookups.
//
// Keys are the fixed-width symbol encodings of the projected rows — symbol
// equality is string equality within a process, so the verdicts match the
// string-path scan exactly (tests cross-check the two on randomized
// databases). The index is safe for concurrent use: it is immutable after
// construction, and Contains keeps all scratch state on the stack.
type ContainmentIndex struct {
	targets []indexedRelation
}

// indexedRelation is the preprocessed form of one target relation.
type indexedRelation struct {
	name  string
	attrs []string        // target attribute list, projection order
	rows  map[string]bool // symbol-key encodings of the target's tuples
}

// NewContainmentIndex preprocesses the target database for repeated
// containment tests.
func NewContainmentIndex(target *Database) *ContainmentIndex {
	ix := &ContainmentIndex{targets: make([]indexedRelation, 0, target.Len())}
	for _, t := range target.rels {
		ir := indexedRelation{
			name:  t.name,
			attrs: append([]string(nil), t.attrs...),
			rows:  make(map[string]bool, t.nrows),
		}
		buf := make([]byte, 0, 4*len(t.cols))
		for i := 0; i < t.nrows; i++ {
			buf = t.appendRowKey(buf[:0], i)
			ir.rows[string(buf)] = true
		}
		ix.targets = append(ix.targets, ir)
	}
	return ix
}

// Contains reports whether db contains the indexed target, with the same
// semantics as Database.Contains: every target relation must exist in db
// under the same name, and every target tuple must agree with some db tuple
// on the target's attributes.
func (ix *ContainmentIndex) Contains(db *Database) bool {
	for i := range ix.targets {
		t := &ix.targets[i]
		r, ok := db.Relation(t.name)
		if !ok || !t.contains(r) {
			return false
		}
	}
	return true
}

// contains is the per-relation half: a single pass over r's rows, encoding
// each projection onto the target attributes from the symbol columns and
// counting how many distinct target rows it hits.
func (t *indexedRelation) contains(r *Relation) bool {
	// Per-call stack scratch: the goal test runs once per examined state (and
	// concurrently under the sharded search), so the projection slices live in
	// fixed-size local arrays for the paper's single-digit arities, with a
	// heap fallback for wider schemas. Locals keep the concurrency guarantee:
	// no shared mutable scratch.
	var colsArr [attrScanMax][]Symbol
	cols := colsArr[:0]
	if len(t.attrs) > attrScanMax {
		cols = make([][]Symbol, 0, len(t.attrs))
	}
	for _, a := range t.attrs {
		j := r.lookup(a)
		if j < 0 {
			return false
		}
		cols = append(cols, r.cols[j])
	}
	need := len(t.rows)
	if need == 0 {
		return true
	}
	var bufArr [4 * attrScanMax]byte
	buf := bufArr[:0]
	if len(cols) > attrScanMax {
		buf = make([]byte, 0, 4*len(cols))
	}
	if need == 1 {
		// Single-row targets (e.g. the paper's one-tuple critical instances)
		// skip the distinct-hit bookkeeping: any projection match decides.
		for i := 0; i < r.nrows; i++ {
			buf = buf[:0]
			for _, c := range cols {
				buf = appendSymKey(buf, c[i])
			}
			// string(buf) in a map index expression does not allocate.
			if t.rows[string(buf)] {
				return true
			}
		}
		return false
	}
	found := 0
	seen := make(map[string]bool, need)
	for i := 0; i < r.nrows; i++ {
		buf = buf[:0]
		for _, c := range cols {
			buf = appendSymKey(buf, c[i])
		}
		if t.rows[string(buf)] && !seen[string(buf)] {
			seen[string(buf)] = true
			found++
			if found == need {
				break
			}
		}
	}
	return found == need
}
