package relation

// ContainmentIndex is a precomputed accelerator for the paper's goal test
// (§2.3). Database.Contains runs a nested-loop scan — O(|t_rows| · |r_rows|
// · arity) per target relation — on every examined state. The target is
// fixed for the lifetime of a mapping problem, so the index encodes each
// target relation's rows into a hash set once; testing a state then costs a
// single pass over the state's rows with O(1) lookups.
//
// The index answers exactly what Database.Contains answers — tests
// cross-check the two on randomized databases — and is safe for concurrent
// use: it is immutable after construction, and Contains keeps all scratch
// state on the stack.
type ContainmentIndex struct {
	targets []indexedRelation
}

// indexedRelation is the preprocessed form of one target relation.
type indexedRelation struct {
	name  string
	attrs []string        // target attribute list, projection order
	rows  map[string]bool // rowKey encodings of the target's tuples
}

// NewContainmentIndex preprocesses the target database for repeated
// containment tests.
func NewContainmentIndex(target *Database) *ContainmentIndex {
	ix := &ContainmentIndex{targets: make([]indexedRelation, 0, target.Len())}
	for _, t := range target.Relations() {
		ir := indexedRelation{
			name:  t.name,
			attrs: append([]string(nil), t.attrs...),
			rows:  make(map[string]bool, len(t.rows)),
		}
		for _, row := range t.rows {
			ir.rows[rowKey(row)] = true
		}
		ix.targets = append(ix.targets, ir)
	}
	return ix
}

// Contains reports whether db contains the indexed target, with the same
// semantics as Database.Contains: every target relation must exist in db
// under the same name, and every target tuple must agree with some db tuple
// on the target's attributes.
func (ix *ContainmentIndex) Contains(db *Database) bool {
	for i := range ix.targets {
		t := &ix.targets[i]
		r, ok := db.Relation(t.name)
		if !ok || !t.contains(r) {
			return false
		}
	}
	return true
}

// contains is the per-relation half: a single pass over r's rows, encoding
// each projection onto the target attributes and counting how many distinct
// target rows it hits.
func (t *indexedRelation) contains(r *Relation) bool {
	idx := make([]int, len(t.attrs))
	for i, a := range t.attrs {
		j := r.lookup(a)
		if j < 0 {
			return false
		}
		idx[i] = j
	}
	need := len(t.rows)
	if need == 0 {
		return true
	}
	buf := make([]byte, 0, 64)
	if need == 1 {
		// Single-row targets (e.g. the paper's one-tuple critical instances)
		// skip the distinct-hit bookkeeping: any projection match decides.
		for _, row := range r.rows {
			buf = buf[:0]
			for _, j := range idx {
				buf = appendValueKey(buf, row[j])
			}
			// string(buf) in a map index expression does not allocate.
			if t.rows[string(buf)] {
				return true
			}
		}
		return false
	}
	found := 0
	seen := make(map[string]bool, need)
	for _, row := range r.rows {
		buf = buf[:0]
		for _, j := range idx {
			buf = appendValueKey(buf, row[j])
		}
		if t.rows[string(buf)] && !seen[string(buf)] {
			seen[string(buf)] = true
			found++
			if found == need {
				break
			}
		}
	}
	return found == need
}
