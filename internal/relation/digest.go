package relation

import "encoding/binary"

// digest128 is the 128-bit mixing function behind Relation.Hash and
// Database.Key. State identity is the hottest path in the search — every
// generated successor is keyed for the cycle check and the heuristic cache —
// and a cryptographic hash there is pure overhead: nothing is adversarial
// about the inputs, only accidental collisions matter. digest128 runs two
// independent 64-bit lanes over the buffer, each absorbing 8 bytes per step
// through a multiply + splitmix64 finalizer, which is an order of magnitude
// cheaper than SHA-256 on the short buffers relations encode to.
//
// Properties relied upon elsewhere:
//   - deterministic across processes (no per-run seed), so hashes can be
//     logged, compared between runs, and reproduced in tests;
//   - 128-bit output, keeping the birthday bound far beyond any reachable
//     state count (2⁶⁴ states before collisions become likely — runs explore
//     < 2³⁰);
//   - injective input encoding is the caller's job (length prefixes, count
//     separators), exactly as it was for the SHA-256 it replaced.
func digest128(b []byte) [16]byte {
	const (
		k0 = 0x9e3779b97f4a7c15 // golden-ratio odd constant
		k1 = 0xbf58476d1ce4e5b9 // splitmix64 multiplier
	)
	h0 := mix64(uint64(len(b)+1) * k0)
	h1 := mix64(uint64(len(b)+2) * k1)
	for len(b) >= 8 {
		x := binary.LittleEndian.Uint64(b)
		b = b[8:]
		h0 = mix64(h0 ^ (x * k1))
		h1 = mix64(h1 ^ (x * k0))
	}
	if len(b) > 0 {
		var tail uint64
		for i := len(b) - 1; i >= 0; i-- {
			tail = tail<<8 | uint64(b[i])
		}
		// Tag the tail with its length so "abc" and "abc\x00" differ even
		// though both leave the same absorbed prefix.
		tail |= uint64(len(b)) << 56
		h0 = mix64(h0 ^ (tail * k1))
		h1 = mix64(h1 ^ (tail * k0))
	}
	// Cross the lanes once so each output half depends on every input byte.
	h0, h1 = mix64(h0^h1), mix64(h1+h0)
	var out [16]byte
	binary.LittleEndian.PutUint64(out[0:8], h0)
	binary.LittleEndian.PutUint64(out[8:16], h1)
	return out
}

// leUint64 and putLeUint64 are local aliases so digest consumers don't
// re-import encoding/binary.
func leUint64(b []byte) uint64       { return binary.LittleEndian.Uint64(b) }
func putLeUint64(b []byte, x uint64) { binary.LittleEndian.PutUint64(b, x) }

// mix64 is the splitmix64 finalizer: a full-avalanche bijection on uint64.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
