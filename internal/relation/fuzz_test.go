package relation

import (
	"strings"
	"testing"
)

// fuzzRelation builds a relation from a compact fuzz encoding: the first
// line is "name|attr|attr|...", every further line one tuple of |-separated
// values. Returns nil when the encoding is rejected — rejections are fine,
// panics are not.
func fuzzRelation(s string) *Relation {
	lines := strings.Split(s, "\n")
	head := strings.Split(lines[0], "|")
	if len(head) < 2 {
		return nil
	}
	r, err := New(head[0], head[1:])
	if err != nil {
		return nil
	}
	for _, line := range lines[1:] {
		vals := strings.Split(line, "|")
		if len(vals) != r.Arity() {
			continue
		}
		nr, err := r.Insert(Tuple(vals))
		if err != nil {
			return nil
		}
		r = nr
	}
	return r
}

// FuzzContains drives the containment check — the per-relation half of the
// paper's goal test — with arbitrary relation pairs. It must never panic,
// and three properties must hold on every accepted input: containment is
// reflexive, a row-subset is always contained, and a projection onto a
// subset of the attributes is contained.
func FuzzContains(f *testing.F) {
	f.Add("R|A|B\n1|2\n3|4", "R|A\n1")
	f.Add("Flights|Carrier|Fee\nAirEast|15\nJetWest|16", "Flights|Fee\n16")
	f.Add("R|A\nx", "S|B\ny")
	f.Add("R|A|A\nx|y", "R|A\nx")
	f.Add("|\n|", "|")
	f.Fuzz(func(t *testing.T, a, b string) {
		ra, rb := fuzzRelation(a), fuzzRelation(b)
		if ra == nil || rb == nil {
			return
		}
		// Containment of an arbitrary pair must be computable both ways
		// without panicking, whatever it answers.
		ra.Contains(rb)
		rb.Contains(ra)
		// The precomputed containment index must agree with the reference
		// nested-loop scan on every accepted input, in both directions.
		dba, dbb := MustDatabase(ra), MustDatabase(rb)
		if got, want := NewContainmentIndex(dbb).Contains(dba), dba.Contains(dbb); got != want {
			t.Fatalf("index=%v scan=%v for target\n%s\nin state\n%s", got, want, rb, ra)
		}
		if got, want := NewContainmentIndex(dba).Contains(dbb), dbb.Contains(dba); got != want {
			t.Fatalf("index=%v scan=%v for target\n%s\nin state\n%s", got, want, ra, rb)
		}
		// Reflexivity.
		if !ra.Contains(ra) {
			t.Fatalf("relation does not contain itself:\n%s", ra)
		}
		// Row subsets: a relation over the same attributes holding a prefix
		// of the rows is contained.
		if ra.Len() > 0 {
			sub, err := New(ra.Name(), ra.Attrs(), ra.Rows()[:ra.Len()/2+1]...)
			if err != nil {
				t.Fatalf("row subset rejected: %v", err)
			}
			if !ra.Contains(sub) {
				t.Fatalf("relation does not contain its own row subset:\n%s\nvs\n%s", ra, sub)
			}
		}
		// Attribute subsets: the projection onto the first attribute is
		// contained (every projected tuple agrees with its source tuple).
		if ra.Arity() > 1 && ra.Len() > 0 {
			attr := ra.Attrs()[0]
			proj, err := New(ra.Name(), []string{attr})
			if err != nil {
				t.Fatal(err)
			}
			vals, _ := ra.ValuesOf(attr)
			for _, v := range vals {
				proj, err = proj.Insert(Tuple{v})
				if err != nil {
					t.Fatal(err)
				}
			}
			if !ra.Contains(proj) {
				t.Fatalf("relation does not contain its projection:\n%s\nvs\n%s", ra, proj)
			}
		}
	})
}
