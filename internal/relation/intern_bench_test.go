package relation

import (
	"fmt"
	"testing"
)

// BenchmarkInternedEncode measures the interned fragment-encoding path: a
// fresh relation (cold memo) has every token pushed through the intern
// dictionary and its TNF term vector built over int32 symbols. This is the
// one-time cost paid per distinct relation the search materializes; the
// fragment memo makes every later touch free.
func BenchmarkInternedEncode(b *testing.B) {
	attrs := []string{"A", "B", "C", "D"}
	rows := make([]Tuple, 16)
	for i := range rows {
		rows[i] = Tuple{
			fmt.Sprintf("v%d", i), fmt.Sprintf("w%d", i%5),
			fmt.Sprintf("u%d", i%3), "shared",
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh Relation each iteration defeats the per-relation memo so
		// the encode itself is what's measured; the tokens stay hot in the
		// intern dictionary, as they do across a real search run.
		r := MustNew("Bench", attrs, rows...)
		f := r.TNFFragment()
		if f.Tuples != len(rows) {
			b.Fatalf("bad fragment: %+v", f)
		}
	}
}

// BenchmarkInternHit measures the steady-state dictionary lookup — the cost
// of interning a string the run has already seen, which is the overwhelmingly
// common case during a search.
func BenchmarkInternHit(b *testing.B) {
	Intern("bench-hot-token")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Intern("bench-hot-token")
	}
}
