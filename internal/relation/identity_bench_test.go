package relation

import (
	"fmt"
	"testing"
)

// benchDB builds a database shaped like a mid-search exp1 state after
// demote+partition: rels relations of arity attrs, rows tuples each, with a
// shared value prefix so tuple comparisons cannot shortcut on the first
// attribute.
func benchDB(rels, attrs, rows int) *Database {
	out := make([]*Relation, rels)
	for r := 0; r < rels; r++ {
		names := make([]string, attrs)
		for a := range names {
			names[a] = fmt.Sprintf("A%d", a+1)
		}
		b, err := NewBuilder(fmt.Sprintf("R%d", r+1), names)
		if err != nil {
			panic(err)
		}
		for i := 0; i < rows; i++ {
			row := make(Tuple, attrs)
			for a := range row {
				row[a] = "shared"
			}
			row[attrs-1] = fmt.Sprintf("v%d", i)
			if err := b.Add(row); err != nil {
				panic(err)
			}
		}
		out[r] = b.Relation()
	}
	return MustDatabase(out...)
}

// BenchmarkFingerprintMemoized measures the steady-state cost of
// re-identifying an already-canonicalized relation — the price every
// revisit by IDA/RBFS used to pay in full.
func BenchmarkFingerprintMemoized(b *testing.B) {
	r := benchDB(1, 14, 16).Relations()[0]
	r.Fingerprint() // warm the memo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.Fingerprint()) == 0 {
			b.Fatal("empty fingerprint")
		}
	}
}

// BenchmarkFingerprintRecompute is the reference arm: a from-scratch
// canonical render, what Fingerprint cost before memoization.
func BenchmarkFingerprintRecompute(b *testing.B) {
	r := benchDB(1, 14, 16).Relations()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, fp := r.computeCanonical(); len(fp) == 0 {
			b.Fatal("empty fingerprint")
		}
	}
}

// BenchmarkSuccessorKey measures per-successor state identity on an
// exp1-shaped multi-relation state: the successor replaces one relation
// copy-on-write, so the memoized arm hashes only that relation while the
// recompute arm (the old behavior — a full fingerprint render of a state
// whose relations carry no memo) pays for all of them.
func BenchmarkSuccessorKey(b *testing.B) {
	base := benchDB(14, 8, 4)
	base.Key() // warm the shared relations' memos
	replacement := MustNew("R1", []string{"A1"}, Tuple{"x"})
	b.Run("memoized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			succ := base.WithRelation(replacement.Clone())
			if len(succ.Key()) != 16 {
				b.Fatal("bad key")
			}
		}
	})
	b.Run("recompute", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			succ := base.Clone().WithRelation(replacement.Clone())
			if len(succ.Fingerprint()) == 0 {
				b.Fatal("bad fingerprint")
			}
		}
	})
}

// BenchmarkGoalTest compares the indexed containment test against the
// reference nested-loop scan on a scaled exp1-family instance (shared value
// prefixes defeat the scan's early-mismatch shortcut, as repeated column
// values do in real data).
func BenchmarkGoalTest(b *testing.B) {
	state := benchDB(1, 8, 128)
	target := state // containment of the full instance: the scan's worst case
	ix := NewContainmentIndex(target)
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !ix.Contains(state) {
				b.Fatal("state must contain target")
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !state.Contains(target) {
				b.Fatal("state must contain target")
			}
		}
	})
}
