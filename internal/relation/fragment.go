package relation

import (
	"sort"
	"sync"
)

// Triple is an interned (REL, ATT, VALUE) TNF triple — one dimension of the
// term-vector space of §3 of the paper, with the three tokens replaced by
// their dictionary symbols. Schema-only rows use the interned empty string
// in the ATT and/or VALUE positions, mirroring tnf.Encode's empty markers.
type Triple [3]Symbol

// Fragment is the per-relation piece of the database's TNF encoding, reduced
// to the multiset counters the heuristics consume: the projection multisets
// of the ATT and VALUE columns and the term-vector triple counts. A
// database's TNF-derived views are exact merges of its relations'
// fragments, and a successor that replaced one relation copy-on-write is the
// parent's merge minus the old fragment plus the new one — the delta-merge
// the incremental heuristic evaluators exploit.
//
// All counts are multiset multiplicities (never approximations), so
// subtracting a fragment exactly undoes adding it. Triple keys embed the
// relation name, so the Vec maps of fragments of differently named relations
// are disjoint; Atts and Vals may overlap across fragments and must be
// summed before set-membership questions are asked.
//
// A Fragment is immutable after construction and shared freely (always by
// pointer: the lazy Parts memo embeds a sync.Once).
type Fragment struct {
	// Rel is the interned relation name; its multiplicity in the REL
	// projection is RowCount.
	Rel Symbol
	// Arity and Tuples are the relation's schema arity and tuple count
	// (the structural profile the hybrid heuristic's shape term reads).
	Arity, Tuples int
	// RowCount is the number of TNF rows the relation contributes:
	// Tuples×Arity for populated relations, Arity for empty ones, 1 for
	// zero-arity ones (the schema-only totalization of tnf.Encode).
	RowCount int
	// Atts and Vals are the ATT and VALUE column multisets, excluding the
	// empty markers of schema-only rows and empty cells, matching
	// tnf.Table.AttSet/ValueSet.
	Atts, Vals map[Symbol]int
	// Vec counts each (REL, ATT, VALUE) triple, schema-only rows included,
	// matching the term vector over tnf.Table.Triples.
	Vec map[Triple]int
	// VecSq is Σ c² over Vec — the fragment's exact contribution to the
	// squared Euclidean norm of the database's term vector (triple keys are
	// disjoint across relations, so norms add per fragment).
	VecSq int64

	// Lazily decoded Parts (see the Parts method). Only the
	// string-canonical Levenshtein path reads them; every other consumer
	// stays in symbol space, so the strings are never built for it.
	partsOnce sync.Once
	parts     []string
}

// Parts returns the REL⊙ATT⊙VALUE strings of the fragment's TNF rows in
// sorted order, with repetitions; merging the Parts of all fragments in
// sorted order yields tnf.Table.CanonicalString. The rendering is
// reconstructed from Vec — each triple with count c contributes c copies of
// its concatenation, the same multiset the per-cell construction produced —
// decoded lazily exactly once and memoized, so searches that never consult
// the string-edit-distance heuristic never pay for a single Part string.
// The returned slice is shared: callers must treat it as read-only.
func (f *Fragment) Parts() []string {
	f.partsOnce.Do(func() {
		strs := strsSnapshot()
		out := make([]string, 0, f.RowCount)
		for t, c := range f.Vec {
			s := strs[t[0]] + strs[t[1]] + strs[t[2]]
			for ; c > 0; c-- {
				out = append(out, s)
			}
		}
		sort.Strings(out)
		f.parts = out
	})
	return f.parts
}

// TNFFragment returns the relation's TNF fragment, computed lazily exactly
// once and memoized alongside the canonical form (relations are immutable
// after publication; see the memo field on Relation). Safe for concurrent
// callers.
func (r *Relation) TNFFragment() *Fragment {
	m := r.memo
	m.fragOnce.Do(func() {
		m.frag = r.computeFragment()
	})
	return m.frag
}

// computeFragment builds the fragment straight from the symbol columns,
// reproducing the exact row semantics of tnf.Encode: zero-arity relations
// contribute a single (rel, ε, ε) row, empty relations one (rel, att, ε)
// row per attribute, and populated relations one (rel, att, value) row per
// (tuple, attribute) pair. The column-major walk touches each int32 cell
// once and builds no strings.
func (r *Relation) computeFragment() *Fragment {
	// Presize by the TNF row count: distinct triples (and values) are bounded
	// by the rows contributed, and the relations of the paper's instances are
	// small, so the bound lands within one map growth step of the final size.
	cells := r.nrows * len(r.attrs)
	f := &Fragment{
		Rel:    r.nameSym,
		Arity:  len(r.attrs),
		Tuples: r.nrows,
		Atts:   make(map[Symbol]int, len(r.attrs)),
		Vals:   make(map[Symbol]int, cells),
		Vec:    make(map[Triple]int, max(cells, len(r.attrs))),
	}
	switch {
	case len(r.attrs) == 0:
		f.RowCount = 1
		f.Vec[Triple{r.nameSym, emptySym, emptySym}] = 1
	case r.nrows == 0:
		f.RowCount = len(r.attrs)
		for j := range r.attrs {
			f.Atts[r.attrSyms[j]]++
			f.Vec[Triple{r.nameSym, r.attrSyms[j], emptySym}]++
		}
	default:
		f.RowCount = r.nrows * len(r.attrs)
		for j, col := range r.cols {
			a := r.attrSyms[j]
			// Attribute names are unique, so this column owns its Atts key:
			// one store instead of nrows increments.
			f.Atts[a] += r.nrows
			for _, v := range col {
				if v != emptySym {
					f.Vals[v]++
				}
				f.Vec[Triple{r.nameSym, a, v}]++
			}
		}
	}
	for _, c := range f.Vec {
		f.VecSq += int64(c) * int64(c)
	}
	return f
}

// emptySym is the interned empty string, the ATT/VALUE marker of
// schema-only TNF rows. Interned at init so the constant is available
// without a dictionary lookup.
var emptySym = Intern("")

// Diff compares two databases slot-by-slot by pointer identity and returns
// the relations of parent absent from child (removed) and those of child
// absent from parent (added). Successor states share every untouched
// *Relation with their parent copy-on-write, so for an operator application
// this recovers exactly the replaced slots in O(|relations|) pointer
// comparisons — no content hashing. A relation rebuilt with identical
// content appears in both slices; delta-merging it out and back in is a
// no-op, so callers need not special-case it.
func Diff(parent, child *Database) (removed, added []*Relation) {
	// Both slices are name-sorted, so a single merge pass aligns the slots.
	i, j := 0, 0
	for i < len(parent.rels) && j < len(child.rels) {
		pr, cr := parent.rels[i], child.rels[j]
		switch {
		case pr.name < cr.name:
			removed = append(removed, pr)
			i++
		case pr.name > cr.name:
			added = append(added, cr)
			j++
		default:
			if pr != cr {
				removed = append(removed, pr)
				added = append(added, cr)
			}
			i++
			j++
		}
	}
	removed = append(removed, parent.rels[i:]...)
	added = append(added, child.rels[j:]...)
	return removed, added
}
