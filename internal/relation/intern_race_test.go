package relation

import (
	"fmt"
	"sync"
	"testing"
)

// TestInternConcurrent hammers the run-wide intern dictionary from many
// goroutines with heavily overlapping strings — the access pattern of
// parallel successor workers computing fragments for states that share
// tokens. Run under -race (CI does), it pins two properties: the dictionary
// publication is race-free, and interning is consistent — every goroutine
// gets the same Symbol for the same string, and distinct strings never
// collapse.
func TestInternConcurrent(t *testing.T) {
	const goroutines = 16
	const tokens = 64
	results := make([][]Symbol, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			syms := make([]Symbol, tokens)
			for i := range syms {
				// Every goroutine interns the same token set, permuted so
				// first-interning races are spread across the set.
				tok := fmt.Sprintf("race-tok-%d", (i+g*7)%tokens)
				syms[(i+g*7)%tokens] = Intern(tok)
			}
			results[g] = syms
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range results[g] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d interned token %d as %v, goroutine 0 as %v",
					g, i, results[g][i], results[0][i])
			}
		}
	}
	seen := make(map[Symbol]bool, tokens)
	for i, s := range results[0] {
		if seen[s] {
			t.Fatalf("distinct tokens collapsed onto symbol %v (token %d)", s, i)
		}
		seen[s] = true
		if got, ok := LookupSymbol(fmt.Sprintf("race-tok-%d", i)); !ok || got != s {
			t.Fatalf("LookupSymbol disagrees with Intern for token %d", i)
		}
	}
}

// TestFragmentMemoConcurrent races fragment computation on relations shared
// copy-on-write between successor-like states, as the parallel expansion
// pool does when several workers delta-merge successors that kept the same
// untouched relation. The sync.Once memo must hand every goroutine the
// same *Fragment, fully built.
func TestFragmentMemoConcurrent(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		shared := MustNew("Shared", []string{"A", "B"},
			Tuple{"x", "y"}, Tuple{"z", "w"})
		frags := make([]*Fragment, 16)
		var wg sync.WaitGroup
		for g := range frags {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				frags[g] = shared.TNFFragment()
			}(g)
		}
		wg.Wait()
		for g := 1; g < len(frags); g++ {
			if frags[g] != frags[0] {
				t.Fatalf("trial %d: goroutine %d got a different fragment pointer", trial, g)
			}
		}
		f := frags[0]
		// 2 tuples × arity 2 = 4 TNF cell-rows.
		if f.Tuples != 2 || f.RowCount != 4 || len(f.Vec) == 0 || f.VecSq == 0 {
			t.Fatalf("trial %d: fragment incompletely published: %+v", trial, f)
		}
	}
}
