package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// mutate applies one random copy-on-write operation to the relation,
// exercising every constructor path that must leave the memoized canonical
// form consistent. Failed operations (e.g. projecting a missing attribute)
// return the input unchanged, which is fine: the property below checks the
// result, whatever it is.
func mutate(rng *rand.Rand, r *Relation) *Relation {
	attrs := r.Attrs()
	switch rng.Intn(6) {
	case 0:
		row := make(Tuple, r.Arity())
		for j := range row {
			row[j] = string(rune('0' + rng.Intn(10)))
		}
		if nr, err := r.Insert(row); err == nil {
			return nr
		}
	case 1:
		if nr, err := r.WithAttrRenamed(attrs[rng.Intn(len(attrs))], "Zren"); err == nil {
			return nr
		}
	case 2:
		if r.Arity() > 1 {
			if nr, err := r.WithoutAttr(attrs[rng.Intn(len(attrs))]); err == nil {
				return nr
			}
		}
	case 3:
		if nr, err := r.Project(attrs[:1+rng.Intn(len(attrs))]); err == nil {
			return nr
		}
	case 4:
		col := make([]string, r.Len())
		for i := range col {
			col[i] = string(rune('a' + rng.Intn(26)))
		}
		if nr, err := r.WithColumn("Znew", col); err == nil {
			return nr
		}
	case 5:
		if nr, err := r.WithName("Zname"); err == nil {
			return nr
		}
	}
	return r
}

// TestPropertyMemoizedFingerprintMatchesRecompute pins the tentpole's
// soundness condition: after any sequence of operations, the memoized
// canonical form equals a from-scratch recomputation.
func TestPropertyMemoizedFingerprintMatchesRecompute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, "R")
		for i := 0; i < 4; i++ {
			r = mutate(rng, r)
		}
		// Touch the memo first so a stale cache would be caught.
		memoRows, memoFP := r.canonicalRows(), r.Fingerprint()
		rows, fp := r.computeCanonical()
		if fp != memoFP || len(rows) != len(memoRows) {
			return false
		}
		for i := range rows {
			if rows[i] != memoRows[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyKeyIffEqual pins the compact key's collision semantics: two
// databases have equal 128-bit keys iff they are Equal (up to SHA-256
// collisions, which this test would surface as a miracle).
func TestPropertyKeyIffEqual(t *testing.T) {
	f := func(a, b int64) bool {
		dbA := randomDatabase(rand.New(rand.NewSource(a)))
		dbB := randomDatabase(rand.New(rand.NewSource(b)))
		return dbA.Equal(dbB) == (dbA.Key() == dbB.Key())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestKeyInsensitiveToConstructionOrder: semantically equal databases built
// along different construction paths (row order, attribute order) must agree
// on the key.
func TestKeyInsensitiveToConstructionOrder(t *testing.T) {
	a := MustDatabase(
		MustNew("R", []string{"A", "B"}, Tuple{"1", "2"}, Tuple{"3", "4"}),
		MustNew("S", []string{"X"}, Tuple{"x"}),
	)
	b := MustDatabase(
		MustNew("S", []string{"X"}, Tuple{"x"}),
		MustNew("R", []string{"B", "A"}, Tuple{"4", "3"}, Tuple{"2", "1"}),
	)
	if !a.Equal(b) {
		t.Fatal("setup: databases should be equal")
	}
	if a.Key() != b.Key() {
		t.Fatal("equal databases disagree on Key")
	}
	if len(a.Key()) != 16 {
		t.Fatalf("Key length = %d, want 16 bytes", len(a.Key()))
	}
	c := a.WithRelation(MustNew("T", []string{"Q"}))
	if a.Key() == c.Key() {
		t.Fatal("distinct databases share a Key")
	}
}

// TestPropertyIndexMatchesScan cross-checks the containment index against
// the reference nested-loop scan on randomized database pairs, plus derived
// pairs engineered to answer true (projections/subsets of the state).
func TestPropertyIndexMatchesScan(t *testing.T) {
	f := func(a, b int64) bool {
		dbA := randomDatabase(rand.New(rand.NewSource(a)))
		dbB := randomDatabase(rand.New(rand.NewSource(b)))
		for _, pair := range [][2]*Database{{dbA, dbB}, {dbB, dbA}, {dbA, dbA}} {
			state, target := pair[0], pair[1]
			if NewContainmentIndex(target).Contains(state) != state.Contains(target) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestIndexMatchesScanOnProjections builds targets that are genuinely
// contained (attribute projections with fewer rows), so the true branch of
// the cross-check is exercised, not just random mismatches.
func TestIndexMatchesScanOnProjections(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		state := randomDatabase(rng)
		var targetRels []*Relation
		for _, r := range state.Relations() {
			attrs := r.Attrs()
			proj, err := r.Project(attrs[:1+rng.Intn(len(attrs))])
			if err != nil {
				t.Fatal(err)
			}
			if proj.Len() > 1 {
				proj = MustNew(proj.Name(), proj.Attrs(), proj.Rows()[:proj.Len()/2]...)
			}
			targetRels = append(targetRels, proj)
		}
		target := MustDatabase(targetRels...)
		want := state.Contains(target)
		if !want {
			t.Fatalf("trial %d: projection target should be contained", trial)
		}
		if got := NewContainmentIndex(target).Contains(state); got != want {
			t.Fatalf("trial %d: index=%v scan=%v", trial, got, want)
		}
	}
}

// TestIndexSeparatorHostileValues pins exact tuple matching: values that
// contain the canonical-rendering separator bytes must not confuse the
// index's row encodings (the length-prefixed rowKey makes them unambiguous).
func TestIndexSeparatorHostileValues(t *testing.T) {
	state := MustDatabase(MustNew("R", []string{"A", "B"}, Tuple{"x\x1fy", "z"}))
	// The concatenation "x" + sep + "y\x1fz" renders identically under a
	// naive separator join but is a different tuple.
	target := MustDatabase(MustNew("R", []string{"A", "B"}, Tuple{"x", "y\x1fz"}))
	if got, want := NewContainmentIndex(target).Contains(state), state.Contains(target); got != want {
		t.Fatalf("index=%v scan=%v on separator-hostile values", got, want)
	}
	if NewContainmentIndex(target).Contains(state) {
		t.Fatal("index matched distinct tuples whose separator-joined renderings collide")
	}
	same := MustDatabase(MustNew("R", []string{"A", "B"}, Tuple{"x\x1fy", "z"}))
	if !NewContainmentIndex(same).Contains(state) {
		t.Fatal("index rejected an identical tuple with separator bytes")
	}
}

// TestIndexEmptyTargetRelation: a target relation with no rows is contained
// in any state relation that has its attributes.
func TestIndexEmptyTargetRelation(t *testing.T) {
	state := MustDatabase(MustNew("R", []string{"A"}, Tuple{"1"}))
	target := MustDatabase(MustNew("R", []string{"A"}))
	if !NewContainmentIndex(target).Contains(state) {
		t.Fatal("empty target relation should be contained")
	}
	missing := MustDatabase(MustNew("R", []string{"Z"}))
	if NewContainmentIndex(missing).Contains(state) {
		t.Fatal("target attribute missing from state should not be contained")
	}
}

func TestBuilderMatchesNew(t *testing.T) {
	rows := []Tuple{{"1", "2"}, {"3", "4"}, {"1", "2"}, {"", "\x1f"}}
	b, err := NewBuilder("R", []string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if err := b.Add(row); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Len(); got != 3 {
		t.Fatalf("builder Len = %d, want 3 (duplicate dropped)", got)
	}
	built := b.Relation()
	ref := MustNew("R", []string{"A", "B"}, rows...)
	if !built.Equal(ref) {
		t.Fatalf("builder relation differs from New:\n%s\nvs\n%s", built, ref)
	}
	if err := b.Add(Tuple{"5", "6"}); err == nil {
		t.Fatal("Add after Relation() should fail")
	}
	if b.Len() != 0 {
		t.Fatal("finalized builder should report zero length")
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder("", []string{"A"}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := NewBuilder("R", []string{"A", "A"}); err == nil {
		t.Fatal("duplicate attribute accepted")
	}
	b, err := NewBuilder("R", []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Add(Tuple{"1", "2"}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

// TestBuilderRowsDetached: mutating the caller's tuple after Add must not
// change the built relation (Add clones).
func TestBuilderRowsDetached(t *testing.T) {
	b, err := NewBuilder("R", []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	row := Tuple{"original"}
	if err := b.Add(row); err != nil {
		t.Fatal(err)
	}
	row[0] = "mutated"
	r := b.Relation()
	if got, _ := r.Value(0, "A"); got != "original" {
		t.Fatalf("builder shared the caller's tuple: got %q", got)
	}
}
