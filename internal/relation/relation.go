// Package relation implements the relational data model that underlies the
// TUPELO data mapping system ("Data Mapping as Search", EDBT 2006).
//
// The model is deliberately syntactic, matching the paper: every value is a
// string, relations are named sets of tuples over an ordered list of
// attribute names, and a database is a named collection of relations.
// All operations are copy-on-write so that values of these types can be used
// as immutable search states.
//
// Storage is columnar and interned (DESIGN.md §12): a Relation holds one
// dense []Symbol slice per attribute, resolved through the run-wide intern
// dictionary. The string-facing API (Tuple, Rows, ValuesOf, Value) is a
// decode layer over the columns; the hot search path — hashing, fragment
// construction, containment probes, operator application — reads the int32
// columns directly and never materializes a string.
package relation

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// Tuple is a single row of a relation. Its length always equals the number
// of attributes of the relation that holds it.
type Tuple []string

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports whether two tuples have identical values position-wise.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Relation is a named set of tuples over an ordered attribute list.
// The zero value is not useful; construct relations with New or MustNew.
// Tuples are held with set semantics: exact duplicates are removed on
// construction and insertion.
//
// Cells are stored as per-attribute symbol columns: cols[j][i] is the
// interned value of attribute j in row i, and every column has length
// nrows. Name and attributes are kept both as strings (the API's currency)
// and as their symbols (the hot path's).
type Relation struct {
	name     string
	nameSym  Symbol
	attrs    []string
	attrSyms []Symbol
	cols     [][]Symbol
	nrows    int

	// memo caches every lazily derived identity of the relation — 128-bit
	// hash, canonical fingerprint, TNF fragment, distinct column values, row
	// key set — each computed exactly once. Relations are immutable once
	// published — every constructor in this package finishes mutating
	// columns before the value escapes — so the memoization is sound, and
	// the sync.Onces make the lazy computations safe when parallel successor
	// workers race to identify states that share a relation. The memo is
	// held by pointer so a fresh one is allocated wherever a new Relation is
	// built (New, Clone) and never copied along with in-progress state.
	memo *canonMemo
}

// canonMemo holds the lazily computed derived forms of a relation. The
// fields group into independent sync.Once-guarded families so each consumer
// pays only for what it uses: the hot search path needs hash + fragment and
// never renders the string fingerprint; diagnostic paths (Fingerprint,
// Equal) render the canonical strings on demand.
type canonMemo struct {
	// Compact identity: two 64-bit lanes mixed over the per-symbol content
	// signatures. Content-based, so stable across processes.
	hashOnce sync.Once
	hash     [16]byte

	// Canonical string form: sorted-attr row renderings and fingerprint.
	// This is the retained string-path reference the differential tests
	// cross-check the columnar identities against.
	canonOnce sync.Once
	rows      []string // canonical rows: sorted-attr rendering, sorted
	fp        string   // full canonical fingerprint string

	// TNF fragment (fragment.go).
	fragOnce sync.Once
	frag     *Fragment

	// Distinct symbols per column, first-occurrence order; indexed like
	// attrs. Input to the move generators' membership scans.
	symColsOnce sync.Once
	symCols     [][]Symbol

	// Distinct values per column, decoded and sorted; indexed like attrs.
	colsOnce sync.Once
	cols     [][]string

	// Symbol row keys of every row, built on first Insert against this
	// relation; shared semantics with Builder.seen. Turns the duplicate
	// check of copy-on-write insertion into one map lookup.
	rowSetOnce sync.Once
	rowSet     map[string]bool

	// Attribute name → position, built on first lookup over a wide schema.
	// Narrow schemas — the common case — resolve attributes by linear scan
	// and never build the map: search successors are created by the million,
	// and most are hashed and discarded without a single attribute lookup,
	// so constructors must not pay for an index eagerly.
	indexOnce sync.Once
	index     map[string]int
}

// attrScanMax is the widest schema resolved by linear scan; beyond it,
// lookup builds the memoized index map.
const attrScanMax = 8

// lookup returns the position of attribute a, or -1 if absent.
func (r *Relation) lookup(a string) int {
	if len(r.attrs) <= attrScanMax {
		for i, name := range r.attrs {
			if name == a {
				return i
			}
		}
		return -1
	}
	m := r.memo
	m.indexOnce.Do(func() {
		idx := make(map[string]int, len(r.attrs))
		for i, name := range r.attrs {
			idx[name] = i
		}
		m.index = idx
	})
	if i, ok := m.index[a]; ok {
		return i
	}
	return -1
}

// validateSchema checks the constructor invariants shared by every way of
// building a relation: non-empty name, non-empty unique attribute names.
func validateSchema(name string, attrs []string) error {
	if name == "" {
		return fmt.Errorf("relation: empty relation name")
	}
	for i, a := range attrs {
		if a == "" {
			return fmt.Errorf("relation %s: empty attribute name at position %d", name, i)
		}
		for _, prev := range attrs[:i] {
			if prev == a {
				return fmt.Errorf("relation %s: duplicate attribute %q", name, a)
			}
		}
	}
	return nil
}

// newEmpty builds a rowless relation with an owned copy of the schema and
// its interned form.
func newEmpty(name string, attrs []string) (*Relation, error) {
	if err := validateSchema(name, attrs); err != nil {
		return nil, err
	}
	r := &Relation{
		name:     name,
		nameSym:  Intern(name),
		attrs:    append([]string(nil), attrs...),
		attrSyms: make([]Symbol, len(attrs)),
		cols:     make([][]Symbol, len(attrs)),
		memo:     &canonMemo{},
	}
	for j, a := range r.attrs {
		r.attrSyms[j] = Intern(a)
	}
	return r, nil
}

// New creates a relation. It fails if the name or any attribute is empty,
// attributes are duplicated, or a row's arity differs from the schema.
// Duplicate rows are silently dropped (set semantics).
func New(name string, attrs []string, rows ...Tuple) (*Relation, error) {
	r, err := newEmpty(name, attrs)
	if err != nil {
		return nil, err
	}
	switch len(rows) {
	case 0:
	case 1:
		// One row cannot duplicate anything; skip the dedupe set. The
		// paper's critical instances are single-tuple, so search successors
		// hit this path constantly.
		if len(rows[0]) != len(r.attrs) {
			return nil, fmt.Errorf("relation %s: row arity %d does not match schema arity %d", r.name, len(rows[0]), len(r.attrs))
		}
		backing := make([]Symbol, len(rows[0]))
		for j, v := range rows[0] {
			backing[j] = Intern(v)
			r.cols[j] = backing[j : j+1 : j+1]
		}
		r.nrows = 1
	default:
		seen := make(map[string]bool, len(rows))
		syms := make([]Symbol, len(attrs))
		buf := make([]byte, 0, 4*len(attrs))
		for _, row := range rows {
			if len(row) != len(r.attrs) {
				return nil, fmt.Errorf("relation %s: row arity %d does not match schema arity %d", r.name, len(row), len(r.attrs))
			}
			for j, v := range row {
				syms[j] = Intern(v)
			}
			buf = buf[:0]
			for _, s := range syms {
				buf = appendSymKey(buf, s)
			}
			if seen[string(buf)] {
				continue
			}
			seen[string(buf)] = true
			r.appendRowSyms(syms)
		}
	}
	return r, nil
}

// MustNew is like New but panics on error. It is intended for tests,
// examples, and statically known inputs.
func MustNew(name string, attrs []string, rows ...Tuple) *Relation {
	r, err := New(name, attrs, rows...)
	if err != nil {
		panic(err)
	}
	return r
}

// NewFromColumns constructs a relation directly from interned symbol
// columns, taking ownership of cols (callers must not retain or modify the
// slices). nrows is the explicit row count — it carries the information
// when arity is zero and is validated against every column otherwise. No
// duplicate detection is performed: callers guarantee the rows are
// distinct, which the column-splicing FIRA operators (demote, product,
// partition) can prove structurally. This is the zero-decode construction
// path of the search hot loop.
func NewFromColumns(name string, attrs []string, cols [][]Symbol, nrows int) (*Relation, error) {
	if err := validateSchema(name, attrs); err != nil {
		return nil, err
	}
	if len(cols) != len(attrs) {
		return nil, fmt.Errorf("relation %s: %d columns for %d attributes", name, len(cols), len(attrs))
	}
	if nrows < 0 || (len(attrs) == 0 && nrows > 1) {
		return nil, fmt.Errorf("relation %s: invalid row count %d", name, nrows)
	}
	for j, c := range cols {
		if len(c) != nrows {
			return nil, fmt.Errorf("relation %s: column %q has %d values for %d rows", name, attrs[j], len(c), nrows)
		}
	}
	r := &Relation{
		name:     name,
		nameSym:  Intern(name),
		attrs:    append([]string(nil), attrs...),
		attrSyms: make([]Symbol, len(attrs)),
		cols:     cols,
		nrows:    nrows,
		memo:     &canonMemo{},
	}
	for j, a := range r.attrs {
		r.attrSyms[j] = Intern(a)
	}
	return r, nil
}

// appendRowSyms appends one row given as symbols, copying the values into
// the columns. Callers have already checked arity and duplicates.
func (r *Relation) appendRowSyms(syms []Symbol) {
	for j, s := range syms {
		r.cols[j] = append(r.cols[j], s)
	}
	r.nrows++
}

// appendSymKey appends the 4-byte little-endian encoding of a symbol.
// Concatenated symbol keys of one schema are injective: fixed width, so two
// rows have equal keys iff they are symbol-wise (hence string-wise) equal.
func appendSymKey(buf []byte, s Symbol) []byte {
	return append(buf, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
}

// appendRowKey appends row i's symbol key across all columns.
func (r *Relation) appendRowKey(buf []byte, i int) []byte {
	for j := range r.cols {
		buf = appendSymKey(buf, r.cols[j][i])
	}
	return buf
}

// rowSet returns the memoized symbol-key set of the relation's rows,
// building it on first use: Insert's duplicate check is then one map
// lookup, so a chain of n copy-on-write inserts costs O(n·arity) key
// encodings instead of the O(n²) tuple scans it once did.
func (r *Relation) rowSet() map[string]bool {
	m := r.memo
	m.rowSetOnce.Do(func() {
		set := make(map[string]bool, r.nrows)
		buf := make([]byte, 0, 4*len(r.cols))
		for i := 0; i < r.nrows; i++ {
			buf = r.appendRowKey(buf[:0], i)
			set[string(buf)] = true
		}
		m.rowSet = set
	})
	return m.rowSet
}

// appendValueKey appends v to buf with a length prefix, so concatenated
// encodings decode unambiguously whatever bytes the values contain —
// exact tuple equality, unlike separator-joined renderings. This is the
// string-path encoding behind the canonical fingerprint.
func appendValueKey(buf []byte, v string) []byte {
	buf = strconv.AppendInt(buf, int64(len(v)), 10)
	buf = append(buf, ':')
	return append(buf, v...)
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// NameSymbol returns the interned relation name.
func (r *Relation) NameSymbol() Symbol { return r.nameSym }

// Attrs returns a copy of the ordered attribute list.
func (r *Relation) Attrs() []string { return append([]string(nil), r.attrs...) }

// AttrSymbols returns the interned attribute names in schema order, shared:
// callers must treat the slice as read-only.
func (r *Relation) AttrSymbols() []Symbol { return r.attrSyms }

// Column returns attribute j's value column, shared: callers must treat the
// slice as read-only. It is the move generators' and operators' direct view
// of the storage.
func (r *Relation) Column(j int) []Symbol { return r.cols[j] }

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.attrs) }

// Len returns the number of tuples.
func (r *Relation) Len() int { return r.nrows }

// HasAttr reports whether the relation has an attribute with the given name.
func (r *Relation) HasAttr(a string) bool { return r.lookup(a) >= 0 }

// HasAttrSymbol reports whether the interned name s is one of the
// relation's attributes.
func (r *Relation) HasAttrSymbol(s Symbol) bool {
	for _, a := range r.attrSyms {
		if a == s {
			return true
		}
	}
	return false
}

// AttrIndex returns the position of attribute a, or -1 if absent.
func (r *Relation) AttrIndex(a string) int { return r.lookup(a) }

// Row returns the i-th tuple, decoded from the columns. The tuple is the
// caller's to keep.
func (r *Relation) Row(i int) Tuple {
	strs := strsSnapshot()
	out := make(Tuple, len(r.cols))
	for j := range r.cols {
		out[j] = strs[r.cols[j][i]]
	}
	return out
}

// Rows returns all tuples, decoded from the columns.
func (r *Relation) Rows() []Tuple {
	strs := strsSnapshot()
	out := make([]Tuple, r.nrows)
	for i := 0; i < r.nrows; i++ {
		row := make(Tuple, len(r.cols))
		for j := range r.cols {
			row[j] = strs[r.cols[j][i]]
		}
		out[i] = row
	}
	return out
}

// Value returns the value of attribute a in the i-th tuple.
// It returns false if the attribute does not exist.
func (r *Relation) Value(i int, a string) (string, bool) {
	j := r.lookup(a)
	if j < 0 {
		return "", false
	}
	return r.cols[j][i].String(), true
}

// HasEmptyCell reports whether any cell holds the absent value (the empty
// string) — the precondition for µ (merge) to change anything.
func (r *Relation) HasEmptyCell() bool {
	for _, c := range r.cols {
		for _, s := range c {
			if s == emptySym {
				return true
			}
		}
	}
	return false
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	cols := make([][]Symbol, len(r.cols))
	for j, c := range r.cols {
		cols[j] = append([]Symbol(nil), c...)
	}
	return &Relation{
		name:     r.name,
		nameSym:  r.nameSym,
		attrs:    append([]string(nil), r.attrs...),
		attrSyms: append([]Symbol(nil), r.attrSyms...),
		cols:     cols,
		nrows:    r.nrows,
		memo:     &canonMemo{}, // fresh: the copy may be mutated before publication
	}
}

// shallowClone copies the relation's schema (name, attrs) and shares its
// column storage. Columns are immutable after publication and never mutated
// by this package, so sharing is safe; the full-capacity slice expressions
// keep an append on the copy (Insert) from aliasing into the original's
// backing arrays. Constructors that only touch schema — the rename
// operators of the search hot path — use this instead of Clone to avoid
// re-copying every cell of the relation.
func (r *Relation) shallowClone() *Relation {
	out := r.shallowCloneSharedSchema()
	out.attrs = append([]string(nil), r.attrs...)
	out.attrSyms = append([]Symbol(nil), r.attrSyms...)
	return out
}

// shallowCloneSharedSchema is shallowClone without the attribute copies: the
// attrs and attrSyms slices are shared with the receiver. Only safe for
// callers that never write into them (WithName, Insert); a later rename on
// the clone goes through shallowClone again and copies before mutating, so
// the sharing never propagates a write.
func (r *Relation) shallowCloneSharedSchema() *Relation {
	cols := make([][]Symbol, len(r.cols))
	for j, c := range r.cols {
		cols[j] = c[:len(c):len(c)]
	}
	return &Relation{
		name:     r.name,
		nameSym:  r.nameSym,
		attrs:    r.attrs,
		attrSyms: r.attrSyms,
		cols:     cols,
		nrows:    r.nrows,
		memo:     &canonMemo{},
	}
}

// WithName returns a copy of the relation under a new name.
func (r *Relation) WithName(name string) (*Relation, error) {
	if name == "" {
		return nil, fmt.Errorf("relation: empty relation name")
	}
	out := r.shallowCloneSharedSchema()
	out.name = name
	out.nameSym = Intern(name)
	return out, nil
}

// WithAttrRenamed returns a copy with attribute old renamed to new.
func (r *Relation) WithAttrRenamed(old, new string) (*Relation, error) {
	i := r.lookup(old)
	if i < 0 {
		return nil, fmt.Errorf("relation %s: no attribute %q", r.name, old)
	}
	if new == "" {
		return nil, fmt.Errorf("relation %s: empty attribute name", r.name)
	}
	if r.lookup(new) >= 0 && new != old {
		return nil, fmt.Errorf("relation %s: attribute %q already exists", r.name, new)
	}
	out := r.shallowClone()
	out.attrs[i] = new
	out.attrSyms[i] = Intern(new)
	return out, nil
}

// withColumnSyms is the engine behind WithColumn and WithColumnSyms: append
// a new attribute whose column is the given symbol slice (ownership
// transferred). Extending distinct rows with a new column cannot create
// duplicates — if two extended rows were equal, their prefixes, the
// original already-distinct rows, would be too — so no deduplication runs.
func (r *Relation) withColumnSyms(attr string, col []Symbol) (*Relation, error) {
	if attr == "" {
		return nil, fmt.Errorf("relation %s: empty attribute name", r.name)
	}
	if r.lookup(attr) >= 0 {
		return nil, fmt.Errorf("relation %s: attribute %q already exists", r.name, attr)
	}
	if len(col) != r.nrows {
		return nil, fmt.Errorf("relation %s: %d column values for %d rows", r.name, len(col), r.nrows)
	}
	cols := make([][]Symbol, len(r.cols)+1)
	for j, c := range r.cols {
		cols[j] = c[:len(c):len(c)]
	}
	cols[len(r.cols)] = col
	return &Relation{
		name:     r.name,
		nameSym:  r.nameSym,
		attrs:    append(r.Attrs(), attr),
		attrSyms: append(append([]Symbol(nil), r.attrSyms...), Intern(attr)),
		cols:     cols,
		nrows:    r.nrows,
		memo:     &canonMemo{},
	}, nil
}

// WithColumn returns a copy with a new attribute appended. values[i] becomes
// the value of the new attribute in row i; len(values) must equal Len().
func (r *Relation) WithColumn(attr string, values []string) (*Relation, error) {
	col := make([]Symbol, len(values))
	for i, v := range values {
		col[i] = Intern(v)
	}
	return r.withColumnSyms(attr, col)
}

// WithColumnSyms is WithColumn over already-interned values; the column's
// ownership transfers to the new relation. FIRA operators that compute the
// new column from existing columns (promote, deref) use it to keep cell
// movement inside symbol space.
func (r *Relation) WithColumnSyms(attr string, col []Symbol) (*Relation, error) {
	return r.withColumnSyms(attr, col)
}

// projectCols builds a relation from the receiver's rows restricted to the
// column positions idx (in idx order) under the given schema, collapsing
// duplicate rows first-wins. When no duplicates arise the projected columns
// are shared with the receiver capacity-capped; otherwise surviving rows
// are gathered into fresh columns.
func (r *Relation) projectCols(attrs []string, idx []int) (*Relation, error) {
	out, err := newEmpty(r.name, attrs)
	if err != nil {
		return nil, err
	}
	if r.nrows <= 1 {
		// A single row cannot duplicate anything; share the columns.
		for k, j := range idx {
			c := r.cols[j]
			out.cols[k] = c[:len(c):len(c)]
		}
		out.nrows = r.nrows
		return out, nil
	}
	seen := make(map[string]bool, r.nrows)
	keep := make([]int, 0, r.nrows)
	buf := make([]byte, 0, 4*len(idx))
	for i := 0; i < r.nrows; i++ {
		buf = buf[:0]
		for _, j := range idx {
			buf = appendSymKey(buf, r.cols[j][i])
		}
		if seen[string(buf)] {
			continue
		}
		seen[string(buf)] = true
		keep = append(keep, i)
	}
	if len(keep) == r.nrows {
		for k, j := range idx {
			c := r.cols[j]
			out.cols[k] = c[:len(c):len(c)]
		}
		out.nrows = r.nrows
		return out, nil
	}
	for k, j := range idx {
		src := r.cols[j]
		c := make([]Symbol, len(keep))
		for n, i := range keep {
			c[n] = src[i]
		}
		out.cols[k] = c
	}
	out.nrows = len(keep)
	return out, nil
}

// WithoutAttr returns a copy with attribute a dropped (the paper's π̄
// operator at the relation level). Duplicate rows that arise from the drop
// collapse, per set semantics.
func (r *Relation) WithoutAttr(a string) (*Relation, error) {
	j := r.lookup(a)
	if j < 0 {
		return nil, fmt.Errorf("relation %s: no attribute %q", r.name, a)
	}
	attrs := make([]string, 0, len(r.attrs)-1)
	idx := make([]int, 0, len(r.attrs)-1)
	for i, name := range r.attrs {
		if i != j {
			attrs = append(attrs, name)
			idx = append(idx, i)
		}
	}
	return r.projectCols(attrs, idx)
}

// Project returns a copy containing only the named attributes, in the given
// order. Duplicate rows collapse.
func (r *Relation) Project(attrs []string) (*Relation, error) {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		j := r.lookup(a)
		if j < 0 {
			return nil, fmt.Errorf("relation %s: no attribute %q", r.name, a)
		}
		idx[i] = j
	}
	return r.projectCols(attrs, idx)
}

// distinctSymbols computes the per-column distinct symbols exactly once, in
// first-occurrence order. Move generators ask set-membership questions
// ("does this column carry a target attribute name?") on every expansion of
// a state whose relations are mostly shared with its ancestors, so the
// memoized form turns repeated scans into slice reads over int32s.
func (r *Relation) distinctSymbols() [][]Symbol {
	m := r.memo
	m.symColsOnce.Do(func() {
		cols := make([][]Symbol, len(r.cols))
		seen := make(map[Symbol]bool)
		for j, c := range r.cols {
			clear(seen)
			var out []Symbol
			for _, s := range c {
				if !seen[s] {
					seen[s] = true
					out = append(out, s)
				}
			}
			cols[j] = out
		}
		m.symCols = cols
	})
	return m.symCols
}

// DistinctSymbols returns the distinct symbols of column j in
// first-occurrence order, memoized and shared: callers must treat the slice
// as read-only. Membership scans over it are order-insensitive; callers
// that need deterministic value ordering use DistinctValues.
func (r *Relation) DistinctSymbols(j int) []Symbol {
	return r.distinctSymbols()[j]
}

// distinctValues computes the per-column sorted distinct values exactly
// once, decoding the distinct symbol sets.
func (r *Relation) distinctValues() [][]string {
	m := r.memo
	m.colsOnce.Do(func() {
		syms := r.distinctSymbols()
		strs := strsSnapshot()
		cols := make([][]string, len(syms))
		for j, c := range syms {
			out := make([]string, len(c))
			for i, s := range c {
				out[i] = strs[s]
			}
			sort.Strings(out)
			cols[j] = out
		}
		m.cols = cols
	})
	return m.cols
}

// DistinctValues returns the distinct values of attribute a in sorted order,
// memoized on the relation. The returned slice is shared — callers must not
// modify it. It returns nil if the attribute does not exist; hot-path
// callers that already validated the attribute use this instead of ValuesOf
// to skip both the error path and the defensive copy.
func (r *Relation) DistinctValues(a string) []string {
	j := r.lookup(a)
	if j < 0 {
		return nil
	}
	return r.distinctValues()[j]
}

// ValuesOf returns the distinct values of attribute a in sorted order.
// The slice is the caller's to keep (it is a copy of the memoized form).
func (r *Relation) ValuesOf(a string) ([]string, error) {
	j := r.lookup(a)
	if j < 0 {
		return nil, fmt.Errorf("relation %s: no attribute %q", r.name, a)
	}
	return append([]string(nil), r.distinctValues()[j]...), nil
}

// Insert returns a copy of the relation with the row added. The copy shares
// the original's column storage; the appends reallocate, so the original is
// unaffected. The duplicate check is one lookup in the memoized row-key set
// — repeated Insert against a growing chain stays linear, not quadratic.
func (r *Relation) Insert(row Tuple) (*Relation, error) {
	if len(row) != len(r.attrs) {
		return nil, fmt.Errorf("relation %s: row arity %d does not match schema arity %d", r.name, len(row), len(r.attrs))
	}
	syms := make([]Symbol, len(row))
	buf := make([]byte, 0, 4*len(row))
	for j, v := range row {
		syms[j] = Intern(v)
		buf = appendSymKey(buf, syms[j])
	}
	out := r.shallowCloneSharedSchema()
	if r.rowSet()[string(buf)] {
		return out, nil
	}
	out.appendRowSyms(syms)
	return out, nil
}

// computeCanonical renders the canonical form from scratch: each row
// rendered as its values in sorted-attribute-name order (length-prefixed,
// so arbitrary value bytes stay unambiguous), rows sorted, plus the full
// fingerprint built from them. Attribute names appear once in the
// fingerprint header, not in every row: both sides of any comparison render
// through the same sorted-name order, so the per-row projection is already
// aligned. The fingerprint prefixes the attribute and row counts, which
// makes the flat concatenation parse deterministically — no sequence of
// (name, attrs, rows) collides with a different one. This function is the
// single source of truth the memo caches; tests call it directly to
// cross-check memoized values, and the differential suite checks the
// columnar hash agrees with it on equality.
func (r *Relation) computeCanonical() (rows []string, fp string) {
	strs := strsSnapshot()
	order := r.sortedAttrOrder()
	names := make([]string, len(order))
	for i, j := range order {
		names[i] = r.attrs[j]
	}
	rows = make([]string, r.nrows)
	var buf []byte
	for i := 0; i < r.nrows; i++ {
		buf = buf[:0]
		for _, j := range order {
			buf = appendValueKey(buf, strs[r.cols[j][i]])
		}
		rows[i] = string(buf)
	}
	sort.Strings(rows)
	fpBuf := make([]byte, 0, 64+16*len(names)+32*len(rows))
	fpBuf = appendValueKey(fpBuf, r.name)
	fpBuf = strconv.AppendInt(fpBuf, int64(len(names)), 10)
	fpBuf = append(fpBuf, ';')
	for _, a := range names {
		fpBuf = appendValueKey(fpBuf, a)
	}
	fpBuf = strconv.AppendInt(fpBuf, int64(len(rows)), 10)
	fpBuf = append(fpBuf, ';')
	for _, row := range rows {
		fpBuf = appendValueKey(fpBuf, row)
	}
	return rows, string(fpBuf)
}

// canonicalize computes the canonical string form exactly once. Safe for
// concurrent callers: parallel successor workers fingerprinting states that
// share this relation synchronize on the memo's sync.Once.
func (r *Relation) canonicalize() {
	r.memo.canonOnce.Do(func() {
		r.memo.rows, r.memo.fp = r.computeCanonical()
	})
}

// canonicalRows returns the memoized canonical row rendering; used for
// order-insensitive comparison.
func (r *Relation) canonicalRows() []string {
	r.canonicalize()
	return r.memo.rows
}

// Equal reports semantic equality: same name, same attribute set (order
// insensitive), same set of tuples.
func (r *Relation) Equal(s *Relation) bool {
	if r == s {
		return true
	}
	if r.name != s.name || len(r.attrs) != len(s.attrs) || r.nrows != s.nrows {
		return false
	}
	for _, a := range r.attrs {
		if !s.HasAttr(a) {
			return false
		}
	}
	rc, sc := r.canonicalRows(), s.canonicalRows()
	for i := range rc {
		if rc[i] != sc[i] {
			return false
		}
	}
	return true
}

// Contains reports whether r is a structurally identical superset of s
// restricted to s's attributes: r has every attribute of s, and every tuple
// of s agrees with some tuple of r on s's attributes. This is the
// per-relation half of the paper's goal test (§2.3), kept as the
// nested-loop reference implementation the ContainmentIndex is
// cross-checked against. Symbol comparison is string comparison: equal
// strings intern to equal symbols.
func (r *Relation) Contains(s *Relation) bool {
	idx := make([]int, len(s.attrs))
	for i, a := range s.attrs {
		j := r.lookup(a)
		if j < 0 {
			return false
		}
		idx[i] = j
	}
	for si := 0; si < s.nrows; si++ {
		found := false
		for ri := 0; ri < r.nrows; ri++ {
			match := true
			for i, j := range idx {
				if r.cols[j][ri] != s.cols[i][si] {
					match = false
					break
				}
			}
			if match {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Fingerprint returns a canonical string identifying the relation up to
// attribute order and tuple order. It is memoized: the first call renders
// the canonical form, every later call returns the cached string, so a
// search successor that shares this relation copy-on-write pays nothing to
// re-identify it.
func (r *Relation) Fingerprint() string {
	r.canonicalize()
	return r.memo.fp
}

// sortedAttrOrder returns the attribute positions in sorted-attribute-name
// order — the column order every canonical rendering (fingerprint, hash)
// shares, so projections of both sides of any comparison align.
func (r *Relation) sortedAttrOrder() []int {
	return r.appendSortedAttrOrder(make([]int, 0, len(r.attrs)))
}

// appendSortedAttrOrder appends the sorted attribute positions to order,
// letting hot callers provide stack-array backing.
func (r *Relation) appendSortedAttrOrder(order []int) []int {
	for i := range r.attrs {
		order = append(order, i)
	}
	// Insertion sort: arities are small (the paper's schemas stay in single
	// digits) and this avoids sort.Slice's closure and reflection overhead
	// on a path hit once per relation ever created.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && r.attrs[order[j]] < r.attrs[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// hash-lane constants, shared with digest128.
const (
	hashK0 = 0x9e3779b97f4a7c15 // golden-ratio odd constant
	hashK1 = 0xbf58476d1ce4e5b9 // splitmix64 multiplier
)

// Hash returns a 128-bit digest of the relation's canonical identity,
// memoized. Equal relations have equal hashes; distinct relations collide
// with negligible probability — see the collision argument in DESIGN.md
// ("State identity" and §12).
//
// The digest is assembled entirely from fixed-width words: every interned
// symbol carries a 128-bit content signature (digest128 of its string,
// computed once at interning time), and the relation hash mixes the name
// signature, the attribute signatures in sorted-name order, and one
// signature per row — itself a mix of the row's cell signatures in
// sorted-attribute order — with row signatures sorted so the result is
// row-order invariant. Counts are absorbed as their own words, so schema
// and data cannot alias. Because cell signatures depend only on string
// content, the hash is deterministic across processes and independent of
// interning order, exactly like the byte-encoding digest it replaced — but
// it never touches a string: hashing is ~4 multiply-xor mixes per cell.
func (r *Relation) Hash() [16]byte {
	m := r.memo
	m.hashOnce.Do(func() {
		sigs := sigSnapshot()
		// Hash runs once per relation ever created — millions per search —
		// so the two scratch slices live in stack arrays at the paper's
		// single-digit arities and tuple counts.
		var orderArr [attrScanMax]int
		order := orderArr[:0]
		if len(r.attrs) > attrScanMax {
			order = make([]int, 0, len(r.attrs))
		}
		order = r.appendSortedAttrOrder(order)
		h0 := mix64(uint64(len(r.attrs)+1) * hashK0)
		h1 := mix64(uint64(len(r.attrs)+2) * hashK1)
		absorb := func(x uint64) {
			h0 = mix64(h0 ^ (x * hashK1))
			h1 = mix64(h1 ^ (x * hashK0))
		}
		ns := sigs[r.nameSym]
		absorb(ns.lo)
		absorb(ns.hi)
		for _, j := range order {
			as := sigs[r.attrSyms[j]]
			absorb(as.lo)
			absorb(as.hi)
		}
		absorb(uint64(r.nrows))
		// One signature per row: chain the cell signatures in sorted-attr
		// order, then sort the row signatures for permutation invariance
		// (rows are deduplicated; equal signatures mean — up to a collision
		// — equal rows, so ordering ties is immaterial). Insertion sort:
		// successor states mutate tiny critical instances.
		var rowSigArr [16]sigPair
		rowSigs := rowSigArr[:0]
		if r.nrows > len(rowSigArr) {
			rowSigs = make([]sigPair, 0, r.nrows)
		}
		for i := 0; i < r.nrows; i++ {
			s0 := mix64(uint64(len(order)+1) * hashK0)
			s1 := mix64(uint64(len(order)+2) * hashK1)
			for _, j := range order {
				cs := sigs[r.cols[j][i]]
				s0 = mix64(s0 ^ (cs.lo * hashK1))
				s1 = mix64(s1 ^ (cs.lo * hashK0))
				s0 = mix64(s0 ^ (cs.hi * hashK1))
				s1 = mix64(s1 ^ (cs.hi * hashK0))
			}
			rowSigs = append(rowSigs, sigPair{lo: s0, hi: s1})
		}
		for i := 1; i < len(rowSigs); i++ {
			for j := i; j > 0 && sigLess(rowSigs[j], rowSigs[j-1]); j-- {
				rowSigs[j], rowSigs[j-1] = rowSigs[j-1], rowSigs[j]
			}
		}
		for _, rs := range rowSigs {
			absorb(rs.lo)
			absorb(rs.hi)
		}
		// Cross the lanes once so each output half depends on every input.
		h0, h1 = mix64(h0^h1), mix64(h1+h0)
		var out [16]byte
		putLeUint64(out[0:8], h0)
		putLeUint64(out[8:16], h1)
		m.hash = out
	})
	return m.hash
}

// sigLess orders signature pairs lexicographically; the canonical row order
// behind Hash.
func sigLess(a, b sigPair) bool {
	if a.lo != b.lo {
		return a.lo < b.lo
	}
	return a.hi < b.hi
}
