// Package relation implements the relational data model that underlies the
// TUPELO data mapping system ("Data Mapping as Search", EDBT 2006).
//
// The model is deliberately syntactic, matching the paper: every value is a
// string, relations are named sets of tuples over an ordered list of
// attribute names, and a database is a named collection of relations.
// All operations are copy-on-write so that values of these types can be used
// as immutable search states.
package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple is a single row of a relation. Its length always equals the number
// of attributes of the relation that holds it.
type Tuple []string

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports whether two tuples have identical values position-wise.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Relation is a named set of tuples over an ordered attribute list.
// The zero value is not useful; construct relations with New or MustNew.
// Tuples are held with set semantics: exact duplicates are removed on
// construction and insertion.
type Relation struct {
	name  string
	attrs []string
	index map[string]int // attribute name -> position in attrs
	rows  []Tuple
}

// New creates a relation. It fails if the name or any attribute is empty,
// attributes are duplicated, or a row's arity differs from the schema.
// Duplicate rows are silently dropped (set semantics).
func New(name string, attrs []string, rows ...Tuple) (*Relation, error) {
	if name == "" {
		return nil, fmt.Errorf("relation: empty relation name")
	}
	r := &Relation{
		name:  name,
		attrs: append([]string(nil), attrs...),
		index: make(map[string]int, len(attrs)),
	}
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("relation %s: empty attribute name at position %d", name, i)
		}
		if _, dup := r.index[a]; dup {
			return nil, fmt.Errorf("relation %s: duplicate attribute %q", name, a)
		}
		r.index[a] = i
	}
	for _, row := range rows {
		if err := r.insert(row); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// MustNew is like New but panics on error. It is intended for tests,
// examples, and statically known inputs.
func MustNew(name string, attrs []string, rows ...Tuple) *Relation {
	r, err := New(name, attrs, rows...)
	if err != nil {
		panic(err)
	}
	return r
}

// insert adds a row, enforcing arity and set semantics.
func (r *Relation) insert(row Tuple) error {
	if len(row) != len(r.attrs) {
		return fmt.Errorf("relation %s: row arity %d does not match schema arity %d", r.name, len(row), len(r.attrs))
	}
	for _, existing := range r.rows {
		if existing.Equal(row) {
			return nil
		}
	}
	r.rows = append(r.rows, row.Clone())
	return nil
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Attrs returns a copy of the ordered attribute list.
func (r *Relation) Attrs() []string { return append([]string(nil), r.attrs...) }

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.attrs) }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.rows) }

// HasAttr reports whether the relation has an attribute with the given name.
func (r *Relation) HasAttr(a string) bool {
	_, ok := r.index[a]
	return ok
}

// AttrIndex returns the position of attribute a, or -1 if absent.
func (r *Relation) AttrIndex(a string) int {
	if i, ok := r.index[a]; ok {
		return i
	}
	return -1
}

// Row returns the i-th tuple. The returned tuple must not be modified.
func (r *Relation) Row(i int) Tuple { return r.rows[i] }

// Rows returns a deep copy of all tuples.
func (r *Relation) Rows() []Tuple {
	out := make([]Tuple, len(r.rows))
	for i, row := range r.rows {
		out[i] = row.Clone()
	}
	return out
}

// Value returns the value of attribute a in the i-th tuple.
// It returns false if the attribute does not exist.
func (r *Relation) Value(i int, a string) (string, bool) {
	j, ok := r.index[a]
	if !ok {
		return "", false
	}
	return r.rows[i][j], true
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	out := &Relation{
		name:  r.name,
		attrs: append([]string(nil), r.attrs...),
		index: make(map[string]int, len(r.index)),
		rows:  make([]Tuple, len(r.rows)),
	}
	for k, v := range r.index {
		out.index[k] = v
	}
	for i, row := range r.rows {
		out.rows[i] = row.Clone()
	}
	return out
}

// WithName returns a copy of the relation under a new name.
func (r *Relation) WithName(name string) (*Relation, error) {
	if name == "" {
		return nil, fmt.Errorf("relation: empty relation name")
	}
	out := r.Clone()
	out.name = name
	return out, nil
}

// WithAttrRenamed returns a copy with attribute old renamed to new.
func (r *Relation) WithAttrRenamed(old, new string) (*Relation, error) {
	i, ok := r.index[old]
	if !ok {
		return nil, fmt.Errorf("relation %s: no attribute %q", r.name, old)
	}
	if new == "" {
		return nil, fmt.Errorf("relation %s: empty attribute name", r.name)
	}
	if _, clash := r.index[new]; clash && new != old {
		return nil, fmt.Errorf("relation %s: attribute %q already exists", r.name, new)
	}
	out := r.Clone()
	out.attrs[i] = new
	delete(out.index, old)
	out.index[new] = i
	return out, nil
}

// WithColumn returns a copy with a new attribute appended. values[i] becomes
// the value of the new attribute in row i; len(values) must equal Len().
func (r *Relation) WithColumn(attr string, values []string) (*Relation, error) {
	if attr == "" {
		return nil, fmt.Errorf("relation %s: empty attribute name", r.name)
	}
	if _, clash := r.index[attr]; clash {
		return nil, fmt.Errorf("relation %s: attribute %q already exists", r.name, attr)
	}
	if len(values) != len(r.rows) {
		return nil, fmt.Errorf("relation %s: %d column values for %d rows", r.name, len(values), len(r.rows))
	}
	out, err := New(r.name, append(r.Attrs(), attr))
	if err != nil {
		return nil, err
	}
	for i, row := range r.rows {
		if err := out.insert(append(row.Clone(), values[i])); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// WithoutAttr returns a copy with attribute a dropped (the paper's π̄
// operator at the relation level). Duplicate rows that arise from the drop
// collapse, per set semantics.
func (r *Relation) WithoutAttr(a string) (*Relation, error) {
	j, ok := r.index[a]
	if !ok {
		return nil, fmt.Errorf("relation %s: no attribute %q", r.name, a)
	}
	attrs := make([]string, 0, len(r.attrs)-1)
	for i, name := range r.attrs {
		if i != j {
			attrs = append(attrs, name)
		}
	}
	out, err := New(r.name, attrs)
	if err != nil {
		return nil, err
	}
	for _, row := range r.rows {
		nr := make(Tuple, 0, len(row)-1)
		for i, v := range row {
			if i != j {
				nr = append(nr, v)
			}
		}
		if err := out.insert(nr); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Project returns a copy containing only the named attributes, in the given
// order. Duplicate rows collapse.
func (r *Relation) Project(attrs []string) (*Relation, error) {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		j, ok := r.index[a]
		if !ok {
			return nil, fmt.Errorf("relation %s: no attribute %q", r.name, a)
		}
		idx[i] = j
	}
	out, err := New(r.name, attrs)
	if err != nil {
		return nil, err
	}
	for _, row := range r.rows {
		nr := make(Tuple, len(idx))
		for i, j := range idx {
			nr[i] = row[j]
		}
		if err := out.insert(nr); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ValuesOf returns the distinct values of attribute a in sorted order.
func (r *Relation) ValuesOf(a string) ([]string, error) {
	j, ok := r.index[a]
	if !ok {
		return nil, fmt.Errorf("relation %s: no attribute %q", r.name, a)
	}
	seen := make(map[string]bool)
	var out []string
	for _, row := range r.rows {
		if !seen[row[j]] {
			seen[row[j]] = true
			out = append(out, row[j])
		}
	}
	sort.Strings(out)
	return out, nil
}

// Insert returns a copy of the relation with the row added.
func (r *Relation) Insert(row Tuple) (*Relation, error) {
	out := r.Clone()
	if err := out.insert(row); err != nil {
		return nil, err
	}
	return out, nil
}

// canonicalRows returns the rows rendered as strings with attributes in
// sorted-name order, then sorted; used for order-insensitive comparison.
func (r *Relation) canonicalRows() []string {
	order := make([]int, len(r.attrs))
	names := r.Attrs()
	sort.Strings(names)
	for i, a := range names {
		order[i] = r.index[a]
	}
	out := make([]string, len(r.rows))
	for i, row := range r.rows {
		var b strings.Builder
		for k, j := range order {
			if k > 0 {
				b.WriteByte('\x1f')
			}
			b.WriteString(names[k])
			b.WriteByte('\x1e')
			b.WriteString(row[j])
		}
		out[i] = b.String()
	}
	sort.Strings(out)
	return out
}

// Equal reports semantic equality: same name, same attribute set (order
// insensitive), same set of tuples.
func (r *Relation) Equal(s *Relation) bool {
	if r.name != s.name || len(r.attrs) != len(s.attrs) || len(r.rows) != len(s.rows) {
		return false
	}
	for a := range r.index {
		if !s.HasAttr(a) {
			return false
		}
	}
	rc, sc := r.canonicalRows(), s.canonicalRows()
	for i := range rc {
		if rc[i] != sc[i] {
			return false
		}
	}
	return true
}

// Contains reports whether r is a structurally identical superset of s
// restricted to s's attributes: r has every attribute of s, and every tuple
// of s agrees with some tuple of r on s's attributes. This is the
// per-relation half of the paper's goal test (§2.3).
func (r *Relation) Contains(s *Relation) bool {
	idx := make([]int, len(s.attrs))
	for i, a := range s.attrs {
		j, ok := r.index[a]
		if !ok {
			return false
		}
		idx[i] = j
	}
	for _, srow := range s.rows {
		found := false
		for _, rrow := range r.rows {
			match := true
			for i, j := range idx {
				if rrow[j] != srow[i] {
					match = false
					break
				}
			}
			if match {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Fingerprint returns a canonical string identifying the relation up to
// attribute order and tuple order.
func (r *Relation) Fingerprint() string {
	var b strings.Builder
	b.WriteString(r.name)
	b.WriteByte('\x1d')
	names := r.Attrs()
	sort.Strings(names)
	b.WriteString(strings.Join(names, "\x1f"))
	b.WriteByte('\x1d')
	b.WriteString(strings.Join(r.canonicalRows(), "\x1c"))
	return b.String()
}
