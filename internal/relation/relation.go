// Package relation implements the relational data model that underlies the
// TUPELO data mapping system ("Data Mapping as Search", EDBT 2006).
//
// The model is deliberately syntactic, matching the paper: every value is a
// string, relations are named sets of tuples over an ordered list of
// attribute names, and a database is a named collection of relations.
// All operations are copy-on-write so that values of these types can be used
// as immutable search states.
package relation

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// Tuple is a single row of a relation. Its length always equals the number
// of attributes of the relation that holds it.
type Tuple []string

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports whether two tuples have identical values position-wise.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Relation is a named set of tuples over an ordered attribute list.
// The zero value is not useful; construct relations with New or MustNew.
// Tuples are held with set semantics: exact duplicates are removed on
// construction and insertion.
type Relation struct {
	name  string
	attrs []string
	rows  []Tuple

	// memo caches every lazily derived identity of the relation — interned
	// symbols, 128-bit hash, canonical fingerprint, TNF fragment, distinct
	// column values — each computed exactly once. Relations are immutable
	// once published — every constructor in this package finishes mutating
	// rows before the value escapes — so the memoization is sound, and the
	// sync.Onces make the lazy computations safe when parallel successor
	// workers race to identify states that share a relation. The memo is
	// held by pointer so a fresh one is allocated wherever a new Relation is
	// built (New, Clone) and never copied along with in-progress state.
	memo *canonMemo
}

// canonMemo holds the lazily computed derived forms of a relation. The
// fields group into independent sync.Once-guarded families so each consumer
// pays only for what it uses: the hot search path needs syms + hash +
// fragment and never renders the string fingerprint; diagnostic paths
// (Fingerprint, Equal) render the canonical strings on demand.
type canonMemo struct {
	// Interned form: the relation's tokens as dictionary symbols, in schema
	// order. Input to the TNF fragment.
	symsOnce sync.Once
	nameSym  Symbol
	attrSyms []Symbol
	rowSyms  [][]Symbol

	// Compact identity: digest128 over the canonical byte encoding.
	// Content-based, so stable across processes.
	hashOnce sync.Once
	hash     [16]byte

	// Canonical string form: sorted-attr row renderings and fingerprint.
	canonOnce sync.Once
	rows      []string // canonical rows: sorted-attr rendering, sorted
	fp        string   // full canonical fingerprint string

	// TNF fragment (fragment.go).
	fragOnce sync.Once
	frag     *Fragment

	// Distinct values per column, sorted; indexed like attrs.
	colsOnce sync.Once
	cols     [][]string

	// Attribute name → position, built on first lookup over a wide schema.
	// Narrow schemas — the common case — resolve attributes by linear scan
	// and never build the map: search successors are created by the million,
	// and most are hashed and discarded without a single attribute lookup,
	// so constructors must not pay for an index eagerly.
	indexOnce sync.Once
	index     map[string]int
}

// attrScanMax is the widest schema resolved by linear scan; beyond it,
// lookup builds the memoized index map.
const attrScanMax = 8

// lookup returns the position of attribute a, or -1 if absent.
func (r *Relation) lookup(a string) int {
	if len(r.attrs) <= attrScanMax {
		for i, name := range r.attrs {
			if name == a {
				return i
			}
		}
		return -1
	}
	m := r.memo
	m.indexOnce.Do(func() {
		idx := make(map[string]int, len(r.attrs))
		for i, name := range r.attrs {
			idx[name] = i
		}
		m.index = idx
	})
	if i, ok := m.index[a]; ok {
		return i
	}
	return -1
}

// New creates a relation. It fails if the name or any attribute is empty,
// attributes are duplicated, or a row's arity differs from the schema.
// Duplicate rows are silently dropped (set semantics).
func New(name string, attrs []string, rows ...Tuple) (*Relation, error) {
	if name == "" {
		return nil, fmt.Errorf("relation: empty relation name")
	}
	r := &Relation{
		name:  name,
		attrs: append([]string(nil), attrs...),
		memo:  &canonMemo{},
	}
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("relation %s: empty attribute name at position %d", name, i)
		}
		for _, prev := range attrs[:i] {
			if prev == a {
				return nil, fmt.Errorf("relation %s: duplicate attribute %q", name, a)
			}
		}
	}
	switch len(rows) {
	case 0:
	case 1:
		// One row cannot duplicate anything; skip the dedupe set. The
		// paper's critical instances are single-tuple, so search successors
		// hit this path constantly.
		if len(rows[0]) != len(r.attrs) {
			return nil, fmt.Errorf("relation %s: row arity %d does not match schema arity %d", r.name, len(rows[0]), len(r.attrs))
		}
		r.rows = append(r.rows, rows[0].Clone())
	default:
		seen := make(map[string]bool, len(rows))
		for _, row := range rows {
			if err := r.appendOwned(row.Clone(), seen); err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}

// MustNew is like New but panics on error. It is intended for tests,
// examples, and statically known inputs.
func MustNew(name string, attrs []string, rows ...Tuple) *Relation {
	r, err := New(name, attrs, rows...)
	if err != nil {
		panic(err)
	}
	return r
}

// insert adds a row, enforcing arity and set semantics.
func (r *Relation) insert(row Tuple) error {
	if len(row) != len(r.attrs) {
		return fmt.Errorf("relation %s: row arity %d does not match schema arity %d", r.name, len(row), len(r.attrs))
	}
	for _, existing := range r.rows {
		if existing.Equal(row) {
			return nil
		}
	}
	r.rows = append(r.rows, row.Clone())
	return nil
}

// appendValueKey appends v to buf with a length prefix, so concatenated
// encodings decode unambiguously whatever bytes the values contain —
// exact tuple equality, unlike separator-joined renderings.
func appendValueKey(buf []byte, v string) []byte {
	buf = strconv.AppendInt(buf, int64(len(v)), 10)
	buf = append(buf, ':')
	return append(buf, v...)
}

// rowKey returns the unambiguous encoding of a tuple, used for O(1)
// duplicate detection in batch construction and for the containment index.
// Two tuples of the same arity have equal rowKeys iff they are Equal.
func rowKey(row Tuple) string {
	buf := make([]byte, 0, 16*len(row))
	for _, v := range row {
		buf = appendValueKey(buf, v)
	}
	return string(buf)
}

// appendOwned appends a row the relation takes ownership of, enforcing
// arity, deduplicating in O(1) via the seen set (keyed by rowKey). It is
// the batch counterpart of insert: callers constructing many rows use it so
// that building an n-row relation costs O(n), not the O(n²) of per-row
// linear duplicate scans. A nil seen set skips deduplication entirely; it
// is only passed by callers that can prove no duplicate can arise.
func (r *Relation) appendOwned(row Tuple, seen map[string]bool) error {
	if len(row) != len(r.attrs) {
		return fmt.Errorf("relation %s: row arity %d does not match schema arity %d", r.name, len(row), len(r.attrs))
	}
	if seen != nil {
		k := rowKey(row)
		if seen[k] {
			return nil
		}
		seen[k] = true
	}
	r.rows = append(r.rows, row)
	return nil
}

// dedupeSet returns the seen set for a rebuild of n source rows, or nil when
// n ≤ 1: a single row cannot duplicate anything, so the rebuild skips the
// rowKey encodings and map entirely. Search successors over the paper's
// single-tuple critical instances take this path on every expansion.
func dedupeSet(n int) map[string]bool {
	if n <= 1 {
		return nil
	}
	return make(map[string]bool, n)
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Attrs returns a copy of the ordered attribute list.
func (r *Relation) Attrs() []string { return append([]string(nil), r.attrs...) }

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.attrs) }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.rows) }

// HasAttr reports whether the relation has an attribute with the given name.
func (r *Relation) HasAttr(a string) bool { return r.lookup(a) >= 0 }

// AttrIndex returns the position of attribute a, or -1 if absent.
func (r *Relation) AttrIndex(a string) int { return r.lookup(a) }

// Row returns the i-th tuple. The returned tuple must not be modified.
func (r *Relation) Row(i int) Tuple { return r.rows[i] }

// Rows returns a deep copy of all tuples.
func (r *Relation) Rows() []Tuple {
	out := make([]Tuple, len(r.rows))
	for i, row := range r.rows {
		out[i] = row.Clone()
	}
	return out
}

// Value returns the value of attribute a in the i-th tuple.
// It returns false if the attribute does not exist.
func (r *Relation) Value(i int, a string) (string, bool) {
	j := r.lookup(a)
	if j < 0 {
		return "", false
	}
	return r.rows[i][j], true
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	out := &Relation{
		name:  r.name,
		attrs: append([]string(nil), r.attrs...),
		rows:  make([]Tuple, len(r.rows)),
		memo:  &canonMemo{}, // fresh: the copy may be mutated before publication
	}
	for i, row := range r.rows {
		out.rows[i] = row.Clone()
	}
	return out
}

// shallowClone copies the relation's schema (name, attrs) and shares its row
// storage. Tuples are immutable after publication and never mutated by this
// package, so sharing is safe; the full-capacity slice expression keeps an
// append on the copy (Insert) from aliasing into the original's backing
// array. Constructors that only touch schema — the rename operators of the
// search hot path — use this instead of Clone to avoid re-copying every cell
// of the relation.
func (r *Relation) shallowClone() *Relation {
	return &Relation{
		name:  r.name,
		attrs: append([]string(nil), r.attrs...),
		rows:  r.rows[:len(r.rows):len(r.rows)],
		memo:  &canonMemo{},
	}
}

// WithName returns a copy of the relation under a new name.
func (r *Relation) WithName(name string) (*Relation, error) {
	if name == "" {
		return nil, fmt.Errorf("relation: empty relation name")
	}
	out := r.shallowClone()
	out.name = name
	return out, nil
}

// WithAttrRenamed returns a copy with attribute old renamed to new.
func (r *Relation) WithAttrRenamed(old, new string) (*Relation, error) {
	i := r.lookup(old)
	if i < 0 {
		return nil, fmt.Errorf("relation %s: no attribute %q", r.name, old)
	}
	if new == "" {
		return nil, fmt.Errorf("relation %s: empty attribute name", r.name)
	}
	if r.lookup(new) >= 0 && new != old {
		return nil, fmt.Errorf("relation %s: attribute %q already exists", r.name, new)
	}
	out := r.shallowClone()
	out.attrs[i] = new
	return out, nil
}

// WithColumn returns a copy with a new attribute appended. values[i] becomes
// the value of the new attribute in row i; len(values) must equal Len().
func (r *Relation) WithColumn(attr string, values []string) (*Relation, error) {
	if attr == "" {
		return nil, fmt.Errorf("relation %s: empty attribute name", r.name)
	}
	if r.lookup(attr) >= 0 {
		return nil, fmt.Errorf("relation %s: attribute %q already exists", r.name, attr)
	}
	if len(values) != len(r.rows) {
		return nil, fmt.Errorf("relation %s: %d column values for %d rows", r.name, len(values), len(r.rows))
	}
	out, err := New(r.name, append(r.Attrs(), attr))
	if err != nil {
		return nil, err
	}
	// Extending distinct rows with a new column cannot create duplicates:
	// if two extended rows were equal, their prefixes — the original,
	// already-distinct rows — would be too. So no dedupe set is needed.
	for i, row := range r.rows {
		if err := out.appendOwned(append(row.Clone(), values[i]), nil); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// WithoutAttr returns a copy with attribute a dropped (the paper's π̄
// operator at the relation level). Duplicate rows that arise from the drop
// collapse, per set semantics.
func (r *Relation) WithoutAttr(a string) (*Relation, error) {
	j := r.lookup(a)
	if j < 0 {
		return nil, fmt.Errorf("relation %s: no attribute %q", r.name, a)
	}
	attrs := make([]string, 0, len(r.attrs)-1)
	for i, name := range r.attrs {
		if i != j {
			attrs = append(attrs, name)
		}
	}
	out, err := New(r.name, attrs)
	if err != nil {
		return nil, err
	}
	seen := dedupeSet(len(r.rows))
	for _, row := range r.rows {
		nr := make(Tuple, 0, len(row)-1)
		for i, v := range row {
			if i != j {
				nr = append(nr, v)
			}
		}
		if err := out.appendOwned(nr, seen); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Project returns a copy containing only the named attributes, in the given
// order. Duplicate rows collapse.
func (r *Relation) Project(attrs []string) (*Relation, error) {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		j := r.lookup(a)
		if j < 0 {
			return nil, fmt.Errorf("relation %s: no attribute %q", r.name, a)
		}
		idx[i] = j
	}
	out, err := New(r.name, attrs)
	if err != nil {
		return nil, err
	}
	seen := dedupeSet(len(r.rows))
	for _, row := range r.rows {
		nr := make(Tuple, len(idx))
		for i, j := range idx {
			nr[i] = row[j]
		}
		if err := out.appendOwned(nr, seen); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// distinctValues computes the per-column sorted distinct values exactly
// once. Candidate-move generation asks for column values on every expansion
// of a state whose relations are mostly shared with its ancestors, so the
// memoized form turns repeated sort-and-dedupe passes into slice reads.
func (r *Relation) distinctValues() [][]string {
	m := r.memo
	m.colsOnce.Do(func() {
		cols := make([][]string, len(r.attrs))
		seen := make(map[string]bool)
		for j := range r.attrs {
			clear(seen)
			var out []string
			for _, row := range r.rows {
				if !seen[row[j]] {
					seen[row[j]] = true
					out = append(out, row[j])
				}
			}
			sort.Strings(out)
			cols[j] = out
		}
		m.cols = cols
	})
	return m.cols
}

// DistinctValues returns the distinct values of attribute a in sorted order,
// memoized on the relation. The returned slice is shared — callers must not
// modify it. It returns nil if the attribute does not exist; hot-path
// callers that already validated the attribute use this instead of ValuesOf
// to skip both the error path and the defensive copy.
func (r *Relation) DistinctValues(a string) []string {
	j := r.lookup(a)
	if j < 0 {
		return nil
	}
	return r.distinctValues()[j]
}

// ValuesOf returns the distinct values of attribute a in sorted order.
// The slice is the caller's to keep (it is a copy of the memoized form).
func (r *Relation) ValuesOf(a string) ([]string, error) {
	j := r.lookup(a)
	if j < 0 {
		return nil, fmt.Errorf("relation %s: no attribute %q", r.name, a)
	}
	return append([]string(nil), r.distinctValues()[j]...), nil
}

// Insert returns a copy of the relation with the row added. The copy shares
// the original's row storage; insert's append reallocates, so the original
// is unaffected.
func (r *Relation) Insert(row Tuple) (*Relation, error) {
	out := r.shallowClone()
	if err := out.insert(row); err != nil {
		return nil, err
	}
	return out, nil
}

// computeCanonical renders the canonical form from scratch: each row
// rendered as its values in sorted-attribute-name order (length-prefixed,
// so arbitrary value bytes stay unambiguous), rows sorted, plus the full
// fingerprint built from them. Attribute names appear once in the
// fingerprint header, not in every row: both sides of any comparison render
// through the same sorted-name order, so the per-row projection is already
// aligned. The fingerprint prefixes the attribute and row counts, which
// makes the flat concatenation parse deterministically — no sequence of
// (name, attrs, rows) collides with a different one. This function is the
// single source of truth the memo caches; tests call it directly to
// cross-check memoized values.
func (r *Relation) computeCanonical() (rows []string, fp string) {
	order := r.sortedAttrOrder()
	names := make([]string, len(order))
	for i, j := range order {
		names[i] = r.attrs[j]
	}
	rows = make([]string, len(r.rows))
	var buf []byte
	for i, row := range r.rows {
		buf = buf[:0]
		for _, j := range order {
			buf = appendValueKey(buf, row[j])
		}
		rows[i] = string(buf)
	}
	sort.Strings(rows)
	fpBuf := make([]byte, 0, 64+16*len(names)+32*len(rows))
	fpBuf = appendValueKey(fpBuf, r.name)
	fpBuf = strconv.AppendInt(fpBuf, int64(len(names)), 10)
	fpBuf = append(fpBuf, ';')
	for _, a := range names {
		fpBuf = appendValueKey(fpBuf, a)
	}
	fpBuf = strconv.AppendInt(fpBuf, int64(len(rows)), 10)
	fpBuf = append(fpBuf, ';')
	for _, row := range rows {
		fpBuf = appendValueKey(fpBuf, row)
	}
	return rows, string(fpBuf)
}

// canonicalize computes the canonical string form exactly once. Safe for
// concurrent callers: parallel successor workers fingerprinting states that
// share this relation synchronize on the memo's sync.Once.
func (r *Relation) canonicalize() {
	r.memo.canonOnce.Do(func() {
		r.memo.rows, r.memo.fp = r.computeCanonical()
	})
}

// canonicalRows returns the memoized canonical row rendering; used for
// order-insensitive comparison.
func (r *Relation) canonicalRows() []string {
	r.canonicalize()
	return r.memo.rows
}

// Equal reports semantic equality: same name, same attribute set (order
// insensitive), same set of tuples.
func (r *Relation) Equal(s *Relation) bool {
	if r == s {
		return true
	}
	if r.name != s.name || len(r.attrs) != len(s.attrs) || len(r.rows) != len(s.rows) {
		return false
	}
	for _, a := range r.attrs {
		if !s.HasAttr(a) {
			return false
		}
	}
	rc, sc := r.canonicalRows(), s.canonicalRows()
	for i := range rc {
		if rc[i] != sc[i] {
			return false
		}
	}
	return true
}

// Contains reports whether r is a structurally identical superset of s
// restricted to s's attributes: r has every attribute of s, and every tuple
// of s agrees with some tuple of r on s's attributes. This is the
// per-relation half of the paper's goal test (§2.3).
func (r *Relation) Contains(s *Relation) bool {
	idx := make([]int, len(s.attrs))
	for i, a := range s.attrs {
		j := r.lookup(a)
		if j < 0 {
			return false
		}
		idx[i] = j
	}
	for _, srow := range s.rows {
		found := false
		for _, rrow := range r.rows {
			match := true
			for i, j := range idx {
				if rrow[j] != srow[i] {
					match = false
					break
				}
			}
			if match {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Fingerprint returns a canonical string identifying the relation up to
// attribute order and tuple order. It is memoized: the first call renders
// the canonical form, every later call returns the cached string, so a
// search successor that shares this relation copy-on-write pays nothing to
// re-identify it.
func (r *Relation) Fingerprint() string {
	r.canonicalize()
	return r.memo.fp
}

// sortedAttrOrder returns the attribute positions in sorted-attribute-name
// order — the column order every canonical rendering (fingerprint, hash)
// shares, so projections of both sides of any comparison align.
func (r *Relation) sortedAttrOrder() []int {
	order := make([]int, len(r.attrs))
	for i := range order {
		order[i] = i
	}
	// Insertion sort: arities are small (the paper's schemas stay in single
	// digits) and this avoids sort.Slice's closure and reflection overhead
	// on a path hit once per relation ever created.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && r.attrs[order[j]] < r.attrs[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// Hash returns a 128-bit digest of the relation's canonical identity,
// memoized. Equal relations have equal hashes; distinct relations collide
// with probability ~2⁻¹²⁸ per pair — see the collision argument in
// DESIGN.md ("State identity").
//
// The digest is computed over a byte encoding equivalent to the string
// fingerprint — length-prefixed name, sorted attribute names, rows rendered
// in sorted-attribute order and sorted bytewise, counts prefixed — but
// assembled directly into one buffer without materializing the intermediate
// strings. Rows are encoded back to back into that buffer and sorted as
// offset ranges, so hashing allocates exactly twice (offsets and buffer)
// regardless of row count. The encoding is injective (length prefixes and
// count separators make it parse deterministically), so the equality
// semantics are exactly Fingerprint's at a fraction of the allocation cost.
func (r *Relation) Hash() [16]byte {
	m := r.memo
	m.hashOnce.Do(func() {
		order := r.sortedAttrOrder()
		// Canonicalize row order by sorting indices with a field-wise
		// comparison in sorted-attribute order. Any deterministic,
		// permutation-invariant order works (rows are deduplicated, so the
		// comparator is total); sorting indices first lets the encoding be
		// a single append pass into one buffer. Insertion sort: successor
		// states mutate tiny critical instances, so row counts are small.
		idx := make([]int, len(r.rows))
		for i := range idx {
			idx[i] = i
		}
		for i := 1; i < len(idx); i++ {
			for j := i; j > 0 && rowLess(r.rows[idx[j]], r.rows[idx[j-1]], order); j-- {
				idx[j], idx[j-1] = idx[j-1], idx[j]
			}
		}
		n := 32 + 16*len(order)
		for _, row := range r.rows {
			for _, v := range row {
				n += len(v) + 8
			}
		}
		buf := make([]byte, 0, n)
		buf = appendValueKey(buf, r.name)
		buf = strconv.AppendInt(buf, int64(len(order)), 10)
		buf = append(buf, ';')
		for _, j := range order {
			buf = appendValueKey(buf, r.attrs[j])
		}
		buf = strconv.AppendInt(buf, int64(len(r.rows)), 10)
		buf = append(buf, ';')
		for _, i := range idx {
			row := r.rows[i]
			for _, j := range order {
				buf = appendValueKey(buf, row[j])
			}
			buf = append(buf, '\n')
		}
		m.hash = digest128(buf)
	})
	return m.hash
}

// rowLess orders tuples field-wise in sorted-attribute order; it is the
// canonical row order behind Hash. Total on distinct tuples of one schema.
func rowLess(a, b Tuple, order []int) bool {
	for _, j := range order {
		if a[j] != b[j] {
			return a[j] < b[j]
		}
	}
	return false
}
