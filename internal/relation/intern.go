package relation

import "sync"

// Symbol is an interned string: a small integer standing for a relation
// name, attribute name, or data value in the run-wide dictionary. Symbols
// are cheaper than strings everywhere the hot path compares, hashes, or
// keys maps by tokens: 4 bytes, compared in one instruction, hashed
// trivially. Two strings intern to the same Symbol iff they are equal, so
// symbol equality is string equality within a process.
//
// Symbols are process-scoped and assignment order depends on interning
// order, so they must never be persisted or compared across processes.
// Identities that must survive a process boundary (Relation.Hash,
// Database.Key) are built from the per-symbol content signatures instead,
// which depend only on the string's bytes.
type Symbol int32

// sigPair is the 128-bit content signature of an interned string: digest128
// of its bytes, computed once at interning time. Relation.Hash mixes cell
// signatures instead of re-walking cell bytes, which keeps the hash
// content-based (stable across processes, independent of interning order)
// while the hot path touches only fixed-width words.
type sigPair struct {
	lo, hi uint64
}

// interner is the run-wide concurrent string dictionary. The table only
// grows: tokens come from the source and target critical instances plus the
// bounded vocabulary the FIRA operators synthesize from them (e.g. partition
// relation names), so the population is small and retained for the life of
// the process — see DESIGN.md, "Incremental heuristics and interning".
//
// Reads vastly outnumber writes once a search is warm, so lookups take an
// RLock; the write lock is only held while inserting a new token. The strs
// and sigs slices are append-only: a snapshot of either slice header taken
// under RLock stays valid for every symbol issued before the snapshot, even
// while concurrent inserts grow (and possibly reallocate) the live slice.
type interner struct {
	mu   sync.RWMutex
	ids  map[string]Symbol
	strs []string
	sigs []sigPair
}

var globalIntern = &interner{ids: make(map[string]Symbol, 256)}

// Intern returns the symbol for s, assigning one if s has not been seen.
// Safe for concurrent use.
func Intern(s string) Symbol {
	in := globalIntern
	in.mu.RLock()
	sym, ok := in.ids[s]
	in.mu.RUnlock()
	if ok {
		return sym
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if sym, ok = in.ids[s]; ok {
		return sym
	}
	sym = Symbol(len(in.strs))
	d := digest128([]byte(s))
	in.strs = append(in.strs, s)
	in.sigs = append(in.sigs, sigPair{
		lo: leUint64(d[0:8]),
		hi: leUint64(d[8:16]),
	})
	in.ids[s] = sym
	return sym
}

// LookupSymbol returns the symbol for s if it has been interned.
// Safe for concurrent use.
func LookupSymbol(s string) (Symbol, bool) {
	in := globalIntern
	in.mu.RLock()
	sym, ok := in.ids[s]
	in.mu.RUnlock()
	return sym, ok
}

// String returns the interned string for the symbol. It panics on a symbol
// that was never issued by Intern, exactly like an out-of-range slice index.
// Safe for concurrent use.
func (s Symbol) String() string {
	in := globalIntern
	in.mu.RLock()
	str := in.strs[s]
	in.mu.RUnlock()
	return str
}

// strsSnapshot returns the dictionary's string table under a single RLock.
// The returned slice must be treated as read-only; it covers every symbol
// issued before the call (append-only growth never invalidates old
// entries). Bulk decoders use it to pay one lock acquisition per relation
// instead of one per cell.
func strsSnapshot() []string {
	in := globalIntern
	in.mu.RLock()
	s := in.strs
	in.mu.RUnlock()
	return s
}

// sigSnapshot is strsSnapshot's counterpart for the content signatures.
func sigSnapshot() []sigPair {
	in := globalIntern
	in.mu.RLock()
	s := in.sigs
	in.mu.RUnlock()
	return s
}

// SymbolStrings decodes a symbol slice to its strings in one pass, under a
// single dictionary lock acquisition. The result is the caller's to keep.
func SymbolStrings(syms []Symbol) []string {
	strs := strsSnapshot()
	out := make([]string, len(syms))
	for i, s := range syms {
		out[i] = strs[s]
	}
	return out
}

// EmptySymbol returns the interned empty string — the absent-value marker
// the FIRA restructuring operators use (DESIGN.md §12).
func EmptySymbol() Symbol { return emptySym }

// InternedCount returns the number of distinct strings interned so far;
// exposed for tests and capacity diagnostics.
func InternedCount() int {
	in := globalIntern
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.strs)
}
