package relation

import "sync"

// Symbol is an interned string: a small integer standing for a relation
// name, attribute name, or data value in the run-wide dictionary. Symbols
// are cheaper than strings everywhere the hot path compares, hashes, or
// keys maps by tokens: 4 bytes, compared in one instruction, hashed
// trivially. Two strings intern to the same Symbol iff they are equal, so
// symbol equality is string equality within a process.
//
// Symbols are process-scoped and assignment order depends on interning
// order, so they must never be persisted or compared across processes.
type Symbol int32

// interner is the run-wide concurrent string dictionary. The table only
// grows: tokens come from the source and target critical instances plus the
// bounded vocabulary the FIRA operators synthesize from them (e.g. partition
// relation names), so the population is small and retained for the life of
// the process — see DESIGN.md, "Incremental heuristics and interning".
//
// Reads vastly outnumber writes once a search is warm, so lookups take an
// RLock; the write lock is only held while inserting a new token.
type interner struct {
	mu   sync.RWMutex
	ids  map[string]Symbol
	strs []string
}

var globalIntern = &interner{ids: make(map[string]Symbol, 256)}

// Intern returns the symbol for s, assigning one if s has not been seen.
// Safe for concurrent use.
func Intern(s string) Symbol {
	in := globalIntern
	in.mu.RLock()
	sym, ok := in.ids[s]
	in.mu.RUnlock()
	if ok {
		return sym
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if sym, ok = in.ids[s]; ok {
		return sym
	}
	sym = Symbol(len(in.strs))
	in.strs = append(in.strs, s)
	in.ids[s] = sym
	return sym
}

// LookupSymbol returns the symbol for s if it has been interned.
// Safe for concurrent use.
func LookupSymbol(s string) (Symbol, bool) {
	in := globalIntern
	in.mu.RLock()
	sym, ok := in.ids[s]
	in.mu.RUnlock()
	return sym, ok
}

// String returns the interned string for the symbol. It panics on a symbol
// that was never issued by Intern, exactly like an out-of-range slice index.
// Safe for concurrent use.
func (s Symbol) String() string {
	in := globalIntern
	in.mu.RLock()
	str := in.strs[s]
	in.mu.RUnlock()
	return str
}

// InternedCount returns the number of distinct strings interned so far;
// exposed for tests and capacity diagnostics.
func InternedCount() int {
	in := globalIntern
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.strs)
}
