package relation

import (
	"fmt"
	"strings"
)

// String renders the relation as an ASCII table, in the style of the
// paper's Fig. 1.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", r.name)
	rows := r.Rows()
	widths := make([]int, len(r.attrs))
	for i, a := range r.attrs {
		widths[i] = len(a)
	}
	for _, row := range rows {
		for i, v := range row {
			if len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(r.attrs)
	rule := make([]string, len(r.attrs))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// String renders all relations of the database in sorted-name order.
func (db *Database) String() string {
	var b strings.Builder
	for i, r := range db.Relations() {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(r.String())
	}
	return b.String()
}
