package relation

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Database is a named collection of relations with unique names.
// Like Relation, it is used copy-on-write: mutating methods return new
// databases, which makes Database values safe to share as search states.
//
// Representation: a slice of relations sorted by name. Databases are tiny
// (the paper's critical instances hold a handful of relations) and search
// creates millions of them, one per candidate operator application — a
// sorted slice makes that copy a single allocation, where the map it
// replaced paid for hash buckets on every successor, and it gives the
// canonical iteration order away for free.
type Database struct {
	rels []*Relation // sorted by name, names unique

	// memo caches the derived name/attribute/value sets, computed lazily
	// once. Databases are immutable after publication, like Relations, and
	// move generation asks for these sets on every expansion.
	memo *dbMemo
}

// dbMemo holds the lazily computed set views of a database. The maps are
// shared by every caller — they must be treated as read-only.
type dbMemo struct {
	namesOnce sync.Once
	relNames  map[string]bool
	attrsOnce sync.Once
	attrNames map[string]bool
	valsOnce  sync.Once
	valSet    map[string]bool
}

// newDB wraps a sorted relation slice in a Database with a fresh memo.
// Callers guarantee rels is sorted by name with unique names; the slice is
// owned by the new database.
func newDB(rels []*Relation) *Database {
	return &Database{rels: rels, memo: &dbMemo{}}
}

// find returns the index of the named relation in the sorted slice, or
// (insertion point, false) if absent. Linear scan: databases stay within a
// handful of relations, where scanning beats binary search bookkeeping.
func (db *Database) find(name string) (int, bool) {
	for i, r := range db.rels {
		if r.name >= name {
			return i, r.name == name
		}
	}
	return len(db.rels), false
}

// NewDatabase creates a database from the given relations. Relation names
// must be unique.
func NewDatabase(rels ...*Relation) (*Database, error) {
	sorted := make([]*Relation, 0, len(rels))
	for _, r := range rels {
		if r == nil {
			return nil, fmt.Errorf("database: nil relation")
		}
		sorted = append(sorted, r)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].name < sorted[j].name })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].name == sorted[i-1].name {
			return nil, fmt.Errorf("database: duplicate relation name %q", sorted[i].name)
		}
	}
	return newDB(sorted), nil
}

// MustDatabase is like NewDatabase but panics on error.
func MustDatabase(rels ...*Relation) *Database {
	db, err := NewDatabase(rels...)
	if err != nil {
		panic(err)
	}
	return db
}

// Len returns the number of relations.
func (db *Database) Len() int { return len(db.rels) }

// ordered returns the relations in sorted-name order, shared — callers
// inside the package must not modify it.
func (db *Database) ordered() []*Relation { return db.rels }

// Names returns the relation names in sorted order.
func (db *Database) Names() []string {
	out := make([]string, len(db.rels))
	for i, r := range db.rels {
		out[i] = r.name
	}
	return out
}

// Relations returns the relations in sorted-name order. The slice is the
// caller's to keep.
func (db *Database) Relations() []*Relation {
	return append([]*Relation(nil), db.rels...)
}

// Relation returns the relation with the given name, or false if absent.
func (db *Database) Relation(name string) (*Relation, bool) {
	if i, ok := db.find(name); ok {
		return db.rels[i], true
	}
	return nil, false
}

// Clone returns a deep copy of the database.
func (db *Database) Clone() *Database {
	out := make([]*Relation, len(db.rels))
	for i, r := range db.rels {
		out[i] = r.Clone()
	}
	return newDB(out)
}

// WithRelation returns a copy of the database in which the relation named
// r.Name() is replaced by (or extended with) r.
func (db *Database) WithRelation(r *Relation) *Database {
	i, ok := db.find(r.name)
	if ok {
		out := make([]*Relation, len(db.rels))
		copy(out, db.rels)
		out[i] = r
		return newDB(out)
	}
	out := make([]*Relation, len(db.rels)+1)
	copy(out, db.rels[:i])
	out[i] = r
	copy(out[i+1:], db.rels[i:])
	return newDB(out)
}

// WithoutRelation returns a copy of the database lacking the named relation.
// It is a no-op copy if the relation does not exist.
func (db *Database) WithoutRelation(name string) *Database {
	i, ok := db.find(name)
	if !ok {
		return newDB(append([]*Relation(nil), db.rels...))
	}
	out := make([]*Relation, 0, len(db.rels)-1)
	out = append(out, db.rels[:i]...)
	out = append(out, db.rels[i+1:]...)
	return newDB(out)
}

// ReplaceRelation returns a copy in which the relation named old is removed
// and r is added, along with the relation that occupied the replaced slot.
// It fails if old is absent or r's name collides with a different existing
// relation. Unlike the WithoutRelation().WithRelation() chain it once was,
// this copies the relation slice exactly once and hands the replaced slot
// back, so callers that feed incremental heuristic evaluators know which
// relation left the state without diffing.
func (db *Database) ReplaceRelation(old string, r *Relation) (*Database, *Relation, error) {
	oi, ok := db.find(old)
	if !ok {
		return nil, nil, fmt.Errorf("database: no relation %q", old)
	}
	prev := db.rels[oi]
	if r.name == old {
		out := make([]*Relation, len(db.rels))
		copy(out, db.rels)
		out[oi] = r
		return newDB(out), prev, nil
	}
	ni, clash := db.find(r.name)
	if clash {
		return nil, nil, fmt.Errorf("database: relation %q already exists", r.name)
	}
	out := make([]*Relation, 0, len(db.rels))
	if ni > oi {
		// r sorts after the removed slot: shift the span between them left.
		out = append(out, db.rels[:oi]...)
		out = append(out, db.rels[oi+1:ni]...)
		out = append(out, r)
		out = append(out, db.rels[ni:]...)
	} else {
		out = append(out, db.rels[:ni]...)
		out = append(out, r)
		out = append(out, db.rels[ni:oi]...)
		out = append(out, db.rels[oi+1:]...)
	}
	return newDB(out), prev, nil
}

// Equal reports whether two databases contain semantically equal relations
// under the same names.
func (db *Database) Equal(other *Database) bool {
	if len(db.rels) != len(other.rels) {
		return false
	}
	// Both slices are name-sorted, so equal databases align position-wise.
	for i, r := range db.rels {
		o := other.rels[i]
		if r.name != o.name || !r.Equal(o) {
			return false
		}
	}
	return true
}

// Contains implements the paper's goal test (§2.3): db is a structurally
// identical superset of target when every target relation exists in db under
// the same name and each is contained per Relation.Contains.
func (db *Database) Contains(target *Database) bool {
	for _, t := range target.rels {
		r, ok := db.Relation(t.name)
		if !ok || !r.Contains(t) {
			return false
		}
	}
	return true
}

// Fingerprint returns a canonical string identifying the database up to
// relation, attribute, and tuple ordering. Two databases have equal
// fingerprints iff they are Equal. Per-relation fingerprints are memoized,
// so a successor that replaced one relation via WithRelation pays only for
// that relation; the untouched relations return their cached strings.
func (db *Database) Fingerprint() string {
	parts := make([]string, 0, len(db.rels))
	for _, r := range db.rels {
		parts = append(parts, r.Fingerprint())
	}
	return strings.Join(parts, "\x1b")
}

// Key returns a compact 16-byte identity for the database, suitable as a
// map key: digest128 over the concatenation of the per-relation 128-bit
// hashes in sorted-name order. The per-relation hashes are fixed-width, so
// the concatenation is unambiguous, and each one covers the relation's full
// canonical form including its name — two databases with equal keys are
// Equal up to hash collisions (see DESIGN.md, "State identity", for the
// collision-probability argument).
func (db *Database) Key() string {
	if len(db.rels) == 1 {
		// A single relation's hash already covers its name and full
		// canonical form; re-hashing it adds nothing. This is the common
		// case for the paper's synthetic matching states.
		h := db.rels[0].Hash()
		return string(h[:])
	}
	buf := make([]byte, 0, 16*len(db.rels))
	for _, r := range db.rels {
		h := r.Hash()
		buf = append(buf, h[:]...)
	}
	sum := digest128(buf)
	return string(sum[:])
}

// RelationNames returns the set of relation names, memoized and shared:
// callers must treat the map as read-only.
func (db *Database) RelationNames() map[string]bool {
	m := db.memo
	m.namesOnce.Do(func() {
		out := make(map[string]bool, len(db.rels))
		for _, r := range db.rels {
			out[r.name] = true
		}
		m.relNames = out
	})
	return m.relNames
}

// AttrNames returns the set of attribute names across all relations,
// memoized and shared: callers must treat the map as read-only.
func (db *Database) AttrNames() map[string]bool {
	m := db.memo
	m.attrsOnce.Do(func() {
		out := make(map[string]bool)
		for _, r := range db.rels {
			for _, a := range r.attrs {
				out[a] = true
			}
		}
		m.attrNames = out
	})
	return m.attrNames
}

// ValueSet returns the set of data values across all relations, memoized
// and shared: callers must treat the map as read-only.
func (db *Database) ValueSet() map[string]bool {
	m := db.memo
	m.valsOnce.Do(func() {
		out := make(map[string]bool)
		strs := strsSnapshot()
		for _, r := range db.rels {
			for j := range r.cols {
				// Decode each distinct symbol once per column instead of
				// walking every cell string.
				for _, s := range r.distinctSymbols()[j] {
					out[strs[s]] = true
				}
			}
		}
		m.valSet = out
	})
	return m.valSet
}

// Size returns the total number of cells (tuples × arity summed over
// relations); the paper's branching factor is proportional to |s| + |t|.
func (db *Database) Size() int {
	n := 0
	for _, r := range db.rels {
		n += r.Len() * r.Arity()
	}
	return n
}
