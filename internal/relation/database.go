package relation

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"
)

// Database is a named collection of relations with unique names.
// Like Relation, it is used copy-on-write: mutating methods return new
// databases, which makes Database values safe to share as search states.
type Database struct {
	rels map[string]*Relation
}

// NewDatabase creates a database from the given relations. Relation names
// must be unique.
func NewDatabase(rels ...*Relation) (*Database, error) {
	db := &Database{rels: make(map[string]*Relation, len(rels))}
	for _, r := range rels {
		if r == nil {
			return nil, fmt.Errorf("database: nil relation")
		}
		if _, dup := db.rels[r.Name()]; dup {
			return nil, fmt.Errorf("database: duplicate relation name %q", r.Name())
		}
		db.rels[r.Name()] = r
	}
	return db, nil
}

// MustDatabase is like NewDatabase but panics on error.
func MustDatabase(rels ...*Relation) *Database {
	db, err := NewDatabase(rels...)
	if err != nil {
		panic(err)
	}
	return db
}

// Len returns the number of relations.
func (db *Database) Len() int { return len(db.rels) }

// Names returns the relation names in sorted order.
func (db *Database) Names() []string {
	out := make([]string, 0, len(db.rels))
	for name := range db.rels {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Relations returns the relations in sorted-name order.
func (db *Database) Relations() []*Relation {
	names := db.Names()
	out := make([]*Relation, len(names))
	for i, name := range names {
		out[i] = db.rels[name]
	}
	return out
}

// Relation returns the relation with the given name, or false if absent.
func (db *Database) Relation(name string) (*Relation, bool) {
	r, ok := db.rels[name]
	return r, ok
}

// Clone returns a deep copy of the database.
func (db *Database) Clone() *Database {
	out := &Database{rels: make(map[string]*Relation, len(db.rels))}
	for name, r := range db.rels {
		out.rels[name] = r.Clone()
	}
	return out
}

// WithRelation returns a copy of the database in which the relation named
// r.Name() is replaced by (or extended with) r.
func (db *Database) WithRelation(r *Relation) *Database {
	out := &Database{rels: make(map[string]*Relation, len(db.rels)+1)}
	for name, existing := range db.rels {
		out.rels[name] = existing
	}
	out.rels[r.Name()] = r
	return out
}

// WithoutRelation returns a copy of the database lacking the named relation.
// It is a no-op copy if the relation does not exist.
func (db *Database) WithoutRelation(name string) *Database {
	out := &Database{rels: make(map[string]*Relation, len(db.rels))}
	for n, existing := range db.rels {
		if n != name {
			out.rels[n] = existing
		}
	}
	return out
}

// ReplaceRelation returns a copy in which the relation named old is removed
// and r is added. It fails if old is absent or r's name collides with a
// different existing relation.
func (db *Database) ReplaceRelation(old string, r *Relation) (*Database, error) {
	if _, ok := db.rels[old]; !ok {
		return nil, fmt.Errorf("database: no relation %q", old)
	}
	if r.Name() != old {
		if _, clash := db.rels[r.Name()]; clash {
			return nil, fmt.Errorf("database: relation %q already exists", r.Name())
		}
	}
	return db.WithoutRelation(old).WithRelation(r), nil
}

// Equal reports whether two databases contain semantically equal relations
// under the same names.
func (db *Database) Equal(other *Database) bool {
	if len(db.rels) != len(other.rels) {
		return false
	}
	for name, r := range db.rels {
		o, ok := other.rels[name]
		if !ok || !r.Equal(o) {
			return false
		}
	}
	return true
}

// Contains implements the paper's goal test (§2.3): db is a structurally
// identical superset of target when every target relation exists in db under
// the same name and each is contained per Relation.Contains.
func (db *Database) Contains(target *Database) bool {
	for name, t := range target.rels {
		r, ok := db.rels[name]
		if !ok || !r.Contains(t) {
			return false
		}
	}
	return true
}

// Fingerprint returns a canonical string identifying the database up to
// relation, attribute, and tuple ordering. Two databases have equal
// fingerprints iff they are Equal. Per-relation fingerprints are memoized,
// so a successor that replaced one relation via WithRelation pays only for
// that relation; the untouched relations return their cached strings.
func (db *Database) Fingerprint() string {
	parts := make([]string, 0, len(db.rels))
	for _, r := range db.Relations() {
		parts = append(parts, r.Fingerprint())
	}
	return strings.Join(parts, "\x1b")
}

// Key returns a compact 16-byte identity for the database, suitable as a
// map key: SHA-256, truncated to 128 bits, over the concatenation of the
// per-relation 128-bit hashes in sorted-name order. The per-relation hashes
// are fixed-width, so the concatenation is unambiguous, and each one covers
// the relation's full canonical form including its name — two databases
// with equal keys are Equal up to SHA-256 collisions (see DESIGN.md,
// "State identity", for the collision-probability argument).
func (db *Database) Key() string {
	if len(db.rels) == 1 {
		// A single relation's hash already covers its name and full
		// canonical form; re-hashing it adds nothing. This is the common
		// case for the paper's synthetic matching states.
		for _, r := range db.rels {
			h := r.Hash()
			return string(h[:])
		}
	}
	names := db.Names()
	buf := make([]byte, 0, 16*len(names))
	for _, name := range names {
		h := db.rels[name].Hash()
		buf = append(buf, h[:]...)
	}
	sum := sha256.Sum256(buf)
	return string(sum[:16])
}

// RelationNames returns the set of relation names.
func (db *Database) RelationNames() map[string]bool {
	out := make(map[string]bool, len(db.rels))
	for name := range db.rels {
		out[name] = true
	}
	return out
}

// AttrNames returns the set of attribute names across all relations.
func (db *Database) AttrNames() map[string]bool {
	out := make(map[string]bool)
	for _, r := range db.rels {
		for _, a := range r.attrs {
			out[a] = true
		}
	}
	return out
}

// ValueSet returns the set of data values across all relations.
func (db *Database) ValueSet() map[string]bool {
	out := make(map[string]bool)
	for _, r := range db.rels {
		for _, row := range r.rows {
			for _, v := range row {
				out[v] = true
			}
		}
	}
	return out
}

// Size returns the total number of cells (tuples × arity summed over
// relations); the paper's branching factor is proportional to |s| + |t|.
func (db *Database) Size() int {
	n := 0
	for _, r := range db.rels {
		n += r.Len() * r.Arity()
	}
	return n
}
