package relation

import "fmt"

// Builder assembles a relation row by row in O(total rows): duplicate
// detection is a hash-set lookup per row instead of the linear scan of
// insert, and rows are appended in place instead of cloning the whole
// relation per insertion as the copy-on-write Insert does. The fira
// operators that construct multi-row outputs (demote, product, partition,
// merge, union) build through it, which turns table construction from
// O(n²) to O(n).
//
// A Builder is single-goroutine. Relation finalizes it; using a finalized
// builder is an error, so the published relation stays immutable.
type Builder struct {
	rel  *Relation
	seen map[string]bool
}

// NewBuilder starts a relation with the given schema and no rows. It fails
// under exactly the conditions New does (empty or duplicate names).
func NewBuilder(name string, attrs []string) (*Builder, error) {
	r, err := New(name, attrs)
	if err != nil {
		return nil, err
	}
	return &Builder{rel: r, seen: make(map[string]bool)}, nil
}

// Add appends a copy of the row, enforcing arity; duplicate rows are
// silently dropped (set semantics), exactly as New and Insert do.
func (b *Builder) Add(row Tuple) error {
	if b.rel == nil {
		return fmt.Errorf("relation: builder used after Relation()")
	}
	return b.rel.appendOwned(row.Clone(), b.seen)
}

// Len returns the number of distinct rows added so far.
func (b *Builder) Len() int {
	if b.rel == nil {
		return 0
	}
	return len(b.rel.rows)
}

// Relation finalizes the builder and returns the built relation. The
// builder must not be used afterwards (Add fails), which keeps the
// returned relation immutable — a requirement of the canonical-form
// memoization.
func (b *Builder) Relation() *Relation {
	r := b.rel
	b.rel, b.seen = nil, nil
	return r
}
