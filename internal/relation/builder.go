package relation

import "fmt"

// Builder assembles a relation row by row in O(total rows): duplicate
// detection is a hash-set lookup per row — the same fixed-width symbol
// row keys Insert's memoized row set uses — and symbols are appended to the
// columns in place instead of cloning the whole relation per insertion as
// the copy-on-write Insert does. The fira operators that construct
// multi-row outputs with possible duplicates (merge, union) build through
// it; operators whose outputs are provably duplicate-free (demote, product,
// partition) splice columns directly via NewFromColumns.
//
// A Builder is single-goroutine. Relation finalizes it; using a finalized
// builder is an error, so the published relation stays immutable.
type Builder struct {
	rel  *Relation
	seen map[string]bool
	syms []Symbol // per-row interning scratch
	buf  []byte   // row-key scratch
}

// NewBuilder starts a relation with the given schema and no rows. It fails
// under exactly the conditions New does (empty or duplicate names).
func NewBuilder(name string, attrs []string) (*Builder, error) {
	r, err := newEmpty(name, attrs)
	if err != nil {
		return nil, err
	}
	return &Builder{
		rel:  r,
		seen: make(map[string]bool),
		syms: make([]Symbol, len(attrs)),
		buf:  make([]byte, 0, 4*len(attrs)),
	}, nil
}

// Add appends a copy of the row, enforcing arity; duplicate rows are
// silently dropped (set semantics), exactly as New and Insert do.
func (b *Builder) Add(row Tuple) error {
	if b.rel == nil {
		return fmt.Errorf("relation: builder used after Relation()")
	}
	if len(row) != len(b.rel.attrs) {
		return fmt.Errorf("relation %s: row arity %d does not match schema arity %d", b.rel.name, len(row), len(b.rel.attrs))
	}
	for j, v := range row {
		b.syms[j] = Intern(v)
	}
	return b.addSyms(b.syms)
}

// AddSymbols appends a row given as interned symbols, copying the slice;
// the symbol-space counterpart of Add for operators that never leave the
// columns.
func (b *Builder) AddSymbols(syms []Symbol) error {
	if b.rel == nil {
		return fmt.Errorf("relation: builder used after Relation()")
	}
	if len(syms) != len(b.rel.attrs) {
		return fmt.Errorf("relation %s: row arity %d does not match schema arity %d", b.rel.name, len(syms), len(b.rel.attrs))
	}
	return b.addSyms(syms)
}

// addSyms is the shared dedupe-and-append tail; callers have checked arity.
func (b *Builder) addSyms(syms []Symbol) error {
	b.buf = b.buf[:0]
	for _, s := range syms {
		b.buf = appendSymKey(b.buf, s)
	}
	if b.seen[string(b.buf)] {
		return nil
	}
	b.seen[string(b.buf)] = true
	b.rel.appendRowSyms(syms)
	return nil
}

// Len returns the number of distinct rows added so far.
func (b *Builder) Len() int {
	if b.rel == nil {
		return 0
	}
	return b.rel.nrows
}

// Relation finalizes the builder and returns the built relation. The
// builder must not be used afterwards (Add fails), which keeps the
// returned relation immutable — a requirement of the canonical-form
// memoization.
func (b *Builder) Relation() *Relation {
	r := b.rel
	b.rel, b.seen = nil, nil
	return r
}
