package relation

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		relName string
		attrs   []string
		rows    []Tuple
		wantErr bool
	}{
		{"ok", "R", []string{"A", "B"}, []Tuple{{"1", "2"}}, false},
		{"empty relation name", "", []string{"A"}, nil, true},
		{"empty attribute", "R", []string{"A", ""}, nil, true},
		{"duplicate attribute", "R", []string{"A", "A"}, nil, true},
		{"arity mismatch", "R", []string{"A", "B"}, []Tuple{{"1"}}, true},
		{"no attributes", "R", nil, nil, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.relName, tc.attrs, tc.rows...)
			if (err != nil) != tc.wantErr {
				t.Fatalf("New(%q, %v, %v) error = %v, wantErr %v", tc.relName, tc.attrs, tc.rows, err, tc.wantErr)
			}
		})
	}
}

func TestSetSemantics(t *testing.T) {
	r := MustNew("R", []string{"A", "B"},
		Tuple{"1", "2"},
		Tuple{"1", "2"},
		Tuple{"3", "4"},
	)
	if r.Len() != 2 {
		t.Fatalf("duplicate rows not collapsed: Len = %d, want 2", r.Len())
	}
	r2, err := r.Insert(Tuple{"3", "4"})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 2 {
		t.Fatalf("Insert of duplicate grew relation: Len = %d, want 2", r2.Len())
	}
}

func TestAttrAccessors(t *testing.T) {
	r := MustNew("R", []string{"A", "B", "C"}, Tuple{"1", "2", "3"})
	if !r.HasAttr("B") || r.HasAttr("Z") {
		t.Fatal("HasAttr wrong")
	}
	if got := r.AttrIndex("C"); got != 2 {
		t.Fatalf("AttrIndex(C) = %d, want 2", got)
	}
	if got := r.AttrIndex("Z"); got != -1 {
		t.Fatalf("AttrIndex(Z) = %d, want -1", got)
	}
	v, ok := r.Value(0, "B")
	if !ok || v != "2" {
		t.Fatalf("Value(0, B) = %q, %v", v, ok)
	}
	if _, ok := r.Value(0, "Z"); ok {
		t.Fatal("Value on missing attribute reported ok")
	}
	if r.Arity() != 3 {
		t.Fatalf("Arity = %d, want 3", r.Arity())
	}
}

func TestWithName(t *testing.T) {
	r := MustNew("R", []string{"A"}, Tuple{"1"})
	s, err := r.WithName("S")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "S" || r.Name() != "R" {
		t.Fatalf("WithName mutated receiver or failed: %q / %q", r.Name(), s.Name())
	}
	if _, err := r.WithName(""); err == nil {
		t.Fatal("WithName(\"\") should fail")
	}
}

func TestWithAttrRenamed(t *testing.T) {
	r := MustNew("R", []string{"A", "B"}, Tuple{"1", "2"})
	s, err := r.WithAttrRenamed("A", "X")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Attrs(), []string{"X", "B"}) {
		t.Fatalf("Attrs after rename = %v", s.Attrs())
	}
	if v, _ := s.Value(0, "X"); v != "1" {
		t.Fatalf("value under renamed attribute = %q, want 1", v)
	}
	if r.HasAttr("X") {
		t.Fatal("rename mutated receiver")
	}
	if _, err := r.WithAttrRenamed("Z", "Y"); err == nil {
		t.Fatal("rename of missing attribute should fail")
	}
	if _, err := r.WithAttrRenamed("A", "B"); err == nil {
		t.Fatal("rename onto existing attribute should fail")
	}
}

func TestWithColumn(t *testing.T) {
	r := MustNew("R", []string{"A"}, Tuple{"1"}, Tuple{"2"})
	s, err := r.WithColumn("B", []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Arity() != 2 || s.Len() != 2 {
		t.Fatalf("WithColumn produced %d×%d", s.Len(), s.Arity())
	}
	if _, err := r.WithColumn("B", []string{"x"}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := r.WithColumn("A", []string{"x", "y"}); err == nil {
		t.Fatal("existing attribute should fail")
	}
}

func TestWithoutAttrCollapses(t *testing.T) {
	r := MustNew("R", []string{"A", "B"},
		Tuple{"1", "x"},
		Tuple{"1", "y"},
	)
	s, err := r.WithoutAttr("B")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("projection did not collapse duplicates: Len = %d", s.Len())
	}
	if _, err := r.WithoutAttr("Z"); err == nil {
		t.Fatal("dropping missing attribute should fail")
	}
}

func TestProject(t *testing.T) {
	r := MustNew("R", []string{"A", "B", "C"},
		Tuple{"1", "2", "3"},
		Tuple{"1", "2", "4"},
	)
	p, err := r.Project([]string{"B", "A"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Attrs(), []string{"B", "A"}) {
		t.Fatalf("projected attrs = %v", p.Attrs())
	}
	if p.Len() != 1 {
		t.Fatalf("projection should collapse to 1 row, got %d", p.Len())
	}
	if _, err := r.Project([]string{"Z"}); err == nil {
		t.Fatal("projecting missing attribute should fail")
	}
}

func TestValuesOf(t *testing.T) {
	r := MustNew("R", []string{"A"}, Tuple{"b"}, Tuple{"a"}, Tuple{"b"})
	vs, err := r.ValuesOf("A")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vs, []string{"a", "b"}) {
		t.Fatalf("ValuesOf = %v", vs)
	}
	if _, err := r.ValuesOf("Z"); err == nil {
		t.Fatal("ValuesOf missing attribute should fail")
	}
}

func TestRelationEqualOrderInsensitive(t *testing.T) {
	r := MustNew("R", []string{"A", "B"}, Tuple{"1", "2"}, Tuple{"3", "4"})
	s := MustNew("R", []string{"B", "A"}, Tuple{"4", "3"}, Tuple{"2", "1"})
	if !r.Equal(s) {
		t.Fatal("attribute/tuple order should not affect equality")
	}
	u := MustNew("S", []string{"A", "B"}, Tuple{"1", "2"}, Tuple{"3", "4"})
	if r.Equal(u) {
		t.Fatal("different names should not be equal")
	}
	w := MustNew("R", []string{"A", "B"}, Tuple{"1", "2"})
	if r.Equal(w) {
		t.Fatal("different cardinality should not be equal")
	}
}

func TestRelationContains(t *testing.T) {
	r := MustNew("Flights", []string{"Carrier", "Fee", "Extra"},
		Tuple{"AirEast", "15", "x"},
		Tuple{"JetWest", "16", "y"},
	)
	target := MustNew("Flights", []string{"Carrier", "Fee"},
		Tuple{"AirEast", "15"},
	)
	if !r.Contains(target) {
		t.Fatal("superset should contain projected subset")
	}
	miss := MustNew("Flights", []string{"Carrier", "Fee"},
		Tuple{"AirEast", "99"},
	)
	if r.Contains(miss) {
		t.Fatal("should not contain mismatched tuple")
	}
	wide := MustNew("Flights", []string{"Carrier", "Fee", "Gone"},
		Tuple{"AirEast", "15", "z"},
	)
	if r.Contains(wide) {
		t.Fatal("should not contain relation with missing attribute")
	}
}

func TestDatabaseBasics(t *testing.T) {
	r := MustNew("R", []string{"A"}, Tuple{"1"})
	s := MustNew("S", []string{"B"}, Tuple{"2"})
	db := MustDatabase(r, s)
	if db.Len() != 2 {
		t.Fatalf("Len = %d", db.Len())
	}
	if !reflect.DeepEqual(db.Names(), []string{"R", "S"}) {
		t.Fatalf("Names = %v", db.Names())
	}
	if _, ok := db.Relation("R"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := db.Relation("Z"); ok {
		t.Fatal("phantom relation")
	}
	if _, err := NewDatabase(r, MustNew("R", []string{"X"})); err == nil {
		t.Fatal("duplicate relation names should fail")
	}
	if _, err := NewDatabase(nil); err == nil {
		t.Fatal("nil relation should fail")
	}
}

func TestDatabaseCopyOnWrite(t *testing.T) {
	r := MustNew("R", []string{"A"}, Tuple{"1"})
	db := MustDatabase(r)
	db2 := db.WithRelation(MustNew("S", []string{"B"}))
	if db.Len() != 1 || db2.Len() != 2 {
		t.Fatal("WithRelation should not mutate receiver")
	}
	db3 := db2.WithoutRelation("R")
	if db2.Len() != 2 || db3.Len() != 1 {
		t.Fatal("WithoutRelation should not mutate receiver")
	}
	renamed, err := r.WithName("R2")
	if err != nil {
		t.Fatal(err)
	}
	db4, prev, err := db2.ReplaceRelation("R", renamed)
	if err != nil {
		t.Fatal(err)
	}
	if prev != r {
		t.Fatal("ReplaceRelation should return the displaced relation")
	}
	if _, ok := db4.Relation("R2"); !ok {
		t.Fatal("ReplaceRelation lost relation")
	}
	if _, _, err := db2.ReplaceRelation("nope", renamed); err == nil {
		t.Fatal("replacing missing relation should fail")
	}
	if _, _, err := db2.ReplaceRelation("R", MustNew("S", []string{"X"})); err == nil {
		t.Fatal("replace causing collision should fail")
	}
}

func TestDatabaseContains(t *testing.T) {
	src := MustDatabase(
		MustNew("Flights", []string{"Carrier", "Fee", "ATL29"},
			Tuple{"AirEast", "15", "100"},
		),
	)
	tgt := MustDatabase(
		MustNew("Flights", []string{"Carrier", "ATL29"},
			Tuple{"AirEast", "100"},
		),
	)
	if !src.Contains(tgt) {
		t.Fatal("containment failed")
	}
	if tgt.Contains(src) {
		t.Fatal("reverse containment should fail (missing Fee)")
	}
}

func TestNameAttrValueSets(t *testing.T) {
	db := MustDatabase(
		MustNew("R", []string{"A", "B"}, Tuple{"1", "2"}),
		MustNew("S", []string{"B", "C"}, Tuple{"2", "3"}),
	)
	if !db.RelationNames()["R"] || !db.RelationNames()["S"] {
		t.Fatal("RelationNames wrong")
	}
	attrs := db.AttrNames()
	for _, a := range []string{"A", "B", "C"} {
		if !attrs[a] {
			t.Fatalf("AttrNames missing %s", a)
		}
	}
	vals := db.ValueSet()
	for _, v := range []string{"1", "2", "3"} {
		if !vals[v] {
			t.Fatalf("ValueSet missing %s", v)
		}
	}
	if db.Size() != 4 {
		t.Fatalf("Size = %d, want 4", db.Size())
	}
}

func TestPrinting(t *testing.T) {
	r := MustNew("Flights", []string{"Carrier", "Fee"},
		Tuple{"AirEast", "15"},
	)
	s := r.String()
	for _, want := range []string{"Flights:", "Carrier", "Fee", "AirEast", "15"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q in:\n%s", want, s)
		}
	}
	db := MustDatabase(r, MustNew("Other", []string{"X"}))
	if !strings.Contains(db.String(), "Other:") {
		t.Fatal("database String() missing second relation")
	}
}

// randomRelation builds a small pseudo-random relation from a rand source.
func randomRelation(rng *rand.Rand, name string) *Relation {
	nAttr := 1 + rng.Intn(4)
	attrs := make([]string, nAttr)
	for i := range attrs {
		attrs[i] = string(rune('A'+i)) + string(rune('a'+rng.Intn(26)))
	}
	r := MustNew(name, attrs)
	nRows := rng.Intn(5)
	for i := 0; i < nRows; i++ {
		row := make(Tuple, nAttr)
		for j := range row {
			row[j] = string(rune('0' + rng.Intn(10)))
		}
		var err error
		r, err = r.Insert(row)
		if err != nil {
			panic(err)
		}
	}
	return r
}

func randomDatabase(rng *rand.Rand) *Database {
	n := 1 + rng.Intn(3)
	rels := make([]*Relation, n)
	for i := range rels {
		rels[i] = randomRelation(rng, "R"+string(rune('0'+i)))
	}
	return MustDatabase(rels...)
}

func TestPropertyCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		db := randomDatabase(rand.New(rand.NewSource(seed)))
		return db.Equal(db.Clone()) && db.Fingerprint() == db.Clone().Fingerprint()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyContainsReflexive(t *testing.T) {
	f := func(seed int64) bool {
		db := randomDatabase(rand.New(rand.NewSource(seed)))
		return db.Contains(db)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFingerprintDistinguishes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDatabase(rng)
		// Mutate: add a fresh relation; fingerprints must differ.
		db2 := db.WithRelation(MustNew("Zmut", []string{"Q"}, Tuple{"qq"}))
		return db.Fingerprint() != db2.Fingerprint()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEqualIffFingerprint(t *testing.T) {
	f := func(a, b int64) bool {
		dbA := randomDatabase(rand.New(rand.NewSource(a)))
		dbB := randomDatabase(rand.New(rand.NewSource(b)))
		return dbA.Equal(dbB) == (dbA.Fingerprint() == dbB.Fingerprint())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRenameRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, "R")
		attrs := r.Attrs()
		if len(attrs) == 0 {
			return true
		}
		a := attrs[rng.Intn(len(attrs))]
		renamed, err := r.WithAttrRenamed(a, "ZZfresh")
		if err != nil {
			return false
		}
		back, err := renamed.WithAttrRenamed("ZZfresh", a)
		if err != nil {
			return false
		}
		return back.Equal(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyProjectIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, "R")
		p, err := r.Project(r.Attrs())
		if err != nil {
			return false
		}
		return p.Equal(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
