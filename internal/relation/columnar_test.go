package relation

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

// --- Insert dedup: complexity and semantics ------------------------------
//
// Relation.Insert once scanned every existing tuple per call — O(rows)
// string comparisons — so a chain of n copy-on-write inserts cost O(n²).
// The columnar rewrite checks duplicates against the memoized symbol
// row-key set: one map lookup per insert, whatever the relation's size.
// These tests pin both the semantics and the complexity class.

// dupRelation builds an n-row relation and returns it with one of its own
// rows, ready for a duplicate insert.
func dupRelation(tb testing.TB, n int) (*Relation, Tuple) {
	rows := make([]Tuple, n)
	for i := range rows {
		rows[i] = Tuple{fmt.Sprintf("v%d", i), "x"}
	}
	r, err := New("R", []string{"A", "B"}, rows...)
	if err != nil {
		tb.Fatal(err)
	}
	return r, rows[n/2].Clone()
}

func TestInsertDuplicateSemantics(t *testing.T) {
	r, dup := dupRelation(t, 16)
	out, err := r.Insert(dup)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != r.Len() {
		t.Fatalf("duplicate insert grew the relation: %d -> %d rows", r.Len(), out.Len())
	}
	if !out.Equal(r) {
		t.Fatalf("duplicate insert changed the relation")
	}
	fresh, err := r.Insert(Tuple{"brand-new", "x"})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != r.Len()+1 {
		t.Fatalf("fresh insert: %d rows, want %d", fresh.Len(), r.Len()+1)
	}
	if r.Len() != 16 {
		t.Fatalf("insert mutated the original: %d rows", r.Len())
	}
}

// insertAllocs measures the steady-state allocations of one duplicate
// insert against an n-row relation (the row-key memo warmed by a first
// call, as in a search's insert chains).
func insertAllocs(tb testing.TB, n int) float64 {
	r, dup := dupRelation(tb, n)
	if _, err := r.Insert(dup); err != nil {
		tb.Fatal(err)
	}
	return testing.AllocsPerRun(200, func() {
		if _, err := r.Insert(dup); err != nil {
			tb.Fatal(err)
		}
	})
}

// TestInsertDuplicateAllocsConstant pins the complexity fix: the per-insert
// allocation count must not grow with the relation's size. (The old
// tuple-scan dedup showed up here as O(n) work and the pre-memo key
// encoding as O(n) garbage.)
func TestInsertDuplicateAllocsConstant(t *testing.T) {
	small := insertAllocs(t, 8)
	large := insertAllocs(t, 1024)
	if large > small {
		t.Fatalf("duplicate-insert allocations grew with relation size: %.1f at n=8, %.1f at n=1024", small, large)
	}
}

func BenchmarkInsertDuplicate(b *testing.B) {
	r, dup := dupRelation(b, 512)
	if _, err := r.Insert(dup); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Insert(dup); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Differential: columnar identities vs the string path ----------------
//
// The columnar layer keeps the canonical string rendering as its reference
// semantics; these properties cross-check the int32-path identities against
// it on randomized relation pairs.

// TestPropertyHashIffFingerprint: the columnar 128-bit hash and the
// string-path fingerprint must induce the same equivalence on relations.
func TestPropertyHashIffFingerprint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRelation(rng, "R")
		b := randomRelation(rng, "R")
		for i := rng.Intn(3); i > 0; i-- {
			a = mutate(rng, a)
		}
		for i := rng.Intn(3); i > 0; i-- {
			b = mutate(rng, b)
		}
		return (a.Hash() == b.Hash()) == (a.Fingerprint() == b.Fingerprint())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDistinctValuesMatchRowScan: the memoized column-path distinct
// values must equal a naive scan over the decoded string rows.
func TestPropertyDistinctValuesMatchRowScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, "R")
		rows := r.Rows()
		for j, a := range r.Attrs() {
			seen := make(map[string]bool)
			var want []string
			for _, row := range rows {
				if !seen[row[j]] {
					seen[row[j]] = true
					want = append(want, row[j])
				}
			}
			sort.Strings(want)
			got := r.DistinctValues(a)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyHasEmptyCellMatchesRowScan: the column-walking empty-cell
// probe (µ's precondition) against the decoded rows.
func TestPropertyHasEmptyCellMatchesRowScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, "R")
		if rng.Intn(2) == 0 && r.Arity() > 0 {
			row := make(Tuple, r.Arity())
			for j := range row {
				if rng.Intn(2) == 0 {
					row[j] = fmt.Sprintf("w%d", rng.Intn(5))
				}
			}
			var err error
			if r, err = r.Insert(row); err != nil {
				return false
			}
		}
		want := false
		for _, row := range r.Rows() {
			for _, v := range row {
				if v == "" {
					want = true
				}
			}
		}
		return r.HasEmptyCell() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// --- Concurrent memoization ----------------------------------------------

// TestConcurrentMemoFamilies races every lazily memoized identity of one
// shared relation — hash, fingerprint, fragment, parts, distinct values,
// and the row-key set behind Insert — as the sharded parallel search does
// when workers identify states that share a relation copy-on-write. Run
// under -race in CI; correctness check: every goroutine must observe the
// same values.
func TestConcurrentMemoFamilies(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		r := MustNew("Shared", []string{"B", "A"},
			Tuple{"x", "y"}, Tuple{"z", ""}, Tuple{"q", "y"})
		const goroutines = 12
		type view struct {
			hash  [16]byte
			fp    string
			frag  *Fragment
			parts string
			vals  string
			dup   int
		}
		views := make([]view, goroutines)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				v := view{hash: r.Hash(), fp: r.Fingerprint(), frag: r.TNFFragment()}
				for _, p := range v.frag.Parts() {
					v.parts += p + "|"
				}
				for _, a := range r.Attrs() {
					for _, val := range r.DistinctValues(a) {
						v.vals += val + "|"
					}
				}
				out, err := r.Insert(Tuple{"z", ""})
				if err != nil {
					t.Error(err)
					return
				}
				v.dup = out.Len()
				views[g] = v
			}(g)
		}
		wg.Wait()
		for g := 1; g < goroutines; g++ {
			if views[g] != views[0] {
				t.Fatalf("trial %d: goroutine %d observed %+v, goroutine 0 %+v", trial, g, views[g], views[0])
			}
		}
		if views[0].dup != r.Len() {
			t.Fatalf("concurrent duplicate insert grew the relation: %d -> %d", r.Len(), views[0].dup)
		}
	}
}
