package sqlrun

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"tupelo/internal/relation"
)

// Engine executes parsed statements against an in-memory table store.
// Tables follow the set semantics of package relation, which coincides with
// the DISTINCT/UNION queries the generator emits.
type Engine struct {
	tables map[string]*relation.Relation
}

// NewEngine creates an engine whose initial tables are the relations of db
// (the source instance a mapping script runs against).
func NewEngine(db *relation.Database) *Engine {
	e := &Engine{tables: make(map[string]*relation.Relation)}
	for _, r := range db.Relations() {
		e.tables[r.Name()] = r
	}
	return e
}

// ExecScript parses and executes a SQL script.
func (e *Engine) ExecScript(src string) error {
	stmts, err := Parse(src)
	if err != nil {
		return err
	}
	return e.Exec(stmts)
}

// Exec executes parsed statements in order.
func (e *Engine) Exec(stmts []Stmt) error {
	for _, st := range stmts {
		ct, ok := st.(*CreateTable)
		if !ok {
			return fmt.Errorf("sqlrun: unsupported statement %T", st)
		}
		if _, dup := e.tables[ct.Name]; dup {
			return fmt.Errorf("sqlrun: table %q already exists", ct.Name)
		}
		res, err := e.evalSelect(ct.Query)
		if err != nil {
			return fmt.Errorf("sqlrun: CREATE TABLE %s: %w", ct.Name, err)
		}
		rel, err := relation.New(ct.Name, res.cols)
		if err != nil {
			return fmt.Errorf("sqlrun: CREATE TABLE %s: %v", ct.Name, err)
		}
		for _, row := range res.rows {
			rel, err = rel.Insert(relation.Tuple(row))
			if err != nil {
				return fmt.Errorf("sqlrun: CREATE TABLE %s: %v", ct.Name, err)
			}
		}
		e.tables[ct.Name] = rel
	}
	return nil
}

// Table returns a stored table.
func (e *Engine) Table(name string) (*relation.Relation, bool) {
	r, ok := e.tables[name]
	return r, ok
}

// Database assembles a database from the final logical → physical table
// bindings of a generated script (sqlgen.Script.Final).
func (e *Engine) Database(final map[string]string) (*relation.Database, error) {
	names := make([]string, 0, len(final))
	for logical := range final {
		names = append(names, logical)
	}
	sort.Strings(names)
	var rels []*relation.Relation
	for _, logical := range names {
		r, ok := e.tables[final[logical]]
		if !ok {
			return nil, fmt.Errorf("sqlrun: script never created table %q", final[logical])
		}
		renamed, err := r.WithName(logical)
		if err != nil {
			return nil, err
		}
		rels = append(rels, renamed)
	}
	return relation.NewDatabase(rels...)
}

// result is an intermediate rowset.
type result struct {
	cols []string
	rows [][]string
}

// binding is one FROM source visible to column resolution.
type binding struct {
	alias string
	cols  []string
	row   []string
}

type env []binding

func (en env) lookup(ref *ColRef) (string, error) {
	found := false
	var out string
	for _, b := range en {
		if ref.Qualifier != "" && b.alias != ref.Qualifier {
			continue
		}
		for i, c := range b.cols {
			if c == ref.Name {
				if found {
					return "", fmt.Errorf("ambiguous column %q", ref.Name)
				}
				found = true
				out = b.row[i]
			}
		}
	}
	if !found {
		return "", fmt.Errorf("unknown column %q", ref.Name)
	}
	return out, nil
}

// evalSelect evaluates a SELECT (with any UNION tail).
func (e *Engine) evalSelect(sel *Select) (*result, error) {
	head, err := e.evalOne(sel)
	if err != nil {
		return nil, err
	}
	for tail := sel.Union; tail != nil; tail = tail.Union {
		tr, err := e.evalOne(tail)
		if err != nil {
			return nil, err
		}
		if len(tr.cols) != len(head.cols) {
			return nil, fmt.Errorf("UNION arity mismatch: %d vs %d", len(head.cols), len(tr.cols))
		}
		head.rows = append(head.rows, tr.rows...)
	}
	// UNION (non-ALL) between head and tails deduplicates; the generator
	// never mixes ALL and non-ALL in one chain.
	if sel.Union != nil && !sel.UnionAll {
		head.rows = dedupe(head.rows)
	}
	if sel.Distinct {
		head.rows = dedupe(head.rows)
	}
	return head, nil
}

// evalOne evaluates a single SELECT block, ignoring its UNION tail.
func (e *Engine) evalOne(sel *Select) (*result, error) {
	envs, err := e.evalFrom(sel.From)
	if err != nil {
		return nil, err
	}
	if sel.Where != nil {
		var kept []env
		for _, en := range envs {
			ok, err := evalCond(sel.Where, en)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, en)
			}
		}
		envs = kept
	}
	out := &result{}
	for _, c := range sel.Cols {
		if c.Name == "" {
			return nil, fmt.Errorf("unnamed output column")
		}
		out.cols = append(out.cols, c.Name)
	}
	if sel.GroupBy != "" {
		return e.evalGrouped(sel, envs, out)
	}
	for _, en := range envs {
		row := make([]string, len(sel.Cols))
		for i, c := range sel.Cols {
			v, err := evalExpr(c.Expr, en)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out.rows = append(out.rows, row)
	}
	return out, nil
}

// evalGrouped handles GROUP BY with MAX aggregates.
func (e *Engine) evalGrouped(sel *Select, envs []env, out *result) (*result, error) {
	groups := make(map[string][]env)
	var order []string
	key := &ColRef{Name: sel.GroupBy}
	for _, en := range envs {
		k, err := en.lookup(key)
		if err != nil {
			return nil, err
		}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], en)
	}
	sort.Strings(order)
	for _, k := range order {
		group := groups[k]
		row := make([]string, len(sel.Cols))
		for i, c := range sel.Cols {
			if m, ok := c.Expr.(*Max); ok {
				best := ""
				for j, en := range group {
					v, err := evalExpr(m.E, en)
					if err != nil {
						return nil, err
					}
					if j == 0 || v > best {
						best = v
					}
				}
				row[i] = best
				continue
			}
			// Non-aggregate column: must be functionally determined by the
			// group key; the generator only emits the key itself here.
			v, err := evalExpr(c.Expr, group[0])
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out.rows = append(out.rows, row)
	}
	return out, nil
}

// evalFrom builds the row environments of a FROM clause. A nil clause
// yields one empty environment (SELECT without FROM).
func (e *Engine) evalFrom(f From) ([]env, error) {
	switch src := f.(type) {
	case nil:
		return []env{nil}, nil
	case *FromTable:
		t, ok := e.tables[src.Table]
		if !ok {
			return nil, fmt.Errorf("unknown table %q", src.Table)
		}
		alias := src.Alias
		if alias == "" {
			alias = src.Table
		}
		cols := t.Attrs()
		envs := make([]env, t.Len())
		for i := 0; i < t.Len(); i++ {
			envs[i] = env{{alias: alias, cols: cols, row: t.Row(i)}}
		}
		return envs, nil
	case *FromSubquery:
		res, err := e.evalSelect(src.Query)
		if err != nil {
			return nil, err
		}
		envs := make([]env, len(res.rows))
		for i, row := range res.rows {
			envs[i] = env{{alias: src.Alias, cols: res.cols, row: row}}
		}
		return envs, nil
	case *FromCrossJoin:
		left, err := e.evalFrom(src.Left)
		if err != nil {
			return nil, err
		}
		right, err := e.evalFrom(src.Right)
		if err != nil {
			return nil, err
		}
		var out []env
		for _, l := range left {
			for _, r := range right {
				merged := make(env, 0, len(l)+len(r))
				merged = append(merged, l...)
				merged = append(merged, r...)
				out = append(out, merged)
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("unsupported FROM clause %T", f)
	}
}

func evalCond(c *Cond, en env) (bool, error) {
	v, err := en.lookup(&ColRef{Name: c.Col})
	if err != nil {
		return false, err
	}
	if v != c.Lit {
		return false, nil
	}
	if c.And != nil {
		return evalCond(c.And, en)
	}
	return true, nil
}

func evalExpr(x Expr, en env) (string, error) {
	switch v := x.(type) {
	case *Lit:
		return v.Value, nil
	case *NumLit:
		return formatNumber(v.Value), nil
	case *ColRef:
		return en.lookup(v)
	case *Concat:
		l, err := evalExpr(v.L, en)
		if err != nil {
			return "", err
		}
		r, err := evalExpr(v.R, en)
		if err != nil {
			return "", err
		}
		return l + r, nil
	case *Cast:
		s, err := evalExpr(v.E, en)
		if err != nil {
			return "", err
		}
		n, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return "", fmt.Errorf("CAST(%q AS NUMERIC): not a number", s)
		}
		return formatNumber(n), nil
	case *Arith:
		l, err := evalNumber(v.L, en)
		if err != nil {
			return "", err
		}
		r, err := evalNumber(v.R, en)
		if err != nil {
			return "", err
		}
		switch v.Op {
		case '+':
			return formatNumber(l + r), nil
		case '-':
			return formatNumber(l - r), nil
		case '*':
			return formatNumber(l * r), nil
		case '/':
			if r == 0 {
				return "", fmt.Errorf("division by zero")
			}
			return formatNumber(l / r), nil
		default:
			return "", fmt.Errorf("unknown operator %q", v.Op)
		}
	case *Case:
		for _, w := range v.Whens {
			got, err := en.lookup(&ColRef{Name: w.Col})
			if err != nil {
				return "", err
			}
			if got == w.Lit {
				return evalExpr(w.Result, en)
			}
		}
		if v.Else == nil {
			return "", nil // SQL NULL folds to the absent value
		}
		return evalExpr(v.Else, en)
	case *Max:
		return "", fmt.Errorf("MAX outside GROUP BY")
	default:
		return "", fmt.Errorf("unsupported expression %T", x)
	}
}

func evalNumber(x Expr, en env) (float64, error) {
	s, err := evalExpr(x, en)
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("%q is not numeric", s)
	}
	return n, nil
}

// formatNumber matches package lambda's rendering: integers print without a
// decimal point, keeping SQL-path results byte-identical to λ results.
func formatNumber(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func dedupe(rows [][]string) [][]string {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, row := range rows {
		k := strings.Join(row, "\x1f")
		if !seen[k] {
			seen[k] = true
			out = append(out, row)
		}
	}
	return out
}
