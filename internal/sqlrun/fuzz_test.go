package sqlrun

import (
	"testing"

	"tupelo/internal/relation"
)

// FuzzParseSQL checks that the SQL parser never panics on arbitrary input.
func FuzzParseSQL(f *testing.F) {
	seeds := []string{
		`CREATE TABLE "t" AS SELECT DISTINCT "A" FROM "R";`,
		`CREATE TABLE "t" AS SELECT "A" AS "B", 'x' AS "C" FROM "R" WHERE "A" = 'v';`,
		`CREATE TABLE "t" AS SELECT MAX("A") AS "m", "K" FROM "R" GROUP BY "K";`,
		`CREATE TABLE "t" AS SELECT 'a' AS "X" UNION ALL SELECT 'b' AS "X";`,
		`CREATE TABLE "t" AS SELECT CASE WHEN "A" = 'x' THEN "B" ELSE '' END AS "C" FROM "R";`,
		`CREATE TABLE "t" AS SELECT (CAST("A" AS NUMERIC) + CAST("B" AS NUMERIC)) AS "S" FROM "R";`,
		`CREATE TABLE "t" AS SELECT l."A" AS "LA" FROM "L" AS l CROSS JOIN "R" AS r;`,
		`-- comment only`,
		`CREATE TABLE t AS SELECT`,
		`;;;`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := Parse(src)
		if err != nil {
			return
		}
		// Accepted scripts must execute without panicking (errors are fine).
		eng := NewEngine(relation.MustDatabase(
			relation.MustNew("R", []string{"A", "B", "K"},
				relation.Tuple{"x", "2", "k1"},
				relation.Tuple{"y", "3", "k1"},
			),
			relation.MustNew("L", []string{"C"}, relation.Tuple{"c"}),
		))
		_ = eng.Exec(stmts)
	})
}
