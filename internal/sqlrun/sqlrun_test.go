package sqlrun

import (
	"strings"
	"testing"

	"tupelo/internal/fira"
	"tupelo/internal/lambda"
	"tupelo/internal/relation"
	"tupelo/internal/sqlgen"
)

func flightsB() *relation.Database {
	return relation.MustDatabase(
		relation.MustNew("Prices", []string{"Carrier", "Route", "Cost", "AgentFee"},
			relation.Tuple{"AirEast", "ATL29", "100", "15"},
			relation.Tuple{"JetWest", "ATL29", "200", "16"},
			relation.Tuple{"AirEast", "ORD17", "110", "15"},
			relation.Tuple{"JetWest", "ORD17", "220", "16"},
		),
	)
}

func flightsA() *relation.Database {
	return relation.MustDatabase(
		relation.MustNew("Flights", []string{"Carrier", "Fee", "ATL29", "ORD17"},
			relation.Tuple{"AirEast", "15", "100", "110"},
			relation.Tuple{"JetWest", "16", "200", "220"},
		),
	)
}

// runBothWays evaluates expr directly with fira and through the
// generate-SQL → execute-SQL path, and asserts identical databases.
func runBothWays(t *testing.T, exprText string, db *relation.Database) {
	t.Helper()
	expr := fira.MustParse(exprText)
	want, err := expr.Eval(db, lambda.Builtins())
	if err != nil {
		t.Fatal(err)
	}
	script, err := sqlgen.Generate(expr, db, sqlgen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(db)
	if err := eng.ExecScript(script.String()); err != nil {
		t.Fatalf("%v\nscript:\n%s", err, script)
	}
	got, err := eng.Database(script.Final)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("SQL path diverges from direct evaluation.\nSQL:\n%s\ndirect:\n%s\nscript:\n%s", got, want, script)
	}
}

// TestEquivalenceExample2 validates the paper's Example 2 pipeline through
// the SQL path: generated SQL must compute exactly FlightsA.
func TestEquivalenceExample2(t *testing.T) {
	runBothWays(t, `
		promote[Prices,Route,Cost]
		drop[Prices,Route]
		drop[Prices,Cost]
		merge[Prices,Carrier]
		rename_att[Prices,AgentFee->Fee]
		rename_rel[Prices->Flights]
	`, flightsB())
}

func TestEquivalencePerOperator(t *testing.T) {
	cases := []struct {
		name string
		expr string
		db   *relation.Database
	}{
		{"rename_att", "rename_att[Prices,Cost->Fare]", flightsB()},
		{"rename_rel", "rename_rel[Prices->Fares]", flightsB()},
		{"drop", "drop[Prices,AgentFee]", flightsB()},
		{"promote", "promote[Prices,Route,Cost]", flightsB()},
		{"demote", "demote[Flights]", flightsA()},
		{"demote+deref", "demote[Flights]\nderef[Flights,_ATT->Val]", flightsA()},
		{"partition", "partition[Prices,Carrier]", flightsB()},
		{"merge after promote+drops", "promote[Prices,Route,Cost]\ndrop[Prices,Route]\ndrop[Prices,Cost]\nmerge[Prices,Carrier]", flightsB()},
		{"apply sum", "apply[Prices,sum:Cost,AgentFee->Total]", flightsB()},
		{"apply concat", "apply[Prices,concat:Carrier,Route->Tag]", flightsB()},
		{"apply difference", "apply[Prices,difference:Cost,AgentFee->Net]", flightsB()},
		{"apply product", "apply[Prices,product:Cost,AgentFee->X]", flightsB()},
		{"union", "partition[Prices,Carrier]\nunion[AirEast,JetWest]\nrename_rel[AirEast->Prices]", flightsB()},
		{"product", "partition[Prices,Route]\ndrop[ATL29,Route]\ndrop[ATL29,AgentFee]\nrename_att[ATL29,Carrier->C2]\nrename_att[ATL29,Cost->Cost2]\nproduct[ORD17,ATL29]", flightsB()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runBothWays(t, tc.expr, tc.db)
		})
	}
}

// TestEquivalenceOnLargerInstance applies a mapping discovered from the
// critical instance to a bigger database through both paths.
func TestEquivalenceOnLargerInstance(t *testing.T) {
	big := relation.MustDatabase(
		relation.MustNew("Prices", []string{"Carrier", "Route", "Cost", "AgentFee"},
			relation.Tuple{"AirEast", "ATL29", "100", "15"},
			relation.Tuple{"JetWest", "ATL29", "200", "16"},
			relation.Tuple{"AirEast", "ORD17", "110", "15"},
			relation.Tuple{"JetWest", "ORD17", "220", "16"},
			relation.Tuple{"SkyHop", "ATL29", "90", "9"},
			relation.Tuple{"SkyHop", "ORD17", "95", "9"},
		),
	)
	// Regenerate against the larger instance (the promote column set is
	// instance-derived, as the generator's comment warns).
	runBothWays(t, `
		promote[Prices,Route,Cost]
		drop[Prices,Route]
		drop[Prices,Cost]
		merge[Prices,Carrier]
	`, big)
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		`SELECT 1`,                    // not CREATE TABLE
		`CREATE TABLE "t"`,            // missing AS SELECT
		`CREATE TABLE "t" AS SELECT;`, // empty select
		`CREATE TABLE "t" AS SELECT "a" FROM;`,
		`CREATE TABLE "t" AS SELECT 'x' FROM "u";`,                      // computed without AS
		`CREATE TABLE "t" AS SELECT "a" FROM "u" WHERE a = b;`,          // non-literal rhs
		`CREATE TABLE "t" AS SELECT CASE END AS "c" FROM "u";`,          // CASE without WHEN
		`CREATE TABLE "t" AS SELECT "a" FROM "u"`,                       // missing ';'
		`CREATE TABLE "t" AS SELECT CAST("a" AS TEXT) AS "c" FROM "u";`, // non-NUMERIC cast
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) should fail", bad)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{
		`"unterminated`,
		`'unterminated`,
		`a | b`,
		"\x01",
	} {
		if _, err := lex(bad); err == nil {
			t.Fatalf("lex(%q) should fail", bad)
		}
	}
}

func TestLexQuoting(t *testing.T) {
	toks, err := lex(`"na""me" 'o''hara' -- comment
SELECT`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != `na"me` || toks[0].kind != tokIdent {
		t.Fatalf("ident unquoting: %+v", toks[0])
	}
	if toks[1].text != "o'hara" || toks[1].kind != tokString {
		t.Fatalf("string unquoting: %+v", toks[1])
	}
	if toks[2].kind != tokKeyword || toks[2].text != "SELECT" {
		t.Fatalf("comment not skipped: %+v", toks[2])
	}
}

func TestExecErrors(t *testing.T) {
	eng := NewEngine(flightsB())
	cases := []string{
		`CREATE TABLE "Prices" AS SELECT "Carrier" FROM "Prices";`,                    // duplicate table
		`CREATE TABLE "t" AS SELECT "Carrier" FROM "NoSuch";`,                         // unknown table
		`CREATE TABLE "t" AS SELECT "NoSuch" FROM "Prices";`,                          // unknown column
		`CREATE TABLE "t" AS SELECT CAST("Carrier" AS NUMERIC) AS "n" FROM "Prices";`, // bad cast
		`CREATE TABLE "t" AS SELECT MAX("Cost") AS "m" FROM "Prices";`,                // MAX without GROUP BY
		`CREATE TABLE "t" AS SELECT ("Cost" / '0') AS "d" FROM "Prices";`,             // division by zero
	}
	for _, src := range cases {
		if err := eng.ExecScript(src); err == nil {
			t.Fatalf("ExecScript(%q) should fail", src)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := relation.MustDatabase(
		relation.MustNew("L", []string{"A"}, relation.Tuple{"1"}),
		relation.MustNew("R", []string{"A"}, relation.Tuple{"2"}),
	)
	eng := NewEngine(db)
	err := eng.ExecScript(`CREATE TABLE "t" AS SELECT "A" FROM "L" AS l CROSS JOIN "R" AS r;`)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("expected ambiguity error, got %v", err)
	}
	// Qualified references resolve it.
	if err := eng.ExecScript(`CREATE TABLE "t" AS SELECT l."A" AS "LA", r."A" AS "RA" FROM "L" AS l CROSS JOIN "R" AS r;`); err != nil {
		t.Fatal(err)
	}
	tab, _ := eng.Table("t")
	if tab.Len() != 1 || tab.Arity() != 2 {
		t.Fatalf("join result %d×%d", tab.Len(), tab.Arity())
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	eng := NewEngine(relation.MustDatabase())
	if err := eng.ExecScript(`CREATE TABLE "m" AS SELECT 'a' AS "X" UNION ALL SELECT 'b' AS "X";`); err != nil {
		t.Fatal(err)
	}
	tab, _ := eng.Table("m")
	if tab.Len() != 2 {
		t.Fatalf("inline table has %d rows, want 2", tab.Len())
	}
}

func TestUnionDedupes(t *testing.T) {
	eng := NewEngine(flightsB())
	if err := eng.ExecScript(`CREATE TABLE "u" AS SELECT "Carrier" FROM "Prices" UNION SELECT "Carrier" FROM "Prices";`); err != nil {
		t.Fatal(err)
	}
	tab, _ := eng.Table("u")
	if tab.Len() != 2 { // AirEast, JetWest
		t.Fatalf("union kept %d rows, want 2", tab.Len())
	}
}

func TestDatabaseMissingTable(t *testing.T) {
	eng := NewEngine(flightsB())
	if _, err := eng.Database(map[string]string{"X": "never_created"}); err == nil {
		t.Fatal("missing physical table should fail")
	}
}

func TestNumberFormattingMatchesLambda(t *testing.T) {
	eng := NewEngine(flightsB())
	if err := eng.ExecScript(`CREATE TABLE "t" AS SELECT (CAST("Cost" AS NUMERIC) + CAST("AgentFee" AS NUMERIC)) AS "Total" FROM "Prices" WHERE "Carrier" = 'AirEast' AND "Route" = 'ATL29';`); err != nil {
		t.Fatal(err)
	}
	tab, _ := eng.Table("t")
	v, _ := tab.Value(0, "Total")
	if v != "115" {
		t.Fatalf("Total = %q, want 115 (integer formatting)", v)
	}
}
