package sqlrun

// The AST mirrors the dialect sqlgen emits.

// Stmt is one statement of a script.
type Stmt interface{ stmt() }

// CreateTable is CREATE TABLE name AS <query>.
type CreateTable struct {
	Name  string
	Query *Select
}

func (*CreateTable) stmt() {}

// Select is a SELECT, possibly with a UNION tail.
type Select struct {
	Distinct bool
	Cols     []SelectCol
	From     From
	Where    *Cond  // nil when absent
	GroupBy  string // "" when absent
	// Union chains the next SELECT; UnionAll distinguishes UNION ALL.
	Union    *Select
	UnionAll bool
}

// SelectCol is one output column: an expression with an output name.
// The name comes from AS, or from the column reference itself.
type SelectCol struct {
	Expr Expr
	Name string
}

// From is a FROM clause.
type From interface{ from() }

// FromTable is FROM "t" [AS alias].
type FromTable struct {
	Table string
	Alias string
}

func (*FromTable) from() {}

// FromCrossJoin is FROM <left> CROSS JOIN <right>.
type FromCrossJoin struct {
	Left, Right From
}

func (*FromCrossJoin) from() {}

// FromSubquery is FROM ( <select> ) AS alias — the inline metadata tables
// demote generates.
type FromSubquery struct {
	Query *Select
	Alias string
}

func (*FromSubquery) from() {}

// Cond is a conjunction of column = literal equalities (all the generator
// needs).
type Cond struct {
	Col, Lit string
	And      *Cond
}

// Expr is a scalar expression.
type Expr interface{ expr() }

// ColRef references a column, optionally qualified by a FROM alias.
type ColRef struct {
	Qualifier string // "" when unqualified
	Name      string
}

func (*ColRef) expr() {}

// Lit is a string literal.
type Lit struct{ Value string }

func (*Lit) expr() {}

// NumLit is a numeric literal.
type NumLit struct{ Value float64 }

func (*NumLit) expr() {}

// Concat is expr || expr.
type Concat struct{ L, R Expr }

func (*Concat) expr() {}

// Arith is numeric +, -, *, /.
type Arith struct {
	Op   byte // '+', '-', '*', '/'
	L, R Expr
}

func (*Arith) expr() {}

// Cast is CAST(expr AS NUMERIC).
type Cast struct{ E Expr }

func (*Cast) expr() {}

// Max is the MAX(expr) aggregate (valid only with GROUP BY).
type Max struct{ E Expr }

func (*Max) expr() {}

// Case is CASE WHEN c THEN v ... [ELSE e] END. Conditions are column =
// literal, like Cond without conjunction.
type Case struct {
	Whens []CaseWhen
	Else  Expr // nil means SQL NULL, which this engine folds to absent ("")
}

func (*Case) expr() {}

// CaseWhen is one WHEN col = lit THEN result arm.
type CaseWhen struct {
	Col, Lit string
	Result   Expr
}
